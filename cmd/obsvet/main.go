// Command obsvet is the CI observability smoke check: it boots a small
// traced cluster, serves the debug endpoints, drives a burst of
// transactions (followed live by a change stream), then scrapes /metrics,
// /debug/slow, /debug/regions, and /debug/watchers and validates the
// payloads — the Prometheus text exposition line by line, the JSON
// endpoints structurally. Exit status is non-zero on any malformed output
// or missing metric family, so a refactor that silently breaks the scrape
// surface fails the PR. Standard library only.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"time"

	"txkv"
	"txkv/internal/obs"
)

// promSample matches one exposition sample line: a metric name, optional
// labels, and a value.
var promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)

// vetProm validates the whole Prometheus text page and returns the set of
// sample metric names seen.
func vetProm(page string) (map[string]bool, []string) {
	var bad []string
	names := map[string]bool{}
	typed := map[string]bool{}
	for i, line := range strings.Split(page, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				bad = append(bad, fmt.Sprintf("line %d: malformed TYPE: %q", i+1, line))
				continue
			}
			switch f[3] {
			case "counter", "gauge", "summary":
			default:
				bad = append(bad, fmt.Sprintf("line %d: unknown type %q", i+1, f[3]))
			}
			typed[f[2]] = true
		case strings.HasPrefix(line, "#"):
			// HELP or comment: fine.
		default:
			m := promSample.FindStringSubmatch(line)
			if m == nil {
				bad = append(bad, fmt.Sprintf("line %d: malformed sample: %q", i+1, line))
				continue
			}
			if !strings.HasPrefix(m[1], "txkv_") {
				bad = append(bad, fmt.Sprintf("line %d: sample outside txkv_ namespace: %q", i+1, m[1]))
			}
			if _, err := strconv.ParseFloat(m[3], 64); err != nil {
				bad = append(bad, fmt.Sprintf("line %d: unparseable value %q", i+1, m[3]))
			}
			names[m[1]] = true
		}
	}
	if len(typed) == 0 {
		bad = append(bad, "no # TYPE lines at all")
	}
	return names, bad
}

// promValue returns the (label-less) sample value of one metric on the
// page, or -1 when absent.
func promValue(page, name string) float64 {
	for _, line := range strings.Split(page, "\n") {
		m := promSample.FindStringSubmatch(line)
		if m == nil || m[1] != name || m[2] != "" {
			continue
		}
		if v, err := strconv.ParseFloat(m[3], 64); err == nil {
			return v
		}
	}
	return -1
}

func get(base, path string) ([]byte, error) {
	resp, err := http.Get(base + path)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func main() {
	log.SetFlags(0)
	c, err := txkv.Open(txkv.Config{
		Servers:           3,
		Tracing:           true,
		SlowOpThreshold:   -1, // retain every traced op
		ReplicationFactor: 3,  // replicated regions: the replica_* families must fire
		FollowerReads:     true,
	})
	if err != nil {
		log.Fatalf("open cluster: %v", err)
	}
	defer c.Stop()
	if err := c.CreateTable("t", []txkv.Key{"m"}); err != nil {
		log.Fatalf("create table: %v", err)
	}
	d, err := c.ServeDebug("127.0.0.1:0")
	if err != nil {
		log.Fatalf("serve debug: %v", err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	// Drive enough load that every instrumented path fires.
	cl, err := c.NewClient("obsvet")
	if err != nil {
		log.Fatalf("client: %v", err)
	}
	ctx := context.Background()
	// A change stream follows the writes live, so the watch instruments and
	// /debug/watchers report real traffic; it stays open through the scrape.
	ws, err := cl.Watch(ctx, "t", txkv.KeyRange{}, 0)
	if err != nil {
		log.Fatalf("watch: %v", err)
	}
	defer ws.Close()
	for i := 0; i < 20; i++ {
		row := txkv.Key(fmt.Sprintf("row-%02d", i))
		if _, err := cl.Update(ctx, func(txn *txkv.Txn) error {
			return txn.Put(ctx, "t", row, "f", []byte(strings.Repeat("v", 32)))
		}); err != nil {
			log.Fatalf("update: %v", err)
		}
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	for watched := 0; watched < 20; {
		b, err := ws.NextBatch(wctx)
		if err != nil {
			log.Fatalf("watch drain: %v", err)
		}
		watched += len(b.Events)
	}
	wcancel()
	if err := cl.View(ctx, func(txn *txkv.Txn) error {
		for i := 0; i < 20; i++ {
			row := txkv.Key(fmt.Sprintf("row-%02d", i))
			if _, ok, err := txn.Get(ctx, "t", row, "f"); err != nil || !ok {
				return fmt.Errorf("get %s: found=%v err=%v", row, ok, err)
			}
		}
		sc := txn.Scan(ctx, "t", txkv.KeyRange{}, txkv.ScanOptions{})
		n := 0
		for sc.Next() {
			n++
		}
		if sc.Err() != nil || n != 20 {
			return fmt.Errorf("scan: %d rows, err %v", n, sc.Err())
		}
		return nil
	}); err != nil {
		log.Fatalf("view: %v", err)
	}
	// Force the written rows into store files (WAL roll flushes every
	// region), then read them back — plus keys that were never written — so
	// the store-file bloom filters are probed on both the pass and the
	// definitive-negative path.
	if _, err := c.ReclaimStorage(); err != nil {
		log.Fatalf("reclaim storage: %v", err)
	}
	if err := cl.View(ctx, func(txn *txkv.Txn) error {
		for i := 0; i < 20; i++ {
			row := txkv.Key(fmt.Sprintf("row-%02d", i))
			if _, ok, err := txn.Get(ctx, "t", row, "f"); err != nil || !ok {
				return fmt.Errorf("post-flush get %s: found=%v err=%v", row, ok, err)
			}
			missing := txkv.Key(fmt.Sprintf("zz-missing-%02d", i))
			if _, ok, err := txn.Get(ctx, "t", missing, "f"); err != nil || ok {
				return fmt.Errorf("get %s: found=%v err=%v", missing, ok, err)
			}
		}
		return nil
	}); err != nil {
		log.Fatalf("post-flush view: %v", err)
	}
	// With follower reads on, snapshot scans route to follower copies once
	// their replicated frontier covers the read timestamp; retry until one
	// actually lands there so the replica read counters show real traffic.
	followerDeadline := time.Now().Add(10 * time.Second)
	for c.Obs().Snapshot().Counters["replica.follower_reads"] == 0 {
		if err := cl.View(ctx, func(txn *txkv.Txn) error {
			sc := txn.Scan(ctx, "t", txkv.KeyRange{}, txkv.ScanOptions{})
			for sc.Next() {
			}
			return sc.Err()
		}); err != nil {
			log.Fatalf("follower-read scan: %v", err)
		}
		if time.Now().After(followerDeadline) {
			log.Fatal("no scan was served by a follower within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Let the asynchronous flush/visibility tail settle before scraping.
	time.Sleep(100 * time.Millisecond)

	var failures []string

	// /metrics: structurally valid exposition with the key families.
	page, err := get(base, "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	names, bad := vetProm(string(page))
	failures = append(failures, bad...)
	for _, want := range []string{
		"txkv_txmgr_commits",
		"txkv_client_gets",
		"txkv_server_applied_writesets",
		"txkv_commit_total_seconds_count",
		"txkv_commit_fsync_seconds_count",
		"txkv_get_total_seconds_count",
		"txkv_scan_total_seconds_count",
		"txkv_cluster_live_servers",
		"txkv_bloom_probes_total",
		"txkv_bloom_negatives_total",
		"txkv_bloom_false_positives_total",
		"txkv_block_compressed_bytes_total",
		"txkv_block_uncompressed_bytes_total",
		"txkv_blockcache_hit_rate_pct",
		"txkv_watch_watchers",
		"txkv_watch_opened",
		"txkv_watch_events_delivered",
		"txkv_watch_overflows",
		"txkv_replica_shipped_batches",
		"txkv_replica_shipped_entries",
		"txkv_replica_shipped_bytes",
		"txkv_replica_heartbeats",
		"txkv_replica_appends_applied",
		"txkv_replica_entries_applied",
		"txkv_replica_follower_reads",
		"txkv_replica_lag_entries",
		"txkv_replica_failovers",
		"txkv_replica_failover_last_ms",
	} {
		if !names[want] {
			failures = append(failures, "missing metric "+want)
		}
	}

	// The bloom counters must show real activity, not just exist: the
	// post-flush reads probed filters, and the never-written keys must have
	// produced definitive negatives (skipped file reads).
	if v := promValue(string(page), "txkv_bloom_probes_total"); v <= 0 {
		failures = append(failures, fmt.Sprintf("bloom probes not firing: %v", v))
	}
	if v := promValue(string(page), "txkv_bloom_negatives_total"); v <= 0 {
		failures = append(failures, fmt.Sprintf("bloom negatives not firing: %v", v))
	}
	cmp := promValue(string(page), "txkv_block_compressed_bytes_total")
	unc := promValue(string(page), "txkv_block_uncompressed_bytes_total")
	if cmp <= 0 || unc < cmp {
		failures = append(failures, fmt.Sprintf("block byte counters implausible: compressed=%v uncompressed=%v", cmp, unc))
	}

	// The watch instruments must show the stream that followed the load: it
	// is still open at scrape time and drained every commit's events.
	if v := promValue(string(page), "txkv_watch_watchers"); v < 1 {
		failures = append(failures, fmt.Sprintf("watch watchers gauge shows no open stream: %v", v))
	}
	if v := promValue(string(page), "txkv_watch_events_delivered"); v < 20 {
		failures = append(failures, fmt.Sprintf("watch events_delivered below the 20 drained: %v", v))
	}

	// The replica counters must show the replicated load, not just exist:
	// every commit shipped WAL entries to followers, followers applied
	// them, and at least one snapshot scan was served by a follower copy.
	for _, want := range []string{
		"txkv_replica_shipped_entries",
		"txkv_replica_entries_applied",
		"txkv_replica_follower_reads",
	} {
		if v := promValue(string(page), want); v <= 0 {
			failures = append(failures, fmt.Sprintf("%s not firing: %v", want, v))
		}
	}

	// /debug/slow: retained span trees for commit, get, and scan.
	var slow struct {
		Count int            `json:"count"`
		Ops   []obs.SpanDump `json:"ops"`
	}
	body, err := get(base, "/debug/slow")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		failures = append(failures, fmt.Sprintf("/debug/slow not JSON: %v", err))
	} else if slow.Count == 0 {
		failures = append(failures, "/debug/slow retained nothing with a negative threshold")
	} else {
		seen := map[string]bool{}
		for _, op := range slow.Ops {
			seen[op.Op] = true
		}
		for _, want := range []string{"commit", "get", "scan"} {
			if !seen[want] {
				failures = append(failures, "/debug/slow has no "+want+" span")
			}
		}
	}

	// /debug/regions: heat for the load just driven, plus one replica row
	// per hosted region copy with role/epoch/position state.
	var regions struct {
		Regions []struct {
			Server string `json:"server"`
			Gets   int64  `json:"gets"`
			Writes int64  `json:"writes"`
		} `json:"regions"`
		Replicas []struct {
			Server  string `json:"server"`
			Region  string `json:"region"`
			Role    string `json:"role"`
			Online  bool   `json:"online"`
			Epoch   uint64 `json:"epoch"`
			LastSeq uint64 `json:"last_seq"`
			LagEnt  int64  `json:"lag_entries"`
		} `json:"replicas"`
	}
	body, err = get(base, "/debug/regions")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(body, &regions); err != nil {
		failures = append(failures, fmt.Sprintf("/debug/regions not JSON: %v", err))
	} else {
		var gets, writes int64
		for _, r := range regions.Regions {
			gets += r.Gets
			writes += r.Writes
		}
		if len(regions.Regions) == 0 || gets == 0 || writes == 0 {
			failures = append(failures, fmt.Sprintf(
				"/debug/regions heat empty: %d regions, gets=%d writes=%d",
				len(regions.Regions), gets, writes))
		}
		primaries, followers := 0, 0
		var advanced int
		for _, r := range regions.Replicas {
			switch r.Role {
			case "primary":
				primaries++
				if r.LastSeq > 0 {
					advanced++ // an idle region's primary legitimately sits at 0
				}
				if !r.Online || r.Epoch == 0 {
					failures = append(failures, fmt.Sprintf(
						"/debug/regions primary %s/%s implausible: online=%v epoch=%d",
						r.Server, r.Region, r.Online, r.Epoch))
				}
			case "follower":
				followers++
				if r.Epoch == 0 {
					failures = append(failures, fmt.Sprintf(
						"/debug/regions follower %s/%s has zero epoch", r.Server, r.Region))
				}
			default:
				failures = append(failures, fmt.Sprintf(
					"/debug/regions replica %s/%s has unknown role %q", r.Server, r.Region, r.Role))
			}
		}
		if primaries == 0 || followers == 0 || advanced == 0 {
			failures = append(failures, fmt.Sprintf(
				"/debug/regions replicas incomplete: %d primaries (%d with entries), %d followers",
				primaries, advanced, followers))
		}
	}

	// /debug/watchers: the open stream with its position and delivery state.
	var watchers struct {
		Count    int `json:"count"`
		Watchers []struct {
			Owner  string `json:"owner"`
			Table  string `json:"table"`
			Pos    uint64 `json:"pos"`
			Live   bool   `json:"live"`
			Events int64  `json:"events"`
		} `json:"watchers"`
	}
	body, err = get(base, "/debug/watchers")
	if err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(body, &watchers); err != nil {
		failures = append(failures, fmt.Sprintf("/debug/watchers not JSON: %v", err))
	} else {
		found := false
		for _, w := range watchers.Watchers {
			if w.Table == "t" && w.Events >= 20 && w.Pos > 0 {
				found = true
			}
		}
		if watchers.Count == 0 || !found {
			failures = append(failures, fmt.Sprintf(
				"/debug/watchers missing the drained stream: %s", body))
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			log.Printf("FAIL: %s", f)
		}
		log.Fatalf("obsvet: %d failures", len(failures))
	}
	fmt.Printf("obsvet OK: %d metric samples, %d slow ops, %d regions, %d watchers\n",
		len(names), slow.Count, len(regions.Regions), watchers.Count)
}
