// Command depvet enforces the repository's deprecation policy: no
// first-party package, example, or command may call a symbol whose doc
// comment carries a "Deprecated:" marker. The deprecated wrappers exist for
// external callers mid-migration; internal code must stay on the canonical
// context-first API, otherwise the wrappers can never be retired.
//
// depvet type-checks the whole module (stdlib-only implementation: a custom
// module-aware importer over go/types), collects every object declared with
// a Deprecated: doc, and reports every reference to one from a non-test
// file. Test files are exempt: the wrappers' behaviour must itself stay
// under test. Exit status 1 means violations were found.
//
// Usage (from the module root):
//
//	go run ./cmd/depvet
package main

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const modulePath = "txkv"

// pkgInfo is one type-checked module package.
type pkgInfo struct {
	path  string
	files []*ast.File
	info  *types.Info
}

// modImporter resolves module-internal import paths from the source tree
// and everything else (the stdlib) through the source importer.
type modImporter struct {
	fset *token.FileSet
	root string
	std  types.Importer
	pkgs map[string]*types.Package
	done []*pkgInfo
}

func (im *modImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	if path == modulePath || strings.HasPrefix(path, modulePath+"/") {
		dir := filepath.Join(im.root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, modulePath), "/")))
		return im.check(path, dir)
	}
	return im.std.Import(path)
}

// check parses and type-checks one module package (non-test files only).
func (im *modImporter) check(path, dir string) (*types.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints (//go:build lines, _GOOS suffixes) for
		// the current platform, like the compiler would.
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{Uses: make(map[*ast.Ident]types.Object)}
	cfg := types.Config{Importer: im}
	pkg, err := cfg.Check(path, im.fset, files, info)
	if err != nil {
		return nil, err
	}
	im.pkgs[path] = pkg
	im.done = append(im.done, &pkgInfo{path: path, files: files, info: info})
	return pkg, nil
}

// modulePackages finds every directory in the tree holding non-test Go
// files and maps it to its import path.
func modulePackages(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if p != root && (strings.HasPrefix(base, ".") || base == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := modulePath
		if rel != "." {
			ip = modulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// Dedup (one entry per file was appended).
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}

// deprecated reports whether a doc comment carries the standard marker.
func deprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(line, "Deprecated:") {
			return true
		}
	}
	return false
}

// collectDeprecated returns the declaration positions (of the name idents)
// of every Deprecated: symbol in the package's files.
func collectDeprecated(files []*ast.File, marks map[token.Pos]string) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if deprecated(d.Doc) {
					marks[d.Name.Pos()] = d.Name.Name
				}
			case *ast.GenDecl:
				whole := deprecated(d.Doc)
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if whole || deprecated(s.Doc) {
							marks[s.Name.Pos()] = s.Name.Name
						}
					case *ast.ValueSpec:
						if whole || deprecated(s.Doc) {
							for _, n := range s.Names {
								marks[n.Pos()] = n.Name
							}
						}
					}
				}
			}
		}
	}
}

func main() {
	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "depvet:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	im := &modImporter{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
	}
	paths, err := modulePackages(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "depvet:", err)
		os.Exit(2)
	}
	for _, p := range paths {
		if _, err := im.Import(p); err != nil {
			fmt.Fprintf(os.Stderr, "depvet: %s: %v\n", p, err)
			os.Exit(2)
		}
	}

	// Pass 1: every Deprecated: declaration in the module.
	marks := make(map[token.Pos]string)
	for _, pi := range im.done {
		collectDeprecated(pi.files, marks)
	}

	// Pass 2: every use of a marked object outside its declaring file.
	type violation struct {
		pos  token.Position
		name string
		pkg  string
	}
	var violations []violation
	for _, pi := range im.done {
		for ident, obj := range pi.info.Uses {
			name, ok := marks[obj.Pos()]
			if !ok {
				continue
			}
			use := fset.Position(ident.Pos())
			if use.Filename == fset.Position(obj.Pos()).Filename {
				continue // the wrapper's own declaration site
			}
			violations = append(violations, violation{pos: use, name: name, pkg: pi.path})
		}
	}
	if len(violations) == 0 {
		fmt.Printf("depvet: %d packages clean (%d deprecated symbols guarded)\n", len(im.done), len(marks))
		return
	}
	sort.Slice(violations, func(i, j int) bool {
		if violations[i].pos.Filename != violations[j].pos.Filename {
			return violations[i].pos.Filename < violations[j].pos.Filename
		}
		return violations[i].pos.Line < violations[j].pos.Line
	})
	for _, v := range violations {
		rel, err := filepath.Rel(root, v.pos.Filename)
		if err != nil {
			rel = v.pos.Filename
		}
		fmt.Fprintf(os.Stderr, "%s:%d: call of deprecated symbol %s (package %s must use the context-first API)\n",
			rel, v.pos.Line, v.name, v.pkg)
	}
	fmt.Fprintf(os.Stderr, "depvet: %d violations\n", len(violations))
	os.Exit(1)
}
