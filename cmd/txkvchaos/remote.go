package main

// The -remote campaign: the same no-acknowledged-commit-lost audit, but
// run against the wire protocol in multi-process shape. A master-only
// cluster serves rpc; region-server nodes join over TCP, each behind a
// fault proxy that can partition, blackhole, or slow its link; writer
// clients connect through txkv.Connect and commit through the gateway.
// Faults are network faults against real sockets — killed processes,
// severed and degraded links — rather than the in-process crash injection
// of the default campaign, so what is exercised is the transport error
// mapping, the layout-cache invalidation discipline, the gateway's
// session cleanup, and master-driven recovery of remote region servers.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"txkv"
	"txkv/internal/kvstore"
	"txkv/internal/obs"
	"txkv/internal/rpc"
)

// faultProxy is a TCP forwarder with three injectable link faults:
// partition (existing connections severed, new ones refused), blackhole
// (forwarding pauses; no bytes lost, so healed connections resume), and
// slow-link (a fixed delay per forwarded chunk).
type faultProxy struct {
	ln net.Listener

	mu     sync.Mutex
	target string
	delay  time.Duration
	paused bool
	refuse bool
	closed bool
	conns  map[net.Conn]struct{}
}

func startFaultProxy() (*faultProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &faultProxy{ln: ln, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

func (p *faultProxy) Addr() string { return p.ln.Addr().String() }

// SetTarget points the proxy at the backend. Connections arriving before
// the target is set are dropped; callers retry through the usual
// transport-error path.
func (p *faultProxy) SetTarget(addr string) {
	p.mu.Lock()
	p.target = addr
	p.mu.Unlock()
}

func (p *faultProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		refuse, target := p.refuse || p.closed, p.target
		if !refuse {
			p.conns[c] = struct{}{}
		}
		p.mu.Unlock()
		if refuse || target == "" {
			c.Close()
			continue
		}
		go p.serve(c, target)
	}
}

func (p *faultProxy) serve(c net.Conn, target string) {
	up, err := net.Dial("tcp", target)
	if err != nil {
		p.drop(c)
		return
	}
	p.mu.Lock()
	if p.refuse || p.closed {
		p.mu.Unlock()
		up.Close()
		p.drop(c)
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go p.pipe(up, c, done)
	go p.pipe(c, up, done)
	<-done // either direction failing severs the pair
	p.drop(c)
	p.drop(up)
}

func (p *faultProxy) pipe(dst, src net.Conn, done chan<- struct{}) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			// Hold the chunk while blackholed; delay it on a slow link.
			for {
				p.mu.Lock()
				paused, delay := p.paused, p.delay
				p.mu.Unlock()
				if !paused {
					if delay > 0 {
						time.Sleep(delay)
					}
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	done <- struct{}{}
}

func (p *faultProxy) drop(c net.Conn) {
	c.Close()
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// Partition severs every live connection and refuses new ones until Heal.
func (p *faultProxy) Partition() {
	p.mu.Lock()
	p.refuse = true
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Blackhole pauses forwarding: calls hang, nothing is lost.
func (p *faultProxy) Blackhole() {
	p.mu.Lock()
	p.paused = true
	p.mu.Unlock()
}

// SlowLink adds a per-chunk forwarding delay.
func (p *faultProxy) SlowLink(d time.Duration) {
	p.mu.Lock()
	p.delay = d
	p.mu.Unlock()
}

// Heal clears every injected fault.
func (p *faultProxy) Heal() {
	p.mu.Lock()
	p.refuse, p.paused, p.delay = false, false, 0
	p.mu.Unlock()
}

func (p *faultProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.Partition()
}

// proxiedNode is one region-server "process" behind its fault proxy.
type proxiedNode struct {
	node  *rpc.RegionNode
	proxy *faultProxy
}

// nodeHostsPrimary reports whether the node currently leads at least one
// online region.
func nodeHostsPrimary(pn *proxiedNode) bool {
	for _, st := range pn.node.Server().ReplicaStates() {
		if st.Role == kvstore.RolePrimary && st.Online {
			return true
		}
	}
	return false
}

// startProxiedNode brings up a region node advertising its proxy: all
// traffic to the node — client reads, master assignment and recovery,
// write-set flushes — crosses the faultable link. Heartbeats run on the
// node's own outbound connection to the master, so link faults degrade
// service without tripping the failure detector; only killNode does that.
func startProxiedNode(id, masterAddr string) (*proxiedNode, error) {
	proxy, err := startFaultProxy()
	if err != nil {
		return nil, err
	}
	node, err := rpc.StartRegionNode(rpc.RegionNodeConfig{
		ID:         id,
		MasterAddr: masterAddr,
		Advertise:  proxy.Addr(),
		Server:     kvstore.ServerConfig{HeartbeatInterval: 200 * time.Millisecond},
	})
	if err != nil {
		proxy.Close()
		return nil, err
	}
	proxy.SetTarget(node.ListenAddr())
	return &proxiedNode{node: node, proxy: proxy}, nil
}

func (pn *proxiedNode) kill() {
	pn.node.Kill()
	pn.proxy.Close()
}

// runRemote is the -remote campaign entry point.
func runRemote(duration time.Duration, servers, clients, keys int, seed int64, repl int) {
	if servers < 2 {
		log.Fatal("need at least 2 region-server processes to survive kills")
	}
	cluster, err := txkv.Open(txkv.Config{
		Servers:                -1, // master-only: all region servers join over rpc
		HeartbeatInterval:      200 * time.Millisecond,
		MasterHeartbeatTimeout: 800 * time.Millisecond,
		Tracing:                true,
		// With -replication, regions are replicated across the remote
		// nodes and process kills aim at primaries: WAL entries cross the
		// wire to followers before ack, and kills must end in promotions.
		ReplicationFactor: repl,
		FollowerReads:     repl > 1,
	})
	if err != nil {
		log.Fatalf("open master: %v", err)
	}
	defer cluster.Stop()
	masterAddr, err := cluster.ServeRPC("127.0.0.1:0")
	if err != nil {
		log.Fatalf("serve rpc: %v", err)
	}
	fmt.Printf("master serving on %s\n", masterAddr)

	var (
		nodeMu  sync.Mutex
		nodes   []*proxiedNode
		nextID  int
		newNode = func() error {
			nextID++
			pn, err := startProxiedNode(fmt.Sprintf("rs%d", nextID), masterAddr)
			if err != nil {
				return err
			}
			nodeMu.Lock()
			nodes = append(nodes, pn)
			nodeMu.Unlock()
			return nil
		}
	)
	for i := 0; i < servers; i++ {
		if err := newNode(); err != nil {
			log.Fatalf("start region node: %v", err)
		}
	}
	defer func() {
		nodeMu.Lock()
		defer nodeMu.Unlock()
		for _, pn := range nodes {
			pn.node.Stop()
			pn.proxy.Close()
		}
	}()

	splits := []txkv.Key{keyOf(keys / 3), keyOf(2 * keys / 3)}
	if err := cluster.CreateTable("chaos", splits); err != nil {
		log.Fatalf("create table: %v", err)
	}

	// The watch audit over the wire: a watcher on its own connection
	// follows the chaos table's change stream through the streaming rpc
	// while links fault around it, handing off to token-resumed successor
	// streams throughout (see watch.go).
	const sentinelRow = "watch-sentinel"
	wremote, err := txkv.Connect(masterAddr)
	if err != nil {
		log.Fatalf("watch connect: %v", err)
	}
	defer wremote.Close()
	wcl, err := wremote.NewClient("watch-audit")
	if err != nil {
		log.Fatalf("watch client: %v", err)
	}
	watcher := startWatchAuditor(wcl, 0, sentinelRow)

	type ack struct {
		row, val string
	}
	var (
		mu        sync.Mutex
		acks      = make(map[string][]string) // row -> acknowledged values
		maybe     = make(map[string][]string) // row -> indeterminate-commit values
		committed int
		conflicts int
		indeterm  int
		reconns   int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: each owns its own wire connection (its own gateway
	// session), so dropping it exercises the server-side session cleanup.
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed*31 + int64(ci)))
			ctx := context.Background()
			var (
				remote *txkv.Remote
				cl     *txkv.Client
			)
			connect := func() {
				if remote != nil {
					remote.Close()
					remote, cl = nil, nil
				}
				r, err := txkv.Connect(masterAddr)
				if err != nil {
					return
				}
				c, err := r.NewClient(fmt.Sprintf("chaos-%d-%d", ci, rng.Int63()))
				if err != nil {
					r.Close()
					return
				}
				remote, cl = r, c
			}
			connect()
			defer func() {
				if remote != nil {
					remote.Close()
				}
			}()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if cl == nil {
					connect()
					continue
				}
				// Occasionally the client "process" dies: its connection
				// drops with transactions possibly open, and the gateway
				// must abort them and reclaim the session.
				if rng.Intn(200) == 0 {
					remote.Close()
					remote, cl = nil, nil
					mu.Lock()
					reconns++
					mu.Unlock()
					continue
				}
				var batch []ack
				_, err := cl.UpdateWith(ctx, txkv.TxnOptions{MaxRetries: txkv.NoRetry}, func(txn *txkv.Txn) error {
					batch = batch[:0]
					for j := 0; j < 3; j++ {
						row := string(keyOf(rng.Intn(keys)))
						val := fmt.Sprintf("c%d.%d", ci, i)
						if err := txn.Put(ctx, "chaos", txkv.Key(row), "f", []byte(val)); err != nil {
							return err
						}
						batch = append(batch, ack{row: row, val: val})
					}
					return nil
				})
				i++
				if err != nil {
					mu.Lock()
					switch {
					case errors.Is(err, txkv.ErrConflict):
						conflicts++
					case errors.Is(err, txkv.ErrCommitIndeterminate):
						// The commit may have landed: its values are
						// legal storage states but not required ones.
						indeterm++
						for _, a := range batch {
							maybe[a.row] = append(maybe[a.row], a.val)
						}
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				committed++
				for _, a := range batch {
					acks[a.row] = append(acks[a.row], a.val)
				}
				mu.Unlock()
			}
		}(ci)
	}

	var prevSnap obs.Snapshot
	checkObs := func(when string) {
		cur := cluster.Obs().Snapshot()
		bad := obs.CheckInvariants(prevSnap, cur)
		if f, li := cur.Gauges["txmgr.frontier"], cur.Gauges["txmgr.last_issued"]; f > li {
			bad = append(bad, fmt.Sprintf("frontier %d ahead of last issued %d", f, li))
		}
		prevSnap = cur
		if len(bad) > 0 {
			dumpSlow(cluster)
			log.Fatalf("observability invariants violated %s:\n  %v", when, bad)
		}
	}
	checkObs("at campaign start")

	// Network-fault injector.
	rng := rand.New(rand.NewSource(seed))
	partitions, blackholes, slowLinks, kills, rmBounces := 0, 0, 0, 0, 0
	faults := 0
	stamp := func() string { return time.Now().Format("15:04:05.000") }
	pickNode := func() *proxiedNode {
		nodeMu.Lock()
		defer nodeMu.Unlock()
		if len(nodes) == 0 {
			return nil
		}
		return nodes[rng.Intn(len(nodes))]
	}
	deadline := time.Now().Add(duration)
	for time.Now().Before(deadline) {
		time.Sleep(duration / 8)
		fault := rng.Intn(5)
		if repl > 1 && rng.Intn(2) == 0 {
			// Kill-a-replica campaign: half the schedule is process
			// kills, so every run actually exercises promotion.
			fault = 3
		}
		switch fault {
		case 0:
			pn := pickNode()
			if pn == nil {
				continue
			}
			fmt.Printf("[%s] partitioning %s for 500ms\n", stamp(), pn.node.Server().ID())
			pn.proxy.Partition()
			time.Sleep(500 * time.Millisecond)
			pn.proxy.Heal()
			partitions++
		case 1:
			pn := pickNode()
			if pn == nil {
				continue
			}
			fmt.Printf("[%s] blackholing %s for 400ms\n", stamp(), pn.node.Server().ID())
			pn.proxy.Blackhole()
			time.Sleep(400 * time.Millisecond)
			pn.proxy.Heal()
			blackholes++
		case 2:
			pn := pickNode()
			if pn == nil {
				continue
			}
			fmt.Printf("[%s] slowing link to %s (15ms/chunk) for 600ms\n", stamp(), pn.node.Server().ID())
			pn.proxy.SlowLink(15 * time.Millisecond)
			time.Sleep(600 * time.Millisecond)
			pn.proxy.Heal()
			slowLinks++
		case 3:
			// Kill a region-server process and start a replacement; the
			// master must recover its regions onto the survivors.
			nodeMu.Lock()
			if len(nodes) < 2 {
				nodeMu.Unlock()
				continue
			}
			vi := rng.Intn(len(nodes))
			if repl > 1 {
				// Kill-the-primary: prefer a node leading at least one
				// region, so the kill exercises over-the-wire promotion.
				var prim []int
				for i, pn := range nodes {
					if nodeHostsPrimary(pn) {
						prim = append(prim, i)
					}
				}
				if len(prim) > 0 {
					vi = prim[rng.Intn(len(prim))]
				}
			}
			victim := nodes[vi]
			nodes = append(nodes[:vi], nodes[vi+1:]...)
			nodeMu.Unlock()
			fmt.Printf("[%s] killing %s\n", stamp(), victim.node.Server().ID())
			victim.kill()
			kills++
			if err := newNode(); err != nil {
				fmt.Printf("replacement node failed: %v\n", err)
			}
		case 4:
			fmt.Printf("[%s] bouncing recovery manager\n", stamp())
			cluster.CrashRecoveryManager()
			time.Sleep(200 * time.Millisecond)
			cluster.RestartRecoveryManager()
			rmBounces++
		}
		faults++
		checkObs(fmt.Sprintf("after fault %d", faults))
	}
	close(stop)
	wg.Wait()

	// Heal every surviving link before the audit: the theorem is about
	// durability across faults, not availability during them.
	nodeMu.Lock()
	for _, pn := range nodes {
		pn.proxy.Heal()
	}
	nodeMu.Unlock()
	checkObs("after campaign")
	if repl > 1 {
		assertFailover(cluster, kills)
	}

	// End the watcher's feed at a known point and reconcile against acks.
	if _, err := wcl.Update(context.Background(), func(txn *txkv.Txn) error {
		return txn.Put(context.Background(), "chaos", txkv.Key(sentinelRow), "f", []byte("done"))
	}); err != nil {
		log.Fatalf("sentinel commit: %v", err)
	}
	if err := watcher.wait(30 * time.Second); err != nil {
		dumpSlow(cluster)
		log.Fatalf("watch audit: %v", err)
	}
	watcher.report()
	mu.Lock()
	watchBad := watcher.audit(acks)
	mu.Unlock()

	fmt.Printf("campaign done: %d committed, %d conflicts, %d indeterminate, %d partitions, %d blackholes, %d slow-links, %d process kills, %d RM bounces, %d client reconnects\n",
		committed, conflicts, indeterm, partitions, blackholes, slowLinks, kills, rmBounces, reconns)

	// Audit over the wire: every acknowledged row must hold one of its
	// acknowledged values — or a value from an indeterminate commit that
	// turned out to have landed.
	remote, err := txkv.Connect(masterAddr)
	if err != nil {
		log.Fatalf("auditor connect: %v", err)
	}
	defer remote.Close()
	auditor, err := remote.NewClient("auditor")
	if err != nil {
		log.Fatalf("auditor: %v", err)
	}
	mu.Lock()
	rows := make(map[string][]string, len(acks))
	for r, vs := range acks {
		rows[r] = append(append([]string(nil), vs...), maybe[r]...)
	}
	mu.Unlock()

	lost := 0
	auditDeadline := time.Now().Add(60 * time.Second)
	for row, vals := range rows {
		for {
			var (
				v  []byte
				ok bool
			)
			txn, err := auditor.BeginTxn(txkv.TxnOptions{ReadOnly: true, Mode: txkv.SnapshotFrontier})
			if err == nil {
				v, ok, err = txn.Get(context.Background(), "chaos", txkv.Key(row), "f")
				txn.Abort()
			}
			if err == nil && ok && contains(vals, string(v)) {
				break
			}
			if time.Now().After(auditDeadline) {
				fmt.Printf("LOST: row %s acked %d values, store has %q (ok=%v err=%v)\n",
					row, len(vals), v, ok, err)
				lost++
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if lost > 0 || watchBad > 0 {
		dumpSlow(cluster)
		if lost > 0 {
			fmt.Printf("AUDIT FAILED: %d rows lost acknowledged commits\n", lost)
		}
		if watchBad > 0 {
			fmt.Printf("WATCH AUDIT FAILED: %d exactly-once violations\n", watchBad)
		}
		os.Exit(1)
	}
	fmt.Printf("AUDIT OK: all %d acknowledged rows intact across the wire after %d kills and %d link faults\n",
		len(rows), kills, partitions+blackholes+slowLinks)
	fmt.Printf("WATCH AUDIT OK: every acknowledged write delivered exactly once over the wire\n")
}
