// Command txkvchaos runs a randomized fault-injection campaign against a
// full cluster and verifies the paper's headline guarantee at the end: no
// acknowledged commit is ever lost. Concurrent clients stream transactions
// while servers crash on a schedule, clients die mid-flush, and the
// recovery manager itself is bounced; afterwards every acknowledged write
// is audited against a strict snapshot.
//
// With -datadir the cluster journals durable state to real files, and after
// the campaign the whole cluster is stopped and reopened from that
// directory before the audit — so the audit additionally proves real
// crash-restart recovery, not just in-process fail-over.
//
// With -remote the campaign runs in multi-process shape instead: a
// master-only cluster serves the wire protocol, region-server nodes join
// over TCP behind per-node fault proxies, and the faults become network
// faults — partitions, blackholes, slow links, and process kills against
// real sockets (see remote.go).
//
// Usage:
//
//	txkvchaos -duration 20s -servers 3 -clients 4 -seed 7
//	txkvchaos -duration 20s -datadir /tmp/txkv-chaos
//	txkvchaos -duration 20s -remote
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"txkv"
	"txkv/internal/obs"
)

// dumpSlow prints the slow-op ring as JSON — the post-mortem trail when the
// campaign fails.
func dumpSlow(c *txkv.Cluster) {
	ops := c.Tracer().SlowOps()
	data, err := json.MarshalIndent(ops, "", "  ")
	if err != nil {
		return
	}
	fmt.Printf("slow-op ring (%d entries):\n%s\n", len(ops), data)
}

func main() {
	log.SetFlags(0)
	var (
		duration = flag.Duration("duration", 15*time.Second, "campaign duration")
		servers  = flag.Int("servers", 3, "initial region servers (>= 2)")
		clients  = flag.Int("clients", 4, "concurrent transactional clients")
		keys     = flag.Int("keys", 500, "key-space size")
		seed     = flag.Int64("seed", 1, "fault-schedule seed")
		dataDir  = flag.String("datadir", "", "journal durable state here and audit across a full stop+reopen")
		compact  = flag.Duration("compact", time.Second, "storage-janitor cadence (WAL rolls, store-file + DFS log compaction) racing the faults; 0 disables")
		remote   = flag.Bool("remote", false, "multi-process campaign: region servers join over the wire protocol behind fault proxies (partition/blackhole/slow-link/kill)")
		repl     = flag.Int("replication", 1, "region replication factor (copies per region, primary included); >1 turns crashes into kill-the-primary failover chaos with follower reads on")
	)
	flag.Parse()
	if *remote {
		runRemote(*duration, *servers, *clients, *keys, *seed, *repl)
		return
	}
	if *servers < 2 {
		log.Fatal("need at least 2 servers to survive crashes")
	}

	cfg := txkv.Config{
		Servers:                *servers,
		HeartbeatInterval:      200 * time.Millisecond,
		MasterHeartbeatTimeout: 500 * time.Millisecond,
		WALSyncInterval:        0, // persistence only via heartbeats: maximal exposure
		// The storage janitor races the fault schedule: WAL rolls,
		// store-file compactions, and DFS log compactions run while
		// servers crash around them, so the campaign (and the reopen
		// audit below) exercises interrupted reclamation, not just
		// interrupted commits.
		CompactionInterval:  *compact,
		CompactionThreshold: 4,
		// Trace the campaign: the slow-op ring is dumped on failure, and
		// the registry snapshot is invariant-checked after every fault.
		Tracing: true,
		// With -replication, every region gets repl copies and the fault
		// injector aims crashes at current primaries: each kill must end
		// in a follower promotion, not a WAL-split replay.
		ReplicationFactor: *repl,
		FollowerReads:     *repl > 1,
	}
	if *dataDir != "" {
		cfg.Persistence = txkv.PersistDisk
		cfg.DataDir = *dataDir
	}
	cluster, err := txkv.Open(cfg)
	if err != nil {
		log.Fatalf("open cluster: %v", err)
	}
	defer func() { cluster.Stop() }()

	splits := []txkv.Key{keyOf(*keys / 3), keyOf(2 * *keys / 3)}
	if err := cluster.CreateTable("chaos", splits); err != nil {
		// A persistent data directory from an earlier campaign restores
		// the table on open; keep writing into it.
		if !errors.Is(err, txkv.ErrTableExists) {
			log.Fatalf("create table: %v", err)
		}
		fmt.Printf("reusing restored table from %s\n", *dataDir)
	}

	// The watch audit rides the campaign: a background watcher follows the
	// chaos table's change stream, periodically handing off to a
	// token-resumed successor, and is reconciled against the acks at the
	// end (see watch.go). It starts at the log's current position so a
	// reused -datadir (whose replayable history was truncated on restore)
	// opens inside the retention horizon.
	const sentinelRow = "watch-sentinel"
	wcl, err := cluster.NewClient("watch-audit")
	if err != nil {
		log.Fatalf("watch client: %v", err)
	}
	watcher := startWatchAuditor(wcl, cluster.Log().LastTS(), sentinelRow)

	type ack struct {
		row, val string
	}
	var (
		mu        sync.Mutex
		acks      = make(map[string][]string) // row -> acknowledged values
		committed int
		conflicts int
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers.
	for ci := 0; ci < *clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed*31 + int64(ci)))
			ctx := context.Background()
			var cl *txkv.Client
			var err error
			newClient := func() {
				cl, err = cluster.NewClient(fmt.Sprintf("chaos-%d-%d", ci, rng.Int63()))
				if err != nil {
					cl = nil
				}
			}
			newClient()
			i := 0
			for {
				select {
				case <-stop:
					if cl != nil {
						cl.Stop()
					}
					return
				default:
				}
				if cl == nil {
					newClient()
					continue
				}
				// Occasionally the client itself "dies" mid-stream.
				if rng.Intn(200) == 0 {
					cl.Crash()
					newClient()
					continue
				}
				var batch []ack
				// No automatic conflict retry: the campaign counts SI
				// conflicts explicitly.
				_, err := cl.UpdateWith(ctx, txkv.TxnOptions{MaxRetries: txkv.NoRetry}, func(txn *txkv.Txn) error {
					batch = batch[:0]
					for j := 0; j < 3; j++ {
						row := string(keyOf(rng.Intn(*keys)))
						val := fmt.Sprintf("c%d.%d", ci, i)
						if err := txn.Put(ctx, "chaos", txkv.Key(row), "f", []byte(val)); err != nil {
							return err
						}
						batch = append(batch, ack{row: row, val: val})
					}
					return nil
				})
				i++
				if err != nil {
					if errors.Is(err, txkv.ErrConflict) {
						mu.Lock()
						conflicts++
						mu.Unlock()
					}
					continue
				}
				mu.Lock()
				committed++
				for _, a := range batch {
					acks[a.row] = append(acks[a.row], a.val)
				}
				mu.Unlock()
			}
		}(ci)
	}

	// Observability invariant check, run after every injected fault: no
	// exported counter may go backwards (instance churn must not reset the
	// cluster totals), no gauge may go negative, and the visibility
	// frontier may never pass the newest issued timestamp.
	var prevSnap obs.Snapshot
	checkObs := func(when string) {
		cur := cluster.Obs().Snapshot()
		bad := obs.CheckInvariants(prevSnap, cur)
		if f, li := cur.Gauges["txmgr.frontier"], cur.Gauges["txmgr.last_issued"]; f > li {
			bad = append(bad, fmt.Sprintf("frontier %d ahead of last issued %d", f, li))
		}
		prevSnap = cur
		if len(bad) > 0 {
			dumpSlow(cluster)
			log.Fatalf("observability invariants violated %s:\n  %v", when, bad)
		}
	}
	checkObs("at campaign start")

	// Fault injector.
	rng := rand.New(rand.NewSource(*seed))
	crashes, rmBounces := 0, 0
	faults := 0
	deadline := time.Now().Add(*duration)
	for time.Now().Before(deadline) {
		time.Sleep(*duration / 6)
		switch rng.Intn(3) {
		case 0, 1:
			// Crash a random server, then add a replacement so capacity
			// stays up.
			ids := cluster.ServerIDs()
			live := ids[:0:0]
			for _, id := range ids {
				if srv, ok := cluster.Server(id); ok && !srv.Crashed() {
					live = append(live, id)
				}
			}
			if len(live) < 2 {
				continue
			}
			victim := live[rng.Intn(len(live))]
			if *repl > 1 {
				// Kill-the-primary: aim at a server actually leading
				// regions, so every crash exercises the promotion path.
				if prim := primaryServers(cluster, live); len(prim) > 0 {
					victim = prim[rng.Intn(len(prim))]
				}
			}
			fmt.Printf("[%s] crashing %s\n", time.Now().Format("15:04:05.000"), victim)
			if err := cluster.CrashServer(victim); err == nil {
				crashes++
				if _, err := cluster.AddServer(); err == nil {
					_, _ = cluster.Rebalance()
				}
			}
		case 2:
			fmt.Printf("[%s] bouncing recovery manager\n", time.Now().Format("15:04:05.000"))
			cluster.CrashRecoveryManager()
			time.Sleep(200 * time.Millisecond)
			cluster.RestartRecoveryManager()
			rmBounces++
		}
		faults++
		checkObs(fmt.Sprintf("after fault %d", faults))
	}
	close(stop)
	wg.Wait()
	checkObs("after campaign")
	if *repl > 1 {
		assertFailover(cluster, crashes)
	}

	// End the watcher's feed at a known point: one sentinel commit after
	// the writers are done, then reconcile delivered events against acks.
	if _, err := wcl.Update(context.Background(), func(txn *txkv.Txn) error {
		return txn.Put(context.Background(), "chaos", txkv.Key(sentinelRow), "f", []byte("done"))
	}); err != nil {
		log.Fatalf("sentinel commit: %v", err)
	}
	if err := watcher.wait(30 * time.Second); err != nil {
		dumpSlow(cluster)
		log.Fatalf("watch audit: %v", err)
	}
	watcher.report()
	mu.Lock()
	watchBad := watcher.audit(acks)
	mu.Unlock()

	fmt.Printf("campaign done: %d committed, %d conflicts, %d server crashes, %d RM bounces (%d obs checks passed)\n",
		committed, conflicts, crashes, rmBounces, faults+2)
	if rc := cluster.ReclaimStats(); rc.Compactions > 0 {
		size, _ := cluster.DataDirBytes()
		fmt.Printf("reclamation: %d passes, %d store files retired (%d logical bytes), %d segments dropped (%d physical bytes reclaimed); datadir now %d bytes\n",
			rc.Compactions, rc.FilesRetired, rc.BytesRetired, rc.SegmentsDropped, rc.BytesReclaimed, size)
	}

	// With a data directory, the real test: stop the whole process-local
	// cluster and reopen it from disk. The audit below then runs against
	// the restarted incarnation — acknowledged commits must have survived
	// the restart, not just the in-campaign crashes.
	if *dataDir != "" {
		fmt.Printf("[%s] restarting cluster from %s\n", time.Now().Format("15:04:05.000"), *dataDir)
		cluster.Stop()
		cluster, err = txkv.Reopen(cfg)
		if err != nil {
			log.Fatalf("reopen cluster: %v", err)
		}

		// The watcher's final token must survive the restart: resume it
		// against the reopened cluster and receive a post-restart commit.
		rcl, err := cluster.NewClient("watch-restart")
		if err != nil {
			log.Fatalf("watch-restart client: %v", err)
		}
		rws, err := rcl.WatchResume(context.Background(), watcher.finalToken())
		if err != nil {
			log.Fatalf("watch resume across restart: %v", err)
		}
		if _, err := rcl.Update(context.Background(), func(txn *txkv.Txn) error {
			return txn.Put(context.Background(), "chaos", "watch-restart-marker", "f", []byte("post-reopen"))
		}); err != nil {
			log.Fatalf("post-restart marker commit: %v", err)
		}
		rctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		for {
			ev, err := rws.Next(rctx)
			if err != nil {
				log.Fatalf("watch across restart: %v", err)
			}
			if string(ev.Key) == "watch-restart-marker" {
				break
			}
		}
		cancel()
		rws.Close()
		fmt.Printf("watch resume token survived the restart\n")
	}

	// Audit: every acknowledged row must hold one of its acknowledged
	// values (later acks may overwrite earlier ones).
	auditor, err := cluster.NewClient("auditor")
	if err != nil {
		log.Fatalf("auditor: %v", err)
	}
	mu.Lock()
	rows := make(map[string][]string, len(acks))
	for r, vs := range acks {
		rows[r] = vs
	}
	mu.Unlock()

	lost := 0
	auditDeadline := time.Now().Add(60 * time.Second)
	for row, vals := range rows {
		for {
			// A frontier view: non-blocking (a fresh snapshot would wait
			// out in-flight recoveries instead of letting the loop poll).
			var (
				v  []byte
				ok bool
			)
			txn, err := auditor.BeginTxn(txkv.TxnOptions{ReadOnly: true, Mode: txkv.SnapshotFrontier})
			if err == nil {
				v, ok, err = txn.Get(context.Background(), "chaos", txkv.Key(row), "f")
				txn.Abort()
			}
			if err == nil && ok && contains(vals, string(v)) {
				break
			}
			if time.Now().After(auditDeadline) {
				fmt.Printf("LOST: row %s acked %d values, store has %q (ok=%v err=%v)\n",
					row, len(vals), v, ok, err)
				lost++
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if lost > 0 || watchBad > 0 {
		dumpSlow(cluster)
		if lost > 0 {
			fmt.Printf("AUDIT FAILED: %d rows lost acknowledged commits\n", lost)
		}
		if watchBad > 0 {
			fmt.Printf("WATCH AUDIT FAILED: %d exactly-once violations\n", watchBad)
		}
		os.Exit(1)
	}
	fmt.Printf("AUDIT OK: all %d acknowledged rows intact after %d crashes\n", len(rows), crashes)
	fmt.Printf("WATCH AUDIT OK: every acknowledged write delivered exactly once\n")
}

// primaryServers filters ids down to the servers currently leading at least
// one online region — the kill-the-primary targets.
func primaryServers(c *txkv.Cluster, ids []string) []string {
	hosts := make(map[string]bool)
	for _, row := range c.ReplicaDebugRows() {
		if row.Role == "primary" && row.Online {
			hosts[row.Server] = true
		}
	}
	out := ids[:0:0]
	for _, id := range ids {
		if hosts[id] {
			out = append(out, id)
		}
	}
	return out
}

// assertFailover verifies the replication guarantee after a kill-the-primary
// campaign: at least one master-driven failover completed by follower
// promotion (in-flight ones get a settling window), and the average failover
// window stayed bounded. Fatal on violation.
func assertFailover(c *txkv.Cluster, kills int) {
	if kills == 0 {
		return
	}
	const (
		windowBudget = 5 * time.Second  // per-failover orchestration budget
		settle       = 15 * time.Second // grace for failovers still in flight
	)
	// Poll until the failover counters go quiescent: kills near the end of
	// the campaign may still be inside the detection timeout.
	var snap obs.Snapshot
	deadline := time.Now().Add(settle)
	lastChange := time.Now()
	prev := int64(-1)
	for {
		snap = c.Obs().Snapshot()
		fo := snap.Counters["replica.failovers"]
		if fo != prev {
			prev, lastChange = fo, time.Now()
		}
		if fo > 0 && snap.Counters["replica.failover_promotions"] > 0 &&
			(time.Since(lastChange) > 2*time.Second || fo >= int64(kills)) {
			break
		}
		if time.Now().After(deadline) {
			if fo > 0 && snap.Counters["replica.failover_promotions"] > 0 {
				break
			}
			dumpSlow(c)
			log.Fatalf("no promotion-based failover observed after %d primary kills (failovers=%d promotions=%d splits=%d)",
				kills, snap.Counters["replica.failovers"],
				snap.Counters["replica.failover_promotions"], snap.Counters["replica.failover_splits"])
		}
		time.Sleep(50 * time.Millisecond)
	}
	fo := snap.Counters["replica.failovers"]
	avg := time.Duration(snap.Counters["replica.failover_total_ms"]/fo) * time.Millisecond
	fmt.Printf("replication: %d failovers (%d regions promoted, %d WAL-split replayed), avg failover window %v\n",
		fo, snap.Counters["replica.failover_promotions"], snap.Counters["replica.failover_splits"], avg)
	if avg > windowBudget {
		dumpSlow(c)
		log.Fatalf("avg failover window %v exceeds budget %v", avg, windowBudget)
	}
}

func keyOf(i int) txkv.Key { return txkv.Key(fmt.Sprintf("key%06d", i)) }

func contains(vals []string, v string) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}
