package main

// The watch audit: alongside the no-acknowledged-commit-lost audit, a
// change-stream watcher follows the campaign's commits off the commit log
// and proves the delivery guarantee end to end: every acknowledged commit
// is delivered to a resuming watcher exactly once, in commit order. The
// watcher never sits on a single stream for long — it repeatedly hands off
// to a successor resumed from its own token (opening the successor before
// closing the predecessor, so the log-retention pin never lapses), which is
// exactly the client-restart pattern the resume tokens exist for. If a
// stream dies mid-campaign (a dropped wire connection in -remote shape) the
// watcher resumes from the last fully-delivered commit instead of failing.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"txkv"
)

// watchResumeEvery is how many commit batches a stream serves before the
// auditor hands off to a token-resumed successor.
const watchResumeEvery = 32

type watchAuditor struct {
	cl       *txkv.Client
	sentinel string // row whose arrival ends the feed
	done     chan struct{}

	mu        sync.Mutex
	delivered map[string]int // row\x00value -> delivery count
	events    int
	commits   int
	resumes   int
	outOfOrd  int // commit-timestamp order violations
	token     string
	failure   error
}

// startWatchAuditor opens a change stream over the whole "chaos" table from
// the given position and consumes it in the background until a commit to
// sentinelRow arrives. Callers commit the sentinel after the writers stop,
// then wait() and audit().
func startWatchAuditor(cl *txkv.Client, from txkv.Timestamp, sentinelRow string) *watchAuditor {
	a := &watchAuditor{
		cl:        cl,
		sentinel:  sentinelRow,
		done:      make(chan struct{}),
		delivered: make(map[string]int),
	}
	go a.run(from)
	return a
}

func (a *watchAuditor) run(from txkv.Timestamp) {
	defer close(a.done)
	ctx := context.Background()
	ws, err := a.cl.Watch(ctx, "chaos", txkv.KeyRange{}, from)
	if err != nil {
		a.fail(fmt.Errorf("open watch: %w", err))
		return
	}
	defer func() { ws.Close() }()

	lastToken := ws.Token()
	var lastCTS txkv.Timestamp
	sinceResume := 0
	for {
		batch, err := ws.NextBatch(ctx)
		if err != nil {
			// The stream died mid-campaign. Resume from the last fully
			// delivered commit; exactly-once across the gap is the point.
			ws.Close()
			next, rerr := a.resumeRetry(ctx, lastToken)
			if rerr != nil {
				a.fail(fmt.Errorf("watch died (%v) and resume failed: %w", err, rerr))
				return
			}
			ws = next
			a.mu.Lock()
			a.resumes++
			a.mu.Unlock()
			continue
		}
		if len(batch.Events) == 0 {
			lastToken = ws.Token() // progress-only: position still advances
			continue
		}
		hitSentinel := false
		a.mu.Lock()
		a.commits++
		if batch.CommitTS <= lastCTS {
			a.outOfOrd++
		}
		for _, ev := range batch.Events {
			a.events++
			a.delivered[string(ev.Key)+"\x00"+string(ev.Value)]++
			if string(ev.Key) == a.sentinel {
				hitSentinel = true
			}
		}
		a.mu.Unlock()
		lastCTS = batch.CommitTS
		lastToken = ws.Token()
		if hitSentinel {
			a.mu.Lock()
			a.token = lastToken
			a.mu.Unlock()
			return
		}
		if sinceResume++; sinceResume >= watchResumeEvery {
			sinceResume = 0
			// Routine handoff: open the successor from the token before
			// closing the predecessor so the retention pin never lapses.
			if next, err := a.cl.WatchResume(ctx, lastToken); err == nil {
				ws.Close()
				ws = next
				a.mu.Lock()
				a.resumes++
				a.mu.Unlock()
			}
		}
	}
}

func (a *watchAuditor) resumeRetry(ctx context.Context, token string) (*txkv.WatchStream, error) {
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		var ws *txkv.WatchStream
		if ws, err = a.cl.WatchResume(ctx, token); err == nil {
			return ws, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, err
}

func (a *watchAuditor) fail(err error) {
	a.mu.Lock()
	a.failure = err
	a.mu.Unlock()
}

// wait blocks until the watcher has seen the sentinel commit (or failed),
// returning the watcher's error state.
func (a *watchAuditor) wait(timeout time.Duration) error {
	select {
	case <-a.done:
	case <-time.After(timeout):
		a.mu.Lock()
		defer a.mu.Unlock()
		return fmt.Errorf("watcher did not reach the sentinel within %v (%d events, %d commits so far)",
			timeout, a.events, a.commits)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.failure
}

// finalToken returns the resume token taken after the sentinel commit —
// valid only once wait() has returned nil.
func (a *watchAuditor) finalToken() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.token
}

// audit reconciles the delivered events against the acknowledged writes:
// every acked (row, value) pair must have been delivered exactly once, no
// pair of any provenance may have been delivered twice, and commit
// timestamps must have arrived strictly ascending. Returns the number of
// violations, printing each.
func (a *watchAuditor) audit(acks map[string][]string) int {
	a.mu.Lock()
	defer a.mu.Unlock()

	bad := 0
	for row, vals := range acks {
		// Dedupe within a row: a transaction that drew the same row twice
		// acks the value twice but commits (and delivers) one cell write.
		uniq := make(map[string]struct{}, len(vals))
		for _, v := range vals {
			uniq[v] = struct{}{}
		}
		for v := range uniq {
			if n := a.delivered[row+"\x00"+v]; n != 1 {
				fmt.Printf("WATCH: acked write %s=%q delivered %d times, want exactly 1\n", row, v, n)
				bad++
			}
		}
	}
	for key, n := range a.delivered {
		if n > 1 {
			fmt.Printf("WATCH: event %q delivered %d times\n", key, n)
			bad++
		}
	}
	if a.outOfOrd > 0 {
		fmt.Printf("WATCH: %d commit batches arrived out of timestamp order\n", a.outOfOrd)
		bad += a.outOfOrd
	}
	return bad
}

// report prints the watcher's campaign totals.
func (a *watchAuditor) report() {
	a.mu.Lock()
	defer a.mu.Unlock()
	fmt.Printf("watch audit: %d events in %d commits across %d stream resumes\n",
		a.events, a.commits, a.resumes)
}
