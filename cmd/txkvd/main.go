// Command txkvd runs one txkv process of a multi-process deployment,
// speaking the wire protocol documented in PROTOCOL.md.
//
// Two roles exist. The master role runs the control plane — the HBase-like
// master, the shared DFS, the transaction manager with its recovery log,
// and the recovery middleware — and serves the master, DFS, and transaction
// services on -listen. The region role runs one region server that
// registers with -master, stores its WAL and store files through the
// master's DFS service, and serves the region service (reads, scans,
// write-set apply, region lifecycle) on its own -listen.
//
// A minimal three-process cluster on one machine:
//
//	txkvd -role master -listen 127.0.0.1:7420 &
//	txkvd -role region -id rs1 -master 127.0.0.1:7420 &
//	txkvd -role region -id rs2 -master 127.0.0.1:7420 &
//
// Clients connect with txkv.Connect("127.0.0.1:7420"). The master also
// accepts -servers to run in-process region servers alongside remote ones
// (mixed layouts route transparently); by default it runs none and waits
// for region processes to register.
//
// -debug starts the observability HTTP server (/metrics, /debug/slow,
// /debug/regions, /debug/pprof) on the master role.
//
// -replication N (master role) turns on region replication: every region
// gets N copies — one primary, N-1 followers — and a commit is acknowledged
// only after a majority of copies hold its WAL entries. -follower-reads lets
// snapshot scans hit follower copies when their replicated frontier covers
// the read timestamp. -max-inflight caps concurrently-executing requests per
// wire connection on either role (backpressure via the connection's read
// loop).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"txkv"
	"txkv/internal/rpc"
)

func main() {
	log.SetFlags(0)
	var (
		role      = flag.String("role", "", "process role: master or region")
		listen    = flag.String("listen", "127.0.0.1:0", "wire-protocol listen address")
		masterFlg = flag.String("master", "", "master address to join (region role)")
		advertise = flag.String("advertise", "", "address other processes should dial for this region server (default: the bound listen address)")
		id        = flag.String("id", "", "region-server id (region role; default region-<pid>)")
		servers   = flag.Int("servers", 0, "in-process region servers on the master (0 = none, remote-only)")
		debug     = flag.String("debug", "", "debug/metrics HTTP listen address (master role; empty = off)")
		repl      = flag.Int("replication", 1, "region replication factor: copies per region, primary included (master role; 1 = off)")
		followerR = flag.Bool("follower-reads", false, "serve snapshot scans from follower replicas when fresh enough (master role)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently-executing requests per wire connection (0 = unlimited)")
	)
	flag.Parse()

	switch *role {
	case "master":
		runMaster(*listen, *debug, *servers, *repl, *followerR, *inflight)
	case "region":
		runRegion(*listen, *masterFlg, *advertise, *id, *inflight)
	default:
		log.Fatalf("txkvd: -role must be master or region (got %q)", *role)
	}
}

// waitSignal blocks until SIGINT or SIGTERM.
func waitSignal() os.Signal {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	return <-ch
}

func runMaster(listen, debug string, servers, repl int, followerReads bool, inflight int) {
	cfg := txkv.Config{
		Servers:            servers,
		ReplicationFactor:  repl,
		FollowerReads:      followerReads,
		MaxInflightPerConn: inflight,
	}
	if servers <= 0 {
		cfg.Servers = -1 // master-only: region servers join over RPC
	}
	cluster, err := txkv.Open(cfg)
	if err != nil {
		log.Fatalf("txkvd: open cluster: %v", err)
	}
	defer cluster.Stop()

	addr, err := cluster.ServeRPC(listen)
	if err != nil {
		log.Fatalf("txkvd: serve %s: %v", listen, err)
	}
	log.Printf("txkvd: master serving on %s (%d local region servers)", addr, servers)

	if debug != "" {
		d, err := cluster.ServeDebug(debug)
		if err != nil {
			log.Fatalf("txkvd: debug server on %s: %v", debug, err)
		}
		defer d.Close()
		log.Printf("txkvd: debug endpoints on http://%s/metrics", d.Addr())
	}

	sig := waitSignal()
	log.Printf("txkvd: %v — shutting down", sig)
}

func runRegion(listen, master, advertise, id string, inflight int) {
	if master == "" {
		log.Fatal("txkvd: region role requires -master")
	}
	if id == "" {
		id = fmt.Sprintf("region-%d", os.Getpid())
	}
	node, err := rpc.StartRegionNode(rpc.RegionNodeConfig{
		ID:                 id,
		MasterAddr:         master,
		Listen:             listen,
		Advertise:          advertise,
		MaxInflightPerConn: inflight,
	})
	if err != nil {
		log.Fatalf("txkvd: start region server: %v", err)
	}
	defer node.Stop()
	log.Printf("txkvd: region server %s serving on %s (master %s)",
		node.Server().ID(), node.Addr(), master)

	sig := waitSignal()
	log.Printf("txkvd: %v — shutting down", sig)
}
