// Command txkvbench regenerates the paper's evaluation (§4): every figure
// plus the additional claims quantified in the text. Each experiment prints
// the same rows/series the paper reports; EXPERIMENTS.md records a
// reference run against the paper's numbers.
//
// Usage:
//
//	txkvbench -experiment fig2a       # response time vs throughput, sync vs async persistence
//	txkvbench -experiment fig2b       # tracking overhead vs heartbeat interval
//	txkvbench -experiment fig3        # throughput/response-time series across a server failure
//	txkvbench -experiment replaybound # write-sets replayed vs heartbeat interval (§3.1 bound)
//	txkvbench -experiment truncation  # log growth with/without truncation (§3.2 checkpoint)
//	txkvbench -experiment clientfail  # client-failure recovery (§3.1)
//	txkvbench -experiment rmfail      # recovery-manager fail-over (§3.3)
//	txkvbench -experiment durability  # storage engine: mem vs disk backend + timed restart
//	txkvbench -experiment readwrite   # hot-path Get/Scan latency + parallel commit throughput
//	txkvbench -experiment compaction  # DataDir plateau + read p99 under the storage janitor
//	txkvbench -experiment scan        # streaming cursor scans vs materializing slice scans
//	txkvbench -experiment txn_retry   # managed Update retry vs caller retry loops under contention
//	txkvbench -experiment coldread    # store-file v1 vs v2: cold gets, cold scans, disk footprint
//	txkvbench -experiment rpc         # wire-protocol overhead: loopback vs multi-process tcp
//	txkvbench -experiment watch       # change streams: commit-path isolation, delivery latency, catch-up replay
//	txkvbench -experiment replication # region replication: quorum-ack commit price, follower-read scans, failover blip
//	txkvbench -experiment all
//
// The readwrite, scan, txn_retry, coldread, rpc, and watch experiments
// additionally write their machine-readable results to the path given by
// -json (the BENCH_PR2.json / BENCH_PR4.json / BENCH_PR5.json /
// BENCH_PR7.json / BENCH_PR8.json / BENCH_PR9.json regression formats). The -cold flag makes the readwrite and compaction
// read phases drop the block caches as they run.
//
// The -scale flag shrinks or grows every workload dimension together;
// -records / -duration override individual knobs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"txkv/internal/bench"
)

// jsonSuffix derives "base.name.json" from "base.json" (or appends when
// there is no .json extension).
func jsonSuffix(path, name string) string {
	if strings.HasSuffix(path, ".json") {
		return strings.TrimSuffix(path, ".json") + "." + name + ".json"
	}
	return path + "." + name
}

func main() {
	log.SetFlags(0)
	var (
		experiment = flag.String("experiment", "all", "fig2a|fig2b|fig3|replaybound|truncation|clientfail|rmfail|durability|readwrite|compaction|scan|txn_retry|coldread|rpc|watch|replication|all")
		records    = flag.Int("records", 20000, "rows to load")
		duration   = flag.Duration("duration", 4*time.Second, "measurement duration per point")
		threads    = flag.Int("threads", 50, "client threads (the paper uses 50)")
		seed       = flag.Int64("seed", 1, "workload seed")
		jsonPath   = flag.String("json", "", "write readwrite results as JSON to this path")
		obsFlag    = flag.Bool("obs", false, "trace the run and embed the metric registry snapshot in the JSON result (readwrite, scan)")
		coldFlag   = flag.Bool("cold", false, "drop block caches during read phases (readwrite, compaction)")
	)
	flag.Parse()
	// A single selected experiment owns -json outright; a run covering
	// both JSON-emitting experiments gets per-experiment derived names so
	// the later one cannot clobber the earlier result.
	switch *experiment {
	case "readwrite":
		bench.ReadWriteJSONPath = *jsonPath
	case "scan":
		bench.ScanJSONPath = *jsonPath
	case "txn_retry":
		bench.TxnRetryJSONPath = *jsonPath
	case "coldread":
		bench.ColdReadJSONPath = *jsonPath
	case "rpc":
		bench.RPCJSONPath = *jsonPath
	case "watch":
		bench.WatchJSONPath = *jsonPath
	case "replication":
		bench.ReplicationJSONPath = *jsonPath
	default:
		if *jsonPath != "" {
			bench.ReadWriteJSONPath = jsonSuffix(*jsonPath, "readwrite")
			bench.ScanJSONPath = jsonSuffix(*jsonPath, "scan")
			bench.TxnRetryJSONPath = jsonSuffix(*jsonPath, "txn_retry")
			bench.ColdReadJSONPath = jsonSuffix(*jsonPath, "coldread")
			bench.RPCJSONPath = jsonSuffix(*jsonPath, "rpc")
			bench.WatchJSONPath = jsonSuffix(*jsonPath, "watch")
			bench.ReplicationJSONPath = jsonSuffix(*jsonPath, "replication")
		}
	}

	opts := bench.Options{
		Records:  *records,
		Duration: *duration,
		Threads:  *threads,
		Seed:     *seed,
		Out:      os.Stdout,
		Obs:      *obsFlag,
		Cold:     *coldFlag,
	}

	experiments := map[string]func(bench.Options) error{
		"fig2a":       bench.Fig2aSyncVsAsync,
		"fig2b":       bench.Fig2bHeartbeatOverhead,
		"fig3":        bench.Fig3FailureTimeline,
		"replaybound": bench.ReplayBound,
		"truncation":  bench.LogTruncation,
		"clientfail":  bench.ClientFailure,
		"rmfail":      bench.RMFailover,
		"durability":  bench.Durability,
		"readwrite":   bench.ReadWrite,
		"compaction":  bench.Compaction,
		"scan":        bench.Scan,
		"txn_retry":   bench.TxnRetry,
		"coldread":    bench.ColdRead,
		"rpc":         bench.RPC,
		"watch":       bench.Watch,
		"replication": bench.Replication,
	}
	order := []string{"fig2a", "fig2b", "fig3", "replaybound", "truncation", "clientfail", "rmfail", "durability", "readwrite", "compaction", "scan", "txn_retry", "coldread", "rpc", "watch", "replication"}

	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Printf("\n================ %s ================\n", name)
		if err := fn(opts); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	if *experiment == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*experiment)
}
