package txkv_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"txkv"
)

func quickCluster(t *testing.T) *txkv.Cluster {
	t.Helper()
	c, err := txkv.Open(txkv.Config{
		Servers:                2,
		HeartbeatInterval:      25 * time.Millisecond,
		MasterHeartbeatTimeout: 150 * time.Millisecond,
		WALSyncInterval:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestPublicAPIRoundTrip(t *testing.T) {
	c := quickCluster(t)
	ctx := context.Background()
	if err := c.CreateTable("accounts", []txkv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	client, err := c.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Update(ctx, func(txn *txkv.Txn) error {
		return txn.Put(ctx, "accounts", "alice", "balance", []byte("100"))
	}); err != nil {
		t.Fatal(err)
	}

	if err := client.View(ctx, func(txn *txkv.Txn) error {
		v, ok, err := txn.Get(ctx, "accounts", "alice", "balance")
		if err != nil || !ok || string(v) != "100" {
			t.Fatalf("read back: %q %v %v", v, ok, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIConflictError(t *testing.T) {
	c := quickCluster(t)
	ctx := context.Background()
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	a, err := client.BeginTxn(txkv.TxnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := client.BeginTxn(txkv.TxnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_ = a.Put(ctx, "t", "x", "f", []byte("1"))
	_ = b.Put(ctx, "t", "x", "f", []byte("2"))
	if _, err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	_, err = b.Commit(ctx)
	if !errors.Is(err, txkv.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// The structured error carries the operation context.
	var txErr *txkv.Error
	if !errors.As(err, &txErr) || txErr.Op != "commit" {
		t.Fatalf("want *txkv.Error with Op=commit, got %#v", err)
	}
}

func TestPublicAPIScan(t *testing.T) {
	c := quickCluster(t)
	ctx := context.Background()
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	if _, err := client.Update(ctx, func(txn *txkv.Txn) error {
		return txn.PutBatch(ctx, "t", []txkv.PutOp{
			{Row: "a", Column: "f", Value: []byte("a")},
			{Row: "b", Column: "f", Value: []byte("b")},
			{Row: "c", Column: "f", Value: []byte("c")},
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := client.View(ctx, func(txn *txkv.Txn) error {
		n := 0
		sc := txn.Scan(ctx, "t", txkv.KeyRange{Start: "a", End: "c"}, txkv.ScanOptions{})
		for sc.Next() {
			n++
		}
		if err := sc.Err(); err != nil || n != 2 {
			t.Fatalf("scan: n=%d err=%v", n, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIFailureInjection(t *testing.T) {
	c := quickCluster(t)
	ctx := context.Background()
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	if _, err := client.Update(ctx, func(txn *txkv.Txn) error {
		return txn.Put(ctx, "t", "k", "f", []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(c.ServerIDs()[0]); err != nil {
		t.Fatal(err)
	}
	// The committed value survives fail-over.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var (
			v  []byte
			ok bool
		)
		err := client.View(ctx, func(txn *txkv.Txn) error {
			var err error
			v, ok, err = txn.Get(ctx, "t", "k", "f")
			return err
		})
		if err == nil && ok && string(v) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("value lost: %q %v %v", v, ok, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPublicAPIReadOnlyRejectsWrites(t *testing.T) {
	c := quickCluster(t)
	ctx := context.Background()
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	err := client.View(ctx, func(txn *txkv.Txn) error {
		return txn.Put(ctx, "t", "k", "f", []byte("v"))
	})
	if !errors.Is(err, txkv.ErrReadOnlyTxn) {
		t.Fatalf("want ErrReadOnlyTxn, got %v", err)
	}
	var txErr *txkv.Error
	if !errors.As(err, &txErr) || txErr.Op != "put" || txErr.Table != "t" || txErr.Key != "k" {
		t.Fatalf("want structured put error, got %#v", err)
	}
}
