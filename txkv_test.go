package txkv_test

import (
	"errors"
	"testing"
	"time"

	"txkv"
)

func quickCluster(t *testing.T) *txkv.Cluster {
	t.Helper()
	c, err := txkv.Open(txkv.Config{
		Servers:                2,
		HeartbeatInterval:      25 * time.Millisecond,
		MasterHeartbeatTimeout: 150 * time.Millisecond,
		WALSyncInterval:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestPublicAPIRoundTrip(t *testing.T) {
	c := quickCluster(t)
	if err := c.CreateTable("accounts", []txkv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	client, err := c.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}

	txn := client.Begin()
	if err := txn.Put("accounts", "alice", "balance", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if _, err := txn.CommitWait(); err != nil {
		t.Fatal(err)
	}

	check := client.Begin()
	v, ok, err := check.Get("accounts", "alice", "balance")
	if err != nil || !ok || string(v) != "100" {
		t.Fatalf("read back: %q %v %v", v, ok, err)
	}
	check.Abort()
}

func TestPublicAPIConflictError(t *testing.T) {
	c := quickCluster(t)
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	a := client.Begin()
	b := client.Begin()
	_ = a.Put("t", "x", "f", []byte("1"))
	_ = b.Put("t", "x", "f", []byte("2"))
	if _, err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err := b.Commit()
	if !errors.Is(err, txkv.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
}

func TestPublicAPIScan(t *testing.T) {
	c := quickCluster(t)
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	w := client.Begin()
	for _, r := range []string{"a", "b", "c"} {
		_ = w.Put("t", txkv.Key(r), "f", []byte(r))
	}
	if _, err := w.CommitWait(); err != nil {
		t.Fatal(err)
	}
	r := client.Begin()
	got, err := r.ScanRange("t", txkv.KeyRange{Start: "a", End: "c"}, 0)
	if err != nil || len(got) != 2 {
		t.Fatalf("scan: %v %v", got, err)
	}
	r.Abort()
}

func TestPublicAPIFailureInjection(t *testing.T) {
	c := quickCluster(t)
	if err := c.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	client, _ := c.NewClient("app")
	txn := client.Begin()
	_ = txn.Put("t", "k", "f", []byte("v"))
	if _, err := txn.CommitWait(); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(c.ServerIDs()[0]); err != nil {
		t.Fatal(err)
	}
	// The committed value survives fail-over.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r := client.Begin()
		v, ok, err := r.Get("t", "k", "f")
		r.Abort()
		if err == nil && ok && string(v) == "v" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("value lost: %q %v %v", v, ok, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
