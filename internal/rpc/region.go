package rpc

import (
	"context"
	"fmt"
	"time"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
)

// The region-server surface: RegisterRegionService exposes one
// *kvstore.RegionServer on an rpc Server; Endpoint is the client half
// (kvstore.RegionEndpoint) the routing client reads and flushes through;
// HostProxy is the master's half (kvstore.RegionHost) driving assignment,
// splits, moves, and recovery on a region-server process.

// RegisterRegionService wires a region server's methods onto s.
func RegisterRegionService(s *Server, rs *kvstore.RegionServer) {
	s.Handle(RGet, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		table, row, column, maxTS, err := decGetReq(body)
		if err != nil {
			return nil, err
		}
		e, found, err := rs.Get(table, row, column, maxTS)
		if err != nil {
			return nil, err
		}
		return encGetResp(e, found), nil
	})
	s.Handle(RGetBatch, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		table, keys, maxTS, err := decGetBatchReq(body)
		if err != nil {
			return nil, err
		}
		kvs, found, err := rs.GetBatch(ctx, table, keys, maxTS)
		if err != nil {
			return nil, err
		}
		return encGetBatchResp(kvs, found), nil
	})
	s.Handle(RScanBatch, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		req, err := decScanReq(body)
		if err != nil {
			return nil, err
		}
		resp, err := rs.ScanBatch(ctx, req)
		if err != nil {
			return nil, err
		}
		return encScanResp(resp), nil
	})
	s.Handle(RApply, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		ws, piggy, hasPiggy, err := decApplyReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.ApplyWriteSet(ws, piggy, hasPiggy)
	})
	s.Handle(ROpenRegion, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		info, files, hasFiles, edits, recovering, err := decOpenRegionReq(body)
		if err != nil {
			return nil, err
		}
		if recovering {
			return nil, rs.OpenRegionRecovering(info, files, hasFiles, edits)
		}
		open := func() error {
			if hasFiles {
				return rs.OpenRegionFiles(info, files, edits, nil)
			}
			return rs.OpenRegion(info, edits, nil)
		}
		return nil, open()
	})
	s.Handle(RMarkOnline, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.MarkRegionOnline(id)
	})
	s.Handle(RCloseRegion, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		rs.CloseRegion(id)
		return nil, nil
	})
	s.Handle(RCloseFlush, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		files, err := rs.CloseAndFlushRegion(id)
		if err != nil {
			return nil, err
		}
		return encStringsMsg(files), nil
	})
	s.Handle(RSyncWAL, func(_ context.Context, _ *Session, _ []byte) ([]byte, error) {
		return nil, rs.SyncWAL()
	})
	registerReplicationService(s, rs)
}

func snapSessKey(streamID uint64) string { return fmt.Sprintf("snap.%d", streamID) }

// registerReplicationService wires the replication surface: the master's
// replica-control calls, the primary→follower shipping calls, and the
// credit-flow catch-up stream.
func registerReplicationService(s *Server, rs *kvstore.RegionServer) {
	s.Handle(RSetReplication, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, epoch, targets, ttl, err := decSetReplicationReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.SetReplication(regionID, epoch, targets, ttl)
	})
	s.Handle(RAppendEntries, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, epoch, entries, tipSeq, safeTS, err := decAppendEntriesReq(body)
		if err != nil {
			return nil, err
		}
		// The follower's position crosses back even on rejection (gap
		// rewind, stale-epoch fencing), so the outcome rides the response
		// frame in-band rather than as a bare error frame.
		last, aerr := rs.AppendReplicated(regionID, epoch, entries, tipSeq, safeTS)
		if aerr != nil {
			return encAppendEntriesResp(last, CodeFor(aerr), aerr.Error()), nil
		}
		return encAppendEntriesResp(last, 0, ""), nil
	})
	s.Handle(RPromote, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, epoch, ttl, staged, err := decPromoteReq(body)
		if err != nil {
			return nil, err
		}
		if staged {
			return nil, rs.PromoteRegionStaged(regionID, epoch, ttl)
		}
		return nil, rs.PromoteRegion(regionID, epoch, ttl, nil)
	})
	s.Handle(RReplicaPos, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		pos, err := rs.ReplicaPos(regionID)
		if err != nil {
			return nil, err
		}
		return encReplicaPos(pos), nil
	})
	s.Handle(ROpenFollower, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		info, epoch, err := decOpenFollowerReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.OpenRegionFollower(info, epoch)
	})
	s.Handle(RCheckpoint, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, epoch, seq, err := decCheckpointReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.ApplyReplCheckpoint(regionID, epoch, seq)
	})
	s.Handle(RLease, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		grants, err := decLeaseReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.RenewLeases(grants)
	})

	// The catch-up transfer: a credit-flow stream of the primary's retained
	// tail above the requested position, exactly the WWatch machinery. The
	// first frame is the region's position; each following frame is one
	// entry chunk; RSnapCredit replenishes the window.
	s.HandleStream(RSnapshot, func(connCtx context.Context, sess *Session, body []byte, st *ServerStream) error {
		regionID, fromSeq, window, err := decSnapshotReq(body)
		if err != nil {
			return err
		}
		if window <= 0 {
			window = defaultSnapshotWindow
		}
		repl := rs.Replicator()
		if repl == nil {
			return fmt.Errorf("rpc: server %s has no replicator", rs.ID())
		}
		tail, pos, err := repl.SnapshotTail(regionID, fromSeq)
		if err != nil {
			return err
		}

		ctx, cancel := context.WithCancel(connCtx)
		defer cancel()
		w := &serverWatch{credits: make(chan int, 64), cancel: cancel}
		key := snapSessKey(st.ID())
		sess.SetValue(key, w)
		defer sess.SetValue(key, nil)

		if err := st.Send(encReplicaPos(pos)); err != nil {
			return err
		}
		avail := window - 1
		for len(tail) > 0 {
			for avail <= 0 {
				select {
				case n := <-w.credits:
					avail += n
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			chunk := tail
			if len(chunk) > snapshotChunkEntries {
				chunk = chunk[:snapshotChunkEntries]
			}
			tail = tail[len(chunk):]
			if err := st.Send(encSnapshotChunk(chunk)); err != nil {
				return err
			}
			avail--
			for {
				select {
				case n := <-w.credits:
					avail += n
					continue
				default:
				}
				break
			}
		}
		return nil
	})
	s.Handle(RSnapCredit, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, n, err := decWatchCreditReq(body)
		if err != nil {
			return nil, err
		}
		w, _ := sess.Value(snapSessKey(id)).(*serverWatch)
		if w == nil {
			return nil, nil // stream already finished; benign race
		}
		select {
		case w.credits <- n:
		default:
		}
		return nil, nil
	})
}

// Endpoint reaches one region-server process over TCP: the remote
// implementation of kvstore.RegionEndpoint. Connection-level failures wrap
// kvstore.ErrTransport (via Conn), which is what makes the routing client
// invalidate its layout cache and re-resolve through the master instead of
// retrying the dead address.
type Endpoint struct {
	pool *Pool
	addr string
}

// NewEndpoint returns the endpoint for a region server at addr, sharing
// the pool's connections.
func NewEndpoint(pool *Pool, addr string) *Endpoint {
	return &Endpoint{pool: pool, addr: addr}
}

// Addr returns the endpoint's routing key: the server's "host:port".
func (e *Endpoint) Addr() string { return e.addr }

func (e *Endpoint) Get(ctx context.Context, table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	resp, err := e.pool.Call(ctx, e.addr, RGet, encGetReq(table, row, column, maxTS))
	if err != nil {
		return kv.KeyValue{}, false, err
	}
	return decGetResp(resp)
}

func (e *Endpoint) GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) ([]kv.KeyValue, []bool, error) {
	resp, err := e.pool.Call(ctx, e.addr, RGetBatch, encGetBatchReq(table, keys, maxTS))
	if err != nil {
		return nil, nil, err
	}
	return decGetBatchResp(resp)
}

func (e *Endpoint) ScanBatch(ctx context.Context, req kvstore.ScanRequest) (kvstore.ScanResponse, error) {
	resp, err := e.pool.Call(ctx, e.addr, RScanBatch, encScanReq(req))
	if err != nil {
		return kvstore.ScanResponse{}, err
	}
	return decScanResp(resp)
}

func (e *Endpoint) Apply(ctx context.Context, ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	_, err := e.pool.Call(ctx, e.addr, RApply, encApplyReq(ws, piggy, hasPiggy))
	return err
}

// HostProxy is the master's handle to a region-server process: the remote
// implementation of kvstore.RegionHost. The in-process API's preOnline
// closure (run after the region opens, before it goes online — the paper's
// recovery gate) cannot cross the wire, so the proxy decomposes it into
// explicit steps: open-recovering (region hosted but not serving), run the
// gate locally in the master (its replay lands through ApplyWriteSet calls
// back to the same process), then mark-online — or close the region again
// if the gate fails.
type HostProxy struct {
	pool *Pool
	id   string
	addr string
}

// NewHostProxy returns the master-side proxy for region server id at addr.
func NewHostProxy(pool *Pool, id, addr string) *HostProxy {
	return &HostProxy{pool: pool, id: id, addr: addr}
}

// ID returns the remote server's ID.
func (h *HostProxy) ID() string { return h.id }

// Addr returns the remote server's advertised address.
func (h *HostProxy) Addr() string { return h.addr }

func (h *HostProxy) OpenRegion(info kvstore.RegionInfo, recoveredEdits []kvstore.WALEntry, preOnline func() error) error {
	return h.open(info, nil, false, recoveredEdits, preOnline)
}

func (h *HostProxy) OpenRegionFiles(info kvstore.RegionInfo, files []string, recoveredEdits []kvstore.WALEntry, preOnline func() error) error {
	return h.open(info, files, true, recoveredEdits, preOnline)
}

func (h *HostProxy) open(info kvstore.RegionInfo, files []string, hasFiles bool, edits []kvstore.WALEntry, preOnline func() error) error {
	ctx := context.Background()
	if preOnline == nil {
		_, err := h.pool.Call(ctx, h.addr, ROpenRegion, encOpenRegionReq(info, files, hasFiles, edits, false))
		return err
	}
	if _, err := h.pool.Call(ctx, h.addr, ROpenRegion, encOpenRegionReq(info, files, hasFiles, edits, true)); err != nil {
		return err
	}
	if err := preOnline(); err != nil {
		h.CloseRegion(info.ID) // gate failed: do not leave a half-open region
		return err
	}
	_, err := h.pool.Call(ctx, h.addr, RMarkOnline, encStringMsg(info.ID))
	return err
}

func (h *HostProxy) CloseRegion(regionID string) {
	_, _ = h.pool.Call(context.Background(), h.addr, RCloseRegion, encStringMsg(regionID))
}

func (h *HostProxy) CloseAndFlushRegion(regionID string) ([]string, error) {
	resp, err := h.pool.Call(context.Background(), h.addr, RCloseFlush, encStringMsg(regionID))
	if err != nil {
		return nil, err
	}
	return decStringsMsg(resp)
}

func (h *HostProxy) ApplyWriteSet(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	_, err := h.pool.Call(context.Background(), h.addr, RApply, encApplyReq(ws, piggy, hasPiggy))
	return err
}

// --- replica host surface ---

// HostProxy also implements kvstore.ReplicaHost, so the master drives
// replica groups on remote processes through the same handle it assigns
// regions with. PromoteRegion's preOnline gate gets the same decomposition
// as open(): promote-staged (role flipped, WAL adopted, still offline), run
// the gate in the master, then mark-online — or close on gate failure.

func (h *HostProxy) OpenRegionFollower(info kvstore.RegionInfo, epoch uint64) error {
	_, err := h.pool.Call(context.Background(), h.addr, ROpenFollower, encOpenFollowerReq(info, epoch))
	return err
}

func (h *HostProxy) SetReplication(regionID string, epoch uint64, followers []kvstore.ReplicaTarget, leaseTTL time.Duration) error {
	_, err := h.pool.Call(context.Background(), h.addr, RSetReplication, encSetReplicationReq(regionID, epoch, followers, leaseTTL))
	return err
}

func (h *HostProxy) RenewLeases(grants map[string]kvstore.LeaseGrant) error {
	ctx, cancel := context.WithTimeout(context.Background(), replCallTimeout)
	defer cancel()
	_, err := h.pool.Call(ctx, h.addr, RLease, encLeaseReq(grants))
	return err
}

func (h *HostProxy) PromoteRegion(regionID string, epoch uint64, leaseTTL time.Duration, preOnline func() error) error {
	ctx := context.Background()
	if preOnline == nil {
		_, err := h.pool.Call(ctx, h.addr, RPromote, encPromoteReq(regionID, epoch, leaseTTL, false))
		return err
	}
	if _, err := h.pool.Call(ctx, h.addr, RPromote, encPromoteReq(regionID, epoch, leaseTTL, true)); err != nil {
		return err
	}
	if err := preOnline(); err != nil {
		h.CloseRegion(regionID) // gate failed: do not leave a promoted-but-dark region
		return err
	}
	_, err := h.pool.Call(ctx, h.addr, RMarkOnline, encStringMsg(regionID))
	return err
}

func (h *HostProxy) ReplicaPos(regionID string) (kvstore.ReplicaPosition, error) {
	ctx, cancel := context.WithTimeout(context.Background(), replCallTimeout)
	defer cancel()
	resp, err := h.pool.Call(ctx, h.addr, RReplicaPos, encStringMsg(regionID))
	if err != nil {
		return kvstore.ReplicaPosition{}, err
	}
	return decReplicaPos(resp)
}

// replCallTimeout bounds replication control and shipping calls so a hung
// follower cannot wedge a shipper's sender loop or the master's lease
// renewal forever. Generous relative to the quorum timeout: the quorum
// waiter gives up on its own; this only reclaims the goroutine.
const replCallTimeout = 30 * time.Second

// FollowerLink ships WAL entries to one follower region server over TCP:
// the remote implementation of kvstore.FollowerLink that shippers dial.
type FollowerLink struct {
	pool     *Pool
	serverID string
	addr     string
}

// NewFollowerLink returns a link to follower serverID at addr, sharing the
// pool's multiplexed connections with all other traffic to that server.
func NewFollowerLink(pool *Pool, serverID, addr string) *FollowerLink {
	return &FollowerLink{pool: pool, serverID: serverID, addr: addr}
}

func (l *FollowerLink) ServerID() string { return l.serverID }

// AppendEntries ships a batch. The follower's position comes back even when
// the append is rejected (that is the in-band response encoding), so the
// shipper can rewind to the follower's gap or observe its fencing epoch.
func (l *FollowerLink) AppendEntries(regionID string, epoch uint64, entries []kvstore.ReplEntry, tipSeq uint64, safeTS kv.Timestamp) (uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), replCallTimeout)
	defer cancel()
	resp, err := l.pool.Call(ctx, l.addr, RAppendEntries, encAppendEntriesReq(regionID, epoch, entries, tipSeq, safeTS))
	if err != nil {
		return 0, err
	}
	last, code, msg, err := decAppendEntriesResp(resp)
	if err != nil {
		return 0, err
	}
	if code != 0 {
		return last, &RemoteError{Code: code, Msg: msg}
	}
	return last, nil
}

func (l *FollowerLink) Checkpoint(regionID string, epoch uint64, seq uint64) error {
	ctx, cancel := context.WithTimeout(context.Background(), replCallTimeout)
	defer cancel()
	_, err := l.pool.Call(ctx, l.addr, RCheckpoint, encCheckpointReq(regionID, epoch, seq))
	return err
}

// Close is a no-op: the pool owns the underlying connection and shares it
// with unary traffic to the same server.
func (l *FollowerLink) Close() {}

// PullSnapshot streams a region's retained WAL tail above fromSeq from the
// server at addr: the catch-up path for a follower too far behind the
// primary's shipping window. Returns the tail entries and the primary's
// position at capture. Credit flow mirrors the watch stream — grants are
// issued as the window half-drains.
func PullSnapshot(ctx context.Context, pool *Pool, addr, regionID string, fromSeq uint64) ([]kvstore.ReplEntry, kvstore.ReplicaPosition, error) {
	c, err := pool.conn(addr)
	if err != nil {
		return nil, kvstore.ReplicaPosition{}, err
	}
	cs, err := c.Stream(RSnapshot, encSnapshotReq(regionID, fromSeq, defaultSnapshotWindow))
	if err != nil {
		return nil, kvstore.ReplicaPosition{}, err
	}
	defer cs.Close()

	body, done, err := cs.Recv(ctx)
	if err != nil {
		return nil, kvstore.ReplicaPosition{}, err
	}
	if done {
		return nil, kvstore.ReplicaPosition{}, fmt.Errorf("rpc: snapshot stream ended before position frame")
	}
	pos, err := decReplicaPos(body)
	if err != nil {
		return nil, kvstore.ReplicaPosition{}, err
	}

	var entries []kvstore.ReplEntry
	consumed := 1
	for {
		body, done, err := cs.Recv(ctx)
		if err != nil {
			return nil, kvstore.ReplicaPosition{}, err
		}
		if done {
			return entries, pos, nil
		}
		chunk, err := decSnapshotChunk(body)
		if err != nil {
			return nil, kvstore.ReplicaPosition{}, err
		}
		entries = append(entries, chunk...)
		consumed++
		if consumed >= defaultSnapshotWindow/2 {
			cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_, cerr := c.Call(cctx, RSnapCredit, encWatchCreditReq(cs.ID(), consumed))
			cancel()
			if cerr != nil {
				return nil, kvstore.ReplicaPosition{}, cerr
			}
			consumed = 0
		}
	}
}
