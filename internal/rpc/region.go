package rpc

import (
	"context"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
)

// The region-server surface: RegisterRegionService exposes one
// *kvstore.RegionServer on an rpc Server; Endpoint is the client half
// (kvstore.RegionEndpoint) the routing client reads and flushes through;
// HostProxy is the master's half (kvstore.RegionHost) driving assignment,
// splits, moves, and recovery on a region-server process.

// RegisterRegionService wires a region server's methods onto s.
func RegisterRegionService(s *Server, rs *kvstore.RegionServer) {
	s.Handle(RGet, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		table, row, column, maxTS, err := decGetReq(body)
		if err != nil {
			return nil, err
		}
		e, found, err := rs.Get(table, row, column, maxTS)
		if err != nil {
			return nil, err
		}
		return encGetResp(e, found), nil
	})
	s.Handle(RGetBatch, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		table, keys, maxTS, err := decGetBatchReq(body)
		if err != nil {
			return nil, err
		}
		kvs, found, err := rs.GetBatch(ctx, table, keys, maxTS)
		if err != nil {
			return nil, err
		}
		return encGetBatchResp(kvs, found), nil
	})
	s.Handle(RScanBatch, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		req, err := decScanReq(body)
		if err != nil {
			return nil, err
		}
		resp, err := rs.ScanBatch(ctx, req)
		if err != nil {
			return nil, err
		}
		return encScanResp(resp), nil
	})
	s.Handle(RApply, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		ws, piggy, hasPiggy, err := decApplyReq(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.ApplyWriteSet(ws, piggy, hasPiggy)
	})
	s.Handle(ROpenRegion, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		info, files, hasFiles, edits, recovering, err := decOpenRegionReq(body)
		if err != nil {
			return nil, err
		}
		if recovering {
			return nil, rs.OpenRegionRecovering(info, files, hasFiles, edits)
		}
		open := func() error {
			if hasFiles {
				return rs.OpenRegionFiles(info, files, edits, nil)
			}
			return rs.OpenRegion(info, edits, nil)
		}
		return nil, open()
	})
	s.Handle(RMarkOnline, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		return nil, rs.MarkRegionOnline(id)
	})
	s.Handle(RCloseRegion, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		rs.CloseRegion(id)
		return nil, nil
	})
	s.Handle(RCloseFlush, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		id, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		files, err := rs.CloseAndFlushRegion(id)
		if err != nil {
			return nil, err
		}
		return encStringsMsg(files), nil
	})
	s.Handle(RSyncWAL, func(_ context.Context, _ *Session, _ []byte) ([]byte, error) {
		return nil, rs.SyncWAL()
	})
}

// Endpoint reaches one region-server process over TCP: the remote
// implementation of kvstore.RegionEndpoint. Connection-level failures wrap
// kvstore.ErrTransport (via Conn), which is what makes the routing client
// invalidate its layout cache and re-resolve through the master instead of
// retrying the dead address.
type Endpoint struct {
	pool *Pool
	addr string
}

// NewEndpoint returns the endpoint for a region server at addr, sharing
// the pool's connections.
func NewEndpoint(pool *Pool, addr string) *Endpoint {
	return &Endpoint{pool: pool, addr: addr}
}

// Addr returns the endpoint's routing key: the server's "host:port".
func (e *Endpoint) Addr() string { return e.addr }

func (e *Endpoint) Get(ctx context.Context, table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	resp, err := e.pool.Call(ctx, e.addr, RGet, encGetReq(table, row, column, maxTS))
	if err != nil {
		return kv.KeyValue{}, false, err
	}
	return decGetResp(resp)
}

func (e *Endpoint) GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) ([]kv.KeyValue, []bool, error) {
	resp, err := e.pool.Call(ctx, e.addr, RGetBatch, encGetBatchReq(table, keys, maxTS))
	if err != nil {
		return nil, nil, err
	}
	return decGetBatchResp(resp)
}

func (e *Endpoint) ScanBatch(ctx context.Context, req kvstore.ScanRequest) (kvstore.ScanResponse, error) {
	resp, err := e.pool.Call(ctx, e.addr, RScanBatch, encScanReq(req))
	if err != nil {
		return kvstore.ScanResponse{}, err
	}
	return decScanResp(resp)
}

func (e *Endpoint) Apply(ctx context.Context, ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	_, err := e.pool.Call(ctx, e.addr, RApply, encApplyReq(ws, piggy, hasPiggy))
	return err
}

// HostProxy is the master's handle to a region-server process: the remote
// implementation of kvstore.RegionHost. The in-process API's preOnline
// closure (run after the region opens, before it goes online — the paper's
// recovery gate) cannot cross the wire, so the proxy decomposes it into
// explicit steps: open-recovering (region hosted but not serving), run the
// gate locally in the master (its replay lands through ApplyWriteSet calls
// back to the same process), then mark-online — or close the region again
// if the gate fails.
type HostProxy struct {
	pool *Pool
	id   string
	addr string
}

// NewHostProxy returns the master-side proxy for region server id at addr.
func NewHostProxy(pool *Pool, id, addr string) *HostProxy {
	return &HostProxy{pool: pool, id: id, addr: addr}
}

// ID returns the remote server's ID.
func (h *HostProxy) ID() string { return h.id }

// Addr returns the remote server's advertised address.
func (h *HostProxy) Addr() string { return h.addr }

func (h *HostProxy) OpenRegion(info kvstore.RegionInfo, recoveredEdits []kvstore.WALEntry, preOnline func() error) error {
	return h.open(info, nil, false, recoveredEdits, preOnline)
}

func (h *HostProxy) OpenRegionFiles(info kvstore.RegionInfo, files []string, recoveredEdits []kvstore.WALEntry, preOnline func() error) error {
	return h.open(info, files, true, recoveredEdits, preOnline)
}

func (h *HostProxy) open(info kvstore.RegionInfo, files []string, hasFiles bool, edits []kvstore.WALEntry, preOnline func() error) error {
	ctx := context.Background()
	if preOnline == nil {
		_, err := h.pool.Call(ctx, h.addr, ROpenRegion, encOpenRegionReq(info, files, hasFiles, edits, false))
		return err
	}
	if _, err := h.pool.Call(ctx, h.addr, ROpenRegion, encOpenRegionReq(info, files, hasFiles, edits, true)); err != nil {
		return err
	}
	if err := preOnline(); err != nil {
		h.CloseRegion(info.ID) // gate failed: do not leave a half-open region
		return err
	}
	_, err := h.pool.Call(ctx, h.addr, RMarkOnline, encStringMsg(info.ID))
	return err
}

func (h *HostProxy) CloseRegion(regionID string) {
	_, _ = h.pool.Call(context.Background(), h.addr, RCloseRegion, encStringMsg(regionID))
}

func (h *HostProxy) CloseAndFlushRegion(regionID string) ([]string, error) {
	resp, err := h.pool.Call(context.Background(), h.addr, RCloseFlush, encStringMsg(regionID))
	if err != nil {
		return nil, err
	}
	return decStringsMsg(resp)
}

func (h *HostProxy) ApplyWriteSet(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	_, err := h.pool.Call(context.Background(), h.addr, RApply, encApplyReq(ws, piggy, hasPiggy))
	return err
}
