package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is one client connection: many calls can be in flight concurrently
// (pipelining); a background read loop demultiplexes responses by request
// ID. Any connection-level failure poisons the Conn — every pending and
// future call fails with an error wrapping kvstore.ErrTransport — and the
// Pool dials a fresh one on the next call.

// dialTimeout bounds the TCP connect plus preamble exchange.
const dialTimeout = 5 * time.Second

// Conn is a multiplexing client connection to one rpc server.
type Conn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Frame
	closed  bool
	err     error // first connection-level failure
}

// Dial connects to an rpc server and exchanges the version preamble.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, transportErr(addr, "dial", err)
	}
	_ = nc.SetDeadline(time.Now().Add(dialTimeout))
	if err := WritePreamble(nc); err != nil {
		nc.Close()
		return nil, transportErr(addr, "preamble", err)
	}
	if _, err := ReadPreamble(nc); err != nil {
		nc.Close()
		return nil, transportErr(addr, "preamble", err)
	}
	_ = nc.SetDeadline(time.Time{})
	conn := &Conn{
		addr:    addr,
		c:       nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		pending: make(map[uint64]chan Frame),
	}
	go conn.readLoop()
	return conn, nil
}

// Addr returns the dialed address.
func (c *Conn) Addr() string { return c.addr }

// readLoop demultiplexes response frames to their callers until the
// connection dies, then fails every pending call.
func (c *Conn) readLoop() {
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- f // buffered; never blocks
		}
		// Unknown ID: the caller gave up (context cancelled). Drop it.
	}
}

// fail poisons the connection: the socket closes, every pending call gets
// the transport error, and future calls fail fast.
func (c *Conn) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = transportErr(c.addr, "conn", cause)
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	c.c.Close()
	for _, ch := range pending {
		ch <- Frame{Kind: KindError, Body: nil} // sentinel; Call checks c.err
	}
}

// Close tears the connection down; pending calls fail with a transport
// error.
func (c *Conn) Close() error {
	c.fail(fmt.Errorf("closed"))
	return nil
}

// Broken reports whether the connection has been poisoned.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Call performs one request/response exchange. The context's deadline
// travels in the request body; cancellation abandons the wait (the response
// frame, if it ever arrives, is dropped by the read loop). Connection-level
// failures wrap kvstore.ErrTransport; handler errors decode to RemoteError.
func (c *Conn) Call(ctx context.Context, method byte, body []byte) ([]byte, error) {
	var deadline uint64
	if t, ok := ctx.Deadline(); ok {
		deadline = uint64(t.UnixNano())
	}

	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	// Request body: deadline prefix + method payload.
	buf := make([]byte, 0, 4+frameHeaderBytes+8+len(body))
	wire := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(body)), deadline)
	wire = append(wire, body...)
	buf, err := AppendFrame(buf, Frame{Ver: Version, Kind: KindRequest, Method: method, ID: id, Body: wire})
	if err != nil {
		c.forget(id)
		return nil, err
	}

	c.wmu.Lock()
	_, werr := c.c.Write(buf)
	c.wmu.Unlock()
	if werr != nil {
		c.forget(id)
		c.fail(werr)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}

	select {
	case f := <-ch:
		c.mu.Lock()
		cerr := c.err
		c.mu.Unlock()
		if cerr != nil && f.Body == nil && f.Kind == KindError {
			return nil, cerr // poisoned-connection sentinel
		}
		switch f.Kind {
		case KindResponse:
			return f.Body, nil
		case KindError:
			return nil, DecodeError(f.Body)
		default:
			err := fmt.Errorf("response kind %d", f.Kind)
			c.fail(err)
			return nil, transportErr(c.addr, methodName(method), err)
		}
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending request (cancellation, write failure).
func (c *Conn) forget(id uint64) {
	c.mu.Lock()
	if c.pending != nil {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}
