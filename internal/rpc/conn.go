package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is one client connection: many calls can be in flight concurrently
// (pipelining); a background read loop demultiplexes responses by request
// ID. Any connection-level failure poisons the Conn — every pending and
// future call fails with an error wrapping kvstore.ErrTransport — and the
// Pool dials a fresh one on the next call.

// dialTimeout bounds the TCP connect plus preamble exchange.
const dialTimeout = 5 * time.Second

// Conn is a multiplexing client connection to one rpc server.
type Conn struct {
	addr string
	c    net.Conn
	br   *bufio.Reader

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan Frame
	streams map[uint64]chan Frame // open streaming exchanges, by request ID
	closed  bool
	err     error // first connection-level failure

	deadc chan struct{} // closed when the connection is poisoned
}

// Dial connects to an rpc server and exchanges the version preamble.
func Dial(addr string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, transportErr(addr, "dial", err)
	}
	_ = nc.SetDeadline(time.Now().Add(dialTimeout))
	if err := WritePreamble(nc); err != nil {
		nc.Close()
		return nil, transportErr(addr, "preamble", err)
	}
	if _, err := ReadPreamble(nc); err != nil {
		nc.Close()
		return nil, transportErr(addr, "preamble", err)
	}
	_ = nc.SetDeadline(time.Time{})
	conn := &Conn{
		addr:    addr,
		c:       nc,
		br:      bufio.NewReaderSize(nc, 64<<10),
		pending: make(map[uint64]chan Frame),
		streams: make(map[uint64]chan Frame),
		deadc:   make(chan struct{}),
	}
	go conn.readLoop()
	return conn, nil
}

// Addr returns the dialed address.
func (c *Conn) Addr() string { return c.addr }

// readLoop demultiplexes response frames to their callers until the
// connection dies, then fails every pending call.
func (c *Conn) readLoop() {
	for {
		f, err := ReadFrame(c.br)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		if ch, ok := c.pending[f.ID]; ok {
			delete(c.pending, f.ID)
			c.mu.Unlock()
			ch <- f // buffered; never blocks
			continue
		}
		if ch, ok := c.streams[f.ID]; ok {
			if f.Kind != KindStream {
				// Terminal frame (KindResponse / KindError): the stream is
				// over; nothing further routes to it.
				delete(c.streams, f.ID)
			}
			c.mu.Unlock()
			select {
			case ch <- f:
			default:
				// The buffer is sized for the credit window plus the
				// terminal frame; overflow means the server ignored flow
				// control. Never block the read loop — poison instead.
				c.fail(fmt.Errorf("stream %d overran its credit window", f.ID))
				return
			}
			continue
		}
		c.mu.Unlock()
		// Unknown ID: the caller gave up (context cancelled). Drop it.
	}
}

// fail poisons the connection: the socket closes, every pending call gets
// the transport error, and future calls fail fast.
func (c *Conn) fail(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.err = transportErr(c.addr, "conn", cause)
	pending := c.pending
	c.pending = nil
	c.streams = nil
	close(c.deadc) // wakes blocked stream Recvs
	c.mu.Unlock()
	c.c.Close()
	for _, ch := range pending {
		ch <- Frame{Kind: KindError, Body: nil} // sentinel; Call checks c.err
	}
}

// Close tears the connection down; pending calls fail with a transport
// error.
func (c *Conn) Close() error {
	c.fail(fmt.Errorf("closed"))
	return nil
}

// Broken reports whether the connection has been poisoned.
func (c *Conn) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Call performs one request/response exchange. The context's deadline
// travels in the request body; cancellation abandons the wait (the response
// frame, if it ever arrives, is dropped by the read loop). Connection-level
// failures wrap kvstore.ErrTransport; handler errors decode to RemoteError.
func (c *Conn) Call(ctx context.Context, method byte, body []byte) ([]byte, error) {
	var deadline uint64
	if t, ok := ctx.Deadline(); ok {
		deadline = uint64(t.UnixNano())
	}

	ch := make(chan Frame, 1)
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	// Request body: deadline prefix + method payload.
	buf := make([]byte, 0, 4+frameHeaderBytes+8+len(body))
	wire := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(body)), deadline)
	wire = append(wire, body...)
	buf, err := AppendFrame(buf, Frame{Ver: Version, Kind: KindRequest, Method: method, ID: id, Body: wire})
	if err != nil {
		c.forget(id)
		return nil, err
	}

	c.wmu.Lock()
	_, werr := c.c.Write(buf)
	c.wmu.Unlock()
	if werr != nil {
		c.forget(id)
		c.fail(werr)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}

	select {
	case f := <-ch:
		c.mu.Lock()
		cerr := c.err
		c.mu.Unlock()
		if cerr != nil && f.Body == nil && f.Kind == KindError {
			return nil, cerr // poisoned-connection sentinel
		}
		switch f.Kind {
		case KindResponse:
			return f.Body, nil
		case KindError:
			return nil, DecodeError(f.Body)
		default:
			err := fmt.Errorf("response kind %d", f.Kind)
			c.fail(err)
			return nil, transportErr(c.addr, methodName(method), err)
		}
	case <-ctx.Done():
		c.forget(id)
		return nil, ctx.Err()
	}
}

// forget abandons a pending request (cancellation, write failure).
func (c *Conn) forget(id uint64) {
	c.mu.Lock()
	if c.pending != nil {
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// ClientStream is the receive side of one streaming exchange: KindStream
// frames arrive in order until a terminal KindResponse (clean end) or
// KindError. Recv from a single goroutine.
type ClientStream struct {
	c      *Conn
	id     uint64
	frames chan Frame
}

// Stream opens a streaming exchange: one request whose response is a
// sequence of KindStream frames. buffer sizes the receive queue and must be
// at least the credit window the caller grants the server (plus the terminal
// frame, which Stream accounts for itself) — the read loop never blocks on a
// stream, it poisons the connection instead. Streams carry no deadline:
// cancellation is a method-layer concern (WCancel) or a connection close.
func (c *Conn) Stream(method byte, body []byte) (*ClientStream, error) {
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	// Window credits + terminal frame + slack for progress frames granted
	// in the same window.
	ch := make(chan Frame, streamRecvBuffer)
	c.streams[id] = ch
	c.mu.Unlock()

	wire := binary.BigEndian.AppendUint64(make([]byte, 0, 8+len(body)), 0)
	wire = append(wire, body...)
	buf, err := AppendFrame(nil, Frame{Ver: Version, Kind: KindRequest, Method: method, ID: id, Body: wire})
	if err != nil {
		c.dropStream(id)
		return nil, err
	}
	c.wmu.Lock()
	_, werr := c.c.Write(buf)
	c.wmu.Unlock()
	if werr != nil {
		c.dropStream(id)
		c.fail(werr)
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	return &ClientStream{c: c, id: id, frames: ch}, nil
}

// streamRecvBuffer bounds one stream's receive queue. It must cover the
// largest credit window a client grants (DefaultWatchWindow) plus the
// terminal frame.
const streamRecvBuffer = 4 + 2*defaultWatchWindow

// dropStream abandons a stream registration.
func (c *Conn) dropStream(id uint64) {
	c.mu.Lock()
	if c.streams != nil {
		delete(c.streams, id)
	}
	c.mu.Unlock()
}

// ID returns the stream's request ID — the handle credit and cancel
// messages reference.
func (s *ClientStream) ID() uint64 { return s.id }

// Recv returns the next stream element. done reports a clean end of stream
// (the terminal KindResponse); a terminal KindError decodes to the remote
// error; a poisoned connection surfaces the transport error.
func (s *ClientStream) Recv(ctx context.Context) (body []byte, done bool, err error) {
	for {
		// Drain delivered frames before checking for death, so elements
		// that arrived ahead of a failure are not lost.
		select {
		case f := <-s.frames:
			return s.frame(f)
		default:
		}
		select {
		case f := <-s.frames:
			return s.frame(f)
		case <-s.c.deadc:
			s.c.mu.Lock()
			err := s.c.err
			s.c.mu.Unlock()
			return nil, false, err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

func (s *ClientStream) frame(f Frame) ([]byte, bool, error) {
	switch f.Kind {
	case KindStream:
		return f.Body, false, nil
	case KindResponse:
		return f.Body, true, nil
	case KindError:
		return nil, false, DecodeError(f.Body)
	default:
		return nil, false, fmt.Errorf("%w: stream frame kind %d", ErrBadFrame, f.Kind)
	}
}

// Close abandons the stream client-side: later frames for its ID are
// dropped by the read loop. It does not tell the server — callers cancel at
// the method layer (WCancel) first when they can.
func (s *ClientStream) Close() { s.c.dropStream(s.id) }
