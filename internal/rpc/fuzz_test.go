package rpc

import (
	"bytes"
	"testing"

	"txkv/internal/kvstore"
)

// FuzzFrame drives the frame decoder with arbitrary bytes: it must return
// a structured error or a well-formed frame — never panic, and never
// allocate beyond the frame size limit regardless of what the length
// prefix claims. Wired into CI's fuzz smoke step.
func FuzzFrame(f *testing.F) {
	seed, _ := AppendFrame(nil, Frame{Ver: Version, Kind: KindRequest, Method: RGet, ID: 7, Body: []byte("seed-body")})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 11, Version, KindRequest, RGet, 0, 0, 0, 0, 0, 0, 0, 1})
	truncated := append([]byte(nil), seed...)
	f.Add(truncated[:len(truncated)-4])

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(fr.Body) > MaxFrameBytes {
			t.Fatalf("decoded body of %d bytes exceeds MaxFrameBytes", len(fr.Body))
		}
		if fr.Ver != Version {
			t.Fatalf("decoder accepted version %d", fr.Ver)
		}
		// A decoded frame must re-encode losslessly.
		out, aerr := AppendFrame(nil, fr)
		if aerr != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", aerr)
		}
		back, rerr := ReadFrame(bytes.NewReader(out))
		if rerr != nil {
			t.Fatalf("re-decode failed: %v", rerr)
		}
		if back.ID != fr.ID || back.Kind != fr.Kind || back.Method != fr.Method || !bytes.Equal(back.Body, fr.Body) {
			t.Fatal("re-encode/decode not lossless")
		}
	})
}

// FuzzMessageDecoders drives every request decoder with arbitrary bodies:
// structured error or success, never a panic — these run on untrusted
// bytes in the server before any handler logic.
func FuzzMessageDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 'x'})
	f.Add(encGetReq("t", "r", "c", 1))
	f.Add(encScanReq(kvstore.ScanRequest{Table: "t", Batch: 8}))
	f.Add(encCommitReq(1, nil, false))
	f.Add(encAppendEntriesReq("t.r1", 7, []kvstore.ReplEntry{{Seq: 1}}, 1, 9))
	f.Add(encSetReplicationReq("t.r1", 7, []kvstore.ReplicaTarget{{ServerID: "rs-2"}}, 0))
	f.Add(encSnapshotReq("t.r1", 3, 32))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decStringMsg(data)
		_, _ = decHandleMsg(data)
		_, _ = decLocateAllResp(data)
		_, _, _ = decCreateTableReq(data)
		_, _, _ = decSplitRegionReq(data)
		_, _ = decRegionInfosResp(data)
		_, _, _ = decRegisterReq(data)
		_, _, _, _, _ = decGetReq(data)
		_, _, _ = decGetResp(data)
		_, _, _, _ = decGetBatchReq(data)
		_, _, _ = decGetBatchResp(data)
		_, _ = decScanReq(data)
		_, _ = decScanResp(data)
		_, _, _, _ = decApplyReq(data)
		_, _, _, _, _, _ = decOpenRegionReq(data)
		_, _, _, _, _ = decBeginReq(data)
		_, _, _ = decBeginResp(data)
		_, _, _, _ = decCommitReq(data)
		_, _, _, _ = decCommitResp(data)
		_, _, _ = decFAppendReq(data)
		_, _, _ = decFRenameReq(data)
		_, _, _, _ = decFReadRangeReq(data)
		_, _ = decBytesMsg(data)
		_, _ = decBoolMsg(data)
		_, _ = decStringsMsg(data)
		_, _, _, _, _, _ = decWatchReq(data)
		_, _ = decWatchBatch(data, "t")
		_, _, _ = decWatchCreditReq(data)
		_, _, _, _, _ = decSetReplicationReq(data)
		_, _, _, _, _, _ = decAppendEntriesReq(data)
		_, _, _, _ = decAppendEntriesResp(data)
		_, _, _, _, _ = decPromoteReq(data)
		_, _ = decReplicaPos(data)
		_, _, _ = decOpenFollowerReq(data)
		_, _, _, _ = decCheckpointReq(data)
		_, _ = decLeaseReq(data)
		_, _, _, _ = decSnapshotReq(data)
		_, _ = decSnapshotChunk(data)
		_ = DecodeError(data)
	})
}
