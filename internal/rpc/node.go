package rpc

import (
	"context"
	"fmt"
	"net"
	"time"

	"txkv/internal/kvstore"
	"txkv/internal/obs"
	"txkv/internal/replica"
)

// registerCtx bounds the one-shot registration RPC.
func registerCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// RegionNode is the complete wiring of one region-server process: a
// *kvstore.RegionServer whose DFS is the master's (over RemoteFS), served
// on a TCP listener, heartbeating to and registered with a remote master.
// cmd/txkvd's region role and the multi-process tests share it.

// RegionNodeConfig configures one region-server process.
type RegionNodeConfig struct {
	// ID is the server's cluster-wide identity. Required.
	ID string
	// MasterAddr is the master process's rpc address. Required.
	MasterAddr string
	// Listen is the TCP listen address ("127.0.0.1:0" for tests).
	Listen string
	// Advertise is the address published to the master — what the master
	// and the clients dial. Defaults to the bound listen address; set it
	// when the node sits behind a proxy or NAT (the chaos harness's fault
	// proxies use this).
	Advertise string
	// Server configures the region server itself (ID is overridden).
	Server kvstore.ServerConfig
	// Registry, when non-nil, receives the node's rpc metrics.
	Registry *obs.Registry
	// MaxInflightPerConn caps concurrently-executing unary requests per
	// connection on the node's rpc server. 0 = unlimited.
	MaxInflightPerConn int
}

// RegionNode is a running region-server process' moving parts.
type RegionNode struct {
	srv     *kvstore.RegionServer
	shipper *replica.Shipper
	rpc     *Server
	pool    *Pool
	mc      *MasterClient
	ln      net.Listener
	addr    string // advertised address
}

// StartRegionNode brings a region-server process online: listen, serve the
// region surface, start the server (WAL creation goes through the remote
// DFS), and register with the master. On return the master can assign
// regions to it.
func StartRegionNode(cfg RegionNodeConfig) (*RegionNode, error) {
	if cfg.ID == "" || cfg.MasterAddr == "" {
		return nil, fmt.Errorf("rpc: region node needs ID and MasterAddr")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	pool := NewPool(cfg.Registry)
	mc := NewMasterClient(pool, cfg.MasterAddr)
	scfg := cfg.Server
	scfg.ID = cfg.ID
	srv := kvstore.NewRegionServer(scfg, NewRemoteFS(pool, cfg.MasterAddr))

	// The node's shipping engine: follower links ride the shared pool. A
	// remote region process has no transaction manager, so SafeTS stays nil —
	// follower frontiers advance with applied commit timestamps only.
	shipper := replica.NewShipper(replica.Config{
		ServerID: cfg.ID,
		Dial: func(t kvstore.ReplicaTarget) (kvstore.FollowerLink, error) {
			return NewFollowerLink(pool, t.ServerID, t.Addr), nil
		},
	})
	srv.SetReplicator(shipper)

	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		shipper.Close()
		pool.Close()
		return nil, err
	}
	addr := cfg.Advertise
	if addr == "" {
		addr = ln.Addr().String()
	}

	rpcSrv := NewServerWithConfig(ServerConfig{Registry: cfg.Registry, MaxInflightPerConn: cfg.MaxInflightPerConn})
	RegisterRegionService(rpcSrv, srv)
	go func() { _ = rpcSrv.Serve(ln) }()

	// Start before registering: the WAL must exist (and heartbeats flow)
	// before the master can assign regions here.
	if err := srv.Start(mc); err != nil {
		rpcSrv.Close()
		shipper.Close()
		pool.Close()
		return nil, err
	}
	ctx, cancel := registerCtx()
	defer cancel()
	if err := mc.Register(ctx, cfg.ID, addr); err != nil {
		srv.Stop()
		rpcSrv.Close()
		shipper.Close()
		pool.Close()
		return nil, fmt.Errorf("rpc: register %s with master: %w", cfg.ID, err)
	}
	return &RegionNode{srv: srv, shipper: shipper, rpc: rpcSrv, pool: pool, mc: mc, ln: ln, addr: addr}, nil
}

// Server exposes the node's region server (tests, debug endpoints).
func (n *RegionNode) Server() *kvstore.RegionServer { return n.srv }

// Shipper exposes the node's replication engine (tests, debug endpoints).
func (n *RegionNode) Shipper() *replica.Shipper { return n.shipper }

// Addr returns the node's advertised address.
func (n *RegionNode) Addr() string { return n.addr }

// ListenAddr returns the node's bound listen address. It differs from Addr
// when the node advertises a proxy or NAT address in front of itself.
func (n *RegionNode) ListenAddr() string { return n.ln.Addr().String() }

// Stop shuts the node down cleanly: the region server stops (final WAL
// sync through the remote DFS), then the rpc server and connections close.
func (n *RegionNode) Stop() {
	n.srv.Stop()
	n.shipper.Close()
	n.rpc.Close()
	n.pool.Close()
}

// Kill simulates the process dying: the server crashes (no final sync) and
// every socket closes immediately. In-flight client calls observe
// transport errors; the master's failure detector notices the silence and
// recovers the node's regions elsewhere.
func (n *RegionNode) Kill() {
	n.srv.Crash()
	n.shipper.Close()
	n.rpc.Close()
	n.pool.Close()
}
