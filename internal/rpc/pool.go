package rpc

import (
	"context"
	"errors"
	"sync"
	"time"

	"txkv/internal/obs"
)

// Pool maintains at most one connection per address, dialing lazily and
// replacing broken connections on the next call — the reconnect policy.
// Calls on a healthy connection pipeline; a transport failure drops the
// connection so the next call redials (the address may have come back, or
// the caller's layout cache has been invalidated and it will never ask for
// this address again).
type Pool struct {
	reg *obs.Registry // optional; nil disables metrics

	mu     sync.Mutex
	conns  map[string]*Conn
	closed bool
}

// NewPool creates a connection pool. reg, when non-nil, receives client-
// side RPC metrics (rpc.client.calls, rpc.client.errors,
// rpc.client.redials, rpc.client.latency).
func NewPool(reg *obs.Registry) *Pool {
	return &Pool{reg: reg, conns: make(map[string]*Conn)}
}

// conn returns the live connection for addr, dialing if needed.
func (p *Pool) conn(addr string) (*Conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, transportErr(addr, "pool", errPoolClosed)
	}
	if c, ok := p.conns[addr]; ok && !c.Broken() {
		p.mu.Unlock()
		return c, nil
	}
	if old, ok := p.conns[addr]; ok {
		old.Close()
		delete(p.conns, addr)
		if p.reg != nil {
			p.reg.Counter("rpc.client.redials").Add(1)
		}
	}
	p.mu.Unlock()

	// Dial outside the lock: a slow or dead address must not stall calls to
	// healthy ones. Racing dials to one address are reconciled below
	// (loser's connection is closed).
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		c.Close()
		return nil, transportErr(addr, "pool", errPoolClosed)
	}
	if cur, ok := p.conns[addr]; ok && !cur.Broken() {
		p.mu.Unlock()
		c.Close()
		return cur, nil
	}
	p.conns[addr] = c
	p.mu.Unlock()
	return c, nil
}

// Call performs one exchange against addr, dialing or redialing as needed.
func (p *Pool) Call(ctx context.Context, addr string, method byte, body []byte) ([]byte, error) {
	var start time.Time
	if p.reg != nil {
		p.reg.Counter("rpc.client.calls").Add(1)
		start = time.Now()
	}
	resp, err := p.call(ctx, addr, method, body)
	if p.reg != nil {
		p.reg.Histogram("rpc.client.latency").Record(time.Since(start))
		if err != nil {
			p.reg.Counter("rpc.client.errors").Add(1)
		}
	}
	return resp, err
}

func (p *Pool) call(ctx context.Context, addr string, method byte, body []byte) ([]byte, error) {
	c, err := p.conn(addr)
	if err != nil {
		return nil, err
	}
	resp, err := c.Call(ctx, method, body)
	if c.Broken() {
		p.drop(addr, c)
	}
	return resp, err
}

// drop removes a broken connection so the next call redials.
func (p *Pool) drop(addr string, c *Conn) {
	p.mu.Lock()
	if p.conns[addr] == c {
		delete(p.conns, addr)
	}
	p.mu.Unlock()
}

// Close tears down every connection; subsequent calls fail.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

var errPoolClosed = errors.New("pool closed")
