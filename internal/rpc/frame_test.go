package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Ver: Version, Kind: KindRequest, Method: RGet, ID: 1, Body: []byte("hello")},
		{Ver: Version, Kind: KindResponse, Method: MLocateAll, ID: 1<<63 + 7, Body: nil},
		{Ver: Version, Kind: KindError, Method: TCommit, ID: 0, Body: bytes.Repeat([]byte{0xAB}, 10_000)},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendFrame(buf, f)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	r := bytes.NewReader(buf)
	for i, want := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: ReadFrame: %v", i, err)
		}
		if got.Ver != want.Ver || got.Kind != want.Kind || got.Method != want.Method || got.ID != want.ID {
			t.Fatalf("frame %d: header mismatch: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("frame %d: body mismatch", i)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: got %v, want EOF", err)
	}
}

func TestFrameRejectsOversized(t *testing.T) {
	big := make([]byte, MaxFrameBytes+1)
	if _, err := AppendFrame(nil, Frame{Ver: Version, Kind: KindRequest, Body: big}); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("append oversized: got %v, want ErrFrameTooLarge", err)
	}
	// A hostile length prefix must be rejected before allocation.
	hdr := binary.BigEndian.AppendUint32(nil, uint32(MaxFrameBytes+1))
	if _, err := ReadFrame(bytes.NewReader(hdr)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("read oversized: got %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameRejectsMalformed(t *testing.T) {
	// Declared length below the fixed header.
	small := binary.BigEndian.AppendUint32(nil, 3)
	small = append(small, 1, 2, 3)
	if _, err := ReadFrame(bytes.NewReader(small)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("undersized declare: got %v, want ErrBadFrame", err)
	}

	// Truncated body: header promises more than the stream has.
	good, err := AppendFrame(nil, Frame{Ver: Version, Kind: KindRequest, Method: RGet, ID: 9, Body: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(good[:len(good)-3])); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated body: got %v, want ErrBadFrame", err)
	}

	// Wrong version.
	bad := append([]byte(nil), good...)
	bad[4] = Version + 1
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v, want ErrBadVersion", err)
	}

	// Unknown kind.
	bad = append([]byte(nil), good...)
	bad[5] = 99
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad kind: got %v, want ErrBadFrame", err)
	}
}

func TestPreamble(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePreamble(&buf); err != nil {
		t.Fatal(err)
	}
	ver, err := ReadPreamble(&buf)
	if err != nil {
		t.Fatalf("ReadPreamble: %v", err)
	}
	if ver != Version {
		t.Fatalf("version: got %d want %d", ver, Version)
	}

	if _, err := ReadPreamble(bytes.NewReader([]byte{'X', 'K', Version, 0})); !errors.Is(err, ErrBadPreamble) {
		t.Fatalf("bad magic: got %v, want ErrBadPreamble", err)
	}
	if _, err := ReadPreamble(bytes.NewReader([]byte{'T', 'K', Version + 1, 0})); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("future version: got %v, want ErrBadVersion", err)
	}
}
