package rpc

import (
	"context"
	"errors"
	"fmt"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
)

// The transaction gateway surface. Region-server reads and scans go
// directly from the client to the region servers, but begin/commit/abort
// run against the master process, which hosts the transaction manager, the
// commit log, and the recovery middleware. The gateway executes each remote
// client's transactions through a server-side cluster client, so the
// paper's client-side machinery (deferred-update flush, T_F heartbeats,
// recovery on failure) runs where the coordination service lives; the
// remote process ships only begin/commit/abort and its buffered write-set.
//
// The backend is an interface over kv-level types only: internal/cluster
// implements it (TxnGateway) without this package importing cluster.

// TxnBackend is the server-side transaction executor the gateway service
// dispatches to. Handles are backend-assigned and scoped to the session;
// EndSession must abort every transaction the session still has open.
type TxnBackend interface {
	Begin(sessionID uint64, clientID string, readOnly bool, snapTS kv.Timestamp, mode int) (handle uint64, startTS kv.Timestamp, err error)
	Commit(ctx context.Context, sessionID, handle uint64, updates []kv.Update, wait bool) (kv.Timestamp, error)
	Abort(sessionID, handle uint64) error
	EndSession(sessionID uint64)
}

// txnSessionKey marks a session as registered with the backend.
const txnSessionKey = "txn.session"

// RegisterTxnService wires a transaction backend onto s.
func RegisterTxnService(s *Server, b TxnBackend) {
	ensureSession := func(sess *Session) {
		if sess.Value(txnSessionKey) != nil {
			return
		}
		sess.SetValue(txnSessionKey, true)
		sess.OnClose(func() { b.EndSession(sess.ID()) })
	}
	s.Handle(TBegin, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		clientID, readOnly, snapTS, mode, err := decBeginReq(body)
		if err != nil {
			return nil, err
		}
		ensureSession(sess)
		handle, startTS, err := b.Begin(sess.ID(), clientID, readOnly, snapTS, int(mode))
		if err != nil {
			return nil, err
		}
		return encBeginResp(handle, startTS), nil
	})
	s.Handle(TCommit, func(ctx context.Context, sess *Session, body []byte) ([]byte, error) {
		handle, updates, wait, err := decCommitReq(body)
		if err != nil {
			return nil, err
		}
		ensureSession(sess)
		cts, err := b.Commit(ctx, sess.ID(), handle, updates, wait)
		// The outcome rides in the OK body: a commit can return both a
		// timestamp and an error (indeterminate, committed-but-flush-
		// failed), which a bare error frame cannot carry.
		if err != nil {
			return encCommitResp(cts, CodeFor(err), err.Error()), nil
		}
		return encCommitResp(cts, 0, ""), nil
	})
	s.Handle(TAbort, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		handle, err := decHandleMsg(body)
		if err != nil {
			return nil, err
		}
		ensureSession(sess)
		return nil, b.Abort(sess.ID(), handle)
	})
}

// TxnClient runs transactions against a remote gateway. internal/cluster's
// remote client mode drives it for begin/commit/abort while reads and
// scans go directly to the region servers.
type TxnClient struct {
	pool *Pool
	addr string
}

// NewTxnClient returns a transaction client against the gateway at addr.
// Sharing the pool with the TCPTransport keeps all gateway traffic on one
// connection, which is what scopes the server-side session.
func NewTxnClient(pool *Pool, addr string) *TxnClient {
	return &TxnClient{pool: pool, addr: addr}
}

// BeginRemote starts a transaction in the gateway.
func (t *TxnClient) BeginRemote(ctx context.Context, clientID string, readOnly bool, snapTS kv.Timestamp, mode int) (uint64, kv.Timestamp, error) {
	resp, err := t.pool.Call(ctx, t.addr, TBegin, encBeginReq(clientID, readOnly, snapTS, uint64(mode)))
	if err != nil {
		return 0, 0, err
	}
	return decBeginResp(resp)
}

// CommitRemote ships the buffered write-set and commits. A transport
// failure after the request may have left the commit in flight — the
// gateway commits transactions independently of the requesting connection —
// so it surfaces as ErrCommitIndeterminate, never as a clean abort.
func (t *TxnClient) CommitRemote(ctx context.Context, handle uint64, updates []kv.Update, wait bool) (kv.Timestamp, error) {
	resp, err := t.pool.Call(ctx, t.addr, TCommit, encCommitReq(handle, updates, wait))
	if err != nil {
		if errors.Is(err, kvstore.ErrTransport) {
			return 0, fmt.Errorf("%w: connection lost with commit in flight: %v", ErrCommitIndeterminate, err)
		}
		return 0, err
	}
	cts, code, msg, err := decCommitResp(resp)
	if err != nil {
		return 0, err
	}
	if code != 0 {
		return cts, &RemoteError{Code: code, Msg: msg}
	}
	return cts, nil
}

// AbortRemote discards a transaction.
func (t *TxnClient) AbortRemote(ctx context.Context, handle uint64) error {
	_, err := t.pool.Call(ctx, t.addr, TAbort, encHandleMsg(handle))
	return err
}
