package rpc

// End-to-end tests of the streaming surface: a real txlog + watch hub served
// over a real socket through RegisterWatchService, consumed with WatchClient.

import (
	"context"
	"errors"
	"testing"
	"time"

	"txkv/internal/kv"
	"txkv/internal/txlog"
	"txkv/internal/watch"
)

// startWatchServer serves a watch hub over TCP and returns its address plus
// the log feeding it.
func startWatchServer(t *testing.T, hubCfg watch.Config) (string, *txlog.Log, *watch.Hub) {
	t.Helper()
	l := txlog.New(txlog.Config{})
	h := watch.NewHub(l, hubCfg)
	l.SetCommitSink(h.Publish)
	t.Cleanup(func() { h.Close(); l.Close() })

	s := NewServer(nil)
	RegisterWatchService(s, func(table string, rng kv.KeyRange, from kv.Timestamp, owner string) (*watch.Stream, error) {
		return h.Watch(watch.Filter{Table: table, Range: rng}, from, owner)
	})
	return startTestServer(t, s), l, h
}

func appendWS(t *testing.T, l *txlog.Log, ts kv.Timestamp, table string, row kv.Key) {
	t.Helper()
	err := l.Append(kv.WriteSet{
		TxnID: uint64(ts), ClientID: "c", CommitTS: ts,
		Updates: []kv.Update{{Table: table, Row: row, Column: "v", Value: []byte("x")}},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRemoteWatchStreamsOrderedEvents(t *testing.T) {
	addr, l, _ := startWatchServer(t, watch.Config{})

	// History, then live, crossing the credit-replenish threshold: more
	// batches than the default window so WCredit must flow.
	const total = 3 * defaultWatchWindow
	for i := 1; i <= total/2; i++ {
		appendWS(t, l, kv.Timestamp(i), "t", "a")
	}

	pool := NewPool(nil)
	t.Cleanup(pool.Close)
	wc := NewWatchClient(pool, addr)
	rw, err := wc.Watch("t", kv.KeyRange{}, 0, "remote-test")
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	go func() {
		for i := total/2 + 1; i <= total; i++ {
			appendWS(t, l, kv.Timestamp(i), "t", "z")
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var next kv.Timestamp = 1
	for next <= total {
		b, err := rw.NextBatch(ctx)
		if err != nil {
			t.Fatalf("NextBatch at ts %d: %v", next, err)
		}
		for _, e := range b.Events {
			if e.CommitTS != next {
				t.Fatalf("event ts %d, want %d: gap or duplicate over the wire", e.CommitTS, next)
			}
			if e.Table != "t" || e.Column != "v" || string(e.Value) != "x" {
				t.Fatalf("event payload: %+v", e)
			}
			next++
		}
	}
}

func TestRemoteWatchFilterAndResume(t *testing.T) {
	addr, l, _ := startWatchServer(t, watch.Config{})
	for i := 1; i <= 10; i++ {
		row := kv.Key("in")
		if i%2 == 0 {
			row = "zz-out"
		}
		appendWS(t, l, kv.Timestamp(i), "t", row)
	}

	pool := NewPool(nil)
	t.Cleanup(pool.Close)
	wc := NewWatchClient(pool, addr)
	rw, err := wc.Watch("t", kv.KeyRange{Start: "a", End: "m"}, 0, "filtered")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Odd commits match; consume the first two (ts 1, 3), then resume.
	var got []kv.Timestamp
	var pos kv.Timestamp
	for len(got) < 2 {
		b, err := rw.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range b.Events {
			got = append(got, e.CommitTS)
		}
		pos = b.Pos
	}
	rw.Close()
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("filtered events: %v", got)
	}

	rw2, err := wc.Watch("t", kv.KeyRange{Start: "a", End: "m"}, pos, "resumed")
	if err != nil {
		t.Fatal(err)
	}
	defer rw2.Close()
	got = got[:0]
	for len(got) < 3 { // ts 5, 7, 9 remain
		b, err := rw2.NextBatch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range b.Events {
			got = append(got, e.CommitTS)
		}
	}
	if got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("resumed events: %v", got)
	}
}

func TestRemoteWatchHorizonErrorCrossesWire(t *testing.T) {
	addr, l, _ := startWatchServer(t, watch.Config{})
	for i := 1; i <= 10; i++ {
		appendWS(t, l, kv.Timestamp(i), "t", "a")
	}
	l.Truncate(8)

	pool := NewPool(nil)
	t.Cleanup(pool.Close)
	wc := NewWatchClient(pool, addr)
	rw, err := wc.Watch("t", kv.KeyRange{}, 2, "stale")
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = rw.NextBatch(ctx)
	if !errors.Is(err, watch.ErrHorizonPassed) {
		t.Fatalf("stale remote resume: %v, want watch.ErrHorizonPassed", err)
	}
}

func TestRemoteWatchCancelReleasesServerStream(t *testing.T) {
	addr, l, h := startWatchServer(t, watch.Config{})
	appendWS(t, l, 1, "t", "a")

	pool := NewPool(nil)
	t.Cleanup(pool.Close)
	wc := NewWatchClient(pool, addr)
	rw, err := wc.Watch("t", kv.KeyRange{}, 0, "cancelled")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rw.NextBatch(ctx); err != nil {
		t.Fatal(err)
	}
	rw.Close()

	// The server-side stream closes (releasing its pin) shortly after.
	deadline := time.Now().Add(5 * time.Second)
	for h.Stats().Watchers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server stream still open after cancel: %+v", h.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A lag-horizon cancellation reaches the remote consumer as ErrLagging.
func TestRemoteWatchLaggingCrossesWire(t *testing.T) {
	addr, l, _ := startWatchServer(t, watch.Config{Buffer: 2, LagHorizon: 8})

	pool := NewPool(nil)
	t.Cleanup(pool.Close)
	wc := NewWatchClient(pool, addr)
	rw, err := wc.Watch("t", kv.KeyRange{}, 0, "laggard")
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()

	// Consume one batch first: Watch returns once the request frame is
	// written, so this is what guarantees the server-side subscription
	// exists before the flood below.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	appendWS(t, l, 1, "t", "a")
	if _, err := rw.NextBatch(ctx); err != nil {
		t.Fatal(err)
	}

	// Commit far past the horizon without the remote consumer pulling: the
	// server pushes until the credit window (defaultWatchWindow) is
	// exhausted, stalls with the stream position frozen, and the hub then
	// cancels the stream past the horizon.
	for i := 2; i <= 3*defaultWatchWindow; i++ {
		appendWS(t, l, kv.Timestamp(i), "t", "a")
	}
	for {
		_, err := rw.NextBatch(ctx)
		if err == nil {
			continue // batches pushed before the cancel
		}
		if !errors.Is(err, watch.ErrLagging) {
			t.Fatalf("NextBatch: %v, want watch.ErrLagging", err)
		}
		return
	}
}
