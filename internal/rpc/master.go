package rpc

import (
	"context"
	"time"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
	"txkv/internal/obs"
)

// The master surface: layout resolution, table admin, region-server
// registration, and heartbeats. RegisterMasterService exposes a
// *kvstore.Master; MasterClient is the raw client (used by region-server
// processes to register and heartbeat, and by remote admin handles);
// TCPTransport packages the client as a kvstore.Transport so the routing
// client works unchanged against a remote master.

// heartbeatTimeout bounds one heartbeat RPC; a heartbeat that cannot land
// within it is dropped (the next one is at most an interval away, and the
// master's failure detector tolerates several missed beats).
const heartbeatTimeout = 2 * time.Second

// RegisterMasterService wires a master's methods onto s. pool is used to
// dial back to registering region servers (host proxies for assignment and
// recovery).
func RegisterMasterService(s *Server, m *kvstore.Master, pool *Pool) {
	s.Handle(MLocateAll, func(ctx context.Context, _ *Session, body []byte) ([]byte, error) {
		table, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		located, err := m.LocateAll(table)
		if err != nil {
			return nil, err
		}
		locs := make([]WireLocation, 0, len(located))
		for _, rl := range located {
			wl := WireLocation{Info: rl.Info, Addr: rl.Addr}
			for _, f := range rl.Followers {
				if f.Addr == "" {
					continue // in-process follower: unreachable from a remote client
				}
				wl.FollowerAddrs = append(wl.FollowerAddrs, f.Addr)
			}
			locs = append(locs, wl)
		}
		return encLocateAllResp(locs), nil
	})
	s.Handle(MCreateTable, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		name, splits, err := decCreateTableReq(body)
		if err != nil {
			return nil, err
		}
		return nil, m.CreateTable(name, splits)
	})
	s.Handle(MSplitRegion, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		regionID, splitKey, err := decSplitRegionReq(body)
		if err != nil {
			return nil, err
		}
		return nil, m.SplitRegion(regionID, splitKey)
	})
	s.Handle(MTableRegions, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		table, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		infos, err := m.TableRegions(table)
		if err != nil {
			return nil, err
		}
		return encRegionInfosResp(infos), nil
	})
	s.Handle(MRegister, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		serverID, addr, err := decRegisterReq(body)
		if err != nil {
			return nil, err
		}
		return nil, m.AddServerHost(NewHostProxy(pool, serverID, addr), addr)
	})
	s.Handle(MHeartbeat, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		serverID, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		m.Heartbeat(serverID)
		return nil, nil
	})
}

// MasterClient calls a remote master. It implements kvstore.HeartbeatSink,
// so a region server's heartbeat loop drives it directly.
type MasterClient struct {
	pool *Pool
	addr string
}

// NewMasterClient returns a client for the master at addr over pool.
func NewMasterClient(pool *Pool, addr string) *MasterClient {
	return &MasterClient{pool: pool, addr: addr}
}

// LocateAll resolves a table's layout: region metadata plus advertised
// server addresses.
func (m *MasterClient) LocateAll(ctx context.Context, table string) ([]WireLocation, error) {
	resp, err := m.pool.Call(ctx, m.addr, MLocateAll, encStringMsg(table))
	if err != nil {
		return nil, err
	}
	return decLocateAllResp(resp)
}

// CreateTable creates a table pre-split at the given keys.
func (m *MasterClient) CreateTable(ctx context.Context, name string, splits []kv.Key) error {
	_, err := m.pool.Call(ctx, m.addr, MCreateTable, encCreateTableReq(name, splits))
	return err
}

// SplitRegion splits an online region at splitKey.
func (m *MasterClient) SplitRegion(ctx context.Context, regionID string, splitKey kv.Key) error {
	_, err := m.pool.Call(ctx, m.addr, MSplitRegion, encSplitRegionReq(regionID, splitKey))
	return err
}

// TableRegions returns a table's region metadata.
func (m *MasterClient) TableRegions(ctx context.Context, table string) ([]kvstore.RegionInfo, error) {
	resp, err := m.pool.Call(ctx, m.addr, MTableRegions, encStringMsg(table))
	if err != nil {
		return nil, err
	}
	return decRegionInfosResp(resp)
}

// Register announces a region server to the master: the master dials back
// to addr for assignment and recovery.
func (m *MasterClient) Register(ctx context.Context, serverID, addr string) error {
	_, err := m.pool.Call(ctx, m.addr, MRegister, encRegisterReq(serverID, addr))
	return err
}

// Heartbeat sends one liveness beat (kvstore.HeartbeatSink). Failures are
// dropped: a missed beat is indistinguishable from a slow network, and the
// master's failure detector already tolerates several.
func (m *MasterClient) Heartbeat(serverID string) {
	ctx, cancel := context.WithTimeout(context.Background(), heartbeatTimeout)
	defer cancel()
	_, _ = m.pool.Call(ctx, m.addr, MHeartbeat, encStringMsg(serverID))
}

// TCPTransport is the remote kvstore.Transport: layouts resolve through a
// TCP master, reads and flushes go directly to the region-server processes
// the layout names. It owns its connection pool; Close releases every
// connection.
type TCPTransport struct {
	pool *Pool
	mc   *MasterClient
}

// NewTCPTransport returns a transport whose master lives at masterAddr.
// reg, when non-nil, receives client-side RPC metrics.
func NewTCPTransport(masterAddr string, reg *obs.Registry) *TCPTransport {
	pool := NewPool(reg)
	return &TCPTransport{pool: pool, mc: NewMasterClient(pool, masterAddr)}
}

// Pool exposes the transport's connection pool (shared by the transaction
// client, so one process keeps one connection per server).
func (t *TCPTransport) Pool() *Pool { return t.pool }

// Master exposes the transport's master client (admin operations).
func (t *TCPTransport) Master() *MasterClient { return t.mc }

func (t *TCPTransport) LocateAll(ctx context.Context, table string) ([]kvstore.Location, error) {
	locs, err := t.mc.LocateAll(ctx, table)
	if err != nil {
		return nil, err
	}
	out := make([]kvstore.Location, 0, len(locs))
	for _, l := range locs {
		if l.Addr == "" {
			continue // no advertised address: unreachable from this process
		}
		loc := kvstore.Location{Info: l.Info, Ep: NewEndpoint(t.pool, l.Addr)}
		for _, fa := range l.FollowerAddrs {
			loc.Followers = append(loc.Followers, NewEndpoint(t.pool, fa))
		}
		out = append(out, loc)
	}
	return out, nil
}

func (t *TCPTransport) CreateTable(ctx context.Context, name string, splits []kv.Key) error {
	return t.mc.CreateTable(ctx, name, splits)
}

func (t *TCPTransport) SplitRegion(ctx context.Context, regionID string, splitKey kv.Key) error {
	return t.mc.SplitRegion(ctx, regionID, splitKey)
}

func (t *TCPTransport) TableRegions(ctx context.Context, table string) ([]kvstore.RegionInfo, error) {
	return t.mc.TableRegions(ctx, table)
}

func (t *TCPTransport) Close() error {
	t.pool.Close()
	return nil
}
