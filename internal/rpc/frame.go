package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Framing: every message on a connection is one frame,
//
//	len:u32be | ver:u8 | kind:u8 | method:u8 | id:u64be | body
//
// where len counts everything after itself (ver through body). Requests and
// responses share the header; a response echoes the request's method and id,
// which is what makes pipelining work — many requests can be in flight on
// one connection and responses may arrive in any order. Request bodies lead
// with a u64be deadline (unix nanoseconds, 0 = none) so context deadlines
// propagate to the server. Error-response bodies are `code:uvarint msg:str`.
//
// Streaming methods (the watch surface) answer one request with any number
// of KindStream frames — each echoing the request's method and id, each one
// element of the stream — terminated by exactly one KindResponse (clean end)
// or KindError frame for the same id. Stream frames interleave freely with
// the connection's other traffic; flow control is credit-based at the method
// layer (WCredit), so a slow stream consumer never stalls the shared
// connection.
//
// A connection starts with a 4-byte preamble from the client, "TK" ver 0x00,
// answered by the server with its own preamble — the version negotiation
// (both sides currently speak only Version; a mismatch closes the
// connection with ErrBadVersion). See PROTOCOL.md for the full reference.

// Version is the protocol version spoken by this build.
const Version = 1

// Frame kinds.
const (
	KindRequest  byte = 1 // request: body leads with a u64be deadline
	KindResponse byte = 2 // successful response: body is the method's result
	KindError    byte = 3 // error response: body is code:uvarint msg:str
	KindStream   byte = 4 // one pushed element of a streaming response
)

// MaxFrameBytes bounds one frame's payload (ver through body). Frames
// declaring a larger length are rejected before any allocation — the
// decoder's defence against absurd length prefixes from corrupt or
// malicious peers.
const MaxFrameBytes = 16 << 20

// frameHeaderBytes is the fixed part after the length prefix:
// ver + kind + method + id.
const frameHeaderBytes = 1 + 1 + 1 + 8

// Framing errors. ReadFrame returns these (wrapped with detail) for
// malformed input; connection-level I/O errors pass through untouched.
var (
	ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")
	ErrBadFrame      = errors.New("rpc: malformed frame")
	ErrBadVersion    = errors.New("rpc: protocol version mismatch")
	ErrBadPreamble   = errors.New("rpc: bad connection preamble")
)

// Frame is one decoded protocol frame.
type Frame struct {
	Ver    byte
	Kind   byte
	Method byte
	ID     uint64
	Body   []byte
}

// AppendFrame appends f's encoding to dst and returns the extended slice.
// It fails only when the body exceeds MaxFrameBytes.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	n := frameHeaderBytes + len(f.Body)
	if n > MaxFrameBytes {
		return dst, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, f.Ver, f.Kind, f.Method)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	return append(dst, f.Body...), nil
}

// ReadFrame reads and decodes one frame from r. The returned frame's Body
// aliases a fresh allocation bounded by the declared length, which is
// validated against MaxFrameBytes before allocating. Version and kind are
// validated here so every caller sees only well-formed frames.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4 + frameHeaderBytes]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if n < frameHeaderBytes {
		return Frame{}, fmt.Errorf("%w: declared %d bytes, need at least %d", ErrBadFrame, n, frameHeaderBytes)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated header: %v", ErrBadFrame, err)
	}
	f := Frame{
		Ver:    hdr[4],
		Kind:   hdr[5],
		Method: hdr[6],
		ID:     binary.BigEndian.Uint64(hdr[7:15]),
	}
	if f.Ver != Version {
		return Frame{}, fmt.Errorf("%w: frame version %d, speak %d", ErrBadVersion, f.Ver, Version)
	}
	if f.Kind != KindRequest && f.Kind != KindResponse && f.Kind != KindError && f.Kind != KindStream {
		return Frame{}, fmt.Errorf("%w: kind %d", ErrBadFrame, f.Kind)
	}
	if body := int(n) - frameHeaderBytes; body > 0 {
		f.Body = make([]byte, body)
		if _, err := io.ReadFull(r, f.Body); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated body: %v", ErrBadFrame, err)
		}
	}
	return f, nil
}

// WritePreamble writes the 4-byte connection preamble: 'T' 'K' version 0x00.
func WritePreamble(w io.Writer) error {
	_, err := w.Write([]byte{'T', 'K', Version, 0})
	return err
}

// ReadPreamble reads and validates the peer's preamble, returning the
// version it speaks. The magic and reserved byte must match; the version is
// checked against Version (the only one this build speaks).
func ReadPreamble(r io.Reader) (byte, error) {
	var p [4]byte
	if _, err := io.ReadFull(r, p[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadPreamble, err)
	}
	if p[0] != 'T' || p[1] != 'K' || p[3] != 0 {
		return 0, fmt.Errorf("%w: magic %q reserved 0x%02x", ErrBadPreamble, p[:2], p[3])
	}
	if p[2] != Version {
		return p[2], fmt.Errorf("%w: peer speaks %d, this build speaks %d", ErrBadVersion, p[2], Version)
	}
	return p[2], nil
}
