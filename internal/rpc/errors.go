package rpc

import (
	"context"
	"errors"
	"fmt"

	"txkv/internal/dfs"
	"txkv/internal/kvstore"
	"txkv/internal/txmgr"
	"txkv/internal/watch"
)

// Structured error mapping. A handler error crosses the wire as a numeric
// code plus the error string; the client side rebuilds a RemoteError whose
// Unwrap returns the matching local sentinel, so errors.Is works across
// process boundaries exactly as it does in-process: the routing client's
// retry classification (ErrRegionNotServing, ErrServerStopped), the
// transaction retry loop (txmgr.ErrConflict via txmgr.IsRetryable), and the
// DFS callers (dfs.ErrNotFound, dfs.ErrExists) all keep working unchanged.
//
// Codes are part of the wire protocol — see PROTOCOL.md. New codes may be
// appended; existing values must never be reused.

// ErrorCode identifies an error class on the wire.
type ErrorCode uint64

// Wire error codes.
const (
	// Generic.
	CodeInternal         ErrorCode = 1 // unclassified server-side error
	CodeBadRequest       ErrorCode = 2 // undecodable request body
	CodeUnknownMethod    ErrorCode = 3 // method byte not registered
	CodeCanceled         ErrorCode = 4 // request context canceled
	CodeDeadlineExceeded ErrorCode = 5 // propagated deadline expired

	// kvstore.
	CodeRegionNotServing ErrorCode = 10
	CodeServerStopped    ErrorCode = 11
	CodeNoSuchTable      ErrorCode = 12
	CodeTableExists      ErrorCode = 13
	CodeNoLiveServers    ErrorCode = 14

	// txmgr / transaction gateway.
	CodeConflict            ErrorCode = 20
	CodeTxnNotActive        ErrorCode = 21
	CodeSnapshotTooOld      ErrorCode = 22
	CodeFutureSnapshot      ErrorCode = 23
	CodeCommitIndeterminate ErrorCode = 24

	// dfs.
	CodeDFSNotFound    ErrorCode = 30
	CodeDFSExists      ErrorCode = 31
	CodeDFSNoDataNodes ErrorCode = 32
	CodeDFSDataLoss    ErrorCode = 33
	CodeDFSClosed      ErrorCode = 34

	// watch.
	CodeWatchLagging       ErrorCode = 40
	CodeWatchHorizonPassed ErrorCode = 41
	CodeWatchClosed        ErrorCode = 42

	// replication.
	CodeStaleEpoch     ErrorCode = 50
	CodeLeaseExpired   ErrorCode = 51
	CodeFollowerBehind ErrorCode = 52
	CodeReplicaGap     ErrorCode = 53
)

// ErrCommitIndeterminate is the rpc-level commit-outcome-unknown sentinel.
// The transaction gateway maps the cluster's indeterminate-commit error to
// this before it crosses the wire; the remote client additionally
// synthesizes it when the connection dies between sending a commit and
// reading its response — the canonical indeterminate window of any RPC
// commit protocol.
var ErrCommitIndeterminate = errors.New("rpc: commit outcome indeterminate")

// codeSentinels maps each code to the local sentinel RemoteError unwraps
// to. Codes without a sentinel (internal, framing) unwrap to nil.
var codeSentinels = map[ErrorCode]error{
	CodeCanceled:         context.Canceled,
	CodeDeadlineExceeded: context.DeadlineExceeded,

	CodeRegionNotServing: kvstore.ErrRegionNotServing,
	CodeServerStopped:    kvstore.ErrServerStopped,
	CodeNoSuchTable:      kvstore.ErrNoSuchTable,
	CodeTableExists:      kvstore.ErrTableExists,
	CodeNoLiveServers:    kvstore.ErrNoLiveServers,

	CodeConflict:            txmgr.ErrConflict,
	CodeTxnNotActive:        txmgr.ErrTxnNotActive,
	CodeSnapshotTooOld:      txmgr.ErrSnapshotTooOld,
	CodeFutureSnapshot:      txmgr.ErrFutureSnapshot,
	CodeCommitIndeterminate: ErrCommitIndeterminate,

	CodeDFSNotFound:    dfs.ErrNotFound,
	CodeDFSExists:      dfs.ErrExists,
	CodeDFSNoDataNodes: dfs.ErrNoDataNodes,
	CodeDFSDataLoss:    dfs.ErrDataLoss,
	CodeDFSClosed:      dfs.ErrClosed,

	CodeWatchLagging:       watch.ErrLagging,
	CodeWatchHorizonPassed: watch.ErrHorizonPassed,
	CodeWatchClosed:        watch.ErrClosed,

	CodeStaleEpoch:     kvstore.ErrStaleEpoch,
	CodeLeaseExpired:   kvstore.ErrLeaseExpired,
	CodeFollowerBehind: kvstore.ErrFollowerBehind,
	CodeReplicaGap:     kvstore.ErrReplicaGap,
}

// sentinelCodes is the reverse mapping used when encoding a handler error.
// Order matters only for documentation; classification walks errors.Is.
var sentinelCodes = []struct {
	err  error
	code ErrorCode
}{
	{kvstore.ErrRegionNotServing, CodeRegionNotServing},
	{kvstore.ErrServerStopped, CodeServerStopped},
	{kvstore.ErrNoSuchTable, CodeNoSuchTable},
	{kvstore.ErrTableExists, CodeTableExists},
	{kvstore.ErrNoLiveServers, CodeNoLiveServers},
	{txmgr.ErrConflict, CodeConflict},
	{txmgr.ErrTxnNotActive, CodeTxnNotActive},
	{txmgr.ErrSnapshotTooOld, CodeSnapshotTooOld},
	{txmgr.ErrFutureSnapshot, CodeFutureSnapshot},
	{ErrCommitIndeterminate, CodeCommitIndeterminate},
	{dfs.ErrNotFound, CodeDFSNotFound},
	{dfs.ErrExists, CodeDFSExists},
	{dfs.ErrNoDataNodes, CodeDFSNoDataNodes},
	{dfs.ErrDataLoss, CodeDFSDataLoss},
	{dfs.ErrClosed, CodeDFSClosed},
	{watch.ErrLagging, CodeWatchLagging},
	{watch.ErrHorizonPassed, CodeWatchHorizonPassed},
	{watch.ErrClosed, CodeWatchClosed},
	{kvstore.ErrStaleEpoch, CodeStaleEpoch},
	{kvstore.ErrLeaseExpired, CodeLeaseExpired},
	{kvstore.ErrFollowerBehind, CodeFollowerBehind},
	{kvstore.ErrReplicaGap, CodeReplicaGap},
	{context.Canceled, CodeCanceled},
	{context.DeadlineExceeded, CodeDeadlineExceeded},
}

// CodeFor classifies a handler error into its wire code. A RemoteError
// keeps its original code, so an error relayed through a proxy hop (say a
// region server's error crossing back through the master) is preserved
// rather than re-classified.
func CodeFor(err error) ErrorCode {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	for _, sc := range sentinelCodes {
		if errors.Is(err, sc.err) {
			return sc.code
		}
	}
	return CodeInternal
}

// RemoteError is an error received over the wire: the peer's error string
// plus its code. Unwrap returns the local sentinel for the code, so
// errors.Is(err, kvstore.ErrRegionNotServing) etc. hold across the wire.
type RemoteError struct {
	Code ErrorCode
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpc: remote error (code %d): %s", e.Code, e.Msg)
}

func (e *RemoteError) Unwrap() error { return codeSentinels[e.Code] }

// DecodeError rebuilds a handler error from an error-frame body.
func DecodeError(body []byte) error {
	d := newDec(body)
	code := d.uvarint()
	msg := d.str()
	if d.err != nil {
		return fmt.Errorf("%w: undecodable error body", ErrBadFrame)
	}
	return &RemoteError{Code: ErrorCode(code), Msg: msg}
}

// EncodeError serializes a handler error into an error-frame body.
func EncodeError(err error) []byte {
	b := appendUvarint(nil, uint64(CodeFor(err)))
	return appendString(b, err.Error())
}

// transportErr wraps a connection-level failure so the routing client
// re-resolves the layout instead of retrying the dead address.
func transportErr(addr string, op string, err error) error {
	return fmt.Errorf("%w: %s to %s: %v", kvstore.ErrTransport, op, addr, err)
}
