// Package rpc is txkv's wire protocol: a hand-rolled, stdlib-only,
// length-prefixed binary protocol over TCP that carries the transport seam
// cut in internal/kvstore (see PROTOCOL.md for the byte-level reference).
//
// The package provides both halves of every surface:
//
//   - framing: versioned frame header, request IDs for pipelining, deadline
//     propagation, structured error codes mapping back to the sentinel
//     errors of kvstore/txmgr/dfs (frame.go, errors.go, wire.go);
//   - client plumbing: a multiplexing Conn (many in-flight calls over one
//     socket, demultiplexed by request ID) and a Pool that dials on demand
//     and reconnects after failures (conn.go, pool.go);
//   - a Server dispatching method handlers with per-connection sessions and
//     per-RPC metrics (server.go);
//   - the region-server surface: service registration over a
//     *kvstore.RegionServer, a client Endpoint implementing
//     kvstore.RegionEndpoint, and a HostProxy implementing
//     kvstore.RegionHost for the master's assignment/recovery driving
//     (region.go, host.go);
//   - the master surface: LocateAll/admin/registration/heartbeat service
//     and client, plus TCPTransport implementing kvstore.Transport
//     (master.go, transport.go);
//   - the DFS surface: RemoteFS implements dfs.FileSystem by executing
//     every operation in the master's process, giving region-server
//     processes the shared-namespace semantics HBase gets from HDFS
//     (dfs.go);
//   - the transaction gateway surface: Begin/Commit/Abort against a
//     TxnBackend served by the master process (txn.go);
//   - RegionNode: the complete wiring of one region-server process
//     (remote DFS, TCP service, registration, heartbeats), shared by
//     cmd/txkvd and the multi-process tests (node.go).
//
// Connection-level failures wrap kvstore.ErrTransport, which the routing
// client classifies as retryable-after-relocate: a dead server's cached
// regions are re-resolved through the master rather than retried against
// the dead address.
package rpc
