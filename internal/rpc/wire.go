package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
	"txkv/internal/watch"
)

// Method codes and per-method message codecs. Every message body is a flat
// uvarint/length-prefixed encoding in the same style as internal/kv's
// codecs (which this file reuses for KeyValue and WriteSet payloads).
// PROTOCOL.md documents each body field by field; rpc/protocol_test.go
// round-trips every codec here against that document's message list.

// Method codes. Grouped by service surface; values are wire protocol and
// must never be reused.
const (
	// Master surface (served by the master process).
	MLocateAll    byte = 0x01
	MCreateTable  byte = 0x02
	MSplitRegion  byte = 0x03
	MTableRegions byte = 0x04
	MRegister     byte = 0x05
	MHeartbeat    byte = 0x06

	// Transaction gateway surface (served by the master process).
	TBegin  byte = 0x20
	TCommit byte = 0x21
	TAbort  byte = 0x22

	// Region-server surface (served by each region-server process).
	RGet         byte = 0x40
	RGetBatch    byte = 0x41
	RScanBatch   byte = 0x42
	RApply       byte = 0x43
	ROpenRegion  byte = 0x44
	RMarkOnline  byte = 0x45
	RCloseRegion byte = 0x46
	RCloseFlush  byte = 0x47
	RSyncWAL     byte = 0x48

	// Replication surface (served by each region-server process): the
	// master's replica-control calls plus the primary→follower shipping
	// stream. RSnapshot is a streaming method (KindStream frames, credit
	// flow like WWatch; RSnapCredit replenishes).
	RSetReplication byte = 0x49
	RAppendEntries  byte = 0x4A
	RPromote        byte = 0x4B
	RReplicaPos     byte = 0x4C
	ROpenFollower   byte = 0x4D
	RCheckpoint     byte = 0x4E
	RSnapshot       byte = 0x4F
	RLease          byte = 0x50
	RSnapCredit     byte = 0x51

	// Watch surface (served by the master process; the protocol's first
	// streaming methods — WWatch answers with KindStream frames).
	WWatch  byte = 0x80
	WCredit byte = 0x81
	WCancel byte = 0x82

	// DFS surface (served by the master process).
	FCreate    byte = 0x60
	FAppend    byte = 0x61
	FSync      byte = 0x62
	FClose     byte = 0x63
	FAbandon   byte = 0x64
	FDelete    byte = 0x65
	FRename    byte = 0x66
	FExists    byte = 0x67
	FList      byte = 0x68
	FSize      byte = 0x69
	FReadAll   byte = 0x6A
	FReadRange byte = 0x6B
)

// errTruncated reports a message body shorter than its own structure.
var errTruncated = errors.New("rpc: truncated message")

// --- primitive append helpers ---

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- primitive decoder ---

// dec is a cursor over a message body. The first malformed read latches
// err; later reads return zero values, so codecs read a whole message and
// check err once. Count prefixes are sanity-bounded against the remaining
// bytes before any allocation (each element takes at least one byte), so a
// hostile length prefix cannot force an oversized allocation.
type dec struct {
	b   []byte
	err error
}

func newDec(b []byte) *dec { return &dec{b: b} }

func (d *dec) fail() {
	if d.err == nil {
		d.err = errTruncated
	}
}

func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count reads a uvarint element count and bounds it by the bytes left.
func (d *dec) count() int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) bytes() []byte {
	n := d.count()
	if d.err != nil {
		return nil
	}
	v := append([]byte(nil), d.b[:n]...)
	d.b = d.b[n:]
	return v
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if len(d.b) == 0 {
		d.fail()
		return false
	}
	v := d.b[0] == 1
	d.b = d.b[1:]
	return v
}

func (d *dec) keyValue() kv.KeyValue {
	if d.err != nil {
		return kv.KeyValue{}
	}
	e, rest, err := kv.DecodeKeyValue(d.b)
	if err != nil {
		d.err = err
		return kv.KeyValue{}
	}
	d.b = rest
	return e
}

// --- shared composite codecs ---

func appendRegionInfo(b []byte, info kvstore.RegionInfo) []byte {
	b = appendString(b, info.ID)
	b = appendString(b, info.Table)
	b = appendString(b, string(info.Range.Start))
	return appendString(b, string(info.Range.End))
}

func (d *dec) regionInfo() kvstore.RegionInfo {
	return kvstore.RegionInfo{
		ID:    d.str(),
		Table: d.str(),
		Range: kv.KeyRange{Start: kv.Key(d.str()), End: kv.Key(d.str())},
	}
}

func appendStrings(b []byte, ss []string) []byte {
	b = appendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = appendString(b, s)
	}
	return b
}

func (d *dec) strings() []string {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	ss := make([]string, 0, n)
	for i := 0; i < n; i++ {
		ss = append(ss, d.str())
	}
	return ss
}

// --- master surface ---

// encStringMsg / decStringMsg: the shared single-string body (MLocateAll,
// MTableRegions, MHeartbeat table/serverID; FDelete/FExists/... paths).
func encStringMsg(s string) []byte { return appendString(nil, s) }

func decStringMsg(b []byte) (string, error) {
	d := newDec(b)
	s := d.str()
	return s, d.err
}

// WireLocation is one entry of a LocateAll response: region metadata plus
// the advertised address of the server hosting it (empty = the region is
// hosted by a server without an advertised address; remote clients skip it
// and retry, exactly as they would an offline region). FollowerAddrs lists
// the advertised addresses of live follower copies — the endpoints a
// follower-reads client may route scan batches to.
type WireLocation struct {
	Info          kvstore.RegionInfo
	Addr          string
	FollowerAddrs []string
}

func encLocateAllResp(locs []WireLocation) []byte {
	b := appendUvarint(nil, uint64(len(locs)))
	for _, l := range locs {
		b = appendRegionInfo(b, l.Info)
		b = appendString(b, l.Addr)
		b = appendStrings(b, l.FollowerAddrs)
	}
	return b
}

func decLocateAllResp(b []byte) ([]WireLocation, error) {
	d := newDec(b)
	n := d.count()
	locs := make([]WireLocation, 0, n)
	for i := 0; i < n; i++ {
		locs = append(locs, WireLocation{Info: d.regionInfo(), Addr: d.str(), FollowerAddrs: d.strings()})
	}
	return locs, d.err
}

func encCreateTableReq(name string, splits []kv.Key) []byte {
	b := appendString(nil, name)
	b = appendUvarint(b, uint64(len(splits)))
	for _, s := range splits {
		b = appendString(b, string(s))
	}
	return b
}

func decCreateTableReq(b []byte) (string, []kv.Key, error) {
	d := newDec(b)
	name := d.str()
	n := d.count()
	splits := make([]kv.Key, 0, n)
	for i := 0; i < n; i++ {
		splits = append(splits, kv.Key(d.str()))
	}
	return name, splits, d.err
}

func encSplitRegionReq(regionID string, splitKey kv.Key) []byte {
	b := appendString(nil, regionID)
	return appendString(b, string(splitKey))
}

func decSplitRegionReq(b []byte) (string, kv.Key, error) {
	d := newDec(b)
	id := d.str()
	key := kv.Key(d.str())
	return id, key, d.err
}

func encRegionInfosResp(infos []kvstore.RegionInfo) []byte {
	b := appendUvarint(nil, uint64(len(infos)))
	for _, info := range infos {
		b = appendRegionInfo(b, info)
	}
	return b
}

func decRegionInfosResp(b []byte) ([]kvstore.RegionInfo, error) {
	d := newDec(b)
	n := d.count()
	infos := make([]kvstore.RegionInfo, 0, n)
	for i := 0; i < n; i++ {
		infos = append(infos, d.regionInfo())
	}
	return infos, d.err
}

func encRegisterReq(serverID, addr string) []byte {
	b := appendString(nil, serverID)
	return appendString(b, addr)
}

func decRegisterReq(b []byte) (string, string, error) {
	d := newDec(b)
	id := d.str()
	addr := d.str()
	return id, addr, d.err
}

// --- region-server surface ---

func encGetReq(table string, row kv.Key, column string, maxTS kv.Timestamp) []byte {
	b := appendString(nil, table)
	b = appendString(b, string(row))
	b = appendString(b, column)
	return appendUvarint(b, uint64(maxTS))
}

func decGetReq(b []byte) (table string, row kv.Key, column string, maxTS kv.Timestamp, err error) {
	d := newDec(b)
	table = d.str()
	row = kv.Key(d.str())
	column = d.str()
	maxTS = kv.Timestamp(d.uvarint())
	return table, row, column, maxTS, d.err
}

func encGetResp(e kv.KeyValue, found bool) []byte {
	b := appendBool(nil, found)
	if found {
		b = kv.AppendKeyValue(b, e)
	}
	return b
}

func decGetResp(b []byte) (kv.KeyValue, bool, error) {
	d := newDec(b)
	found := d.bool()
	var e kv.KeyValue
	if found {
		e = d.keyValue()
	}
	return e, found, d.err
}

func encGetBatchReq(table string, keys []kv.CellKey, maxTS kv.Timestamp) []byte {
	b := appendString(nil, table)
	b = appendUvarint(b, uint64(maxTS))
	b = appendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendString(b, string(k.Row))
		b = appendString(b, k.Column)
	}
	return b
}

func decGetBatchReq(b []byte) (string, []kv.CellKey, kv.Timestamp, error) {
	d := newDec(b)
	table := d.str()
	maxTS := kv.Timestamp(d.uvarint())
	n := d.count()
	keys := make([]kv.CellKey, 0, n)
	for i := 0; i < n; i++ {
		keys = append(keys, kv.CellKey{Row: kv.Key(d.str()), Column: d.str()})
	}
	return table, keys, maxTS, d.err
}

func encGetBatchResp(kvs []kv.KeyValue, found []bool) []byte {
	b := appendUvarint(nil, uint64(len(kvs)))
	for i := range kvs {
		ok := i < len(found) && found[i]
		b = appendBool(b, ok)
		if ok {
			b = kv.AppendKeyValue(b, kvs[i])
		}
	}
	return b
}

func decGetBatchResp(b []byte) ([]kv.KeyValue, []bool, error) {
	d := newDec(b)
	n := d.count()
	kvs := make([]kv.KeyValue, n)
	found := make([]bool, n)
	for i := 0; i < n; i++ {
		if found[i] = d.bool(); found[i] {
			kvs[i] = d.keyValue()
		}
	}
	return kvs, found, d.err
}

func encScanReq(req kvstore.ScanRequest) []byte {
	b := appendString(nil, req.Table)
	b = appendString(b, string(req.Range.Start))
	b = appendString(b, string(req.Range.End))
	b = appendUvarint(b, uint64(req.MaxTS))
	b = appendBool(b, req.HasResume)
	b = appendString(b, string(req.Resume.Row))
	b = appendString(b, req.Resume.Column)
	b = appendStrings(b, req.Columns)
	b = appendBool(b, req.KeysOnly)
	b = appendUvarint(b, uint64(req.Batch))
	return appendBool(b, req.AllowFollower)
}

func decScanReq(b []byte) (kvstore.ScanRequest, error) {
	d := newDec(b)
	req := kvstore.ScanRequest{
		Table: d.str(),
		Range: kv.KeyRange{Start: kv.Key(d.str()), End: kv.Key(d.str())},
		MaxTS: kv.Timestamp(d.uvarint()),
	}
	req.HasResume = d.bool()
	req.Resume = kv.CellKey{Row: kv.Key(d.str()), Column: d.str()}
	req.Columns = d.strings()
	req.KeysOnly = d.bool()
	req.Batch = int(d.uvarint())
	req.AllowFollower = d.bool()
	return req, d.err
}

func encScanResp(resp kvstore.ScanResponse) []byte {
	b := appendUvarint(nil, uint64(len(resp.KVs)))
	for _, e := range resp.KVs {
		b = kv.AppendKeyValue(b, e)
	}
	b = appendBool(b, resp.More)
	return appendString(b, string(resp.RegionEnd))
}

func decScanResp(b []byte) (kvstore.ScanResponse, error) {
	d := newDec(b)
	n := d.count()
	resp := kvstore.ScanResponse{KVs: make([]kv.KeyValue, 0, n)}
	for i := 0; i < n; i++ {
		resp.KVs = append(resp.KVs, d.keyValue())
	}
	resp.More = d.bool()
	resp.RegionEnd = kv.Key(d.str())
	return resp, d.err
}

func encApplyReq(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) []byte {
	b := appendUvarint(nil, uint64(piggy))
	b = appendBool(b, hasPiggy)
	return appendBytes(b, kv.EncodeWriteSet(ws))
}

func decApplyReq(b []byte) (kv.WriteSet, kv.Timestamp, bool, error) {
	d := newDec(b)
	piggy := kv.Timestamp(d.uvarint())
	hasPiggy := d.bool()
	wsb := d.bytes()
	if d.err != nil {
		return kv.WriteSet{}, 0, false, d.err
	}
	ws, err := kv.DecodeWriteSet(wsb)
	return ws, piggy, hasPiggy, err
}

func encOpenRegionReq(info kvstore.RegionInfo, files []string, hasFiles bool, edits []kvstore.WALEntry, recovering bool) []byte {
	b := appendRegionInfo(nil, info)
	b = appendBool(b, hasFiles)
	b = appendStrings(b, files)
	b = appendUvarint(b, uint64(len(edits)))
	for _, e := range edits {
		b = appendBytes(b, kvstore.EncodeWALEntry(e))
	}
	return appendBool(b, recovering)
}

func decOpenRegionReq(b []byte) (info kvstore.RegionInfo, files []string, hasFiles bool, edits []kvstore.WALEntry, recovering bool, err error) {
	d := newDec(b)
	info = d.regionInfo()
	hasFiles = d.bool()
	files = d.strings()
	n := d.count()
	edits = make([]kvstore.WALEntry, 0, n)
	for i := 0; i < n; i++ {
		eb := d.bytes()
		if d.err != nil {
			break
		}
		e, derr := kvstore.DecodeWALEntry(eb)
		if derr != nil {
			d.err = derr
			break
		}
		edits = append(edits, e)
	}
	recovering = d.bool()
	return info, files, hasFiles, edits, recovering, d.err
}

// --- replication surface ---

func encSetReplicationReq(regionID string, epoch uint64, targets []kvstore.ReplicaTarget, ttl time.Duration) []byte {
	b := appendString(nil, regionID)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, uint64(ttl))
	b = appendUvarint(b, uint64(len(targets)))
	for _, t := range targets {
		b = appendString(b, t.ServerID)
		b = appendString(b, t.Addr)
	}
	return b
}

func decSetReplicationReq(b []byte) (regionID string, epoch uint64, targets []kvstore.ReplicaTarget, ttl time.Duration, err error) {
	d := newDec(b)
	regionID = d.str()
	epoch = d.uvarint()
	ttl = time.Duration(d.uvarint())
	n := d.count()
	targets = make([]kvstore.ReplicaTarget, 0, n)
	for i := 0; i < n; i++ {
		targets = append(targets, kvstore.ReplicaTarget{ServerID: d.str(), Addr: d.str()})
	}
	return regionID, epoch, targets, ttl, d.err
}

func appendReplEntries(b []byte, entries []kvstore.ReplEntry) []byte {
	b = appendUvarint(b, uint64(len(entries)))
	for _, en := range entries {
		b = appendUvarint(b, en.Seq)
		b = appendUvarint(b, uint64(len(en.KVs)))
		for _, x := range en.KVs {
			b = kv.AppendKeyValue(b, x)
		}
	}
	return b
}

func (d *dec) replEntries() []kvstore.ReplEntry {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	entries := make([]kvstore.ReplEntry, 0, n)
	for i := 0; i < n; i++ {
		en := kvstore.ReplEntry{Seq: d.uvarint()}
		m := d.count()
		for j := 0; j < m; j++ {
			en.KVs = append(en.KVs, d.keyValue())
		}
		if d.err != nil {
			return nil
		}
		entries = append(entries, en)
	}
	return entries
}

func encAppendEntriesReq(regionID string, epoch uint64, entries []kvstore.ReplEntry, tipSeq uint64, safeTS kv.Timestamp) []byte {
	b := appendString(nil, regionID)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, tipSeq)
	b = appendUvarint(b, uint64(safeTS))
	return appendReplEntries(b, entries)
}

func decAppendEntriesReq(b []byte) (regionID string, epoch uint64, entries []kvstore.ReplEntry, tipSeq uint64, safeTS kv.Timestamp, err error) {
	d := newDec(b)
	regionID = d.str()
	epoch = d.uvarint()
	tipSeq = d.uvarint()
	safeTS = kv.Timestamp(d.uvarint())
	entries = d.replEntries()
	return regionID, epoch, entries, tipSeq, safeTS, d.err
}

// encAppendEntriesResp carries the follower's position alongside the error
// classification inside a KindResponse frame: a gap or stale-epoch rejection
// still reports the follower's last applied sequence (the shipper rewinds to
// it), which a bare error frame could not carry.
func encAppendEntriesResp(lastSeq uint64, code ErrorCode, msg string) []byte {
	b := appendUvarint(nil, lastSeq)
	b = appendUvarint(b, uint64(code))
	return appendString(b, msg)
}

func decAppendEntriesResp(b []byte) (uint64, ErrorCode, string, error) {
	d := newDec(b)
	lastSeq := d.uvarint()
	code := ErrorCode(d.uvarint())
	msg := d.str()
	return lastSeq, code, msg, d.err
}

func encPromoteReq(regionID string, epoch uint64, ttl time.Duration, staged bool) []byte {
	b := appendString(nil, regionID)
	b = appendUvarint(b, epoch)
	b = appendUvarint(b, uint64(ttl))
	return appendBool(b, staged)
}

func decPromoteReq(b []byte) (regionID string, epoch uint64, ttl time.Duration, staged bool, err error) {
	d := newDec(b)
	regionID = d.str()
	epoch = d.uvarint()
	ttl = time.Duration(d.uvarint())
	staged = d.bool()
	return regionID, epoch, ttl, staged, d.err
}

func encReplicaPos(pos kvstore.ReplicaPosition) []byte {
	b := appendUvarint(nil, pos.Epoch)
	b = appendUvarint(b, pos.LastSeq)
	b = appendUvarint(b, pos.Checkpoint)
	return appendUvarint(b, uint64(pos.FrontierTS))
}

func decReplicaPos(b []byte) (kvstore.ReplicaPosition, error) {
	d := newDec(b)
	pos := kvstore.ReplicaPosition{
		Epoch:      d.uvarint(),
		LastSeq:    d.uvarint(),
		Checkpoint: d.uvarint(),
		FrontierTS: kv.Timestamp(d.uvarint()),
	}
	return pos, d.err
}

func encOpenFollowerReq(info kvstore.RegionInfo, epoch uint64) []byte {
	b := appendRegionInfo(nil, info)
	return appendUvarint(b, epoch)
}

func decOpenFollowerReq(b []byte) (kvstore.RegionInfo, uint64, error) {
	d := newDec(b)
	info := d.regionInfo()
	epoch := d.uvarint()
	return info, epoch, d.err
}

func encCheckpointReq(regionID string, epoch, seq uint64) []byte {
	b := appendString(nil, regionID)
	b = appendUvarint(b, epoch)
	return appendUvarint(b, seq)
}

func decCheckpointReq(b []byte) (regionID string, epoch, seq uint64, err error) {
	d := newDec(b)
	regionID = d.str()
	epoch = d.uvarint()
	seq = d.uvarint()
	return regionID, epoch, seq, d.err
}

func encLeaseReq(grants map[string]kvstore.LeaseGrant) []byte {
	b := appendUvarint(nil, uint64(len(grants)))
	for regionID, g := range grants {
		b = appendString(b, regionID)
		b = appendUvarint(b, g.Epoch)
		b = appendUvarint(b, uint64(g.TTL))
	}
	return b
}

func decLeaseReq(b []byte) (map[string]kvstore.LeaseGrant, error) {
	d := newDec(b)
	n := d.count()
	grants := make(map[string]kvstore.LeaseGrant, n)
	for i := 0; i < n; i++ {
		regionID := d.str()
		g := kvstore.LeaseGrant{Epoch: d.uvarint(), TTL: time.Duration(d.uvarint())}
		if d.err != nil {
			break
		}
		grants[regionID] = g
	}
	return grants, d.err
}

// defaultSnapshotWindow is the credit window a snapshot puller grants: how
// many entry chunks the server may push ahead of consumption. Chunks are
// bounded by snapshotChunkEntries, so the window also bounds buffered bytes.
const defaultSnapshotWindow = 32

// snapshotChunkEntries caps one KindStream frame of a catch-up transfer.
const snapshotChunkEntries = 64

func encSnapshotReq(regionID string, fromSeq uint64, window int) []byte {
	b := appendString(nil, regionID)
	b = appendUvarint(b, fromSeq)
	return appendUvarint(b, uint64(window))
}

func decSnapshotReq(b []byte) (regionID string, fromSeq uint64, window int, err error) {
	d := newDec(b)
	regionID = d.str()
	fromSeq = d.uvarint()
	window = int(d.uvarint())
	return regionID, fromSeq, window, d.err
}

// The snapshot stream's first KindStream frame is the region's position
// (encReplicaPos); each following frame is one entry chunk (appendReplEntries
// body). The terminal KindResponse is empty — the position came first so the
// puller knows the expected tip before entries flow.
func encSnapshotChunk(entries []kvstore.ReplEntry) []byte {
	return appendReplEntries(nil, entries)
}

func decSnapshotChunk(b []byte) ([]kvstore.ReplEntry, error) {
	d := newDec(b)
	entries := d.replEntries()
	return entries, d.err
}

// --- transaction gateway surface ---

func encBeginReq(clientID string, readOnly bool, snapTS kv.Timestamp, mode uint64) []byte {
	b := appendString(nil, clientID)
	b = appendBool(b, readOnly)
	b = appendUvarint(b, uint64(snapTS))
	return appendUvarint(b, mode)
}

func decBeginReq(b []byte) (clientID string, readOnly bool, snapTS kv.Timestamp, mode uint64, err error) {
	d := newDec(b)
	clientID = d.str()
	readOnly = d.bool()
	snapTS = kv.Timestamp(d.uvarint())
	mode = d.uvarint()
	return clientID, readOnly, snapTS, mode, d.err
}

func encBeginResp(handle uint64, startTS kv.Timestamp) []byte {
	b := appendUvarint(nil, handle)
	return appendUvarint(b, uint64(startTS))
}

func decBeginResp(b []byte) (uint64, kv.Timestamp, error) {
	d := newDec(b)
	handle := d.uvarint()
	startTS := kv.Timestamp(d.uvarint())
	return handle, startTS, d.err
}

func encCommitReq(handle uint64, updates []kv.Update, wait bool) []byte {
	b := appendUvarint(nil, handle)
	b = appendBool(b, wait)
	return appendBytes(b, kv.EncodeWriteSet(kv.WriteSet{Updates: updates}))
}

func decCommitReq(b []byte) (handle uint64, updates []kv.Update, wait bool, err error) {
	d := newDec(b)
	handle = d.uvarint()
	wait = d.bool()
	wsb := d.bytes()
	if d.err != nil {
		return 0, nil, false, d.err
	}
	ws, err := kv.DecodeWriteSet(wsb)
	return handle, ws.Updates, wait, err
}

// encCommitResp carries the commit outcome inside a KindResponse frame:
// commits can partially succeed (indeterminate, committed-but-flush-failed),
// so the timestamp and the error classification travel together rather
// than as a bare error frame.
func encCommitResp(cts kv.Timestamp, code ErrorCode, msg string) []byte {
	b := appendUvarint(nil, uint64(cts))
	b = appendUvarint(b, uint64(code))
	return appendString(b, msg)
}

func decCommitResp(b []byte) (kv.Timestamp, ErrorCode, string, error) {
	d := newDec(b)
	cts := kv.Timestamp(d.uvarint())
	code := ErrorCode(d.uvarint())
	msg := d.str()
	return cts, code, msg, d.err
}

// encHandleMsg / decHandleMsg: the shared single-uvarint body (TAbort,
// FSync/FClose/FAbandon writer IDs, FCreate/FSize responses).
func encHandleMsg(v uint64) []byte { return appendUvarint(nil, v) }

func decHandleMsg(b []byte) (uint64, error) {
	d := newDec(b)
	v := d.uvarint()
	return v, d.err
}

// --- DFS surface ---

func encFAppendReq(id uint64, p []byte) []byte {
	b := appendUvarint(nil, id)
	return appendBytes(b, p)
}

func decFAppendReq(b []byte) (uint64, []byte, error) {
	d := newDec(b)
	id := d.uvarint()
	p := d.bytes()
	return id, p, d.err
}

func encFRenameReq(oldPath, newPath string) []byte {
	b := appendString(nil, oldPath)
	return appendString(b, newPath)
}

func decFRenameReq(b []byte) (string, string, error) {
	d := newDec(b)
	o := d.str()
	n := d.str()
	return o, n, d.err
}

func encFReadRangeReq(path string, off int64, n int) []byte {
	b := appendString(nil, path)
	b = appendUvarint(b, uint64(off))
	return appendUvarint(b, uint64(n))
}

func decFReadRangeReq(b []byte) (string, int64, int, error) {
	d := newDec(b)
	path := d.str()
	off := int64(d.uvarint())
	n := int(d.uvarint())
	return path, off, n, d.err
}

func encBytesMsg(p []byte) []byte { return appendBytes(nil, p) }

func decBytesMsg(b []byte) ([]byte, error) {
	d := newDec(b)
	p := d.bytes()
	return p, d.err
}

func encBoolMsg(v bool) []byte { return appendBool(nil, v) }

func decBoolMsg(b []byte) (bool, error) {
	d := newDec(b)
	v := d.bool()
	return v, d.err
}

func encStringsMsg(ss []string) []byte { return appendStrings(nil, ss) }

func decStringsMsg(b []byte) ([]string, error) {
	d := newDec(b)
	ss := d.strings()
	return ss, d.err
}

// --- watch surface ---

// defaultWatchWindow is the credit window a remote watcher grants the
// server: how many batches may be pushed ahead of consumption. The client
// replenishes at half-window, so steady-state streaming never stalls.
const defaultWatchWindow = 64

func encWatchReq(table string, rng kv.KeyRange, from kv.Timestamp, window int, owner string) []byte {
	b := appendString(nil, table)
	b = appendString(b, string(rng.Start))
	b = appendString(b, string(rng.End))
	b = appendUvarint(b, uint64(from))
	b = appendUvarint(b, uint64(window))
	return appendString(b, owner)
}

func decWatchReq(b []byte) (table string, rng kv.KeyRange, from kv.Timestamp, window int, owner string, err error) {
	d := newDec(b)
	table = d.str()
	rng = kv.KeyRange{Start: kv.Key(d.str()), End: kv.Key(d.str())}
	from = kv.Timestamp(d.uvarint())
	window = int(d.uvarint())
	owner = d.str()
	return table, rng, from, window, owner, d.err
}

// encWatchBatch encodes one stream element: the batch position, its commit
// timestamp (0 for progress-only batches), and the events. The table is not
// repeated per event — it is fixed by the watch request.
func encWatchBatch(wb watch.ChangeBatch) []byte {
	b := appendUvarint(nil, uint64(wb.Pos))
	b = appendUvarint(b, uint64(wb.CommitTS))
	b = appendUvarint(b, uint64(len(wb.Events)))
	for _, e := range wb.Events {
		b = appendString(b, string(e.Key))
		b = appendString(b, e.Column)
		b = appendBytes(b, e.Value)
		b = appendBool(b, e.Delete)
	}
	return b
}

func decWatchBatch(body []byte, table string) (watch.ChangeBatch, error) {
	d := newDec(body)
	wb := watch.ChangeBatch{
		Pos:      kv.Timestamp(d.uvarint()),
		CommitTS: kv.Timestamp(d.uvarint()),
	}
	n := d.count()
	for i := 0; i < n; i++ {
		wb.Events = append(wb.Events, watch.ChangeEvent{
			Table:    table,
			Key:      kv.Key(d.str()),
			Column:   d.str(),
			Value:    d.bytes(),
			Delete:   d.bool(),
			CommitTS: wb.CommitTS,
		})
	}
	return wb, d.err
}

func encWatchCreditReq(streamID uint64, n int) []byte {
	b := appendUvarint(nil, streamID)
	return appendUvarint(b, uint64(n))
}

func decWatchCreditReq(b []byte) (uint64, int, error) {
	d := newDec(b)
	id := d.uvarint()
	n := int(d.uvarint())
	return id, n, d.err
}

// methodName names a method code for metrics and error text.
func methodName(m byte) string {
	switch m {
	case MLocateAll:
		return "m.locate_all"
	case MCreateTable:
		return "m.create_table"
	case MSplitRegion:
		return "m.split_region"
	case MTableRegions:
		return "m.table_regions"
	case MRegister:
		return "m.register"
	case MHeartbeat:
		return "m.heartbeat"
	case TBegin:
		return "t.begin"
	case TCommit:
		return "t.commit"
	case TAbort:
		return "t.abort"
	case RGet:
		return "r.get"
	case RGetBatch:
		return "r.get_batch"
	case RScanBatch:
		return "r.scan_batch"
	case RApply:
		return "r.apply"
	case ROpenRegion:
		return "r.open_region"
	case RMarkOnline:
		return "r.mark_online"
	case RCloseRegion:
		return "r.close_region"
	case RCloseFlush:
		return "r.close_flush"
	case RSyncWAL:
		return "r.sync_wal"
	case RSetReplication:
		return "r.set_replication"
	case RAppendEntries:
		return "r.append_entries"
	case RPromote:
		return "r.promote"
	case RReplicaPos:
		return "r.replica_pos"
	case ROpenFollower:
		return "r.open_follower"
	case RCheckpoint:
		return "r.checkpoint"
	case RSnapshot:
		return "r.snapshot"
	case RLease:
		return "r.lease"
	case RSnapCredit:
		return "r.snap_credit"
	case FCreate:
		return "f.create"
	case FAppend:
		return "f.append"
	case FSync:
		return "f.sync"
	case FClose:
		return "f.close"
	case FAbandon:
		return "f.abandon"
	case FDelete:
		return "f.delete"
	case FRename:
		return "f.rename"
	case FExists:
		return "f.exists"
	case FList:
		return "f.list"
	case FSize:
		return "f.size"
	case FReadAll:
		return "f.read_all"
	case FReadRange:
		return "f.read_range"
	case WWatch:
		return "w.watch"
	case WCredit:
		return "w.credit"
	case WCancel:
		return "w.cancel"
	default:
		return fmt.Sprintf("0x%02x", m)
	}
}
