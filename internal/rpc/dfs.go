package rpc

import (
	"context"
	"fmt"
	"sync"

	"txkv/internal/dfs"
)

// The DFS surface. RegisterDFSService exposes a dfs.FileSystem (in
// practice the master process's *dfs.FS); RemoteFS is the client half, a
// dfs.FileSystem whose every operation executes in the master's process.
// This is what gives region-server processes a shared filesystem
// namespace — the deployment shape HBase gets from HDFS: a WAL written by
// one process is readable by the master for log splitting, and store files
// flushed by one server are openable by whichever server the region is
// reassigned to.
//
// Open writers are stateful: the service keeps them per session, keyed by
// a handle ID, and abandons any still open when the connection dies — a
// crashed region-server process must not leak half-written files (their
// unsynced tails are discarded, exactly the hflush/hsync contract).

// dfsSessionKey stores the per-session writer table.
const dfsSessionKey = "dfs.writers"

// writerTable is one session's open writer handles.
type writerTable struct {
	mu      sync.Mutex
	next    uint64
	writers map[uint64]dfs.FileWriter
}

func (t *writerTable) add(w dfs.FileWriter) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.next++
	if t.writers == nil {
		t.writers = make(map[uint64]dfs.FileWriter)
	}
	t.writers[t.next] = w
	return t.next
}

func (t *writerTable) get(id uint64) (dfs.FileWriter, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.writers[id]
	if !ok {
		return nil, fmt.Errorf("%w: unknown writer handle %d", dfs.ErrClosed, id)
	}
	return w, nil
}

func (t *writerTable) remove(id uint64) {
	t.mu.Lock()
	delete(t.writers, id)
	t.mu.Unlock()
}

// abandonAll abandons every still-open writer (connection death).
func (t *writerTable) abandonAll() {
	t.mu.Lock()
	writers := t.writers
	t.writers = nil
	t.mu.Unlock()
	for _, w := range writers {
		w.Abandon()
	}
}

// sessionWriters returns (creating on first use) the session's writer
// table, registering the abandon-on-close cleanup.
func sessionWriters(sess *Session) *writerTable {
	if t, ok := sess.Value(dfsSessionKey).(*writerTable); ok {
		return t
	}
	t := &writerTable{}
	sess.SetValue(dfsSessionKey, t)
	sess.OnClose(t.abandonAll)
	return t
}

// RegisterDFSService wires a filesystem onto s.
func RegisterDFSService(s *Server, fs dfs.FileSystem) {
	s.Handle(FCreate, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		path, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		w, err := fs.CreateFile(path)
		if err != nil {
			return nil, err
		}
		return encHandleMsg(sessionWriters(sess).add(w)), nil
	})
	s.Handle(FAppend, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, p, err := decFAppendReq(body)
		if err != nil {
			return nil, err
		}
		w, err := sessionWriters(sess).get(id)
		if err != nil {
			return nil, err
		}
		return nil, w.Append(p)
	})
	s.Handle(FSync, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, err := decHandleMsg(body)
		if err != nil {
			return nil, err
		}
		w, err := sessionWriters(sess).get(id)
		if err != nil {
			return nil, err
		}
		return nil, w.Sync()
	})
	s.Handle(FClose, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, err := decHandleMsg(body)
		if err != nil {
			return nil, err
		}
		t := sessionWriters(sess)
		w, err := t.get(id)
		if err != nil {
			return nil, err
		}
		t.remove(id)
		return nil, w.Close()
	})
	s.Handle(FAbandon, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, err := decHandleMsg(body)
		if err != nil {
			return nil, err
		}
		t := sessionWriters(sess)
		w, err := t.get(id)
		if err != nil {
			return nil, err
		}
		t.remove(id)
		w.Abandon()
		return nil, nil
	})
	s.Handle(FDelete, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		path, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		return nil, fs.Delete(path)
	})
	s.Handle(FRename, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		oldPath, newPath, err := decFRenameReq(body)
		if err != nil {
			return nil, err
		}
		return nil, fs.Rename(oldPath, newPath)
	})
	s.Handle(FExists, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		path, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		return encBoolMsg(fs.Exists(path)), nil
	})
	s.Handle(FList, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		prefix, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		return encStringsMsg(fs.List(prefix)), nil
	})
	s.Handle(FSize, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		path, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		size, err := fs.Size(path)
		if err != nil {
			return nil, err
		}
		return encHandleMsg(uint64(size)), nil
	})
	s.Handle(FReadAll, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		path, err := decStringMsg(body)
		if err != nil {
			return nil, err
		}
		data, err := fs.ReadAll(path)
		if err != nil {
			return nil, err
		}
		return encBytesMsg(data), nil
	})
	s.Handle(FReadRange, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		path, off, n, err := decFReadRangeReq(body)
		if err != nil {
			return nil, err
		}
		data, err := fs.ReadRange(path, off, n)
		if err != nil {
			return nil, err
		}
		return encBytesMsg(data), nil
	})
}

// RemoteFS is a dfs.FileSystem executing in the master process. All calls
// use the background context: filesystem operations back WAL appends and
// store-file flushes, whose durability must not be subject to a caller's
// deadline.
type RemoteFS struct {
	pool *Pool
	addr string
}

// NewRemoteFS returns a filesystem client against the DFS service at addr.
func NewRemoteFS(pool *Pool, addr string) *RemoteFS {
	return &RemoteFS{pool: pool, addr: addr}
}

func (fs *RemoteFS) CreateFile(path string) (dfs.FileWriter, error) {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FCreate, encStringMsg(path))
	if err != nil {
		return nil, err
	}
	id, err := decHandleMsg(resp)
	if err != nil {
		return nil, err
	}
	return &remoteWriter{fs: fs, id: id}, nil
}

func (fs *RemoteFS) Delete(path string) error {
	_, err := fs.pool.Call(context.Background(), fs.addr, FDelete, encStringMsg(path))
	return err
}

func (fs *RemoteFS) Rename(oldPath, newPath string) error {
	_, err := fs.pool.Call(context.Background(), fs.addr, FRename, encFRenameReq(oldPath, newPath))
	return err
}

func (fs *RemoteFS) Exists(path string) bool {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FExists, encStringMsg(path))
	if err != nil {
		return false
	}
	ok, err := decBoolMsg(resp)
	return err == nil && ok
}

func (fs *RemoteFS) List(prefix string) []string {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FList, encStringMsg(prefix))
	if err != nil {
		return nil
	}
	ss, err := decStringsMsg(resp)
	if err != nil {
		return nil
	}
	return ss
}

func (fs *RemoteFS) Size(path string) (int64, error) {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FSize, encStringMsg(path))
	if err != nil {
		return 0, err
	}
	v, err := decHandleMsg(resp)
	return int64(v), err
}

func (fs *RemoteFS) ReadAll(path string) ([]byte, error) {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FReadAll, encStringMsg(path))
	if err != nil {
		return nil, err
	}
	return decBytesMsg(resp)
}

func (fs *RemoteFS) ReadRange(path string, off int64, n int) ([]byte, error) {
	resp, err := fs.pool.Call(context.Background(), fs.addr, FReadRange, encFReadRangeReq(path, off, n))
	if err != nil {
		return nil, err
	}
	return decBytesMsg(resp)
}

// remoteWriter is the client handle to a server-side writer. Buffered is
// tracked locally (bytes appended since the last successful sync), sparing
// a round trip — it mirrors the server-side writer's value exactly as long
// as appends succeed, and overstates it otherwise, which only makes sync
// policies sync sooner.
type remoteWriter struct {
	fs *RemoteFS
	id uint64

	mu       sync.Mutex
	buffered int
}

func (w *remoteWriter) Append(b []byte) error {
	_, err := w.fs.pool.Call(context.Background(), w.fs.addr, FAppend, encFAppendReq(w.id, b))
	if err == nil {
		w.mu.Lock()
		w.buffered += len(b)
		w.mu.Unlock()
	}
	return err
}

func (w *remoteWriter) Buffered() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buffered
}

func (w *remoteWriter) Sync() error {
	_, err := w.fs.pool.Call(context.Background(), w.fs.addr, FSync, encHandleMsg(w.id))
	if err == nil {
		w.mu.Lock()
		w.buffered = 0
		w.mu.Unlock()
	}
	return err
}

func (w *remoteWriter) Close() error {
	_, err := w.fs.pool.Call(context.Background(), w.fs.addr, FClose, encHandleMsg(w.id))
	return err
}

func (w *remoteWriter) Abandon() {
	_, _ = w.fs.pool.Call(context.Background(), w.fs.addr, FAbandon, encHandleMsg(w.id))
}
