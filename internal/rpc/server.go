package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/obs"
)

// Server accepts connections and dispatches request frames to registered
// method handlers. Each connection gets a Session (per-connection state the
// services hang stateful resources on — DFS writer handles, open gateway
// transactions) and each request runs in its own goroutine, so one slow
// handler never blocks the connection's other pipelined requests. Responses
// are written under a per-connection mutex, in completion order.

// Handler serves one method: decode the body, do the work, encode the
// response body. A returned error crosses the wire as an error frame with
// the code CodeFor picks.
type Handler func(ctx context.Context, sess *Session, body []byte) ([]byte, error)

// StreamHandler serves one streaming method: decode the request, push any
// number of elements through st.Send, and return. A nil return ends the
// stream with a clean terminal response; an error crosses as the terminal
// error frame. The handler's context is cancelled when the connection
// closes, so long-lived streams never outlive their consumer.
type StreamHandler func(ctx context.Context, sess *Session, body []byte, st *ServerStream) error

// ServerStream is the send side of one streaming exchange. Send is safe for
// the single handler goroutine; frames interleave with the connection's
// other responses under the shared write mutex.
type ServerStream struct {
	nc     net.Conn
	wmu    *sync.Mutex
	method byte
	id     uint64
}

// ID returns the stream's request ID — the handle the client's credit and
// cancel messages carry.
func (st *ServerStream) ID() uint64 { return st.id }

// Send pushes one stream element. A write failure closes the connection and
// is returned so the handler stops.
func (st *ServerStream) Send(body []byte) error {
	buf, err := AppendFrame(make([]byte, 0, 4+frameHeaderBytes+len(body)),
		Frame{Ver: Version, Kind: KindStream, Method: st.method, ID: st.id, Body: body})
	if err != nil {
		return err
	}
	st.wmu.Lock()
	_, werr := st.nc.Write(buf)
	st.wmu.Unlock()
	if werr != nil {
		st.nc.Close()
	}
	return werr
}

// Session is one connection's server-side state. Services store their
// per-connection resources under private keys and register cleanups that
// run when the connection closes — an abandoned connection must not leak
// DFS writers or open transactions.
type Session struct {
	id uint64

	mu       sync.Mutex
	vals     map[string]any
	closers  []func()
	closed   bool
	remoteIP string
}

// ID returns the session's server-unique identifier.
func (s *Session) ID() uint64 { return s.id }

// Value returns the session state stored under key, or nil.
func (s *Session) Value(key string) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[key]
}

// SetValue stores per-session state under key.
func (s *Session) SetValue(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vals == nil {
		s.vals = make(map[string]any)
	}
	s.vals[key] = v
}

// OnClose registers a cleanup to run when the connection closes. Running
// immediately if the session is already closed.
func (s *Session) OnClose(fn func()) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		fn()
		return
	}
	s.closers = append(s.closers, fn)
	s.mu.Unlock()
}

// close runs the session's cleanups (in registration order).
func (s *Session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	closers := s.closers
	s.closers = nil
	s.mu.Unlock()
	for _, fn := range closers {
		fn()
	}
}

// Server is an rpc listener: register handlers, then Serve a listener.
type Server struct {
	reg            *obs.Registry // optional; nil disables metrics
	maxInflight    int           // per-connection unary request cap; 0 = unlimited
	handlers       [256]Handler
	streamHandlers [256]StreamHandler

	sessSeq atomic.Uint64

	mu     sync.Mutex
	lns    []net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Registry, when non-nil, receives per-RPC metrics
	// (rpc.server.requests, rpc.server.errors, rpc.server.latency,
	// rpc.server.conns, rpc.server.inflight_stalls).
	Registry *obs.Registry

	// MaxInflightPerConn caps concurrently-executing unary requests per
	// connection. At the cap the connection's read loop stops reading, so a
	// client flooding one connection feels TCP backpressure instead of
	// spawning an unbounded handler goroutine pile. Streaming requests and
	// flow-control messages (credits, cancels) are exempt — they are how a
	// client drains existing work. 0 means unlimited.
	MaxInflightPerConn int
}

// NewServer creates a server with default config. reg, when non-nil,
// receives per-RPC metrics.
func NewServer(reg *obs.Registry) *Server {
	return NewServerWithConfig(ServerConfig{Registry: reg})
}

// NewServerWithConfig creates a server.
func NewServerWithConfig(cfg ServerConfig) *Server {
	return &Server{reg: cfg.Registry, maxInflight: cfg.MaxInflightPerConn, conns: make(map[net.Conn]struct{})}
}

// flowControlMethod reports whether a method is stream flow control —
// exempt from the inflight cap so a saturated connection can still drain
// its streams.
func flowControlMethod(m byte) bool {
	return m == WCredit || m == WCancel || m == RSnapCredit
}

// Handle registers the handler for one method code. Registration must
// finish before Serve; handlers are not synchronized.
func (s *Server) Handle(method byte, h Handler) { s.handlers[method] = h }

// HandleStream registers the streaming handler for one method code. A
// method is either unary or streaming, never both.
func (s *Server) HandleStream(method byte, h StreamHandler) { s.streamHandlers[method] = h }

// Serve accepts connections on ln until the server closes. It returns the
// accept error that ended the loop (nil after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return fmt.Errorf("rpc: server closed")
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// Close stops accepting, closes every connection (running session
// cleanups), and waits for in-flight handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	lns := s.lns
	conns := make([]net.Conn, 0, len(s.conns))
	for nc := range s.conns {
		conns = append(conns, nc)
	}
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	for _, nc := range conns {
		nc.Close()
	}
	s.wg.Wait()
}

// serveConn runs one connection: preamble exchange, then the request loop.
func (s *Server) serveConn(nc net.Conn) {
	defer s.wg.Done()
	sess := &Session{id: s.sessSeq.Add(1), remoteIP: nc.RemoteAddr().String()}
	if s.reg != nil {
		s.reg.Gauge("rpc.server.conns").Add(1)
	}
	defer func() {
		sess.close()
		nc.Close()
		s.mu.Lock()
		delete(s.conns, nc)
		s.mu.Unlock()
		if s.reg != nil {
			s.reg.Gauge("rpc.server.conns").Add(-1)
		}
	}()

	_ = nc.SetDeadline(time.Now().Add(dialTimeout))
	if _, err := ReadPreamble(nc); err != nil {
		_ = WritePreamble(nc) // tell the peer what we speak, then hang up
		return
	}
	if err := WritePreamble(nc); err != nil {
		return
	}
	_ = nc.SetDeadline(time.Time{})

	br := bufio.NewReaderSize(nc, 64<<10)
	var wmu sync.Mutex
	// Connection-scoped context: cancelling it on teardown stops the
	// connection's long-lived stream handlers.
	connCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Per-connection inflight cap: a token per executing unary handler.
	// Acquiring in the read loop (not the handler goroutine) is the point —
	// at the cap the loop stops reading and the kernel's receive window
	// fills, pushing backpressure to the client rather than queueing frames.
	var sem chan struct{}
	if s.maxInflight > 0 {
		sem = make(chan struct{}, s.maxInflight)
	}
	for {
		f, err := ReadFrame(br)
		if err != nil {
			return // connection-level failure or malformed frame: hang up
		}
		if f.Kind != KindRequest {
			return
		}
		acquired := false
		if sem != nil && s.streamHandlers[f.Method] == nil && !flowControlMethod(f.Method) {
			select {
			case sem <- struct{}{}:
			default:
				if s.reg != nil {
					s.reg.Counter("rpc.server.inflight_stalls").Add(1)
				}
				sem <- struct{}{}
			}
			acquired = true
		}
		s.wg.Add(1)
		go func(f Frame, acquired bool) {
			defer s.wg.Done()
			if acquired {
				defer func() { <-sem }()
			}
			if s.streamHandlers[f.Method] != nil {
				s.dispatchStream(connCtx, nc, &wmu, sess, f)
				return
			}
			s.dispatch(connCtx, nc, &wmu, sess, f)
		}(f, acquired)
	}
}

// dispatchStream runs one streaming request's handler, then writes its
// terminal frame.
func (s *Server) dispatchStream(connCtx context.Context, nc net.Conn, wmu *sync.Mutex, sess *Session, f Frame) {
	if s.reg != nil {
		s.reg.Counter("rpc.server.requests").Add(1)
		s.reg.Counter("rpc.server.req." + methodName(f.Method)).Add(1)
		s.reg.Gauge("rpc.server.streams").Add(1)
		defer s.reg.Gauge("rpc.server.streams").Add(-1)
	}

	var err error
	if len(f.Body) < 8 {
		err = fmt.Errorf("rpc: %s: missing deadline prefix", methodName(f.Method))
	} else {
		// Streaming requests ignore the (always-zero) deadline prefix:
		// their lifetime is the connection's, bounded by method-layer
		// cancellation.
		st := &ServerStream{nc: nc, wmu: wmu, method: f.Method, id: f.ID}
		err = s.streamHandlers[f.Method](connCtx, sess, f.Body[8:], st)
	}
	if err != nil && s.reg != nil {
		s.reg.Counter("rpc.server.errors").Add(1)
	}

	out := Frame{Ver: Version, ID: f.ID, Method: f.Method, Kind: KindResponse}
	if err != nil {
		out.Kind = KindError
		out.Body = EncodeError(err)
	}
	buf, _ := AppendFrame(make([]byte, 0, 4+frameHeaderBytes+len(out.Body)), out)
	wmu.Lock()
	_, werr := nc.Write(buf)
	wmu.Unlock()
	if werr != nil {
		nc.Close()
	}
}

// dispatch runs one request's handler and writes its response frame.
func (s *Server) dispatch(connCtx context.Context, nc net.Conn, wmu *sync.Mutex, sess *Session, f Frame) {
	var start time.Time
	if s.reg != nil {
		s.reg.Counter("rpc.server.requests").Add(1)
		s.reg.Counter("rpc.server.req." + methodName(f.Method)).Add(1)
		start = time.Now()
	}

	resp, err := s.handle(connCtx, sess, f)

	if s.reg != nil {
		s.reg.Histogram("rpc.server.latency").Record(time.Since(start))
		if err != nil {
			s.reg.Counter("rpc.server.errors").Add(1)
		}
	}

	out := Frame{Ver: Version, ID: f.ID, Method: f.Method}
	if err != nil {
		out.Kind = KindError
		out.Body = EncodeError(err)
	} else {
		out.Kind = KindResponse
		out.Body = resp
	}
	buf, aerr := AppendFrame(make([]byte, 0, 4+frameHeaderBytes+len(out.Body)), out)
	if aerr != nil {
		// Response exceeds the frame limit: degrade to an error frame.
		out.Kind, out.Body = KindError, EncodeError(aerr)
		buf, _ = AppendFrame(buf[:0], out)
	}
	wmu.Lock()
	_, werr := nc.Write(buf)
	wmu.Unlock()
	if werr != nil {
		nc.Close() // poisons the read loop; session cleanup follows
	}
}

// handle decodes the deadline prefix and runs the method handler.
func (s *Server) handle(connCtx context.Context, sess *Session, f Frame) ([]byte, error) {
	if len(f.Body) < 8 {
		return nil, fmt.Errorf("rpc: %s: missing deadline prefix", methodName(f.Method))
	}
	deadline := binary.BigEndian.Uint64(f.Body[:8])
	body := f.Body[8:]

	h := s.handlers[f.Method]
	if h == nil {
		return nil, &RemoteError{Code: CodeUnknownMethod, Msg: fmt.Sprintf("unknown method %s", methodName(f.Method))}
	}

	ctx := connCtx
	if deadline != 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, int64(deadline)))
		defer cancel()
	}
	return h(ctx, sess, body)
}
