package rpc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"txkv/internal/kv"
	"txkv/internal/watch"
)

// The watch surface: the protocol's first streaming methods. WWatch opens a
// change stream — the server answers with KindStream frames, one encoded
// ChangeBatch each, until the stream fails or is cancelled. Flow control is
// credit-based: the request carries an initial window (batches the server
// may push ahead of consumption) and WCredit replenishes it as the consumer
// drains, so a slow remote watcher exerts backpressure on its own stream
// without stalling the shared connection — and the server-side hub's
// overflow fallback and lag horizon still apply behind it. WCancel ends a
// stream cleanly from the client side.

// WatchOpener opens server-side watch streams: the cluster hub's Watch,
// without this package importing cluster.
type WatchOpener func(table string, rng kv.KeyRange, from kv.Timestamp, owner string) (*watch.Stream, error)

// serverWatch is one live stream's server-side flow-control state, shared
// between the WWatch handler goroutine and the WCredit/WCancel handlers.
type serverWatch struct {
	credits chan int
	cancel  context.CancelFunc
}

func watchSessKey(streamID uint64) string { return fmt.Sprintf("watch.%d", streamID) }

// RegisterWatchService wires the watch surface onto s.
func RegisterWatchService(s *Server, open WatchOpener) {
	s.HandleStream(WWatch, func(connCtx context.Context, sess *Session, body []byte, st *ServerStream) error {
		table, rng, from, window, owner, err := decWatchReq(body)
		if err != nil {
			return err
		}
		if window <= 0 {
			window = defaultWatchWindow
		}
		stream, err := open(table, rng, from, owner)
		if err != nil {
			return err
		}
		defer stream.Close()

		ctx, cancel := context.WithCancel(connCtx)
		defer cancel()
		w := &serverWatch{credits: make(chan int, 64), cancel: cancel}
		key := watchSessKey(st.ID())
		sess.SetValue(key, w)
		defer sess.SetValue(key, nil)

		avail := window
		for {
			// Exhausted credits: wait for the consumer to drain and
			// replenish. The hub keeps buffering (and, past its own
			// limits, falls back to catch-up or cancels) — the commit
			// path never feels this wait.
			for avail <= 0 {
				select {
				case n := <-w.credits:
					avail += n
				case <-ctx.Done():
					return ctx.Err()
				}
			}
			b, err := stream.NextBatch(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err() // cancelled (WCancel / connection close)
				}
				return err // ErrLagging / ErrHorizonPassed / ErrClosed cross as the terminal error
			}
			if err := st.Send(encWatchBatch(b)); err != nil {
				return err
			}
			avail--
			// Fold in any credits that arrived while streaming.
			for {
				select {
				case n := <-w.credits:
					avail += n
					continue
				default:
				}
				break
			}
		}
	})

	s.Handle(WCredit, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, n, err := decWatchCreditReq(body)
		if err != nil {
			return nil, err
		}
		w, _ := sess.Value(watchSessKey(id)).(*serverWatch)
		if w == nil {
			// The stream already terminated (lag cancel, horizon, close)
			// while this grant was in flight — a benign race, not an error.
			return nil, nil
		}
		select {
		case w.credits <- n:
		default:
			// Credit queue full: the client is granting faster than the
			// handler folds them in. Drop — credits are cumulative only in
			// effect, and the next grant after a send will land.
		}
		return nil, nil
	})

	s.Handle(WCancel, func(_ context.Context, sess *Session, body []byte) ([]byte, error) {
		id, err := decHandleMsg(body)
		if err != nil {
			return nil, err
		}
		if w, _ := sess.Value(watchSessKey(id)).(*serverWatch); w != nil {
			w.cancel()
		}
		return nil, nil // cancelling an already-finished stream is a no-op
	})
}

// WatchClient opens remote change streams against a serving master.
type WatchClient struct {
	pool *Pool
	addr string
}

// NewWatchClient returns a watch client for the master at addr, sharing the
// transport's pool (streams ride the same multiplexed connection as the
// unary traffic).
func NewWatchClient(pool *Pool, addr string) *WatchClient {
	return &WatchClient{pool: pool, addr: addr}
}

// RemoteWatch is a change stream received over the wire. NextBatch mirrors
// watch.Stream's; the cluster layer wraps both behind one client surface.
type RemoteWatch struct {
	conn   *Conn
	cs     *ClientStream
	table  string
	window int

	mu       sync.Mutex
	consumed int // batches received since the last credit grant
	closed   bool
}

// Watch opens a stream of changes to table rows in rng with CommitTS >
// from. owner labels the stream in the server's /debug/watchers.
func (w *WatchClient) Watch(table string, rng kv.KeyRange, from kv.Timestamp, owner string) (*RemoteWatch, error) {
	c, err := w.pool.conn(w.addr)
	if err != nil {
		return nil, err
	}
	cs, err := c.Stream(WWatch, encWatchReq(table, rng, from, defaultWatchWindow, owner))
	if err != nil {
		return nil, err
	}
	return &RemoteWatch{conn: c, cs: cs, table: table, window: defaultWatchWindow}, nil
}

// NextBatch returns the next batch from the stream, granting the server
// fresh credits as the window half-drains. Terminal remote errors unwrap to
// the watch sentinels (watch.ErrLagging, watch.ErrHorizonPassed, ...);
// transport failures wrap kvstore.ErrTransport.
func (r *RemoteWatch) NextBatch(ctx context.Context) (watch.ChangeBatch, error) {
	body, done, err := r.cs.Recv(ctx)
	if err != nil {
		return watch.ChangeBatch{}, err
	}
	if done {
		// Clean terminal without an error: the server ended the stream
		// (cancellation crossing paths with us). Surface as closed.
		return watch.ChangeBatch{}, watch.ErrClosed
	}
	b, err := decWatchBatch(body, r.table)
	if err != nil {
		return watch.ChangeBatch{}, err
	}

	r.mu.Lock()
	r.consumed++
	grant := 0
	if r.consumed >= r.window/2 {
		grant, r.consumed = r.consumed, 0
	}
	r.mu.Unlock()
	if grant > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, cerr := r.conn.Call(ctx, WCredit, encWatchCreditReq(r.cs.ID(), grant))
		cancel()
		if cerr != nil {
			return watch.ChangeBatch{}, cerr
		}
	}
	return b, nil
}

// Close cancels the stream server-side (best effort) and releases the
// client-side registration.
func (r *RemoteWatch) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_, _ = r.conn.Call(ctx, WCancel, encHandleMsg(r.cs.ID()))
	cancel()
	r.cs.Close()
}
