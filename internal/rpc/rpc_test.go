package rpc

// Client/server plumbing tests: pipelining, deadline propagation, error
// mapping, session cleanup, reconnect-after-failure. These exercise the
// transport machinery in isolation with synthetic handlers; the end-to-end
// multi-process cluster tests live in internal/cluster.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"txkv/internal/kvstore"
)

// startTestServer serves s on an ephemeral port and returns its address.
func startTestServer(t *testing.T, s *Server) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(s.Close)
	return ln.Addr().String()
}

func TestCallRoundTripAndPipelining(t *testing.T) {
	const echo byte = 0x70
	s := NewServer(nil)
	var inFlight, maxInFlight atomic.Int64
	s.Handle(echo, func(_ context.Context, _ *Session, body []byte) ([]byte, error) {
		n := inFlight.Add(1)
		for {
			cur := maxInFlight.Load()
			if n <= cur || maxInFlight.CompareAndSwap(cur, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // hold the slot so calls overlap
		inFlight.Add(-1)
		return append([]byte("echo:"), body...), nil
	})
	addr := startTestServer(t, s)

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("m-%d", i)
			resp, err := c.Call(context.Background(), echo, []byte(want))
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if string(resp) != "echo:"+want {
				t.Errorf("call %d: got %q", i, resp)
			}
		}(i)
	}
	wg.Wait()
	if maxInFlight.Load() < 2 {
		t.Errorf("no pipelining observed: max in-flight %d", maxInFlight.Load())
	}
}

func TestDeadlinePropagation(t *testing.T) {
	const slow byte = 0x71
	s := NewServer(nil)
	var sawDeadline atomic.Bool
	s.Handle(slow, func(ctx context.Context, _ *Session, _ []byte) ([]byte, error) {
		if _, ok := ctx.Deadline(); ok {
			sawDeadline.Store(true)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Second):
			return nil, nil
		}
	})
	addr := startTestServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Call(ctx, slow, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("deadline did not cut the wait: %v", d)
	}
	// Give the server's handler a beat to observe its propagated ctx.
	time.Sleep(100 * time.Millisecond)
	if !sawDeadline.Load() {
		t.Fatal("server handler saw no propagated deadline")
	}
}

func TestErrorMappingAcrossWire(t *testing.T) {
	const failing byte = 0x72
	s := NewServer(nil)
	s.Handle(failing, func(_ context.Context, _ *Session, _ []byte) ([]byte, error) {
		return nil, fmt.Errorf("region t.r1: %w", kvstore.ErrRegionNotServing)
	})
	addr := startTestServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), failing, nil)
	if !errors.Is(err, kvstore.ErrRegionNotServing) {
		t.Fatalf("got %v, want ErrRegionNotServing across the wire", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeRegionNotServing {
		t.Fatalf("got %v, want RemoteError with CodeRegionNotServing", err)
	}

	// Unregistered method.
	_, err = c.Call(context.Background(), 0x7F, nil)
	if !errors.As(err, &re) || re.Code != CodeUnknownMethod {
		t.Fatalf("unknown method: got %v", err)
	}
}

func TestSessionCleanupOnDisconnect(t *testing.T) {
	const open byte = 0x73
	s := NewServer(nil)
	cleaned := make(chan struct{})
	s.Handle(open, func(_ context.Context, sess *Session, _ []byte) ([]byte, error) {
		sess.OnClose(func() { close(cleaned) })
		return nil, nil
	})
	addr := startTestServer(t, s)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Call(context.Background(), open, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-cleaned:
	case <-time.After(5 * time.Second):
		t.Fatal("session cleanup did not run after disconnect")
	}
}

func TestPoolReconnectsAfterServerRestart(t *testing.T) {
	const ping byte = 0x74
	handler := func(_ context.Context, _ *Session, _ []byte) ([]byte, error) {
		return []byte("pong"), nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	s1 := NewServer(nil)
	s1.Handle(ping, handler)
	go func() { _ = s1.Serve(ln) }()

	p := NewPool(nil)
	defer p.Close()
	if _, err := p.Call(context.Background(), addr, ping, nil); err != nil {
		t.Fatalf("first call: %v", err)
	}

	// Kill the server: the pooled connection dies; calls fail with a
	// transport error.
	s1.Close()
	if _, err := p.Call(context.Background(), addr, ping, nil); !errors.Is(err, kvstore.ErrTransport) {
		t.Fatalf("dead server: got %v, want ErrTransport", err)
	}

	// Restart on the same address: the pool must redial transparently.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err) // port raced away; environment-dependent
	}
	s2 := NewServer(nil)
	s2.Handle(ping, handler)
	go func() { _ = s2.Serve(ln2) }()
	defer s2.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := p.Call(context.Background(), addr, ping, nil)
		if err == nil {
			if string(resp) != "pong" {
				t.Fatalf("got %q", resp)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never reconnected: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTransportErrorWrapsSentinel(t *testing.T) {
	// Dialing a dead address must produce the transport sentinel the
	// routing client keys its invalidate-then-re-resolve discipline on.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr); !errors.Is(err, kvstore.ErrTransport) {
		t.Fatalf("dial dead address: got %v, want ErrTransport", err)
	}
}
