package rpc

// Round-trips every message type documented in PROTOCOL.md through its
// encoder and decoder. This test is PROTOCOL.md's enforcement: a codec
// change that isn't reflected here (and in the document) fails CI, and a
// message type documented but not round-tripped here should be treated as
// a review error. Keep the method list in sync with wire.go's constants.

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/kvstore"
	"txkv/internal/txmgr"
	"txkv/internal/watch"
)

// testedMethods records which method codes the round-trip cases cover;
// TestProtocolCoversEveryMethod fails if any wire constant is missing.
var testedMethods = map[byte]bool{}

func covers(ms ...byte) {
	for _, m := range ms {
		testedMethods[m] = true
	}
}

func TestProtocolRoundTrips(t *testing.T) {
	sampleKVs := []kv.KeyValue{
		{Cell: kv.Cell{Row: "row-a", Column: "c1", TS: 7}, Value: []byte("v1")},
		{Cell: kv.Cell{Row: "row-b", Column: "c2", TS: 9}, Tombstone: true},
	}
	sampleInfo := kvstore.RegionInfo{ID: "t.r1", Table: "t", Range: kv.KeyRange{Start: "a", End: "m"}}
	sampleUpdates := []kv.Update{
		{Table: "t", Row: "r", Column: "c", Value: []byte("x")},
		{Table: "t", Row: "r2", Column: "c", Tombstone: true},
	}

	t.Run("string-bodied messages", func(t *testing.T) {
		covers(MLocateAll, MTableRegions, MHeartbeat, RMarkOnline, RCloseRegion, RCloseFlush,
			FCreate, FDelete, FExists, FList, FSize, FReadAll)
		for _, s := range []string{"", "accounts", "wal/rs-1.00000001.log"} {
			got, err := decStringMsg(encStringMsg(s))
			if err != nil || got != s {
				t.Fatalf("string %q: got %q, %v", s, got, err)
			}
		}
	})

	t.Run("LocateAll response", func(t *testing.T) {
		locs := []WireLocation{
			{Info: sampleInfo, Addr: "127.0.0.1:4001", FollowerAddrs: []string{"127.0.0.1:4002", "127.0.0.1:4003"}},
			{Info: kvstore.RegionInfo{ID: "t.r2", Table: "t", Range: kv.KeyRange{Start: "m"}}, Addr: ""},
		}
		got, err := decLocateAllResp(encLocateAllResp(locs))
		if err != nil || !reflect.DeepEqual(got, locs) {
			t.Fatalf("got %+v, %v", got, err)
		}
	})

	t.Run("CreateTable request", func(t *testing.T) {
		covers(MCreateTable)
		name, splits, err := decCreateTableReq(encCreateTableReq("t", []kv.Key{"g", "p"}))
		if err != nil || name != "t" || !reflect.DeepEqual(splits, []kv.Key{"g", "p"}) {
			t.Fatalf("got %q %v, %v", name, splits, err)
		}
	})

	t.Run("SplitRegion request", func(t *testing.T) {
		covers(MSplitRegion)
		id, key, err := decSplitRegionReq(encSplitRegionReq("t.r1", "k"))
		if err != nil || id != "t.r1" || key != "k" {
			t.Fatalf("got %q %q, %v", id, key, err)
		}
	})

	t.Run("TableRegions response", func(t *testing.T) {
		infos := []kvstore.RegionInfo{sampleInfo}
		got, err := decRegionInfosResp(encRegionInfosResp(infos))
		if err != nil || !reflect.DeepEqual(got, infos) {
			t.Fatalf("got %+v, %v", got, err)
		}
	})

	t.Run("Register request", func(t *testing.T) {
		covers(MRegister)
		id, addr, err := decRegisterReq(encRegisterReq("rs-1", "10.0.0.2:4001"))
		if err != nil || id != "rs-1" || addr != "10.0.0.2:4001" {
			t.Fatalf("got %q %q, %v", id, addr, err)
		}
	})

	t.Run("Get", func(t *testing.T) {
		covers(RGet)
		table, row, col, maxTS, err := decGetReq(encGetReq("t", "r", "c", 42))
		if err != nil || table != "t" || row != "r" || col != "c" || maxTS != 42 {
			t.Fatalf("req: got %q %q %q %d, %v", table, row, col, maxTS, err)
		}
		e, found, err := decGetResp(encGetResp(sampleKVs[0], true))
		if err != nil || !found || !reflect.DeepEqual(e, sampleKVs[0]) {
			t.Fatalf("resp found: got %+v %v, %v", e, found, err)
		}
		_, found, err = decGetResp(encGetResp(kv.KeyValue{}, false))
		if err != nil || found {
			t.Fatalf("resp missing: found=%v, %v", found, err)
		}
	})

	t.Run("GetBatch", func(t *testing.T) {
		covers(RGetBatch)
		keys := []kv.CellKey{{Row: "r1", Column: "c"}, {Row: "r2", Column: "d"}}
		table, gotKeys, maxTS, err := decGetBatchReq(encGetBatchReq("t", keys, 42))
		if err != nil || table != "t" || maxTS != 42 || !reflect.DeepEqual(gotKeys, keys) {
			t.Fatalf("req: got %q %v %d, %v", table, gotKeys, maxTS, err)
		}
		kvs := []kv.KeyValue{sampleKVs[0], {}}
		found := []bool{true, false}
		gotKVs, gotFound, err := decGetBatchResp(encGetBatchResp(kvs, found))
		if err != nil || !reflect.DeepEqual(gotFound, found) || !reflect.DeepEqual(gotKVs[0], kvs[0]) {
			t.Fatalf("resp: got %+v %v, %v", gotKVs, gotFound, err)
		}
	})

	t.Run("ScanBatch", func(t *testing.T) {
		covers(RScanBatch)
		req := kvstore.ScanRequest{
			Table: "t", Range: kv.KeyRange{Start: "a", End: "z"}, MaxTS: 99,
			Resume: kv.CellKey{Row: "m", Column: "c"}, HasResume: true,
			Columns: []string{"c", "d"}, KeysOnly: true, Batch: 128,
			AllowFollower: true,
		}
		got, err := decScanReq(encScanReq(req))
		if err != nil || !reflect.DeepEqual(got, req) {
			t.Fatalf("req: got %+v, %v", got, err)
		}
		resp := kvstore.ScanResponse{KVs: sampleKVs, More: true, RegionEnd: "q"}
		gotResp, err := decScanResp(encScanResp(resp))
		if err != nil || !reflect.DeepEqual(gotResp, resp) {
			t.Fatalf("resp: got %+v, %v", gotResp, err)
		}
	})

	t.Run("Apply", func(t *testing.T) {
		covers(RApply)
		ws := kv.WriteSet{TxnID: 7, ClientID: "c1", CommitTS: 101, Updates: sampleUpdates}
		gotWS, piggy, hasPiggy, err := decApplyReq(encApplyReq(ws, 55, true))
		if err != nil || piggy != 55 || !hasPiggy || !reflect.DeepEqual(gotWS, ws) {
			t.Fatalf("got %+v %d %v, %v", gotWS, piggy, hasPiggy, err)
		}
	})

	t.Run("OpenRegion", func(t *testing.T) {
		covers(ROpenRegion)
		edits := []kvstore.WALEntry{{RegionID: "t.r1", KVs: sampleKVs}}
		info, files, hasFiles, gotEdits, recovering, err := decOpenRegionReq(
			encOpenRegionReq(sampleInfo, []string{"/f1", "/f2"}, true, edits, true))
		if err != nil || !reflect.DeepEqual(info, sampleInfo) || !hasFiles || !recovering ||
			!reflect.DeepEqual(files, []string{"/f1", "/f2"}) || !reflect.DeepEqual(gotEdits, edits) {
			t.Fatalf("got %+v %v %v %+v %v, %v", info, files, hasFiles, gotEdits, recovering, err)
		}
	})

	t.Run("SyncWAL and other empty bodies", func(t *testing.T) {
		covers(RSyncWAL) // empty request body, empty response body
	})

	t.Run("Begin", func(t *testing.T) {
		covers(TBegin)
		clientID, readOnly, snapTS, mode, err := decBeginReq(encBeginReq("c1", true, 42, 3))
		if err != nil || clientID != "c1" || !readOnly || snapTS != 42 || mode != 3 {
			t.Fatalf("req: got %q %v %d %d, %v", clientID, readOnly, snapTS, mode, err)
		}
		handle, startTS, err := decBeginResp(encBeginResp(9, 100))
		if err != nil || handle != 9 || startTS != 100 {
			t.Fatalf("resp: got %d %d, %v", handle, startTS, err)
		}
	})

	t.Run("Commit", func(t *testing.T) {
		covers(TCommit)
		handle, updates, wait, err := decCommitReq(encCommitReq(9, sampleUpdates, true))
		if err != nil || handle != 9 || !wait || !reflect.DeepEqual(updates, sampleUpdates) {
			t.Fatalf("req: got %d %v %v, %v", handle, updates, wait, err)
		}
		cts, code, msg, err := decCommitResp(encCommitResp(101, CodeConflict, "boom"))
		if err != nil || cts != 101 || code != CodeConflict || msg != "boom" {
			t.Fatalf("resp: got %d %d %q, %v", cts, code, msg, err)
		}
	})

	t.Run("handle-bodied messages", func(t *testing.T) {
		covers(TAbort, FSync, FClose, FAbandon)
		got, err := decHandleMsg(encHandleMsg(1 << 40))
		if err != nil || got != 1<<40 {
			t.Fatalf("got %d, %v", got, err)
		}
	})

	t.Run("FAppend", func(t *testing.T) {
		covers(FAppend)
		id, p, err := decFAppendReq(encFAppendReq(3, []byte{0, 1, 2}))
		if err != nil || id != 3 || !reflect.DeepEqual(p, []byte{0, 1, 2}) {
			t.Fatalf("got %d %v, %v", id, p, err)
		}
	})

	t.Run("FRename", func(t *testing.T) {
		covers(FRename)
		o, n, err := decFRenameReq(encFRenameReq("/a", "/b"))
		if err != nil || o != "/a" || n != "/b" {
			t.Fatalf("got %q %q, %v", o, n, err)
		}
	})

	t.Run("FReadRange", func(t *testing.T) {
		covers(FReadRange)
		path, off, n, err := decFReadRangeReq(encFReadRangeReq("/f", 1024, 64))
		if err != nil || path != "/f" || off != 1024 || n != 64 {
			t.Fatalf("got %q %d %d, %v", path, off, n, err)
		}
	})

	t.Run("bytes and bool and strings bodies", func(t *testing.T) {
		p, err := decBytesMsg(encBytesMsg([]byte("data")))
		if err != nil || string(p) != "data" {
			t.Fatalf("bytes: got %q, %v", p, err)
		}
		b, err := decBoolMsg(encBoolMsg(true))
		if err != nil || !b {
			t.Fatalf("bool: got %v, %v", b, err)
		}
		ss, err := decStringsMsg(encStringsMsg([]string{"x", "y"}))
		if err != nil || !reflect.DeepEqual(ss, []string{"x", "y"}) {
			t.Fatalf("strings: got %v, %v", ss, err)
		}
	})

	t.Run("Watch", func(t *testing.T) {
		covers(WWatch, WCancel)
		table, rng, from, window, owner, err := decWatchReq(encWatchReq("t", kv.KeyRange{Start: "a", End: "m"}, 42, 64, "app-1"))
		if err != nil || table != "t" || rng.Start != "a" || rng.End != "m" || from != 42 || window != 64 || owner != "app-1" {
			t.Fatalf("req: got %q %v %d %d %q, %v", table, rng, from, window, owner, err)
		}
		// WCancel carries the shared handle body (covered above too).
		id, err := decHandleMsg(encHandleMsg(7))
		if err != nil || id != 7 {
			t.Fatalf("cancel: got %d, %v", id, err)
		}
	})

	t.Run("Watch batch stream frames", func(t *testing.T) {
		in := watch.ChangeBatch{
			CommitTS: 99,
			Pos:      99,
			Events: []watch.ChangeEvent{
				{Table: "t", Key: "r1", Column: "c", Value: []byte("v"), CommitTS: 99},
				{Table: "t", Key: "r2", Column: "c", Delete: true, CommitTS: 99},
			},
		}
		got, err := decWatchBatch(encWatchBatch(in), "t")
		if err != nil || !reflect.DeepEqual(got, in) {
			t.Fatalf("got %+v, %v", got, err)
		}
		// Progress-only batches: no events, position only.
		prog, err := decWatchBatch(encWatchBatch(watch.ChangeBatch{Pos: 120}), "t")
		if err != nil || len(prog.Events) != 0 || prog.Pos != 120 || prog.CommitTS != 0 {
			t.Fatalf("progress: got %+v, %v", prog, err)
		}
	})

	t.Run("WCredit", func(t *testing.T) {
		covers(WCredit)
		id, n, err := decWatchCreditReq(encWatchCreditReq(5, 32))
		if err != nil || id != 5 || n != 32 {
			t.Fatalf("got %d %d, %v", id, n, err)
		}
	})

	t.Run("SetReplication", func(t *testing.T) {
		covers(RSetReplication)
		targets := []kvstore.ReplicaTarget{{ServerID: "rs-2", Addr: "127.0.0.1:4002"}, {ServerID: "rs-3"}}
		id, epoch, gotTargets, ttl, err := decSetReplicationReq(encSetReplicationReq("t.r1", 7, targets, 250*time.Millisecond))
		if err != nil || id != "t.r1" || epoch != 7 || ttl != 250*time.Millisecond || !reflect.DeepEqual(gotTargets, targets) {
			t.Fatalf("got %q %d %v %v, %v", id, epoch, gotTargets, ttl, err)
		}
	})

	t.Run("AppendEntries", func(t *testing.T) {
		covers(RAppendEntries)
		entries := []kvstore.ReplEntry{{Seq: 11, KVs: sampleKVs}, {Seq: 12}}
		id, epoch, gotEntries, tipSeq, safeTS, err := decAppendEntriesReq(encAppendEntriesReq("t.r1", 7, entries, 12, 99))
		if err != nil || id != "t.r1" || epoch != 7 || tipSeq != 12 || safeTS != 99 || !reflect.DeepEqual(gotEntries, entries) {
			t.Fatalf("req: got %q %d %v %d %d, %v", id, epoch, gotEntries, tipSeq, safeTS, err)
		}
		// Heartbeat: no entries.
		_, _, gotEntries, _, _, err = decAppendEntriesReq(encAppendEntriesReq("t.r1", 7, nil, 12, 99))
		if err != nil || len(gotEntries) != 0 {
			t.Fatalf("heartbeat req: got %v, %v", gotEntries, err)
		}
		last, code, msg, err := decAppendEntriesResp(encAppendEntriesResp(12, CodeReplicaGap, "gap"))
		if err != nil || last != 12 || code != CodeReplicaGap || msg != "gap" {
			t.Fatalf("resp: got %d %d %q, %v", last, code, msg, err)
		}
	})

	t.Run("Promote", func(t *testing.T) {
		covers(RPromote)
		id, epoch, ttl, staged, err := decPromoteReq(encPromoteReq("t.r1", 8, time.Second, true))
		if err != nil || id != "t.r1" || epoch != 8 || ttl != time.Second || !staged {
			t.Fatalf("got %q %d %v %v, %v", id, epoch, ttl, staged, err)
		}
	})

	t.Run("ReplicaPos", func(t *testing.T) {
		covers(RReplicaPos) // request is the shared string body
		pos := kvstore.ReplicaPosition{Epoch: 7, LastSeq: 42, Checkpoint: 30, FrontierTS: 99}
		got, err := decReplicaPos(encReplicaPos(pos))
		if err != nil || got != pos {
			t.Fatalf("got %+v, %v", got, err)
		}
	})

	t.Run("OpenFollower", func(t *testing.T) {
		covers(ROpenFollower)
		info, epoch, err := decOpenFollowerReq(encOpenFollowerReq(sampleInfo, 7))
		if err != nil || epoch != 7 || !reflect.DeepEqual(info, sampleInfo) {
			t.Fatalf("got %+v %d, %v", info, epoch, err)
		}
	})

	t.Run("Checkpoint", func(t *testing.T) {
		covers(RCheckpoint)
		id, epoch, seq, err := decCheckpointReq(encCheckpointReq("t.r1", 7, 30))
		if err != nil || id != "t.r1" || epoch != 7 || seq != 30 {
			t.Fatalf("got %q %d %d, %v", id, epoch, seq, err)
		}
	})

	t.Run("Lease", func(t *testing.T) {
		covers(RLease)
		grants := map[string]kvstore.LeaseGrant{
			"t.r1": {Epoch: 7, TTL: 200 * time.Millisecond},
			"t.r2": {Epoch: 9, TTL: time.Second},
		}
		got, err := decLeaseReq(encLeaseReq(grants))
		if err != nil || !reflect.DeepEqual(got, grants) {
			t.Fatalf("got %+v, %v", got, err)
		}
		empty, err := decLeaseReq(encLeaseReq(nil))
		if err != nil || len(empty) != 0 {
			t.Fatalf("empty: got %+v, %v", empty, err)
		}
	})

	t.Run("Snapshot", func(t *testing.T) {
		covers(RSnapshot, RSnapCredit) // credit is the shared watch-credit body
		id, fromSeq, window, err := decSnapshotReq(encSnapshotReq("t.r1", 30, 32))
		if err != nil || id != "t.r1" || fromSeq != 30 || window != 32 {
			t.Fatalf("req: got %q %d %d, %v", id, fromSeq, window, err)
		}
		chunk := []kvstore.ReplEntry{{Seq: 31, KVs: sampleKVs}}
		got, err := decSnapshotChunk(encSnapshotChunk(chunk))
		if err != nil || !reflect.DeepEqual(got, chunk) {
			t.Fatalf("chunk: got %+v, %v", got, err)
		}
	})

	t.Run("every method covered", func(t *testing.T) {
		all := []byte{
			MLocateAll, MCreateTable, MSplitRegion, MTableRegions, MRegister, MHeartbeat,
			TBegin, TCommit, TAbort,
			RGet, RGetBatch, RScanBatch, RApply, ROpenRegion, RMarkOnline, RCloseRegion, RCloseFlush, RSyncWAL,
			FCreate, FAppend, FSync, FClose, FAbandon, FDelete, FRename, FExists, FList, FSize, FReadAll, FReadRange,
			WWatch, WCredit, WCancel,
			RSetReplication, RAppendEntries, RPromote, RReplicaPos, ROpenFollower, RCheckpoint, RSnapshot, RLease, RSnapCredit,
		}
		for _, m := range all {
			if !testedMethods[m] {
				t.Errorf("method %s (0x%02x) has no round-trip coverage", methodName(m), m)
			}
		}
	})

	t.Run("error frames", func(t *testing.T) {
		for _, tc := range []struct {
			in   error
			want error
		}{
			{kvstore.ErrRegionNotServing, kvstore.ErrRegionNotServing},
			{kvstore.ErrServerStopped, kvstore.ErrServerStopped},
			{kvstore.ErrNoSuchTable, kvstore.ErrNoSuchTable},
			{txmgr.ErrConflict, txmgr.ErrConflict},
			{dfs.ErrNotFound, dfs.ErrNotFound},
			{ErrCommitIndeterminate, ErrCommitIndeterminate},
			{watch.ErrLagging, watch.ErrLagging},
			{watch.ErrHorizonPassed, watch.ErrHorizonPassed},
			{watch.ErrClosed, watch.ErrClosed},
			{kvstore.ErrStaleEpoch, kvstore.ErrStaleEpoch},
			{kvstore.ErrLeaseExpired, kvstore.ErrLeaseExpired},
			{kvstore.ErrFollowerBehind, kvstore.ErrFollowerBehind},
			{kvstore.ErrReplicaGap, kvstore.ErrReplicaGap},
		} {
			got := DecodeError(EncodeError(tc.in))
			if !errors.Is(got, tc.want) {
				t.Fatalf("error %v: decoded %v does not unwrap to it", tc.in, got)
			}
		}
		// Conflicts must stay retryable across the wire.
		if !txmgr.IsRetryable(DecodeError(EncodeError(txmgr.ErrConflict))) {
			t.Fatal("remote conflict lost retryability")
		}
	})
}
