package replica

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/kvstore"
	"txkv/internal/netsim"
)

// directLink drives a follower region server in-process — the loopback
// transport of replication, mirroring what internal/rpc provides between
// processes.
type directLink struct{ s *kvstore.RegionServer }

func (l directLink) ServerID() string { return l.s.ID() }

func (l directLink) AppendEntries(regionID string, epoch uint64, entries []kvstore.ReplEntry, tipSeq uint64, safeTS kv.Timestamp) (uint64, error) {
	return l.s.AppendReplicated(regionID, epoch, entries, tipSeq, safeTS)
}

func (l directLink) Checkpoint(regionID string, epoch, seq uint64) error {
	return l.s.ApplyReplCheckpoint(regionID, epoch, seq)
}

func (l directLink) Close() {}

// replCluster is a replicated in-process cluster: master + servers, each
// server backed by a Shipper whose links call peer servers directly.
type replCluster struct {
	fs      *dfs.FS
	net     *netsim.Network
	master  *kvstore.Master
	srvs    map[string]*kvstore.RegionServer
	ships   map[string]*Shipper
	safeTS  atomic.Uint64
	t       *testing.T
	ordered []string
}

func newReplCluster(t *testing.T, nServers, rf int) *replCluster {
	t.Helper()
	c := &replCluster{
		fs:    dfs.New(dfs.Config{Replication: 2, DataNodes: nServers + 1}),
		net:   netsim.New(netsim.Config{}),
		srvs:  make(map[string]*kvstore.RegionServer),
		ships: make(map[string]*Shipper),
		t:     t,
	}
	c.safeTS.Store(uint64(kv.MaxTimestamp))
	c.master = kvstore.NewMaster(kvstore.MasterConfig{
		HeartbeatTimeout:  200 * time.Millisecond,
		CheckInterval:     20 * time.Millisecond,
		ReplicationFactor: rf,
	}, c.fs)
	c.master.Start()
	dial := func(target kvstore.ReplicaTarget) (kvstore.FollowerLink, error) {
		s, ok := c.srvs[target.ServerID]
		if !ok {
			return nil, fmt.Errorf("no such server %s", target.ServerID)
		}
		return directLink{s: s}, nil
	}
	for i := 0; i < nServers; i++ {
		id := fmt.Sprintf("server-%d", i)
		srv := kvstore.NewRegionServer(kvstore.ServerConfig{
			ID:                id,
			WALSyncInterval:   20 * time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
		}, c.fs)
		sh := NewShipper(Config{
			ServerID:      id,
			Dial:          dial,
			SafeTS:        func() kv.Timestamp { return kv.Timestamp(c.safeTS.Load()) },
			QuorumTimeout: 2 * time.Second,
		})
		srv.SetReplicator(sh)
		if err := c.master.AddServer(srv); err != nil {
			t.Fatal(err)
		}
		c.srvs[id] = srv
		c.ships[id] = sh
		c.ordered = append(c.ordered, id)
	}
	t.Cleanup(func() {
		c.master.Stop()
		for _, s := range c.srvs {
			if !s.Crashed() {
				s.Stop()
			}
		}
		for _, sh := range c.ships {
			sh.Close()
		}
	})
	return c
}

func (c *replCluster) client(id string) *kvstore.Client {
	return kvstore.NewClient(kvstore.ClientConfig{ID: id}, c.net, c.master)
}

// primaryOf resolves which server currently hosts (table, row)'s primary.
func (c *replCluster) primaryOf(table string, row kv.Key) (string, *kvstore.RegionServer) {
	c.t.Helper()
	_, host, err := c.master.Locate(table, row)
	if err != nil {
		c.t.Fatalf("Locate(%s/%s): %v", table, row, err)
	}
	s := host.(*kvstore.RegionServer)
	return s.ID(), s
}

func replWriteSet(tsv kv.Timestamp, table string, rows ...string) kv.WriteSet {
	ws := kv.WriteSet{TxnID: uint64(tsv), ClientID: "repl-test", CommitTS: tsv}
	for _, r := range rows {
		ws.Updates = append(ws.Updates, kv.Update{
			Table: table, Row: kv.Key(r), Column: "f",
			Value: []byte(fmt.Sprintf("v%d-%s", tsv, r)),
		})
	}
	return ws
}

func TestReplicatedWritesReachFollowers(t *testing.T) {
	c := newReplCluster(t, 3, 3)
	if err := c.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.client("c1")
	ctx := context.Background()
	for i := 1; i <= 30; i++ {
		if err := cl.Flush(ctx, replWriteSet(kv.Timestamp(i), "t", fmt.Sprintf("row%03d", i)), 0, false); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	primaryID, _ := c.primaryOf("t", "row001")
	// Every non-primary server hosts a follower copy at seq 30.
	waitFor(t, "followers caught up", func() bool {
		n := 0
		for id, s := range c.srvs {
			if id == primaryID {
				continue
			}
			for _, st := range s.ReplicaStates() {
				if st.Role == kvstore.RoleFollower && st.LastSeq == 30 {
					n++
				}
			}
		}
		return n == 2
	})
	// Quorum acks really happened: the primary's shipper shipped to both.
	if st := c.ships[primaryID].Stats(); st.ShippedEntries < 60 {
		t.Fatalf("ShippedEntries = %d, want >= 60", st.ShippedEntries)
	}
}

func TestFollowerReadsBoundedStaleness(t *testing.T) {
	c := newReplCluster(t, 2, 2)
	// Freeze the safe horizon low so frontier only advances when we say so.
	c.safeTS.Store(0)
	if err := c.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.client("c1")
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		if err := cl.Flush(ctx, replWriteSet(kv.Timestamp(10*i), "t", fmt.Sprintf("row%d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	primaryID, _ := c.primaryOf("t", "row1")
	var follower *kvstore.RegionServer
	for id, s := range c.srvs {
		if id != primaryID {
			follower = s
		}
	}
	req := kvstore.ScanRequest{
		Table:         "t",
		Range:         kv.KeyRange{},
		MaxTS:         50,
		Batch:         100,
		AllowFollower: true,
	}
	// The replicated frontier is at the applied commit timestamps (50); a
	// snapshot at 50 is servable, one above it is not until the safe
	// horizon catches up.
	waitFor(t, "follower frontier at 50", func() bool {
		resp, err := follower.ScanBatch(ctx, req)
		return err == nil && len(resp.KVs) == 5
	})
	req.MaxTS = 51
	if _, err := follower.ScanBatch(ctx, req); !errors.Is(err, kvstore.ErrFollowerBehind) {
		t.Fatalf("scan above frontier = %v, want ErrFollowerBehind", err)
	}
	// Advance the safe horizon: heartbeats push it to the caught-up
	// follower and the stale snapshot becomes servable.
	c.safeTS.Store(60)
	waitFor(t, "frontier advanced via heartbeat", func() bool {
		resp, err := follower.ScanBatch(ctx, req)
		return err == nil && len(resp.KVs) == 5
	})
	// Without AllowFollower the follower copy stays invisible.
	req.AllowFollower = false
	if _, err := follower.ScanBatch(ctx, req); !errors.Is(err, kvstore.ErrRegionNotServing) {
		t.Fatalf("scan without AllowFollower = %v, want ErrRegionNotServing", err)
	}
}

func TestPromotionFailoverPreservesAckedWrites(t *testing.T) {
	c := newReplCluster(t, 3, 3)
	if err := c.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	cl := c.client("c1")
	ctx := context.Background()
	const n = 40
	for i := 1; i <= n; i++ {
		row := fmt.Sprintf("a%03d", i)
		if i%2 == 0 {
			row = fmt.Sprintf("z%03d", i) // second region
		}
		if err := cl.Flush(ctx, replWriteSet(kv.Timestamp(i), "t", row), 0, false); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	primaryID, primary := c.primaryOf("t", "a001")
	epochBefore := c.master.ReplicaEpoch("t-r000")

	// Kill the primary-hosting server outright and let the master promote.
	primary.Crash()
	start := time.Now()
	waitFor(t, "region failed over", func() bool {
		id, _, err := func() (string, kvstore.RegionHost, error) {
			_, h, e := c.master.Locate("t", "a001")
			if e != nil {
				return "", nil, e
			}
			return h.ID(), h, nil
		}()
		return err == nil && id != primaryID
	})
	t.Logf("failover window: %v", time.Since(start))

	if e := c.master.ReplicaEpoch("t-r000"); e <= epochBefore {
		t.Fatalf("epoch %d not bumped past %d by promotion", e, epochBefore)
	}
	// Every acknowledged write survives.
	for i := 1; i <= n; i++ {
		row := fmt.Sprintf("a%03d", i)
		if i%2 == 0 {
			row = fmt.Sprintf("z%03d", i)
		}
		var got kv.KeyValue
		var found bool
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var err error
			got, found, err = cl.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
			if err == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if !found {
			t.Fatalf("acked write %s lost after failover", row)
		}
		if want := fmt.Sprintf("v%d-%s", i, row); string(got.Value) != want {
			t.Fatalf("row %s = %q, want %q", row, got.Value, want)
		}
	}
}

func TestFencedExPrimaryCannotAck(t *testing.T) {
	c := newReplCluster(t, 2, 2)
	if err := c.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.client("c1")
	ctx := context.Background()
	if err := cl.Flush(ctx, replWriteSet(1, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	primaryID, primary := c.primaryOf("t", "a")

	// Partition-style failure: the master declares the server dead and
	// promotes, but the old process is still running and still takes
	// requests from stale clients.
	c.master.FailServer(primaryID)
	waitFor(t, "promotion elsewhere", func() bool {
		id, _, err := func() (string, kvstore.RegionHost, error) {
			_, h, e := c.master.Locate("t", "a")
			if e != nil {
				return "", nil, e
			}
			return h.ID(), h, nil
		}()
		return err == nil && id != primaryID
	})

	// The deposed primary can no longer acknowledge a write: its follower
	// rejects the stale epoch (and its lease, no longer renewed, expires).
	deadline := time.Now().Add(3 * time.Second)
	for {
		err := primary.ApplyWriteSet(replWriteSet(2, "t", "a"), 0, false)
		if errors.Is(err, kvstore.ErrStaleEpoch) || errors.Is(err, kvstore.ErrLeaseExpired) {
			break // fenced
		}
		if err == nil && time.Now().After(deadline) {
			t.Fatal("deposed primary still acknowledging writes")
		}
		if err != nil && !errors.Is(err, kvstore.ErrRegionNotServing) {
			t.Fatalf("unexpected error from deposed primary: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("fencing never engaged; last err: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Its lease, no longer renewed, lapses within one TTL; after that the
	// deposed primary bounces reads too, instead of serving its diverged
	// local copy.
	waitFor(t, "deposed primary stops serving reads", func() bool {
		_, _, err := primary.Get("t", "a", "f", kv.MaxTimestamp)
		return errors.Is(err, kvstore.ErrRegionNotServing)
	})
	// The client re-locates to the new primary, which has exactly the acked
	// data: v1-a, and no trace of the fenced (never-acknowledged) write.
	got, found, err := cl.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v1-a" {
		t.Fatalf("read after fencing: %q found=%v err=%v", got.Value, found, err)
	}
}

func TestClientFollowerScanRouting(t *testing.T) {
	c := newReplCluster(t, 2, 2)
	// Freeze the safe horizon: the follower's frontier advances only with
	// applied commit timestamps, so snapshots past the newest write are
	// deterministically unservable from the follower (the fallback case).
	c.safeTS.Store(0)
	if err := c.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	wcl := c.client("writer")
	for i := 1; i <= 10; i++ {
		if err := wcl.Flush(ctx, replWriteSet(kv.Timestamp(i), "t", fmt.Sprintf("row%02d", i)), 0, false); err != nil {
			t.Fatalf("flush %d: %v", i, err)
		}
	}
	primaryID, _ := c.primaryOf("t", "row01")
	var follower *kvstore.RegionServer
	for id, s := range c.srvs {
		if id != primaryID {
			follower = s
		}
	}
	// Wait until the follower can serve the snapshot, so the routed scan
	// deterministically succeeds on the follower rather than falling back.
	waitFor(t, "follower servable", func() bool {
		resp, err := follower.ScanBatch(ctx, kvstore.ScanRequest{
			Table: "t", MaxTS: 10, Batch: 100, AllowFollower: true,
		})
		return err == nil && len(resp.KVs) == 10
	})

	cl := kvstore.NewClientTransport(
		kvstore.ClientConfig{ID: "reader", FollowerReads: true},
		kvstore.NewLoopbackTransport(c.net, c.master, "reader"),
	)
	got, err := cl.Scan(ctx, "t", kv.KeyRange{}, 10, 0)
	if err != nil {
		t.Fatalf("follower-routed scan: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("scan returned %d rows, want 10", len(got))
	}
	st := cl.Stats()
	if st.FollowerBatches == 0 {
		t.Fatalf("no batch served by a follower: %+v", st)
	}
	if rs := follower.ReplStats(); rs.FollowerReads == 0 {
		t.Fatalf("follower server recorded no follower reads: %+v", rs)
	}

	// A snapshot past the follower's frontier falls back to the primary in
	// the same fill — the scan still succeeds, the fallback is counted.
	got, err = cl.Scan(ctx, "t", kv.KeyRange{}, 1001, 0)
	if err != nil {
		t.Fatalf("fallback scan: %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("fallback scan returned %d rows, want 10", len(got))
	}
	if st := cl.Stats(); st.FollowerFallbacks == 0 {
		t.Fatalf("behind-follower scan did not record a fallback: %+v", st)
	}
}

func TestFollowerLossRepairsGroup(t *testing.T) {
	c := newReplCluster(t, 3, 2)
	if err := c.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	cl := c.client("c1")
	ctx := context.Background()
	if err := cl.Flush(ctx, replWriteSet(1, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	primaryID, _ := c.primaryOf("t", "a")
	// Find the follower server and kill it.
	var followerID string
	locs, err := c.master.LocateAll("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 1 || len(locs[0].Followers) != 1 {
		t.Fatalf("layout: %d locs, followers %v", len(locs), locs)
	}
	followerID = locs[0].Followers[0].ServerID
	c.srvs[followerID].Crash()

	// The master repairs the group onto the third server.
	waitFor(t, "follower group repaired", func() bool {
		locs, err := c.master.LocateAll("t")
		if err != nil || len(locs) != 1 || len(locs[0].Followers) != 1 {
			return false
		}
		f := locs[0].Followers[0]
		return f.ServerID != followerID && f.ServerID != primaryID
	})
	// Writes still ack (quorum over the repaired set) and replicate.
	if err := cl.Flush(ctx, replWriteSet(2, "t", "b"), 0, false); err != nil {
		t.Fatalf("flush after repair: %v", err)
	}
}
