package replica

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
)

// fakeFollower is an in-memory follower: strict-contiguity apply with a
// retained view of everything received, plus fault injection.
type fakeFollower struct {
	id string

	mu         sync.Mutex
	epoch      uint64
	lastSeq    uint64
	checkpoint uint64
	entries    []kvstore.ReplEntry
	tipSeq     uint64
	safeTS     kv.Timestamp
	ckpts      int

	failAppends bool // transient transport failure
	staleEpoch  bool // pretend a newer epoch was installed
}

type fakeLink struct{ f *fakeFollower }

func (l fakeLink) ServerID() string { return l.f.id }

func (l fakeLink) AppendEntries(regionID string, epoch uint64, entries []kvstore.ReplEntry, tipSeq uint64, safeTS kv.Timestamp) (uint64, error) {
	f := l.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAppends {
		return f.lastSeq, errors.New("injected transport failure")
	}
	if f.staleEpoch || epoch < f.epoch {
		return f.lastSeq, kvstore.ErrStaleEpoch
	}
	f.epoch = epoch
	for _, e := range entries {
		if e.Seq <= f.lastSeq {
			continue
		}
		if e.Seq != f.lastSeq+1 {
			return f.lastSeq, fmt.Errorf("%w: have %d got %d", kvstore.ErrReplicaGap, f.lastSeq, e.Seq)
		}
		f.entries = append(f.entries, e)
		f.lastSeq = e.Seq
	}
	f.tipSeq = tipSeq
	if safeTS > 0 && f.lastSeq == tipSeq {
		f.safeTS = safeTS
	}
	return f.lastSeq, nil
}

func (l fakeLink) Checkpoint(regionID string, epoch, seq uint64) error {
	f := l.f
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failAppends {
		return errors.New("injected transport failure")
	}
	if f.staleEpoch || epoch < f.epoch {
		return kvstore.ErrStaleEpoch
	}
	f.ckpts++
	if epoch > f.epoch {
		// New primary incarnation renumbers the stream.
		f.epoch = epoch
		f.lastSeq = seq
		f.entries = nil
		f.checkpoint = seq
		return nil
	}
	if seq > f.lastSeq {
		f.lastSeq = seq
	}
	f.checkpoint = seq
	kept := f.entries[:0]
	for _, e := range f.entries {
		if e.Seq > seq {
			kept = append(kept, e)
		}
	}
	f.entries = kept
	return nil
}

func (l fakeLink) Close() {}

func (f *fakeFollower) pos() (last, ckpt uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastSeq, f.checkpoint
}

func dialerFor(fs ...*fakeFollower) kvstore.LinkDialer {
	byID := make(map[string]*fakeFollower)
	for _, f := range fs {
		byID[f.id] = f
	}
	return func(t kvstore.ReplicaTarget) (kvstore.FollowerLink, error) {
		f, ok := byID[t.ServerID]
		if !ok {
			return nil, fmt.Errorf("no such follower %s", t.ServerID)
		}
		return fakeLink{f: f}, nil
	}
}

func targets(fs ...*fakeFollower) []kvstore.ReplicaTarget {
	var ts []kvstore.ReplicaTarget
	for _, f := range fs {
		ts = append(ts, kvstore.ReplicaTarget{ServerID: f.id})
	}
	return ts
}

func testKVs(n int) []kv.KeyValue {
	kvs := make([]kv.KeyValue, n)
	for i := range kvs {
		kvs[i] = kv.KeyValue{Cell: kv.Cell{Row: kv.Key(fmt.Sprintf("r%04d", i)), Column: "c", TS: 7}, Value: []byte("v")}
	}
	return kvs
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestShipperQuorumAndCatchUp(t *testing.T) {
	f1 := &fakeFollower{id: "f1"}
	f2 := &fakeFollower{id: "f2"}
	sh := NewShipper(Config{
		ServerID:      "p",
		Dial:          dialerFor(f1, f2),
		SafeTS:        func() kv.Timestamp { return 99 },
		QuorumTimeout: 2 * time.Second,
	})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(f1, f2))
	for i := 0; i < 20; i++ {
		if err := sh.Replicate("rg", testKVs(3)); err != nil {
			t.Fatalf("Replicate: %v", err)
		}
	}
	if got := sh.LastSeq("rg"); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	// Quorum is majority: with 2 followers one ack suffices, but both should
	// converge to the tip shortly.
	waitFor(t, "both followers at seq 20", func() bool {
		a, _ := f1.pos()
		b, _ := f2.pos()
		return a == 20 && b == 20
	})
	// Frontier heartbeats reach caught-up followers.
	waitFor(t, "frontier propagated", func() bool {
		f1.mu.Lock()
		defer f1.mu.Unlock()
		return f1.safeTS == 99
	})
	st := sh.Stats()
	if st.ShippedEntries != 40 { // 20 entries × 2 followers
		t.Fatalf("ShippedEntries = %d, want 40", st.ShippedEntries)
	}
}

func TestShipperQuorumWithDeadFollowerMinority(t *testing.T) {
	live := &fakeFollower{id: "live"}
	dead := &fakeFollower{id: "dead", failAppends: true}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(live, dead), QuorumTimeout: 2 * time.Second})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(live, dead))
	// 3-way replica set: primary + live follower form the majority even with
	// one follower down.
	if err := sh.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate with one dead follower: %v", err)
	}
}

func TestShipperQuorumTimeout(t *testing.T) {
	dead := &fakeFollower{id: "dead", failAppends: true}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(dead), QuorumTimeout: 80 * time.Millisecond})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(dead))
	// RF=2: the single follower must ack; it can't, so the write times out
	// with a retryable not-serving error.
	err := sh.Replicate("rg", testKVs(1))
	if !errors.Is(err, kvstore.ErrRegionNotServing) {
		t.Fatalf("Replicate = %v, want ErrRegionNotServing", err)
	}
	if st := sh.Stats(); st.QuorumTimeouts == 0 {
		t.Fatal("QuorumTimeouts not counted")
	}
	// Quorum restored once the follower heals.
	dead.mu.Lock()
	dead.failAppends = false
	dead.mu.Unlock()
	if err := sh.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate after heal: %v", err)
	}
}

func TestShipperFencedByStaleEpoch(t *testing.T) {
	f := &fakeFollower{id: "f"}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(f), QuorumTimeout: 2 * time.Second})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(f))
	if err := sh.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate: %v", err)
	}
	// A new primary was elected elsewhere: the follower now rejects epoch 1.
	f.mu.Lock()
	f.staleEpoch = true
	f.mu.Unlock()
	err := sh.Replicate("rg", testKVs(1))
	if !errors.Is(err, kvstore.ErrStaleEpoch) {
		t.Fatalf("Replicate after fence = %v, want ErrStaleEpoch", err)
	}
	// Fenced is sticky: immediate rejection without touching the network.
	if err := sh.Replicate("rg", testKVs(1)); !errors.Is(err, kvstore.ErrStaleEpoch) {
		t.Fatalf("Replicate while fenced = %v, want ErrStaleEpoch", err)
	}
	// A new epoch from the master revives the stream.
	f.mu.Lock()
	f.staleEpoch = false
	f.mu.Unlock()
	sh.SetFollowers("rg", 2, targets(f))
	if err := sh.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate at new epoch: %v", err)
	}
}

func TestShipperCheckpointPrunesAndReanchors(t *testing.T) {
	f := &fakeFollower{id: "f"}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(f), QuorumTimeout: 2 * time.Second})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(f))
	for i := 0; i < 10; i++ {
		if err := sh.Replicate("rg", testKVs(2)); err != nil {
			t.Fatalf("Replicate: %v", err)
		}
	}
	sh.Checkpoint("rg", 10)
	waitFor(t, "follower pruned to checkpoint 10", func() bool {
		_, ckpt := f.pos()
		return ckpt == 10
	})
	if st := sh.Stats(); st.RetainedEntries != 0 {
		t.Fatalf("RetainedEntries = %d after full prune, want 0", st.RetainedEntries)
	}

	// A follower joining after the prune anchors at the checkpoint first,
	// then streams only the post-checkpoint tail.
	late := &fakeFollower{id: "late"}
	sh2 := NewShipper(Config{ServerID: "p2", Dial: dialerFor(late), QuorumTimeout: 2 * time.Second})
	defer sh2.Close()
	sh2.AdoptRegion("rg", 3, 10, 10, nil)
	sh2.SetFollowers("rg", 3, targets(late))
	if err := sh2.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate on adopted region: %v", err)
	}
	late.mu.Lock()
	last, ckpt, n := late.lastSeq, late.checkpoint, len(late.entries)
	late.mu.Unlock()
	if last != 11 || ckpt != 10 || n != 1 {
		t.Fatalf("late follower last=%d ckpt=%d entries=%d, want 11/10/1", last, ckpt, n)
	}
}

func TestShipperGapRewind(t *testing.T) {
	f := &fakeFollower{id: "f"}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(f), QuorumTimeout: 2 * time.Second})
	defer sh.Close()

	sh.SetFollowers("rg", 1, targets(f))
	for i := 0; i < 5; i++ {
		if err := sh.Replicate("rg", testKVs(1)); err != nil {
			t.Fatalf("Replicate: %v", err)
		}
	}
	// Simulate follower state loss: it restarts empty; the next append hits a
	// gap and the shipper rewinds to the follower's reported position.
	f.mu.Lock()
	f.lastSeq, f.entries = 0, nil
	f.mu.Unlock()
	if err := sh.Replicate("rg", testKVs(1)); err != nil {
		t.Fatalf("Replicate after follower reset: %v", err)
	}
	waitFor(t, "follower re-converged to seq 6", func() bool {
		last, _ := f.pos()
		return last == 6
	})
}

func TestShipperRFOneNoFollowers(t *testing.T) {
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor()})
	defer sh.Close()
	// Without followers the primary alone is the majority: acks are
	// immediate and nothing blocks.
	for i := 0; i < 100; i++ {
		if err := sh.Replicate("solo", testKVs(1)); err != nil {
			t.Fatalf("Replicate: %v", err)
		}
	}
	if got := sh.LastSeq("solo"); got != 100 {
		t.Fatalf("LastSeq = %d, want 100", got)
	}
}

func TestShipperSnapshotTailAndDrop(t *testing.T) {
	f := &fakeFollower{id: "f"}
	sh := NewShipper(Config{ServerID: "p", Dial: dialerFor(f), QuorumTimeout: 2 * time.Second})
	defer sh.Close()
	sh.SetFollowers("rg", 1, targets(f))
	for i := 0; i < 8; i++ {
		if err := sh.Replicate("rg", testKVs(1)); err != nil {
			t.Fatalf("Replicate: %v", err)
		}
	}
	tail, pos, err := sh.SnapshotTail("rg", 3)
	if err != nil {
		t.Fatalf("SnapshotTail: %v", err)
	}
	if pos.LastSeq != 8 || len(tail) != 5 || tail[0].Seq != 4 {
		t.Fatalf("SnapshotTail = pos %+v, %d entries from %d", pos, len(tail), tail[0].Seq)
	}
	sh.DropRegion("rg")
	if _, _, err := sh.SnapshotTail("rg", 0); !errors.Is(err, kvstore.ErrRegionNotServing) {
		t.Fatalf("SnapshotTail after drop = %v, want ErrRegionNotServing", err)
	}
}
