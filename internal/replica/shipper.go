// Package replica implements the primary/backup shipping engine behind
// region replication: per-region fan-out of the primary's WAL stream to its
// follower set, majority-quorum ack accounting, retained-log pruning at
// flush checkpoints, follower re-anchoring, and epoch fencing. One Shipper
// serves one region server (all the regions it primaries); the master
// drives membership through kvstore's ReplicaHost surface, which forwards
// here via the kvstore.Replicator interface.
//
// Invariants:
//
//   - Entries of one region form a single monotone sequence; the retained
//     log always holds exactly (checkpoint, lastSeq], contiguous.
//   - A sender never transmits an entry its follower is not contiguous
//     with: it first delivers the current checkpoint (re-anchoring the
//     follower on the primary's store files), then ships from the
//     follower's acknowledged position.
//   - A write is acknowledged once a majority of the replica set (primary
//     included) holds it; the majority is over the CURRENT set, so losing
//     a follower degrades the quorum rather than wedging writes — the
//     master repairs the set, and the transaction log recovery middleware
//     remains the durability backstop underneath.
//   - One ErrStaleEpoch from any follower fences the region permanently
//     (until a new epoch is installed): every waiting and future write
//     fails with ErrStaleEpoch, so a deposed primary can never ack.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/kv"
	"txkv/internal/kvstore"
)

// Config configures a Shipper.
type Config struct {
	// ServerID is the owning region server's ID (labels and link identity).
	ServerID string
	// Dial resolves follower targets into live links.
	Dial kvstore.LinkDialer
	// SafeTS supplies the safe-snapshot horizon shipped with frontier
	// heartbeats (the cluster wires the transaction manager's safe
	// snapshot). Nil disables frontier advancement on idle regions.
	SafeTS func() kv.Timestamp
	// QuorumTimeout bounds the wait for a majority ack; an expiring wait
	// fails the write with a retryable error (the master repairs the
	// follower set meanwhile). Default 5s.
	QuorumTimeout time.Duration
	// HeartbeatInterval is the cadence of frontier heartbeats to caught-up
	// followers. Default 50ms.
	HeartbeatInterval time.Duration
	// RetryBackoff is the pause after a failed send before the sender
	// retries. Default 20ms.
	RetryBackoff time.Duration
	// MaxBatchEntries caps entries per AppendEntries call. Default 256.
	MaxBatchEntries int
}

func (c Config) withDefaults() Config {
	if c.QuorumTimeout == 0 {
		c.QuorumTimeout = 5 * time.Second
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 20 * time.Millisecond
	}
	if c.MaxBatchEntries == 0 {
		c.MaxBatchEntries = 256
	}
	return c
}

// Stats is a point-in-time snapshot of a shipper's counters and lag gauges.
type Stats struct {
	ShippedBatches  int64
	ShippedEntries  int64
	ShippedBytes    int64
	Heartbeats      int64
	Checkpoints     int64
	SendErrors      int64
	QuorumTimeouts  int64
	RegionsFenced   int64
	LagEntries      int64 // worst follower lag, in entries, across regions
	LagBytes        int64 // retained-log bytes not yet held by every follower
	RetainedEntries int64 // retained-log entries across regions
}

// Shipper is one region server's replication engine. See the package
// comment for the invariants it maintains.
type Shipper struct {
	cfg Config

	mu      sync.Mutex
	regions map[string]*regionRep
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	shippedBatches atomic.Int64
	shippedEntries atomic.Int64
	shippedBytes   atomic.Int64
	heartbeats     atomic.Int64
	checkpoints    atomic.Int64
	sendErrors     atomic.Int64
	quorumTimeouts atomic.Int64
	regionsFenced  atomic.Int64
}

// NewShipper creates a shipper; Close releases its senders.
func NewShipper(cfg Config) *Shipper {
	return &Shipper{
		cfg:     cfg.withDefaults(),
		regions: make(map[string]*regionRep),
		stop:    make(chan struct{}),
	}
}

type waiter struct {
	seq  uint64
	ch   chan struct{}
	err  error // set before ch closes
	done bool
}

type regionRep struct {
	id string

	mu         sync.Mutex
	epoch      uint64
	lastSeq    uint64
	checkpoint uint64
	base       uint64 // seq of the entry preceding log[0]; == checkpoint after prune
	log        []kvstore.ReplEntry
	logBytes   int64
	senders    map[string]*sender
	waiters    []*waiter
	fenced     bool
	dropped    bool
}

type sender struct {
	target   kvstore.ReplicaTarget
	link     kvstore.FollowerLink
	acked    uint64 // follower's last contiguously applied seq
	anchored bool   // current checkpoint delivered
	ckptSent uint64
	removed  bool
	wake     chan struct{}
	lastSend time.Time
}

func (sd *sender) signal() {
	select {
	case sd.wake <- struct{}{}:
	default:
	}
}

func entryBytes(e kvstore.ReplEntry) int64 {
	var n int64
	for _, x := range e.KVs {
		n += int64(len(x.Row) + len(x.Column) + len(x.Value) + 16)
	}
	return n
}

// region returns (creating if needed) a region's shipping state.
func (sh *Shipper) region(regionID string) *regionRep {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r := sh.regions[regionID]
	if r == nil {
		r = &regionRep{id: regionID, senders: make(map[string]*sender)}
		sh.regions[regionID] = r
	}
	return r
}

// followerAcksNeeded is the number of FOLLOWER acks required for a majority
// of the current replica set (primary included): total = n followers + 1,
// majority = total/2 + 1, of which the primary itself supplies one.
func followerAcksNeeded(nFollowers int) int {
	return (nFollowers + 1) / 2
}

// Replicate implements kvstore.Replicator.
func (sh *Shipper) Replicate(regionID string, kvs []kv.KeyValue) error {
	r := sh.region(regionID)
	r.mu.Lock()
	if r.fenced {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s fenced at epoch %d", kvstore.ErrStaleEpoch, regionID, r.epoch)
	}
	r.lastSeq++
	e := kvstore.ReplEntry{Seq: r.lastSeq, KVs: kvs}
	r.log = append(r.log, e)
	r.logBytes += entryBytes(e)
	need := followerAcksNeeded(len(r.senders))
	var w *waiter
	if need > 0 {
		w = &waiter{seq: e.Seq, ch: make(chan struct{})}
		r.waiters = append(r.waiters, w)
	}
	for _, sd := range r.senders {
		sd.signal()
	}
	r.mu.Unlock()
	if w == nil {
		return nil // no followers yet: the primary alone is the majority
	}
	t := time.NewTimer(sh.cfg.QuorumTimeout)
	defer t.Stop()
	select {
	case <-w.ch:
		return w.err
	case <-t.C:
		r.mu.Lock()
		done, err := w.done, w.err
		if !done {
			for i, x := range r.waiters {
				if x == w {
					r.waiters = append(r.waiters[:i], r.waiters[i+1:]...)
					break
				}
			}
		}
		r.mu.Unlock()
		if done {
			return err // ack raced the timer
		}
		sh.quorumTimeouts.Add(1)
		return fmt.Errorf("%w: replication quorum timeout for %s seq %d",
			kvstore.ErrRegionNotServing, regionID, e.Seq)
	case <-sh.stop:
		return kvstore.ErrServerStopped
	}
}

// evaluateWaitersLocked completes every waiter whose seq a follower
// majority now holds. Caller holds r.mu.
func (r *regionRep) evaluateWaitersLocked() {
	need := followerAcksNeeded(len(r.senders))
	kept := r.waiters[:0]
	for _, w := range r.waiters {
		acks := 0
		for _, sd := range r.senders {
			if sd.acked >= w.seq {
				acks++
			}
		}
		if acks >= need {
			w.done = true
			close(w.ch)
			continue
		}
		kept = append(kept, w)
	}
	r.waiters = kept
}

// fenceLocked marks the region fenced and fails every waiter. Caller holds
// r.mu.
func (sh *Shipper) fenceLocked(r *regionRep) {
	if r.fenced {
		return
	}
	r.fenced = true
	sh.regionsFenced.Add(1)
	for _, w := range r.waiters {
		w.err = fmt.Errorf("%w: %s fenced at epoch %d", kvstore.ErrStaleEpoch, r.id, r.epoch)
		w.done = true
		close(w.ch)
	}
	r.waiters = nil
}

// failWaitersLocked fails every waiter with err. Caller holds r.mu.
func failWaitersLocked(r *regionRep, err error) {
	for _, w := range r.waiters {
		w.err = err
		w.done = true
		close(w.ch)
	}
	r.waiters = nil
}

// SetFollowers implements kvstore.Replicator.
func (sh *Shipper) SetFollowers(regionID string, epoch uint64, followers []kvstore.ReplicaTarget) {
	r := sh.region(regionID)
	r.mu.Lock()
	defer r.mu.Unlock()
	if epoch < r.epoch {
		return // stale membership from a deposed master view
	}
	if epoch > r.epoch {
		r.epoch = epoch
		r.fenced = false
	}
	want := make(map[string]kvstore.ReplicaTarget, len(followers))
	for _, t := range followers {
		want[t.ServerID] = t
	}
	for id, sd := range r.senders {
		if _, ok := want[id]; !ok {
			sd.removed = true
			sd.signal()
			delete(r.senders, id)
		}
	}
	for id, t := range want {
		if _, ok := r.senders[id]; ok {
			continue
		}
		sd := &sender{target: t, wake: make(chan struct{}, 1)}
		r.senders[id] = sd
		sh.wg.Add(1)
		go sh.senderLoop(r, sd)
	}
	// Membership change moves the quorum bar; waiting writes may already
	// be satisfied under the new (possibly smaller) set.
	r.evaluateWaitersLocked()
}

// AdoptRegion implements kvstore.Replicator: seed a promoted follower's
// stream state. Senders are installed by the SetFollowers that follows.
func (sh *Shipper) AdoptRegion(regionID string, epoch, lastSeq, checkpoint uint64, tail []kvstore.ReplEntry) {
	r := sh.region(regionID)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, sd := range r.senders {
		sd.removed = true
		sd.signal()
	}
	r.senders = make(map[string]*sender)
	failWaitersLocked(r, fmt.Errorf("%w: %s adopted at epoch %d", kvstore.ErrRegionNotServing, regionID, epoch))
	r.epoch = epoch
	r.lastSeq = lastSeq
	r.checkpoint = checkpoint
	r.base = checkpoint
	r.log = append([]kvstore.ReplEntry(nil), tail...)
	r.logBytes = 0
	for _, e := range r.log {
		r.logBytes += entryBytes(e)
	}
	r.fenced = false
	r.dropped = false
}

// LastSeq implements kvstore.Replicator.
func (sh *Shipper) LastSeq(regionID string) uint64 {
	sh.mu.Lock()
	r := sh.regions[regionID]
	sh.mu.Unlock()
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastSeq
}

// Checkpoint implements kvstore.Replicator: prune the retained log through
// seq and schedule follower re-anchors.
func (sh *Shipper) Checkpoint(regionID string, seq uint64) {
	sh.mu.Lock()
	r := sh.regions[regionID]
	sh.mu.Unlock()
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq <= r.checkpoint {
		return
	}
	drop := int(seq - r.base)
	if drop > len(r.log) {
		drop = len(r.log)
	}
	for _, e := range r.log[:drop] {
		r.logBytes -= entryBytes(e)
	}
	r.log = append([]kvstore.ReplEntry(nil), r.log[drop:]...)
	r.base += uint64(drop)
	r.checkpoint = seq
	sh.checkpoints.Add(1)
	for _, sd := range r.senders {
		// Every follower must learn the new anchor: behind ones because
		// their pending entries were just pruned, caught-up ones so they
		// prune their own retained tails.
		sd.signal()
	}
}

// SnapshotTail implements kvstore.Replicator.
func (sh *Shipper) SnapshotTail(regionID string, fromSeq uint64) ([]kvstore.ReplEntry, kvstore.ReplicaPosition, error) {
	sh.mu.Lock()
	r := sh.regions[regionID]
	sh.mu.Unlock()
	if r == nil {
		return nil, kvstore.ReplicaPosition{}, fmt.Errorf("%w: %s not replicated here", kvstore.ErrRegionNotServing, regionID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	pos := kvstore.ReplicaPosition{Epoch: r.epoch, LastSeq: r.lastSeq, Checkpoint: r.checkpoint}
	start := 0
	if fromSeq > r.base {
		start = int(fromSeq - r.base)
		if start > len(r.log) {
			start = len(r.log)
		}
	}
	return append([]kvstore.ReplEntry(nil), r.log[start:]...), pos, nil
}

// DropRegion implements kvstore.Replicator.
func (sh *Shipper) DropRegion(regionID string) {
	sh.mu.Lock()
	r := sh.regions[regionID]
	delete(sh.regions, regionID)
	sh.mu.Unlock()
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dropped = true
	for _, sd := range r.senders {
		sd.removed = true
		sd.signal()
	}
	r.senders = make(map[string]*sender)
	failWaitersLocked(r, fmt.Errorf("%w: %s dropped", kvstore.ErrRegionNotServing, regionID))
}

// Close stops every sender.
func (sh *Shipper) Close() {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	sh.closed = true
	sh.mu.Unlock()
	close(sh.stop)
	sh.wg.Wait()
}

// Stats snapshots counters and recomputes the lag gauges.
func (sh *Shipper) Stats() Stats {
	st := Stats{
		ShippedBatches: sh.shippedBatches.Load(),
		ShippedEntries: sh.shippedEntries.Load(),
		ShippedBytes:   sh.shippedBytes.Load(),
		Heartbeats:     sh.heartbeats.Load(),
		Checkpoints:    sh.checkpoints.Load(),
		SendErrors:     sh.sendErrors.Load(),
		QuorumTimeouts: sh.quorumTimeouts.Load(),
		RegionsFenced:  sh.regionsFenced.Load(),
	}
	sh.mu.Lock()
	regions := make([]*regionRep, 0, len(sh.regions))
	for _, r := range sh.regions {
		regions = append(regions, r)
	}
	sh.mu.Unlock()
	for _, r := range regions {
		r.mu.Lock()
		st.RetainedEntries += int64(len(r.log))
		minAcked := r.lastSeq
		for _, sd := range r.senders {
			if sd.acked < minAcked {
				minAcked = sd.acked
			}
			if lag := int64(r.lastSeq - sd.acked); lag > st.LagEntries {
				st.LagEntries = lag
			}
		}
		if len(r.senders) > 0 && minAcked < r.lastSeq {
			from := 0
			if minAcked > r.base {
				from = int(minAcked - r.base)
			}
			if from < len(r.log) {
				for _, e := range r.log[from:] {
					st.LagBytes += entryBytes(e)
				}
			}
		}
		r.mu.Unlock()
	}
	return st
}

// RegionLag returns one region's worst follower lag in entries (the
// /debug/regions row value). Unknown regions report 0.
func (sh *Shipper) RegionLag(regionID string) int64 {
	sh.mu.Lock()
	r := sh.regions[regionID]
	sh.mu.Unlock()
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var worst int64
	for _, sd := range r.senders {
		if lag := int64(r.lastSeq - sd.acked); lag > worst {
			worst = lag
		}
	}
	return worst
}

// senderLoop drives one (region, follower) stream: anchor, ship, heartbeat,
// retry. All calls for the pair happen from this goroutine, so the follower
// sees a strictly ordered stream.
func (sh *Shipper) senderLoop(r *regionRep, sd *sender) {
	defer sh.wg.Done()
	defer func() {
		if sd.link != nil {
			sd.link.Close()
		}
	}()
	hb := time.NewTicker(sh.cfg.HeartbeatInterval)
	defer hb.Stop()
	for {
		progressed, alive := sh.senderPass(r, sd)
		if !alive {
			return
		}
		if progressed {
			continue // more work may be queued behind what we just sent
		}
		select {
		case <-sh.stop:
			return
		case <-sd.wake:
		case <-hb.C:
		}
	}
}

// senderPass performs at most one link call. It returns progressed=true when
// it did work and should immediately be called again, and alive=false when
// the sender was removed or the shipper stopped.
func (sh *Shipper) senderPass(r *regionRep, sd *sender) (progressed, alive bool) {
	select {
	case <-sh.stop:
		return false, false
	default:
	}
	r.mu.Lock()
	if sd.removed || r.dropped {
		r.mu.Unlock()
		return false, false
	}
	epoch := r.epoch
	ckpt := r.checkpoint
	lastSeq := r.lastSeq
	needAnchor := !sd.anchored || sd.ckptSent < ckpt
	var batch []kvstore.ReplEntry
	if !needAnchor && sd.acked < lastSeq {
		from := 0
		if sd.acked > r.base {
			from = int(sd.acked - r.base)
		}
		end := from + sh.cfg.MaxBatchEntries
		if end > len(r.log) {
			end = len(r.log)
		}
		if from < end {
			batch = append([]kvstore.ReplEntry(nil), r.log[from:end]...)
		}
	}
	heartbeat := !needAnchor && len(batch) == 0 &&
		time.Since(sd.lastSend) >= sh.cfg.HeartbeatInterval
	r.mu.Unlock()

	if !needAnchor && len(batch) == 0 && !heartbeat {
		return false, true
	}
	if sd.link == nil {
		link, err := sh.cfg.Dial(sd.target)
		if err != nil {
			sh.sendErrors.Add(1)
			sh.backoff()
			return false, true
		}
		sd.link = link
	}

	if needAnchor {
		err := sd.link.Checkpoint(r.id, epoch, ckpt)
		sd.lastSend = time.Now()
		if err != nil {
			sh.noteSendError(r, sd, err)
			return false, true
		}
		r.mu.Lock()
		sd.anchored = true
		sd.ckptSent = ckpt
		if sd.acked < ckpt {
			sd.acked = ckpt
		}
		r.evaluateWaitersLocked()
		r.mu.Unlock()
		return true, true
	}

	var safeTS kv.Timestamp
	if sh.cfg.SafeTS != nil {
		safeTS = sh.cfg.SafeTS()
	}
	got, err := sd.link.AppendEntries(r.id, epoch, batch, lastSeq, safeTS)
	sd.lastSend = time.Now()
	if err != nil {
		if errors.Is(err, kvstore.ErrReplicaGap) {
			// Rewind to the follower's reported position; if it fell
			// behind the prune point it must re-anchor first.
			r.mu.Lock()
			sd.acked = got
			if got < r.checkpoint {
				sd.anchored = false
			}
			r.mu.Unlock()
			return true, true
		}
		sh.noteSendError(r, sd, err)
		return false, true
	}
	if len(batch) > 0 {
		sh.shippedBatches.Add(1)
		sh.shippedEntries.Add(int64(len(batch)))
		for _, e := range batch {
			sh.shippedBytes.Add(entryBytes(e))
		}
	} else {
		sh.heartbeats.Add(1)
	}
	r.mu.Lock()
	if got > sd.acked {
		sd.acked = got
		r.evaluateWaitersLocked()
	}
	r.mu.Unlock()
	return len(batch) > 0, true
}

// noteSendError classifies a link failure: epoch fencing kills the region's
// stream; anything else backs off and retries through a fresh dial.
func (sh *Shipper) noteSendError(r *regionRep, sd *sender, err error) {
	if errors.Is(err, kvstore.ErrStaleEpoch) {
		r.mu.Lock()
		sh.fenceLocked(r)
		r.mu.Unlock()
		sh.backoff() // stay alive: a SetFollowers with a new epoch revives
		return
	}
	sh.sendErrors.Add(1)
	if sd.link != nil {
		sd.link.Close()
		sd.link = nil
	}
	sh.backoff()
}

func (sh *Shipper) backoff() {
	t := time.NewTimer(sh.cfg.RetryBackoff)
	defer t.Stop()
	select {
	case <-sh.stop:
	case <-t.C:
	}
}
