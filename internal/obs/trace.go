package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/metrics"
)

// DefaultSlowThreshold is the slow-op retention threshold when the tracer
// config leaves it zero.
const DefaultSlowThreshold = 25 * time.Millisecond

// DefaultSlowLogSize is the slow-op ring capacity when the config leaves it
// zero.
const DefaultSlowLogSize = 128

// TracerConfig parameterizes a Tracer.
type TracerConfig struct {
	// Enabled starts the tracer on. Tracing can be toggled at runtime
	// with SetEnabled; when off, StartSpan returns a nil span and the
	// whole path is a single atomic load — no clock reads, no
	// allocations.
	Enabled bool
	// SlowThreshold is the total-duration bar at or above which a
	// finished root span retains its full span tree in the slow-op ring.
	// Zero selects DefaultSlowThreshold; negative retains every traced
	// op (useful in tests and smoke checks).
	SlowThreshold time.Duration
	// SlowLogSize is the ring capacity (zero selects
	// DefaultSlowLogSize). The ring keeps the most recent entries.
	SlowLogSize int
}

// Tracer creates spans and collects their stage timings into registry
// histograms plus a ring buffer of slow operations. A nil *Tracer is valid
// and permanently disabled.
type Tracer struct {
	reg     *Registry
	enabled atomic.Bool
	slowNs  int64
	hists   sync.Map // stage name -> *metrics.Histogram

	ringMu   sync.Mutex
	ring     []*Span
	ringNext int
	ringLen  int
}

// NewTracer creates a tracer recording into reg.
func NewTracer(reg *Registry, cfg TracerConfig) *Tracer {
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = DefaultSlowLogSize
	}
	t := &Tracer{
		reg:    reg,
		slowNs: int64(cfg.SlowThreshold),
		ring:   make([]*Span, cfg.SlowLogSize),
	}
	t.enabled.Store(cfg.Enabled)
	return t
}

// SetEnabled toggles tracing at runtime.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether spans are currently being created.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// stageHist returns the registry histogram for a stage name, cached so the
// recording path skips the registry mutex.
func (t *Tracer) stageHist(name string) *metrics.Histogram {
	if h, ok := t.hists.Load(name); ok {
		return h.(*metrics.Histogram)
	}
	h := t.reg.Histogram(name)
	actual, _ := t.hists.LoadOrStore(name, h)
	return actual.(*metrics.Histogram)
}

type spanCtxKey struct{}

// NewSpan starts a root span with no context attachment — for operations
// whose lifetime is carried on a struct (a transaction) rather than a
// context. Returns nil when tracing is disabled; all *Span methods are
// nil-safe no-ops.
func (t *Tracer) NewSpan(op string) *Span {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Span{tracer: t, op: op, start: time.Now()}
}

// StartSpan starts a span and attaches it to the returned context. If the
// context already carries a span, the new span becomes its child. When
// tracing is disabled the original context and a nil span come back and
// nothing is allocated.
func (t *Tracer) StartSpan(ctx context.Context, op string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	s := &Span{tracer: t, op: op, start: time.Now()}
	if parent, ok := ctx.Value(spanCtxKey{}).(*Span); ok && parent != nil {
		s.parent = parent
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// FromContext returns the span attached to ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// ContextWithSpan attaches an existing span to ctx, so work handed to
// another goroutine (the asynchronous flush) keeps recording onto the
// originating operation's tree. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// Stage is one timed phase inside a span.
type Stage struct {
	Name   string
	Offset time.Duration // from span start; -1 when only a duration is known
	Dur    time.Duration
}

// Span is one traced operation. Stages and children may be recorded from
// multiple goroutines; a span in the slow-op ring may still be live (the
// asynchronous flush tail), and dumps snapshot whatever has landed so far.
type Span struct {
	tracer *Tracer
	op     string
	start  time.Time
	parent *Span

	mu       sync.Mutex
	stages   []Stage
	children []*Span
	dur      time.Duration
	done     bool
}

// Op returns the span's operation name ("" for nil).
func (s *Span) Op() string {
	if s == nil {
		return ""
	}
	return s.op
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// StartChild starts a child span without involving a context.
func (s *Span) StartChild(op string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tracer: s.tracer, op: op, start: time.Now(), parent: s}
	s.addChild(c)
	return c
}

// Stage records a stage that began at from and ends now. The stage name is
// also the registry histogram fed, so every traced operation contributes to
// the per-stage latency distributions even when the span itself is not
// retained as slow.
func (s *Span) Stage(name string, from time.Time) {
	if s == nil {
		return
	}
	s.StageEnd(name, from, time.Now())
}

// StageEnd records a stage with explicit bounds.
func (s *Span) StageEnd(name string, from, to time.Time) {
	if s == nil {
		return
	}
	d := to.Sub(from)
	s.tracer.stageHist(name).Record(d)
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Offset: from.Sub(s.start), Dur: d})
	s.mu.Unlock()
}

// StageDur records a stage known only by its accumulated duration (e.g.
// write buffering summed across many Put calls); its offset is recorded
// as -1.
func (s *Span) StageDur(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.tracer.stageHist(name).Record(d)
	s.mu.Lock()
	s.stages = append(s.stages, Stage{Name: name, Offset: -1, Dur: d})
	s.mu.Unlock()
}

// Finish ends the span, feeds the "<op>.total" histogram, and — for a root
// span whose total meets the slow threshold — retains the span tree in the
// slow-op ring. Finish is idempotent; an abandoned (never finished) span
// records nothing and is simply garbage collected.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.dur = d
	s.mu.Unlock()
	t := s.tracer
	t.stageHist(s.op + ".total").Record(d)
	if s.parent == nil && (t.slowNs < 0 || d >= time.Duration(t.slowNs)) {
		t.ringMu.Lock()
		t.ring[t.ringNext] = s
		t.ringNext = (t.ringNext + 1) % len(t.ring)
		if t.ringLen < len(t.ring) {
			t.ringLen++
		}
		t.ringMu.Unlock()
	}
}

// StageDump is the JSON form of one stage.
type StageDump struct {
	Name     string  `json:"name"`
	OffsetUs float64 `json:"offset_us"`
	DurUs    float64 `json:"dur_us"`
}

// SpanDump is the JSON form of a span tree, as served by /debug/slow.
type SpanDump struct {
	Op       string      `json:"op"`
	Start    time.Time   `json:"start"`
	DurUs    float64     `json:"dur_us"`
	Open     bool        `json:"open,omitempty"` // still unfinished at dump time
	Stages   []StageDump `json:"stages,omitempty"`
	Children []SpanDump  `json:"children,omitempty"`
}

func (s *Span) dump() SpanDump {
	s.mu.Lock()
	d := SpanDump{Op: s.op, Start: s.start, Open: !s.done}
	if s.done {
		d.DurUs = us(s.dur)
	} else {
		d.DurUs = us(time.Since(s.start))
	}
	stages := make([]Stage, len(s.stages))
	copy(stages, s.stages)
	children := make([]*Span, len(s.children))
	copy(children, s.children)
	s.mu.Unlock()
	for _, st := range stages {
		sd := StageDump{Name: st.Name, OffsetUs: us(st.Offset), DurUs: us(st.Dur)}
		if st.Offset < 0 {
			sd.OffsetUs = -1
		}
		d.Stages = append(d.Stages, sd)
	}
	for _, c := range children {
		d.Children = append(d.Children, c.dump())
	}
	return d
}

// SlowOps returns the retained slow operations, newest first.
func (t *Tracer) SlowOps() []SpanDump {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	spans := make([]*Span, 0, t.ringLen)
	for i := 0; i < t.ringLen; i++ {
		idx := (t.ringNext - 1 - i + len(t.ring)) % len(t.ring)
		spans = append(spans, t.ring[idx])
	}
	t.ringMu.Unlock()
	out := make([]SpanDump, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.dump())
	}
	return out
}
