package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("counter not shared by name")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("gauge not shared by name")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("histogram not shared by name")
	}
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-7)
	r.Histogram("h").Record(3 * time.Millisecond)
	r.CounterFunc("pulled", func() int64 { return 42 })

	s := r.Snapshot()
	if s.Counters["a"] != 2 || s.Counters["pulled"] != 42 {
		t.Errorf("counters: %+v", s.Counters)
	}
	if s.Gauges["g"] != -7 {
		t.Errorf("gauges: %+v", s.Gauges)
	}
	if h := s.Histograms["h"]; h.Count != 1 || h.MaxUs < 2000 {
		t.Errorf("histogram: %+v", h)
	}
}

func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Gauge("x").Set(1)
	r.Histogram("x").Record(time.Millisecond)
	r.CounterFunc("x", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
}

// TestRegistryConcurrent hammers get-or-create, recording, and snapshots
// from many goroutines; run under -race this is the registry's data-race
// guard.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := names[(g+i)%len(names)]
				r.Counter(n).Add(1)
				r.Gauge(n).Add(1)
				r.Histogram(n).Record(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = r.Snapshot()
					var b strings.Builder
					_ = r.WriteProm(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, v := range s.Counters {
		total += v
	}
	if total != 8*500 {
		t.Errorf("lost counter increments: %d", total)
	}
}

func TestCheckInvariants(t *testing.T) {
	prev := Snapshot{Counters: map[string]int64{"c": 5}}
	cur := Snapshot{
		Counters: map[string]int64{"c": 4, "new": 1},
		Gauges:   map[string]int64{"ok": 0, "bad": -2},
	}
	bad := CheckInvariants(prev, cur)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations, got %v", bad)
	}
	if !strings.Contains(bad[0], "c") || !strings.Contains(bad[1], "bad") {
		t.Errorf("violations: %v", bad)
	}
	if v := CheckInvariants(Snapshot{}, Snapshot{Counters: map[string]int64{"c": 1}}); len(v) != 0 {
		t.Errorf("zero prev must pass: %v", v)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("txmgr.commits").Add(3)
	r.Gauge("cluster.live_servers").Set(2)
	r.Histogram("commit.fsync").Record(2 * time.Millisecond)
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE txkv_txmgr_commits counter",
		"txkv_txmgr_commits 3",
		"# TYPE txkv_cluster_live_servers gauge",
		"txkv_cluster_live_servers 2",
		"# TYPE txkv_commit_fsync_seconds summary",
		`txkv_commit_fsync_seconds{quantile="0.5"}`,
		"txkv_commit_fsync_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("exposition must end with a newline")
	}
}

func TestSpanLifecycle(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Enabled: true, SlowThreshold: -1, SlowLogSize: 4})

	ctx, root := tr.StartSpan(context.Background(), "commit")
	if root == nil {
		t.Fatal("enabled tracer returned nil span")
	}
	start := time.Now()
	root.Stage("commit.validate", start)
	root.StageDur("commit.buffer", 5*time.Millisecond)

	_, child := tr.StartSpan(ctx, "get")
	if child == nil || child.parent != root {
		t.Fatal("child span not attached to parent")
	}
	child.Finish()
	root.Finish()
	root.Finish() // idempotent

	ops := tr.SlowOps()
	if len(ops) != 1 { // child is not a root: only the commit span retained
		t.Fatalf("slow ops: %d", len(ops))
	}
	d := ops[0]
	if d.Op != "commit" || d.Open || len(d.Stages) != 2 || len(d.Children) != 1 {
		t.Fatalf("dump: %+v", d)
	}
	if d.Stages[1].OffsetUs != -1 {
		t.Errorf("StageDur offset must dump as -1: %+v", d.Stages[1])
	}
	if d.Children[0].Op != "get" {
		t.Errorf("child dump: %+v", d.Children[0])
	}
	s := reg.Snapshot()
	for _, h := range []string{"commit.total", "get.total", "commit.validate", "commit.buffer"} {
		if s.Histograms[h].Count != 1 {
			t.Errorf("histogram %s not fed: %+v", h, s.Histograms[h])
		}
	}
}

func TestSpanRingWraparound(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerConfig{Enabled: true, SlowThreshold: -1, SlowLogSize: 3})
	for i := 0; i < 5; i++ {
		sp := tr.NewSpan("op")
		sp.Finish()
	}
	ops := tr.SlowOps()
	if len(ops) != 3 {
		t.Fatalf("ring kept %d, want 3", len(ops))
	}
}

func TestSlowThresholdFilters(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerConfig{Enabled: true, SlowThreshold: time.Hour})
	sp := tr.NewSpan("fast")
	sp.Finish()
	if got := tr.SlowOps(); len(got) != 0 {
		t.Fatalf("fast op retained: %v", got)
	}
}

func TestOpenSpanDumps(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerConfig{Enabled: true, SlowThreshold: -1})
	root := tr.NewSpan("commit")
	flush := root.StartChild("flush") // still running at dump time
	root.Finish()
	ops := tr.SlowOps()
	if len(ops) != 1 || len(ops[0].Children) != 1 || !ops[0].Children[0].Open {
		t.Fatalf("open child not dumped: %+v", ops)
	}
	flush.Finish()
	if ops = tr.SlowOps(); ops[0].Children[0].Open {
		t.Fatalf("finished child still open: %+v", ops)
	}
}

func TestDisabledTracerNilSafety(t *testing.T) {
	var nilTr *Tracer
	tr := NewTracer(NewRegistry(), TracerConfig{})
	for _, tc := range []*Tracer{nilTr, tr} {
		ctx, sp := tc.StartSpan(context.Background(), "op")
		if sp != nil {
			t.Fatal("disabled tracer returned a span")
		}
		if FromContext(ctx) != nil {
			t.Fatal("disabled tracer attached a span")
		}
		// The whole nil-span surface must be no-op safe.
		sp.Stage("s", time.Now())
		sp.StageEnd("s", time.Now(), time.Now())
		sp.StageDur("s", time.Second)
		sp.StartChild("c").Finish()
		sp.Finish()
		if sp.Op() != "" {
			t.Fatal("nil span op")
		}
		if tc.NewSpan("op") != nil {
			t.Fatal("disabled NewSpan")
		}
		if len(tc.SlowOps()) != 0 {
			t.Fatal("disabled SlowOps")
		}
	}
}

func TestSetEnabledToggles(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerConfig{})
	if tr.Enabled() {
		t.Fatal("tracer should start disabled")
	}
	tr.SetEnabled(true)
	if sp := tr.NewSpan("op"); sp == nil {
		t.Fatal("enabled tracer returned nil")
	}
	tr.SetEnabled(false)
	if sp := tr.NewSpan("op"); sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
}

// TestStartSpanDisabledZeroAlloc is the tracing-off fast-path guard: a
// disabled tracer's StartSpan must not allocate or read the clock.
func TestStartSpanDisabledZeroAlloc(t *testing.T) {
	tr := NewTracer(NewRegistry(), TracerConfig{})
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		ctx2, sp := tr.StartSpan(ctx, "get")
		if sp != nil || ctx2 != ctx {
			t.Fatal("disabled StartSpan misbehaved")
		}
	}); n != 0 {
		t.Fatalf("disabled StartSpan allocates: %v allocs/op", n)
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	tr := NewTracer(NewRegistry(), TracerConfig{})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, "get")
		sp.Finish()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := NewTracer(NewRegistry(), TracerConfig{Enabled: true, SlowThreshold: time.Hour})
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := tr.StartSpan(ctx, "get")
		sp.Finish()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkHistogramRecord(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Record(123 * time.Microsecond)
		}
	})
}
