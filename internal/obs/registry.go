// Package obs is the unified observability core: a named metric registry
// (counters, gauges, histograms) with atomic hot-path recording and
// Prometheus text export, plus context-propagated per-operation tracing
// with stage histograms and a ring-buffered slow-op log.
//
// The package depends only on the standard library and internal/metrics;
// every other layer (cluster, kvstore, txmgr, txlog, bench) wires into it
// rather than growing its own ad-hoc stats structs. One Registry belongs to
// one Cluster; names are flat dotted strings ("txmgr.commits",
// "commit.fsync") that the Prometheus exporter sanitizes.
package obs

import (
	"sort"
	"sync"
	"time"

	"txkv/internal/metrics"
)

// funcKind distinguishes pull-style metrics for export typing.
type funcKind uint8

const (
	funcCounter funcKind = iota
	funcGauge
)

type funcMetric struct {
	kind funcKind
	fn   func() int64
}

// Registry is a named metric registry. All methods are safe for concurrent
// use; Counter/Gauge/Histogram are get-or-create, so independent subsystems
// may ask for the same name and share the instrument. A nil *Registry is
// valid: it hands out live but unregistered instruments, so optional wiring
// needs no guards on the recording path.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*metrics.Counter
	gauges   map[string]*metrics.Gauge
	hists    map[string]*metrics.Histogram
	funcs    map[string]funcMetric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*metrics.Counter),
		gauges:   make(map[string]*metrics.Gauge),
		hists:    make(map[string]*metrics.Histogram),
		funcs:    make(map[string]funcMetric),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *metrics.Counter {
	if r == nil {
		return &metrics.Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &metrics.Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *metrics.Gauge {
	if r == nil {
		return &metrics.Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &metrics.Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram (nanosecond observations by
// convention), creating it on first use.
func (r *Registry) Histogram(name string) *metrics.Histogram {
	if r == nil {
		return &metrics.Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &metrics.Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers a pull-style counter: fn is called at snapshot and
// export time and must be safe for concurrent use. It lets subsystems that
// already keep cumulative counts (txlog.Stats, txmgr.Stats) feed the
// registry without double bookkeeping. Re-registering a name replaces it.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{kind: funcCounter, fn: fn}
}

// GaugeFunc registers a pull-style gauge (instantaneous level).
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = funcMetric{kind: funcGauge, fn: fn}
}

// HistStat is the snapshot form of one histogram.
type HistStat struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P95Us  float64 `json:"p95_us"`
	P99Us  float64 `json:"p99_us"`
	MaxUs  float64 `json:"max_us"`
}

// Snapshot is a point-in-time copy of every registered metric, including
// pull-style funcs folded into the counter/gauge maps.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters"`
	Gauges     map[string]int64    `json:"gauges"`
	Histograms map[string]HistStat `json:"histograms"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// Snapshot captures all current values. Func metrics are evaluated outside
// the registry lock, so they may call back into subsystems that themselves
// register metrics.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistStat{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*metrics.Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*metrics.Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*metrics.Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]funcMetric, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Load()
	}
	for k, h := range hists {
		s.Histograms[k] = HistStat{
			Count:  h.Count(),
			MeanUs: us(h.Mean()),
			P50Us:  us(h.Quantile(0.50)),
			P95Us:  us(h.Quantile(0.95)),
			P99Us:  us(h.Quantile(0.99)),
			MaxUs:  us(h.Max()),
		}
	}
	for k, f := range funcs {
		if f.kind == funcCounter {
			s.Counters[k] = f.fn()
		} else {
			s.Gauges[k] = f.fn()
		}
	}
	return s
}

// CheckInvariants compares two snapshots of the same registry and returns a
// description of every violated invariant: counters must be monotonically
// non-decreasing and no gauge may go negative. prev may be the zero
// Snapshot for a first check. Used by the chaos harness after each injected
// fault.
func CheckInvariants(prev, cur Snapshot) []string {
	var bad []string
	names := make([]string, 0, len(cur.Counters))
	for name := range cur.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if p, ok := prev.Counters[name]; ok && cur.Counters[name] < p {
			bad = append(bad, "counter went backwards: "+name)
		}
	}
	names = names[:0]
	for name := range cur.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if cur.Gauges[name] < 0 {
			bad = append(bad, "negative gauge: "+name)
		}
	}
	return bad
}
