package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"txkv/internal/metrics"
)

// promName sanitizes a dotted registry name into a Prometheus metric name:
// "txkv_" prefix, every character outside [a-zA-Z0-9_] replaced by '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("txkv_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func seconds(d time.Duration) float64 { return d.Seconds() }

// WriteProm renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as summaries with p50/p95/p99 quantiles plus _sum
// and _count (values in seconds). Output is sorted by name so scrapes are
// diffable.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := struct {
		counters map[string]int64
		gauges   map[string]int64
		hists    map[string]*metrics.Histogram
	}{map[string]int64{}, map[string]int64{}, map[string]*metrics.Histogram{}}

	r.mu.Lock()
	for k, c := range r.counters {
		snap.counters[k] = c.Load()
	}
	for k, g := range r.gauges {
		snap.gauges[k] = g.Load()
	}
	for k, h := range r.hists {
		snap.hists[k] = h
	}
	funcs := make(map[string]funcMetric, len(r.funcs))
	for k, f := range r.funcs {
		funcs[k] = f
	}
	r.mu.Unlock()

	for k, f := range funcs {
		if f.kind == funcCounter {
			snap.counters[k] = f.fn()
		} else {
			snap.gauges[k] = f.fn()
		}
	}

	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}

	names := make([]string, 0, len(snap.counters))
	for k := range snap.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if err := write("# TYPE %s counter\n%s %d\n", n, n, snap.counters[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range snap.gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := promName(k)
		if err := write("# TYPE %s gauge\n%s %d\n", n, n, snap.gauges[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range snap.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := snap.hists[k]
		n := promName(k) + "_seconds"
		if err := write("# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.50}, {"0.95", 0.95}, {"0.99", 0.99}} {
			if err := write("%s{quantile=%q} %g\n", n, q.label, seconds(h.Quantile(q.q))); err != nil {
				return err
			}
		}
		if err := write("%s_sum %g\n%s_count %d\n", n, float64(h.Sum())/1e9, n, h.Count()); err != nil {
			return err
		}
	}
	return nil
}
