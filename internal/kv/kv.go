// Package kv defines the key-value data model shared by every layer of the
// system: versioned cells, mutations, transactional write-sets, and their
// orderings. It corresponds to the logical data model of an HBase-like store
// (row, column, timestamp, value) specialized for the deferred-update
// transaction protocol of the paper: every mutation carries the commit
// timestamp of its transaction as its version, which makes replay idempotent.
package kv

import (
	"fmt"
	"strings"
)

// Timestamp is a logical timestamp issued by the transaction manager's
// oracle. Commit timestamps are strictly monotonically increasing and define
// the serialization order of transactions.
type Timestamp uint64

// Zero is the timestamp lower bound; no transaction ever commits at Zero.
const Zero Timestamp = 0

// MaxTimestamp is the upper bound used for "read latest" lookups.
const MaxTimestamp Timestamp = ^Timestamp(0)

// Key identifies a row within a table. Keys are ordered lexicographically;
// regions partition the key space into contiguous ranges.
type Key string

// Compare returns -1, 0, or +1 following lexicographic order.
func (k Key) Compare(o Key) int { return strings.Compare(string(k), string(o)) }

// Less reports whether k sorts strictly before o.
func (k Key) Less(o Key) bool { return k < o }

// Cell addresses one versioned value: a (row, column) coordinate plus the
// version timestamp.
type Cell struct {
	Row    Key
	Column string
	TS     Timestamp
}

// CellKey addresses one cell without a version: the unit of batched reads
// and the resume position of a cursor scan (a scan continues strictly after
// its CellKey in (row asc, column asc) order).
type CellKey struct {
	Row    Key
	Column string
}

// CompareCellKeys orders cell keys by (row asc, column asc).
func CompareCellKeys(a, b CellKey) int {
	if c := a.Row.Compare(b.Row); c != 0 {
		return c
	}
	return strings.Compare(a.Column, b.Column)
}

// CompareCells orders cells by (row asc, column asc, timestamp desc). The
// descending timestamp order means the newest version of a coordinate is
// encountered first during scans, matching memstore/storefile iteration.
func CompareCells(a, b Cell) int {
	if c := a.Row.Compare(b.Row); c != 0 {
		return c
	}
	if c := strings.Compare(a.Column, b.Column); c != 0 {
		return c
	}
	switch {
	case a.TS > b.TS:
		return -1
	case a.TS < b.TS:
		return 1
	default:
		return 0
	}
}

// KeyValue is one versioned cell with its payload. Tombstone marks a delete;
// a tombstone shadows older versions of the same coordinate at reads above
// its timestamp.
type KeyValue struct {
	Cell
	Value     []byte
	Tombstone bool
}

// HeapSize approximates the in-memory footprint of the entry, used for
// memstore flush accounting (mirrors HBase's heap-size bookkeeping).
func (e KeyValue) HeapSize() int {
	const overhead = 48 // struct, pointers, bookkeeping
	return overhead + len(e.Row) + len(e.Column) + len(e.Value)
}

func (e KeyValue) String() string {
	if e.Tombstone {
		return fmt.Sprintf("%s/%s@%d<del>", e.Row, e.Column, e.TS)
	}
	return fmt.Sprintf("%s/%s@%d=%q", e.Row, e.Column, e.TS, e.Value)
}

// Update is a single mutation inside a transaction's write-set. The table
// qualifies the coordinate; the version timestamp is assigned at commit time
// (the transaction's commit timestamp), making replay idempotent.
type Update struct {
	Table     string
	Row       Key
	Column    string
	Value     []byte
	Tombstone bool
}

// Coordinate returns the table-qualified row identity used for conflict
// detection (snapshot isolation validates at row granularity, like the
// paper's TM).
func (u Update) Coordinate() string { return u.Table + "/" + string(u.Row) }

// ToKeyValue stamps the update with the given version timestamp.
func (u Update) ToKeyValue(ts Timestamp) KeyValue {
	return KeyValue{
		Cell:      Cell{Row: u.Row, Column: u.Column, TS: ts},
		Value:     u.Value,
		Tombstone: u.Tombstone,
	}
}

// WriteSet is the complete set of mutations of one committed transaction,
// together with its identity: the issuing client, the transaction id, and
// the commit timestamp that versions every contained update.
type WriteSet struct {
	TxnID    uint64
	ClientID string
	CommitTS Timestamp
	Updates  []Update
}

// Clone returns a deep copy; write-sets cross goroutine boundaries (client →
// log → servers → recovery) and the style guides require copying slices at
// ownership boundaries.
func (w WriteSet) Clone() WriteSet {
	c := w
	c.Updates = make([]Update, len(w.Updates))
	for i, u := range w.Updates {
		c.Updates[i] = u
		c.Updates[i].Value = append([]byte(nil), u.Value...)
	}
	return c
}

// Tables returns the distinct set of tables touched by the write-set.
func (w WriteSet) Tables() []string {
	seen := make(map[string]struct{}, 2)
	var out []string
	for _, u := range w.Updates {
		if _, ok := seen[u.Table]; !ok {
			seen[u.Table] = struct{}{}
			out = append(out, u.Table)
		}
	}
	return out
}

// KeyRange is a half-open interval [Start, End) over row keys. An empty End
// means "unbounded above"; an empty Start means "unbounded below". Regions
// and scans use key ranges.
type KeyRange struct {
	Start Key
	End   Key
}

// Contains reports whether the row key falls inside the range.
func (r KeyRange) Contains(k Key) bool {
	if r.Start != "" && k < r.Start {
		return false
	}
	if r.End != "" && k >= r.End {
		return false
	}
	return true
}

// Overlaps reports whether two ranges intersect.
func (r KeyRange) Overlaps(o KeyRange) bool {
	if r.End != "" && o.Start != "" && r.End <= o.Start {
		return false
	}
	if o.End != "" && r.Start != "" && o.End <= r.Start {
		return false
	}
	return true
}

func (r KeyRange) String() string {
	start, end := string(r.Start), string(r.End)
	if start == "" {
		start = "-inf"
	}
	if end == "" {
		end = "+inf"
	}
	return fmt.Sprintf("[%s,%s)", start, end)
}
