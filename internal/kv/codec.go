package kv

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary codecs for KeyValue and WriteSet. The encodings are used by the
// HBase-like server WAL, the store-file format, and the transaction
// manager's recovery log, so they are deliberately simple, length-prefixed,
// and versioned by a leading format byte.

const (
	kvFormatV1 = 0x01
	wsFormatV1 = 0x11
)

// Encoding errors.
var (
	ErrCodecTruncated = errors.New("kv: truncated encoding")
	ErrCodecFormat    = errors.New("kv: unknown encoding format")
)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, v []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(v)))
	return append(b, v...)
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrCodecTruncated
	}
	return v, b[n:], nil
}

func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrCodecTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

func readBytes(b []byte) ([]byte, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrCodecTruncated
	}
	return append([]byte(nil), rest[:n]...), rest[n:], nil
}

// AppendKeyValue appends the binary encoding of e to b and returns the
// extended slice.
func AppendKeyValue(b []byte, e KeyValue) []byte {
	b = append(b, kvFormatV1)
	b = appendString(b, string(e.Row))
	b = appendString(b, e.Column)
	b = binary.AppendUvarint(b, uint64(e.TS))
	if e.Tombstone {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return appendBytes(b, e.Value)
}

// DecodeKeyValue decodes one KeyValue from the front of b, returning the
// entry and the remaining bytes.
func DecodeKeyValue(b []byte) (KeyValue, []byte, error) {
	var e KeyValue
	if len(b) == 0 {
		return e, nil, ErrCodecTruncated
	}
	if b[0] != kvFormatV1 {
		return e, nil, fmt.Errorf("%w: key-value format 0x%02x", ErrCodecFormat, b[0])
	}
	b = b[1:]
	row, b, err := readString(b)
	if err != nil {
		return e, nil, err
	}
	col, b, err := readString(b)
	if err != nil {
		return e, nil, err
	}
	ts, b, err := readUvarint(b)
	if err != nil {
		return e, nil, err
	}
	if len(b) == 0 {
		return e, nil, ErrCodecTruncated
	}
	tomb := b[0] == 1
	b = b[1:]
	val, b, err := readBytes(b)
	if err != nil {
		return e, nil, err
	}
	e = KeyValue{
		Cell:      Cell{Row: Key(row), Column: col, TS: Timestamp(ts)},
		Value:     val,
		Tombstone: tomb,
	}
	return e, b, nil
}

// EncodeWriteSet returns the binary encoding of w.
func EncodeWriteSet(w WriteSet) []byte {
	b := make([]byte, 0, 64+32*len(w.Updates))
	b = append(b, wsFormatV1)
	b = binary.AppendUvarint(b, w.TxnID)
	b = appendString(b, w.ClientID)
	b = binary.AppendUvarint(b, uint64(w.CommitTS))
	b = binary.AppendUvarint(b, uint64(len(w.Updates)))
	for _, u := range w.Updates {
		b = appendString(b, u.Table)
		b = appendString(b, string(u.Row))
		b = appendString(b, u.Column)
		if u.Tombstone {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendBytes(b, u.Value)
	}
	return b
}

// DecodeWriteSet decodes a write-set previously produced by EncodeWriteSet.
func DecodeWriteSet(b []byte) (WriteSet, error) {
	var w WriteSet
	if len(b) == 0 {
		return w, ErrCodecTruncated
	}
	if b[0] != wsFormatV1 {
		return w, fmt.Errorf("%w: write-set format 0x%02x", ErrCodecFormat, b[0])
	}
	b = b[1:]
	var err error
	if w.TxnID, b, err = readUvarint(b); err != nil {
		return w, err
	}
	if w.ClientID, b, err = readString(b); err != nil {
		return w, err
	}
	var ts uint64
	if ts, b, err = readUvarint(b); err != nil {
		return w, err
	}
	w.CommitTS = Timestamp(ts)
	var n uint64
	if n, b, err = readUvarint(b); err != nil {
		return w, err
	}
	if n > uint64(len(b)) { // each update takes >= 1 byte; cheap sanity bound
		return w, ErrCodecTruncated
	}
	w.Updates = make([]Update, 0, n)
	for i := uint64(0); i < n; i++ {
		var u Update
		var row string
		if u.Table, b, err = readString(b); err != nil {
			return w, err
		}
		if row, b, err = readString(b); err != nil {
			return w, err
		}
		u.Row = Key(row)
		if u.Column, b, err = readString(b); err != nil {
			return w, err
		}
		if len(b) == 0 {
			return w, ErrCodecTruncated
		}
		u.Tombstone = b[0] == 1
		b = b[1:]
		if u.Value, b, err = readBytes(b); err != nil {
			return w, err
		}
		w.Updates = append(w.Updates, u)
	}
	return w, nil
}
