package kv

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestKeyCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Key
		want int
	}{
		{"equal", "abc", "abc", 0},
		{"less", "abc", "abd", -1},
		{"greater", "b", "a", 1},
		{"prefix", "ab", "abc", -1},
		{"empty vs nonempty", "", "a", -1},
		{"both empty", "", "", 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Compare(tt.b); got != tt.want {
				t.Errorf("Compare(%q,%q) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
			if got := tt.a.Less(tt.b); got != (tt.want < 0) {
				t.Errorf("Less(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.want < 0)
			}
		})
	}
}

func TestCompareCells(t *testing.T) {
	tests := []struct {
		name string
		a, b Cell
		want int
	}{
		{"row order", Cell{Row: "a", Column: "c", TS: 1}, Cell{Row: "b", Column: "c", TS: 1}, -1},
		{"column order", Cell{Row: "a", Column: "a", TS: 1}, Cell{Row: "a", Column: "b", TS: 1}, -1},
		{"newer first", Cell{Row: "a", Column: "c", TS: 9}, Cell{Row: "a", Column: "c", TS: 1}, -1},
		{"older second", Cell{Row: "a", Column: "c", TS: 1}, Cell{Row: "a", Column: "c", TS: 9}, 1},
		{"identical", Cell{Row: "a", Column: "c", TS: 5}, Cell{Row: "a", Column: "c", TS: 5}, 0},
		{"row beats ts", Cell{Row: "a", Column: "c", TS: 1}, Cell{Row: "b", Column: "c", TS: 9}, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CompareCells(tt.a, tt.b); got != tt.want {
				t.Errorf("CompareCells(%v,%v) = %d, want %d", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestKeyRangeContains(t *testing.T) {
	tests := []struct {
		name string
		r    KeyRange
		k    Key
		want bool
	}{
		{"inside", KeyRange{Start: "b", End: "d"}, "c", true},
		{"at start", KeyRange{Start: "b", End: "d"}, "b", true},
		{"at end excluded", KeyRange{Start: "b", End: "d"}, "d", false},
		{"below", KeyRange{Start: "b", End: "d"}, "a", false},
		{"unbounded below", KeyRange{End: "d"}, "", true},
		{"unbounded above", KeyRange{Start: "b"}, "zzz", true},
		{"full range", KeyRange{}, "anything", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Contains(tt.k); got != tt.want {
				t.Errorf("%v.Contains(%q) = %v, want %v", tt.r, tt.k, got, tt.want)
			}
		})
	}
}

func TestKeyRangeOverlaps(t *testing.T) {
	tests := []struct {
		name string
		a, b KeyRange
		want bool
	}{
		{"disjoint", KeyRange{Start: "a", End: "b"}, KeyRange{Start: "b", End: "c"}, false},
		{"overlap", KeyRange{Start: "a", End: "c"}, KeyRange{Start: "b", End: "d"}, true},
		{"nested", KeyRange{Start: "a", End: "z"}, KeyRange{Start: "m", End: "n"}, true},
		{"full vs any", KeyRange{}, KeyRange{Start: "q", End: "r"}, true},
		{"touching reversed", KeyRange{Start: "b", End: "c"}, KeyRange{Start: "a", End: "b"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Overlaps(tt.b); got != tt.want {
				t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
			if got := tt.b.Overlaps(tt.a); got != tt.want {
				t.Errorf("overlap not symmetric for %v,%v", tt.a, tt.b)
			}
		})
	}
}

func TestWriteSetClone(t *testing.T) {
	w := WriteSet{
		TxnID:    7,
		ClientID: "c1",
		CommitTS: 42,
		Updates: []Update{
			{Table: "t", Row: "r1", Column: "c", Value: []byte("v1")},
			{Table: "t", Row: "r2", Column: "c", Value: []byte("v2"), Tombstone: true},
		},
	}
	c := w.Clone()
	if !reflect.DeepEqual(w, c) {
		t.Fatalf("clone differs: %+v vs %+v", w, c)
	}
	c.Updates[0].Value[0] = 'X'
	if w.Updates[0].Value[0] == 'X' {
		t.Fatal("clone shares value backing array with original")
	}
}

func TestWriteSetTables(t *testing.T) {
	w := WriteSet{Updates: []Update{
		{Table: "a", Row: "r"},
		{Table: "b", Row: "r"},
		{Table: "a", Row: "s"},
	}}
	got := w.Tables()
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Tables() = %v, want [a b]", got)
	}
}

func TestUpdateToKeyValue(t *testing.T) {
	u := Update{Table: "t", Row: "r", Column: "c", Value: []byte("v"), Tombstone: true}
	e := u.ToKeyValue(99)
	if e.TS != 99 || e.Row != "r" || e.Column != "c" || !e.Tombstone {
		t.Fatalf("ToKeyValue produced %+v", e)
	}
}

func TestKeyValueCodecRoundTrip(t *testing.T) {
	tests := []KeyValue{
		{Cell: Cell{Row: "row1", Column: "col", TS: 12}, Value: []byte("hello")},
		{Cell: Cell{Row: "", Column: "", TS: 0}, Value: nil},
		{Cell: Cell{Row: "r", Column: "c", TS: MaxTimestamp}, Value: []byte{0, 1, 2}, Tombstone: true},
	}
	for _, e := range tests {
		b := AppendKeyValue(nil, e)
		got, rest, err := DecodeKeyValue(b)
		if err != nil {
			t.Fatalf("decode %v: %v", e, err)
		}
		if len(rest) != 0 {
			t.Fatalf("decode %v left %d bytes", e, len(rest))
		}
		if got.Cell != e.Cell || got.Tombstone != e.Tombstone || string(got.Value) != string(e.Value) {
			t.Fatalf("round-trip mismatch: %v -> %v", e, got)
		}
	}
}

func TestKeyValueCodecSequence(t *testing.T) {
	var b []byte
	want := make([]KeyValue, 0, 10)
	for i := 0; i < 10; i++ {
		e := KeyValue{Cell: Cell{Row: Key(string(rune('a' + i))), Column: "c", TS: Timestamp(i)}, Value: []byte{byte(i)}}
		want = append(want, e)
		b = AppendKeyValue(b, e)
	}
	for i := 0; i < 10; i++ {
		var got KeyValue
		var err error
		got, b, err = DecodeKeyValue(b)
		if err != nil {
			t.Fatalf("decode #%d: %v", i, err)
		}
		if got.Cell != want[i].Cell {
			t.Fatalf("decode #%d = %v, want %v", i, got, want[i])
		}
	}
	if len(b) != 0 {
		t.Fatalf("trailing bytes: %d", len(b))
	}
}

func TestDecodeKeyValueErrors(t *testing.T) {
	if _, _, err := DecodeKeyValue(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, _, err := DecodeKeyValue([]byte{0xFF}); err == nil {
		t.Error("bad format byte should fail")
	}
	good := AppendKeyValue(nil, KeyValue{Cell: Cell{Row: "row", Column: "col", TS: 5}, Value: []byte("value")})
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeKeyValue(good[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestWriteSetCodecRoundTrip(t *testing.T) {
	w := WriteSet{
		TxnID:    123456,
		ClientID: "client-9",
		CommitTS: 789,
		Updates: []Update{
			{Table: "usertable", Row: "user1", Column: "field0", Value: []byte("abc")},
			{Table: "usertable", Row: "user2", Column: "field1", Tombstone: true},
			{Table: "other", Row: "", Column: "", Value: nil},
		},
	}
	got, err := DecodeWriteSet(EncodeWriteSet(w))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.TxnID != w.TxnID || got.ClientID != w.ClientID || got.CommitTS != w.CommitTS {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Updates) != len(w.Updates) {
		t.Fatalf("update count %d, want %d", len(got.Updates), len(w.Updates))
	}
	for i := range w.Updates {
		a, b := got.Updates[i], w.Updates[i]
		if a.Table != b.Table || a.Row != b.Row || a.Column != b.Column ||
			a.Tombstone != b.Tombstone || string(a.Value) != string(b.Value) {
			t.Errorf("update %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestDecodeWriteSetErrors(t *testing.T) {
	if _, err := DecodeWriteSet(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := DecodeWriteSet([]byte{0x42}); err == nil {
		t.Error("bad format should fail")
	}
	good := EncodeWriteSet(WriteSet{
		TxnID: 1, ClientID: "c", CommitTS: 2,
		Updates: []Update{{Table: "t", Row: "r", Column: "c", Value: []byte("v")}},
	})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeWriteSet(good[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestWriteSetCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(txnID uint64, client string, ts uint64, n uint8) bool {
		w := WriteSet{TxnID: txnID, ClientID: client, CommitTS: Timestamp(ts)}
		for i := 0; i < int(n%32); i++ {
			val := make([]byte, rng.Intn(64))
			rng.Read(val)
			w.Updates = append(w.Updates, Update{
				Table:     "t" + string(rune('a'+rng.Intn(3))),
				Row:       Key(val[:rng.Intn(len(val)+1)]),
				Column:    "f",
				Value:     val,
				Tombstone: rng.Intn(4) == 0,
			})
		}
		got, err := DecodeWriteSet(EncodeWriteSet(w))
		if err != nil {
			return false
		}
		if got.TxnID != w.TxnID || got.ClientID != w.ClientID || got.CommitTS != w.CommitTS ||
			len(got.Updates) != len(w.Updates) {
			return false
		}
		for i := range w.Updates {
			if got.Updates[i].Row != w.Updates[i].Row ||
				string(got.Updates[i].Value) != string(w.Updates[i].Value) ||
				got.Updates[i].Tombstone != w.Updates[i].Tombstone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyValueHeapSize(t *testing.T) {
	small := KeyValue{Cell: Cell{Row: "r", Column: "c"}}
	big := KeyValue{Cell: Cell{Row: "r", Column: "c"}, Value: make([]byte, 1000)}
	if small.HeapSize() <= 0 {
		t.Error("heap size must be positive")
	}
	if big.HeapSize() <= small.HeapSize() {
		t.Error("bigger value must report bigger heap size")
	}
}

func TestStrings(t *testing.T) {
	e := KeyValue{Cell: Cell{Row: "r", Column: "c", TS: 3}, Value: []byte("v")}
	if e.String() == "" {
		t.Error("String must be non-empty")
	}
	d := KeyValue{Cell: Cell{Row: "r", Column: "c", TS: 3}, Tombstone: true}
	if d.String() == e.String() {
		t.Error("tombstone must render differently")
	}
	if (KeyRange{}).String() != "[-inf,+inf)" {
		t.Errorf("KeyRange render: %s", (KeyRange{}).String())
	}
}
