// Package wal implements a framed, checksummed, append-only log record
// format layered on the distributed filesystem. It is used both by the
// HBase-like region servers (one write-ahead log per server) and, through
// the same framing, by the transaction manager's recovery log.
//
// Each record is framed as:
//
//	[4 bytes big-endian length][4 bytes CRC-32 (IEEE) of payload][payload]
//
// A reader tolerates a torn tail: a partially synced final record (length or
// checksum mismatch) terminates iteration cleanly rather than erroring,
// because a crash between Append and Sync legitimately truncates the log
// mid-record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"txkv/internal/dfs"
)

// ErrCorrupt reports a checksum failure in the interior of a log (not at the
// tail), which indicates real corruption rather than a torn write.
var ErrCorrupt = errors.New("wal: corrupt record")

const headerSize = 8

// AppendRecord appends one framed record to buf and returns the extension.
func AppendRecord(buf, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// DecodeAll parses every complete record in data. A torn tail (truncated
// header, truncated payload, or checksum mismatch on the final record) ends
// iteration without error; a checksum mismatch that is *not* at the tail
// returns ErrCorrupt along with the records decoded so far.
func DecodeAll(data []byte) ([][]byte, error) {
	var out [][]byte
	off := 0
	for off+headerSize <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		body := off + headerSize
		if body+n > len(data) {
			return out, nil // torn tail: payload truncated
		}
		payload := data[body : body+n]
		if crc32.ChecksumIEEE(payload) != sum {
			if body+n == len(data) {
				return out, nil // torn tail: last record half-synced
			}
			return out, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		out = append(out, append([]byte(nil), payload...))
		off = body + n
	}
	return out, nil
}

// Writer appends framed records to a DFS file. Appends buffer in memory (in
// the writing process) and become durable only on Sync, mirroring HBase's
// deferred-log-flush mode. Writer is safe for concurrent use.
type Writer struct {
	w dfs.FileWriter
}

// Create creates the log file at path on fs.
func Create(fs dfs.FileSystem, path string) (*Writer, error) {
	w, err := fs.CreateFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", path, err)
	}
	return &Writer{w: w}, nil
}

// Append buffers one record. Not durable until Sync.
func (w *Writer) Append(payload []byte) error {
	return w.w.Append(AppendRecord(nil, payload))
}

// Sync makes all buffered records durable on the DFS.
func (w *Writer) Sync() error { return w.w.Sync() }

// Buffered returns the number of unsynced bytes.
func (w *Writer) Buffered() int { return w.w.Buffered() }

// Close abandons any unsynced buffer and closes the file.
func (w *Writer) Close() error { return w.w.Close() }

// ReadAll reads and decodes every durable record of the log at path.
func ReadAll(fs dfs.FileSystem, path string) ([][]byte, error) {
	data, err := fs.ReadAll(path)
	if err != nil {
		return nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	recs, err := DecodeAll(data)
	if err != nil {
		return recs, fmt.Errorf("wal: decode %s: %w", path, err)
	}
	return recs, nil
}
