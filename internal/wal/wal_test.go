package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"txkv/internal/dfs"
)

func TestAppendDecodeRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), {}, []byte("three"), {0, 1, 2, 255}}
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

func TestDecodeTornTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, []byte("complete"))
	full := AppendRecord(buf, []byte("will-be-torn"))
	for cut := len(buf) + 1; cut < len(full); cut++ {
		got, err := DecodeAll(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(got) != 1 || string(got[0]) != "complete" {
			t.Fatalf("cut %d: got %d records", cut, len(got))
		}
	}
}

func TestDecodeTornChecksumTail(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, []byte("first"))
	buf = AppendRecord(buf, []byte("second"))
	// Corrupt the final payload byte: a torn sync of the last record.
	buf[len(buf)-1] ^= 0xFF
	got, err := DecodeAll(buf)
	if err != nil {
		t.Fatalf("tail corruption must not error: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("got %d records, want 1", len(got))
	}
}

func TestDecodeInteriorCorruption(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, []byte("aaaa"))
	mid := len(buf)
	buf = AppendRecord(buf, []byte("bbbb"))
	buf[mid-1] ^= 0xFF // corrupt first record's payload, not at tail
	_, err := DecodeAll(buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeEmptyAndGarbage(t *testing.T) {
	if got, err := DecodeAll(nil); err != nil || len(got) != 0 {
		t.Fatalf("nil input: %v, %v", got, err)
	}
	if got, err := DecodeAll([]byte{1, 2, 3}); err != nil || len(got) != 0 {
		t.Fatalf("short garbage: %v, %v", got, err)
	}
	// A header that claims a giant length is a torn tail, not a crash.
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], 1<<30)
	if got, err := DecodeAll(hdr[:]); err != nil || len(got) != 0 {
		t.Fatalf("giant length: %v, %v", got, err)
	}
}

func TestWriterSyncDurability(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	w, err := Create(fs, "/wal/log")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if w.Buffered() == 0 {
		t.Fatal("expected buffered bytes before crash")
	}
	_ = w.Close() // crash: unsynced record dropped

	recs, err := ReadAll(fs, "/wal/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "durable" {
		t.Fatalf("recovered %q", recs)
	}
}

func TestReadAllMissing(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	if _, err := ReadAll(fs, "/nope"); !errors.Is(err, dfs.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	if _, err := Create(fs, "/l"); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(fs, "/l"); !errors.Is(err, dfs.ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuickRoundTripWithRandomTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(n uint8) bool {
		count := int(n % 20)
		var buf []byte
		var payloads [][]byte
		for i := 0; i < count; i++ {
			p := make([]byte, rng.Intn(100))
			rng.Read(p)
			payloads = append(payloads, p)
			buf = AppendRecord(buf, p)
		}
		// Complete decode.
		got, err := DecodeAll(buf)
		if err != nil || len(got) != count {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		// Random truncation never errors and yields a prefix.
		if len(buf) > 0 {
			cut := rng.Intn(len(buf))
			part, err := DecodeAll(buf[:cut])
			if err != nil {
				return false
			}
			if len(part) > count {
				return false
			}
			for i := range part {
				if !bytes.Equal(part[i], payloads[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
