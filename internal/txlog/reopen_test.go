package txlog

import (
	"fmt"
	"testing"

	"txkv/internal/kv"
	"txkv/internal/storage"
)

func wsAt(ts kv.Timestamp, client string) kv.WriteSet {
	return kv.WriteSet{
		TxnID:    uint64(ts),
		ClientID: client,
		CommitTS: ts,
		Updates: []kv.Update{{
			Table: "t", Row: kv.Key(fmt.Sprintf("row-%04d", ts)), Column: "c",
			Value: []byte(fmt.Sprintf("v%d", ts)),
		}},
	}
}

func TestReopenRebuildsIndex(t *testing.T) {
	be, err := storage.NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for ts := kv.Timestamp(1); ts <= 50; ts++ {
		client := "alice"
		if ts%2 == 0 {
			client = "bob"
		}
		if err := l.Append(wsAt(ts, client)); err != nil {
			t.Fatalf("append %d: %v", ts, err)
		}
	}
	l.Close()

	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()

	if got := l2.LastTS(); got != 50 {
		t.Fatalf("LastTS after reopen = %d, want 50", got)
	}
	all, err := l2.After(0)
	if err != nil {
		t.Fatalf("After(0): %v", err)
	}
	if len(all) != 50 {
		t.Fatalf("replayed %d records, want 50", len(all))
	}
	for i, ws := range all {
		if ws.CommitTS != kv.Timestamp(i+1) {
			t.Fatalf("record %d has CommitTS %d, want %d", i, ws.CommitTS, i+1)
		}
		if len(ws.Updates) != 1 || string(ws.Updates[0].Value) != fmt.Sprintf("v%d", i+1) {
			t.Fatalf("record %d payload mismatch: %+v", i, ws.Updates)
		}
	}
	bob, err := l2.ByClientAfter("bob", 10)
	if err != nil {
		t.Fatalf("ByClientAfter: %v", err)
	}
	if len(bob) != 20 { // even timestamps 12..50
		t.Fatalf("bob records after 10 = %d, want 20", len(bob))
	}
	if st := l2.Stats(); st.ReplayedRecords != 50 || st.DurableRecords != 50 {
		t.Fatalf("stats after reopen: %+v", st)
	}
}

func TestReopenHonorsTruncationWatermark(t *testing.T) {
	be, err := storage.NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatalf("backend: %v", err)
	}
	l, err := Open(Config{Backend: be, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for ts := kv.Timestamp(1); ts <= 200; ts++ {
		if err := l.Append(wsAt(ts, "c")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	l.Truncate(120)
	segsAfter := l.Stats().Segments
	l.Close()

	l2, err := Open(Config{Backend: be, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.TruncatedBelow(); got != 120 {
		t.Fatalf("TruncatedBelow after reopen = %d, want 120", got)
	}
	if _, err := l2.After(100); err == nil {
		t.Fatal("After(100) should fail inside the truncated range")
	}
	rest, err := l2.After(120)
	if err != nil {
		t.Fatalf("After(120): %v", err)
	}
	if len(rest) != 80 || rest[0].CommitTS != 121 {
		t.Fatalf("retained = %d records starting at %d, want 80 starting at 121",
			len(rest), rest[0].CommitTS)
	}
	if got := l2.LastTS(); got != 200 {
		t.Fatalf("LastTS = %d, want 200", got)
	}
	if l2.Stats().Segments > segsAfter {
		t.Fatalf("reopen grew segments: %d > %d", l2.Stats().Segments, segsAfter)
	}
}

func TestTruncateReclaimsSegments(t *testing.T) {
	l, err := Open(Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for ts := kv.Timestamp(1); ts <= 400; ts++ {
		if err := l.Append(wsAt(ts, "c")); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	before := l.Stats().Segments
	if before < 3 {
		t.Fatalf("need several segments to test reclamation, got %d", before)
	}
	l.Truncate(390)
	after := l.Stats().Segments
	if after >= before {
		t.Fatalf("truncation reclaimed nothing: %d -> %d segments", before, after)
	}
	rest, err := l.After(390)
	if err != nil {
		t.Fatalf("After(390): %v", err)
	}
	if len(rest) != 10 {
		t.Fatalf("retained %d records, want 10", len(rest))
	}
}
