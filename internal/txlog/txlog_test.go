package txlog

import (
	"errors"
	"sync"
	"testing"
	"time"

	"txkv/internal/kv"
)

func ws(client string, ts kv.Timestamp) kv.WriteSet {
	return kv.WriteSet{
		TxnID:    uint64(ts),
		ClientID: client,
		CommitTS: ts,
		Updates:  []kv.Update{{Table: "t", Row: "r", Column: "c", Value: []byte("v")}},
	}
}

func TestAppendAndFetch(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 5; i++ {
		if err := l.Append(ws("c1", kv.Timestamp(i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := l.After(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].CommitTS != 3 || got[2].CommitTS != 5 {
		t.Fatalf("After(2) = %v", got)
	}
	all, err := l.After(0)
	if err != nil || len(all) != 5 {
		t.Fatalf("After(0): %d %v", len(all), err)
	}
	none, err := l.After(100)
	if err != nil || len(none) != 0 {
		t.Fatalf("After(100): %v %v", none, err)
	}
}

func TestByClientAfter(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	_ = l.Append(ws("a", 1))
	_ = l.Append(ws("b", 2))
	_ = l.Append(ws("a", 3))
	_ = l.Append(ws("a", 4))
	got, err := l.ByClientAfter("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].CommitTS != 3 || got[1].CommitTS != 4 {
		t.Fatalf("ByClientAfter = %+v", got)
	}
}

func TestGroupCommitBatches(t *testing.T) {
	l := New(Config{SyncLatency: 20 * time.Millisecond})
	defer l.Close()
	const n = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 1; i <= n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Append(ws("c", kv.Timestamp(i))); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	s := l.Stats()
	if s.TotalAppends != n {
		t.Fatalf("appends = %d", s.TotalAppends)
	}
	// With group commit, 16 concurrent appends need at most a few syncs,
	// not 16. Allow slack for scheduling, but far fewer than n.
	if s.Syncs >= n/2 {
		t.Fatalf("syncs = %d, group commit not batching", s.Syncs)
	}
	if elapsed > time.Duration(n)*20*time.Millisecond/2 {
		t.Fatalf("appends serialized: %v", elapsed)
	}
}

func TestTruncate(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		_ = l.Append(ws("c", kv.Timestamp(i)))
	}
	before := l.Stats()
	l.Truncate(4)
	s := l.Stats()
	if s.DurableRecords != 6 || s.TruncatedRecords != 4 {
		t.Fatalf("stats after truncate: %+v", s)
	}
	if s.DurableBytes >= before.DurableBytes {
		t.Fatal("bytes did not shrink")
	}
	got, err := l.After(4)
	if err != nil || len(got) != 6 {
		t.Fatalf("After(4): %d %v", len(got), err)
	}
	// Fetching below the truncation point errors.
	if _, err := l.After(3); !errors.Is(err, ErrTruncated) {
		t.Fatalf("After(3): %v", err)
	}
	// Truncating backwards is a no-op.
	l.Truncate(2)
	if got := l.Stats(); got.TruncatedBelow != 4 {
		t.Fatalf("backwards truncation applied: %+v", got)
	}
	// Idempotent truncate at same point.
	l.Truncate(4)
	if got := l.Stats(); got.DurableRecords != 6 {
		t.Fatalf("repeat truncation changed records: %+v", got)
	}
}

func TestFetchReturnsCopies(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	_ = l.Append(ws("c", 1))
	a, _ := l.After(0)
	a[0].Updates[0].Value[0] = 'X'
	b, _ := l.After(0)
	if b[0].Updates[0].Value[0] == 'X' {
		t.Fatal("fetch shares backing arrays with the log")
	}
}

func TestClosedLog(t *testing.T) {
	l := New(Config{})
	l.Close()
	if err := l.Append(ws("c", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	l.Close() // double close is safe
}

func TestCloseDrainsPending(t *testing.T) {
	l := New(Config{SyncLatency: 10 * time.Millisecond})
	done := l.Enqueue(ws("c", 1))
	l.Close()
	if err := <-done; err != nil {
		t.Fatalf("pending record dropped on close: %v", err)
	}
	if s := l.Stats(); s.DurableRecords != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
