package txlog

import (
	"errors"
	"sync"
	"testing"

	"txkv/internal/kv"
)

// The commit sink must observe every record exactly once, in commit order,
// before the committer's done channel fires.
func TestCommitSinkOrderedBeforeDone(t *testing.T) {
	l := New(Config{})
	defer l.Close()

	var (
		mu   sync.Mutex
		seen []kv.Timestamp
	)
	l.SetCommitSink(func(ws kv.WriteSet) {
		mu.Lock()
		seen = append(seen, ws.CommitTS)
		mu.Unlock()
	})

	const n = 50
	for i := 1; i <= n; i++ {
		if err := l.Append(ws("c", kv.Timestamp(i))); err != nil {
			t.Fatal(err)
		}
		// Append returned: the sink must already have seen this commit.
		mu.Lock()
		if len(seen) == 0 || seen[len(seen)-1] != kv.Timestamp(i) {
			mu.Unlock()
			t.Fatalf("commit %d durable but sink saw %v", i, seen)
		}
		mu.Unlock()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("sink saw %d records, want %d", len(seen), n)
	}
	for i, ts := range seen {
		if ts != kv.Timestamp(i+1) {
			t.Fatalf("sink order broken at %d: %v", i, seen)
		}
	}
}

func TestReadAfterPaginates(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		if err := l.Append(ws("c", kv.Timestamp(i))); err != nil {
			t.Fatal(err)
		}
	}

	var pos kv.Timestamp
	var got []kv.Timestamp
	for {
		page, err := l.ReadAfter(pos, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		if len(page) > 3 {
			t.Fatalf("page of %d exceeds max 3", len(page))
		}
		for _, ws := range page {
			got = append(got, ws.CommitTS)
		}
		pos = page[len(page)-1].CommitTS
	}
	if len(got) != 10 {
		t.Fatalf("paginated %d records, want 10: %v", len(got), got)
	}
	for i, ts := range got {
		if ts != kv.Timestamp(i+1) {
			t.Fatalf("pagination order broken: %v", got)
		}
	}

	// Unbounded form matches After.
	all, err := l.ReadAfter(0, 0)
	if err != nil || len(all) != 10 {
		t.Fatalf("ReadAfter(0, 0): %d %v", len(all), err)
	}
}

func TestReadAfterTruncated(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 6; i++ {
		_ = l.Append(ws("c", kv.Timestamp(i)))
	}
	l.Truncate(4)
	if _, err := l.ReadAfter(2, 10); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ReadAfter below watermark: %v, want ErrTruncated", err)
	}
	page, err := l.ReadAfter(4, 10)
	if err != nil || len(page) != 2 || page[0].CommitTS != 5 {
		t.Fatalf("ReadAfter(4) = %v, %v", page, err)
	}
}

// A pin clamps truncation at its position; advancing and releasing it lets
// later truncations through.
func TestPinClampsTruncation(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		_ = l.Append(ws("c", kv.Timestamp(i)))
	}

	pin := l.Pin(3)
	l.Truncate(8)
	if got := l.TruncatedBelow(); got != 3 {
		t.Fatalf("truncated to %d with pin at 3", got)
	}
	// Records above the pin survived.
	page, err := l.ReadAfter(3, 0)
	if err != nil || len(page) != 7 {
		t.Fatalf("pinned range: %d records, err %v", len(page), err)
	}

	// Pins never move backwards.
	pin.Advance(6)
	pin.Advance(2)
	if pin.Pos() != 6 {
		t.Fatalf("pin at %d after Advance(6), Advance(2)", pin.Pos())
	}
	l.Truncate(8)
	if got := l.TruncatedBelow(); got != 6 {
		t.Fatalf("truncated to %d with pin at 6", got)
	}

	pin.Release()
	pin.Release() // idempotent
	l.Truncate(8)
	if got := l.TruncatedBelow(); got != 8 {
		t.Fatalf("truncated to %d after release", got)
	}
}

func TestLowestPinWins(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		_ = l.Append(ws("c", kv.Timestamp(i)))
	}
	a := l.Pin(5)
	b := l.Pin(2)
	l.Truncate(9)
	if got := l.TruncatedBelow(); got != 2 {
		t.Fatalf("truncated to %d with pins at 5 and 2", got)
	}
	b.Release()
	l.Truncate(9)
	if got := l.TruncatedBelow(); got != 5 {
		t.Fatalf("truncated to %d with pin at 5", got)
	}
	a.Release()
}
