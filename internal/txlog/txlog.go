// Package txlog implements the transaction manager's recovery log: the
// append-only, commit-ordered log of committed write-sets that provides
// durability for the whole system (paper §2.2). It supports group commit —
// one simulated fsync covers every record that queued while the previous
// sync was in flight — plus the two retrieval operations the recovery
// manager needs (fetch a client's commits after a threshold, fetch all
// commits after a threshold) and truncation below the global persisted
// threshold T_P (the paper's global checkpoint).
//
// The paper's logging sub-component "has access to its own high performance
// stable storage"; the log is therefore modelled as reliable in-process
// storage whose sync cost is the configured latency. The log itself is
// assumed never lost (like the paper's TM).
package txlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"txkv/internal/kv"
)

// Log errors.
var (
	ErrClosed    = errors.New("txlog: log closed")
	ErrTruncated = errors.New("txlog: range already truncated")
)

// Config controls the log.
type Config struct {
	// SyncLatency is the duration of one group-commit fsync. All records
	// enqueued while a sync is in flight are covered by the next one.
	SyncLatency time.Duration
}

// Stats reports log counters used by the truncation experiment.
type Stats struct {
	DurableRecords   int   // records currently retained
	DurableBytes     int64 // approximate bytes currently retained
	TotalAppends     int64 // records ever appended
	TotalBytes       int64 // bytes ever appended
	Syncs            int64 // group-commit fsyncs performed
	TruncatedRecords int64 // records removed by truncation
	TruncatedBelow   kv.Timestamp
}

type pendingRec struct {
	ws   kv.WriteSet
	done chan error
}

// Log is the recovery log. Records must be enqueued in commit-timestamp
// order (the transaction manager enqueues under its commit mutex, which
// guarantees this); retrieval relies on that order.
type Log struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []pendingRec
	records   []kv.WriteSet // durable, ascending CommitTS
	truncated kv.Timestamp  // all records <= truncated have been dropped
	closed    bool
	stats     Stats

	wg sync.WaitGroup
}

// New creates and starts a log.
func New(cfg Config) *Log {
	l := &Log{cfg: cfg}
	l.cond = sync.NewCond(&l.mu)
	l.wg.Add(1)
	go l.syncLoop()
	return l
}

// Enqueue adds a write-set to the current group and returns a channel that
// yields the durability result exactly once. Callers must enqueue in
// commit-timestamp order.
func (l *Log) Enqueue(ws kv.WriteSet) <-chan error {
	done := make(chan error, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		done <- ErrClosed
		return done
	}
	l.pending = append(l.pending, pendingRec{ws: ws.Clone(), done: done})
	l.cond.Signal()
	return done
}

// Append enqueues ws and blocks until it is durable.
func (l *Log) Append(ws kv.WriteSet) error { return <-l.Enqueue(ws) }

func (l *Log) syncLoop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.pending) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = nil
		lat := l.cfg.SyncLatency
		l.mu.Unlock()

		if lat > 0 {
			time.Sleep(lat) // one fsync for the whole group
		}

		l.mu.Lock()
		for _, p := range batch {
			l.records = append(l.records, p.ws)
			sz := recordSize(p.ws)
			l.stats.DurableRecords++
			l.stats.DurableBytes += sz
			l.stats.TotalAppends++
			l.stats.TotalBytes += sz
		}
		l.stats.Syncs++
		l.mu.Unlock()
		for _, p := range batch {
			p.done <- nil
		}
	}
}

func recordSize(ws kv.WriteSet) int64 {
	return int64(len(kv.EncodeWriteSet(ws)))
}

// After returns every durable record with CommitTS > after, in ascending
// commit order. It fails if the requested range has been truncated away.
func (l *Log) After(after kv.Timestamp) ([]kv.WriteSet, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.truncated {
		return nil, fmt.Errorf("%w: need > %d, truncated at %d", ErrTruncated, after, l.truncated)
	}
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].CommitTS > after })
	out := make([]kv.WriteSet, 0, len(l.records)-i)
	for ; i < len(l.records); i++ {
		out = append(out, l.records[i].Clone())
	}
	return out, nil
}

// ByClientAfter returns every durable record of clientID with CommitTS >
// after, ascending.
func (l *Log) ByClientAfter(clientID string, after kv.Timestamp) ([]kv.WriteSet, error) {
	all, err := l.After(after)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, ws := range all {
		if ws.ClientID == clientID {
			out = append(out, ws)
		}
	}
	return out, nil
}

// Truncate drops every record with CommitTS <= upTo. The recovery manager
// calls this with the global persisted threshold T_P: those write-sets are
// durable in the data store itself and will never need replay (paper §3.2,
// "global checkpoint"). Truncate never un-truncates: a smaller upTo is a
// no-op.
func (l *Log) Truncate(upTo kv.Timestamp) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upTo <= l.truncated {
		return
	}
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].CommitTS > upTo })
	for j := 0; j < i; j++ {
		l.stats.DurableBytes -= recordSize(l.records[j])
	}
	l.stats.DurableRecords -= i
	l.stats.TruncatedRecords += int64(i)
	l.records = append([]kv.WriteSet(nil), l.records[i:]...)
	l.truncated = upTo
	l.stats.TruncatedBelow = upTo
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close drains pending records and stops the sync loop.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()
}
