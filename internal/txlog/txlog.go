// Package txlog implements the transaction manager's recovery log: the
// append-only, commit-ordered log of committed write-sets that provides
// durability for the whole system (paper §2.2). It supports group commit —
// one fsync covers every record that queued while the previous sync was in
// flight — plus the two retrieval operations the recovery manager needs
// (fetch a client's commits after a threshold, fetch all commits after a
// threshold) and truncation below the global persisted threshold T_P (the
// paper's global checkpoint).
//
// The paper's logging sub-component "has access to its own high performance
// stable storage"; that stable storage is an internal/storage segmented log.
// With the default in-memory backend the log behaves like the original
// simulation (reliable in-process storage whose sync cost is the configured
// latency); with a disk backend every committed write-set is durable on
// real files, the in-memory retrieval index is rebuilt by replaying the
// segments on Open, and truncation both journals a marker and reclaims
// whole segments below the retained point.
package txlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/storage"
)

// Log errors.
var (
	ErrClosed    = errors.New("txlog: log closed")
	ErrTruncated = errors.New("txlog: range already truncated")
)

// truncMarkerFormat tags a truncation-watermark record in the storage log.
// kv write-set encodings begin with 0x11; this byte must stay distinct.
const truncMarkerFormat = 0x12

// Config controls the log.
type Config struct {
	// SyncLatency is the duration of one group-commit fsync. All records
	// enqueued while a sync is in flight are covered by the next one.
	SyncLatency time.Duration
	// Backend is the stable storage holding the log's segments. Nil means
	// a fresh in-memory backend (the default for tests and benchmarks); a
	// storage.DiskBackend makes commits durable across process restarts.
	Backend storage.Backend
	// SegmentBytes caps a storage segment before rotation (0 = default).
	SegmentBytes int64
	// SyncHist, when set, receives the wall-clock duration of each
	// group-commit sync (storage append + fsync). Nil records nothing.
	SyncHist *metrics.Histogram
	// SyncBatchSize, when set, receives the record count of each
	// group-commit batch — how well commits coalesce under load. Nil
	// records nothing.
	SyncBatchSize *metrics.Histogram
}

// Stats reports log counters used by the truncation experiment.
type Stats struct {
	DurableRecords   int   // records currently retained
	DurableBytes     int64 // approximate bytes currently retained
	TotalAppends     int64 // records ever appended (since open)
	TotalBytes       int64 // bytes ever appended (since open)
	Syncs            int64 // group-commit fsyncs performed
	TruncatedRecords int64 // records removed by truncation
	TruncatedBelow   kv.Timestamp
	Segments         int // storage segments currently on the backend
	ReplayedRecords  int // records recovered from stable storage at Open
	ReplayedDropped  int // replayed records discarded (truncated/undecodable)
}

type pendingRec struct {
	ws   kv.WriteSet
	done chan error
}

// CommitSink receives every commit record exactly once, in commit-timestamp
// order, after the record is durable on stable storage and before the
// committing caller's done channel fires. The log calls it from its single
// sync goroutine, so implementations see a strictly serial, ordered feed —
// the hook the watch/CDC subsystem tails. Implementations must not block:
// anything slow belongs behind a bounded queue (a blocking sink would extend
// the group-commit critical path for every committer).
type CommitSink func(ws kv.WriteSet)

// Pin holds a retention position: Truncate will not drop records with
// CommitTS > the pin's position, so a historical reader (a catching-up
// watcher) can keep replaying from its position without the janitor
// reclaiming the range underneath it. Advance the pin as the reader
// progresses and Release it when done — an abandoned pin holds the log's
// disk space forever.
type Pin struct {
	l   *Log
	pos kv.Timestamp
}

// Pin registers a retention pin at pos: records with CommitTS > pos stay
// retrievable until the pin advances past them or is released.
func (l *Log) Pin(pos kv.Timestamp) *Pin {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := &Pin{l: l, pos: pos}
	if l.pins == nil {
		l.pins = make(map[*Pin]struct{})
	}
	l.pins[p] = struct{}{}
	return p
}

// Advance moves the pin forward (a smaller pos is a no-op: pins never move
// backwards, mirroring Truncate).
func (p *Pin) Advance(pos kv.Timestamp) {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	if pos > p.pos {
		p.pos = pos
	}
}

// Pos returns the pin's current position.
func (p *Pin) Pos() kv.Timestamp {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	return p.pos
}

// Release drops the pin. Idempotent.
func (p *Pin) Release() {
	p.l.mu.Lock()
	defer p.l.mu.Unlock()
	delete(p.l.pins, p)
}

// minPinLocked returns the lowest pinned position (or max if none). Caller
// holds l.mu.
func (l *Log) minPinLocked() (kv.Timestamp, bool) {
	var (
		low kv.Timestamp
		any bool
	)
	for p := range l.pins {
		if !any || p.pos < low {
			low, any = p.pos, true
		}
	}
	return low, any
}

// logRec is one durable, indexed commit record and the storage segment
// holding its bytes (used to reclaim whole segments on truncation).
type logRec struct {
	ws  kv.WriteSet
	seg uint64
}

// Log is the recovery log. Records must be enqueued in commit-timestamp
// order (the transaction manager enqueues under its commit mutex, which
// guarantees this); retrieval relies on that order.
type Log struct {
	cfg   Config
	store *storage.Log

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []pendingRec
	records   []logRec     // durable, ascending CommitTS
	truncated kv.Timestamp // all records <= truncated have been dropped
	lastTS    kv.Timestamp // highest CommitTS ever observed (incl. truncated)
	closed    bool
	stats     Stats
	pins      map[*Pin]struct{} // active retention pins (watchers)
	sink      CommitSink        // durable-ordered commit hook (nil = none)

	// ioMu spans each batch's storage append plus its index insertion, and
	// Truncate's marker append plus segment reclamation. Without it a
	// truncation could observe an empty index while a durable batch is
	// still between AppendBatch and the index, and reclaim the very
	// segment holding that batch's records. Always acquired before mu.
	ioMu sync.Mutex

	// encoded carries encoder-prepared batches to the sync loop. The
	// buffer of one lets the encoder serialize batch N+1 while the fsync
	// of batch N is still in flight, so payload encoding never extends the
	// group-commit critical path.
	encoded chan encodedBatch

	wg sync.WaitGroup
}

// encodedBatch is one group of records with their payloads already
// serialized, ready for a single storage append + fsync.
type encodedBatch struct {
	recs     []pendingRec
	payloads [][]byte
}

// Open creates or resumes a log on cfg.Backend. Resuming replays the
// storage segments to rebuild the in-memory retrieval index: commit records
// re-populate the index in commit order and truncation markers re-establish
// the watermark, so a reopened log serves After/ByClientAfter exactly as if
// the process had never stopped.
func Open(cfg Config) (*Log, error) {
	store, err := storage.Open(storage.Config{
		Backend:      cfg.Backend,
		SegmentBytes: cfg.SegmentBytes,
		SyncDelay:    cfg.SyncLatency,
	})
	if err != nil {
		return nil, fmt.Errorf("txlog: open storage: %w", err)
	}
	l := &Log{cfg: cfg, store: store}
	l.cond = sync.NewCond(&l.mu)

	err = store.Replay(func(pos storage.RecordPos, payload []byte) error {
		if len(payload) == 0 {
			return nil
		}
		if payload[0] == truncMarkerFormat {
			ts, err := decodeTruncMarker(payload)
			if err != nil {
				l.stats.ReplayedDropped++
				return nil
			}
			if ts > l.truncated {
				l.truncated = ts
			}
			if ts > l.lastTS {
				l.lastTS = ts
			}
			return nil
		}
		ws, err := kv.DecodeWriteSet(payload)
		if err != nil {
			l.stats.ReplayedDropped++ // foreign or damaged record: skip
			return nil
		}
		l.records = append(l.records, logRec{ws: ws, seg: pos.Segment})
		if ws.CommitTS > l.lastTS {
			l.lastTS = ws.CommitTS
		}
		l.stats.ReplayedRecords++
		return nil
	})
	if err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("txlog: replay: %w", err)
	}

	// Apply the recovered watermark: markers can trail the records they
	// cover, so the drop happens after the full replay.
	if l.truncated > 0 {
		i := sort.Search(len(l.records), func(i int) bool {
			return l.records[i].ws.CommitTS > l.truncated
		})
		l.stats.ReplayedDropped += i
		l.records = append([]logRec(nil), l.records[i:]...)
	}
	for _, r := range l.records {
		sz := recordSize(r.ws)
		l.stats.DurableRecords++
		l.stats.DurableBytes += sz
	}
	l.stats.TruncatedBelow = l.truncated

	l.encoded = make(chan encodedBatch, 1)
	l.wg.Add(2)
	go l.encodeLoop()
	go l.syncLoop()
	return l, nil
}

// New creates and starts a log. It panics if the backend cannot be opened —
// use Open to handle resumable (disk) backends gracefully.
func New(cfg Config) *Log {
	l, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// SetCommitSink installs the durable-ordered commit hook (see CommitSink).
// Install before the first commit is enqueued: the sink is read by the sync
// loop without further synchronization beyond the log mutex, and records
// that became durable before installation are not replayed into it.
func (l *Log) SetCommitSink(sink CommitSink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// Enqueue adds a write-set to the current group and returns a channel that
// yields the durability result exactly once. Callers must enqueue in
// commit-timestamp order.
func (l *Log) Enqueue(ws kv.WriteSet) <-chan error {
	done := make(chan error, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		done <- ErrClosed
		return done
	}
	l.pending = append(l.pending, pendingRec{ws: ws.Clone(), done: done})
	l.cond.Signal()
	return done
}

// Append enqueues ws and blocks until it is durable.
func (l *Log) Append(ws kv.WriteSet) error { return <-l.Enqueue(ws) }

// encodeLoop drains pending records, serializes their payloads, and hands
// complete batches to the sync loop. Encoding runs outside every lock and —
// thanks to the channel buffer — concurrently with the previous batch's
// fsync, so serialization cost overlaps stable-storage latency instead of
// adding to it.
func (l *Log) encodeLoop() {
	defer l.wg.Done()
	defer close(l.encoded)
	for {
		l.mu.Lock()
		for len(l.pending) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.pending) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		batch := l.pending
		l.pending = nil
		l.mu.Unlock()

		payloads := make([][]byte, len(batch))
		for i, p := range batch {
			payloads[i] = kv.EncodeWriteSet(p.ws)
		}
		l.encoded <- encodedBatch{recs: batch, payloads: payloads}
	}
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	for batch := range l.encoded {
		// One storage group-commit (single fsync + the configured sync
		// latency) covers the whole batch.
		var syncStart time.Time
		if l.cfg.SyncHist != nil {
			syncStart = time.Now()
		}
		l.ioMu.Lock()
		positions, err := l.store.AppendBatch(batch.payloads)

		l.mu.Lock()
		sink := l.sink
		if err == nil {
			for i, p := range batch.recs {
				l.records = append(l.records, logRec{ws: p.ws, seg: positions[i].Segment})
				if p.ws.CommitTS > l.lastTS {
					l.lastTS = p.ws.CommitTS
				}
				sz := int64(len(batch.payloads[i]))
				l.stats.DurableRecords++
				l.stats.DurableBytes += sz
				l.stats.TotalAppends++
				l.stats.TotalBytes += sz
			}
			l.stats.Syncs++
		}
		l.mu.Unlock()
		l.ioMu.Unlock()
		if l.cfg.SyncHist != nil {
			l.cfg.SyncHist.Record(time.Since(syncStart))
		}
		if l.cfg.SyncBatchSize != nil {
			l.cfg.SyncBatchSize.RecordValue(int64(len(batch.recs)))
		}
		// Publish durable commits to the sink before releasing the waiters:
		// once a committer's Commit returns, its change event is already in
		// every live watcher's queue, so a watcher subscribed before the
		// commit can never miss it. Still strictly commit-ordered — this is
		// the log's single sync goroutine.
		if err == nil && sink != nil {
			for _, p := range batch.recs {
				sink(p.ws)
			}
		}
		for _, p := range batch.recs {
			p.done <- err
		}
	}
}

func recordSize(ws kv.WriteSet) int64 {
	return int64(len(kv.EncodeWriteSet(ws)))
}

// After returns every durable record with CommitTS > after, in ascending
// commit order. It fails if the requested range has been truncated away.
func (l *Log) After(after kv.Timestamp) ([]kv.WriteSet, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.truncated {
		return nil, fmt.Errorf("%w: need > %d, truncated at %d", ErrTruncated, after, l.truncated)
	}
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].ws.CommitTS > after })
	out := make([]kv.WriteSet, 0, len(l.records)-i)
	for ; i < len(l.records); i++ {
		out = append(out, l.records[i].ws.Clone())
	}
	return out, nil
}

// ReadAfter returns up to max durable records with CommitTS > after, in
// ascending commit order — the bounded, positioned form of After used by
// catching-up watchers: each call binary-searches the index by timestamp, so
// the reader holds no log-side state between pulls (the same stateless-
// continuation idiom as the scanner). max <= 0 means no bound. It fails with
// ErrTruncated if the range right after `after` has been truncated away.
func (l *Log) ReadAfter(after kv.Timestamp, max int) ([]kv.WriteSet, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < l.truncated {
		return nil, fmt.Errorf("%w: need > %d, truncated at %d", ErrTruncated, after, l.truncated)
	}
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].ws.CommitTS > after })
	n := len(l.records) - i
	if max > 0 && n > max {
		n = max
	}
	out := make([]kv.WriteSet, 0, n)
	for ; len(out) < n; i++ {
		out = append(out, l.records[i].ws.Clone())
	}
	return out, nil
}

// ByClientAfter returns every durable record of clientID with CommitTS >
// after, ascending.
func (l *Log) ByClientAfter(clientID string, after kv.Timestamp) ([]kv.WriteSet, error) {
	all, err := l.After(after)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, ws := range all {
		if ws.ClientID == clientID {
			out = append(out, ws)
		}
	}
	return out, nil
}

// Retained returns every durable record still in the log, ascending — the
// replay set a reopened cluster applies to its stores.
func (l *Log) Retained() []kv.WriteSet {
	l.mu.Lock()
	after := l.truncated
	l.mu.Unlock()
	out, err := l.After(after)
	if err != nil {
		return nil // truncation raced forward; the new range needs no replay
	}
	return out
}

// LastTS returns the highest commit timestamp the log has ever observed,
// including truncated records. A reopened transaction manager seeds its
// timestamp oracle here so fresh commits sort after every recovered one.
func (l *Log) LastTS() kv.Timestamp {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastTS
}

// TruncatedBelow returns the current truncation watermark.
func (l *Log) TruncatedBelow() kv.Timestamp {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

func encodeTruncMarker(ts kv.Timestamp) []byte {
	return binary.AppendUvarint([]byte{truncMarkerFormat}, uint64(ts))
}

func decodeTruncMarker(payload []byte) (kv.Timestamp, error) {
	if len(payload) < 2 || payload[0] != truncMarkerFormat {
		return 0, errors.New("txlog: bad truncation marker")
	}
	v, n := binary.Uvarint(payload[1:])
	if n <= 0 {
		return 0, errors.New("txlog: truncated truncation marker")
	}
	return kv.Timestamp(v), nil
}

// Truncate drops every record with CommitTS <= upTo. The recovery manager
// calls this with the global persisted threshold T_P: those write-sets are
// durable in the data store itself and will never need replay (paper §3.2,
// "global checkpoint"). Truncate never un-truncates: a smaller upTo is a
// no-op. The watermark is journaled to stable storage (so a reopened log
// does not resurrect truncated records) and storage segments wholly below
// the retained point are physically reclaimed.
// Active retention pins clamp the drop: records above the lowest pinned
// position stay retrievable for the historical readers holding the pins,
// exactly as SafeSnapshot pins clamp the version-GC horizon.
func (l *Log) Truncate(upTo kv.Timestamp) {
	l.mu.Lock()
	if min, ok := l.minPinLocked(); ok && upTo > min {
		upTo = min
	}
	if l.closed || upTo <= l.truncated {
		l.mu.Unlock()
		return
	}
	i := sort.Search(len(l.records), func(i int) bool { return l.records[i].ws.CommitTS > upTo })
	for j := 0; j < i; j++ {
		l.stats.DurableBytes -= recordSize(l.records[j].ws)
	}
	l.stats.DurableRecords -= i
	l.stats.TruncatedRecords += int64(i)
	l.records = append([]logRec(nil), l.records[i:]...)
	l.truncated = upTo
	if upTo > l.lastTS {
		l.lastTS = upTo
	}
	l.stats.TruncatedBelow = upTo
	l.mu.Unlock()

	// ioMu: no commit batch may sit between its storage append and its
	// index insertion while segments are chosen for reclamation, or the
	// choice below could drop the segment holding that batch.
	l.ioMu.Lock()
	defer l.ioMu.Unlock()

	// Journal the watermark before reclaiming segments: if the process
	// dies between the two, replay sees the marker and still drops the
	// truncated range.
	if _, err := l.store.AppendBatch([][]byte{encodeTruncMarker(upTo)}); err != nil {
		return // backend failing; leave segments in place
	}
	// Everything below the first retained record's segment is reclaimable;
	// with nothing retained (and no batch in flight, per ioMu), everything
	// below the active segment is.
	l.mu.Lock()
	keepSeg := l.store.ActiveSegment()
	if len(l.records) > 0 {
		keepSeg = l.records[0].seg
	}
	l.mu.Unlock()
	_, _, _ = l.store.DropSegmentsBefore(keepSeg)
}

// Stats returns a snapshot of the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = l.store.Stats().Segments
	return s
}

// Close drains pending records, stops the sync loop, and releases the
// stable storage.
func (l *Log) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()
	_ = l.store.Close()
}
