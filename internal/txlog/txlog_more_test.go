package txlog

import (
	"sync"
	"testing"
	"time"

	"txkv/internal/kv"
)

// TestEnqueueOrderPreserved: records become durable in enqueue order even
// across group-commit batches.
func TestEnqueueOrderPreserved(t *testing.T) {
	l := New(Config{SyncLatency: time.Millisecond})
	defer l.Close()
	const n = 100
	waiters := make([]<-chan error, 0, n)
	for i := 1; i <= n; i++ {
		waiters = append(waiters, l.Enqueue(ws("c", kv.Timestamp(i))))
	}
	for i, w := range waiters {
		if err := <-w; err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	recs, err := l.After(0)
	if err != nil || len(recs) != n {
		t.Fatalf("After: %d %v", len(recs), err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].CommitTS <= recs[i-1].CommitTS {
			t.Fatalf("order broken at %d: %d then %d", i, recs[i-1].CommitTS, recs[i].CommitTS)
		}
	}
}

// TestTruncateConcurrentWithAppends: truncation under load never corrupts
// retrieval ordering or lose untruncated records.
func TestTruncateConcurrentWithAppends(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 500; i++ {
			if err := l.Append(ws("c", kv.Timestamp(i))); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()
	for j := 0; j < 50; j++ {
		l.Truncate(kv.Timestamp(j * 5))
		time.Sleep(time.Millisecond / 2)
	}
	wg.Wait()
	// Everything above the last truncation point must be intact and
	// ordered.
	last := l.Stats().TruncatedBelow
	recs, err := l.After(last)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 - int(last)
	if len(recs) != want {
		t.Fatalf("retained %d records after %d, want %d", len(recs), last, want)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].CommitTS <= recs[i-1].CommitTS {
			t.Fatal("order broken after concurrent truncation")
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	l := New(Config{})
	defer l.Close()
	for i := 1; i <= 4; i++ {
		_ = l.Append(ws("c", kv.Timestamp(i)))
	}
	s := l.Stats()
	if s.TotalAppends != 4 || s.DurableRecords != 4 || s.TotalBytes <= 0 {
		t.Fatalf("stats: %+v", s)
	}
	l.Truncate(2)
	s2 := l.Stats()
	if s2.DurableRecords != 2 || s2.TotalAppends != 4 {
		t.Fatalf("post-truncate stats: %+v", s2)
	}
	if s2.DurableBytes >= s.DurableBytes || s2.TotalBytes != s.TotalBytes {
		t.Fatalf("byte accounting: %+v vs %+v", s, s2)
	}
}
