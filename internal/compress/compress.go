// Package compress provides the per-block codec layer of store-file format
// v2: a tiny codec interface, a pass-through None codec, and a hand-rolled
// stdlib-only implementation of the snappy block format. Store files pick a
// codec per file at write time; every block carries its codec ID on disk so
// a block that did not shrink is stored raw (the writer's fallback) without
// ambiguity at read time.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec IDs, stable on-disk values (one byte precedes every v2 block).
const (
	IDNone   byte = 0
	IDSnappy byte = 1
)

// Errors.
var (
	// ErrCorrupt reports undecodable compressed input.
	ErrCorrupt = errors.New("compress: corrupt input")
	// ErrUnknownCodec reports an unregistered codec ID or name.
	ErrUnknownCodec = errors.New("compress: unknown codec")
)

// Codec encodes and decodes one block. Implementations are stateless and
// safe for concurrent use.
type Codec interface {
	// ID is the codec's stable one-byte on-disk identifier.
	ID() byte
	// Name is the codec's human-readable name ("none", "snappy").
	Name() string
	// Encode appends the encoded form of src to dst and returns the
	// result. Encoding never fails; it may expand incompressible input.
	Encode(dst, src []byte) []byte
	// Decode appends the decoded form of src to dst and returns the
	// result, or ErrCorrupt-wrapped failure for malformed input.
	Decode(dst, src []byte) ([]byte, error)
}

// None is the identity codec.
type None struct{}

func (None) ID() byte     { return IDNone }
func (None) Name() string { return "none" }

func (None) Encode(dst, src []byte) []byte { return append(dst, src...) }

func (None) Decode(dst, src []byte) ([]byte, error) { return append(dst, src...), nil }

// Snappy implements the snappy block format (varint uncompressed length
// followed by a literal/copy tag stream) with a greedy hash-table matcher.
// The encoder emits only literal and 2-byte-offset copy elements; the
// decoder handles every element the format defines, so any conforming
// snappy stream decodes.
type Snappy struct{}

func (Snappy) ID() byte     { return IDSnappy }
func (Snappy) Name() string { return "snappy" }

// ForID resolves a codec from its on-disk ID.
func ForID(id byte) (Codec, error) {
	switch id {
	case IDNone:
		return None{}, nil
	case IDSnappy:
		return Snappy{}, nil
	}
	return nil, fmt.Errorf("%w: id %d", ErrUnknownCodec, id)
}

// ForName resolves a codec from its name ("" means the default, snappy).
func ForName(name string) (Codec, error) {
	switch name {
	case "none":
		return None{}, nil
	case "snappy", "":
		return Snappy{}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownCodec, name)
}

// Snappy element tags (low two bits of the first element byte).
const (
	tagLiteral = 0x00
	tagCopy1   = 0x01
	tagCopy2   = 0x02
	tagCopy4   = 0x03
)

const (
	// maxBlockLen bounds the uncompressed length Decode will accept: a
	// corrupted preamble must not make the decoder attempt a huge
	// allocation. Store-file blocks are ~4 KiB; 16 MiB is generous.
	maxBlockLen = 16 << 20

	// hashTableBits sizes the encoder's match table.
	hashTableBits = 14
	hashTableSize = 1 << hashTableBits

	// minMatch is the shortest match worth a copy element.
	minMatch = 4
)

// hash4 hashes the 4 bytes at src[i:] into the match table index space.
func hash4(u uint32) uint32 {
	return (u * 0x1e35a7bd) >> (32 - hashTableBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// Encode appends the snappy encoding of src to dst.
func (Snappy) Encode(dst, src []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	if len(src) < minMatch {
		return emitLiteral(dst, src)
	}

	var table [hashTableSize]int32 // candidate position+1 per hash (0 = empty)
	lit := 0                       // start of the pending literal run
	i := 0
	limit := len(src) - minMatch // last position a match can start at
	for i <= limit {
		h := hash4(load32(src, i))
		cand := int(table[h]) - 1
		table[h] = int32(i + 1)
		// A match must be close enough for a 2-byte-offset copy element.
		if cand < 0 || i-cand > 0xffff || load32(src, cand) != load32(src, i) {
			i++
			continue
		}
		// Extend the match as far as it goes.
		length := minMatch
		for i+length < len(src) && src[cand+length] == src[i+length] {
			length++
		}
		dst = emitLiteral(dst, src[lit:i])
		dst = emitCopy(dst, i-cand, length)
		i += length
		lit = i
	}
	return emitLiteral(dst, src[lit:])
}

// emitLiteral appends one literal element (or nothing for an empty run).
func emitLiteral(dst, lit []byte) []byte {
	n := len(lit)
	if n == 0 {
		return dst
	}
	switch {
	case n <= 60:
		dst = append(dst, byte(n-1)<<2|tagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|tagLiteral, byte(n-1))
	case n < 1<<16:
		dst = append(dst, 61<<2|tagLiteral, byte(n-1), byte((n-1)>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|tagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16))
	default:
		dst = append(dst, 63<<2|tagLiteral, byte(n-1), byte((n-1)>>8), byte((n-1)>>16), byte((n-1)>>24))
	}
	return append(dst, lit...)
}

// emitCopy appends copy elements covering length bytes at the given offset
// (1 <= offset <= 0xffff), splitting runs longer than one element's limit.
func emitCopy(dst []byte, offset, length int) []byte {
	// The 2-byte-offset element encodes lengths 1..64; longer matches
	// split. A final fragment of 1..3 bytes is legal in the format even
	// though the encoder never *finds* matches that short.
	for length > 64 {
		dst = append(dst, 63<<2|tagCopy2, byte(offset), byte(offset>>8))
		length -= 64
	}
	return append(dst, byte(length-1)<<2|tagCopy2, byte(offset), byte(offset>>8))
}

// Decode appends the decoded form of src to dst. Every offset, length, and
// bound is validated; malformed input yields ErrCorrupt, never a panic or
// over-read.
func (Snappy) Decode(dst, src []byte) ([]byte, error) {
	want, n := binary.Uvarint(src)
	if n <= 0 {
		return dst, fmt.Errorf("%w: bad length preamble", ErrCorrupt)
	}
	if want > maxBlockLen {
		return dst, fmt.Errorf("%w: block length %d too large", ErrCorrupt, want)
	}
	src = src[n:]
	base := len(dst)
	if cap(dst)-base < int(want) {
		grown := make([]byte, base, base+int(want))
		copy(grown, dst)
		dst = grown
	}
	for len(src) > 0 {
		tag := src[0]
		var length, offset int
		switch tag & 0x03 {
		case tagLiteral:
			length = int(tag>>2) + 1
			hdr := 1
			if length > 60 {
				extra := length - 60 // 1..4 length bytes follow
				if len(src) < 1+extra {
					return dst, fmt.Errorf("%w: truncated literal header", ErrCorrupt)
				}
				length = 0
				for j := extra; j > 0; j-- {
					length = length<<8 | int(src[j])
				}
				length++
				hdr = 1 + extra
			}
			if length > len(src)-hdr {
				return dst, fmt.Errorf("%w: literal overruns input", ErrCorrupt)
			}
			if len(dst)-base+length > int(want) {
				return dst, fmt.Errorf("%w: output overruns declared length", ErrCorrupt)
			}
			dst = append(dst, src[hdr:hdr+length]...)
			src = src[hdr+length:]
			continue
		case tagCopy1:
			if len(src) < 2 {
				return dst, fmt.Errorf("%w: truncated copy1", ErrCorrupt)
			}
			length = int(tag>>2&0x07) + 4
			offset = int(tag>>5)<<8 | int(src[1])
			src = src[2:]
		case tagCopy2:
			if len(src) < 3 {
				return dst, fmt.Errorf("%w: truncated copy2", ErrCorrupt)
			}
			length = int(tag>>2) + 1
			offset = int(binary.LittleEndian.Uint16(src[1:3]))
			src = src[3:]
		case tagCopy4:
			if len(src) < 5 {
				return dst, fmt.Errorf("%w: truncated copy4", ErrCorrupt)
			}
			length = int(tag>>2) + 1
			o := binary.LittleEndian.Uint32(src[1:5])
			if o > maxBlockLen {
				return dst, fmt.Errorf("%w: copy4 offset %d", ErrCorrupt, o)
			}
			offset = int(o)
			src = src[5:]
		}
		if offset <= 0 || offset > len(dst)-base {
			return dst, fmt.Errorf("%w: copy offset %d outside window", ErrCorrupt, offset)
		}
		if len(dst)-base+length > int(want) {
			return dst, fmt.Errorf("%w: output overruns declared length", ErrCorrupt)
		}
		// Byte-at-a-time copy: overlapping copies (offset < length) repeat
		// the pattern, which is the format's RLE idiom.
		pos := len(dst) - offset
		for j := 0; j < length; j++ {
			dst = append(dst, dst[pos+j])
		}
	}
	if len(dst)-base != int(want) {
		return dst, fmt.Errorf("%w: decoded %d bytes, declared %d", ErrCorrupt, len(dst)-base, want)
	}
	return dst, nil
}
