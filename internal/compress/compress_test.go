package compress

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, c Codec, src []byte) []byte {
	t.Helper()
	enc := c.Encode(nil, src)
	dec, err := c.Decode(nil, enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", c.Name(), err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("%s: round trip mismatch: %d bytes in, %d out", c.Name(), len(src), len(dec))
	}
	return enc
}

func TestRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("abc"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		[]byte(strings.Repeat("rowkey-0001|field0|value-payload;", 200)),
		bytes.Repeat([]byte{0}, 70000),
	}
	rng := rand.New(rand.NewSource(7))
	random := make([]byte, 4096)
	rng.Read(random)
	cases = append(cases, random)

	for _, c := range []Codec{None{}, Snappy{}} {
		for i, src := range cases {
			enc := roundTrip(t, c, src)
			_ = enc
			_ = i
		}
	}
}

func TestSnappyCompresses(t *testing.T) {
	src := []byte(strings.Repeat("row00042field0value-abcdefgh", 300))
	enc := Snappy{}.Encode(nil, src)
	if len(enc) >= len(src)/2 {
		t.Fatalf("repetitive input barely compressed: %d -> %d", len(src), len(enc))
	}
}

func TestEncodeAppendsToDst(t *testing.T) {
	prefix := []byte("prefix")
	src := []byte(strings.Repeat("xyz", 100))
	enc := Snappy{}.Encode(append([]byte(nil), prefix...), src)
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("Encode clobbered dst prefix")
	}
	dec, err := Snappy{}.Decode(append([]byte(nil), prefix...), enc[len(prefix):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, append(prefix, src...)) {
		t.Fatal("Decode did not append to dst")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	src := []byte(strings.Repeat("the quick brown fox ", 100))
	enc := Snappy{}.Encode(nil, src)

	cases := map[string][]byte{
		"empty":            nil,
		"truncated tail":   enc[:len(enc)-5],
		"truncated header": enc[:1],
		"huge preamble":    {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"orphan copy":      {4, 3<<2 | tagCopy2, 1, 0}, // copy before any output
		"zero offset":      {8, 0<<2 | tagLiteral, 'a', 3<<2 | tagCopy2, 0, 0},
		"offset too far":   {8, 0<<2 | tagLiteral, 'a', 3<<2 | tagCopy2, 9, 0},
		"literal overrun":  {100, 59<<2 | tagLiteral, 'a', 'b'},
		"declared short":   append([]byte{1}, enc[1:]...),
		"trailing garbage": append(append([]byte(nil), enc...), 0x00, 0x00),
		"truncated copy1":  {8, 0<<2 | tagLiteral, 'a', tagCopy1},
		"truncated copy4":  {8, 0<<2 | tagLiteral, 'a', tagCopy4, 1, 0},
		"truncated varlit": {200, 61<<2 | tagLiteral, 0xff},
		"output overdeclared": func() []byte {
			// Valid elements producing more than the declared length.
			b := []byte{1}
			b = append(b, 3<<2|tagLiteral, 'a', 'b', 'c', 'd')
			return b
		}(),
	}
	for name, b := range cases {
		if dec, err := (Snappy{}).Decode(nil, b); err == nil {
			t.Errorf("%s: corruption accepted (%d bytes out)", name, len(dec))
		}
	}
}

func TestForIDAndName(t *testing.T) {
	for _, c := range []Codec{None{}, Snappy{}} {
		got, err := ForID(c.ID())
		if err != nil || got.Name() != c.Name() {
			t.Fatalf("ForID(%d): %v %v", c.ID(), got, err)
		}
		got, err = ForName(c.Name())
		if err != nil || got.ID() != c.ID() {
			t.Fatalf("ForName(%s): %v %v", c.Name(), got, err)
		}
	}
	if _, err := ForID(200); err == nil {
		t.Fatal("unknown ID accepted")
	}
	if _, err := ForName("zstd"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if def, err := ForName(""); err != nil || def.ID() != IDSnappy {
		t.Fatalf("default codec: %v %v", def, err)
	}
}

func FuzzSnappyRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello hello"))
	f.Add([]byte(""))
	f.Add(bytes.Repeat([]byte{0xab}, 1000))
	f.Fuzz(func(t *testing.T, src []byte) {
		enc := Snappy{}.Encode(nil, src)
		dec, err := Snappy{}.Decode(nil, enc)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(src), len(dec))
		}
	})
}

func FuzzSnappyDecode(f *testing.F) {
	f.Add(Snappy{}.Encode(nil, []byte("seed seed seed")))
	f.Add([]byte{0x04, 0x0c, 'a', 'b', 'c', 'd'})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Must never panic or over-allocate; errors are fine.
		dec, err := Snappy{}.Decode(nil, b)
		if err == nil && len(dec) > maxBlockLen {
			t.Fatalf("decoded %d bytes past the cap", len(dec))
		}
	})
}
