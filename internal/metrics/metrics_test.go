package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero value not empty")
	}
	for i := 1; i <= 100; i++ {
		h.RecordValue(int64(i) * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1000 || h.Max() != 100000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	mean := h.Mean()
	if mean < 50*time.Microsecond || mean > 51*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Microsecond || p50 > 56*time.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 90*time.Microsecond || p99 > 106*time.Microsecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramQuantileErrorBound(t *testing.T) {
	// The log-bucketed histogram must report quantiles within ~6.25%
	// relative error.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		vals := make([]int64, 1000)
		for i := range vals {
			vals[i] = rng.Int63n(1_000_000_000) + 1
			h.RecordValue(vals[i])
		}
		// Check p100 == max exactly.
		return h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.RecordValue(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.RecordValue(int64(j + 1))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucket index not monotone at %d", v)
		}
		prev = idx
		if ub := bucketUpperBound(idx); ub < v {
			t.Fatalf("upper bound %d < value %d", ub, v)
		}
	}
}

func TestTimeSeries(t *testing.T) {
	s := NewTimeSeries(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		s.Record(time.Millisecond)
	}
	time.Sleep(25 * time.Millisecond)
	for i := 0; i < 5; i++ {
		s.Record(3 * time.Millisecond)
	}
	pts := s.Points()
	if len(pts) < 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Count != 10 {
		t.Fatalf("first interval count = %d", pts[0].Count)
	}
	if pts[0].MeanLat != time.Millisecond {
		t.Fatalf("first interval mean = %v", pts[0].MeanLat)
	}
	last := pts[len(pts)-1]
	if last.Count != 5 || last.MeanLat != 3*time.Millisecond {
		t.Fatalf("last interval = %+v", last)
	}
	if pts[0].Throughput != 500 { // 10 events / 20ms
		t.Fatalf("throughput = %v", pts[0].Throughput)
	}
	if s.Start().IsZero() {
		t.Fatal("start is zero")
	}
}
