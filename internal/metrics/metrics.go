// Package metrics provides the measurement primitives the benchmark
// harness uses: a log-bucketed latency histogram (HdrHistogram-style,
// fixed memory), and per-second time series for throughput/response-time
// plots like the paper's Figure 3.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// histogram bucketing: 64 major (power-of-two) buckets x 16 linear
// sub-buckets each covers the full int64 nanosecond range with <= 6.25%
// relative error.
const (
	subBucketBits  = 4
	subBucketCount = 1 << subBucketBits
)

// Histogram is a concurrency-safe latency histogram. The zero value is
// ready to use.
type Histogram struct {
	mu      sync.Mutex
	counts  [64 * subBucketCount]int64
	count   int64
	sum     int64
	min     int64
	max     int64
	hasData bool
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	// Major bucket: position of the highest set bit above subBucketBits.
	major := 0
	for x := v >> subBucketBits; x > 0; x >>= 1 {
		major++
	}
	sub := int(v >> uint(major)) // 0..subBucketCount-1 within major
	return major*subBucketCount + sub%subBucketCount
}

func bucketUpperBound(idx int) int64 {
	major := idx / subBucketCount
	sub := idx % subBucketCount
	return int64(sub+1)<<uint(major) - 1
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw observation (nanoseconds by convention).
func (h *Histogram) RecordValue(v int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[bucketIndex(v)]++
	h.count++
	h.sum += v
	if !h.hasData || v < h.min {
		h.min = v
	}
	if !h.hasData || v > h.max {
		h.max = v
	}
	h.hasData = true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean observation as a duration.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / h.count)
}

// Min and Max return observed extremes.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.min)
}

// Max returns the maximum observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.max)
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i]
		if cum >= target {
			ub := bucketUpperBound(i)
			if ub > h.max {
				ub = h.max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(h.max)
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts = [64 * subBucketCount]int64{}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.hasData = false
}

// Summary renders a single-line summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// SeriesPoint is one per-interval aggregate of a TimeSeries.
type SeriesPoint struct {
	Offset     time.Duration // start of the interval, relative to series start
	Count      int64         // events in the interval
	Throughput float64       // events per second
	MeanLat    time.Duration // mean attached latency (0 if none recorded)
}

// TimeSeries aggregates events into fixed intervals from a start instant —
// used for the throughput/response-time-over-time plots (Figure 3).
type TimeSeries struct {
	mu       sync.Mutex
	start    time.Time
	interval time.Duration
	counts   []int64
	latSums  []int64
	latCnts  []int64
}

// NewTimeSeries creates a series with the given aggregation interval,
// starting now.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{start: time.Now(), interval: interval}
}

// Record adds one event with an attached latency at the current time.
func (s *TimeSeries) Record(lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := int(time.Since(s.start) / s.interval)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
		s.latSums = append(s.latSums, 0)
		s.latCnts = append(s.latCnts, 0)
	}
	s.counts[idx]++
	s.latSums[idx] += int64(lat)
	s.latCnts[idx]++
}

// Points returns the aggregated series.
func (s *TimeSeries) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesPoint, len(s.counts))
	for i := range s.counts {
		p := SeriesPoint{
			Offset:     time.Duration(i) * s.interval,
			Count:      s.counts[i],
			Throughput: float64(s.counts[i]) / s.interval.Seconds(),
		}
		if s.latCnts[i] > 0 {
			p.MeanLat = time.Duration(s.latSums[i] / s.latCnts[i])
		}
		out[i] = p
	}
	return out
}

// Start returns the series origin instant.
func (s *TimeSeries) Start() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}
