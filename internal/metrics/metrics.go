// Package metrics provides the measurement primitives the benchmark
// harness uses: a log-bucketed latency histogram (HdrHistogram-style,
// fixed memory), and per-second time series for throughput/response-time
// plots like the paper's Figure 3.
package metrics

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// histogram bucketing: 64 major (power-of-two) buckets x 16 linear
// sub-buckets each covers the full int64 nanosecond range with <= 6.25%
// relative error.
const (
	subBucketBits  = 4
	subBucketCount = 1 << subBucketBits
)

// Histogram is a concurrency-safe latency histogram. The zero value is
// ready to use.
//
// Recording is lock-free: each observation is a handful of independent
// atomic adds plus CAS loops for the extremes, so the histogram can sit on
// hot paths (per-stage commit tracing, read-path heat) without a shared
// mutex serializing every writer. Readers (Count, Quantile, ...) load the
// same atomics; under concurrent writes they see a slightly torn but
// monotonically growing view, and an exact one once writers quiesce —
// the same contract the old mutex version gave between lock acquisitions.
type Histogram struct {
	counts [64 * subBucketCount]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	// minEnc/maxEnc hold encodeExtreme(v); 0 means "no data yet", which
	// keeps the zero value ready to use without an init fence.
	minEnc atomic.Int64
	maxEnc atomic.Int64
}

// encodeExtreme maps an observation to a non-zero representative so that 0
// can mean "unset": non-negative v becomes v+1, negative v is its own
// (already non-zero) encoding. decodeExtreme inverts it.
func encodeExtreme(v int64) int64 {
	if v >= 0 {
		return v + 1
	}
	return v
}

func decodeExtreme(e int64) int64 {
	if e > 0 {
		return e - 1
	}
	return e
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	// Major bucket: position of the highest set bit above subBucketBits.
	major := 0
	for x := v >> subBucketBits; x > 0; x >>= 1 {
		major++
	}
	sub := int(v >> uint(major)) // 0..subBucketCount-1 within major
	return major*subBucketCount + sub%subBucketCount
}

func bucketUpperBound(idx int) int64 {
	major := idx / subBucketCount
	sub := idx % subBucketCount
	return int64(sub+1)<<uint(major) - 1
}

// Record adds one duration observation.
func (h *Histogram) Record(d time.Duration) { h.RecordValue(int64(d)) }

// RecordValue adds one raw observation (nanoseconds by convention).
func (h *Histogram) RecordValue(v int64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.minEnc.Load()
		if cur != 0 && decodeExtreme(cur) <= v {
			break
		}
		if h.minEnc.CompareAndSwap(cur, encodeExtreme(v)) {
			break
		}
	}
	for {
		cur := h.maxEnc.Load()
		if cur != 0 && decodeExtreme(cur) >= v {
			break
		}
		if h.maxEnc.CompareAndSwap(cur, encodeExtreme(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations (nanoseconds by convention).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the mean observation as a duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Min and Max return observed extremes.
func (h *Histogram) Min() time.Duration {
	return time.Duration(decodeOrZero(h.minEnc.Load()))
}

// Max returns the maximum observation.
func (h *Histogram) Max() time.Duration {
	return time.Duration(decodeOrZero(h.maxEnc.Load()))
}

func decodeOrZero(e int64) int64 {
	if e == 0 {
		return 0
	}
	return decodeExtreme(e)
}

// Quantile returns the approximate q-quantile (0 < q <= 1).
func (h *Histogram) Quantile(q float64) time.Duration {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	max := decodeOrZero(h.maxEnc.Load())
	target := int64(math.Ceil(q * float64(count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			ub := bucketUpperBound(i)
			if ub > max {
				ub = max
			}
			return time.Duration(ub)
		}
	}
	return time.Duration(max)
}

// Reset clears the histogram. Reset racing concurrent writers clears
// field-by-field (writers may land observations across the boundary); call
// it only between measurement phases, as before.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.minEnc.Store(0)
	h.maxEnc.Store(0)
}

// Summary renders a single-line summary.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// SeriesPoint is one per-interval aggregate of a TimeSeries.
type SeriesPoint struct {
	Offset     time.Duration // start of the interval, relative to series start
	Count      int64         // events in the interval
	Throughput float64       // events per second
	MeanLat    time.Duration // mean attached latency (0 if none recorded)
}

// TimeSeries aggregates events into fixed intervals from a start instant —
// used for the throughput/response-time-over-time plots (Figure 3).
type TimeSeries struct {
	mu       sync.Mutex
	start    time.Time
	interval time.Duration
	counts   []int64
	latSums  []int64
	latCnts  []int64
}

// NewTimeSeries creates a series with the given aggregation interval,
// starting now.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		interval = time.Second
	}
	return &TimeSeries{start: time.Now(), interval: interval}
}

// Record adds one event with an attached latency at the current time.
func (s *TimeSeries) Record(lat time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := int(time.Since(s.start) / s.interval)
	for len(s.counts) <= idx {
		s.counts = append(s.counts, 0)
		s.latSums = append(s.latSums, 0)
		s.latCnts = append(s.latCnts, 0)
	}
	s.counts[idx]++
	s.latSums[idx] += int64(lat)
	s.latCnts[idx]++
}

// Points returns the aggregated series.
func (s *TimeSeries) Points() []SeriesPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesPoint, len(s.counts))
	for i := range s.counts {
		p := SeriesPoint{
			Offset:     time.Duration(i) * s.interval,
			Count:      s.counts[i],
			Throughput: float64(s.counts[i]) / s.interval.Seconds(),
		}
		if s.latCnts[i] > 0 {
			p.MeanLat = time.Duration(s.latSums[i] / s.latCnts[i])
		}
		out[i] = p
	}
	return out
}

// Start returns the series origin instant.
func (s *TimeSeries) Start() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}
