package metrics

import "sync/atomic"

// Counter is a concurrency-safe monotonic counter. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value (a level, not a rate).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// ReclaimMetrics aggregates the resource-lifecycle counters shared by the
// two space-reclamation paths: DFS log compaction (segments rewritten and
// dropped) and refcounted store-file retirement (deferred deletion once the
// last read view drains). A nil *ReclaimMetrics is valid and records
// nothing, so subsystems can be wired without one.
type ReclaimMetrics struct {
	// BytesReclaimed counts bytes physically returned to the backing
	// store: dropped log segments plus unlinked store files.
	BytesReclaimed Counter
	// FilesRetired counts store files (and split reference markers)
	// physically unlinked after their last reader drained; BytesRetired
	// totals their logical (filesystem-level) sizes. Kept separate from
	// BytesReclaimed: a retired store file's bytes are physically
	// reclaimed later, when log compaction drops the journal segments
	// that held its blocks — adding both into one counter would double-
	// count the same data.
	FilesRetired Counter
	BytesRetired Counter
	// SegmentsDropped counts storage-log segments removed by compaction.
	SegmentsDropped Counter
	// Compactions counts completed reclamation passes (DFS log
	// checkpoints and store-file compactions).
	Compactions Counter
	// FlushesSkipped counts regions a WAL roll declined to flush because
	// their dirty bytes were below the roll threshold (the edits were
	// carried forward into the fresh generation instead).
	FlushesSkipped Counter
}

// AddReclaimedBytes records n bytes physically reclaimed.
func (m *ReclaimMetrics) AddReclaimedBytes(n int64) {
	if m != nil && n > 0 {
		m.BytesReclaimed.Add(n)
	}
}

// AddFilesRetired records n store files physically unlinked.
func (m *ReclaimMetrics) AddFilesRetired(n int64) {
	if m != nil {
		m.FilesRetired.Add(n)
	}
}

// AddRetiredBytes records the logical size of unlinked store files.
func (m *ReclaimMetrics) AddRetiredBytes(n int64) {
	if m != nil && n > 0 {
		m.BytesRetired.Add(n)
	}
}

// AddSegmentsDropped records n log segments removed.
func (m *ReclaimMetrics) AddSegmentsDropped(n int64) {
	if m != nil {
		m.SegmentsDropped.Add(n)
	}
}

// AddCompactions records n completed reclamation passes.
func (m *ReclaimMetrics) AddCompactions(n int64) {
	if m != nil {
		m.Compactions.Add(n)
	}
}

// AddFlushesSkipped records n regions whose roll-time flush was skipped
// under the dirty-bytes threshold.
func (m *ReclaimMetrics) AddFlushesSkipped(n int64) {
	if m != nil {
		m.FlushesSkipped.Add(n)
	}
}

// ReclaimSnapshot is a point-in-time copy of ReclaimMetrics.
type ReclaimSnapshot struct {
	BytesReclaimed  int64
	BytesRetired    int64
	FilesRetired    int64
	SegmentsDropped int64
	Compactions     int64
	FlushesSkipped  int64
}

// Snapshot returns the current counter values. A nil receiver yields zeros.
func (m *ReclaimMetrics) Snapshot() ReclaimSnapshot {
	if m == nil {
		return ReclaimSnapshot{}
	}
	return ReclaimSnapshot{
		BytesReclaimed:  m.BytesReclaimed.Load(),
		BytesRetired:    m.BytesRetired.Load(),
		FilesRetired:    m.FilesRetired.Load(),
		SegmentsDropped: m.SegmentsDropped.Load(),
		Compactions:     m.Compactions.Load(),
		FlushesSkipped:  m.FlushesSkipped.Load(),
	}
}
