package txmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"txkv/internal/kv"
)

// TestStripedValidationParallelDisjoint: commits over disjoint rows must
// all succeed under heavy concurrency (no false conflicts from striping),
// and multi-row write-sets must lock their stripes without deadlocking.
func TestStripedValidationParallelDisjoint(t *testing.T) {
	m, _ := newTM(t)
	const (
		goroutines = 16
		perG       = 50
	)
	var wg sync.WaitGroup
	var committed atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h := m.BeginLatest(fmt.Sprintf("c%d", g))
				// Multi-row write-sets spanning many stripes.
				ups := []kv.Update{
					{Table: "t", Row: kv.Key(fmt.Sprintf("g%d-r%d-a", g, i)), Column: "c", Value: []byte("v")},
					{Table: "t", Row: kv.Key(fmt.Sprintf("g%d-r%d-b", g, i)), Column: "c", Value: []byte("v")},
					{Table: "t", Row: kv.Key(fmt.Sprintf("g%d-r%d-c", g, i)), Column: "c", Value: []byte("v")},
				}
				if _, err := m.Commit(h, ups); err != nil {
					t.Errorf("disjoint commit aborted: %v", err)
					return
				}
				committed.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if committed.Load() != goroutines*perG {
		t.Fatalf("committed %d, want %d", committed.Load(), goroutines*perG)
	}
	commits, aborts := m.Stats()
	if commits != goroutines*perG || aborts != 0 {
		t.Fatalf("stats = (%d, %d), want (%d, 0)", commits, aborts, goroutines*perG)
	}
}

// TestStripedValidationFirstCommitterWins: two racing transactions over the
// SAME row from the same snapshot — exactly one must commit, under every
// interleaving the race produces.
func TestStripedValidationFirstCommitterWins(t *testing.T) {
	m, _ := newTM(t)
	for round := 0; round < 100; round++ {
		row := fmt.Sprintf("hot%d", round)
		h1 := m.BeginLatest("a")
		h2 := m.BeginLatest("b")
		var wins, conflicts atomic.Int64
		var wg sync.WaitGroup
		for _, h := range []TxnHandle{h1, h2} {
			wg.Add(1)
			go func(h TxnHandle) {
				defer wg.Done()
				_, err := m.Commit(h, upd(row))
				switch {
				case err == nil:
					wins.Add(1)
				case errors.Is(err, ErrConflict):
					conflicts.Add(1)
				default:
					t.Errorf("unexpected error: %v", err)
				}
			}(h)
		}
		wg.Wait()
		if wins.Load() != 1 || conflicts.Load() != 1 {
			t.Fatalf("round %d: %d wins, %d conflicts; want exactly 1 and 1",
				round, wins.Load(), conflicts.Load())
		}
	}
}

// TestStripedValidationSnapshotStaleness: a transaction whose snapshot
// predates a commit to its row must abort even when validation happens on a
// different stripe set interleaving.
func TestStripedValidationSnapshotStaleness(t *testing.T) {
	m, _ := newTM(t)
	stale := m.BeginLatest("stale")
	fresh := m.BeginLatest("fresh")
	if _, err := m.Commit(fresh, upd("contested")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(stale, upd("contested")); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale commit: got %v, want ErrConflict", err)
	}
}
