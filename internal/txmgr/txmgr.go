// Package txmgr implements the independent transaction manager: a
// monotonic timestamp oracle, snapshot-isolation validation
// (first-committer-wins at row granularity), and the commit protocol of the
// paper's §2.2 — on commit, the write-set is persisted to the recovery log
// (group commit) and the transaction is then *committed*; flushing the
// write-set to the key-value store happens strictly afterwards and is the
// client's responsibility.
//
// The paper's companion transaction manager (CumuloNimbo) was unpublished;
// this implementation provides exactly the properties the recovery protocol
// assumes: commit timestamps are strictly monotonically increasing and
// define the serialization order, commits are durable in the log before the
// commit call returns, and observers see commit assignments in commit order
// (which is what lets the client tracker enqueue FQ in commit order, §3.1).
package txmgr

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sync"
	"time"

	"txkv/internal/kv"
	"txkv/internal/obs"
	"txkv/internal/txlog"
)

// Transaction errors.
var (
	ErrConflict     = errors.New("txmgr: write-write conflict, transaction aborted")
	ErrTxnNotActive = errors.New("txmgr: transaction not active")
	// ErrSnapshotTooOld reports a pinned-snapshot begin below the version-GC
	// horizon: a background compaction may already have dropped versions a
	// read at that timestamp would need.
	ErrSnapshotTooOld = errors.New("txmgr: snapshot below the version-GC horizon")
	// ErrFutureSnapshot reports a pinned-snapshot begin above the newest
	// issued commit timestamp.
	ErrFutureSnapshot = errors.New("txmgr: snapshot not yet issued")
)

// IsRetryable reports whether a failed commit can be retried on a fresh
// snapshot with the same logic: true exactly for snapshot-isolation
// conflicts (first-committer-wins aborts). Validation errors, closed
// handles, and infrastructure failures are not retryable — rerunning the
// transaction cannot change their outcome. The managed retry loop
// (cluster.Client.Update) is built on this classification.
func IsRetryable(err error) bool { return errors.Is(err, ErrConflict) }

// CommitObserver is notified of every commit, synchronously under the
// commit sequencing lock: observers see strictly increasing commit
// timestamps. The recovery middleware's client tracker registers here so
// that FQ is populated in commit-timestamp order (paper §3.1).
type CommitObserver interface {
	OnCommitAssigned(clientID string, ts kv.Timestamp)
}

// TxnHandle identifies an active transaction.
type TxnHandle struct {
	ID       uint64
	ClientID string
	StartTS  kv.Timestamp
}

// commitShards is the number of independent validation stripes. Commits
// touching disjoint stripe sets validate fully in parallel; only timestamp
// assignment, log enqueueing, and observer notification serialize on the
// sequencing mutex. Power of two so the stripe index is a mask.
const commitShards = 64

// commitShard is one stripe of the first-committer-wins table: the latest
// commit timestamp per row coordinate hashing to this stripe.
type commitShard struct {
	mu         sync.Mutex
	lastCommit map[string]kv.Timestamp
	_          [48]byte // pad to 64 bytes (8+8+48) so stripes don't false-share
}

// Manager is the transaction manager.
type Manager struct {
	log *txlog.Log

	// shards hold the snapshot-isolation validation state, striped by row
	// hash. Lock order: shard mutexes (ascending index) before mu.
	shards   [commitShards]commitShard
	hashSeed maphash.Seed

	mu         sync.Mutex // the commit sequencing lock
	flushCond  *sync.Cond // broadcast when the frontier advances
	lastIssued kv.Timestamp
	nextTxnID  uint64
	active     map[uint64]kv.Timestamp // txn id -> start ts
	observers  []CommitObserver
	commits    uint64 // counter to pace lastCommit pruning

	// Visibility frontier: all transactions with CommitTS <= frontier have
	// been fully flushed to the data store. Maintained eagerly from client
	// post-flush notifications; the recovery middleware's T_F is the
	// heartbeat-lagged analogue.
	unflushed map[kv.Timestamp]struct{}
	frontier  kv.Timestamp

	// gcHorizon is the highest version-GC horizon ever handed out through
	// SafeSnapshot: versions shadowed at or below it may already have been
	// dropped by a compaction, so pinned-snapshot begins (BeginReadOnlyAt)
	// must stay at or above it. Everything newer is retained by contract.
	gcHorizon kv.Timestamp

	aborts  uint64
	commitN uint64
}

// commitCoords precomputes, once per update, the conflict coordinate and
// its stripe index, plus the ascending deduplicated stripe set (the lock
// order that prevents deadlock between concurrent commits). Hashing each
// coordinate exactly once keeps the validation path lean.
func (m *Manager) commitCoords(updates []kv.Update, coords []string, stripes []int, set []int) ([]string, []int, []int) {
	var mask [commitShards]bool
	for _, u := range updates {
		c := u.Coordinate()
		s := int(maphash.String(m.hashSeed, c) & (commitShards - 1))
		coords = append(coords, c)
		stripes = append(stripes, s)
		mask[s] = true
	}
	for i, hit := range mask {
		if hit {
			set = append(set, i)
		}
	}
	return coords, stripes, set
}

// New creates a Manager writing commits to log. The timestamp oracle is
// seeded from the log's highest recovered commit timestamp, so a manager
// over a reopened recovery log issues fresh timestamps strictly after every
// commit of the previous incarnation; the visibility frontier starts there
// too (the reopen path replays and flushes all retained write-sets before
// clients run).
func New(log *txlog.Log) *Manager {
	m := &Manager{
		log:       log,
		active:    make(map[uint64]kv.Timestamp),
		unflushed: make(map[kv.Timestamp]struct{}),
		hashSeed:  maphash.MakeSeed(),
	}
	for i := range m.shards {
		m.shards[i].lastCommit = make(map[string]kv.Timestamp)
	}
	if log != nil {
		m.lastIssued = log.LastTS()
		m.frontier = m.lastIssued
		// A previous incarnation may have compacted with any horizon up to
		// its frontier; after a reopen, pinned snapshots start at the
		// recovered frontier (conservative but safe).
		m.gcHorizon = m.lastIssued
	}
	m.flushCond = sync.NewCond(&m.mu)
	return m
}

// AddCommitObserver registers an ordered commit observer. Must be called
// before transactions begin.
func (m *Manager) AddCommitObserver(o CommitObserver) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observers = append(m.observers, o)
}

// Begin starts a transaction for clientID at the freshest snapshot (the
// newest issued commit timestamp) and WAITS until every commit in that
// snapshot has been flushed to the data store, so reads are consistent and
// the snapshot-isolation conflict window stays minimal. Under normal
// operation the wait is the in-flight flush latency (sub-millisecond to a
// few milliseconds); while a region is offline for recovery, Begin blocks —
// use BeginSnapshot for non-blocking reads of an older consistent snapshot
// (the paper's clients "continue to execute read-only transactions on
// older snapshots of the data" during disturbances, §3.2).
func (m *Manager) Begin(clientID string) TxnHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	target := m.lastIssued
	for m.frontier < target {
		m.flushCond.Wait()
	}
	m.nextTxnID++
	h := TxnHandle{ID: m.nextTxnID, ClientID: clientID, StartTS: target}
	m.active[h.ID] = h.StartTS
	return h
}

// BeginSnapshot starts a transaction at the visibility frontier without
// waiting: a consistent but possibly slightly stale snapshot. It never
// blocks, even while flushes are stalled by an ongoing recovery.
func (m *Manager) BeginSnapshot(clientID string) TxnHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxnID++
	h := TxnHandle{ID: m.nextTxnID, ClientID: clientID, StartTS: m.frontier}
	m.active[h.ID] = h.StartTS
	return h
}

// BeginLatest starts a transaction snapshotting the newest issued commit
// timestamp, regardless of flush progress. Reads may MISS a committed but
// not-yet-flushed write (without conflicting with it), so this is only
// safe for blind writes and freshness-over-consistency reads.
func (m *Manager) BeginLatest(clientID string) TxnHandle {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextTxnID++
	h := TxnHandle{ID: m.nextTxnID, ClientID: clientID, StartTS: m.lastIssued}
	m.active[h.ID] = h.StartTS
	return h
}

// BeginReadOnlyAt starts a read-only transaction pinned at snapshot ts —
// the time-travel begin. The handle is registered like any active
// transaction, so SafeSnapshot (the version-GC horizon handed to store
// compactions) cannot advance past ts while the transaction lives: a
// long-lived reader survives continuous compaction and reclamation. The
// pin must be released with Release (or Abort).
//
// ts must lie between the highest handed-out GC horizon (older versions may
// already be GC'd: ErrSnapshotTooOld) and the newest issued commit
// timestamp (ErrFutureSnapshot). Like Begin, BeginReadOnlyAt WAITS until
// every commit at or below ts is flushed (frontier >= ts), so the pinned
// snapshot is consistent — never a half-flushed write-set.
func (m *Manager) BeginReadOnlyAt(clientID string, ts kv.Timestamp) (TxnHandle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ts > m.lastIssued {
		return TxnHandle{}, fmt.Errorf("%w: %d > last issued %d", ErrFutureSnapshot, ts, m.lastIssued)
	}
	for m.frontier < ts {
		m.flushCond.Wait()
	}
	// Re-validated after the wait: a compaction may have taken the horizon
	// past ts while the mutex was released.
	if ts < m.gcHorizon {
		return TxnHandle{}, fmt.Errorf("%w: %d < horizon %d", ErrSnapshotTooOld, ts, m.gcHorizon)
	}
	m.nextTxnID++
	h := TxnHandle{ID: m.nextTxnID, ClientID: clientID, StartTS: ts}
	m.active[h.ID] = h.StartTS
	return h, nil
}

// Release ends a read-only transaction: the snapshot pin is dropped without
// validation, logging, or abort accounting. Safe (and a no-op) on a handle
// that was already released, aborted, or committed.
func (m *Manager) Release(h TxnHandle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, h.ID)
}

// Abort discards an active transaction.
func (m *Manager) Abort(h TxnHandle) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.active, h.ID)
	m.aborts++
}

// Commit validates the transaction under snapshot isolation
// (first-committer-wins on row coordinates), assigns the commit timestamp,
// persists the write-set to the recovery log (group commit), and returns
// the commit timestamp. On return the transaction is durably *committed* —
// but not yet flushed to the key-value store; the caller flushes afterwards
// and then calls NotifyFlushed.
//
// Validation is striped: the transaction locks only the stripes covering
// its row coordinates (ascending, so concurrent commits never deadlock),
// validates against them, and — still holding them — takes the sequencing
// mutex just long enough to draw the commit timestamp, enqueue the log
// record, and notify the ordered observers. Transactions over disjoint
// stripes validate and publish fully in parallel; conflicting ones
// serialize on their shared stripe, which is exactly the
// first-committer-wins order.
//
// A read-only transaction (empty updates) commits without logging.
func (m *Manager) Commit(h TxnHandle, updates []kv.Update) (kv.Timestamp, error) {
	cts, done, err := m.CommitAsync(h, updates)
	if err != nil {
		return 0, err
	}
	if done != nil {
		if err := <-done; err != nil {
			return 0, fmt.Errorf("txmgr: commit log append: %w", err)
		}
	}
	return cts, nil
}

// CommitAsync validates and enqueues the transaction like Commit but
// returns without waiting for log durability: the returned channel delivers
// the group commit's outcome exactly once (nil for a read-only transaction,
// which needs no logging). Callers that stop waiting early must arrange for
// the channel to be drained — once enqueued the write-set commits in order
// regardless of who is watching.
func (m *Manager) CommitAsync(h TxnHandle, updates []kv.Update) (kv.Timestamp, <-chan error, error) {
	return m.commitAsync(h, updates, nil)
}

// CommitAsyncSpan is CommitAsync with commit-pipeline stage tracing: the
// validate-shard, timestamp-assignment, and log-enqueue phases are recorded
// onto sp (nil-safe — a nil span selects the untraced fast path).
func (m *Manager) CommitAsyncSpan(h TxnHandle, updates []kv.Update, sp *obs.Span) (kv.Timestamp, <-chan error, error) {
	return m.commitAsync(h, updates, sp)
}

func (m *Manager) commitAsync(h TxnHandle, updates []kv.Update, sp *obs.Span) (kv.Timestamp, <-chan error, error) {
	m.mu.Lock()
	startTS, ok := m.active[h.ID]
	if !ok {
		m.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: txn %d", ErrTxnNotActive, h.ID)
	}
	if len(updates) == 0 {
		delete(m.active, h.ID)
		ts := m.lastIssued
		m.mu.Unlock()
		return ts, nil, nil
	}
	m.mu.Unlock()

	var stageStart time.Time
	if sp != nil {
		stageStart = time.Now()
	}
	var (
		coordBuf  [8]string
		stripeBuf [8]int
		setBuf    [commitShards]int
	)
	coords, stripes, shardIdx := m.commitCoords(updates, coordBuf[:0], stripeBuf[:0], setBuf[:0])
	for _, i := range shardIdx {
		m.shards[i].mu.Lock()
	}
	unlockShards := func() {
		for _, i := range shardIdx {
			m.shards[i].mu.Unlock()
		}
	}

	for i, coord := range coords {
		if last, ok := m.shards[stripes[i]].lastCommit[coord]; ok && last > startTS {
			unlockShards()
			m.mu.Lock()
			delete(m.active, h.ID)
			m.aborts++
			m.mu.Unlock()
			return 0, nil, fmt.Errorf("%w: %s modified at %d after snapshot %d",
				ErrConflict, coord, last, startTS)
		}
	}

	if sp != nil {
		now := time.Now()
		sp.StageEnd("commit.validate", stageStart, now)
		stageStart = now
	}

	// Sequencing critical section: timestamp assignment, commit-ordered log
	// enqueue, and ordered observer notification — nothing else.
	m.mu.Lock()
	m.lastIssued++
	cts := m.lastIssued
	delete(m.active, h.ID)
	m.unflushed[cts] = struct{}{}
	m.commitN++
	ws := kv.WriteSet{TxnID: h.ID, ClientID: h.ClientID, CommitTS: cts, Updates: updates}
	if sp != nil {
		now := time.Now()
		sp.StageEnd("commit.ts_assign", stageStart, now)
		stageStart = now
	}
	done := m.log.Enqueue(ws) // enqueued under mu: log order == commit order
	for _, o := range m.observers {
		o.OnCommitAssigned(h.ClientID, cts)
	}
	m.commits++
	doPrune := m.commits%4096 == 0
	var pruneLow kv.Timestamp
	if doPrune {
		pruneLow = m.pruneWatermarkLocked()
	}
	m.mu.Unlock()

	// Publish the commit into the stripes before releasing them: the next
	// transaction touching these rows must observe cts.
	for i, coord := range coords {
		m.shards[stripes[i]].lastCommit[coord] = cts
	}
	unlockShards()
	sp.Stage("commit.log_enqueue", stageStart)

	if doPrune {
		m.prune(pruneLow)
	}
	return cts, done, nil
}

// pruneWatermarkLocked returns the timestamp at or below which a lastCommit
// entry can never conflict again: the minimum of the visibility frontier
// (no future Begin/BeginSnapshot/BeginLatest can take an older snapshot)
// and every active transaction's snapshot.
func (m *Manager) pruneWatermarkLocked() kv.Timestamp {
	low := m.frontier
	for _, start := range m.active {
		if start < low {
			low = start
		}
	}
	return low
}

// prune drops lastCommit entries at or below low, one stripe at a time.
func (m *Manager) prune(low kv.Timestamp) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for coord, ts := range s.lastCommit {
			if ts <= low {
				delete(s.lastCommit, coord)
			}
		}
		s.mu.Unlock()
	}
}

// NotifyFlushed records that the write-set committed at cts has been fully
// flushed to its participant servers, advancing the visibility frontier.
func (m *Manager) NotifyFlushed(cts kv.Timestamp) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.unflushed, cts)
	m.advanceFrontierLocked()
}

func (m *Manager) advanceFrontierLocked() {
	if len(m.unflushed) == 0 {
		m.frontier = m.lastIssued
	} else {
		low := m.lastIssued
		for ts := range m.unflushed {
			if ts-1 < low {
				low = ts - 1
			}
		}
		m.frontier = low
	}
	m.flushCond.Broadcast()
}

// Frontier returns the visibility frontier: every commit at or below it is
// readable at the servers.
func (m *Manager) Frontier() kv.Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.frontier
}

// SafeSnapshot returns the newest timestamp at or below which no active —
// and no future — transaction can take a snapshot: the minimum of the
// visibility frontier and every in-flight transaction's start timestamp
// (read-only pins included, so a long-lived View or BeginReadOnlyAt holds
// the horizon down). Versions shadowed by a newer version at or below this
// bound are invisible to every current and future reader, which makes it
// the safe version-GC horizon for background store-file compaction. The
// returned horizon is remembered: BeginReadOnlyAt refuses snapshots below
// the highest horizon ever handed out, since a compaction may have acted on
// it.
func (m *Manager) SafeSnapshot() kv.Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.pruneWatermarkLocked()
	if w > m.gcHorizon {
		m.gcHorizon = w
	}
	return w
}

// LastIssued returns the highest timestamp issued so far.
func (m *Manager) LastIssued() kv.Timestamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastIssued
}

// Stats returns (commits, aborts) counters.
func (m *Manager) Stats() (commits, aborts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitN, m.aborts
}
