package txmgr

import (
	"errors"
	"testing"
	"time"

	"txkv/internal/kv"
)

// commitAt drives the oracle to issue commits up to a given count.
func commitN(t *testing.T, m *Manager, n int) kv.Timestamp {
	t.Helper()
	var last kv.Timestamp
	for i := 0; i < n; i++ {
		h := m.BeginLatest("w")
		cts, err := m.Commit(h, []kv.Update{{Table: "t", Row: kv.Key("r"), Column: "c"}})
		if err != nil {
			t.Fatal(err)
		}
		m.NotifyFlushed(cts)
		last = cts
	}
	return last
}

func TestBeginReadOnlyAtPinsSafeSnapshot(t *testing.T) {
	m, _ := newTM(t)
	last := commitN(t, m, 5)

	h, err := m.BeginReadOnlyAt("ro", 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.StartTS != 2 {
		t.Fatalf("pinned start ts = %d", h.StartTS)
	}
	// The pin holds the GC horizon at the pinned snapshot.
	if got := m.SafeSnapshot(); got != 2 {
		t.Fatalf("SafeSnapshot with pin = %d, want 2", got)
	}
	// Release drops the pin without abort accounting.
	_, abortsBefore := m.Stats()
	m.Release(h)
	if _, aborts := m.Stats(); aborts != abortsBefore {
		t.Fatalf("Release counted as abort: %d -> %d", abortsBefore, aborts)
	}
	if got := m.SafeSnapshot(); got != last {
		t.Fatalf("SafeSnapshot after release = %d, want %d", got, last)
	}
	// Double release is a no-op.
	m.Release(h)
}

func TestBeginReadOnlyAtBounds(t *testing.T) {
	m, _ := newTM(t)
	commitN(t, m, 5)

	if _, err := m.BeginReadOnlyAt("ro", 99); !errors.Is(err, ErrFutureSnapshot) {
		t.Fatalf("future pin: %v", err)
	}
	// Until a horizon is handed out, any past timestamp is pinnable.
	h, err := m.BeginReadOnlyAt("ro", 1)
	if err != nil {
		t.Fatalf("pin below never-handed-out horizon: %v", err)
	}
	m.Release(h)

	// Once SafeSnapshot has been consumed (a compaction may have GC'd
	// below it), older pins are refused.
	if got := m.SafeSnapshot(); got != 5 {
		t.Fatalf("SafeSnapshot = %d", got)
	}
	if _, err := m.BeginReadOnlyAt("ro", 3); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("pin below handed-out horizon: %v", err)
	}
	if h, err := m.BeginReadOnlyAt("ro", 5); err != nil {
		t.Fatalf("pin at horizon: %v", err)
	} else {
		m.Release(h)
	}
}

// TestBeginReadOnlyAtWaitsForFlush: a pin above the flush frontier blocks
// until the snapshot is fully readable — a time-travel reader can never
// observe a half-flushed write-set.
func TestBeginReadOnlyAtWaitsForFlush(t *testing.T) {
	m, _ := newTM(t)
	h := m.BeginLatest("w")
	cts, err := m.Commit(h, []kv.Update{{Table: "t", Row: "r", Column: "c"}})
	if err != nil {
		t.Fatal(err)
	}
	// cts is committed but NOT flushed: frontier < cts.
	got := make(chan kv.Timestamp, 1)
	go func() {
		ro, err := m.BeginReadOnlyAt("ro", cts)
		if err != nil {
			got <- 0
			return
		}
		defer m.Release(ro)
		got <- ro.StartTS
	}()
	select {
	case ts := <-got:
		t.Fatalf("pin at unflushed %d admitted immediately (start %d)", cts, ts)
	case <-time.After(50 * time.Millisecond):
	}
	m.NotifyFlushed(cts)
	select {
	case ts := <-got:
		if ts != cts {
			t.Fatalf("pin start = %d, want %d", ts, cts)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pin never admitted after flush")
	}
}

func TestIsRetryable(t *testing.T) {
	m, _ := newTM(t)
	h1 := m.BeginLatest("a")
	h2 := m.BeginLatest("b")
	upd := []kv.Update{{Table: "t", Row: "x", Column: "c"}}
	if _, err := m.Commit(h1, upd); err != nil {
		t.Fatal(err)
	}
	_, err := m.Commit(h2, upd)
	if !IsRetryable(err) {
		t.Fatalf("conflict not classified retryable: %v", err)
	}
	if IsRetryable(ErrTxnNotActive) || IsRetryable(ErrSnapshotTooOld) || IsRetryable(nil) {
		t.Fatal("non-conflict classified retryable")
	}
}
