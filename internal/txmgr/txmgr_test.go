package txmgr

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"txkv/internal/kv"
	"txkv/internal/txlog"
)

func newTM(t *testing.T) (*Manager, *txlog.Log) {
	t.Helper()
	l := txlog.New(txlog.Config{})
	t.Cleanup(l.Close)
	return New(l), l
}

func upd(row string) []kv.Update {
	return []kv.Update{{Table: "t", Row: kv.Key(row), Column: "c", Value: []byte("v")}}
}

func TestCommitAssignsMonotonicTimestamps(t *testing.T) {
	m, _ := newTM(t)
	var last kv.Timestamp
	for i := 0; i < 10; i++ {
		h := m.Begin("c1")
		cts, err := m.Commit(h, upd(fmt.Sprintf("r%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if cts <= last {
			t.Fatalf("timestamps not increasing: %d after %d", cts, last)
		}
		last = cts
		m.NotifyFlushed(cts) // unblock the next frontier-waiting Begin
	}
}

func TestCommitWritesLog(t *testing.T) {
	m, l := newTM(t)
	h := m.Begin("c1")
	cts, err := m.Commit(h, upd("a"))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.After(0)
	if err != nil || len(recs) != 1 {
		t.Fatalf("log: %v %v", recs, err)
	}
	if recs[0].CommitTS != cts || recs[0].ClientID != "c1" {
		t.Fatalf("log record %+v", recs[0])
	}
}

func TestSnapshotIsolationConflict(t *testing.T) {
	m, _ := newTM(t)
	// Two concurrent transactions writing the same row: the second to
	// commit must abort (first-committer-wins).
	h1 := m.Begin("c1")
	h2 := m.Begin("c2")
	cts1, err := m.Commit(h1, upd("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(h2, upd("x")); !errors.Is(err, ErrConflict) {
		t.Fatalf("want conflict, got %v", err)
	}
	m.NotifyFlushed(cts1)
	// Non-overlapping rows don't conflict.
	h3 := m.Begin("c1")
	h4 := m.Begin("c2")
	cts3, err := m.Commit(h3, upd("a"))
	if err != nil {
		t.Fatal(err)
	}
	cts4, err := m.Commit(h4, upd("b"))
	if err != nil {
		t.Fatal(err)
	}
	m.NotifyFlushed(cts3)
	m.NotifyFlushed(cts4)
	// Sequential transactions on the same row don't conflict: the earlier
	// commit is flushed, so the fresh snapshot covers it.
	h5 := m.Begin("c1")
	if _, err := m.Commit(h5, upd("x")); err != nil {
		t.Fatalf("sequential rewrite must pass: %v", err)
	}
	_, aborts := m.Stats()
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
}

func TestAbortDiscards(t *testing.T) {
	m, l := newTM(t)
	h := m.Begin("c1")
	m.Abort(h)
	if _, err := m.Commit(h, upd("a")); !errors.Is(err, ErrTxnNotActive) {
		t.Fatalf("commit after abort: %v", err)
	}
	recs, _ := l.After(0)
	if len(recs) != 0 {
		t.Fatal("aborted txn reached the log")
	}
}

func TestReadOnlyCommitSkipsLog(t *testing.T) {
	m, l := newTM(t)
	h := m.Begin("c1")
	if _, err := m.Commit(h, nil); err != nil {
		t.Fatal(err)
	}
	recs, _ := l.After(0)
	if len(recs) != 0 {
		t.Fatal("read-only txn logged")
	}
}

func TestCommitObserverOrdered(t *testing.T) {
	m, _ := newTM(t)
	var mu sync.Mutex
	var seen []kv.Timestamp
	m.AddCommitObserver(observerFunc(func(client string, ts kv.Timestamp) {
		mu.Lock()
		seen = append(seen, ts)
		mu.Unlock()
	}))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.BeginLatest("c") // no flusher in this unit test
			_, _ = m.Commit(h, upd(fmt.Sprintf("r%d", i)))
		}(i)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 32 {
		t.Fatalf("observed %d commits", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("observer saw out-of-order commits: %v", seen)
		}
	}
}

type observerFunc func(string, kv.Timestamp)

func (f observerFunc) OnCommitAssigned(c string, ts kv.Timestamp) { f(c, ts) }

func TestSnapshotReadsOwnEpoch(t *testing.T) {
	m, _ := newTM(t)
	h1 := m.Begin("c1")
	cts, err := m.Commit(h1, upd("a"))
	if err != nil {
		t.Fatal(err)
	}
	// Until the flush is notified, the frontier-based snapshot excludes
	// the commit; after NotifyFlushed it includes it.
	h2 := m.BeginSnapshot("c1")
	if h2.StartTS >= cts {
		t.Fatalf("pre-flush snapshot %d includes unflushed commit %d", h2.StartTS, cts)
	}
	m.NotifyFlushed(cts)
	h3 := m.Begin("c1") // waits (trivially) for the flushed frontier
	if h3.StartTS < cts {
		t.Fatalf("post-flush snapshot %d misses commit %d", h3.StartTS, cts)
	}
}

func TestVisibilityFrontier(t *testing.T) {
	m, _ := newTM(t)
	h1 := m.BeginLatest("c1")
	cts1, _ := m.Commit(h1, upd("a"))
	h2 := m.BeginLatest("c1")
	cts2, _ := m.Commit(h2, upd("b"))
	if f := m.Frontier(); f != 0 {
		t.Fatalf("frontier %d before any flush", f)
	}
	// Flushing the LATER commit must not advance past the earlier one.
	m.NotifyFlushed(cts2)
	if f := m.Frontier(); f >= cts1 {
		t.Fatalf("frontier %d advanced past unflushed %d", f, cts1)
	}
	m.NotifyFlushed(cts1)
	if f := m.Frontier(); f != cts2 {
		t.Fatalf("frontier = %d, want %d", f, cts2)
	}
	// BeginSnapshot reads the frontier; BeginLatest the newest issue.
	h3 := m.BeginSnapshot("c1")
	if h3.StartTS != cts2 {
		t.Fatalf("frontier snapshot = %d, want %d", h3.StartTS, cts2)
	}
	h4 := m.BeginLatest("c1")
	if h4.StartTS != m.LastIssued() {
		t.Fatalf("latest snapshot = %d, want %d", h4.StartTS, m.LastIssued())
	}
}

func TestConflictWindowRespectsSnapshot(t *testing.T) {
	m, _ := newTM(t)
	// h old snapshot; a commit lands after h began; h writing same row
	// conflicts, but a FRESH txn does not.
	h := m.Begin("cold")
	hNew := m.Begin("cnew")
	cts, err := m.Commit(hNew, upd("row"))
	if err != nil {
		t.Fatal(err)
	}
	m.NotifyFlushed(cts) // frontier now covers the commit
	h2 := m.Begin("cnew2")
	if _, err := m.Commit(h2, upd("row")); err != nil {
		t.Fatalf("fresh txn conflicted: %v", err)
	}
	if _, err := m.Commit(h, upd("row")); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale txn must conflict: %v", err)
	}
}

func TestManyConcurrentCommitsUniqueTimestamps(t *testing.T) {
	m, _ := newTM(t)
	const n = 200
	out := make(chan kv.Timestamp, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := m.BeginLatest("c")
			cts, err := m.Commit(h, upd(fmt.Sprintf("r%d", i)))
			if err != nil {
				t.Errorf("commit: %v", err)
				return
			}
			out <- cts
		}(i)
	}
	wg.Wait()
	close(out)
	seen := make(map[kv.Timestamp]bool)
	for ts := range out {
		if seen[ts] {
			t.Fatalf("duplicate commit ts %d", ts)
		}
		seen[ts] = true
	}
	if len(seen) != n {
		t.Fatalf("%d unique timestamps, want %d", len(seen), n)
	}
}
