package dfs

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"txkv/internal/storage"
)

func diskOpenLog(t *testing.T, root string) func(name string) (*storage.Log, error) {
	t.Helper()
	return func(name string) (*storage.Log, error) {
		be, err := storage.NewDiskBackend(filepath.Join(root, name))
		if err != nil {
			return nil, err
		}
		return storage.Open(storage.Config{Backend: be})
	}
}

func TestPersistReopenRestoresSyncedFiles(t *testing.T) {
	root := t.TempDir()
	fs, err := Open(Config{DataNodes: 3, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	// One fully synced file with multiple chunks.
	w, err := fs.Create("/wal/a.log")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	var want []byte
	for i := 0; i < 3; i++ {
		part := bytes.Repeat([]byte{byte('a' + i)}, 100)
		want = append(want, part...)
		if err := w.Append(part); err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("sync: %v", err)
		}
	}
	// A second file whose tail is appended but never synced: the tail must
	// not survive (crash-consistent semantics).
	w2, err := fs.Create("/wal/b.log")
	if err != nil {
		t.Fatalf("create b: %v", err)
	}
	if err := w2.Append([]byte("durable")); err != nil {
		t.Fatalf("append b: %v", err)
	}
	if err := w2.Sync(); err != nil {
		t.Fatalf("sync b: %v", err)
	}
	if err := w2.Append([]byte("lost-tail")); err != nil {
		t.Fatalf("append b tail: %v", err)
	}
	// A renamed and a deleted file.
	w3, _ := fs.Create("/tmp/c")
	_ = w3.Append([]byte("c-data"))
	_ = w3.Sync()
	_ = w3.Close()
	if err := fs.Rename("/tmp/c", "/data/c"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	w4, _ := fs.Create("/tmp/d")
	_ = w4.Append([]byte("d-data"))
	_ = w4.Sync()
	_ = w4.Close()
	if err := fs.Delete("/tmp/d"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart the process": reopen over the same logs.
	fs2, err := Open(Config{DataNodes: 3, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()

	got, err := fs2.ReadAll("/wal/a.log")
	if err != nil {
		t.Fatalf("read a: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("a.log = %d bytes, want %d", len(got), len(want))
	}
	if got, err := fs2.ReadAll("/wal/b.log"); err != nil || string(got) != "durable" {
		t.Fatalf("b.log = %q (%v), want only the synced prefix", got, err)
	}
	if got, err := fs2.ReadAll("/data/c"); err != nil || string(got) != "c-data" {
		t.Fatalf("renamed c = %q (%v)", got, err)
	}
	if fs2.Exists("/tmp/c") || fs2.Exists("/tmp/d") {
		t.Fatal("stale paths resurrected after reopen")
	}
	// The restored file keeps serving reads with one data node down
	// (replication survived the restart).
	if err := fs2.CrashDataNode("dn-0"); err != nil {
		t.Fatalf("crash dn-0: %v", err)
	}
	if _, err := fs2.ReadAll("/wal/a.log"); err != nil {
		t.Fatalf("read a with dn-0 down: %v", err)
	}
}

// TestPersistReopenDropsNeverSyncedFiles guards the crash window between
// Create and the first Sync: the replayed filesystem must not keep the
// empty path (an empty store file would fail to open and brick every
// subsequent cluster reopen).
func TestPersistReopenDropsNeverSyncedFiles(t *testing.T) {
	root := t.TempDir()
	fs, err := Open(Config{DataNodes: 2, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Created, appended, never synced — the crash comes "now".
	w, err := fs.Create("/data/t/r/00000001.sf")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	_ = w.Append([]byte("buffered, not durable"))
	// A synced sibling must survive.
	w2, _ := fs.Create("/data/t/r/00000000.sf")
	_ = w2.Append([]byte("durable"))
	if err := w2.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	fs.Close()

	fs2, err := Open(Config{DataNodes: 2, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	if fs2.Exists("/data/t/r/00000001.sf") {
		t.Fatal("never-synced file survived reopen")
	}
	if got := fs2.List("/data/t/r/"); len(got) != 1 {
		t.Fatalf("listed %v, want only the synced file", got)
	}
	if got, err := fs2.ReadAll("/data/t/r/00000000.sf"); err != nil || string(got) != "durable" {
		t.Fatalf("synced sibling = %q (%v)", got, err)
	}
}

func TestPersistReopenManyFilesAndRanges(t *testing.T) {
	root := t.TempDir()
	fs, err := Open(Config{DataNodes: 2, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	contents := map[string][]byte{}
	for i := 0; i < 10; i++ {
		path := fmt.Sprintf("/data/t/r/%08d.sf", i)
		w, err := fs.Create(path)
		if err != nil {
			t.Fatalf("create %s: %v", path, err)
		}
		data := bytes.Repeat([]byte{byte(i)}, 64+i)
		contents[path] = data
		_ = w.Append(data)
		if err := w.Sync(); err != nil {
			t.Fatalf("sync %s: %v", path, err)
		}
		_ = w.Close()
	}
	fs.Close()

	fs2, err := Open(Config{DataNodes: 2, Replication: 2, OpenLog: diskOpenLog(t, root)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer fs2.Close()
	paths := fs2.List("/data/t/r/")
	if len(paths) != 10 {
		t.Fatalf("listed %d paths, want 10", len(paths))
	}
	for path, want := range contents {
		if sz, err := fs2.Size(path); err != nil || sz != int64(len(want)) {
			t.Fatalf("size %s = %d (%v), want %d", path, sz, err, len(want))
		}
		got, err := fs2.ReadRange(path, 4, 16)
		if err != nil {
			t.Fatalf("read range %s: %v", path, err)
		}
		if !bytes.Equal(got, want[4:20]) {
			t.Fatalf("range read %s mismatch", path)
		}
	}
	// Writes keep flowing after a reopen (chunk ids must not collide).
	w, err := fs2.Create("/data/after")
	if err != nil {
		t.Fatalf("create after reopen: %v", err)
	}
	_ = w.Append([]byte("fresh"))
	if err := w.Sync(); err != nil {
		t.Fatalf("sync after reopen: %v", err)
	}
	for path, want := range contents {
		got, err := fs2.ReadAll(path)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("old file %s damaged by post-reopen write: %v", path, err)
		}
	}
}
