// Package dfs implements an HDFS-like distributed filesystem simulation: a
// name node that maps paths to sequences of replicated chunks, and data
// nodes that hold chunk replicas. Files are append-only and write-once (like
// HDFS); durability follows HDFS hflush/hsync semantics:
//
//   - Writer.Append buffers data in the *writer's* memory. It is NOT durable
//     and is lost if the writing process (e.g. a region server) crashes.
//   - Writer.Sync ships the buffer as a chunk to Replication live data nodes
//     and returns only once all replicas acknowledge, paying the configured
//     sync latency. Synced data survives the writer's crash.
//   - A data-node crash makes its replicas unavailable but does not destroy
//     them (disks survive restarts); a chunk is readable while at least one
//     replica is on a live node.
//
// These are exactly the semantics the paper's recovery protocol depends on:
// the HBase write-ahead log is persisted to the DFS asynchronously, so a
// region-server failure loses the unsynced WAL tail, which the transaction
// manager's log then covers.
package dfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"txkv/internal/metrics"
	"txkv/internal/storage"
)

// Filesystem errors.
var (
	ErrNotFound    = errors.New("dfs: file not found")
	ErrExists      = errors.New("dfs: file already exists")
	ErrNoDataNodes = errors.New("dfs: no live data nodes")
	ErrDataLoss    = errors.New("dfs: chunk unavailable on all replicas")
	ErrClosed      = errors.New("dfs: writer closed")
)

// Config controls the simulated filesystem.
type Config struct {
	// Replication is the number of data nodes each chunk is written to.
	// The paper's evaluation uses 2.
	Replication int
	// DataNodes is the number of data nodes to create.
	DataNodes int
	// SyncLatency is the time one Sync takes (replica transfer + fsync on
	// the pipeline). This is the dominant cost that makes synchronous
	// persistence slow in Figure 2(a).
	SyncLatency time.Duration
	// ReadLatency is the time one ranged read (ReadRange / ReadAll) takes,
	// simulating a disk seek plus network fetch from a data node. Block
	// cache misses in the store pay this; it drives the cache warm-up
	// effect after fail-over in Figure 3.
	ReadLatency time.Duration
	// OpenLog, when set, enables durable persistence: the name node
	// journals metadata through the "meta" storage log and every data node
	// journals block contents through a log named after it. Reopening a
	// filesystem over the same logs (via Open) restores all synced state.
	// Nil keeps the filesystem purely in-process, the seed's behavior.
	OpenLog func(name string) (*storage.Log, error)
	// Reclaim, when set, receives the space-reclamation counters
	// (segments dropped, bytes reclaimed) from CompactLogs passes. Nil
	// records nothing.
	Reclaim *metrics.ReclaimMetrics
}

func (c Config) withDefaults() Config {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.DataNodes <= 0 {
		c.DataNodes = c.Replication
	}
	return c
}

type chunk struct {
	id       uint64
	size     int
	replicas []string // data-node IDs
}

type file struct {
	chunks []chunk
	open   bool // a writer currently owns the file
}

type dataNode struct {
	id     string
	alive  bool
	blocks map[uint64][]byte
	log    *storage.Log // nil without persistence
}

// Stats reports filesystem-wide counters, used by benchmarks.
type Stats struct {
	Files     int
	Syncs     int64
	BytesSync int64
	// LogCompactions counts completed CompactLogs passes this
	// incarnation; LogBytesReclaimed totals the segment bytes they
	// dropped. LogCheckpoints counts complete checkpoint records found at
	// replay (at most one survives each compaction's segment drop).
	LogCompactions    int64
	LogBytesReclaimed int64
	LogCheckpoints    int64
}

// FS is the filesystem: the name node plus its data nodes, all in-process.
// FS methods are safe for concurrent use.
type FS struct {
	cfg Config

	mu      sync.Mutex
	files   map[string]*file
	nodes   map[string]*dataNode
	nodeIDs []string // stable ordering for placement
	nextID  uint64
	place   int // round-robin placement cursor
	stats   Stats

	metaLog *storage.Log            // nil without persistence
	reclaim *metrics.ReclaimMetrics // nil-safe reclamation counters

	// compactMu serializes CompactLogs passes; ckptEpoch numbers them
	// (guarded by mu, restored from checkpoint records at replay).
	compactMu sync.Mutex
	ckptEpoch uint64
	// persistMu fences checkpoint snapshots away from in-flight mutation
	// persists. Mutators (Create, Delete, Rename, commitChunk) hold it
	// shared from their in-memory registration until their journal wait —
	// and a possible failure rollback — completes; CompactLogs holds it
	// exclusively while snapshotting. Without the fence a checkpoint
	// could durably record a registration whose own journal append later
	// fails and is rolled back: a phantom chunk (duplicated file bytes
	// once the writer retries) or a resurrected/lost file at the next
	// replay. Acquired before mu when both are held.
	persistMu sync.RWMutex
	// testCompactHook, when set by tests before any concurrent use, is
	// called between compaction stages to simulate a crash at that point.
	testCompactHook func(stage string) error
}

// New creates a memory-only filesystem with cfg.DataNodes data nodes named
// "dn-0"... For a persistent filesystem use Open.
func New(cfg Config) *FS {
	cfg.OpenLog = nil
	fs, err := Open(cfg)
	if err != nil {
		panic(err) // unreachable: the memory-only path cannot fail
	}
	return fs
}

// Open creates a filesystem, replaying existing persistence logs when
// cfg.OpenLog is set: every file whose data was synced before the previous
// process stopped is restored, chunks that never became durable are
// dropped (they were never acknowledged).
func Open(cfg Config) (*FS, error) {
	cfg = cfg.withDefaults()
	fs := &FS{
		cfg:     cfg,
		files:   make(map[string]*file),
		nodes:   make(map[string]*dataNode),
		reclaim: cfg.Reclaim,
	}
	for i := 0; i < cfg.DataNodes; i++ {
		id := fmt.Sprintf("dn-%d", i)
		fs.nodes[id] = &dataNode{id: id, alive: true, blocks: make(map[uint64][]byte)}
		fs.nodeIDs = append(fs.nodeIDs, id)
	}
	if cfg.OpenLog != nil {
		meta, err := cfg.OpenLog("meta")
		if err != nil {
			return nil, fmt.Errorf("dfs: open meta log: %w", err)
		}
		fs.metaLog = meta
		if err := fs.replayPersisted(cfg); err != nil {
			_ = fs.Close()
			return nil, err
		}
	}
	return fs, nil
}

// CrashDataNode marks a data node down; its replicas become unavailable
// until RestartDataNode.
func (fs *FS) CrashDataNode(id string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[id]
	if !ok {
		return fmt.Errorf("dfs: unknown data node %q", id)
	}
	n.alive = false
	return nil
}

// RestartDataNode brings a crashed data node back; its on-disk blocks are
// intact.
func (fs *FS) RestartDataNode(id string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, ok := fs.nodes[id]
	if !ok {
		return fmt.Errorf("dfs: unknown data node %q", id)
	}
	n.alive = true
	return nil
}

// DataNodeIDs returns the IDs of all data nodes.
func (fs *FS) DataNodeIDs() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return append([]string(nil), fs.nodeIDs...)
}

// Stats returns a snapshot of filesystem counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	s := fs.stats
	s.Files = len(fs.files)
	return s
}

// pickReplicas chooses up to Replication live data nodes round-robin.
// Caller holds fs.mu.
func (fs *FS) pickReplicas() ([]*dataNode, error) {
	var live []*dataNode
	n := len(fs.nodeIDs)
	for i := 0; i < n; i++ {
		nd := fs.nodes[fs.nodeIDs[(fs.place+i)%n]]
		if nd.alive {
			live = append(live, nd)
		}
		if len(live) == fs.cfg.Replication {
			break
		}
	}
	fs.place = (fs.place + 1) % n
	if len(live) == 0 {
		return nil, ErrNoDataNodes
	}
	return live, nil
}

// Create creates a new append-only file and returns its writer. It fails if
// the path already exists.
func (fs *FS) Create(path string) (*Writer, error) {
	fs.persistMu.RLock()
	defer fs.persistMu.RUnlock()
	fs.mu.Lock()
	if _, ok := fs.files[path]; ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	fs.files[path] = &file{open: true}
	wait := fs.appendMetaLocked(encodeCreateRec(path))
	fs.mu.Unlock()
	if err := waitPersist([]<-chan storage.AppendResult{wait}); err != nil {
		fs.mu.Lock()
		delete(fs.files, path)
		fs.mu.Unlock()
		return nil, err
	}
	return &Writer{fs: fs, path: path}, nil
}

// Delete removes a file. Deleting a missing file returns ErrNotFound. With
// persistence, a failed journal append rolls the removal back so memory and
// journal never diverge (the file would otherwise resurrect at reopen).
func (fs *FS) Delete(path string) error {
	type savedBlock struct {
		nd   *dataNode
		id   uint64
		data []byte
	}
	fs.persistMu.RLock()
	defer fs.persistMu.RUnlock()
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var saved []savedBlock
	for _, c := range f.chunks {
		for _, r := range c.replicas {
			if nd, ok := fs.nodes[r]; ok {
				if data, ok := nd.blocks[c.id]; ok {
					saved = append(saved, savedBlock{nd: nd, id: c.id, data: data})
					delete(nd.blocks, c.id)
				}
			}
		}
	}
	delete(fs.files, path)
	wait := fs.appendMetaLocked(encodeDeleteRec(path))
	fs.mu.Unlock()
	if err := waitPersist([]<-chan storage.AppendResult{wait}); err != nil {
		fs.mu.Lock()
		fs.files[path] = f
		for _, s := range saved {
			s.nd.blocks[s.id] = s.data
		}
		fs.mu.Unlock()
		return err
	}
	return nil
}

// Rename atomically moves a file, as the name-node metadata operation it is.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.persistMu.RLock()
	defer fs.persistMu.RUnlock()
	fs.mu.Lock()
	f, ok := fs.files[oldPath]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, oldPath)
	}
	if _, ok := fs.files[newPath]; ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, newPath)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = f
	wait := fs.appendMetaLocked(encodeRenameRec(oldPath, newPath))
	fs.mu.Unlock()
	if err := waitPersist([]<-chan storage.AppendResult{wait}); err != nil {
		fs.mu.Lock()
		if fs.files[newPath] == f {
			delete(fs.files, newPath)
			fs.files[oldPath] = f
		}
		fs.mu.Unlock()
		return err
	}
	return nil
}

// Exists reports whether path names a file.
func (fs *FS) Exists(path string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[path]
	return ok
}

// List returns all paths with the given prefix, sorted.
func (fs *FS) List(prefix string) []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Size returns the durable (synced) length of the file in bytes.
func (fs *FS) Size(path string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var n int64
	for _, c := range f.chunks {
		n += int64(c.size)
	}
	return n, nil
}

// ReadAll returns the full durable contents of the file. It fails with
// ErrDataLoss if any chunk has no live replica. It pays one ReadLatency.
func (fs *FS) ReadAll(path string) ([]byte, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	var out []byte
	for _, c := range f.chunks {
		b, err := fs.readChunkLocked(c)
		if err != nil {
			fs.mu.Unlock()
			return nil, err
		}
		out = append(out, b...)
	}
	lat := fs.cfg.ReadLatency
	fs.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return out, nil
}

// ReadRange reads n bytes starting at byte offset off within the durable
// contents of the file. It pays one ReadLatency (one simulated seek+fetch).
// Reads past the durable end are truncated; a read entirely past the end
// returns an empty slice.
func (fs *FS) ReadRange(path string, off int64, n int) ([]byte, error) {
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]byte, 0, n)
	pos := int64(0)
	for _, c := range f.chunks {
		if len(out) >= n {
			break
		}
		end := pos + int64(c.size)
		if end <= off {
			pos = end
			continue
		}
		b, err := fs.readChunkLocked(c)
		if err != nil {
			fs.mu.Unlock()
			return nil, err
		}
		lo := int64(0)
		if off > pos {
			lo = off - pos
		}
		hi := int64(c.size)
		if remain := int64(n - len(out)); hi-lo > remain {
			hi = lo + remain
		}
		out = append(out, b[lo:hi]...)
		pos = end
	}
	lat := fs.cfg.ReadLatency
	fs.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	return out, nil
}

func (fs *FS) readChunkLocked(c chunk) ([]byte, error) {
	for _, r := range c.replicas {
		nd, ok := fs.nodes[r]
		if !ok || !nd.alive {
			continue
		}
		if b, ok := nd.blocks[c.id]; ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: chunk %d", ErrDataLoss, c.id)
}

// Writer appends to a file. Appends buffer in the writer's memory; Sync
// makes them durable. Writer methods are safe for concurrent use (the WAL
// appends from handler goroutines while a background syncer calls Sync).
type Writer struct {
	fs   *FS
	path string

	mu     sync.Mutex
	buf    []byte
	closed bool
}

// Append adds data to the writer's in-memory buffer. Not durable until Sync.
func (w *Writer) Append(b []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	w.buf = append(w.buf, b...)
	return nil
}

// Buffered returns the number of not-yet-synced bytes.
func (w *Writer) Buffered() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Sync makes all buffered data durable: it writes one chunk to Replication
// live data nodes and sleeps the configured sync latency. A Sync with an
// empty buffer is a no-op and pays nothing.
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if len(w.buf) == 0 {
		w.mu.Unlock()
		return nil
	}
	data := w.buf
	w.buf = nil
	w.mu.Unlock()

	if err := w.fs.commitChunk(w.path, data); err != nil {
		// Put the data back so a retry can succeed (pipeline recovery).
		w.mu.Lock()
		w.buf = append(data, w.buf...)
		w.mu.Unlock()
		return err
	}
	return nil
}

// commitChunk registers one durable chunk for path. With persistence, the
// chunk is acknowledged only once its payload is durable on every replica's
// log and its metadata on the name-node log; the simulated sync latency is
// charged on top (it models the replication pipeline, not the local fsync).
func (fs *FS) commitChunk(path string, data []byte) error {
	fs.persistMu.RLock()
	defer fs.persistMu.RUnlock()
	fs.mu.Lock()
	f, ok := fs.files[path]
	if !ok {
		fs.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	replicas, err := fs.pickReplicas()
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	id := fs.nextID
	fs.nextID++
	c := chunk{id: id, size: len(data)}
	stored := append([]byte(nil), data...)
	var blockLogs []*storage.Log
	for _, nd := range replicas {
		nd.blocks[id] = stored
		c.replicas = append(c.replicas, nd.id)
		if nd.log != nil {
			blockLogs = append(blockLogs, nd.log)
		}
	}
	f.chunks = append(f.chunks, c)
	meta := fs.metaLog
	fs.stats.Syncs++
	fs.stats.BytesSync += int64(len(data))
	lat := fs.cfg.SyncLatency
	fs.mu.Unlock()

	// Journal outside fs.mu: an enqueue writes the frame inline and may
	// even fsync on a segment rotation — neither should stall every other
	// filesystem operation. Ordering does not depend on the enqueue
	// order: chunk ids are assigned under fs.mu and replay sorts each
	// file's chunks by id.
	var waits []<-chan storage.AppendResult
	for _, log := range blockLogs {
		waits = append(waits, log.Enqueue(encodeBlockRec(id, stored)))
	}
	if meta != nil {
		waits = append(waits, meta.Enqueue(encodeChunkRec(path, c)))
	}

	if err := waitPersist(waits); err != nil {
		// Roll the registration back so the writer's retry (which
		// re-buffers the data) cannot leave a phantom chunk behind.
		fs.mu.Lock()
		for i, cc := range f.chunks {
			if cc.id == id {
				f.chunks = append(f.chunks[:i], f.chunks[i+1:]...)
				break
			}
		}
		for _, nd := range replicas {
			delete(nd.blocks, id)
		}
		fs.stats.Syncs--
		fs.stats.BytesSync -= int64(len(data))
		fs.mu.Unlock()
		return err
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	return nil
}

// Close discards any unsynced buffer (crash-consistent: only synced data is
// durable) unless sync is called first, and releases the writer.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	w.buf = nil
	w.fs.mu.Lock()
	if f, ok := w.fs.files[w.path]; ok {
		f.open = false
	}
	w.fs.mu.Unlock()
	return nil
}

// Abandon simulates the writer's process crashing: the unsynced buffer is
// lost. Identical to Close but named for intent at call sites.
func (w *Writer) Abandon() { _ = w.Close() }
