package dfs

// FileSystem is the filesystem surface the storage layers (WAL, store
// files, region metadata) are written against. *FS implements it directly;
// the RPC layer implements it with a client whose operations execute in the
// master process, which is how region-server processes on other machines
// share one DFS namespace (the HBase-over-HDFS deployment shape): a WAL
// written by one process is readable by the master for splitting, and store
// files flushed by one server are openable by whichever server the region
// is reassigned to.
type FileSystem interface {
	// CreateFile opens a new append-only file. Files are write-once: the
	// path must not already exist.
	CreateFile(path string) (FileWriter, error)
	Delete(path string) error
	Rename(oldPath, newPath string) error
	Exists(path string) bool
	List(prefix string) []string
	Size(path string) (int64, error)
	ReadAll(path string) ([]byte, error)
	ReadRange(path string, off int64, n int) ([]byte, error)
}

// FileWriter is the append-only writer handle of a FileSystem, with the
// HDFS hflush/hsync durability split: Append buffers in the writer's
// process and is lost on crash, Sync replicates the buffer and returns once
// durable.
type FileWriter interface {
	Append(b []byte) error
	Buffered() int
	Sync() error
	Close() error
	Abandon()
}

// CreateFile adapts Create to the FileSystem interface (Go interfaces have
// no covariant returns, so the concrete *Writer return of Create cannot
// satisfy it directly).
func (fs *FS) CreateFile(path string) (FileWriter, error) { return fs.Create(path) }
