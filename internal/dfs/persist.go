package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"txkv/internal/storage"
)

// Durable persistence for the simulated filesystem. When Config.OpenLog is
// set, the name node journals every metadata operation (create, delete,
// rename, chunk commit) to a "meta" storage log and each data node journals
// its block contents to its own log. Open replays the logs, so a filesystem
// reopened over the same backing directory restores every synced file —
// which is what lets a whole cluster stop and come back (internal/cluster's
// reopen path).
//
// Replay is conservative about partial writes: a chunk whose payload never
// became durable on any replica log is dropped from its file (it was never
// acknowledged — Writer.Sync waits for both the replica and meta records),
// and a file whose every chunk vanished that way is removed entirely.
// Because Writer.Sync ships whole buffered records as one chunk, dropping a
// chunk never tears the framing of the WAL stored above the filesystem.

// Meta-log record ops.
const (
	persistOpCreate = 1
	persistOpDelete = 2
	persistOpRename = 3
	persistOpChunk  = 4
	// Checkpoint markers bracket a CompactLogs rewrite of the live state;
	// the payload is the checkpoint epoch. Replay needs no special
	// handling beyond restoring the epoch — checkpoint records are
	// ordinary create/chunk records made idempotent by chunk-id dedup.
	persistOpCkptBegin = 5
	persistOpCkptEnd   = 6
)

var errBadPersistRecord = errors.New("dfs: malformed persistence record")

func appendLenPrefixed(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func readLenPrefixed(b []byte) (string, []byte, error) {
	n, c := binary.Uvarint(b)
	if c <= 0 || uint64(len(b)-c) < n {
		return "", nil, errBadPersistRecord
	}
	return string(b[c : c+int(n)]), b[c+int(n):], nil
}

func encodeCreateRec(path string) []byte {
	return appendLenPrefixed([]byte{persistOpCreate}, path)
}

func encodeDeleteRec(path string) []byte {
	return appendLenPrefixed([]byte{persistOpDelete}, path)
}

func encodeRenameRec(oldPath, newPath string) []byte {
	return appendLenPrefixed(appendLenPrefixed([]byte{persistOpRename}, oldPath), newPath)
}

func encodeChunkRec(path string, c chunk) []byte {
	b := appendLenPrefixed([]byte{persistOpChunk}, path)
	b = binary.AppendUvarint(b, c.id)
	b = binary.AppendUvarint(b, uint64(c.size))
	b = binary.AppendUvarint(b, uint64(len(c.replicas)))
	for _, r := range c.replicas {
		b = appendLenPrefixed(b, r)
	}
	return b
}

func decodeChunkRec(b []byte) (string, chunk, error) {
	path, b, err := readLenPrefixed(b)
	if err != nil {
		return "", chunk{}, err
	}
	var c chunk
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return "", chunk{}, errBadPersistRecord
	}
	b = b[n:]
	c.id = id
	size, n := binary.Uvarint(b)
	if n <= 0 {
		return "", chunk{}, errBadPersistRecord
	}
	b = b[n:]
	c.size = int(size)
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return "", chunk{}, errBadPersistRecord
	}
	b = b[n:]
	for i := uint64(0); i < cnt; i++ {
		var r string
		if r, b, err = readLenPrefixed(b); err != nil {
			return "", chunk{}, err
		}
		c.replicas = append(c.replicas, r)
	}
	return path, c, nil
}

// encodeBlockRec frames one data-node block record: chunk id + payload.
func encodeBlockRec(id uint64, data []byte) []byte {
	b := binary.AppendUvarint(make([]byte, 0, len(data)+10), id)
	return append(b, data...)
}

func decodeBlockRec(b []byte) (uint64, []byte, error) {
	id, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errBadPersistRecord
	}
	return id, b[n:], nil
}

// appendMetaLocked enqueues a meta record while the caller holds fs.mu (so
// log order matches in-memory order) and returns the durability wait.
func (fs *FS) appendMetaLocked(rec []byte) <-chan storage.AppendResult {
	if fs.metaLog == nil {
		return nil
	}
	return fs.metaLog.Enqueue(rec)
}

func waitPersist(waits []<-chan storage.AppendResult) error {
	var firstErr error
	for _, w := range waits {
		if w == nil {
			continue
		}
		if res := <-w; res.Err != nil && firstErr == nil {
			firstErr = res.Err
		}
	}
	if firstErr != nil {
		return fmt.Errorf("dfs: persist: %w", firstErr)
	}
	return nil
}

// replayPersisted rebuilds the filesystem from its meta and node logs.
// Caller is Open, before the FS is shared; no locking needed.
func (fs *FS) replayPersisted(cfg Config) error {
	var maxID uint64
	discovered := map[string]bool{}
	// Chunk ids are assigned once and never reused, so a chunk record is
	// applied at most once per replay — the second copy a log-compaction
	// checkpoint (or a checkpoint replayed on top of surviving history)
	// produces is skipped instead of doubling the file.
	seenChunks := map[uint64]bool{}

	err := fs.metaLog.Replay(func(_ storage.RecordPos, payload []byte) error {
		if len(payload) == 0 {
			return nil
		}
		op, rest := payload[0], payload[1:]
		switch op {
		case persistOpCreate:
			path, _, err := readLenPrefixed(rest)
			if err != nil {
				return nil // damaged record: skip
			}
			if _, ok := fs.files[path]; !ok {
				fs.files[path] = &file{}
			}
		case persistOpDelete:
			path, _, err := readLenPrefixed(rest)
			if err != nil {
				return nil
			}
			delete(fs.files, path)
		case persistOpRename:
			oldPath, rest2, err := readLenPrefixed(rest)
			if err != nil {
				return nil
			}
			newPath, _, err := readLenPrefixed(rest2)
			if err != nil {
				return nil
			}
			if f, ok := fs.files[oldPath]; ok {
				delete(fs.files, oldPath)
				fs.files[newPath] = f
			}
		case persistOpChunk:
			path, c, err := decodeChunkRec(rest)
			if err != nil {
				return nil
			}
			if c.id >= maxID {
				maxID = c.id + 1
			}
			for _, r := range c.replicas {
				discovered[r] = true
			}
			if f, ok := fs.files[path]; ok && !seenChunks[c.id] {
				f.chunks = append(f.chunks, c)
				seenChunks[c.id] = true
			}
		case persistOpCkptBegin, persistOpCkptEnd:
			epoch, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil
			}
			if epoch > fs.ckptEpoch {
				fs.ckptEpoch = epoch
			}
			if op == persistOpCkptEnd {
				fs.stats.LogCheckpoints++
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("dfs: replay meta log: %w", err)
	}

	// Data nodes: the configured count plus any node a replayed chunk
	// references (a previous incarnation may have run with more nodes).
	for id := range discovered {
		if _, ok := fs.nodes[id]; !ok {
			fs.nodes[id] = &dataNode{id: id, alive: true, blocks: make(map[uint64][]byte)}
			fs.nodeIDs = append(fs.nodeIDs, id)
		}
	}
	sort.Slice(fs.nodeIDs, func(i, j int) bool {
		return nodeOrdinal(fs.nodeIDs[i]) < nodeOrdinal(fs.nodeIDs[j])
	})

	for _, id := range fs.nodeIDs {
		nd := fs.nodes[id]
		log, err := cfg.OpenLog(id)
		if err != nil {
			return fmt.Errorf("dfs: open node log %s: %w", id, err)
		}
		nd.log = log
		err = log.Replay(func(_ storage.RecordPos, payload []byte) error {
			cid, data, err := decodeBlockRec(payload)
			if err != nil {
				return nil
			}
			nd.blocks[cid] = append([]byte(nil), data...)
			if cid >= maxID {
				maxID = cid + 1
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("dfs: replay node log %s: %w", id, err)
		}
	}

	// Chunk ids are assigned in commit order under fs.mu, but the meta
	// records may have been enqueued in a different order — restore each
	// file's chunk order by id.
	for _, f := range fs.files {
		sort.Slice(f.chunks, func(i, j int) bool { return f.chunks[i].id < f.chunks[j].id })
	}

	// Drop chunks whose payload never became durable anywhere (never
	// acknowledged), and files torn down to zero chunks by that rule.
	blockExists := func(id uint64) bool {
		for _, nd := range fs.nodes {
			if _, ok := nd.blocks[id]; ok {
				return true
			}
		}
		return false
	}
	live := map[uint64]bool{}
	for path, f := range fs.files {
		kept := f.chunks[:0:0]
		for _, c := range f.chunks {
			if blockExists(c.id) {
				kept = append(kept, c)
				live[c.id] = true
			}
		}
		if len(kept) == 0 {
			// Nothing durable ever reached this path: either all its
			// chunks were torn, or it was created and the crash came
			// before the first sync. Either way no Sync for it returned,
			// so dropping it loses nothing acknowledged — and keeping it
			// would leave artifacts like an empty store file that fails
			// to open and bricks every subsequent cluster reopen.
			delete(fs.files, path)
			continue
		}
		f.chunks = kept
	}
	// Orphaned blocks (deleted files, dropped chunks) are not restored.
	for _, nd := range fs.nodes {
		for id := range nd.blocks {
			if !live[id] {
				delete(nd.blocks, id)
			}
		}
	}
	fs.nextID = maxID
	return nil
}

// nodeOrdinal orders "dn-3" numerically, unknown names last alphabetically.
func nodeOrdinal(id string) int {
	if n, ok := strings.CutPrefix(id, "dn-"); ok {
		var v int
		if _, err := fmt.Sscanf(n, "%d", &v); err == nil {
			return v
		}
	}
	return int(^uint(0) >> 1)
}

// Close releases the persistence logs (flushing pending syncs). A
// memory-only filesystem has nothing to release.
func (fs *FS) Close() error {
	fs.mu.Lock()
	meta := fs.metaLog
	fs.metaLog = nil
	var nodeLogs []*storage.Log
	for _, nd := range fs.nodes {
		if nd.log != nil {
			nodeLogs = append(nodeLogs, nd.log)
			nd.log = nil
		}
	}
	fs.mu.Unlock()

	var firstErr error
	for _, l := range nodeLogs {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if meta != nil {
		if err := meta.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
