package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sync"
	"testing"

	"txkv/internal/storage"
)

// smallSegOpenLog opens disk-backed logs with tiny segments so compaction
// has sealed segments to drop.
func smallSegOpenLog(t *testing.T, root string) func(name string) (*storage.Log, error) {
	t.Helper()
	return func(name string) (*storage.Log, error) {
		be, err := storage.NewDiskBackend(filepath.Join(root, name))
		if err != nil {
			return nil, err
		}
		return storage.Open(storage.Config{Backend: be, SegmentBytes: 4096})
	}
}

// memOpenLog shares in-memory backends across reopen, simulating a disk
// that survives the process.
func memOpenLog(backends map[string]*storage.MemBackend) func(name string) (*storage.Log, error) {
	var mu sync.Mutex
	return func(name string) (*storage.Log, error) {
		mu.Lock()
		be, ok := backends[name]
		if !ok {
			be = storage.NewMemBackend()
			backends[name] = be
		}
		mu.Unlock()
		return storage.Open(storage.Config{Backend: be, SegmentBytes: 4096})
	}
}

func dirBytes(t *testing.T, root string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(root, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			info, err := d.Info()
			if err != nil {
				return err
			}
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", root, err)
	}
	return total
}

// writeSyncedFile creates path and syncs chunks of the given payloads.
func writeSyncedFile(t *testing.T, f *FS, path string, payloads ...[]byte) []byte {
	t.Helper()
	w, err := f.Create(path)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	var want []byte
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatalf("append %s: %v", path, err)
		}
		if err := w.Sync(); err != nil {
			t.Fatalf("sync %s: %v", path, err)
		}
		want = append(want, p...)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
	return want
}

// TestCompactLogsReclaimsDeletedData: after deleting most files, a
// compaction pass must shrink the backing directory, and a reopen over the
// compacted logs must restore exactly the surviving files.
func TestCompactLogsReclaimsDeletedData(t *testing.T) {
	root := t.TempDir()
	cfg := Config{DataNodes: 3, Replication: 2, OpenLog: smallSegOpenLog(t, root)}
	f, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	payload := bytes.Repeat([]byte("x"), 2000)
	keepWant := map[string][]byte{}
	for i := 0; i < 12; i++ {
		path := fmt.Sprintf("/data/f%02d", i)
		want := writeSyncedFile(t, f, path, payload, payload)
		if i < 2 {
			keepWant[path] = want
		}
	}
	for i := 2; i < 12; i++ {
		if err := f.Delete(fmt.Sprintf("/data/f%02d", i)); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}

	before := dirBytes(t, root)
	cs, err := f.CompactLogs()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if cs.SegmentsDropped == 0 || cs.BytesReclaimed == 0 {
		t.Fatalf("nothing reclaimed: %+v", cs)
	}
	if cs.LiveFiles != 2 {
		t.Fatalf("live files = %d, want 2", cs.LiveFiles)
	}
	after := dirBytes(t, root)
	if after >= before {
		t.Fatalf("backing dir did not shrink: %d -> %d", before, after)
	}
	if st := f.Stats(); st.LogCompactions != 1 || st.LogBytesReclaimed == 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	f2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	for path, want := range keepWant {
		got, err := f2.ReadAll(path)
		if err != nil {
			t.Fatalf("read %s after compacted reopen: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s content mismatch after compacted reopen", path)
		}
	}
	for i := 2; i < 12; i++ {
		if f2.Exists(fmt.Sprintf("/data/f%02d", i)) {
			t.Fatalf("deleted file f%02d resurrected by compaction", i)
		}
	}
	if st := f2.Stats(); st.LogCheckpoints != 1 {
		t.Fatalf("replayed checkpoints = %d, want 1", st.LogCheckpoints)
	}
}

// TestCompactLogsCrashAtEveryStage: a crash at any stage of the compaction
// must recover to a filesystem serving exactly the pre-crash state — either
// the old layout (segments not yet dropped) or the new one.
func TestCompactLogsCrashAtEveryStage(t *testing.T) {
	stages := []string{"rotated", "meta-checkpointed", "meta-dropped", "node-checkpointed", "node-dropped"}
	errCrash := errors.New("simulated crash")
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			backends := map[string]*storage.MemBackend{}
			cfg := Config{DataNodes: 2, Replication: 2, OpenLog: memOpenLog(backends)}
			f, err := Open(cfg)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			payload := bytes.Repeat([]byte("y"), 1500)
			want := map[string][]byte{}
			for i := 0; i < 6; i++ {
				path := fmt.Sprintf("/f%d", i)
				c := writeSyncedFile(t, f, path, payload)
				if i%2 == 0 {
					want[path] = c
				}
			}
			for i := 0; i < 6; i++ {
				if i%2 != 0 {
					if err := f.Delete(fmt.Sprintf("/f%d", i)); err != nil {
						t.Fatalf("delete: %v", err)
					}
				}
			}

			f.testCompactHook = func(s string) error {
				if s == stage {
					return errCrash
				}
				return nil
			}
			if _, err := f.CompactLogs(); !errors.Is(err, errCrash) {
				t.Fatalf("compact: %v, want simulated crash", err)
			}
			_ = f.Close()

			f2, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", stage, err)
			}
			for path, w := range want {
				got, err := f2.ReadAll(path)
				if err != nil || !bytes.Equal(got, w) {
					t.Fatalf("%s after crash at %s: err=%v, equal=%v", path, stage, err, bytes.Equal(got, w))
				}
			}
			for i := 0; i < 6; i++ {
				if i%2 != 0 && f2.Exists(fmt.Sprintf("/f%d", i)) {
					t.Fatalf("deleted /f%d resurrected after crash at %s", i, stage)
				}
			}

			// The interrupted pass must be repeatable: a full compaction on
			// the recovered filesystem converges, and the result reopens.
			if _, err := f2.CompactLogs(); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
			_ = f2.Close()
			f3, err := Open(cfg)
			if err != nil {
				t.Fatalf("reopen after recovery compaction: %v", err)
			}
			defer f3.Close()
			for path, w := range want {
				got, err := f3.ReadAll(path)
				if err != nil || !bytes.Equal(got, w) {
					t.Fatalf("%s after recovery compaction: err=%v", path, err)
				}
			}
		})
	}
}

// TestCompactLogsConcurrentWriters: compaction passes racing acknowledged
// syncs must never lose a synced chunk — every acknowledged byte is present
// after a reopen over the compacted logs.
func TestCompactLogsConcurrentWriters(t *testing.T) {
	backends := map[string]*storage.MemBackend{}
	cfg := Config{DataNodes: 3, Replication: 2, OpenLog: memOpenLog(backends)}
	f, err := Open(cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}

	const writers = 4
	const chunksPer = 30
	var wg sync.WaitGroup
	wantMu := sync.Mutex{}
	want := map[string][]byte{}
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			path := fmt.Sprintf("/w%d", wi)
			w, err := f.Create(path)
			if err != nil {
				t.Errorf("create: %v", err)
				return
			}
			var acked []byte
			for c := 0; c < chunksPer; c++ {
				part := bytes.Repeat([]byte{byte('a' + wi)}, 200+c)
				if err := w.Append(part); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := w.Sync(); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
				acked = append(acked, part...)
			}
			_ = w.Close()
			wantMu.Lock()
			want[path] = acked
			wantMu.Unlock()
		}(wi)
	}
	// Churner: create-sync-delete cycles racing the checkpoints. A
	// checkpoint ordered after a concurrent delete record (or one taken
	// mid-persist) would resurrect these at reopen.
	const churnFiles = 20
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnFiles; i++ {
			path := fmt.Sprintf("/churn%d", i)
			w, err := f.Create(path)
			if err != nil {
				t.Errorf("churn create: %v", err)
				return
			}
			if err := w.Append([]byte("ephemeral")); err == nil {
				if err := w.Sync(); err != nil {
					t.Errorf("churn sync: %v", err)
					return
				}
			}
			_ = w.Close()
			if err := f.Delete(path); err != nil {
				t.Errorf("churn delete: %v", err)
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			if _, err := f.CompactLogs(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	// One final pass with everything quiesced, then the durability check.
	if _, err := f.CompactLogs(); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	_ = f.Close()
	f2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer f2.Close()
	for path, w := range want {
		got, err := f2.ReadAll(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("%s lost acknowledged bytes: got %d, want %d", path, len(got), len(w))
		}
	}
	for i := 0; i < churnFiles; i++ {
		if path := fmt.Sprintf("/churn%d", i); f2.Exists(path) {
			t.Fatalf("deleted %s resurrected by a racing checkpoint", path)
		}
	}
}
