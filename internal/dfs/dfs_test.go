package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	return New(cfg)
}

func TestCreateWriteSyncRead(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 2, DataNodes: 3})
	w, err := fs.Create("/wal/s1.log")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if got, _ := fs.ReadAll("/wal/s1.log"); len(got) != 0 {
		t.Fatalf("unsynced data visible: %q", got)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/wal/s1.log")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello world")) {
		t.Fatalf("ReadAll = %q", got)
	}
	if n, _ := fs.Size("/wal/s1.log"); n != 11 {
		t.Fatalf("Size = %d", n)
	}
}

func TestCreateExisting(t *testing.T) {
	fs := newTestFS(t, Config{})
	if _, err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create("/f"); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestUnsyncedBufferLostOnAbandon(t *testing.T) {
	fs := newTestFS(t, Config{})
	w, _ := fs.Create("/wal")
	_ = w.Append([]byte("durable|"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = w.Append([]byte("lost"))
	w.Abandon() // writer process crash

	got, err := fs.ReadAll("/wal")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("durable|")) {
		t.Fatalf("ReadAll = %q, want only the synced prefix", got)
	}
	if err := w.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

func TestReplicaSurvivesDataNodeCrash(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 2, DataNodes: 2})
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("abc"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.CrashDataNode("dn-0"); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/f")
	if err != nil {
		t.Fatalf("read with one replica down: %v", err)
	}
	if !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("got %q", got)
	}
}

func TestDataLossWhenAllReplicasDown(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 2, DataNodes: 2})
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("abc"))
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = fs.CrashDataNode("dn-0")
	_ = fs.CrashDataNode("dn-1")
	if _, err := fs.ReadAll("/f"); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
	// Restart brings the blocks back (disks survive).
	_ = fs.RestartDataNode("dn-1")
	if got, err := fs.ReadAll("/f"); err != nil || !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("after restart: %q, %v", got, err)
	}
}

func TestSyncFailsWithNoLiveNodes(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 1, DataNodes: 1})
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("abc"))
	_ = fs.CrashDataNode("dn-0")
	if err := w.Sync(); !errors.Is(err, ErrNoDataNodes) {
		t.Fatalf("err = %v, want ErrNoDataNodes", err)
	}
	// Buffer retained: retry succeeds after node restart.
	_ = fs.RestartDataNode("dn-0")
	if err := w.Sync(); err != nil {
		t.Fatalf("retry sync: %v", err)
	}
	if got, _ := fs.ReadAll("/f"); !bytes.Equal(got, []byte("abc")) {
		t.Fatalf("got %q", got)
	}
}

func TestUnderReplicationTolerated(t *testing.T) {
	// 3 requested replicas but only 1 live node: sync still succeeds with
	// fewer replicas, like HDFS under-replication.
	fs := newTestFS(t, Config{Replication: 3, DataNodes: 3})
	_ = fs.CrashDataNode("dn-1")
	_ = fs.CrashDataNode("dn-2")
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("x"))
	if err := w.Sync(); err != nil {
		t.Fatalf("under-replicated sync: %v", err)
	}
}

func TestDeleteAndRename(t *testing.T) {
	fs := newTestFS(t, Config{})
	w, _ := fs.Create("/a")
	_ = w.Append([]byte("1"))
	_ = w.Sync()
	if err := fs.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") || !fs.Exists("/b") {
		t.Fatal("rename did not move the file")
	}
	if err := fs.Rename("/missing", "/c"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("rename missing: %v", err)
	}
	if _, err := fs.Create("/a2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/b", "/a2"); !errors.Is(err, ErrExists) {
		t.Fatalf("rename onto existing: %v", err)
	}
	if err := fs.Delete("/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/b") {
		t.Fatal("delete left the file")
	}
	if err := fs.Delete("/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := fs.ReadAll("/b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("read deleted: %v", err)
	}
}

func TestList(t *testing.T) {
	fs := newTestFS(t, Config{})
	for _, p := range []string{"/wal/s1/f2", "/wal/s1/f1", "/wal/s2/f1", "/data/x"} {
		if _, err := fs.Create(p); err != nil {
			t.Fatal(err)
		}
	}
	got := fs.List("/wal/s1/")
	want := []string{"/wal/s1/f1", "/wal/s1/f2"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("List = %v, want %v", got, want)
	}
	if n := len(fs.List("")); n != 4 {
		t.Fatalf("List(\"\") = %d entries", n)
	}
}

func TestSyncLatencyPaid(t *testing.T) {
	fs := newTestFS(t, Config{SyncLatency: 10 * time.Millisecond})
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("x"))
	start := time.Now()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("sync took %v, want >= 10ms", el)
	}
	// Empty sync is free.
	start = time.Now()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("empty sync took %v", el)
	}
}

func TestConcurrentAppendSync(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 2, DataNodes: 3})
	w, _ := fs.Create("/f")
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				if err := w.Append([]byte{byte(i)}); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if j%10 == 0 {
					if err := w.Sync(); err != nil {
						t.Errorf("sync: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadAll("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*perWriter {
		t.Fatalf("len = %d, want %d", len(got), writers*perWriter)
	}
}

func TestStats(t *testing.T) {
	fs := newTestFS(t, Config{})
	w, _ := fs.Create("/f")
	_ = w.Append(make([]byte, 100))
	_ = w.Sync()
	s := fs.Stats()
	if s.Files != 1 || s.Syncs != 1 || s.BytesSync != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestManyFilesPlacementSpreads(t *testing.T) {
	fs := newTestFS(t, Config{Replication: 1, DataNodes: 4})
	for i := 0; i < 16; i++ {
		w, err := fs.Create(fmt.Sprintf("/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		_ = w.Append([]byte{1})
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// With round-robin placement over 4 nodes, crashing one node must not
	// make every file unreadable.
	_ = fs.CrashDataNode("dn-0")
	readable := 0
	for i := 0; i < 16; i++ {
		if _, err := fs.ReadAll(fmt.Sprintf("/f%d", i)); err == nil {
			readable++
		}
	}
	if readable == 0 || readable == 16 {
		t.Fatalf("placement not spread: %d/16 readable after one node crash", readable)
	}
}

func TestReadRange(t *testing.T) {
	fs := newTestFS(t, Config{})
	w, _ := fs.Create("/f")
	// Three separate chunks: "abc", "defg", "hi".
	for _, part := range []string{"abc", "defg", "hi"} {
		_ = w.Append([]byte(part))
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		off  int64
		n    int
		want string
	}{
		{0, 3, "abc"},
		{0, 9, "abcdefghi"},
		{2, 4, "cdef"},
		{3, 4, "defg"},
		{7, 10, "hi"},
		{9, 5, ""},
		{100, 5, ""},
	}
	for _, tt := range tests {
		got, err := fs.ReadRange("/f", tt.off, tt.n)
		if err != nil {
			t.Fatalf("ReadRange(%d,%d): %v", tt.off, tt.n, err)
		}
		if string(got) != tt.want {
			t.Errorf("ReadRange(%d,%d) = %q, want %q", tt.off, tt.n, got, tt.want)
		}
	}
	if _, err := fs.ReadRange("/missing", 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing file: %v", err)
	}
}

func TestReadLatencyPaid(t *testing.T) {
	fs := newTestFS(t, Config{ReadLatency: 10 * time.Millisecond})
	w, _ := fs.Create("/f")
	_ = w.Append([]byte("abcdef"))
	_ = w.Sync()
	start := time.Now()
	if _, err := fs.ReadRange("/f", 0, 3); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("ranged read took %v, want >= 10ms", el)
	}
}
