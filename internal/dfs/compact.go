package dfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"txkv/internal/storage"
)

// Log compaction. The persistence logs (name-node meta journal, per-node
// block journals) are append-only: without reclamation the backing
// directory grows with all-time synced bytes and reopen replays history
// that deleted files made dead long ago. CompactLogs rewrites the *live*
// state — current file metadata, current block contents — into fresh
// segments and drops every older segment, mirroring the txlog's watermark +
// DropSegmentsBefore scheme.
//
// Crash safety rests on two properties rather than on ordering tricks:
//
//  1. The rewrite is appended BEFORE the old segments are dropped, so at
//     every instant the union of segments on the backend contains the full
//     live state.
//  2. Replay is idempotent: block records overwrite by id, create records
//     are no-ops for existing files, and chunk records are deduplicated by
//     chunk id (ids are never reused). Replaying history plus a (possibly
//     partial) checkpoint therefore yields exactly the pre-compaction
//     state; replaying the checkpoint alone yields the post-compaction
//     state.
//
// A crash at any point recovers to either the old layout (drop never
// happened) or the new one (drop happened; the checkpoint is complete
// because AppendBatch made it durable first). The checkpoint is bracketed
// by persistOpCkptBegin/End records carrying an epoch, so the meta journal
// records which compaction produced the current layout.

// CompactStats reports one CompactLogs pass.
type CompactStats struct {
	// SegmentsDropped is the number of storage-log segments removed
	// (meta journal plus every node's block journal).
	SegmentsDropped int
	// BytesReclaimed is the total size of the dropped segments.
	BytesReclaimed int64
	// LiveFiles, LiveChunks and LiveBlocks count what the checkpoint
	// retained.
	LiveFiles  int
	LiveChunks int
	LiveBlocks int
}

// encodeCkptRec frames a checkpoint marker: op byte plus the epoch.
func encodeCkptRec(op byte, epoch uint64) []byte {
	return binary.AppendUvarint([]byte{op}, epoch)
}

// CompactLogs checkpoints the filesystem's durable state: the live name-node
// metadata is rewritten into the meta journal's freshest segment and each
// data node's live blocks into its block journal's freshest segment; all
// older segments are then dropped. Safe to call while writers sync — a chunk
// committed concurrently is covered either by the checkpoint (registered
// before the snapshot) or by its own records (journaled after the rotation,
// into segments the drop never touches). A memory-only filesystem is a
// no-op.
func (fs *FS) CompactLogs() (CompactStats, error) {
	fs.compactMu.Lock()
	defer fs.compactMu.Unlock()
	var cs CompactStats

	type nodePlan struct {
		id   string
		log  *storage.Log
		keep uint64
		recs [][]byte
	}

	// Exclusive persist fence: every mutation registered in memory has
	// its journal records durable (or rolled back) before the snapshot
	// below can observe it, so the checkpoint never makes a
	// later-rolled-back registration durable. Writers stall at most one
	// group-commit while the snapshot is taken.
	fs.persistMu.Lock()
	fs.mu.Lock()
	meta := fs.metaLog
	if meta == nil {
		fs.mu.Unlock()
		fs.persistMu.Unlock()
		return cs, nil
	}
	fs.ckptEpoch++
	epoch := fs.ckptEpoch

	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	metaRecs := make([][]byte, 0, 2+2*len(paths))
	metaRecs = append(metaRecs, encodeCkptRec(persistOpCkptBegin, epoch))
	for _, p := range paths {
		f := fs.files[p]
		metaRecs = append(metaRecs, encodeCreateRec(p))
		for _, c := range f.chunks {
			metaRecs = append(metaRecs, encodeChunkRec(p, c))
			cs.LiveChunks++
		}
		cs.LiveFiles++
	}
	metaRecs = append(metaRecs, encodeCkptRec(persistOpCkptEnd, epoch))

	// Rotate every log while still holding fs.mu: any chunk registered
	// after this point journals its records into post-rotation segments,
	// which the drops below never touch; any chunk registered before is in
	// the snapshot taken above. Either way nothing acknowledged is lost.
	if err := meta.Rotate(); err != nil {
		fs.mu.Unlock()
		fs.persistMu.Unlock()
		return cs, fmt.Errorf("dfs: compact: rotate meta log: %w", err)
	}
	metaKeep := meta.ActiveSegment()
	var nodes []nodePlan
	for _, id := range fs.nodeIDs {
		nd := fs.nodes[id]
		if nd.log == nil {
			continue
		}
		if err := nd.log.Rotate(); err != nil {
			fs.mu.Unlock()
			fs.persistMu.Unlock()
			return cs, fmt.Errorf("dfs: compact: rotate node log %s: %w", id, err)
		}
		pl := nodePlan{id: id, log: nd.log, keep: nd.log.ActiveSegment()}
		bids := make([]uint64, 0, len(nd.blocks))
		for bid := range nd.blocks {
			bids = append(bids, bid)
		}
		sort.Slice(bids, func(i, j int) bool { return bids[i] < bids[j] })
		for _, bid := range bids {
			pl.recs = append(pl.recs, encodeBlockRec(bid, nd.blocks[bid]))
		}
		cs.LiveBlocks += len(pl.recs)
		nodes = append(nodes, pl)
	}
	fs.mu.Unlock()

	if err := fs.compactStage("rotated"); err != nil {
		fs.persistMu.Unlock()
		return cs, err
	}

	// Meta journal: append the checkpoint (one durable batch) while STILL
	// holding the persist fence. Mutators enqueue their records under the
	// shared fence, so holding it exclusively until the checkpoint is in
	// the log guarantees the checkpoint is the post-rotation segment's
	// first metadata — no delete/rename/chunk record can precede it and
	// then be replayed before (and overridden by) the stale snapshot.
	_, appendErr := meta.AppendBatch(metaRecs)
	fs.persistMu.Unlock()
	if appendErr != nil {
		return cs, fmt.Errorf("dfs: compact: checkpoint meta log: %w", appendErr)
	}
	if err := fs.compactStage("meta-checkpointed"); err != nil {
		return cs, err
	}
	n, reclaimed, err := meta.DropSegmentsBefore(metaKeep)
	if err != nil {
		return cs, fmt.Errorf("dfs: compact: drop meta segments: %w", err)
	}
	cs.SegmentsDropped += n
	cs.BytesReclaimed += reclaimed
	if err := fs.compactStage("meta-dropped"); err != nil {
		return cs, err
	}

	// Block journals: same scheme per node, independent of the meta pass
	// (block replay is an idempotent overwrite by id).
	for _, pl := range nodes {
		if len(pl.recs) > 0 {
			if _, err := pl.log.AppendBatch(pl.recs); err != nil {
				return cs, fmt.Errorf("dfs: compact: checkpoint node log %s: %w", pl.id, err)
			}
		}
		if err := fs.compactStage("node-checkpointed"); err != nil {
			return cs, err
		}
		n, reclaimed, err := pl.log.DropSegmentsBefore(pl.keep)
		if err != nil {
			return cs, fmt.Errorf("dfs: compact: drop node %s segments: %w", pl.id, err)
		}
		cs.SegmentsDropped += n
		cs.BytesReclaimed += reclaimed
		if err := fs.compactStage("node-dropped"); err != nil {
			return cs, err
		}
	}

	fs.mu.Lock()
	fs.stats.LogCompactions++
	fs.stats.LogBytesReclaimed += cs.BytesReclaimed
	fs.mu.Unlock()
	fs.reclaim.AddSegmentsDropped(int64(cs.SegmentsDropped))
	fs.reclaim.AddReclaimedBytes(cs.BytesReclaimed)
	fs.reclaim.AddCompactions(1)
	return cs, nil
}

// compactStage invokes the test-only crash hook between compaction stages.
// A non-nil error abandons the pass at that point, which is exactly what a
// process crash there would leave behind (minus the in-memory state, which
// the tests discard by reopening).
func (fs *FS) compactStage(stage string) error {
	if fs.testCompactHook != nil {
		return fs.testCompactHook(stage)
	}
	return nil
}
