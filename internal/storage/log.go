package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"
)

// Log errors.
var (
	ErrClosed      = errors.New("storage: log closed")
	ErrRecordSize  = errors.New("storage: record exceeds maximum size")
	ErrBadCallback = errors.New("storage: replay callback failed")
)

const (
	frameHeaderSize     = 8       // 4-byte length + 4-byte CRC-32C
	maxRecordBytes      = 1 << 30 // sanity bound while scanning
	defaultSegmentBytes = 4 << 20
	minSegmentBytes     = 4 << 10
	segmentSuffix       = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config controls a segmented log.
type Config struct {
	// Backend holds the segment files. Nil means a fresh MemBackend.
	Backend Backend
	// SegmentBytes rotates the active segment once it reaches this size
	// (a segment may exceed it by at most one record). Default 4 MiB.
	SegmentBytes int64
	// SyncDelay adds a simulated latency to every fsync (group commit
	// window). Used by the in-memory backend to model the paper's
	// stable-storage sync cost; zero for real disks.
	SyncDelay time.Duration
}

// RecordPos locates a record: the segment it lives in and its byte offset.
type RecordPos struct {
	Segment uint64
	Offset  int64
}

// AppendResult is delivered once an enqueued record is durable.
type AppendResult struct {
	Pos RecordPos
	Err error
}

// Stats reports log engine counters.
type Stats struct {
	Segments        int    // segment files currently on the backend
	ActiveSegment   uint64 // id of the segment receiving appends
	Appends         int64  // records appended this incarnation
	AppendedBytes   int64  // payload bytes appended this incarnation
	Syncs           int64  // fsyncs performed (group commit batches)
	TailDropped     int64  // bytes discarded by open-time torn-tail repair
	DroppedSegments int64  // segments discarded past a corruption point
	RemovedSegments int64  // segments reclaimed by DropSegmentsBefore
	ReclaimedBytes  int64  // bytes held by segments reclaimed by DropSegmentsBefore
}

type syncWaiter struct {
	seq uint64
	ch  chan AppendResult
	pos RecordPos
}

// Log is an append-only segmented log. Appends are framed as
//
//	[4 bytes big-endian length][4 bytes CRC-32C of payload][payload]
//
// and become durable in group-commit batches: every record enqueued while a
// sync is in flight is covered by the next one. Open repairs a torn tail
// (and drops any suffix past a corrupted record) so a crash between write
// and sync never prevents reopening.
type Log struct {
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond // signals the syncer
	segments  []uint64   // ascending; last is active
	active    File
	activeID  uint64
	activeLen int64
	syncedLen int64  // durable prefix of the active segment, in bytes
	writeSeq  uint64 // records written (not necessarily durable)
	syncedSeq uint64 // records durable
	waiters   []syncWaiter
	closed    bool
	stats     Stats

	wg sync.WaitGroup
}

func segmentName(id uint64) string { return fmt.Sprintf("%016d%s", id, segmentSuffix) }

func parseSegmentName(name string) (uint64, bool) {
	var id uint64
	if _, err := fmt.Sscanf(name, "%016d"+segmentSuffix, &id); err != nil || id == 0 {
		return 0, false
	}
	if name != segmentName(id) {
		return 0, false
	}
	return id, true
}

// Open creates or resumes a segmented log on cfg.Backend. Resuming scans
// every segment: the first torn or corrupted record truncates its segment at
// that point and discards all later segments, so the log always reopens with
// a clean, fully checksummed prefix.
func Open(cfg Config) (*Log, error) {
	if cfg.Backend == nil {
		cfg.Backend = NewMemBackend()
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.SegmentBytes < minSegmentBytes {
		cfg.SegmentBytes = minSegmentBytes
	}
	l := &Log{cfg: cfg}
	l.cond = sync.NewCond(&l.mu)

	names, err := cfg.Backend.List()
	if err != nil {
		return nil, fmt.Errorf("storage: list segments: %w", err)
	}
	for _, name := range names {
		if id, ok := parseSegmentName(name); ok {
			l.segments = append(l.segments, id)
		}
	}

	if len(l.segments) == 0 {
		if err := l.createSegmentLocked(1); err != nil {
			return nil, err
		}
	} else if err := l.recover(); err != nil {
		return nil, err
	}

	l.wg.Add(1)
	go l.syncLoop()
	return l, nil
}

// createSegmentLocked starts a brand-new segment and makes it active.
func (l *Log) createSegmentLocked(id uint64) error {
	f, err := l.cfg.Backend.Create(segmentName(id))
	if err != nil {
		return fmt.Errorf("storage: create segment %d: %w", id, err)
	}
	if l.active != nil {
		_ = l.active.Close()
	}
	l.segments = append(l.segments, id)
	l.active = f
	l.activeID = id
	l.activeLen = 0
	l.syncedLen = 0
	return nil
}

// recover scans existing segments in order, repairs the first torn or
// corrupt point, and opens the surviving tail segment for appending.
func (l *Log) recover() error {
	for i, id := range l.segments {
		name := segmentName(id)
		data, err := l.cfg.Backend.ReadAll(name)
		if err != nil {
			return fmt.Errorf("storage: read segment %d: %w", id, err)
		}
		validLen, clean := scanFrames(data, nil)
		if clean && i < len(l.segments)-1 {
			continue
		}
		if !clean || validLen < int64(len(data)) {
			l.stats.TailDropped += int64(len(data)) - validLen
			if err := l.cfg.Backend.Truncate(name, validLen); err != nil {
				return fmt.Errorf("storage: truncate segment %d: %w", id, err)
			}
		}
		if !clean {
			// Everything after a corrupted record is untrustworthy: the
			// log's contract is an ordered, gapless prefix of appends.
			for _, later := range l.segments[i+1:] {
				if err := l.cfg.Backend.Remove(segmentName(later)); err != nil {
					return fmt.Errorf("storage: drop segment %d: %w", later, err)
				}
				l.stats.DroppedSegments++
			}
			l.segments = l.segments[:i+1]
		}
		f, err := l.cfg.Backend.OpenAppend(name)
		if err != nil {
			return fmt.Errorf("storage: open segment %d: %w", id, err)
		}
		l.active = f
		l.activeID = id
		l.activeLen = validLen
		l.syncedLen = validLen // on-disk prefix at open is trusted as durable
		return nil
	}
	return nil
}

// scanFrames walks the framed records in data, invoking fn (if non-nil) for
// each valid payload with its byte offset. It returns the length of the
// valid prefix and whether the scan consumed data cleanly (false means a
// CRC mismatch or impossible length — real corruption rather than a clean
// end or a torn tail).
func scanFrames(data []byte, fn func(off int64, payload []byte)) (int64, bool) {
	off := 0
	for off+frameHeaderSize <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes {
			return int64(off), false
		}
		body := off + frameHeaderSize
		if body+n > len(data) {
			return int64(off), true // torn tail: payload truncated mid-write
		}
		payload := data[body : body+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			// A half-written final record is a torn tail; a bad checksum
			// with more data after it is corruption.
			return int64(off), body+n == len(data)
		}
		if fn != nil {
			fn(int64(off), payload)
		}
		off = body + n
	}
	return int64(off), off == len(data)
}

// appendFrame returns payload framed for the log.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// writeFrameLocked writes one framed record to the active segment, rotating
// first if the active segment is full. Caller holds l.mu.
func (l *Log) writeFrameLocked(payload []byte) (RecordPos, error) {
	if int64(len(payload)) > maxRecordBytes {
		return RecordPos{}, ErrRecordSize
	}
	if l.activeLen >= l.cfg.SegmentBytes && l.activeLen > 0 {
		if err := l.rotateLocked(); err != nil {
			return RecordPos{}, err
		}
	}
	pos := RecordPos{Segment: l.activeID, Offset: l.activeLen}
	frame := appendFrame(nil, payload)
	if _, err := l.active.Write(frame); err != nil {
		// A partial write would leave a garbage frame mid-segment; a
		// later successful append after it would make every record from
		// here on unreadable at reopen (interior CRC failure drops the
		// whole suffix). Cut the file back to the last good length.
		_ = l.cfg.Backend.Truncate(segmentName(l.activeID), l.activeLen)
		return RecordPos{}, fmt.Errorf("storage: append: %w", err)
	}
	l.activeLen += int64(len(frame))
	l.writeSeq++
	l.stats.Appends++
	l.stats.AppendedBytes += int64(len(payload))
	return pos, nil
}

// rotateLocked syncs and closes the active segment and starts the next one.
// Everything written so far becomes durable, so pending waiters are
// released. Caller holds l.mu.
func (l *Log) rotateLocked() error {
	if err := l.active.Sync(); err != nil {
		err = fmt.Errorf("storage: rotate sync: %w", err)
		l.rollbackUnsyncedLocked(err)
		return err
	}
	l.stats.Syncs++
	l.syncedSeq = l.writeSeq
	l.releaseWaitersLocked(l.writeSeq, nil)
	return l.createSegmentLocked(l.activeID + 1)
}

// rollbackBatchLocked undoes the frames a failed AppendBatch already wrote.
// When the batch stayed within the segment it started in, the exact prefix
// is restored; when a rotation intervened (batch larger than a segment),
// the sealed part is already durable and the best that can be done is to
// roll back the whole unsynced suffix, failing pending waiters. Caller
// holds l.mu.
func (l *Log) rollbackBatchLocked(seg uint64, length int64, seq uint64, cause error) {
	if l.activeID == seg {
		if err := l.cfg.Backend.Truncate(segmentName(seg), length); err == nil {
			l.activeLen = length
			l.writeSeq = seq
		}
		return
	}
	l.rollbackUnsyncedLocked(cause)
}

// rollbackUnsyncedLocked handles a failed fsync: the frames written since
// the last successful sync are truncated away so that records whose append
// was reported as failed can never become durable later (a ghost commit on
// replay), and every pending waiter is failed. Caller holds l.mu.
func (l *Log) rollbackUnsyncedLocked(cause error) {
	if err := l.cfg.Backend.Truncate(segmentName(l.activeID), l.syncedLen); err == nil {
		l.activeLen = l.syncedLen
		l.writeSeq = l.syncedSeq
	}
	// If the truncate itself failed the bytes' fate is unknown; either
	// way the appenders must see the failure.
	l.releaseWaitersLocked(^uint64(0), cause)
}

// releaseWaitersLocked completes every waiter at or below seq. Caller holds
// l.mu.
func (l *Log) releaseWaitersLocked(seq uint64, err error) {
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.seq <= seq {
			w.ch <- AppendResult{Pos: w.pos, Err: err}
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// Enqueue appends payload to the log and returns a channel that yields the
// durability result exactly once. Record order is the order of Enqueue
// calls; durability arrives in group-commit batches.
func (l *Log) Enqueue(payload []byte) <-chan AppendResult {
	ch := make(chan AppendResult, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		ch <- AppendResult{Err: ErrClosed}
		return ch
	}
	pos, err := l.writeFrameLocked(payload)
	if err != nil {
		ch <- AppendResult{Err: err}
		return ch
	}
	l.waiters = append(l.waiters, syncWaiter{seq: l.writeSeq, ch: ch, pos: pos})
	l.cond.Signal()
	return ch
}

// Append appends payload and blocks until it is durable.
func (l *Log) Append(payload []byte) (RecordPos, error) {
	res := <-l.Enqueue(payload)
	return res.Pos, res.Err
}

// AppendBatch appends every payload in order and blocks until the whole
// batch is durable under (at most) one fsync. It returns each record's
// position.
func (l *Log) AppendBatch(payloads [][]byte) ([]RecordPos, error) {
	if len(payloads) == 0 {
		return nil, nil
	}
	ch := make(chan AppendResult, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	startSeg, startLen, startSeq := l.activeID, l.activeLen, l.writeSeq
	positions := make([]RecordPos, 0, len(payloads))
	for _, p := range payloads {
		pos, err := l.writeFrameLocked(p)
		if err != nil {
			// Un-write the batch's earlier frames: the caller is told
			// the whole batch failed, so none of it may become durable
			// with the next successful sync (ghost records at replay).
			l.rollbackBatchLocked(startSeg, startLen, startSeq, err)
			l.mu.Unlock()
			return nil, err
		}
		positions = append(positions, pos)
	}
	l.waiters = append(l.waiters, syncWaiter{seq: l.writeSeq, ch: ch, pos: positions[len(positions)-1]})
	l.cond.Signal()
	l.mu.Unlock()
	if res := <-ch; res.Err != nil {
		return nil, res.Err
	}
	return positions, nil
}

// Sync blocks until every record appended so far is durable.
func (l *Log) Sync() error {
	ch := make(chan AppendResult, 1)
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.syncedSeq >= l.writeSeq {
		l.mu.Unlock()
		return nil
	}
	l.waiters = append(l.waiters, syncWaiter{seq: l.writeSeq, ch: ch})
	l.cond.Signal()
	l.mu.Unlock()
	return (<-ch).Err
}

// syncLoop is the group-commit fsync worker: it batches every record
// enqueued since the previous sync under a single fsync.
func (l *Log) syncLoop() {
	defer l.wg.Done()
	for {
		l.mu.Lock()
		for len(l.waiters) == 0 && !l.closed {
			l.cond.Wait()
		}
		if len(l.waiters) == 0 && l.closed {
			l.mu.Unlock()
			return
		}
		target := l.writeSeq
		targetLen := l.activeLen
		segID := l.activeID
		f := l.active
		l.mu.Unlock()

		err := f.Sync()
		if d := l.cfg.SyncDelay; d > 0 {
			time.Sleep(d) // one (simulated) stable-storage sync per batch
		}

		l.mu.Lock()
		l.stats.Syncs++
		switch {
		case l.activeID != segID:
			// A rotation intervened: it synced the snapshot's file and
			// released everything up to the rotation point itself, so
			// this result (even an error from the now-closed handle) is
			// stale. Waiters enqueued after the rotation are picked up by
			// the next iteration.
		case err != nil:
			l.rollbackUnsyncedLocked(err)
		default:
			if target > l.syncedSeq {
				l.syncedSeq = target
			}
			if targetLen > l.syncedLen {
				l.syncedLen = targetLen
			}
			l.releaseWaitersLocked(target, nil)
		}
		l.mu.Unlock()
	}
}

// Replay invokes fn for every durable record in append order. It is meant
// for open-time recovery: callers must not append concurrently, and fn must
// not call back into the log.
func (l *Log) Replay(fn func(pos RecordPos, payload []byte) error) error {
	l.mu.Lock()
	segments := append([]uint64(nil), l.segments...)
	l.mu.Unlock()
	for _, id := range segments {
		data, err := l.cfg.Backend.ReadAll(segmentName(id))
		if err != nil {
			return fmt.Errorf("storage: replay segment %d: %w", id, err)
		}
		var cbErr error
		scanFrames(data, func(off int64, payload []byte) {
			if cbErr != nil {
				return
			}
			if err := fn(RecordPos{Segment: id, Offset: off}, payload); err != nil {
				cbErr = err
			}
		})
		if cbErr != nil {
			return fmt.Errorf("%w: %v", ErrBadCallback, cbErr)
		}
	}
	return nil
}

// Rotate forces a segment switch, making everything written durable.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.rotateLocked()
}

// ActiveSegment returns the id of the segment receiving appends.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeID
}

// DropSegmentsBefore removes every sealed segment with id < seg, reclaiming
// space below a caller-determined retention point (the txlog calls this with
// the segment of its first retained record after truncation; the DFS log
// compactor with the segment its live-state rewrite starts in). The active
// segment is never removed. Returns the number of segments removed and the
// bytes those segments held.
func (l *Log) DropSegmentsBefore(seg uint64) (int, int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, ErrClosed
	}
	removed := 0
	var reclaimed int64
	kept := make([]uint64, 0, len(l.segments))
	for i, id := range l.segments {
		if id < seg && id != l.activeID {
			size, _ := l.cfg.Backend.Size(segmentName(id)) // best effort: 0 on error
			if err := l.cfg.Backend.Remove(segmentName(id)); err != nil {
				// Keep the unprocessed suffix (including the segment that
				// failed to remove) so the log's view stays accurate.
				l.segments = append(kept, l.segments[i:]...)
				return removed, reclaimed, fmt.Errorf("storage: drop segment %d: %w", id, err)
			}
			removed++
			reclaimed += size
			l.stats.RemovedSegments++
			l.stats.ReclaimedBytes += size
			continue
		}
		kept = append(kept, id)
	}
	l.segments = kept
	return removed, reclaimed, nil
}

// Stats returns a snapshot of engine counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stats
	s.Segments = len(l.segments)
	s.ActiveSegment = l.activeID
	return s
}

// Close drains pending syncs, fsyncs the active segment, and releases it.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.active != nil {
		if l.syncedSeq < l.writeSeq {
			err = l.active.Sync()
			if err == nil {
				l.syncedSeq = l.writeSeq
			}
		}
		if cerr := l.active.Close(); err == nil {
			err = cerr
		}
		l.active = nil
	}
	return err
}
