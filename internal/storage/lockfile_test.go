package storage

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestLockDirExclusion(t *testing.T) {
	dir := t.TempDir()
	l1, err := LockDir(dir)
	if err != nil {
		t.Fatalf("first lock: %v", err)
	}
	if _, err := LockDir(dir); !errors.Is(err, ErrDirLocked) {
		t.Fatalf("second lock: got %v, want ErrDirLocked", err)
	}
	if err := l1.Unlock(); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	l2, err := LockDir(dir)
	if err != nil {
		t.Fatalf("relock after unlock: %v", err)
	}
	defer l2.Unlock()

	// The LOCK file records the holder's pid.
	data, err := os.ReadFile(filepath.Join(dir, "LOCK"))
	if err != nil || len(data) == 0 {
		t.Fatalf("LOCK file unreadable: %q %v", data, err)
	}
}

func TestLockDirCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	l, err := LockDir(dir)
	if err != nil {
		t.Fatalf("lock on fresh path: %v", err)
	}
	defer l.Unlock()
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("directory not created: %v", err)
	}
}

func TestUnlockNilSafe(t *testing.T) {
	var l *DirLock
	if err := l.Unlock(); err != nil {
		t.Fatalf("nil unlock: %v", err)
	}
	if err := (&DirLock{}).Unlock(); err != nil {
		t.Fatalf("empty unlock: %v", err)
	}
}
