//go:build !unix

package storage

import "os"

// flockExclusive is a no-op on platforms without flock(2): the lock file is
// still created (best-effort operator signal), but mutual exclusion is not
// enforced.
func flockExclusive(*os.File) error { return nil }
