// Package storage implements the durable substrate under the simulator: an
// append-only segmented log engine with CRC-framed records, configurable
// segment rotation, group-commit fsync batching, and crash recovery that
// tolerates a torn tail or a corrupted suffix. The engine is generic over a
// Backend so the rest of the system can run either fully in process memory
// (MemBackend — the default, and the seed's original behavior) or against
// real files on disk (DiskBackend — a cluster opened with a DataDir survives
// kill -9 and reopens with every synced record intact).
//
// The transaction manager's recovery log (internal/txlog) journals commit
// records through one storage log; the DFS (internal/dfs) journals name-node
// metadata and per-node block contents through its own logs; the cluster
// journals table layouts. Together these make txkv.Open on an existing data
// directory a real restart rather than a fresh simulation.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Backend errors.
var (
	ErrNotExist = errors.New("storage: file does not exist")
)

// File is an append-only file handle. Write appends; Sync makes every byte
// written so far durable (for the disk backend, an fsync).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// Backend abstracts the directory a segmented log lives in. Names are flat
// (no separators); List returns them sorted.
type Backend interface {
	// Create creates (or truncates) a file and opens it for appending.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	// ReadAll returns the full current contents of a file.
	ReadAll(name string) ([]byte, error)
	// Truncate shortens a file to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
	// Size returns the current length of a file in bytes.
	Size(name string) (int64, error)
	// List returns all file names, sorted.
	List() ([]string, error)
	// Remove deletes a file.
	Remove(name string) error
}

// MemBackend is an in-process Backend: files are byte slices in a map. It
// provides no durability across process restarts — it exists so tests,
// benchmarks, and the default cluster configuration exercise exactly the
// same log engine code as the disk path without touching the filesystem.
type MemBackend struct {
	mu    sync.Mutex
	files map[string]*memFile
}

// NewMemBackend creates an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string]*memFile)}
}

type memFile struct {
	mu  sync.Mutex
	buf []byte
}

type memHandle struct{ f *memFile }

func (h memHandle) Write(p []byte) (int, error) {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	h.f.buf = append(h.f.buf, p...)
	return len(p), nil
}

func (memHandle) Sync() error  { return nil }
func (memHandle) Close() error { return nil }

// Create implements Backend.
func (b *MemBackend) Create(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f := &memFile{}
	b.files[name] = f
	return memHandle{f: f}, nil
}

// OpenAppend implements Backend.
func (b *MemBackend) OpenAppend(name string) (File, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	f, ok := b.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	return memHandle{f: f}, nil
}

// ReadAll implements Backend.
func (b *MemBackend) ReadAll(name string) ([]byte, error) {
	b.mu.Lock()
	f, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.buf...), nil
}

// Truncate implements Backend.
func (b *MemBackend) Truncate(name string, size int64) error {
	b.mu.Lock()
	f, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	}
	return nil
}

// Size implements Backend.
func (b *MemBackend) Size(name string) (int64, error) {
	b.mu.Lock()
	f, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.buf)), nil
}

// List implements Backend.
func (b *MemBackend) List() ([]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.files))
	for name := range b.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements Backend.
func (b *MemBackend) Remove(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.files[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, name)
	}
	delete(b.files, name)
	return nil
}

// DiskBackend stores files under a real directory. Sync on its files is a
// real fsync; Create and Remove additionally sync the directory so segment
// creation and deletion survive a crash.
type DiskBackend struct {
	dir string
}

// NewDiskBackend creates dir (and parents) if needed and returns a backend
// rooted there.
func NewDiskBackend(dir string) (*DiskBackend, error) {
	if dir == "" {
		return nil, errors.New("storage: disk backend requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	return &DiskBackend{dir: dir}, nil
}

// Dir returns the backend's root directory.
func (b *DiskBackend) Dir() string { return b.dir }

func (b *DiskBackend) path(name string) string { return filepath.Join(b.dir, name) }

// syncDir fsyncs the directory metadata; best effort on platforms where
// directory fsync is unsupported.
func (b *DiskBackend) syncDir() {
	if d, err := os.Open(b.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Create implements Backend.
func (b *DiskBackend) Create(name string) (File, error) {
	f, err := os.OpenFile(b.path(name), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	b.syncDir()
	return f, nil
}

// OpenAppend implements Backend.
func (b *DiskBackend) OpenAppend(name string) (File, error) {
	f, err := os.OpenFile(b.path(name), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return f, nil
}

// ReadAll implements Backend.
func (b *DiskBackend) ReadAll(name string) ([]byte, error) {
	data, err := os.ReadFile(b.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return nil, err
	}
	return data, nil
}

// Truncate implements Backend.
func (b *DiskBackend) Truncate(name string, size int64) error {
	return os.Truncate(b.path(name), size)
}

// Size implements Backend.
func (b *DiskBackend) Size(name string) (int64, error) {
	info, err := os.Stat(b.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return 0, err
	}
	return info.Size(), nil
}

// List implements Backend.
func (b *DiskBackend) List() ([]string, error) {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Remove implements Backend.
func (b *DiskBackend) Remove(name string) error {
	if err := os.Remove(b.path(name)); err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: %s", ErrNotExist, name)
		}
		return err
	}
	b.syncDir()
	return nil
}
