//go:build unix

package storage

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock(2) on f. flock locks
// belong to the open file description, so a second open of the same LOCK
// file — even within this process — conflicts, which is exactly the
// two-clusters-one-DataDir case the lock exists to reject.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
		return errLockHeld
	}
	return err
}
