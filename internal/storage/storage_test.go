package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func replayAll(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var out [][]byte
	if err := l.Replay(func(_ RecordPos, payload []byte) error {
		out = append(out, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func testAppendReplay(t *testing.T, be Backend) {
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if _, err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	got := replayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen over the same backend: every record must still replay.
	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
}

func TestAppendReplayMem(t *testing.T) { testAppendReplay(t, NewMemBackend()) }

func TestAppendReplayDisk(t *testing.T) {
	be, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatalf("disk backend: %v", err)
	}
	testAppendReplay(t, be)
}

func TestSegmentRotation(t *testing.T) {
	be := NewMemBackend()
	l, err := Open(Config{Backend: be, SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := bytes.Repeat([]byte("x"), 1024)
	for i := 0; i < 32; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	st := l.Stats()
	if st.Segments < 4 {
		t.Fatalf("expected rotation to produce >= 4 segments, got %d", st.Segments)
	}
	if got := replayAll(t, l); len(got) != 32 {
		t.Fatalf("replayed %d records across segments, want 32", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	// A nonzero sync cost is what makes batching observable: records that
	// queue while a sync is in flight share the next one.
	l, err := Open(Config{SyncDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Errorf("append %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := replayAll(t, l); len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	st := l.Stats()
	if st.Syncs >= n {
		t.Fatalf("group commit ineffective: %d syncs for %d appends", st.Syncs, n)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatalf("disk backend: %v", err)
	}
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("good-%d", i))); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-write: append half a record to the segment.
	seg := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	torn := appendFrame(nil, []byte("torn-record"))
	if _, err := f.Write(torn[:len(torn)-4]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	got := replayAll(t, l2)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want the 10 intact ones", len(got))
	}
	if l2.Stats().TailDropped == 0 {
		t.Fatal("expected TailDropped > 0 after torn-tail repair")
	}
	// The log must accept appends after repair and keep them on replay.
	if _, err := l2.Append([]byte("after-repair")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if got := replayAll(t, l2); len(got) != 11 || string(got[10]) != "after-repair" {
		t.Fatalf("post-repair replay = %d records (last %q)", len(got), got[len(got)-1])
	}
	l2.Close()
}

func TestCorruptRecordDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatalf("disk backend: %v", err)
	}
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var positions []RecordPos
	for i := 0; i < 10; i++ {
		pos, err := l.Append([]byte(fmt.Sprintf("payload-%d", i)))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		positions = append(positions, pos)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip one byte inside record 6's payload: records 0..5 stay intact,
	// the corrupted record and everything after it are dropped.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	data[positions[6].Offset+frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}

	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen with corruption: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6 (corrupt suffix dropped)", len(got))
	}
	for i := range got {
		if want := fmt.Sprintf("payload-%d", i); string(got[i]) != want {
			t.Fatalf("record %d = %q, want %q", i, got[i], want)
		}
	}
}

func TestCorruptionInEarlierSegmentDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDiskBackend(dir)
	if err != nil {
		t.Fatalf("disk backend: %v", err)
	}
	l, err := Open(Config{Backend: be, SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	payload := bytes.Repeat([]byte("y"), 512)
	for i := 0; i < 40; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if l.Stats().Segments < 3 {
		t.Fatalf("need >= 3 segments, got %d", l.Stats().Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Corrupt the first record of segment 2.
	seg := filepath.Join(dir, segmentName(2))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment 2: %v", err)
	}
	data[frameHeaderSize] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("rewrite segment 2: %v", err)
	}

	l2, err := Open(Config{Backend: be, SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.DroppedSegments == 0 {
		t.Fatal("expected later segments to be dropped after interior corruption")
	}
	got := replayAll(t, l2)
	for _, p := range got {
		if !bytes.Equal(p, payload) {
			t.Fatal("surviving record corrupted")
		}
	}
	if _, err := l2.Append(payload); err != nil {
		t.Fatalf("append after corruption recovery: %v", err)
	}
}

func TestDropSegmentsBefore(t *testing.T) {
	be := NewMemBackend()
	l, err := Open(Config{Backend: be, SegmentBytes: minSegmentBytes})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("z"), 1024)
	for i := 0; i < 24; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	active := l.ActiveSegment()
	if active < 3 {
		t.Fatalf("expected several segments, active = %d", active)
	}
	removed, reclaimed, err := l.DropSegmentsBefore(active)
	if err != nil {
		t.Fatalf("drop: %v", err)
	}
	if removed == 0 {
		t.Fatal("expected sealed segments to be removed")
	}
	if reclaimed == 0 {
		t.Fatal("expected dropped segments to report reclaimed bytes")
	}
	st := l.Stats()
	if st.Segments != 1 || st.ActiveSegment != active {
		t.Fatalf("stats after drop: %+v", st)
	}
	// Records in the active segment still replay; appends continue.
	before := len(replayAll(t, l))
	if _, err := l.Append(payload); err != nil {
		t.Fatalf("append after drop: %v", err)
	}
	if got := len(replayAll(t, l)); got != before+1 {
		t.Fatalf("replay after drop+append = %d, want %d", got, before+1)
	}
}

// faultBackend wraps a MemBackend whose files fail their next Sync while
// `fail` is set — for exercising the fsync-failure rollback.
type faultBackend struct {
	*MemBackend
	fail bool
}

type faultFile struct {
	File
	b *faultBackend
}

func (f faultFile) Sync() error {
	if f.b.fail {
		return fmt.Errorf("injected sync failure")
	}
	return f.File.Sync()
}

func (b *faultBackend) Create(name string) (File, error) {
	f, err := b.MemBackend.Create(name)
	if err != nil {
		return nil, err
	}
	return faultFile{File: f, b: b}, nil
}

func (b *faultBackend) OpenAppend(name string) (File, error) {
	f, err := b.MemBackend.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return faultFile{File: f, b: b}, nil
}

// TestFailedSyncLeavesNoGhostRecords: a record whose append was reported
// failed (fsync error) must not become durable later — the unsynced suffix
// is rolled back, so replay never resurrects it.
func TestFailedSyncLeavesNoGhostRecords(t *testing.T) {
	be := &faultBackend{MemBackend: NewMemBackend()}
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := l.Append([]byte("good-1")); err != nil {
		t.Fatalf("append good-1: %v", err)
	}
	be.fail = true
	if _, err := l.Append([]byte("ghost")); err == nil {
		t.Fatal("append during sync failure should error")
	}
	be.fail = false
	if _, err := l.Append([]byte("good-2")); err != nil {
		t.Fatalf("append good-2 after recovery: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	got := replayAll(t, l2)
	if len(got) != 2 || string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Fatalf("replay = %q, want exactly the two acknowledged records", got)
	}
}

func TestAppendBatchPositionsAndReopen(t *testing.T) {
	be, err := NewDiskBackend(t.TempDir())
	if err != nil {
		t.Fatalf("disk backend: %v", err)
	}
	l, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	batch := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc")}
	positions, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatalf("append batch: %v", err)
	}
	if len(positions) != len(batch) {
		t.Fatalf("got %d positions, want %d", len(positions), len(batch))
	}
	for i := 1; i < len(positions); i++ {
		if positions[i].Segment == positions[i-1].Segment && positions[i].Offset <= positions[i-1].Offset {
			t.Fatalf("positions not increasing: %+v", positions)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	l2, err := Open(Config{Backend: be})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := replayAll(t, l2); len(got) != 3 || string(got[2]) != "ccc" {
		t.Fatalf("batch replay = %q", got)
	}
}
