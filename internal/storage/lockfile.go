package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// ErrDirLocked reports that another live process holds a data directory.
var ErrDirLocked = errors.New("storage: data directory locked by another process")

// errLockHeld is returned by flockExclusive when the lock is held elsewhere
// (as opposed to the flock syscall itself failing).
var errLockHeld = errors.New("storage: lock held")

// DirLock is an exclusive advisory lock on a data directory, preventing two
// clusters from journaling into the same DataDir concurrently (which would
// interleave their segments beyond repair). The lock is an flock(2) on a
// LOCK file inside the directory: it is released automatically if the
// holding process dies, so a crashed cluster never needs manual cleanup.
type DirLock struct {
	f *os.File
}

// LockDir takes the exclusive lock on dir, creating the directory and its
// LOCK file as needed. A directory already held by a live process (this one
// or another) yields ErrDirLocked immediately — the caller must not touch
// the directory's contents.
func LockDir(dir string) (*DirLock, error) {
	if dir == "" {
		return nil, errors.New("storage: LockDir requires a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open lock file: %w", err)
	}
	if err := flockExclusive(f); err != nil {
		_ = f.Close()
		if errors.Is(err, errLockHeld) {
			return nil, fmt.Errorf("%w: %s", ErrDirLocked, dir)
		}
		// A failing flock syscall (unsupported filesystem, I/O error) is
		// not a lock conflict; surface it as what it is.
		return nil, fmt.Errorf("storage: flock %s: %w", dir, err)
	}
	// Record the holder for operator forensics; the flock, not the
	// content, is the actual mutual exclusion.
	_ = f.Truncate(0)
	_, _ = f.WriteAt([]byte(strconv.Itoa(os.Getpid())+"\n"), 0)
	return &DirLock{f: f}, nil
}

// Unlock releases the lock. Safe to call once; the lock file itself is left
// in place (its flock vanishes with the descriptor).
func (l *DirLock) Unlock() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close() // closing the descriptor drops the flock
	l.f = nil
	return err
}
