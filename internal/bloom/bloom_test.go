package bloom

import (
	"fmt"
	"testing"
)

func TestNoFalseNegatives(t *testing.T) {
	const n = 10000
	f := New(n, 10)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("key-%06d", i))
	}
	for i := 0; i < n; i++ {
		if !f.MayContain(fmt.Sprintf("key-%06d", i)) {
			t.Fatalf("false negative on key-%06d", i)
		}
	}
}

func TestFalsePositiveRate(t *testing.T) {
	const n = 10000
	f := New(n, 10)
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("key-%06d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if f.MayContain(fmt.Sprintf("absent-%06d", i)) {
			fp++
		}
	}
	// 10 bits/key gives ~1% theoretical FP; allow a generous 3%.
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f too high (%d/%d)", rate, fp, probes)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := New(500, 10)
	for i := 0; i < 500; i++ {
		f.Add(fmt.Sprintf("row%04d", i))
	}
	got, err := Unmarshal(f.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.m != f.m || got.k != f.k || len(got.bits) != len(f.bits) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.m, got.k, f.m, f.k)
	}
	for i := 0; i < 500; i++ {
		if !got.MayContain(fmt.Sprintf("row%04d", i)) {
			t.Fatalf("false negative after round trip on row%04d", i)
		}
	}
}

func TestNilFilter(t *testing.T) {
	var f *Filter
	if !f.MayContain("anything") {
		t.Fatal("nil filter must report maybe")
	}
	if f.Bits() != 0 {
		t.Fatal("nil filter has no bits")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f := New(100, 10)
	f.Add("a")
	good := f.Marshal(nil)

	cases := map[string][]byte{
		"empty":           nil,
		"truncated":       good[:len(good)-3],
		"extended":        append(append([]byte(nil), good...), 0xff),
		"bad version":     append([]byte{0x7f}, good[1:]...),
		"zero k":          append([]byte{good[0], 0}, good[2:]...),
		"oversized k":     append([]byte{good[0], 99}, good[2:]...),
		"header only":     good[:headerSize],
		"short of header": good[:headerSize-1],
	}
	// m not a multiple of 64.
	badM := append([]byte(nil), good...)
	badM[9] ^= 0x01
	cases["bad m"] = badM

	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

func TestProbeZeroAlloc(t *testing.T) {
	f := New(1000, 10)
	for i := 0; i < 1000; i++ {
		f.Add(fmt.Sprintf("key-%04d", i))
	}
	key := "key-0500"
	absent := "nope-0500"
	if n := testing.AllocsPerRun(200, func() {
		_ = f.MayContain(key)
		_ = f.MayContain(absent)
	}); n != 0 {
		t.Fatalf("MayContain allocates %v times per probe pair", n)
	}
}

func FuzzMarshalRoundTrip(f *testing.F) {
	f.Add([]byte("hello"), 10)
	f.Add([]byte(""), 1)
	f.Add([]byte("a\x00b"), 64)
	f.Fuzz(func(t *testing.T, key []byte, n int) {
		if n < 1 || n > 1<<16 {
			n = 100
		}
		fl := New(n, 10)
		fl.Add(string(key))
		got, err := Unmarshal(fl.Marshal(nil))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !got.MayContain(string(key)) {
			t.Fatalf("false negative after round trip: %q", key)
		}
	})
}

func FuzzUnmarshal(f *testing.F) {
	seed := New(10, 10)
	seed.Add("x")
	f.Add(seed.Marshal(nil))
	f.Add([]byte{formatV1, 7, 0, 0, 0, 0, 0, 0, 0, 64})
	f.Fuzz(func(t *testing.T, b []byte) {
		fl, err := Unmarshal(b)
		if err != nil {
			return
		}
		// Any accepted filter must be safely probeable.
		_ = fl.MayContain("probe")
		// ... and must round-trip to the same bytes.
		out := fl.Marshal(nil)
		if string(out) != string(b) {
			t.Fatalf("accepted filter does not round-trip: %d vs %d bytes", len(out), len(b))
		}
	})
}
