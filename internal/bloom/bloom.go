// Package bloom implements the dependency-free bloom filter behind
// store-file format v2: a fixed-size bit array over row keys, built once at
// file-write time and probed on every point read to skip files that cannot
// contain the key.
//
// The filter uses Kirsch–Mitzenmacher double hashing: two 64-bit hashes
// h1, h2 derived from one FNV-1a pass generate the k probe positions
// g_i = h1 + i*h2 (mod m). The hash is hand-rolled rather than taken from
// hash/fnv because the stdlib's hash.Hash interface forces a heap
// allocation per probe — MayContain sits on the region read path, which
// must stay allocation-free.
package bloom

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrBadFilter reports a malformed serialized filter.
var ErrBadFilter = errors.New("bloom: malformed filter")

// serialized layout: version(1) k(1) m(8 BE) words(8 BE each).
const (
	formatV1   = 0x01
	headerSize = 1 + 1 + 8
)

// Filter is a bloom filter over string keys. The zero value is unusable;
// construct with New or Unmarshal. A nil *Filter rejects nothing
// (MayContain returns true), so readers of files without a filter section
// need no special casing.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits; always len(bits)*64 after construction
	k    uint8  // probes per key
}

// New sizes a filter for n keys at bitsPerKey bits each (10 bits/key gives
// ~1% false positives). The probe count is the optimal k = bitsPerKey·ln2,
// clamped to [1, 30].
func New(n int, bitsPerKey int) *Filter {
	if n < 1 {
		n = 1
	}
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	words := (uint64(n)*uint64(bitsPerKey) + 63) / 64
	if words == 0 {
		words = 1
	}
	k := int(float64(bitsPerKey) * math.Ln2)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &Filter{
		bits: make([]uint64, words),
		m:    words * 64,
		k:    uint8(k),
	}
}

// fnv1a is the 64-bit FNV-1a hash over a string, inlined so probing and
// adding allocate nothing.
func fnv1a(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// probes derives the double-hashing pair from one hash pass. h2 is forced
// odd so that with the power-of-two-free modulus m the probe sequence does
// not degenerate when h2 shares factors with m.
func probes(key string) (h1, h2 uint64) {
	h1 = fnv1a(key)
	h2 = h1>>33 | h1<<31 // independent mix of the same entropy
	h2 |= 1
	return h1, h2
}

// Add inserts a key.
func (f *Filter) Add(key string) {
	h1, h2 := probes(key)
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		f.bits[bit/64] |= 1 << (bit % 64)
	}
}

// MayContain reports whether the key might have been added. False is
// definitive; true has the configured false-positive probability. A nil
// filter reports true (no information). Allocation-free.
func (f *Filter) MayContain(key string) bool {
	if f == nil {
		return true
	}
	h1, h2 := probes(key)
	for i := uint8(0); i < f.k; i++ {
		bit := (h1 + uint64(i)*h2) % f.m
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter's size in bits (tests and sizing stats).
func (f *Filter) Bits() uint64 {
	if f == nil {
		return 0
	}
	return f.m
}

// Marshal appends the serialized filter to dst and returns the result.
func (f *Filter) Marshal(dst []byte) []byte {
	dst = append(dst, formatV1, f.k)
	dst = binary.BigEndian.AppendUint64(dst, f.m)
	for _, w := range f.bits {
		dst = binary.BigEndian.AppendUint64(dst, w)
	}
	return dst
}

// Unmarshal decodes a filter serialized by Marshal. Every structural
// invariant is checked so a corrupted or truncated section is rejected
// rather than yielding a filter that silently mis-probes.
func Unmarshal(b []byte) (*Filter, error) {
	if len(b) < headerSize {
		return nil, ErrBadFilter
	}
	if b[0] != formatV1 {
		return nil, ErrBadFilter
	}
	k := b[1]
	if k < 1 || k > 30 {
		return nil, ErrBadFilter
	}
	m := binary.BigEndian.Uint64(b[2:10])
	if m == 0 || m%64 != 0 {
		return nil, ErrBadFilter
	}
	words := m / 64
	if uint64(len(b)-headerSize) != words*8 {
		return nil, ErrBadFilter
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k}
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(b[headerSize+i*8:])
	}
	return f, nil
}
