package kvstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"txkv/internal/kv"
)

func mkKV(row, col string, ts kv.Timestamp, val string) kv.KeyValue {
	return kv.KeyValue{
		Cell:  kv.Cell{Row: kv.Key(row), Column: col, TS: ts},
		Value: []byte(val),
	}
}

func TestMemStorePutGet(t *testing.T) {
	m := NewMemStore()
	m.Put(mkKV("r1", "c1", 10, "v10"))
	m.Put(mkKV("r1", "c1", 20, "v20"))
	m.Put(mkKV("r1", "c2", 15, "x"))
	m.Put(mkKV("r2", "c1", 5, "y"))

	tests := []struct {
		row, col  string
		maxTS     kv.Timestamp
		wantVal   string
		wantFound bool
	}{
		{"r1", "c1", kv.MaxTimestamp, "v20", true},
		{"r1", "c1", 20, "v20", true},
		{"r1", "c1", 19, "v10", true},
		{"r1", "c1", 10, "v10", true},
		{"r1", "c1", 9, "", false},
		{"r1", "c2", 14, "", false},
		{"r1", "c2", 15, "x", true},
		{"r2", "c1", kv.MaxTimestamp, "y", true},
		{"r3", "c1", kv.MaxTimestamp, "", false},
		{"r1", "c3", kv.MaxTimestamp, "", false},
	}
	for _, tt := range tests {
		got, found := m.Get(kv.Key(tt.row), tt.col, tt.maxTS)
		if found != tt.wantFound {
			t.Errorf("Get(%s,%s,%d) found=%v, want %v", tt.row, tt.col, tt.maxTS, found, tt.wantFound)
			continue
		}
		if found && string(got.Value) != tt.wantVal {
			t.Errorf("Get(%s,%s,%d) = %q, want %q", tt.row, tt.col, tt.maxTS, got.Value, tt.wantVal)
		}
	}
}

func TestMemStoreIdempotentPut(t *testing.T) {
	m := NewMemStore()
	e := mkKV("r", "c", 7, "v")
	m.Put(e)
	m.Put(e)
	m.Put(e)
	if m.Len() != 1 {
		t.Fatalf("Len = %d after replaying same cell, want 1", m.Len())
	}
	// Overwrite at same coordinate replaces value.
	m.Put(mkKV("r", "c", 7, "v2"))
	got, _ := m.Get("r", "c", 7)
	if string(got.Value) != "v2" {
		t.Fatalf("value after overwrite = %q", got.Value)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMemStoreTombstone(t *testing.T) {
	m := NewMemStore()
	m.Put(mkKV("r", "c", 5, "alive"))
	del := kv.KeyValue{Cell: kv.Cell{Row: "r", Column: "c", TS: 9}, Tombstone: true}
	m.Put(del)
	got, found := m.Get("r", "c", kv.MaxTimestamp)
	if !found || !got.Tombstone {
		t.Fatalf("latest version should be the tombstone, got %v found=%v", got, found)
	}
	got, found = m.Get("r", "c", 8)
	if !found || got.Tombstone {
		t.Fatalf("read below tombstone should see the live value, got %v", got)
	}
}

func TestMemStoreAllSorted(t *testing.T) {
	m := NewMemStore()
	rng := rand.New(rand.NewSource(42))
	const n = 500
	for i := 0; i < n; i++ {
		m.Put(mkKV(fmt.Sprintf("row%03d", rng.Intn(50)), fmt.Sprintf("c%d", rng.Intn(3)),
			kv.Timestamp(rng.Intn(100)), "v"))
	}
	all := m.All()
	if len(all) != m.Len() {
		t.Fatalf("All len %d != Len %d", len(all), m.Len())
	}
	for i := 1; i < len(all); i++ {
		if kv.CompareCells(all[i-1].Cell, all[i].Cell) >= 0 {
			t.Fatalf("not sorted at %d: %v then %v", i, all[i-1], all[i])
		}
	}
}

func TestMemStoreScanRange(t *testing.T) {
	m := NewMemStore()
	for i := 0; i < 10; i++ {
		m.Put(mkKV(fmt.Sprintf("r%d", i), "c", kv.Timestamp(i+1), "v"))
	}
	got := m.ScanRange(nil, kv.KeyRange{Start: "r3", End: "r7"}, kv.MaxTimestamp)
	if len(got) != 4 {
		t.Fatalf("scan [r3,r7) returned %d entries, want 4", len(got))
	}
	if got[0].Row != "r3" || got[3].Row != "r6" {
		t.Fatalf("scan bounds wrong: %v ... %v", got[0], got[3])
	}
	// Timestamp filter.
	got = m.ScanRange(nil, kv.KeyRange{}, 5)
	if len(got) != 5 {
		t.Fatalf("scan maxTS=5 returned %d entries, want 5", len(got))
	}
	// Unbounded range.
	got = m.ScanRange(nil, kv.KeyRange{}, kv.MaxTimestamp)
	if len(got) != 10 {
		t.Fatalf("full scan returned %d", len(got))
	}
}

func TestMemStoreSizeAccounting(t *testing.T) {
	m := NewMemStore()
	if m.ApproxSize() != 0 {
		t.Fatal("empty store must have zero size")
	}
	m.Put(mkKV("r", "c", 1, "0123456789"))
	s1 := m.ApproxSize()
	if s1 <= 0 {
		t.Fatal("size must grow on insert")
	}
	m.Put(mkKV("r", "c", 1, "01")) // overwrite with smaller value
	if m.ApproxSize() >= s1 {
		t.Fatalf("size must shrink on smaller overwrite: %d -> %d", s1, m.ApproxSize())
	}
}

// TestMemStoreQuickVsModel cross-checks the skiplist against a sorted-slice
// reference model with random operations.
func TestMemStoreQuickVsModel(t *testing.T) {
	type op struct {
		Row, Col uint8
		TS       uint8
		Read     bool
	}
	f := func(ops []op) bool {
		m := NewMemStore()
		model := make(map[kv.Cell][]byte)
		for i, o := range ops {
			row := kv.Key(fmt.Sprintf("r%d", o.Row%16))
			col := fmt.Sprintf("c%d", o.Col%4)
			ts := kv.Timestamp(o.TS%32) + 1
			if o.Read {
				got, found := m.Get(row, col, ts)
				// Model: max ts' <= ts present.
				var best kv.Timestamp
				var bestVal []byte
				ok := false
				for c, v := range model {
					if c.Row == row && c.Column == col && c.TS <= ts && (!ok || c.TS > best) {
						best, bestVal, ok = c.TS, v, true
					}
				}
				if found != ok {
					return false
				}
				if found && (got.TS != best || string(got.Value) != string(bestVal)) {
					return false
				}
			} else {
				val := []byte(fmt.Sprintf("v%d", i))
				m.Put(kv.KeyValue{Cell: kv.Cell{Row: row, Column: col, TS: ts}, Value: val})
				model[kv.Cell{Row: row, Column: col, TS: ts}] = val
			}
		}
		// Final: All() must equal sorted model.
		all := m.All()
		if len(all) != len(model) {
			return false
		}
		keys := make([]kv.Cell, 0, len(model))
		for c := range model {
			keys = append(keys, c)
		}
		sort.Slice(keys, func(i, j int) bool { return kv.CompareCells(keys[i], keys[j]) < 0 })
		for i, c := range keys {
			if all[i].Cell != c || string(all[i].Value) != string(model[c]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreConcurrentReadWrite(t *testing.T) {
	m := NewMemStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			m.Put(mkKV(fmt.Sprintf("r%d", i%37), "c", kv.Timestamp(i+1), "v"))
		}
	}()
	for i := 0; i < 2000; i++ {
		m.Get(kv.Key(fmt.Sprintf("r%d", i%37)), "c", kv.MaxTimestamp)
		m.ScanRange(nil, kv.KeyRange{Start: "r1", End: "r2"}, kv.MaxTimestamp)
	}
	<-done
}

func BenchmarkMemStorePut(b *testing.B) {
	m := NewMemStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Put(mkKV(fmt.Sprintf("row%08d", i%100000), "c", kv.Timestamp(i+1), "value-payload-0123456789"))
	}
}

func BenchmarkMemStoreGet(b *testing.B) {
	m := NewMemStore()
	for i := 0; i < 100000; i++ {
		m.Put(mkKV(fmt.Sprintf("row%08d", i), "c", kv.Timestamp(i+1), "value-payload"))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Get(kv.Key(fmt.Sprintf("row%08d", i%100000)), "c", kv.MaxTimestamp)
	}
}
