package kvstore

import "errors"

// Store errors. Clients treat ErrRegionNotServing and ErrServerStopped as
// retryable after re-locating the region; a region is "not serving" while it
// is unassigned, opening, or blocked on transactional recovery (the paper's
// pre-online recovery gate).
var (
	ErrRegionNotServing = errors.New("kvstore: region not serving")
	ErrServerStopped    = errors.New("kvstore: region server stopped")
	ErrNoSuchTable      = errors.New("kvstore: no such table")
	ErrTableExists      = errors.New("kvstore: table already exists")
	ErrNoLiveServers    = errors.New("kvstore: no live region servers")
	// ErrBadStoreFileName reports a file in a region's data directory whose
	// name is not a strict decimal sequence plus the expected suffix.
	ErrBadStoreFileName = errors.New("kvstore: malformed store-file name")
	// ErrTransport reports a connection-level failure between the client
	// and a region server or the master: a dead socket, a refused dial, a
	// connection torn down mid-call. It says nothing about whether the
	// remote side executed the operation. Clients treat it as retryable
	// AFTER invalidating the cached layout — a dead server's regions must
	// be re-resolved through the master, never retried against the dead
	// address.
	ErrTransport = errors.New("kvstore: transport failure")
	// ErrStaleEpoch fences a deposed primary: a replica rejects any
	// replicated append, checkpoint, or promotion whose epoch is below the
	// one it has already seen. A fenced ex-primary therefore cannot reach
	// quorum, so it can never acknowledge a write after a newer primary was
	// elected. Clients treat it as retryable (the re-locate finds the new
	// primary; write-set application is idempotent).
	ErrStaleEpoch = errors.New("kvstore: stale replication epoch")
	// ErrLeaseExpired reports a write reaching a replicated primary whose
	// master-granted leader lease has lapsed (the master may be promoting a
	// follower right now). Retryable: the client re-locates and the flush
	// lands on whichever primary holds the next lease.
	ErrLeaseExpired = errors.New("kvstore: leader lease expired")
	// ErrFollowerBehind reports a bounded-staleness follower read whose
	// snapshot timestamp is ahead of the follower's replicated frontier.
	// The client falls back to the primary for that batch — it does NOT
	// re-locate, so the error deliberately does not wrap
	// ErrRegionNotServing.
	ErrFollowerBehind = errors.New("kvstore: follower behind read snapshot")
	// ErrReplicaGap reports a replicated append whose sequence number is
	// not contiguous with the follower's last applied entry. The shipper
	// rewinds to the follower's position (returned alongside) and resends.
	ErrReplicaGap = errors.New("kvstore: replicated stream gap")
)
