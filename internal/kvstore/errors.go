package kvstore

import "errors"

// Store errors. Clients treat ErrRegionNotServing and ErrServerStopped as
// retryable after re-locating the region; a region is "not serving" while it
// is unassigned, opening, or blocked on transactional recovery (the paper's
// pre-online recovery gate).
var (
	ErrRegionNotServing = errors.New("kvstore: region not serving")
	ErrServerStopped    = errors.New("kvstore: region server stopped")
	ErrNoSuchTable      = errors.New("kvstore: no such table")
	ErrTableExists      = errors.New("kvstore: table already exists")
	ErrNoLiveServers    = errors.New("kvstore: no live region servers")
	// ErrBadStoreFileName reports a file in a region's data directory whose
	// name is not a strict decimal sequence plus the expected suffix.
	ErrBadStoreFileName = errors.New("kvstore: malformed store-file name")
)
