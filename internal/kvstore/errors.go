package kvstore

import "errors"

// Store errors. Clients treat ErrRegionNotServing and ErrServerStopped as
// retryable after re-locating the region; a region is "not serving" while it
// is unassigned, opening, or blocked on transactional recovery (the paper's
// pre-online recovery gate).
var (
	ErrRegionNotServing = errors.New("kvstore: region not serving")
	ErrServerStopped    = errors.New("kvstore: region server stopped")
	ErrNoSuchTable      = errors.New("kvstore: no such table")
	ErrTableExists      = errors.New("kvstore: table already exists")
	ErrNoLiveServers    = errors.New("kvstore: no live region servers")
	// ErrBadStoreFileName reports a file in a region's data directory whose
	// name is not a strict decimal sequence plus the expected suffix.
	ErrBadStoreFileName = errors.New("kvstore: malformed store-file name")
	// ErrTransport reports a connection-level failure between the client
	// and a region server or the master: a dead socket, a refused dial, a
	// connection torn down mid-call. It says nothing about whether the
	// remote side executed the operation. Clients treat it as retryable
	// AFTER invalidating the cached layout — a dead server's regions must
	// be re-resolved through the master, never retried against the dead
	// address.
	ErrTransport = errors.New("kvstore: transport failure")
)
