package kvstore

import (
	"context"
	"fmt"
	"testing"

	"txkv/internal/kv"
)

// TestLayoutCacheScanMasterLookups proves the range-aware layout cache: a
// scan crossing every region of a multi-region table costs exactly one
// master lookup (the initial whole-table layout fetch), not one per region
// transition.
func TestLayoutCacheScanMasterLookups(t *testing.T) {
	ts := newTestStore(t, 3, false)
	if err := ts.master.CreateTable("t", []kv.Key{"d", "h", "l", "p", "t"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()

	rows := []string{"a", "e", "i", "m", "q", "u"} // one row per region
	for i, r := range rows {
		if err := c.Flush(ctx, writeSet("c1", kv.Timestamp(10+i), "t", r), 0, false); err != nil {
			t.Fatal(err)
		}
	}

	sc := c.NewScanner(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, ScanOptions{Batch: 2})
	n := 0
	for sc.Next() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(rows) {
		t.Fatalf("scan returned %d rows, want %d", n, len(rows))
	}

	st := c.Stats()
	if st.MasterLookups != 1 {
		t.Fatalf("scan across 6 regions cost %d master lookups, want 1 (layout cache)", st.MasterLookups)
	}
	if st.LayoutHits < int64(len(rows)) {
		t.Fatalf("layout hits = %d, want >= %d", st.LayoutHits, len(rows))
	}

	// Point reads across regions stay local too.
	for _, r := range rows {
		if _, found, err := c.Get(ctx, "t", kv.Key(r), "f", kv.MaxTimestamp); err != nil || !found {
			t.Fatalf("get %s: %v found=%v", r, err, found)
		}
	}
	if got := c.Stats().MasterLookups; got != 1 {
		t.Fatalf("point reads after scan cost %d master lookups, want 1", got)
	}
}

// TestLayoutCacheInvalidatePerRegion checks that invalidating one region
// keeps the rest of the table's cached layout usable.
func TestLayoutCacheInvalidatePerRegion(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a", "z"), 0, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp); err != nil {
		t.Fatal(err)
	}
	base := c.Stats().MasterLookups

	// Drop the first region from the layout: a read in the second region
	// must not refresh.
	var firstID string
	regions, err := ts.master.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	firstID = regions[0].ID
	c.invalidate("t", firstID)
	if _, _, err := c.Get(ctx, "t", "z", "f", kv.MaxTimestamp); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().MasterLookups; got != base {
		t.Fatalf("read in intact region refreshed the layout (%d -> %d lookups)", base, got)
	}
	// A read in the dropped region refreshes exactly once.
	if _, _, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().MasterLookups; got != base+1 {
		t.Fatalf("read in dropped region cost %d extra lookups, want 1", got-base)
	}
}

// TestRangeCoordsKeysOnly checks the DeleteRange push-down: RangeCoords
// sweeps live coordinates (tombstones elided, newest-version dedup) without
// shipping value bytes.
func TestRangeCoordsKeysOnly(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()

	ws := kv.WriteSet{TxnID: 1, ClientID: "c1", CommitTS: 10}
	for _, r := range []string{"a", "b", "n", "z"} {
		ws.Updates = append(ws.Updates, kv.Update{Table: "t", Row: kv.Key(r), Column: "f", Value: []byte("payload-" + r)})
	}
	if err := c.Flush(ctx, ws, 0, false); err != nil {
		t.Fatal(err)
	}
	// Tombstone one row at a later version: it must not appear in the sweep.
	del := kv.WriteSet{TxnID: 2, ClientID: "c1", CommitTS: 20, Updates: []kv.Update{
		{Table: "t", Row: "b", Column: "f", Tombstone: true},
	}}
	if err := c.Flush(ctx, del, 0, false); err != nil {
		t.Fatal(err)
	}

	coords, err := c.RangeCoords(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	want := []kv.CellKey{{Row: "a", Column: "f"}, {Row: "n", Column: "f"}, {Row: "z", Column: "f"}}
	if fmt.Sprint(coords) != fmt.Sprint(want) {
		t.Fatalf("coords = %v, want %v", coords, want)
	}

	// The keys-only scan itself must carry no value bytes.
	sc := c.NewScanner(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, ScanOptions{Batch: -1, KeysOnly: true})
	for sc.Next() {
		if sc.KV().Value != nil {
			t.Fatalf("keys-only scan shipped value bytes for %s", sc.KV().Row)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}
