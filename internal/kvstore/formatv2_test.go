package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"txkv/internal/compress"
	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// compressibleEntries returns sorted rows whose values snappy genuinely
// shrinks: the writer's raw-frame fallback would otherwise kick in and the
// corruption cases below would be exercising the wrong decoder.
func compressibleEntries(n int) []kv.KeyValue {
	entries := make([]kv.KeyValue, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, mkKV(
			fmt.Sprintf("row%05d", i), "c", kv.Timestamp(i+1),
			fmt.Sprintf("val%d-%s", i, strings.Repeat("abcdef", 8))))
	}
	return entries
}

// corruptCopy reads src, hands a private copy to mutate, and writes the
// result to dst. DFS files are append-only, so corruption is modeled as a
// mutated sibling rather than an in-place edit.
func corruptCopy(t *testing.T, fs *dfs.FS, src, dst string, mutate func([]byte) []byte) {
	t.Helper()
	orig, err := fs.ReadAll(src)
	if err != nil {
		t.Fatalf("read %s: %v", src, err)
	}
	b := mutate(append([]byte(nil), orig...))
	w, err := fs.Create(dst)
	if err != nil {
		t.Fatalf("create %s: %v", dst, err)
	}
	if err := w.Append(b); err != nil {
		t.Fatalf("append %s: %v", dst, err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("sync %s: %v", dst, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close %s: %v", dst, err)
	}
}

// TestStoreFileV2CorruptionRejected flips bytes in every structural section
// of a v2 file — frame header, compressed payload, bloom section, footer —
// and expects ErrBadStoreFile from open or from the first read that touches
// the damage, never a silent wrong answer or a panic.
func TestStoreFileV2CorruptionRejected(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	entries := compressibleEntries(500)
	if _, err := WriteStoreFileWith(fs, "/data/v2", entries, StoreFileOptions{
		BlockSize: 256, Version: StoreFileV2, Codec: compress.Snappy{},
	}); err != nil {
		t.Fatal(err)
	}
	orig, err := fs.ReadAll("/data/v2")
	if err != nil {
		t.Fatal(err)
	}
	// The first frame must actually be snappy-compressed, or the payload
	// case below would corrupt a raw frame instead.
	if orig[0] != compress.IDSnappy {
		t.Fatalf("first frame codec = %d, want snappy (values not compressible?)", orig[0])
	}
	footer := orig[len(orig)-footerSizeV2:]
	bloomOff := int64(binary.BigEndian.Uint64(footer[12:20]))
	if bloomLen := binary.BigEndian.Uint32(footer[20:24]); bloomLen == 0 {
		t.Fatal("v2 file written without a bloom section")
	}

	cases := []struct {
		name string
		// openFails: the damage must be caught at OpenStoreFile; otherwise
		// the open succeeds and the first Get through the block must fail.
		openFails bool
		mutate    func(b []byte) []byte
	}{
		{"unknown frame codec id", false, func(b []byte) []byte {
			b[0] = 0x7F
			return b
		}},
		{"corrupt snappy payload", false, func(b []byte) []byte {
			for i := 1; i < 7; i++ {
				b[i] = 0xFF
			}
			return b
		}},
		{"corrupt bloom header", true, func(b []byte) []byte {
			b[bloomOff] = 0x7F // bloom format-version byte
			return b
		}},
		{"corrupt footer version byte", true, func(b []byte) []byte {
			b[len(b)-(footerSizeV2-25)] = 0x09
			return b
		}},
		{"corrupt footer magic", true, func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}},
		{"body truncated under footer", true, func(b []byte) []byte {
			// Keep a valid footer whose index/bloom offsets now point past
			// the end of the file: the extent validation must reject it.
			return b[len(b)-64:]
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := "/data/corrupt-" + strings.ReplaceAll(tc.name, " ", "-")
			corruptCopy(t, fs, "/data/v2", path, tc.mutate)
			sf, err := OpenStoreFile(fs, path)
			if tc.openFails {
				if !errors.Is(err, ErrBadStoreFile) {
					t.Fatalf("open: got %v, want ErrBadStoreFile", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("open should succeed (footer intact): %v", err)
			}
			_, _, err = sf.Get(entries[0].Row, "c", kv.MaxTimestamp, nil)
			if !errors.Is(err, ErrBadStoreFile) {
				t.Fatalf("get through corrupt block: got %v, want ErrBadStoreFile", err)
			}
		})
	}

	// The pristine original still reads back — the mutated siblings never
	// touched it.
	sf, err := OpenStoreFile(fs, "/data/v2")
	if err != nil {
		t.Fatal(err)
	}
	got, found, err := sf.Get(entries[42].Row, "c", kv.MaxTimestamp, nil)
	if err != nil || !found || string(got.Value) != string(entries[42].Value) {
		t.Fatalf("original after corruption tests: %v %v %v", got, found, err)
	}
}

// TestCompactTieredUpgradesMixedFormats drives a region holding both v1 and
// v2 store files through tiered compaction: the legacy files are in the
// must-rewrite set even when no size tier qualifies, repeated rounds
// converge (CompactTiered eventually reports no work), and afterwards every
// live file is v2 with the data intact.
func TestCompactTieredUpgradesMixedFormats(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}}
	r, err := OpenRegion(fs, NewBlockCache(1<<20), info)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 50
	flushGen := func(gen int) {
		batch := make([]kv.KeyValue, 0, rows)
		for i := 0; i < rows; i++ {
			batch = append(batch, mkKV(
				fmt.Sprintf("row%05d", i), "c", kv.Timestamp(gen*1000+i+1),
				fmt.Sprintf("g%d-%d", gen, i)))
		}
		r.Apply(batch)
		if err := r.Flush(256); err != nil {
			t.Fatalf("flush gen %d: %v", gen, err)
		}
	}
	countVersions := func() (nv1, nv2 int) {
		v := r.acquireView()
		defer r.releaseView(v)
		for _, f := range v.files {
			if f.Version() == StoreFileV1 {
				nv1++
			} else {
				nv2++
			}
		}
		return
	}

	// Two flushes from the region's v1 era, then one after the configured
	// format moves to v2 — the mixed layout a rolling upgrade leaves behind.
	r.sfOpts = StoreFileOptions{Version: StoreFileV1}
	flushGen(1)
	flushGen(2)
	r.sfOpts = StoreFileOptions{}
	flushGen(3)
	if nv1, nv2 := countVersions(); nv1 != 2 || nv2 != 1 {
		t.Fatalf("mixed layout: %d v1 + %d v2 files, want 2 + 1", nv1, nv2)
	}

	changed, err := r.CompactTiered(256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first tiered round must rewrite the legacy v1 files")
	}
	if nv1, _ := countVersions(); nv1 != 0 {
		t.Fatalf("%d v1 files survive a tiered round; must-rewrite should claim all", nv1)
	}
	for rounds := 0; ; rounds++ {
		if rounds > 5 {
			t.Fatal("tiered compaction does not converge")
		}
		changed, err := r.CompactTiered(256, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			break
		}
	}

	// Every row reads back at its newest generation through the upgraded
	// files; all three generations survive under horizon 0.
	for i := 0; i < rows; i++ {
		row := kv.Key(fmt.Sprintf("row%05d", i))
		got, found, err := r.Get(row, "c", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("get %s after upgrade: %v %v", row, found, err)
		}
		if want := fmt.Sprintf("g3-%d", i); string(got.Value) != want {
			t.Fatalf("row %s = %q, want %q", row, got.Value, want)
		}
		got, found, err = r.Get(row, "c", kv.Timestamp(1000+i+1))
		if err != nil || !found || string(got.Value) != fmt.Sprintf("g1-%d", i) {
			t.Fatalf("row %s old version after upgrade: %q %v %v", row, got.Value, found, err)
		}
	}
}
