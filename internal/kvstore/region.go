package kvstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/metrics"
)

// RegionInfo identifies a region: a contiguous key range of one table.
type RegionInfo struct {
	ID    string
	Table string
	Range kv.KeyRange
}

func (r RegionInfo) String() string {
	return fmt.Sprintf("%s%s", r.ID, r.Range)
}

// dataDir is the DFS directory holding a region's store files.
func dataDir(table, regionID string) string {
	return fmt.Sprintf("/data/%s/%s/", table, regionID)
}

// regionView is the immutable read view of a region: the current active
// memstore, the frozen memstores awaiting flush, and the store files.
// Readers load it with one atomic pointer read — no lock, no slice copies —
// and mutators (freeze, flush completion, compaction, open) publish a fresh
// view. The slices are never mutated after publication.
type regionView struct {
	active *MemStore
	frozen []*MemStore  // oldest first
	files  []*StoreFile // oldest first
}

// viewRef is a published regionView plus its drain refcount. The count
// starts at 1 (the region's "current view" reference); every reader that
// touches store files holds one more for the duration of its read. When the
// view is swapped out AND the last reader releases, the view drains: it
// drops its per-file references, physically unlinking any store file a
// compaction retired meanwhile. This is what lets compaction delete its
// inputs without ever yanking a file out from under a lock-free reader.
//
// The refcount lives outside regionView so view mutation functions can keep
// copying the plain struct (an embedded atomic would trip copylocks).
type viewRef struct {
	regionView
	refs atomic.Int64
}

// tryRef takes a read reference unless the view has already drained
// (refs == 0 can never be revived: a drained view may have unlinked files).
func (v *viewRef) tryRef() bool {
	for {
		n := v.refs.Load()
		if n <= 0 {
			return false
		}
		if v.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Region is one hosted key range: an active memstore, zero or more frozen
// memstores awaiting flush, and the immutable store files on the DFS.
// Regions move between servers on failure; the store files (and nothing
// else) survive the move.
type Region struct {
	Info RegionInfo

	fs      dfs.FileSystem
	cache   *BlockCache
	reclaim *metrics.ReclaimMetrics // nil-safe; set by the hosting server
	stats   *FileStats              // nil-safe; shared cluster-wide, set by the hosting server

	// sfOpts are the store-file write options (format version, codec, bloom
	// sizing) for flushes and compactions; set by the hosting server. The
	// zero value writes v2 with defaults. BlockSize and Stats are filled in
	// per write by writeOpts.
	sfOpts StoreFileOptions

	// abandoned is set when the hosting server crashes: late view drains
	// from the dead incarnation must not unlink files — the region's next
	// incarnation discovered them by listing and may be serving them.
	// Leaked retire candidates are re-compacted (and re-retired, safely)
	// by the new incarnation.
	abandoned atomic.Bool

	view atomic.Pointer[viewRef]

	// heat is the always-on per-region load accounting (atomic adds only)
	// behind /debug/regions and the cluster read/write counters.
	heat regionHeat

	mu      sync.Mutex // guards view swaps and nextSeq
	nextSeq int

	flushMu sync.Mutex // serializes flushes and compactions
}

// swapView publishes a new read view derived from the current one and
// returns (new, old). The new view takes a reference on each of its store
// files before publication. Caller holds r.mu and must release the old
// view's current-view reference with r.releaseView AFTER dropping r.mu —
// draining can unlink retired store files, which is filesystem I/O that
// must not run under the swap lock.
func (r *Region) swapView(mutate func(old regionView) regionView) (nv, old *viewRef) {
	old = r.view.Load()
	nv = &viewRef{regionView: mutate(old.regionView)}
	nv.refs.Store(1)
	for _, f := range nv.files {
		f.ref()
	}
	r.view.Store(nv)
	return nv, old
}

// publishView installs the region's first view (open time).
func (r *Region) publishView(data regionView) {
	nv := &viewRef{regionView: data}
	nv.refs.Store(1)
	for _, f := range nv.files {
		f.ref()
	}
	r.view.Store(nv)
}

// acquireView returns the current view with a read reference held. The
// loop retries only when it loses a race with a view that fully drained
// between the pointer load and the reference take — at most a handful of
// iterations even under continuous compaction.
func (r *Region) acquireView() *viewRef {
	for {
		v := r.view.Load()
		if v.tryRef() {
			return v
		}
	}
}

// releaseView drops one reference; the last release drains the view,
// unreferencing its store files and physically unlinking any that were
// retired (deferred deletion: the files were compaction inputs whose
// replacement view is already live).
func (r *Region) releaseView(v *viewRef) {
	if v.refs.Add(-1) != 0 {
		return
	}
	for _, f := range v.files {
		if f.unref() {
			r.unlinkStoreFile(f)
		}
	}
}

// unlinkStoreFile physically removes a retired store file after its last
// view drained. A file served through a split reference marker retires only
// the marker — the shared parent file may still back the sibling daughter.
func (r *Region) unlinkStoreFile(f *StoreFile) {
	if r.abandoned.Load() {
		return // dead incarnation: the file may be live again elsewhere
	}
	path := f.Path()
	if f.refMarker != "" {
		path = f.refMarker
	}
	size, _ := r.fs.Size(path)
	if err := r.fs.Delete(path); err == nil {
		r.reclaim.AddFilesRetired(1)
		// Logical size, not physical reclaim: the journal bytes holding
		// these blocks are reclaimed by the next DFS log compaction.
		r.reclaim.AddRetiredBytes(size)
	}
	// Drop the dead file's blocks from the cache eagerly rather than
	// letting them ride the LRU to eviction. Only when the data file
	// itself is going away: retiring a split reference marker leaves the
	// shared parent file (whose path keys the cached blocks) possibly
	// still serving the sibling daughter.
	if f.refMarker == "" {
		r.cache.InvalidateFile(f.Path(), len(f.index))
	}
}

// cloneFrozenWithout returns frozen minus snap, as a fresh slice.
func cloneFrozenWithout(frozen []*MemStore, snap *MemStore) []*MemStore {
	out := make([]*MemStore, 0, len(frozen))
	for _, m := range frozen {
		if m != snap {
			out = append(out, m)
		}
	}
	return out
}

// OpenRegion opens a region: it discovers and opens the region's store
// files from the DFS directory listing. The memstores start empty (their
// previous content died with the previous server); recovered WAL edits are
// replayed by the caller via Apply.
//
// Discovery-by-listing is only safe when no prior incarnation of the
// region can still be draining readers in this process: the listing may
// contain compaction inputs that are retired but not yet unlinked. For an
// in-process region move use OpenRegionFiles with the source's final live
// file set.
func OpenRegion(fs dfs.FileSystem, cache *BlockCache, info RegionInfo) (*Region, error) {
	return openRegionPaths(fs, cache, info, fs.List(dataDir(info.Table, info.ID)))
}

// OpenRegionFiles opens a region serving exactly the given store-file
// paths (the move path: CloseAndFlushRegion's returned live set).
func OpenRegionFiles(fs dfs.FileSystem, cache *BlockCache, info RegionInfo, paths []string) (*Region, error) {
	return openRegionPaths(fs, cache, info, append([]string(nil), paths...))
}

func openRegionPaths(fs dfs.FileSystem, cache *BlockCache, info RegionInfo, paths []string) (*Region, error) {
	r := &Region{Info: info, fs: fs, cache: cache}
	dir := dataDir(info.Table, info.ID)
	sort.Strings(paths)
	var files []*StoreFile
	for _, p := range paths {
		var (
			isRef bool
			stem  string
		)
		switch {
		case strings.HasSuffix(p, tmpSuffix):
			// Orphan of a store-file write that crashed before its
			// publishing rename: never referenced, safe to sweep.
			_ = fs.Delete(p)
			continue
		case strings.HasSuffix(p, ".sf"):
			stem = strings.TrimSuffix(p[len(dir):], ".sf")
		case strings.HasSuffix(p, refSuffix):
			isRef, stem = true, strings.TrimSuffix(p[len(dir):], refSuffix)
		default:
			continue
		}
		// The name must be exactly a decimal sequence plus the suffix — a
		// lenient parse here would silently accept (and then mis-order)
		// foreign files that happen to contain a digit. Checked before the
		// open so a malformed name is reported as such, not as a corrupt
		// file. The max existing sequence is tracked so new flushes sort
		// after every recovered file.
		seq, err := parseStoreFileSeq(stem)
		if err != nil {
			return nil, fmt.Errorf("open region %s: %w: %q", info.ID, ErrBadStoreFileName, p)
		}
		var sf *StoreFile
		if isRef {
			// Post-split daughter: serve the parent's file through the
			// reference until a compaction localizes the data.
			sf, err = OpenStoreFileRef(fs, p)
		} else {
			sf, err = OpenStoreFile(fs, p)
		}
		if err != nil {
			return nil, fmt.Errorf("open region %s: %w", info.ID, err)
		}
		files = append(files, sf)
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	r.publishView(regionView{active: NewMemStore(), files: files})
	return r, nil
}

// parseStoreFileSeq parses a store-file name stem as a strict non-negative
// decimal (fmt.Sscanf's "%d" would tolerate garbage prefixes and signs).
func parseStoreFileSeq(stem string) (int, error) {
	n, err := strconv.ParseUint(stem, 10, 31)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// Apply inserts the versioned cells into the active memstore. Idempotent:
// reapplying the same (cell, ts) overwrites in place.
//
// If a freeze swaps the view mid-batch, the batch is re-applied into the
// new active memstore: the flush that froze the old one may already have
// snapshotted it without these cells, and re-application (idempotent
// versioned puts) guarantees they reach a store that will still be flushed.
func (r *Region) Apply(kvs []kv.KeyValue) {
	r.heat.writes.Add(1)
	r.heat.cellsWritten.Add(int64(len(kvs)))
	var bytes int64
	for _, e := range kvs {
		bytes += int64(len(e.Value))
	}
	r.heat.bytesWritten.Add(bytes)
	for {
		v := r.view.Load()
		for _, e := range kvs {
			v.active.Put(e)
		}
		// Only a freeze replaces the active memstore; flush-completion and
		// compaction swaps reuse it and need no re-application.
		if r.view.Load().active == v.active {
			return
		}
	}
}

// Get returns the newest visible version of (row, column) at or below
// maxTS, merging the active memstore, frozen memstores, and store files. A
// tombstone or absence yields found=false. The memstore path is lock-free
// and allocation-free: one atomic view load, skip-list seeks, no copies.
func (r *Region) Get(row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	v := r.acquireView()
	defer r.releaseView(v)

	var best kv.KeyValue
	found := false
	fromFile := false
	if e, ok := v.active.Get(row, column, maxTS); ok {
		best, found = e, true
	}
	for _, m := range v.frozen {
		if e, ok := m.Get(row, column, maxTS); ok && (!found || e.TS > best.TS) {
			best, found = e, true
		}
	}
	for _, f := range v.files {
		if f.hasBloom() {
			r.heat.bloomProbes.Add(1)
			r.stats.bloomProbe()
			if !f.MayContainRow(row) {
				// Definitive: the file holds no cell of this row, so the
				// block fetch (and possible decompression) is skipped.
				r.heat.bloomNegatives.Add(1)
				r.stats.bloomNegative()
				continue
			}
		}
		e, ok, err := f.Get(row, column, maxTS, r.cache)
		if err != nil {
			return kv.KeyValue{}, false, err
		}
		if !ok && f.hasBloom() {
			// The filter passed but the file had nothing for the coordinate —
			// counts (row, column) misses too, a slight overestimate of the
			// pure row-key false-positive rate.
			r.heat.bloomFalsePositives.Add(1)
			r.stats.bloomFalsePositive()
		}
		if ok && (!found || e.TS > best.TS) {
			best, found, fromFile = e, true, true
		}
	}
	r.heat.gets.Add(1)
	if !found || best.Tombstone {
		r.heat.misses.Add(1)
		return kv.KeyValue{}, false, nil
	}
	if fromFile {
		r.heat.fileHits.Add(1)
	} else {
		r.heat.memHits.Add(1)
	}
	r.heat.cellsRead.Add(1)
	r.heat.bytesRead.Add(int64(len(best.Value)))
	return best, true, nil
}

// ScanRange returns the newest visible version per (row, column) within rng
// at or below maxTS, sorted in store order, tombstones elided. The sources
// stream through a k-way heap merge that deduplicates by coordinate in
// merge order and stops as soon as limit entries have been produced —
// nothing beyond the limit is materialized or even decoded. It is one
// unbounded page of the cursor-scan machinery (see scanPage).
func (r *Region) ScanRange(rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	out, _, err := r.scanPage(nil, rng, maxTS, kv.CellKey{}, false, nil, false, limit)
	return out, err
}

// MemSize returns the approximate bytes held in the active memstore.
func (r *Region) MemSize() int {
	return r.view.Load().active.ApproxSize()
}

// dirtyForRoll reports whether the region's entire in-memory state is small
// enough (< min bytes) for a WAL roll to skip flushing it, and if so
// returns that state for re-journaling into the fresh generation. A region
// with frozen memstores (a flush in flight or awaiting retry) never skips:
// the roll's flush is what guarantees those edits reach store files before
// the old WAL generations are deleted. min <= 0 disables skipping.
//
// Entries applied concurrently with the snapshot are already journaled in
// the new WAL generation by the writer itself; re-journaling them in the
// carry entry only duplicates an idempotent versioned put.
func (r *Region) dirtyForRoll(min int) ([]kv.KeyValue, bool) {
	if min <= 0 {
		return nil, false
	}
	v := r.view.Load()
	if len(v.frozen) > 0 || v.active.ApproxSize() >= min {
		return nil, false
	}
	return v.active.All(), true
}

// Flush persists the active memstore as a new store file on the DFS. It is
// a no-op for an empty memstore. Reads remain consistent throughout: the
// snapshot stays visible as a frozen memstore until the file is durable.
func (r *Region) Flush(blockSize int) error {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()

	r.mu.Lock()
	if r.view.Load().active.Len() == 0 {
		r.mu.Unlock()
		return nil
	}
	var snap *MemStore
	_, old := r.swapView(func(old regionView) regionView {
		snap = old.active
		old.active = NewMemStore()
		old.frozen = append(cloneFrozenWithout(old.frozen, nil), snap)
		return old
	})
	seq := r.nextSeq
	r.nextSeq++
	r.mu.Unlock()
	r.releaseView(old)

	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	sf, err := WriteStoreFileWith(r.fs, path, snap.All(), r.writeOpts(blockSize))
	if err != nil {
		// Merge the snapshot back into the active memstore so a later
		// flush retries it. Versioned puts make the merge safe even if
		// newer versions were written meanwhile.
		r.mu.Lock()
		nv, old := r.swapView(func(old regionView) regionView {
			old.frozen = cloneFrozenWithout(old.frozen, snap)
			return old
		})
		r.mu.Unlock()
		r.releaseView(old)
		for _, e := range snap.All() {
			nv.active.Put(e)
		}
		return fmt.Errorf("flush region %s: %w", r.Info.ID, err)
	}

	r.mu.Lock()
	_, old = r.swapView(func(old regionView) regionView {
		old.files = append(append([]*StoreFile(nil), old.files...), sf)
		old.frozen = cloneFrozenWithout(old.frozen, snap)
		return old
	})
	r.mu.Unlock()
	r.releaseView(old)
	return nil
}

// writeOpts returns the region's store-file write options with the
// per-call block size and the shared stats sink filled in.
func (r *Region) writeOpts(blockSize int) StoreFileOptions {
	opts := r.sfOpts
	opts.BlockSize = blockSize
	opts.Stats = r.stats
	return opts
}

// targetStoreFileVersion is the format version the region's writes produce
// — the bar below which tiered compaction treats an existing file as
// must-rewrite.
func (r *Region) targetStoreFileVersion() int {
	if r.sfOpts.Version == StoreFileV1 {
		return StoreFileV1
	}
	return StoreFileV2
}

// Files returns the number of store files, for tests and stats.
func (r *Region) Files() int {
	return len(r.view.Load().files)
}

// storeFilePaths returns the current view's region-owned store-file paths
// (files served through split reference markers are excluded — they belong
// to an ancestor region). Only live files appear: retired compaction inputs
// are out of the view the moment their replacement publishes, even while a
// draining reader keeps them on the filesystem.
func (r *Region) storeFilePaths() []string {
	v := r.view.Load()
	out := make([]string, 0, len(v.files))
	for _, f := range v.files {
		if f.refMarker == "" {
			out = append(out, f.Path())
		}
	}
	return out
}
