package kvstore

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// RegionInfo identifies a region: a contiguous key range of one table.
type RegionInfo struct {
	ID    string
	Table string
	Range kv.KeyRange
}

func (r RegionInfo) String() string {
	return fmt.Sprintf("%s%s", r.ID, r.Range)
}

// dataDir is the DFS directory holding a region's store files.
func dataDir(table, regionID string) string {
	return fmt.Sprintf("/data/%s/%s/", table, regionID)
}

// Region is one hosted key range: an active memstore, zero or more frozen
// memstores awaiting flush, and the immutable store files on the DFS.
// Regions move between servers on failure; the store files (and nothing
// else) survive the move.
type Region struct {
	Info RegionInfo

	fs    *dfs.FS
	cache *BlockCache

	mu      sync.RWMutex
	active  *MemStore
	frozen  []*MemStore
	files   []*StoreFile // oldest first
	nextSeq int

	flushMu sync.Mutex // serializes flushes
}

// OpenRegion opens a region: it discovers and opens the region's store
// files on the DFS. The memstores start empty (their previous content died
// with the previous server); recovered WAL edits are replayed by the caller
// via Apply.
func OpenRegion(fs *dfs.FS, cache *BlockCache, info RegionInfo) (*Region, error) {
	r := &Region{Info: info, fs: fs, cache: cache, active: NewMemStore()}
	dir := dataDir(info.Table, info.ID)
	paths := fs.List(dir)
	sort.Strings(paths)
	for _, p := range paths {
		var (
			sf  *StoreFile
			err error
		)
		switch {
		case strings.HasSuffix(p, ".sf"):
			sf, err = OpenStoreFile(fs, p)
		case strings.HasSuffix(p, refSuffix):
			// Post-split daughter: serve the parent's file through the
			// reference until a compaction localizes the data.
			sf, err = OpenStoreFileRef(fs, p)
		default:
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("open region %s: %w", info.ID, err)
		}
		r.files = append(r.files, sf)
		// Track the max existing sequence number so new flushes sort after.
		var seq int
		if _, serr := fmt.Sscanf(p[len(dir):], "%d", &seq); serr == nil && seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	return r, nil
}

// Apply inserts the versioned cells into the active memstore. Idempotent:
// reapplying the same (cell, ts) overwrites in place.
func (r *Region) Apply(kvs []kv.KeyValue) {
	r.mu.RLock()
	active := r.active
	r.mu.RUnlock()
	for _, e := range kvs {
		active.Put(e)
	}
}

// Get returns the newest visible version of (row, column) at or below
// maxTS, merging the active memstore, frozen memstores, and store files. A
// tombstone or absence yields found=false.
func (r *Region) Get(row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	r.mu.RLock()
	sources := make([]*MemStore, 0, 1+len(r.frozen))
	sources = append(sources, r.active)
	sources = append(sources, r.frozen...)
	files := append([]*StoreFile(nil), r.files...)
	r.mu.RUnlock()

	var best kv.KeyValue
	found := false
	consider := func(e kv.KeyValue) {
		if !found || e.TS > best.TS {
			best, found = e, true
		}
	}
	for _, m := range sources {
		if e, ok := m.Get(row, column, maxTS); ok {
			consider(e)
		}
	}
	for _, f := range files {
		e, ok, err := f.Get(row, column, maxTS, r.cache)
		if err != nil {
			return kv.KeyValue{}, false, err
		}
		if ok {
			consider(e)
		}
	}
	if !found || best.Tombstone {
		return kv.KeyValue{}, false, nil
	}
	return best, true, nil
}

// ScanRange returns the newest visible version per (row, column) within rng
// at or below maxTS, sorted in store order, tombstones elided.
func (r *Region) ScanRange(rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	r.mu.RLock()
	sources := make([]*MemStore, 0, 1+len(r.frozen))
	sources = append(sources, r.active)
	sources = append(sources, r.frozen...)
	files := append([]*StoreFile(nil), r.files...)
	r.mu.RUnlock()

	var raw []kv.KeyValue
	for _, m := range sources {
		raw = m.ScanRange(raw, rng, maxTS)
	}
	for _, f := range files {
		var err error
		raw, err = f.ScanRange(raw, rng, maxTS, r.cache)
		if err != nil {
			return nil, err
		}
	}
	type coord struct {
		row kv.Key
		col string
	}
	best := make(map[coord]kv.KeyValue, len(raw))
	for _, e := range raw {
		c := coord{e.Row, e.Column}
		if cur, ok := best[c]; !ok || e.TS > cur.TS {
			best[c] = e
		}
	}
	out := make([]kv.KeyValue, 0, len(best))
	for _, e := range best {
		if !e.Tombstone {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return kv.CompareCells(out[i].Cell, out[j].Cell) < 0 })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out, nil
}

// MemSize returns the approximate bytes held in the active memstore.
func (r *Region) MemSize() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.active.ApproxSize()
}

// Flush persists the active memstore as a new store file on the DFS. It is
// a no-op for an empty memstore. Reads remain consistent throughout: the
// snapshot stays visible as a frozen memstore until the file is durable.
func (r *Region) Flush(blockSize int) error {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()

	r.mu.Lock()
	if r.active.Len() == 0 {
		r.mu.Unlock()
		return nil
	}
	snap := r.active
	r.active = NewMemStore()
	r.frozen = append(r.frozen, snap)
	seq := r.nextSeq
	r.nextSeq++
	r.mu.Unlock()

	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	sf, err := WriteStoreFile(r.fs, path, snap.All(), blockSize)
	if err != nil {
		// Merge the snapshot back into the active memstore so a later
		// flush retries it. Versioned puts make the merge safe even if
		// newer versions were written meanwhile.
		r.mu.Lock()
		for i, m := range r.frozen {
			if m == snap {
				r.frozen = append(r.frozen[:i], r.frozen[i+1:]...)
				break
			}
		}
		active := r.active
		r.mu.Unlock()
		for _, e := range snap.All() {
			active.Put(e)
		}
		return fmt.Errorf("flush region %s: %w", r.Info.ID, err)
	}

	r.mu.Lock()
	r.files = append(r.files, sf)
	for i, m := range r.frozen {
		if m == snap {
			r.frozen = append(r.frozen[:i], r.frozen[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	return nil
}

// Files returns the number of store files, for tests and stats.
func (r *Region) Files() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.files)
}
