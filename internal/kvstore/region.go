package kvstore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// RegionInfo identifies a region: a contiguous key range of one table.
type RegionInfo struct {
	ID    string
	Table string
	Range kv.KeyRange
}

func (r RegionInfo) String() string {
	return fmt.Sprintf("%s%s", r.ID, r.Range)
}

// dataDir is the DFS directory holding a region's store files.
func dataDir(table, regionID string) string {
	return fmt.Sprintf("/data/%s/%s/", table, regionID)
}

// regionView is the immutable read view of a region: the current active
// memstore, the frozen memstores awaiting flush, and the store files.
// Readers load it with one atomic pointer read — no lock, no slice copies —
// and mutators (freeze, flush completion, compaction, open) publish a fresh
// view. The slices are never mutated after publication.
type regionView struct {
	active *MemStore
	frozen []*MemStore  // oldest first
	files  []*StoreFile // oldest first
}

// Region is one hosted key range: an active memstore, zero or more frozen
// memstores awaiting flush, and the immutable store files on the DFS.
// Regions move between servers on failure; the store files (and nothing
// else) survive the move.
type Region struct {
	Info RegionInfo

	fs    *dfs.FS
	cache *BlockCache

	view atomic.Pointer[regionView]

	mu      sync.Mutex // guards view swaps and nextSeq
	nextSeq int

	flushMu sync.Mutex // serializes flushes and compactions
}

// swapView publishes a new read view derived from the current one. Caller
// holds r.mu.
func (r *Region) swapView(mutate func(old regionView) regionView) *regionView {
	nv := mutate(*r.view.Load())
	r.view.Store(&nv)
	return &nv
}

// cloneFrozenWithout returns frozen minus snap, as a fresh slice.
func cloneFrozenWithout(frozen []*MemStore, snap *MemStore) []*MemStore {
	out := make([]*MemStore, 0, len(frozen))
	for _, m := range frozen {
		if m != snap {
			out = append(out, m)
		}
	}
	return out
}

// OpenRegion opens a region: it discovers and opens the region's store
// files on the DFS. The memstores start empty (their previous content died
// with the previous server); recovered WAL edits are replayed by the caller
// via Apply.
func OpenRegion(fs *dfs.FS, cache *BlockCache, info RegionInfo) (*Region, error) {
	r := &Region{Info: info, fs: fs, cache: cache}
	dir := dataDir(info.Table, info.ID)
	paths := fs.List(dir)
	sort.Strings(paths)
	var files []*StoreFile
	for _, p := range paths {
		var (
			isRef bool
			stem  string
		)
		switch {
		case strings.HasSuffix(p, ".sf"):
			stem = strings.TrimSuffix(p[len(dir):], ".sf")
		case strings.HasSuffix(p, refSuffix):
			isRef, stem = true, strings.TrimSuffix(p[len(dir):], refSuffix)
		default:
			continue
		}
		// The name must be exactly a decimal sequence plus the suffix — a
		// lenient parse here would silently accept (and then mis-order)
		// foreign files that happen to contain a digit. Checked before the
		// open so a malformed name is reported as such, not as a corrupt
		// file. The max existing sequence is tracked so new flushes sort
		// after every recovered file.
		seq, err := parseStoreFileSeq(stem)
		if err != nil {
			return nil, fmt.Errorf("open region %s: %w: %q", info.ID, ErrBadStoreFileName, p)
		}
		var sf *StoreFile
		if isRef {
			// Post-split daughter: serve the parent's file through the
			// reference until a compaction localizes the data.
			sf, err = OpenStoreFileRef(fs, p)
		} else {
			sf, err = OpenStoreFile(fs, p)
		}
		if err != nil {
			return nil, fmt.Errorf("open region %s: %w", info.ID, err)
		}
		files = append(files, sf)
		if seq >= r.nextSeq {
			r.nextSeq = seq + 1
		}
	}
	r.view.Store(&regionView{active: NewMemStore(), files: files})
	return r, nil
}

// parseStoreFileSeq parses a store-file name stem as a strict non-negative
// decimal (fmt.Sscanf's "%d" would tolerate garbage prefixes and signs).
func parseStoreFileSeq(stem string) (int, error) {
	n, err := strconv.ParseUint(stem, 10, 31)
	if err != nil {
		return 0, err
	}
	return int(n), nil
}

// Apply inserts the versioned cells into the active memstore. Idempotent:
// reapplying the same (cell, ts) overwrites in place.
//
// If a freeze swaps the view mid-batch, the batch is re-applied into the
// new active memstore: the flush that froze the old one may already have
// snapshotted it without these cells, and re-application (idempotent
// versioned puts) guarantees they reach a store that will still be flushed.
func (r *Region) Apply(kvs []kv.KeyValue) {
	for {
		v := r.view.Load()
		for _, e := range kvs {
			v.active.Put(e)
		}
		// Only a freeze replaces the active memstore; flush-completion and
		// compaction swaps reuse it and need no re-application.
		if r.view.Load().active == v.active {
			return
		}
	}
}

// Get returns the newest visible version of (row, column) at or below
// maxTS, merging the active memstore, frozen memstores, and store files. A
// tombstone or absence yields found=false. The memstore path is lock-free
// and allocation-free: one atomic view load, skip-list seeks, no copies.
func (r *Region) Get(row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	v := r.view.Load()

	var best kv.KeyValue
	found := false
	if e, ok := v.active.Get(row, column, maxTS); ok {
		best, found = e, true
	}
	for _, m := range v.frozen {
		if e, ok := m.Get(row, column, maxTS); ok && (!found || e.TS > best.TS) {
			best, found = e, true
		}
	}
	for _, f := range v.files {
		e, ok, err := f.Get(row, column, maxTS, r.cache)
		if err != nil {
			return kv.KeyValue{}, false, err
		}
		if ok && (!found || e.TS > best.TS) {
			best, found = e, true
		}
	}
	if !found || best.Tombstone {
		return kv.KeyValue{}, false, nil
	}
	return best, true, nil
}

// ScanRange returns the newest visible version per (row, column) within rng
// at or below maxTS, sorted in store order, tombstones elided. The sources
// stream through a k-way heap merge that deduplicates by coordinate in
// merge order and stops as soon as limit entries have been produced —
// nothing beyond the limit is materialized or even decoded.
func (r *Region) ScanRange(rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	v := r.view.Load()

	iters := make([]kvIter, 0, 1+len(v.frozen)+len(v.files))
	iters = append(iters, v.active.Iter(rng, maxTS))
	for _, m := range v.frozen {
		iters = append(iters, m.Iter(rng, maxTS))
	}
	for _, f := range v.files {
		fi, err := f.Iter(rng, maxTS, r.cache)
		if err != nil {
			return nil, err
		}
		iters = append(iters, fi)
	}
	mg := newMerger(iters)

	var (
		out     []kv.KeyValue
		lastRow kv.Key
		lastCol string
		have    bool
	)
	for {
		e, ok, err := mg.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if have && e.Row == lastRow && e.Column == lastCol {
			continue // older version (or exact duplicate) of an emitted coordinate
		}
		lastRow, lastCol, have = e.Row, e.Column, true
		if e.Tombstone {
			continue // coordinate is deleted at this snapshot
		}
		out = append(out, e)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// MemSize returns the approximate bytes held in the active memstore.
func (r *Region) MemSize() int {
	return r.view.Load().active.ApproxSize()
}

// Flush persists the active memstore as a new store file on the DFS. It is
// a no-op for an empty memstore. Reads remain consistent throughout: the
// snapshot stays visible as a frozen memstore until the file is durable.
func (r *Region) Flush(blockSize int) error {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()

	r.mu.Lock()
	if r.view.Load().active.Len() == 0 {
		r.mu.Unlock()
		return nil
	}
	var snap *MemStore
	r.swapView(func(old regionView) regionView {
		snap = old.active
		old.active = NewMemStore()
		old.frozen = append(cloneFrozenWithout(old.frozen, nil), snap)
		return old
	})
	seq := r.nextSeq
	r.nextSeq++
	r.mu.Unlock()

	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	sf, err := WriteStoreFile(r.fs, path, snap.All(), blockSize)
	if err != nil {
		// Merge the snapshot back into the active memstore so a later
		// flush retries it. Versioned puts make the merge safe even if
		// newer versions were written meanwhile.
		r.mu.Lock()
		nv := r.swapView(func(old regionView) regionView {
			old.frozen = cloneFrozenWithout(old.frozen, snap)
			return old
		})
		r.mu.Unlock()
		for _, e := range snap.All() {
			nv.active.Put(e)
		}
		return fmt.Errorf("flush region %s: %w", r.Info.ID, err)
	}

	r.mu.Lock()
	r.swapView(func(old regionView) regionView {
		old.files = append(append([]*StoreFile(nil), old.files...), sf)
		old.frozen = cloneFrozenWithout(old.frozen, snap)
		return old
	})
	r.mu.Unlock()
	return nil
}

// Files returns the number of store files, for tests and stats.
func (r *Region) Files() int {
	return len(r.view.Load().files)
}
