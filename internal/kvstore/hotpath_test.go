package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// TestOpenRegionRejectsMalformedStoreFileName: the store-file sequence must
// be a strict decimal — names with garbage prefixes (which fmt.Sscanf "%d"
// used to tolerate) fail the open instead of being silently mis-sequenced.
func TestOpenRegionRejectsMalformedStoreFileName(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "bad-r000", Table: "t", Range: kv.KeyRange{}}

	// A valid region first, so the fixture is realistic.
	r, err := OpenRegion(fs, nil, info)
	if err != nil {
		t.Fatal(err)
	}
	r.Apply([]kv.KeyValue{mkKV("row1", "f", 1, "v")})
	if err := r.Flush(0); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegion(fs, nil, info); err != nil {
		t.Fatalf("reopen of valid region: %v", err)
	}

	for _, name := range []string{"junk00000009.sf", "0x000001.sf", "12garbage.sf", ".sf", "-0000001.sf"} {
		path := dataDir(info.Table, info.ID) + name
		w, err := fs.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		_ = w.Close()
		_, err = OpenRegion(fs, nil, info)
		if !errors.Is(err, ErrBadStoreFileName) {
			t.Fatalf("OpenRegion with %q: got %v, want ErrBadStoreFileName", name, err)
		}
		if err := fs.Delete(path); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegionGetZeroAllocs: the memstore-resident read path must not
// allocate — no per-call source slices, no closures, no lock shadows.
func TestRegionGetZeroAllocs(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	r, err := OpenRegion(fs, nil, RegionInfo{ID: "za-r000", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("row%04d", i), "f", kv.Timestamp(i+1), "value")})
	}
	row := kv.Key("row0500")
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, err := r.Get(row, "f", kv.MaxTimestamp); !ok || err != nil {
			t.Fatalf("get: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Region.Get allocates %.1f objects per call, want 0", allocs)
	}
}

// TestMemStoreConcurrentStress hammers one memstore with parallel writers,
// point readers, and scanners; run under -race this is the data-race proof
// for the lock-free skip list.
func TestMemStoreConcurrentStress(t *testing.T) {
	m := NewMemStore()
	const (
		writers = 4
		readers = 4
		rows    = 257
		perG    = 3000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ts := kv.Timestamp(w*perG + i + 1)
				m.Put(mkKV(fmt.Sprintf("r%03d", i%rows), fmt.Sprintf("c%d", w%3), ts, "v"))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Get(kv.Key(fmt.Sprintf("r%03d", i%rows)), "c0", kv.MaxTimestamp)
				if i%64 == 0 {
					m.ScanRange(nil, kv.KeyRange{Start: "r100", End: "r120"}, kv.MaxTimestamp)
				}
			}
		}(g)
	}
	wg.Wait()

	// Every write must be present and the list sorted.
	all := m.All()
	if len(all) != m.Len() {
		t.Fatalf("All() len %d != Len() %d", len(all), m.Len())
	}
	for i := 1; i < len(all); i++ {
		if kv.CompareCells(all[i-1].Cell, all[i].Cell) >= 0 {
			t.Fatalf("unsorted at %d: %v then %v", i, all[i-1], all[i])
		}
	}
}

// TestMemStoreConcurrentVsReference: N concurrent writers insert a known
// (overlapping) set of cells; afterwards the skip list's iteration order
// must exactly equal the reference sorted slice — the property the flush
// and scan paths rely on.
func TestMemStoreConcurrentVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const total = 8000
	entries := make([]kv.KeyValue, total)
	for i := range entries {
		entries[i] = mkKV(
			fmt.Sprintf("row%03d", rng.Intn(200)),
			fmt.Sprintf("c%d", rng.Intn(4)),
			kv.Timestamp(rng.Intn(64)+1),
			fmt.Sprintf("v%d", i),
		)
	}

	m := NewMemStore()
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Interleaved (not chunked) assignment maximizes CAS contention
			// on neighbouring cells.
			for i := g; i < total; i += goroutines {
				m.Put(entries[i])
			}
		}(g)
	}
	wg.Wait()

	// Reference: last write per cell wins — but concurrent goroutines race
	// on duplicate cells, so compare coordinates only, plus value equality
	// for cells written by a single goroutine.
	ref := make(map[kv.Cell]bool, total)
	for _, e := range entries {
		ref[e.Cell] = true
	}
	cells := make([]kv.Cell, 0, len(ref))
	for c := range ref {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return kv.CompareCells(cells[i], cells[j]) < 0 })

	all := m.All()
	if len(all) != len(cells) {
		t.Fatalf("skip list has %d cells, reference %d", len(all), len(cells))
	}
	for i, c := range cells {
		if all[i].Cell != c {
			t.Fatalf("iteration order diverges at %d: got %v, want %v", i, all[i].Cell, c)
		}
	}

	// And the streaming iterator agrees with ScanRange.
	it := m.Iter(kv.KeyRange{}, kv.MaxTimestamp)
	for i := 0; it.Valid(); i++ {
		if it.Head().Cell != all[i].Cell {
			t.Fatalf("iterator diverges at %d", i)
		}
		if err := it.Next(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRegionConcurrentApplyGetScanFlush exercises the whole region hot path
// concurrently: writers apply, readers get and scan, and the flusher
// freezes memstores and rewrites the view — under -race this validates the
// copy-on-write read view.
func TestRegionConcurrentApplyGetScanFlush(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	r, err := OpenRegion(fs, NewBlockCache(1<<20), RegionInfo{ID: "cc-r000", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 3
		perG    = 1500
		rows    = 101
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ts := kv.Timestamp(w*perG + i + 1)
				r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("r%03d", i%rows), "f", ts, "v")})
			}
		}(w)
	}
	wg.Add(2)
	go func() { // reader
		defer wg.Done()
		for i := 0; i < perG; i++ {
			if _, _, err := r.Get(kv.Key(fmt.Sprintf("r%03d", i%rows)), "f", kv.MaxTimestamp); err != nil {
				t.Error(err)
				return
			}
			if i%32 == 0 {
				if _, err := r.ScanRange(kv.KeyRange{Start: "r010", End: "r050"}, kv.MaxTimestamp, 10); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() { // flusher: freeze + flush + compact race against everything
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := r.Flush(512); err != nil {
				t.Error(err)
				return
			}
			if r.Files() > 3 {
				if err := r.Compact(512, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()

	// Post-condition: every row readable with its newest version.
	if err := r.Flush(512); err != nil {
		t.Fatal(err)
	}
	scan, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) != rows {
		t.Fatalf("final scan has %d rows, want %d", len(scan), rows)
	}
}

func BenchmarkMemStorePutParallel(b *testing.B) {
	m := NewMemStore()
	b.ReportAllocs()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			m.Put(mkKV(fmt.Sprintf("row%08d", i%100000), "c", kv.Timestamp(i), "value-payload-0123456789"))
		}
	})
}

func BenchmarkRegionGetParallel(b *testing.B) {
	fs := dfs.New(dfs.Config{})
	r, err := OpenRegion(fs, nil, RegionInfo{ID: "b-r000", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		b.Fatal(err)
	}
	const rows = 100000
	for i := 0; i < rows; i++ {
		r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("row%08d", i), "f", kv.Timestamp(i+1), "value-payload")})
	}
	b.ResetTimer()
	b.ReportAllocs()
	var seq atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := seq.Add(1)
			if _, ok, err := r.Get(kv.Key(fmt.Sprintf("row%08d", i%rows)), "f", kv.MaxTimestamp); !ok || err != nil {
				b.Fatalf("get: %v %v", ok, err)
			}
		}
	})
}

func BenchmarkRegionScanLimit(b *testing.B) {
	r, _ := buildRegionWithFiles(b, 4, 1000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := fmt.Sprintf("row%03d", i%900)
		if _, err := r.ScanRange(kv.KeyRange{Start: kv.Key(start)}, kv.MaxTimestamp, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRegionScanLimitPushdown: a limited scan must stop at the limit and
// return the first rows in order, across memstore + file sources.
func TestRegionScanLimitPushdown(t *testing.T) {
	r, _ := buildRegionWithFiles(t, 3, 40)
	// Newer versions for some rows still in the memstore.
	r.Apply([]kv.KeyValue{mkKV("row005", "f", 9999, "fresh")})

	got, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 7 {
		t.Fatalf("limit 7 returned %d entries", len(got))
	}
	for i, e := range got {
		want := kv.Key(fmt.Sprintf("row%03d", i))
		if e.Row != want {
			t.Fatalf("entry %d = %s, want %s", i, e.Row, want)
		}
	}
	if string(got[5].Value) != "fresh" {
		t.Fatalf("row005 = %q, want the memstore's newer version", got[5].Value)
	}
}
