package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// TestWALSplitProperty drives random write-sets at a server across random
// sync points, crashes it, and verifies the master's WAL split recovers
// exactly the synced entries, grouped by the right region.
func TestWALSplitProperty(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := dfs.New(dfs.Config{})
		srv := NewRegionServer(ServerConfig{
			ID:              "split-test",
			WALSyncInterval: 0, // manual sync only
		}, fs)
		master := NewMaster(MasterConfig{HeartbeatTimeout: time.Hour}, fs)
		master.Start()
		defer master.Stop()
		if err := master.AddServer(srv); err != nil {
			return false
		}
		defer func() {
			if !srv.Crashed() {
				srv.Stop()
			}
		}()
		// Two regions on the one server.
		if err := master.CreateTable("t", []kv.Key{"m"}); err != nil {
			return false
		}

		type applied struct {
			row    string
			ts     kv.Timestamp
			synced bool
		}
		var history []applied
		syncedUpTo := -1
		n := int(nOps%40) + 1
		for i := 0; i < n; i++ {
			row := fmt.Sprintf("%c%02d", 'a'+byte(rng.Intn(26)), rng.Intn(20))
			ts := kv.Timestamp(i + 1)
			ws := kv.WriteSet{TxnID: uint64(i), ClientID: "c", CommitTS: ts, Updates: []kv.Update{
				{Table: "t", Row: kv.Key(row), Column: "f", Value: []byte(fmt.Sprintf("v%d", ts))},
			}}
			if err := srv.ApplyWriteSet(ws, 0, false); err != nil {
				return false
			}
			history = append(history, applied{row: row, ts: ts})
			if rng.Intn(4) == 0 {
				if err := srv.SyncWAL(); err != nil {
					return false
				}
				syncedUpTo = len(history) - 1
			}
		}
		for i := 0; i <= syncedUpTo; i++ {
			history[i].synced = true
		}
		srv.Crash()

		// Split the WAL as the master would.
		edits := master.splitWAL("split-test")
		got := make(map[string]kv.Timestamp) // row -> max recovered ts
		for regionID, entries := range edits {
			for _, e := range entries {
				for _, x := range e.KVs {
					// Region grouping must be correct.
					wantRegion := "t-r000"
					if x.Row >= "m" {
						wantRegion = "t-r001"
					}
					if regionID != wantRegion {
						return false
					}
					if cur, ok := got[string(x.Row)]; !ok || x.TS > cur {
						got[string(x.Row)] = x.TS
					}
				}
			}
		}
		// Every synced entry must be recovered; no unsynced entry may be.
		want := make(map[string]kv.Timestamp)
		for _, a := range history {
			if a.synced && a.ts > want[a.row] {
				want[a.row] = a.ts
			}
		}
		for row, ts := range want {
			if got[row] < ts {
				return false // synced data lost
			}
		}
		for row, ts := range got {
			// Anything recovered must have been applied (no fabrication)
			// and at most the highest synced ts for that row... an
			// unsynced entry can never appear because sync boundaries are
			// chunk boundaries.
			okRow := false
			var maxApplied kv.Timestamp
			for _, a := range history {
				if a.row == row {
					okRow = true
					if a.synced && a.ts > maxApplied {
						maxApplied = a.ts
					}
				}
			}
			if !okRow || ts > maxApplied {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
