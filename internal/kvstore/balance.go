package kvstore

import (
	"fmt"
	"sort"
)

// Region migration and balancing. The paper motivates the architecture with
// HBase's elastic scalability: "when the existing region servers become
// overloaded, new region servers can be added dynamically" (§2.1). MoveRegion
// implements the HBase-style region move — flush, close on the source, open
// on the target — and Rebalance spreads regions evenly after servers join.

// MoveRegion migrates one region to the target server: the region goes
// offline, its memstore is flushed so the store files carry the full state,
// the source closes it, and the target opens it. Clients retry through the
// brief offline window exactly as during failure recovery.
func (m *Master) MoveRegion(regionID, targetServerID string) error {
	m.mu.Lock()
	target, ok := m.servers[targetServerID]
	if !ok || !target.alive {
		m.mu.Unlock()
		return fmt.Errorf("%w: target %s", ErrNoLiveServers, targetServerID)
	}
	srcID, ok := m.assign[regionID]
	if !ok || m.recovering[regionID] {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrRegionNotServing, regionID)
	}
	if srcID == targetServerID {
		m.mu.Unlock()
		return nil
	}
	src := m.servers[srcID]
	var info RegionInfo
	found := false
	for _, regions := range m.tables {
		for _, ri := range regions {
			if ri.ID == regionID {
				info, found = ri, true
			}
		}
	}
	if !found || src == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrRegionNotServing, regionID)
	}
	m.recovering[regionID] = true
	delete(m.assign, regionID)
	m.mu.Unlock()

	reassign := func(sid string) {
		m.mu.Lock()
		m.assign[regionID] = sid
		delete(m.recovering, regionID)
		m.mu.Unlock()
	}
	// The returned paths are the source's final live store files — the
	// target must open exactly these: the directory listing can still
	// contain retired compaction inputs whose deferred deletion fires
	// when the source's last reader drains.
	files, err := src.host.CloseAndFlushRegion(regionID)
	if err != nil {
		reassign(srcID) // leave it where it was
		return fmt.Errorf("move %s: %w", regionID, err)
	}
	if err := target.host.OpenRegionFiles(info, files, nil, nil); err != nil {
		// Try to restore it on the source. Either way the source's stream
		// state is gone, so the group (if any) re-forms at a fresh epoch.
		if rerr := src.host.OpenRegionFiles(info, files, nil, nil); rerr == nil {
			reassign(srcID)
			m.ensureReplicated(info, srcID, true)
		}
		return fmt.Errorf("move %s: open on %s: %w", regionID, targetServerID, err)
	}
	reassign(targetServerID)
	// The region's copy moved: re-form the replication group around the new
	// primary at a fresh epoch (stale followers re-anchor on its stream).
	m.ensureReplicated(info, targetServerID, true)
	return nil
}

// Rebalance moves regions from the most- to the least-loaded live servers
// until region counts differ by at most one. Returns the number of moves.
func (m *Master) Rebalance() (int, error) {
	moves := 0
	for {
		m.mu.Lock()
		counts := make(map[string]int)
		for id, rec := range m.servers {
			if rec.alive {
				counts[id] = 0
			}
		}
		if len(counts) < 2 {
			m.mu.Unlock()
			return moves, nil
		}
		regionsByServer := make(map[string][]string)
		for regionID, sid := range m.assign {
			if _, live := counts[sid]; live && !m.recovering[regionID] {
				counts[sid]++
				regionsByServer[sid] = append(regionsByServer[sid], regionID)
			}
		}
		type load struct {
			id string
			n  int
		}
		loads := make([]load, 0, len(counts))
		for id, n := range counts {
			loads = append(loads, load{id, n})
		}
		sort.Slice(loads, func(i, j int) bool {
			if loads[i].n != loads[j].n {
				return loads[i].n < loads[j].n
			}
			return loads[i].id < loads[j].id
		})
		least, most := loads[0], loads[len(loads)-1]
		if most.n-least.n <= 1 {
			m.mu.Unlock()
			return moves, nil
		}
		candidates := regionsByServer[most.id]
		sort.Strings(candidates)
		victim := candidates[0]
		m.mu.Unlock()

		if err := m.MoveRegion(victim, least.id); err != nil {
			return moves, err
		}
		moves++
	}
}
