package kvstore

import (
	"context"
	"sync/atomic"

	"txkv/internal/kv"
	"txkv/internal/netsim"
)

// The transport seam. A Client routes every operation through a Transport:
// the master surface (layout resolution and admin ops) plus, per located
// region, a RegionEndpoint carrying the region-server surface (point reads,
// batched reads, scan-batch continuation paging, and write-set apply). Two
// implementations exist:
//
//   - the loopback transport below: direct method calls through the
//     simulated network, preserving the original in-process semantics
//     (latency injection, partitions, node-down errors) for every existing
//     test and embedded deployment;
//   - internal/rpc's TCP transport: the same surface over the length-
//     prefixed binary protocol documented in PROTOCOL.md, for clients in a
//     different process than the master and region servers.
//
// The seam is deliberately cut at the existing request/response structs
// (ScanRequest/ScanResponse, kv.WriteSet): the wire protocol serializes
// exactly what the in-process path already passes by value.

// RegionEndpoint is a client's handle to one region server: the per-region
// half of a Transport. Addr is the endpoint's stable routing key — the
// server ID in-process, "host:port" over TCP — used to group batched
// operations into one round trip per server. Endpoint errors that indicate
// a connection-level failure must wrap ErrTransport so the client re-
// resolves the layout instead of retrying a dead address.
type RegionEndpoint interface {
	Addr() string
	Get(ctx context.Context, table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error)
	GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) ([]kv.KeyValue, []bool, error)
	ScanBatch(ctx context.Context, req ScanRequest) (ScanResponse, error)
	Apply(ctx context.Context, ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error
}

// Location pairs a region's metadata with the endpoint serving it — one
// entry of a transport-level layout snapshot. Followers lists live follower
// copies (when the cluster replicates): endpoints a client configured for
// follower reads may route scan batches to, falling back to Ep when a
// follower is behind or unreachable.
type Location struct {
	Info      RegionInfo
	Ep        RegionEndpoint
	Followers []RegionEndpoint
}

// Transport is the master surface a Client resolves layouts and admin
// operations through.
type Transport interface {
	// LocateAll resolves a table's full serving layout: every online
	// region, sorted by start key, each with a live endpoint.
	LocateAll(ctx context.Context, table string) ([]Location, error)
	// CreateTable creates a table pre-split at the given keys.
	CreateTable(ctx context.Context, name string, splits []kv.Key) error
	// SplitRegion splits an online region at splitKey.
	SplitRegion(ctx context.Context, regionID string, splitKey kv.Key) error
	// TableRegions returns a table's region metadata, sorted by start key.
	TableRegions(ctx context.Context, table string) ([]RegionInfo, error)
	// Close releases transport resources (connections, pools). The loopback
	// transport holds none.
	Close() error
}

// EndpointDialer turns a remote address from the master's layout into a
// live endpoint. The loopback transport uses one to serve mixed clusters
// (in-process master, out-of-process region servers): locations whose host
// is not a local *RegionServer are dialed through it.
type EndpointDialer func(addr string) (RegionEndpoint, error)

// LoopbackTransport is the in-process Transport: every call crosses the
// simulated network (paying its latency, partitions, and crash injection)
// and lands directly on the master's or region server's methods. It
// preserves the exact routing semantics the in-process cluster always had.
type LoopbackTransport struct {
	net    *netsim.Network
	master *Master
	from   string // client's node name on the simulated network
	dial   atomic.Pointer[EndpointDialer]
}

// NewLoopbackTransport returns the direct-call transport for a client named
// clientID on the simulated network.
func NewLoopbackTransport(net *netsim.Network, master *Master, clientID string) *LoopbackTransport {
	return &LoopbackTransport{net: net, master: master, from: clientID}
}

// SetDial installs the fallback dialer for locations hosted outside this
// process. Without one, such locations are omitted from layouts (clients
// treat their ranges as offline). Safe to call while the transport is in
// use: a cluster that starts serving RPC after clients exist retrofits
// their transports with the dialer.
func (t *LoopbackTransport) SetDial(d EndpointDialer) { t.dial.Store(&d) }

func (t *LoopbackTransport) LocateAll(ctx context.Context, table string) ([]Location, error) {
	var located []RegionLocation
	err := t.net.Call(ctx, t.from, MasterNode, func() error {
		var err error
		located, err = t.master.LocateAll(table)
		return err
	})
	if err != nil {
		return nil, err
	}
	dial := t.dial.Load()
	out := make([]Location, 0, len(located))
	for _, rl := range located {
		loc := Location{Info: rl.Info}
		if srv, ok := rl.Host.(*RegionServer); ok {
			loc.Ep = &loopbackEndpoint{net: t.net, from: t.from, srv: srv}
		} else if dial != nil && rl.Addr != "" {
			ep, err := (*dial)(rl.Addr)
			if err != nil {
				continue // dial failure = region offline for now; client retries
			}
			loc.Ep = ep
		} else {
			continue
		}
		for _, fl := range rl.Followers {
			if srv, ok := fl.Host.(*RegionServer); ok {
				loc.Followers = append(loc.Followers, &loopbackEndpoint{net: t.net, from: t.from, srv: srv})
			} else if dial != nil && fl.Addr != "" {
				if ep, err := (*dial)(fl.Addr); err == nil {
					loc.Followers = append(loc.Followers, ep)
				}
			}
		}
		out = append(out, loc)
	}
	return out, nil
}

func (t *LoopbackTransport) CreateTable(ctx context.Context, name string, splits []kv.Key) error {
	return t.net.Call(ctx, t.from, MasterNode, func() error {
		return t.master.CreateTable(name, splits)
	})
}

func (t *LoopbackTransport) SplitRegion(ctx context.Context, regionID string, splitKey kv.Key) error {
	return t.net.Call(ctx, t.from, MasterNode, func() error {
		return t.master.SplitRegion(regionID, splitKey)
	})
}

func (t *LoopbackTransport) TableRegions(ctx context.Context, table string) ([]RegionInfo, error) {
	var regions []RegionInfo
	err := t.net.Call(ctx, t.from, MasterNode, func() error {
		var err error
		regions, err = t.master.TableRegions(table)
		return err
	})
	return regions, err
}

func (t *LoopbackTransport) Close() error { return nil }

// loopbackEndpoint reaches one in-process region server through the
// simulated network, exactly as the pre-seam client did.
type loopbackEndpoint struct {
	net  *netsim.Network
	from string
	srv  *RegionServer
}

func (e *loopbackEndpoint) Addr() string { return e.srv.ID() }

func (e *loopbackEndpoint) Get(ctx context.Context, table string, row kv.Key, column string, maxTS kv.Timestamp) (got kv.KeyValue, found bool, err error) {
	err = e.net.Call(ctx, e.from, e.srv.ID(), func() error {
		var e2 error
		got, found, e2 = e.srv.Get(table, row, column, maxTS)
		return e2
	})
	return got, found, err
}

func (e *loopbackEndpoint) GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) (kvs []kv.KeyValue, found []bool, err error) {
	err = e.net.Call(ctx, e.from, e.srv.ID(), func() error {
		var e2 error
		kvs, found, e2 = e.srv.GetBatch(ctx, table, keys, maxTS)
		return e2
	})
	return kvs, found, err
}

func (e *loopbackEndpoint) ScanBatch(ctx context.Context, req ScanRequest) (resp ScanResponse, err error) {
	err = e.net.Call(ctx, e.from, e.srv.ID(), func() error {
		var e2 error
		resp, e2 = e.srv.ScanBatch(ctx, req)
		return e2
	})
	return resp, err
}

func (e *loopbackEndpoint) Apply(ctx context.Context, ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	return e.net.Call(ctx, e.from, e.srv.ID(), func() error {
		return e.srv.ApplyWriteSet(ws, piggy, hasPiggy)
	})
}

// HeartbeatSink receives region-server liveness heartbeats. The Master
// implements it for in-process servers; internal/rpc's master client
// implements it for region-server processes, whose heartbeats cross the
// wire.
type HeartbeatSink interface {
	Heartbeat(serverID string)
}

// RegionHost is the master's handle to one region server — the surface
// region assignment, splitting, moving, and failure recovery drive.
// *RegionServer implements it directly for in-process servers; internal/
// rpc's host proxy implements it for region-server processes (decomposing
// the preOnline closure into explicit open-recovering / replay / mark-
// online steps over the wire).
type RegionHost interface {
	ID() string
	OpenRegion(info RegionInfo, recoveredEdits []WALEntry, preOnline func() error) error
	OpenRegionFiles(info RegionInfo, files []string, recoveredEdits []WALEntry, preOnline func() error) error
	CloseRegion(regionID string)
	CloseAndFlushRegion(regionID string) ([]string, error)
	// ApplyWriteSet is the recovery-replay entry point (paper Alg. 4): the
	// recovery manager re-delivers committed write-sets into a recovering
	// region, with the failed server's frozen T_P piggybacked.
	ApplyWriteSet(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error
}
