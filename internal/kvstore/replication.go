package kvstore

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/kv"
)

// Region replication (primary/backup). A replicated region has one primary
// copy — the assigned, online region every existing code path already knows —
// plus N-1 follower copies on other servers. The primary journals every
// applied write-set portion to its followers as a per-region, epoch-stamped,
// monotonically sequenced stream and waits for a majority of the replica set
// (itself included) to acknowledge before the write is acknowledged upstream.
// Followers apply the stream into their own memstore replica (journaling it
// in their own WAL, so a promoted follower's subsequent death is covered by
// the ordinary log split) and serve bounded-staleness snapshot reads off the
// replicated frontier. The master grants epoch-numbered leader leases,
// detects primary death via the existing heartbeat machinery, promotes the
// most-caught-up follower with a bumped epoch, and the epoch check below
// fences the deposed primary: it can never again reach quorum, so it can
// never acknowledge a write after the promotion.
//
// The engine that ships the stream (fan-out, quorum accounting, retained-log
// pruning, catch-up) lives in internal/replica; this file defines the seam —
// the interfaces the server calls out through and the follower-side entry
// points the master and the shipper call in through.

// RegionRole is a hosted region copy's replication role.
type RegionRole int32

const (
	// RoleNone is an unreplicated region — the ReplicationFactor<=1
	// fast path; nothing in the write path changes.
	RoleNone RegionRole = iota
	// RolePrimary serves reads and writes and ships its WAL stream.
	RolePrimary
	// RoleFollower applies the replicated stream and serves only
	// bounded-staleness reads; it is never online in the assignment sense.
	RoleFollower
)

func (r RegionRole) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleFollower:
		return "follower"
	default:
		return "none"
	}
}

// ReplEntry is one record of a region's replicated stream: the versioned
// cells of one write-set portion, stamped with the per-region sequence
// number the primary's shipper assigned. The epoch travels per call, not per
// entry — a single append batch is always from one primary incarnation.
type ReplEntry struct {
	Seq uint64
	KVs []kv.KeyValue
}

// ReplicaTarget identifies one follower server: its ID (to resolve
// in-process servers) and its client-dialable address ("" = in-process
// only).
type ReplicaTarget struct {
	ServerID string
	Addr     string
}

// ReplicaPosition is a replica's place in the stream: the epoch it last
// accepted, the last contiguously applied sequence number, the checkpoint it
// is anchored on (entries <= Checkpoint are covered by store files), and the
// bounded-staleness read frontier. The master's re-election compares
// (Epoch, LastSeq) to pick the most-caught-up follower.
type ReplicaPosition struct {
	Epoch      uint64
	LastSeq    uint64
	Checkpoint uint64
	FrontierTS kv.Timestamp
}

// LeaseGrant is one region's leader-lease renewal: valid only for the
// primary currently holding the given epoch, for TTL from receipt. TTLs
// (not absolute deadlines) cross the wire so the grant never depends on
// clock agreement between master and server.
type LeaseGrant struct {
	Epoch uint64
	TTL   time.Duration
}

// Replicator is the primary-side shipping engine (internal/replica.Shipper).
// The region server calls out through this interface so kvstore never
// imports the replica package.
type Replicator interface {
	// SetFollowers installs (or repairs) the follower set of a region this
	// server primaries, at the given epoch. Senders start shipping from
	// each follower's acknowledged position; a brand-new region is created
	// with an empty retained log.
	SetFollowers(regionID string, epoch uint64, followers []ReplicaTarget)
	// Replicate assigns the next sequence number, appends the entry to the
	// retained log, and blocks until a majority of the replica set (the
	// primary counts as one) has acknowledged it. ErrStaleEpoch reports
	// the region was fenced by a newer primary.
	Replicate(regionID string, kvs []kv.KeyValue) error
	// LastSeq returns the last sequence number assigned to the region's
	// stream (0 if the region is unknown). Flush checkpoints capture it
	// under the roll barrier, when no append is in flight.
	LastSeq(regionID string) uint64
	// Checkpoint records that the primary's store files now cover every
	// entry <= seq: the retained log is pruned through seq and followers
	// are told to re-anchor on the files.
	Checkpoint(regionID string, seq uint64)
	// AdoptRegion seeds the shipper with a promoted follower's stream
	// state: its epoch, position, checkpoint anchor, and retained tail.
	AdoptRegion(regionID string, epoch, lastSeq, checkpoint uint64, tail []ReplEntry)
	// SnapshotTail returns the retained entries with Seq > fromSeq plus
	// the region's current position — the catch-up transfer a bootstrapping
	// follower pulls (streamed with credit-based flow control over the
	// wire).
	SnapshotTail(regionID string, fromSeq uint64) ([]ReplEntry, ReplicaPosition, error)
	// DropRegion discards a region's shipping state (close/move).
	DropRegion(regionID string)
}

// FollowerLink is the primary's handle to one follower server — the
// transport seam of the shipping path. In-process links call the follower
// *RegionServer directly through the simulated network; internal/rpc's link
// speaks RAppendEntries/RCheckpoint over TCP.
type FollowerLink interface {
	ServerID() string
	// AppendEntries applies a contiguous batch to the follower's copy of
	// the region and returns the follower's last applied sequence number.
	// tipSeq is the primary's latest assigned sequence at send time; when
	// the batch brings the follower up to tipSeq, safeTS advances its
	// bounded-staleness read frontier (the primary's safe-snapshot horizon
	// is only meaningful on a fully caught-up follower). An empty batch is
	// a frontier heartbeat.
	AppendEntries(regionID string, epoch uint64, entries []ReplEntry, tipSeq uint64, safeTS kv.Timestamp) (uint64, error)
	// Checkpoint re-anchors the follower on the primary's store files:
	// everything <= seq is durable there, so the follower reopens its copy
	// from the DFS listing and drops its retained tail through seq.
	Checkpoint(regionID string, epoch, seq uint64) error
	Close()
}

// LinkDialer resolves a follower target into a live link.
type LinkDialer func(t ReplicaTarget) (FollowerLink, error)

// ReplicaHost is the master's replication-control surface on one region
// server. *RegionServer implements it directly; internal/rpc's host proxy
// implements it over the wire. It is a separate interface from RegionHost so
// existing RegionHost implementations (and fakes) keep compiling; the master
// type-asserts and treats a host without it as replication-incapable.
type ReplicaHost interface {
	// OpenRegionFollower opens a follower copy: store files from the DFS
	// listing, an empty memstore, role follower at the given epoch. The
	// primary's first checkpoint message re-anchors it before any entries
	// flow, so a stale listing here is harmless.
	OpenRegionFollower(info RegionInfo, epoch uint64) error
	// SetReplication marks a hosted region as the primary at the given
	// epoch with the given follower set, and grants/extends its leader
	// lease.
	SetReplication(regionID string, epoch uint64, followers []ReplicaTarget, leaseTTL time.Duration) error
	// RenewLeases extends the leader leases of the regions this server
	// primaries (batched: one call per server per master tick).
	RenewLeases(grants map[string]LeaseGrant) error
	// PromoteRegion flips a follower copy into the region's primary at a
	// strictly higher epoch. The region stays recovering until preOnline
	// (the transactional recovery gate) completes, mirroring the staged
	// open path.
	PromoteRegion(regionID string, epoch uint64, leaseTTL time.Duration, preOnline func() error) error
	// ReplicaPos reports a hosted copy's stream position (re-election
	// input).
	ReplicaPos(regionID string) (ReplicaPosition, error)
}

// replState is a hosted region copy's replication state, embedded in its
// regionEntry. The atomics are read on hot paths (role on every findRegion,
// frontier on every follower read) without taking locks; mu serializes the
// follower-side stream operations (append, checkpoint re-anchor, promote),
// which the shipper already orders per (region, follower) but which promotion
// and repair can race against.
type replState struct {
	role       atomic.Int32
	epoch      atomic.Uint64
	lastSeq    atomic.Uint64 // follower: last contiguously applied seq
	checkpoint atomic.Uint64 // follower: store-file anchor
	frontier   atomic.Uint64 // follower: max readable snapshot TS
	leaseUntil atomic.Int64  // primary: lease expiry, unixnano (0 = no lease)

	mu   sync.Mutex
	tail []ReplEntry // follower: retained entries since checkpoint (mu)
}

func (rs *replState) getRole() RegionRole { return RegionRole(rs.role.Load()) }

func (rs *replState) advanceFrontier(ts kv.Timestamp) {
	for {
		cur := rs.frontier.Load()
		if uint64(ts) <= cur || rs.frontier.CompareAndSwap(cur, uint64(ts)) {
			return
		}
	}
}

// leaseValid reports whether the primary's lease covers now. A region that
// never received a lease (leaseUntil 0) is not lease-gated — the
// unreplicated and in-process paths never grant one.
func (rs *replState) leaseValid(now time.Time) bool {
	until := rs.leaseUntil.Load()
	return until == 0 || now.UnixNano() <= until
}

// ReplServerStats counts a server's replication work (follower side plus
// read gating); the cluster exports them as replica_* metric families.
type ReplServerStats struct {
	Appends           int64 // AppendEntries batches applied
	EntriesApplied    int64 // stream entries applied to follower copies
	Checkpoints       int64 // re-anchors processed
	Promotions        int64 // follower->primary flips
	StaleEpochRejects int64 // fenced appends/checkpoints/promotions
	FollowerReads     int64 // scan batches served from a follower copy
	FollowerRejects   int64 // follower reads bounced for a stale frontier
	LeaseRejects      int64 // primary writes bounced on an expired lease
}

type replServerCounters struct {
	appends           atomic.Int64
	entriesApplied    atomic.Int64
	checkpoints       atomic.Int64
	promotions        atomic.Int64
	staleEpochRejects atomic.Int64
	followerReads     atomic.Int64
	followerRejects   atomic.Int64
	leaseRejects      atomic.Int64
}

// ReplStats snapshots the server's replication counters.
func (s *RegionServer) ReplStats() ReplServerStats {
	c := &s.replCounters
	return ReplServerStats{
		Appends:           c.appends.Load(),
		EntriesApplied:    c.entriesApplied.Load(),
		Checkpoints:       c.checkpoints.Load(),
		Promotions:        c.promotions.Load(),
		StaleEpochRejects: c.staleEpochRejects.Load(),
		FollowerReads:     c.followerReads.Load(),
		FollowerRejects:   c.followerRejects.Load(),
		LeaseRejects:      c.leaseRejects.Load(),
	}
}

// SetReplicator attaches the shipping engine. Must be called before the
// server hosts any replicated primary.
func (s *RegionServer) SetReplicator(r Replicator) { s.repl = r }

// Replicator returns the attached shipping engine (nil when replication is
// off). The RPC layer serves catch-up snapshots through it.
func (s *RegionServer) Replicator() Replicator { return s.repl }

// entryFor returns the hosted entry of a region ID.
func (s *RegionServer) entryFor(regionID string) (*regionEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.regions[regionID]
	return e, ok
}

// OpenRegionFollower opens a follower copy of a region on this server (see
// ReplicaHost). An existing follower copy is replaced (idempotent re-open);
// an existing primary or unreplicated copy is an error — the master never
// places a follower where the primary lives.
func (s *RegionServer) OpenRegionFollower(info RegionInfo, epoch uint64) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	r, err := OpenRegion(s.fs, s.cache, info)
	if err != nil {
		return err
	}
	r.reclaim = s.cfg.Reclaim
	r.stats = s.cfg.FileStats
	r.sfOpts = s.storeFileOpts()
	entry := &regionEntry{r: r, online: false}
	entry.rep.role.Store(int32(RoleFollower))
	entry.rep.epoch.Store(epoch)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrServerStopped
	}
	if old, ok := s.regions[info.ID]; ok {
		if old.rep.getRole() != RoleFollower {
			return fmt.Errorf("kvstore: %s already hosts %s copy of %s", s.cfg.ID, old.rep.getRole(), info.ID)
		}
		old.r.abandoned.Store(true)
	}
	s.regions[info.ID] = entry
	return nil
}

// followerEntry fetches a hosted follower copy by region ID.
func (s *RegionServer) followerEntry(regionID string) (*regionEntry, error) {
	e, ok := s.entryFor(regionID)
	if !ok {
		return nil, fmt.Errorf("%w: %s not hosted on %s", ErrRegionNotServing, regionID, s.cfg.ID)
	}
	if e.rep.getRole() != RoleFollower {
		return nil, fmt.Errorf("%w: %s is %s on %s, not follower", ErrRegionNotServing, regionID, e.rep.getRole(), s.cfg.ID)
	}
	return e, nil
}

// followerEntryAt fetches the follower copy for a stream operation at the
// given epoch. A primary copy at the same or a newer epoch means the caller
// is a deposed primary shipping to the region's new leader: that is
// ErrStaleEpoch — the caller must fence, not retry.
func (s *RegionServer) followerEntryAt(regionID string, epoch uint64) (*regionEntry, error) {
	e, ok := s.entryFor(regionID)
	if !ok {
		return nil, fmt.Errorf("%w: %s not hosted on %s", ErrRegionNotServing, regionID, s.cfg.ID)
	}
	if role := e.rep.getRole(); role != RoleFollower {
		if role == RolePrimary && e.rep.epoch.Load() >= epoch {
			s.replCounters.staleEpochRejects.Add(1)
			return nil, fmt.Errorf("%w: %s is primary at epoch %d on %s",
				ErrStaleEpoch, regionID, e.rep.epoch.Load(), s.cfg.ID)
		}
		return nil, fmt.Errorf("%w: %s is %s on %s, not follower", ErrRegionNotServing, regionID, role, s.cfg.ID)
	}
	return e, nil
}

// AppendReplicated applies a contiguous batch of the region's replicated
// stream to this server's follower copy: journal each entry in the local WAL
// (so a promoted follower's later death is covered by the ordinary log
// split), apply it to the memstore replica, retain it in the tail for the
// next checkpoint re-anchor, and advance the read frontier. Returns the
// follower's last applied sequence number — on ErrReplicaGap the shipper
// rewinds to it and resends.
func (s *RegionServer) AppendReplicated(regionID string, epoch uint64, entries []ReplEntry, tipSeq uint64, safeTS kv.Timestamp) (uint64, error) {
	// Shared roll barrier, exactly like the primary write path: the WAL
	// append and the memstore apply stay on one side of any roll.
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	s.mu.RLock()
	w, crashed := s.wal, s.crashed
	s.mu.RUnlock()
	if crashed || w == nil {
		return 0, ErrServerStopped
	}
	e, err := s.followerEntryAt(regionID, epoch)
	if err != nil {
		return 0, err
	}
	rep := &e.rep
	rep.mu.Lock()
	defer rep.mu.Unlock()
	cur := rep.epoch.Load()
	if epoch < cur {
		s.replCounters.staleEpochRejects.Add(1)
		return rep.lastSeq.Load(), fmt.Errorf("%w: %s epoch %d < %d", ErrStaleEpoch, regionID, epoch, cur)
	}
	if epoch > cur {
		rep.epoch.Store(epoch)
	}
	last := rep.lastSeq.Load()
	applied := 0
	for _, en := range entries {
		if en.Seq <= last {
			continue // duplicate resend; application is idempotent anyway
		}
		if en.Seq != last+1 {
			return last, fmt.Errorf("%w: %s expects %d, got %d", ErrReplicaGap, regionID, last+1, en.Seq)
		}
		if err := w.Append(EncodeWALEntry(WALEntry{RegionID: regionID, KVs: en.KVs})); err != nil {
			return last, err
		}
		e.r.Apply(en.KVs)
		rep.tail = append(rep.tail, en)
		last = en.Seq
		rep.lastSeq.Store(last)
		for _, x := range en.KVs {
			rep.advanceFrontier(x.TS)
		}
		applied++
	}
	// The primary's safe-snapshot horizon only bounds this copy's staleness
	// once it holds everything the primary assigned up to that horizon.
	if safeTS > 0 && last == tipSeq {
		rep.advanceFrontier(safeTS)
	}
	s.replCounters.appends.Add(1)
	s.replCounters.entriesApplied.Add(int64(applied))
	return last, nil
}

// ApplyReplCheckpoint re-anchors this server's follower copy on the
// primary's store files: entries <= seq are durable there, so the copy
// reopens from the DFS listing and re-applies only the retained tail beyond
// seq. A higher epoch resets the stream entirely (a new primary incarnation
// numbers from its own origin — the region-move path).
func (s *RegionServer) ApplyReplCheckpoint(regionID string, epoch, seq uint64) error {
	e, err := s.followerEntryAt(regionID, epoch)
	if err != nil {
		return err
	}
	rep := &e.rep
	rep.mu.Lock()
	defer rep.mu.Unlock()
	cur := rep.epoch.Load()
	if epoch < cur {
		s.replCounters.staleEpochRejects.Add(1)
		return fmt.Errorf("%w: %s epoch %d < %d", ErrStaleEpoch, regionID, epoch, cur)
	}
	reset := epoch > cur
	if !reset && seq <= rep.checkpoint.Load() && rep.lastSeq.Load() >= seq {
		return nil // already anchored at or past this point
	}
	fresh, err := OpenRegion(s.fs, s.cache, e.r.Info)
	if err != nil {
		return err
	}
	fresh.reclaim = s.cfg.Reclaim
	fresh.stats = s.cfg.FileStats
	fresh.sfOpts = s.storeFileOpts()
	var kept []ReplEntry
	if !reset {
		for _, en := range rep.tail {
			if en.Seq > seq {
				fresh.Apply(en.KVs)
				kept = append(kept, en)
			}
		}
	}
	old := e.r
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	e.r = fresh
	s.mu.Unlock()
	// The old copy's views must never unlink store files as they drain —
	// the primary owns them.
	old.abandoned.Store(true)
	if reset {
		rep.epoch.Store(epoch)
		rep.lastSeq.Store(seq)
	} else if rep.lastSeq.Load() < seq {
		rep.lastSeq.Store(seq)
	}
	rep.checkpoint.Store(seq)
	rep.tail = kept
	s.replCounters.checkpoints.Add(1)
	return nil
}

// PromoteRegion flips this server's follower copy into the region's primary
// at a strictly higher epoch (see ReplicaHost). The copy's retained tail and
// position seed the shipper, so surviving followers resume from the new
// primary's stream; the region stays recovering until the transactional
// recovery gate (preOnline) completes, then goes online.
func (s *RegionServer) PromoteRegion(regionID string, epoch uint64, leaseTTL time.Duration, preOnline func() error) error {
	e, err := s.promoteStaged(regionID, epoch, leaseTTL)
	if err != nil {
		return err
	}
	if preOnline != nil {
		if err := preOnline(); err != nil {
			// Gate failure: drop the copy entirely; the master falls back
			// to the log-split reassignment path on another server.
			s.mu.Lock()
			delete(s.regions, regionID)
			s.mu.Unlock()
			if s.repl != nil {
				s.repl.DropRegion(regionID)
			}
			return fmt.Errorf("region %s promotion gate: %w", regionID, err)
		}
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	e.online = true
	s.mu.Unlock()
	return nil
}

// PromoteRegionStaged is the first half of a wire-decomposed promotion: the
// follower copy flips to primary at the new epoch, seeding the shipper with
// its stream state, but stays recovering until MarkRegionOnline. internal/
// rpc's host proxy runs the master-side recovery gate between the two calls
// (it cannot cross the wire as a closure), mirroring the staged open path;
// gate failure resolves the stage with CloseRegion instead.
func (s *RegionServer) PromoteRegionStaged(regionID string, epoch uint64, leaseTTL time.Duration) error {
	_, err := s.promoteStaged(regionID, epoch, leaseTTL)
	return err
}

// promoteStaged performs the role flip of a promotion: epoch check, role and
// lease install, and stream-state adoption into the shipper. The returned
// entry is NOT yet online.
func (s *RegionServer) promoteStaged(regionID string, epoch uint64, leaseTTL time.Duration) (*regionEntry, error) {
	e, err := s.followerEntry(regionID)
	if err != nil {
		return nil, err
	}
	rep := &e.rep
	rep.mu.Lock()
	cur := rep.epoch.Load()
	if epoch <= cur {
		rep.mu.Unlock()
		s.replCounters.staleEpochRejects.Add(1)
		return nil, fmt.Errorf("%w: promote %s at epoch %d <= %d", ErrStaleEpoch, regionID, epoch, cur)
	}
	rep.epoch.Store(epoch)
	rep.role.Store(int32(RolePrimary))
	if leaseTTL > 0 {
		rep.leaseUntil.Store(time.Now().Add(leaseTTL).UnixNano())
	}
	tail := rep.tail
	rep.tail = nil
	lastSeq, checkpoint := rep.lastSeq.Load(), rep.checkpoint.Load()
	rep.mu.Unlock()
	if s.repl != nil {
		s.repl.AdoptRegion(regionID, epoch, lastSeq, checkpoint, tail)
	}
	s.replCounters.promotions.Add(1)
	return e, nil
}

// SetReplication marks a hosted region as the replicated primary at the
// given epoch, installs its follower set in the shipper, and grants/extends
// its leader lease (see ReplicaHost).
func (s *RegionServer) SetReplication(regionID string, epoch uint64, followers []ReplicaTarget, leaseTTL time.Duration) error {
	e, ok := s.entryFor(regionID)
	if !ok {
		return fmt.Errorf("%w: %s not hosted on %s", ErrRegionNotServing, regionID, s.cfg.ID)
	}
	rep := &e.rep
	rep.mu.Lock()
	if rep.getRole() == RoleFollower {
		rep.mu.Unlock()
		return fmt.Errorf("%w: %s is a follower copy on %s", ErrRegionNotServing, regionID, s.cfg.ID)
	}
	cur := rep.epoch.Load()
	if epoch < cur {
		rep.mu.Unlock()
		s.replCounters.staleEpochRejects.Add(1)
		return fmt.Errorf("%w: set-replication %s at epoch %d < %d", ErrStaleEpoch, regionID, epoch, cur)
	}
	rep.epoch.Store(epoch)
	rep.role.Store(int32(RolePrimary))
	if leaseTTL > 0 {
		rep.leaseUntil.Store(time.Now().Add(leaseTTL).UnixNano())
	}
	rep.mu.Unlock()
	if s.repl == nil {
		return fmt.Errorf("kvstore: server %s has no replicator", s.cfg.ID)
	}
	s.repl.SetFollowers(regionID, epoch, followers)
	return nil
}

// RenewLeases extends the leader leases of this server's replicated
// primaries (see ReplicaHost). A grant whose epoch does not match the copy's
// current epoch is ignored — it was issued for a deposed incarnation.
func (s *RegionServer) RenewLeases(grants map[string]LeaseGrant) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	for regionID, g := range grants {
		e, ok := s.entryFor(regionID)
		if !ok || e.rep.getRole() != RolePrimary || e.rep.epoch.Load() != g.Epoch {
			continue
		}
		e.rep.leaseUntil.Store(time.Now().Add(g.TTL).UnixNano())
	}
	return nil
}

// ReplicaPos reports a hosted copy's stream position (see ReplicaHost).
// Works for both roles: followers report their applied position, primaries
// report the shipper's assigned position.
func (s *RegionServer) ReplicaPos(regionID string) (ReplicaPosition, error) {
	e, ok := s.entryFor(regionID)
	if !ok {
		return ReplicaPosition{}, fmt.Errorf("%w: %s not hosted on %s", ErrRegionNotServing, regionID, s.cfg.ID)
	}
	rep := &e.rep
	pos := ReplicaPosition{
		Epoch:      rep.epoch.Load(),
		LastSeq:    rep.lastSeq.Load(),
		Checkpoint: rep.checkpoint.Load(),
		FrontierTS: kv.Timestamp(rep.frontier.Load()),
	}
	if rep.getRole() == RolePrimary && s.repl != nil {
		pos.LastSeq = s.repl.LastSeq(regionID)
	}
	return pos, nil
}

// ReplicaState is one hosted copy's replication status — the /debug/regions
// role/lag surface.
type ReplicaState struct {
	Info       RegionInfo
	Role       RegionRole
	Online     bool
	Epoch      uint64
	LastSeq    uint64
	Checkpoint uint64
	FrontierTS kv.Timestamp
	// LeaseRemaining is the primary's remaining lease (negative =
	// expired, 0 = not lease-gated).
	LeaseRemaining time.Duration
}

// ReplicaStates snapshots every hosted copy's replication status, follower
// copies included (RegionHeats deliberately covers online regions only).
func (s *RegionServer) ReplicaStates() []ReplicaState {
	s.mu.RLock()
	entries := make([]*regionEntry, 0, len(s.regions))
	for _, e := range s.regions {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	now := time.Now()
	out := make([]ReplicaState, 0, len(entries))
	for _, e := range entries {
		rep := &e.rep
		st := ReplicaState{
			Info:       e.r.Info,
			Role:       rep.getRole(),
			Online:     e.online,
			Epoch:      rep.epoch.Load(),
			LastSeq:    rep.lastSeq.Load(),
			Checkpoint: rep.checkpoint.Load(),
			FrontierTS: kv.Timestamp(rep.frontier.Load()),
		}
		if st.Role == RolePrimary {
			if s.repl != nil {
				st.LastSeq = s.repl.LastSeq(e.r.Info.ID)
			}
			if until := rep.leaseUntil.Load(); until != 0 {
				st.LeaseRemaining = time.Unix(0, until).Sub(now)
			}
		}
		out = append(out, st)
	}
	return out
}

// followerFor returns the follower copy containing (table, row), if any.
func (s *RegionServer) followerFor(table string, row kv.Key) (*regionEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.regions {
		if e.rep.getRole() != RoleFollower {
			continue
		}
		if e.r.Info.Table == table && e.r.Info.Range.Contains(row) {
			return e, true
		}
	}
	return nil, false
}
