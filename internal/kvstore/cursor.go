package kvstore

import (
	"context"
	"fmt"
	"time"

	"txkv/internal/kv"
)

// Cursor scans: the server half of the streaming read API. A scan is a
// sequence of independent bounded batch requests; all continuation state
// (the resume coordinate plus the snapshot timestamp) travels with the
// request, so the server holds nothing between batches — a region server
// can crash, split, or shed the region between two batches and the client
// simply re-resolves the continuation key against the current layout.
// Within one batch the region's read view is pinned through the PR-3
// refcounts and released before the response returns, so per-request server
// memory is O(batch), never O(result).

// ScanRequest is one cursor-scan batch request — the RPC message the
// routing client sends a region server.
type ScanRequest struct {
	Table string
	// Range is the overall scan interval; the server clips it to the
	// hosted region containing the effective start key.
	Range kv.KeyRange
	// MaxTS is the snapshot timestamp; together with Resume it is the
	// complete continuation token.
	MaxTS kv.Timestamp
	// Resume, when HasResume, is the last coordinate already delivered:
	// the batch yields only coordinates strictly after it.
	Resume    kv.CellKey
	HasResume bool
	// Columns projects the scan onto the given columns (nil = all).
	// Filtering happens inside the k-way merge, before entries count
	// toward Batch, so unwanted columns are never shipped.
	Columns []string
	// KeysOnly drops value bytes inside the merge: the response carries
	// coordinates only.
	KeysOnly bool
	// Batch bounds the number of entries in the response (0 = unbounded,
	// the legacy whole-region behaviour).
	Batch int
	// AllowFollower permits serving this batch from a follower copy of
	// the region, provided the follower's replicated frontier has reached
	// MaxTS (bounded-staleness snapshot reads). When the primary copy is
	// hosted here it is used regardless.
	AllowFollower bool
}

// ScanResponse is one cursor-scan batch.
type ScanResponse struct {
	KVs []kv.KeyValue
	// More reports that the region may hold further entries in Range
	// beyond this batch; resume with the last KV's coordinate.
	More bool
	// RegionEnd is the serving region's end key (empty = unbounded): when
	// More is false the client continues the scan at RegionEnd, or
	// finishes if RegionEnd is empty or at/past the range end.
	RegionEnd kv.Key
}

// effectiveStart returns the row the scan actually begins at: the resume
// row once a continuation exists, the range start otherwise.
func (q ScanRequest) effectiveStart() kv.Key {
	if q.HasResume && q.Resume.Row > q.Range.Start {
		return q.Resume.Row
	}
	return q.Range.Start
}

// ScanBatch serves one bounded batch of a cursor scan. The effective start
// key must fall in a region hosted (and online) on this server, otherwise
// ErrRegionNotServing is returned and the client re-locates — this is what
// lets a scan survive splits and moves between batches. ctx cancellation
// aborts the batch mid-merge; the pinned read view is released either way.
func (s *RegionServer) ScanBatch(ctx context.Context, req ScanRequest) (ScanResponse, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ScanResponse{}, ErrServerStopped
	}
	start := req.effectiveStart()
	r, ok := s.findRegion(req.Table, start, false)
	if !ok {
		// Follower read: a follower copy may serve the batch if its
		// replicated frontier has caught up to the snapshot — every commit
		// at or below MaxTS affecting the region is already applied here.
		if req.AllowFollower {
			if e, fok := s.followerFor(req.Table, start); fok {
				if kv.Timestamp(e.rep.frontier.Load()) >= req.MaxTS {
					s.replCounters.followerReads.Add(1)
					return s.scanRegionBatch(ctx, e.r, req)
				}
				s.replCounters.followerRejects.Add(1)
				return ScanResponse{}, fmt.Errorf("%w: %s/%s on %s (frontier %d < %d)",
					ErrFollowerBehind, req.Table, start, s.cfg.ID,
					e.rep.frontier.Load(), req.MaxTS)
			}
		}
		return ScanResponse{}, fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, req.Table, start, s.cfg.ID)
	}
	return s.scanRegionBatch(ctx, r, req)
}

// scanRegionBatch serves one cursor-scan batch from a specific region copy
// (the primary on the ordinary path, a caught-up follower on the
// bounded-staleness path).
func (s *RegionServer) scanRegionBatch(ctx context.Context, r *Region, req ScanRequest) (ScanResponse, error) {
	clipped := req.Range
	if r.Info.Range.Start > clipped.Start {
		clipped.Start = r.Info.Range.Start
	}
	if r.Info.Range.End != "" && (clipped.End == "" || r.Info.Range.End < clipped.End) {
		clipped.End = r.Info.Range.End
	}
	var pageStart time.Time
	if s.cfg.Obs != nil {
		pageStart = time.Now()
	}
	kvs, more, err := r.scanPage(ctx, clipped, req.MaxTS, req.Resume, req.HasResume, req.Columns, req.KeysOnly, req.Batch)
	if err != nil {
		return ScanResponse{}, err
	}
	if o := s.cfg.Obs; o != nil {
		o.ScanPages.Add(1)
		o.ScanPageLatency.Record(time.Since(pageStart))
	}
	return ScanResponse{KVs: kvs, More: more, RegionEnd: r.Info.Range.End}, nil
}

// GetBatch serves a batched point read: the newest visible version of every
// requested cell at or below maxTS, in one round trip. Results parallel the
// keys (found[i] reports whether kvs[i] holds a value). Every key must fall
// in an online region hosted here, otherwise nothing is read and
// ErrRegionNotServing is returned so the client re-groups and retries.
func (s *RegionServer) GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) ([]kv.KeyValue, []bool, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return nil, nil, ErrServerStopped
	}
	kvs := make([]kv.KeyValue, len(keys))
	found := make([]bool, len(keys))
	for i, k := range keys {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		r, ok := s.findRegion(table, k.Row, false)
		if !ok {
			return nil, nil, fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, table, k.Row, s.cfg.ID)
		}
		e, ok, err := r.Get(k.Row, k.Column, maxTS)
		if err != nil {
			return nil, nil, err
		}
		kvs[i], found[i] = e, ok
	}
	return kvs, found, nil
}

// singleRowRange reports whether rng covers exactly one row — End is
// Start plus a single zero byte, the canonical "this row only" range — and
// returns that row.
func singleRowRange(rng kv.KeyRange) (kv.Key, bool) {
	if len(rng.End) != len(rng.Start)+1 || rng.End[len(rng.Start)] != 0 {
		return "", false
	}
	if rng.End[:len(rng.Start)] != rng.Start {
		return "", false
	}
	return rng.Start, true
}

// cancelCheckStride is how many merge steps a scan page takes between
// context checks: frequent enough that a cancelled scan stops within
// microseconds, rare enough to stay off the per-entry hot path.
const cancelCheckStride = 256

// scanPage produces one batch of the region's cursor scan: the newest
// visible version per projected (row, column) in rng at or below maxTS, in
// store order, tombstones elided, starting strictly after resume (when
// hasResume), at most max entries (0 = unbounded); keysOnly elides value
// bytes. It pins the region's read view for exactly the duration of the
// call, so concurrent compaction can retire store files between batches;
// snapshot stability across batches comes from MVCC (the version-GC horizon
// never passes a live snapshot). more=true means the merge was cut by max
// and the region may hold further entries.
func (r *Region) scanPage(ctx context.Context, rng kv.KeyRange, maxTS kv.Timestamp, resume kv.CellKey, hasResume bool, cols []string, keysOnly bool, max int) (page []kv.KeyValue, more bool, _ error) {
	if ctx == nil {
		ctx = context.Background()
	}
	defer func() {
		r.heat.scans.Add(1)
		r.heat.cellsRead.Add(int64(len(page)))
		var bytes int64
		for _, e := range page {
			bytes += int64(len(e.Value))
		}
		r.heat.bytesRead.Add(bytes)
	}()
	// Seek the iterators directly to the resume row: everything before it
	// was delivered by earlier batches.
	if hasResume && resume.Row > rng.Start {
		rng.Start = resume.Row
	}
	var project map[string]struct{}
	if len(cols) > 0 {
		project = make(map[string]struct{}, len(cols))
		for _, c := range cols {
			project[c] = struct{}{}
		}
	}

	v := r.acquireView()
	defer r.releaseView(v)

	// Row-key blooms can prune a scan only when the range pins a single
	// row; broader ranges carry no per-row information the filter can use.
	bloomRow, singleRow := singleRowRange(rng)

	iters := make([]kvIter, 0, 1+len(v.frozen)+len(v.files))
	iters = append(iters, v.active.Iter(rng, maxTS))
	for _, m := range v.frozen {
		iters = append(iters, m.Iter(rng, maxTS))
	}
	for _, f := range v.files {
		if singleRow && f.hasBloom() {
			r.heat.bloomProbes.Add(1)
			r.stats.bloomProbe()
			if !f.MayContainRow(bloomRow) {
				r.heat.bloomNegatives.Add(1)
				r.stats.bloomNegative()
				continue
			}
		}
		fi, err := f.Iter(rng, maxTS, r.cache)
		if err != nil {
			return nil, false, err
		}
		iters = append(iters, fi)
	}
	mg := newMerger(iters)

	var out []kv.KeyValue
	if max > 0 {
		// Bounded pre-size; capped so a large batch over a sparse range
		// does not allocate the whole bound up front.
		hint := max
		if hint > 256 {
			hint = 256
		}
		out = make([]kv.KeyValue, 0, hint)
	}
	var (
		last  kv.CellKey
		have  bool
		steps int
	)
	for {
		if steps++; steps%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		e, ok, err := mg.next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return out, false, nil
		}
		coord := kv.CellKey{Row: e.Row, Column: e.Column}
		if have && coord == last {
			continue // older version (or exact duplicate) of an emitted coordinate
		}
		if hasResume && kv.CompareCellKeys(coord, resume) <= 0 {
			continue // delivered by a previous batch
		}
		if project != nil {
			if _, ok := project[e.Column]; !ok {
				continue
			}
		}
		last, have = coord, true
		if e.Tombstone {
			continue // coordinate is deleted at this snapshot
		}
		if keysOnly {
			e.Value = nil
		}
		out = append(out, e)
		if max > 0 && len(out) >= max {
			return out, true, nil
		}
	}
}
