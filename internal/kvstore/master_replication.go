package kvstore

import (
	"sort"
	"time"
)

// Master-side replication orchestration: follower placement, leader leases,
// and promotion-first failover. The master is the sole epoch authority — a
// region's epoch increases exactly when its primary (re)locates, so a
// deposed primary's epoch is always stale and every follower it can still
// reach rejects it (fencing). Follower membership changes under an
// unchanged primary keep the epoch.

// replicaSet is the master's record of one region's replication group.
type replicaSet struct {
	epoch     uint64
	primary   string
	followers []string
}

// FollowerLocation names one live follower copy of a region: the in-process
// host handle plus the address remote clients dial for follower reads.
type FollowerLocation struct {
	ServerID string
	Host     RegionHost
	Addr     string
}

// replicaHostLocked returns the server's host as a ReplicaHost when the
// server is alive and replication-capable. Caller holds m.mu.
func (m *Master) replicaHostLocked(serverID string) (ReplicaHost, *serverRec, bool) {
	rec := m.servers[serverID]
	if rec == nil || !rec.alive {
		return nil, nil, false
	}
	rh, ok := rec.host.(ReplicaHost)
	return rh, rec, ok
}

// ensureReplicated brings a region's replication group up to the configured
// factor around the given primary: a fresh epoch if the primary moved (or
// bumpEpoch forces one — required whenever the primary's copy was reopened
// and its stream state reset, so followers re-anchor instead of silently
// dup-skipping a renumbered stream), follower copies opened on distinct
// live servers, and the primary's follower set installed. Best-effort — a
// short cluster runs degraded and a later call (region repair, next
// failover) completes the group. Must be called without m.mu held, with the
// primary copy already open.
func (m *Master) ensureReplicated(info RegionInfo, primaryID string, bumpEpoch bool) {
	rf := m.cfg.ReplicationFactor
	if rf <= 1 {
		return
	}
	m.mu.Lock()
	rs := m.replicas[info.ID]
	if rs == nil {
		rs = &replicaSet{}
		m.replicas[info.ID] = rs
	}
	if bumpEpoch || rs.primary != primaryID {
		rs.epoch++ // new primary incarnation: fence every older one
		rs.primary = primaryID
	}
	epoch := rs.epoch
	prh, _, ok := m.replicaHostLocked(primaryID)
	if !ok {
		m.mu.Unlock()
		return
	}
	// Keep surviving followers, then fill up to rf-1 with fresh picks.
	taken := map[string]bool{primaryID: true}
	var keep []string
	for _, id := range rs.followers {
		if _, _, ok := m.replicaHostLocked(id); ok && !taken[id] && len(keep) < rf-1 {
			keep = append(keep, id)
			taken[id] = true
		}
	}
	type pick struct {
		id   string
		rh   ReplicaHost
		addr string
	}
	var fresh []pick
	for _, id := range m.order {
		if len(keep)+len(fresh) >= rf-1 {
			break
		}
		if taken[id] {
			continue
		}
		if rh, rec, ok := m.replicaHostLocked(id); ok {
			fresh = append(fresh, pick{id: id, rh: rh, addr: rec.addr})
			taken[id] = true
		}
	}
	targets := make([]ReplicaTarget, 0, rf-1)
	for _, id := range keep {
		targets = append(targets, ReplicaTarget{ServerID: id, Addr: m.servers[id].addr})
	}
	ttl := m.cfg.LeaseTTL
	m.mu.Unlock()

	// Open the new follower copies (outside the lock: these are host calls).
	for _, p := range fresh {
		if err := p.rh.OpenRegionFollower(info, epoch); err != nil {
			continue // placement is best-effort; the group runs degraded
		}
		targets = append(targets, ReplicaTarget{ServerID: p.id, Addr: p.addr})
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ServerID < targets[j].ServerID })

	if err := prh.SetReplication(info.ID, epoch, targets, ttl); err != nil {
		return // primary just died: failure handling rebuilds the group
	}
	m.mu.Lock()
	if rs.primary == primaryID && rs.epoch == epoch {
		rs.followers = rs.followers[:0]
		for _, t := range targets {
			rs.followers = append(rs.followers, t.ServerID)
		}
	}
	m.mu.Unlock()
}

// promoteViaReplica attempts promotion-first failover for one region of a
// failed server: query every live follower's replicated position, promote
// the most-caught-up one at a fresh epoch (recovery-gated, like any region
// open), and repair the follower set around it. Returns false when no
// follower can be promoted — the caller falls back to WAL-split reassignment.
func (m *Master) promoteViaReplica(info RegionInfo, failedServer string, gate RecoveryGate) bool {
	m.mu.Lock()
	rs := m.replicas[info.ID]
	if rs == nil || len(rs.followers) == 0 {
		m.mu.Unlock()
		return false
	}
	type cand struct {
		id string
		rh ReplicaHost
	}
	var cands []cand
	for _, id := range rs.followers {
		if id == failedServer {
			continue
		}
		if rh, _, ok := m.replicaHostLocked(id); ok {
			cands = append(cands, cand{id: id, rh: rh})
		}
	}
	knownEpoch := rs.epoch
	ttl := m.cfg.LeaseTTL
	m.mu.Unlock()

	// Pick the follower with the highest (epoch, lastSeq): entries of one
	// epoch form a single contiguous stream, so the longest follower holds a
	// superset of every quorum-acknowledged write.
	var (
		best    cand
		bestPos ReplicaPosition
		have    bool
	)
	for _, c := range cands {
		pos, err := c.rh.ReplicaPos(info.ID)
		if err != nil {
			continue
		}
		if pos.Epoch > knownEpoch {
			knownEpoch = pos.Epoch
		}
		if !have || pos.Epoch > bestPos.Epoch ||
			(pos.Epoch == bestPos.Epoch && pos.LastSeq > bestPos.LastSeq) {
			best, bestPos, have = c, pos, true
		}
	}
	if !have {
		return false
	}
	newEpoch := knownEpoch + 1
	var preOnline func() error
	if gate != nil {
		host, _ := best.rh.(RegionHost)
		preOnline = func() error { return gate.RecoverRegion(info, failedServer, host) }
	}
	if err := best.rh.PromoteRegion(info.ID, newEpoch, ttl, preOnline); err != nil {
		return false
	}
	m.mu.Lock()
	m.assign[info.ID] = best.id
	delete(m.recovering, info.ID)
	rs.epoch = newEpoch
	rs.primary = best.id
	kept := rs.followers[:0]
	for _, id := range rs.followers {
		if id != best.id && id != failedServer {
			kept = append(kept, id)
		}
	}
	rs.followers = kept
	m.mu.Unlock()

	m.ensureReplicated(info, best.id, false)
	return true
}

// repairFollowerLoss rebuilds every replication group that lost a follower
// (not its primary) to the failed server: the dead member is dropped and
// ensureReplicated refills the group — under the same epoch, since the
// primary did not move.
func (m *Master) repairFollowerLoss(failedServer string) {
	type job struct {
		info    RegionInfo
		primary string
	}
	var jobs []job
	m.mu.Lock()
	for regionID, rs := range m.replicas {
		hit := false
		kept := rs.followers[:0]
		for _, id := range rs.followers {
			if id == failedServer {
				hit = true
				continue
			}
			kept = append(kept, id)
		}
		rs.followers = kept
		if !hit || rs.primary == failedServer {
			continue
		}
		if info, ok := m.regionInfoLocked(regionID); ok {
			jobs = append(jobs, job{info: info, primary: rs.primary})
		}
	}
	m.mu.Unlock()
	for _, j := range jobs {
		m.ensureReplicated(j.info, j.primary, false)
	}
}

// regionInfoLocked resolves a region ID to its metadata. Caller holds m.mu.
func (m *Master) regionInfoLocked(regionID string) (RegionInfo, bool) {
	for _, regions := range m.tables {
		for _, info := range regions {
			if info.ID == regionID {
				return info, true
			}
		}
	}
	return RegionInfo{}, false
}

// dropReplicaGroup forgets a region's replication group and closes its
// follower copies — the region is being retired (split into daughters).
// Must be called without m.mu held.
func (m *Master) dropReplicaGroup(regionID string) {
	m.mu.Lock()
	rs := m.replicas[regionID]
	if rs == nil {
		m.mu.Unlock()
		return
	}
	delete(m.replicas, regionID)
	var hosts []RegionHost
	for _, id := range rs.followers {
		if rec := m.servers[id]; rec != nil && rec.alive {
			hosts = append(hosts, rec.host)
		}
	}
	m.mu.Unlock()
	for _, h := range hosts {
		h.CloseRegion(regionID)
	}
}

// renewLeases pushes fresh leader leases to every live primary, batched per
// server, from the liveness loop. Sends are asynchronous with a per-server
// in-flight guard so one stuck server cannot stall failure detection.
func (m *Master) renewLeases() {
	if m.cfg.ReplicationFactor <= 1 {
		return
	}
	ttl := m.cfg.LeaseTTL
	m.mu.Lock()
	grants := make(map[string]map[string]LeaseGrant)
	for regionID, rs := range m.replicas {
		if rs.primary == "" || m.assign[regionID] != rs.primary {
			continue
		}
		g := grants[rs.primary]
		if g == nil {
			g = make(map[string]LeaseGrant)
			grants[rs.primary] = g
		}
		g[regionID] = LeaseGrant{Epoch: rs.epoch, TTL: ttl}
	}
	type send struct {
		rh  ReplicaHost
		rec *serverRec
		g   map[string]LeaseGrant
	}
	var sends []send
	for sid, g := range grants {
		rh, rec, ok := m.replicaHostLocked(sid)
		if !ok || rec.leaseInFlight {
			continue
		}
		rec.leaseInFlight = true
		sends = append(sends, send{rh: rh, rec: rec, g: g})
	}
	m.mu.Unlock()
	for _, s := range sends {
		s := s
		go func() {
			_ = s.rh.RenewLeases(s.g)
			m.mu.Lock()
			s.rec.leaseInFlight = false
			m.mu.Unlock()
		}()
	}
}

// ReplicaEpoch reports the master's current epoch for a region (0 when the
// region has no replication group). Fault-injection tests use it to assert
// fencing boundaries.
func (m *Master) ReplicaEpoch(regionID string) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rs := m.replicas[regionID]; rs != nil {
		return rs.epoch
	}
	return 0
}

// leaseTTLDefault ties the default lease to failure detection: the TTL
// equals the heartbeat timeout, and renewals arrive every CheckInterval
// (several per TTL). Under a partition both flows stop together, so the
// deposed primary's lease self-expires no later than the moment the master
// has waited out the heartbeat timeout and begun promoting a successor —
// reads off a deposed primary are bounded by one TTL, and writes are fenced
// by epoch the instant the promotion lands.
func leaseTTLDefault(hb time.Duration) time.Duration { return hb }
