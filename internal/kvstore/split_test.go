package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"txkv/internal/kv"
)

func TestSplitRegionPreservesData(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		ws := writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%03d", i))
		if err := c.Flush(ctx, ws, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	parent, _, err := ts.master.Locate("t", "row000")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.master.SplitRegion(parent.ID, "row020"); err != nil {
		t.Fatal(err)
	}
	// Two regions now; ranges partition the key space at the split key.
	regions, err := ts.master.TableRegions("t")
	if err != nil || len(regions) != 2 {
		t.Fatalf("regions after split: %v %v", regions, err)
	}
	if regions[0].Range.End != "row020" || regions[1].Range.Start != "row020" {
		t.Fatalf("split ranges: %v", regions)
	}
	// Every row readable from the daughters (via reference files).
	for i := 0; i < 40; i++ {
		row := fmt.Sprintf("row%03d", i)
		got, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("row %s lost in split: %v %v", row, found, err)
		}
		want := fmt.Sprintf("v%d-%s", i+1, row)
		if string(got.Value) != want {
			t.Fatalf("row %s = %q, want %q", row, got.Value, want)
		}
	}
	// Writes to both daughters work.
	for _, row := range []string{"row005", "row035"} {
		if err := c.Flush(ctx, writeSet("c1", 100, "t", row), 0, false); err != nil {
			t.Fatalf("post-split write to %s: %v", row, err)
		}
	}
	// Scans stitch both daughters.
	all, err := c.Scan(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(all) != 40 {
		t.Fatalf("post-split scan: %d %v", len(all), err)
	}
}

func TestSplitRegionErrors(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	info, _, err := ts.master.Locate("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.master.SplitRegion("missing", "x"); !errors.Is(err, ErrRegionNotServing) {
		t.Fatalf("unknown region: %v", err)
	}
	// Split key outside the region's range.
	if err := ts.master.SplitRegion(info.ID, "zzz"); err == nil {
		t.Fatal("split key outside range accepted")
	}
	// Split at the region's own start key is degenerate.
	if err := ts.master.SplitRegion(info.ID, info.Range.Start); err == nil {
		t.Fatal("split at start key accepted")
	}
}

func TestSplitThenCompactLocalizesDaughters(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		ws := writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%03d", i))
		if err := c.Flush(ctx, ws, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	parent, _, err := ts.master.Locate("t", "row000")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.master.SplitRegion(parent.ID, "row015"); err != nil {
		t.Fatal(err)
	}
	// Compact each daughter: data is rewritten locally and the reference
	// files are dropped.
	for _, row := range []string{"row000", "row020"} {
		host := hostFor(t, ts, "t", string(row))
		for _, r := range host.hostedRegions() {
			if err := r.Compact(0, 0); err != nil {
				t.Fatalf("compact %s: %v", r.Info.ID, err)
			}
			if r.Files() != 1 {
				t.Fatalf("daughter %s has %d files after compaction", r.Info.ID, r.Files())
			}
		}
	}
	for i := 0; i < 30; i++ {
		row := fmt.Sprintf("row%03d", i)
		_, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("row %s lost after daughter compaction: %v %v", row, found, err)
		}
	}
}

// TestSplitDaughterSurvivesCrash: after a split, a server crash must still
// recover the daughters (reference files resolve on the new host).
func TestSplitDaughterSurvivesCrash(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		ws := writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%03d", i))
		if err := c.Flush(ctx, ws, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	parent, _, err := ts.master.Locate("t", "row000")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.master.SplitRegion(parent.ID, "row010"); err != nil {
		t.Fatal(err)
	}
	host := hostFor(t, ts, "t", "row000")
	_ = host.SyncWAL()
	host.Crash()
	ts.net.SetDown(host.ID(), true)
	waitLocated(t, ts, "t", "row000", host.ID())
	for i := 0; i < 20; i++ {
		row := fmt.Sprintf("row%03d", i)
		_, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("row %s lost after post-split crash: %v %v", row, found, err)
		}
	}
}
