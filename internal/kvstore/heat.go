package kvstore

import "sync/atomic"

// regionHeat is the per-region load accounting behind /debug/regions: pure
// atomic adds on the read and write paths (allocation-free, so the
// zero-alloc Get guarantee holds), snapshotted on demand. It deliberately
// tracks the signals a placement loop needs — point-vs-scan mix, bytes
// moved, and where point reads were served from.
type regionHeat struct {
	gets     atomic.Int64 // point reads served
	memHits  atomic.Int64 // ... whose winning version came from a memstore
	fileHits atomic.Int64 // ... whose winning version came from a store file
	misses   atomic.Int64 // ... that found nothing visible (or a tombstone)

	scans     atomic.Int64 // scan pages served
	cellsRead atomic.Int64 // cells returned by gets and scan pages
	bytesRead atomic.Int64 // value bytes returned

	writes       atomic.Int64 // write batches applied
	cellsWritten atomic.Int64 // cells applied
	bytesWritten atomic.Int64 // value bytes applied

	bloomProbes         atomic.Int64 // store-file bloom probes on reads
	bloomNegatives      atomic.Int64 // ... that skipped the file outright
	bloomFalsePositives atomic.Int64 // ... that passed but found no row
}

// RegionHeat is a point-in-time copy of one region's heat counters.
type RegionHeat struct {
	Gets     int64 `json:"gets"`
	MemHits  int64 `json:"mem_hits"`
	FileHits int64 `json:"file_hits"`
	Misses   int64 `json:"misses"`

	Scans     int64 `json:"scans"`
	CellsRead int64 `json:"cells_read"`
	BytesRead int64 `json:"bytes_read"`

	Writes       int64 `json:"writes"`
	CellsWritten int64 `json:"cells_written"`
	BytesWritten int64 `json:"bytes_written"`

	BloomProbes         int64 `json:"bloom_probes"`
	BloomNegatives      int64 `json:"bloom_negatives"`
	BloomFalsePositives int64 `json:"bloom_false_positives"`
}

// Heat snapshots the region's load counters.
func (r *Region) Heat() RegionHeat {
	h := &r.heat
	return RegionHeat{
		Gets:                h.gets.Load(),
		MemHits:             h.memHits.Load(),
		FileHits:            h.fileHits.Load(),
		Misses:              h.misses.Load(),
		Scans:               h.scans.Load(),
		CellsRead:           h.cellsRead.Load(),
		BytesRead:           h.bytesRead.Load(),
		Writes:              h.writes.Load(),
		CellsWritten:        h.cellsWritten.Load(),
		BytesWritten:        h.bytesWritten.Load(),
		BloomProbes:         h.bloomProbes.Load(),
		BloomNegatives:      h.bloomNegatives.Load(),
		BloomFalsePositives: h.bloomFalsePositives.Load(),
	}
}

// RegionHeatInfo pairs a region identity with its heat snapshot — the unit
// the server-level and cluster-level aggregations ship upward.
type RegionHeatInfo struct {
	Info RegionInfo
	Heat RegionHeat
}

// RegionHeats snapshots the heat of every hosted (online) region.
func (s *RegionServer) RegionHeats() []RegionHeatInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionHeatInfo, 0, len(s.regions))
	for _, e := range s.regions {
		if !e.online || e.r == nil {
			continue
		}
		out = append(out, RegionHeatInfo{Info: e.r.Info, Heat: e.r.Heat()})
	}
	return out
}
