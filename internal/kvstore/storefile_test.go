package kvstore

import (
	"errors"
	"fmt"
	"testing"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

func buildStoreFile(t *testing.T, fs *dfs.FS, path string, n int, blockSize int) *StoreFile {
	t.Helper()
	entries := make([]kv.KeyValue, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, mkKV(fmt.Sprintf("row%05d", i), "c", kv.Timestamp(i+1), fmt.Sprintf("val%d", i)))
	}
	sf, err := WriteStoreFile(fs, path, entries, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return sf
}

func TestStoreFileWriteReadBack(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	sf := buildStoreFile(t, fs, "/data/f1", 1000, 256)
	if sf.Blocks() < 2 {
		t.Fatalf("expected multiple blocks, got %d", sf.Blocks())
	}
	cache := NewBlockCache(1 << 20)
	for _, i := range []int{0, 1, 499, 998, 999} {
		row := kv.Key(fmt.Sprintf("row%05d", i))
		got, found, err := sf.Get(row, "c", kv.MaxTimestamp, cache)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("row %s not found", row)
		}
		if string(got.Value) != fmt.Sprintf("val%d", i) {
			t.Fatalf("row %s = %q", row, got.Value)
		}
	}
	if _, found, _ := sf.Get("row99999", "c", kv.MaxTimestamp, cache); found {
		t.Fatal("absent row reported found")
	}
	if _, found, _ := sf.Get("aaa", "c", kv.MaxTimestamp, cache); found {
		t.Fatal("row before file start reported found")
	}
}

func TestStoreFileOpenRoundTrip(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	buildStoreFile(t, fs, "/data/f1", 200, 128)
	sf, err := OpenStoreFile(fs, "/data/f1")
	if err != nil {
		t.Fatal(err)
	}
	got, found, err := sf.Get("row00042", "c", kv.MaxTimestamp, nil)
	if err != nil || !found || string(got.Value) != "val42" {
		t.Fatalf("reopened get: %v %v %v", got, found, err)
	}
}

func TestStoreFileTimestampFiltering(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	entries := []kv.KeyValue{
		mkKV("r1", "c", 30, "v30"), // ts-desc within coordinate
		mkKV("r1", "c", 20, "v20"),
		mkKV("r1", "c", 10, "v10"),
	}
	sf, err := WriteStoreFile(fs, "/f", entries, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		maxTS kv.Timestamp
		want  string
		found bool
	}{
		{kv.MaxTimestamp, "v30", true},
		{25, "v20", true},
		{10, "v10", true},
		{9, "", false},
	}
	for _, tt := range tests {
		got, found, err := sf.Get("r1", "c", tt.maxTS, nil)
		if err != nil {
			t.Fatal(err)
		}
		if found != tt.found || (found && string(got.Value) != tt.want) {
			t.Errorf("maxTS=%d: got %v found=%v, want %q", tt.maxTS, got, found, tt.want)
		}
	}
}

func TestStoreFileScanRange(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	sf := buildStoreFile(t, fs, "/f", 100, 128)
	got, err := sf.ScanRange(nil, kv.KeyRange{Start: "row00010", End: "row00020"}, kv.MaxTimestamp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("scan returned %d entries, want 10", len(got))
	}
	if got[0].Row != "row00010" || got[9].Row != "row00019" {
		t.Fatalf("scan bounds: %v .. %v", got[0].Row, got[9].Row)
	}
	// maxTS filter: rows have ts=i+1.
	got, err = sf.ScanRange(nil, kv.KeyRange{}, 50, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("ts-filtered scan returned %d, want 50", len(got))
	}
}

func TestStoreFileEmpty(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	sf, err := WriteStoreFile(fs, "/empty", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := sf.Get("r", "c", kv.MaxTimestamp, nil); err != nil || found {
		t.Fatalf("empty file get: found=%v err=%v", found, err)
	}
	reopened, err := OpenStoreFile(fs, "/empty")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := reopened.ScanRange(nil, kv.KeyRange{}, kv.MaxTimestamp, nil); err != nil || len(got) != 0 {
		t.Fatalf("empty scan: %v %v", got, err)
	}
}

func TestStoreFileCacheUsed(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	sf := buildStoreFile(t, fs, "/f", 500, 256)
	cache := NewBlockCache(1 << 20)
	if _, _, err := sf.Get("row00007", "c", kv.MaxTimestamp, cache); err != nil {
		t.Fatal(err)
	}
	_, misses1 := cache.Stats()
	if misses1 == 0 {
		t.Fatal("first read should miss")
	}
	if _, _, err := sf.Get("row00007", "c", kv.MaxTimestamp, cache); err != nil {
		t.Fatal(err)
	}
	hits, misses2 := cache.Stats()
	if hits == 0 || misses2 != misses1 {
		t.Fatalf("second read should hit: hits=%d misses=%d->%d", hits, misses1, misses2)
	}
}

func TestOpenStoreFileErrors(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	if _, err := OpenStoreFile(fs, "/missing"); !errors.Is(err, dfs.ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	w, _ := fs.Create("/short")
	_ = w.Append([]byte("tiny"))
	_ = w.Sync()
	if _, err := OpenStoreFile(fs, "/short"); !errors.Is(err, ErrBadStoreFile) {
		t.Fatalf("short: %v", err)
	}
	w2, _ := fs.Create("/badmagic")
	_ = w2.Append(make([]byte, 64))
	_ = w2.Sync()
	if _, err := OpenStoreFile(fs, "/badmagic"); !errors.Is(err, ErrBadStoreFile) {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestBlockCacheLRU(t *testing.T) {
	c := NewBlockCache(100)
	c.Put("a", make([]byte, 40))
	c.Put("b", make([]byte, 40))
	if c.Len() != 2 || c.Used() != 80 {
		t.Fatalf("len=%d used=%d", c.Len(), c.Used())
	}
	// Touch a so b becomes LRU.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", make([]byte, 40)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	// Oversized item is not cached.
	c.Put("huge", make([]byte, 200))
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized item cached")
	}
	// Overwrite updates bytes.
	c.Put("a", make([]byte, 10))
	if got, _ := c.Get("a"); len(got) != 10 {
		t.Fatalf("overwrite failed: %d", len(got))
	}
	c.Clear()
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("clear failed")
	}
}
