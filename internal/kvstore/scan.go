package kvstore

import (
	"container/heap"

	"txkv/internal/kv"
)

// Streaming k-way merge over sorted KeyValue sources, shared by the region
// scan path (memstore + store-file iterators) and compaction (in-memory
// runs). Sources must each be sorted in store order; the merge yields the
// union in store order, breaking exact-cell ties by source rank (lower rank
// wins), so a consumer that deduplicates by taking the first occurrence
// reproduces the old collect-sort-dedup semantics without materializing the
// inputs.

// kvIter is a sorted stream of entries in store order. Valid reports
// whether the iterator is positioned on an entry; Head returns it; Next
// advances (and may perform I/O for file-backed iterators).
type kvIter interface {
	Valid() bool
	Head() kv.KeyValue
	Next() error
}

// sliceIter streams an in-memory sorted run.
type sliceIter struct {
	s []kv.KeyValue
	i int
}

func (it *sliceIter) Valid() bool       { return it.i < len(it.s) }
func (it *sliceIter) Head() kv.KeyValue { return it.s[it.i] }
func (it *sliceIter) Next() error       { it.i++; return nil }

// merger pops entries from k sorted iterators in global store order.
type merger struct {
	iters []kvIter // heap-ordered by (head cell, rank)
	ranks []int    // parallel to iters: original source index
}

// newMerger builds a merger over the given sources; invalid (empty)
// sources are dropped. Rank is the position in the iters argument.
func newMerger(iters []kvIter) *merger {
	m := &merger{}
	for i, it := range iters {
		if it.Valid() {
			m.iters = append(m.iters, it)
			m.ranks = append(m.ranks, i)
		}
	}
	heap.Init(m)
	return m
}

func (m *merger) Len() int { return len(m.iters) }

func (m *merger) Less(a, b int) bool {
	c := kv.CompareCells(m.iters[a].Head().Cell, m.iters[b].Head().Cell)
	if c != 0 {
		return c < 0
	}
	return m.ranks[a] < m.ranks[b]
}

func (m *merger) Swap(a, b int) {
	m.iters[a], m.iters[b] = m.iters[b], m.iters[a]
	m.ranks[a], m.ranks[b] = m.ranks[b], m.ranks[a]
}

func (m *merger) Push(x any) { panic("kvstore: merger.Push unused") }

func (m *merger) Pop() any {
	n := len(m.iters) - 1
	m.iters = m.iters[:n]
	m.ranks = m.ranks[:n]
	return nil
}

// next returns the globally smallest entry and advances its source.
// ok=false means the merge is exhausted.
func (m *merger) next() (kv.KeyValue, bool, error) {
	if len(m.iters) == 0 {
		return kv.KeyValue{}, false, nil
	}
	it := m.iters[0]
	e := it.Head()
	if err := it.Next(); err != nil {
		return kv.KeyValue{}, false, err
	}
	if it.Valid() {
		heap.Fix(m, 0)
	} else {
		heap.Pop(m)
	}
	return e, true, nil
}
