package kvstore

import (
	"fmt"

	"txkv/internal/kv"
)

// Region splitting. HBase tables grow by splitting overloaded regions into
// two daughters (paper §2.1: a table "is partitioned into one or more
// chunks called regions"); this file implements the master-driven split.
// Like HBase, daughters do not rewrite data at split time: each daughter's
// directory receives *reference files* pointing at the parent's store
// files, and daughters serve reads through them (clipped to their range)
// until a compaction rewrites their data locally.
//
// A crash in the middle of a split is out of scope, as the paper assumes a
// reliable master; the split itself is brief (close + flush + metadata).

// refSuffix marks a reference file: its contents are the referenced
// store-file path.
const refSuffix = ".ref"

// writeRef creates one reference file in the daughter's data directory.
func writeRef(r *Region, table, daughterID string, seq int, targetPath string) error {
	path := fmt.Sprintf("%s%08d%s", dataDir(table, daughterID), seq, refSuffix)
	w, err := r.fs.CreateFile(path)
	if err != nil {
		return err
	}
	if err := w.Append([]byte(targetPath)); err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Close()
}

// SplitRegion splits an online region at splitKey into two daughter
// regions, served by the same host. The region is briefly offline (clients
// retry, as during moves); no data is rewritten — daughters reference the
// parent's store files until their next compaction.
func (m *Master) SplitRegion(regionID string, splitKey kv.Key) error {
	m.mu.Lock()
	srcID, ok := m.assign[regionID]
	if !ok || m.recovering[regionID] {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrRegionNotServing, regionID)
	}
	src := m.servers[srcID]
	var (
		parent   RegionInfo
		table    string
		tableIdx int
		found    bool
	)
	for name, regions := range m.tables {
		for i, ri := range regions {
			if ri.ID == regionID {
				parent, table, tableIdx, found = ri, name, i, true
			}
		}
	}
	if !found || src == nil {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrRegionNotServing, regionID)
	}
	if !parent.Range.Contains(splitKey) || splitKey == parent.Range.Start {
		m.mu.Unlock()
		return fmt.Errorf("kvstore: split key %q outside region %s", splitKey, parent)
	}
	m.splitSeq++
	seq := m.splitSeq
	left := RegionInfo{
		ID:    fmt.Sprintf("%s-l%03d", parent.ID, seq),
		Table: table,
		Range: kv.KeyRange{Start: parent.Range.Start, End: splitKey},
	}
	right := RegionInfo{
		ID:    fmt.Sprintf("%s-r%03d", parent.ID, seq),
		Table: table,
		Range: kv.KeyRange{Start: splitKey, End: parent.Range.End},
	}
	m.recovering[parent.ID] = true
	delete(m.assign, parent.ID)
	m.mu.Unlock()

	restoreParent := func() {
		m.mu.Lock()
		m.assign[parent.ID] = srcID
		delete(m.recovering, parent.ID)
		m.mu.Unlock()
	}

	// Take the parent offline and persist its memstore: afterwards, every
	// byte of the parent lives in its store files. The returned paths are
	// the parent's final *live* files — listing the data directory here
	// would also pick up retired compaction inputs still awaiting their
	// last reader's drain, and a daughter reference to one of those would
	// dangle the moment the drain unlinks it.
	parentFiles, err := src.host.CloseAndFlushRegion(parent.ID)
	if err != nil {
		restoreParent()
		return fmt.Errorf("split %s: %w", parent.ID, err)
	}

	// Reference the parent's files from both daughters.
	dummy := &Region{fs: m.fs} // writeRef only needs the fs handle
	for i, p := range parentFiles {
		for _, d := range []RegionInfo{left, right} {
			if err := writeRef(dummy, table, d.ID, i, p); err != nil {
				restoreParent()
				return fmt.Errorf("split %s: ref: %w", parent.ID, err)
			}
		}
	}

	// Open the daughters on the same host, then publish the new metadata.
	for _, d := range []RegionInfo{left, right} {
		if err := src.host.OpenRegion(d, nil, nil); err != nil {
			restoreParent()
			return fmt.Errorf("split %s: open %s: %w", parent.ID, d.ID, err)
		}
	}
	m.mu.Lock()
	regions := m.tables[table]
	updated := make([]RegionInfo, 0, len(regions)+1)
	updated = append(updated, regions[:tableIdx]...)
	updated = append(updated, left, right)
	updated = append(updated, regions[tableIdx+1:]...)
	m.tables[table] = updated
	m.assign[left.ID] = srcID
	m.assign[right.ID] = srcID
	delete(m.recovering, parent.ID)
	m.mu.Unlock()
	// The parent region is retired: discard its replication group (closing
	// follower copies) and replicate the daughters as new regions.
	m.dropReplicaGroup(parent.ID)
	m.ensureReplicated(left, srcID, true)
	m.ensureReplicated(right, srcID, true)
	return m.recordLayout(table)
}
