package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// Store files are the immutable, sorted on-DFS files produced by memstore
// flushes (HBase's HFiles). Layout:
//
//	[data block]* [index] [footer]
//
// Each data block holds consecutive encoded KeyValues up to ~blockSize
// bytes. The index records, per block: the first cell, the byte offset, and
// the length. The fixed-size footer at the end of the file records the index
// offset/length and a magic number. Point reads binary-search the index and
// fetch exactly one block, through the server's block cache.

const (
	defaultBlockSize = 4096
	storeFileMagic   = 0x7874734653544f52 // "xtsFSTOR"
	footerSize       = 8 + 4 + 8          // indexOff + indexLen + magic
)

// ErrBadStoreFile reports a malformed store file.
var ErrBadStoreFile = errors.New("kvstore: malformed store file")

type indexEntry struct {
	first  kv.Cell
	offset int64
	length int
}

func appendIndexEntry(b []byte, e indexEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(e.first.Row)))
	b = append(b, e.first.Row...)
	b = binary.AppendUvarint(b, uint64(len(e.first.Column)))
	b = append(b, e.first.Column...)
	b = binary.AppendUvarint(b, uint64(e.first.TS))
	b = binary.AppendUvarint(b, uint64(e.offset))
	b = binary.AppendUvarint(b, uint64(e.length))
	return b
}

func decodeIndex(b []byte) ([]indexEntry, error) {
	n, rest := binary.Uvarint(b)
	if rest <= 0 {
		return nil, ErrBadStoreFile
	}
	b = b[rest:]
	out := make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e indexEntry
		l, c := binary.Uvarint(b)
		if c <= 0 || uint64(len(b)) < uint64(c)+l {
			return nil, ErrBadStoreFile
		}
		e.first.Row = kv.Key(b[c : uint64(c)+l])
		b = b[uint64(c)+l:]
		l, c = binary.Uvarint(b)
		if c <= 0 || uint64(len(b)) < uint64(c)+l {
			return nil, ErrBadStoreFile
		}
		e.first.Column = string(b[c : uint64(c)+l])
		b = b[uint64(c)+l:]
		ts, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.first.TS = kv.Timestamp(ts)
		b = b[c:]
		off, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.offset = int64(off)
		b = b[c:]
		ln, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.length = int(ln)
		b = b[c:]
		out = append(out, e)
	}
	return out, nil
}

// tmpSuffix marks an in-flight store-file write. A store file becomes
// visible at its final name only via an atomic rename after its full
// contents are synced, so a crash mid-write can never surface a
// half-written file — at worst it leaves a *.tmp orphan, which OpenRegion
// sweeps.
const tmpSuffix = ".tmp"

// WriteStoreFile writes the sorted entries as a store file at path and
// returns an opened reader for it. Entries must already be in store order.
// The bytes are written to a temporary sibling, synced, and only then
// renamed to path (a journaled name-node metadata operation), so the file
// is either fully present under its final name or not present at all.
func WriteStoreFile(fs *dfs.FS, path string, entries []kv.KeyValue, blockSize int) (*StoreFile, error) {
	if blockSize <= 0 {
		blockSize = defaultBlockSize
	}
	tmp := path + tmpSuffix
	w, err := fs.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("kvstore: create store file: %w", err)
	}
	committed := false
	defer func() {
		if !committed {
			_ = w.Close()
			_ = fs.Delete(tmp)
		}
	}()
	var (
		index    []indexEntry
		blockBuf []byte
		fileOff  int64
	)
	flushBlock := func(first kv.Cell) error {
		if len(blockBuf) == 0 {
			return nil
		}
		index = append(index, indexEntry{first: first, offset: fileOff, length: len(blockBuf)})
		if err := w.Append(blockBuf); err != nil {
			return err
		}
		fileOff += int64(len(blockBuf))
		blockBuf = blockBuf[:0]
		return nil
	}
	var blockFirst kv.Cell
	for _, e := range entries {
		if len(blockBuf) == 0 {
			blockFirst = e.Cell
		}
		blockBuf = kv.AppendKeyValue(blockBuf, e)
		if len(blockBuf) >= blockSize {
			if err := flushBlock(blockFirst); err != nil {
				return nil, err
			}
		}
	}
	if err := flushBlock(blockFirst); err != nil {
		return nil, err
	}

	idx := binary.AppendUvarint(nil, uint64(len(index)))
	for _, e := range index {
		idx = appendIndexEntry(idx, e)
	}
	if err := w.Append(idx); err != nil {
		return nil, err
	}
	var footer [footerSize]byte
	binary.BigEndian.PutUint64(footer[0:8], uint64(fileOff))
	binary.BigEndian.PutUint32(footer[8:12], uint32(len(idx)))
	binary.BigEndian.PutUint64(footer[12:20], storeFileMagic)
	if err := w.Append(footer[:]); err != nil {
		return nil, err
	}
	if err := w.Sync(); err != nil {
		return nil, fmt.Errorf("kvstore: sync store file: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("kvstore: publish store file: %w", err)
	}
	committed = true
	return &StoreFile{fs: fs, path: path, index: index, entries: len(entries)}, nil
}

// StoreFile reads an immutable sorted file. The index is held in memory
// (HBase keeps HFile indexes resident); data blocks are fetched through a
// BlockCache.
type StoreFile struct {
	fs      *dfs.FS
	path    string
	index   []indexEntry
	entries int
	// refMarker is the path of the reference file this store file was
	// opened through (region splits share parent files via references);
	// empty for files owned by the region itself. Compactions delete the
	// marker, never the shared target.
	refMarker string

	// Lifecycle state, guarded by lifeMu. refs counts the read views
	// holding this file; retired marks it as a compaction input whose
	// replacement is live; unlinked latches physical deletion so the
	// retire/last-unref race can't delete twice. This is deliberately a
	// mutex, not atomics: it is touched only at view construction, view
	// drain, and retirement — never on the per-read hot path, which counts
	// references on the view instead.
	lifeMu   sync.Mutex
	refs     int
	retired  bool
	unlinked bool
}

// ref records that one more read view holds this file.
func (s *StoreFile) ref() {
	s.lifeMu.Lock()
	s.refs++
	s.lifeMu.Unlock()
}

// unref drops one view's hold and reports whether the caller must now
// physically unlink the file (it was retired and this was the last hold).
func (s *StoreFile) unref() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.refs--
	if s.refs == 0 && s.retired && !s.unlinked {
		s.unlinked = true
		return true
	}
	return false
}

// retire marks the file for deferred deletion and reports whether the
// caller must unlink it immediately (no view holds it anymore).
func (s *StoreFile) retire() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.retired = true
	if s.refs == 0 && !s.unlinked {
		s.unlinked = true
		return true
	}
	return false
}

// OpenStoreFile opens the store file at path, reading its footer and index.
func OpenStoreFile(fs *dfs.FS, path string) (*StoreFile, error) {
	size, err := fs.Size(path)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open store file: %w", err)
	}
	if size < footerSize {
		return nil, fmt.Errorf("%w: %s too small", ErrBadStoreFile, path)
	}
	footer, err := fs.ReadRange(path, size-footerSize, footerSize)
	if err != nil {
		return nil, err
	}
	if len(footer) != footerSize || binary.BigEndian.Uint64(footer[12:20]) != storeFileMagic {
		return nil, fmt.Errorf("%w: %s bad footer", ErrBadStoreFile, path)
	}
	idxOff := int64(binary.BigEndian.Uint64(footer[0:8]))
	idxLen := int(binary.BigEndian.Uint32(footer[8:12]))
	idxBytes, err := fs.ReadRange(path, idxOff, idxLen)
	if err != nil {
		return nil, err
	}
	index, err := decodeIndex(idxBytes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &StoreFile{fs: fs, path: path, index: index}, nil
}

// Path returns the DFS path of the file.
func (s *StoreFile) Path() string { return s.path }

// OpenStoreFileRef opens a store file through a reference marker: the
// marker file's contents are the referenced store-file path.
func OpenStoreFileRef(fs *dfs.FS, refPath string) (*StoreFile, error) {
	target, err := fs.ReadAll(refPath)
	if err != nil {
		return nil, fmt.Errorf("kvstore: read reference %s: %w", refPath, err)
	}
	sf, err := OpenStoreFile(fs, string(target))
	if err != nil {
		return nil, fmt.Errorf("kvstore: reference %s: %w", refPath, err)
	}
	sf.refMarker = refPath
	return sf, nil
}

// blockCacheKey names one store-file block in the server's block cache.
func blockCacheKey(path string, i int) string {
	return fmt.Sprintf("%s#%d", path, i)
}

// block returns the decoded entries of block i, consulting the cache.
func (s *StoreFile) block(i int, cache *BlockCache) ([]kv.KeyValue, error) {
	key := blockCacheKey(s.path, i)
	var raw []byte
	if cache != nil {
		if b, ok := cache.Get(key); ok {
			raw = b
		}
	}
	if raw == nil {
		b, err := s.fs.ReadRange(s.path, s.index[i].offset, s.index[i].length)
		if err != nil {
			return nil, err
		}
		raw = b
		if cache != nil {
			cache.Put(key, raw)
		}
	}
	var out []kv.KeyValue
	rest := raw
	for len(rest) > 0 {
		var e kv.KeyValue
		var err error
		e, rest, err = kv.DecodeKeyValue(rest)
		if err != nil {
			return nil, fmt.Errorf("%s block %d: %w", s.path, i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// findBlock returns the index of the last block whose first cell is <= c,
// or -1 if c precedes the whole file.
func (s *StoreFile) findBlock(c kv.Cell) int {
	// sort.Search finds the first block with first-cell > c; the target is
	// the one before it.
	i := sort.Search(len(s.index), func(i int) bool {
		return kv.CompareCells(s.index[i].first, c) > 0
	})
	return i - 1
}

// Get returns the newest version of (row, column) with ts <= maxTS in this
// file.
func (s *StoreFile) Get(row kv.Key, column string, maxTS kv.Timestamp, cache *BlockCache) (kv.KeyValue, bool, error) {
	if len(s.index) == 0 {
		return kv.KeyValue{}, false, nil
	}
	target := kv.Cell{Row: row, Column: column, TS: maxTS}
	bi := s.findBlock(target)
	if bi < 0 {
		bi = 0
	}
	for ; bi < len(s.index); bi++ {
		entries, err := s.block(bi, cache)
		if err != nil {
			return kv.KeyValue{}, false, err
		}
		for _, e := range entries {
			if kv.CompareCells(e.Cell, target) < 0 {
				continue
			}
			if e.Row == row && e.Column == column {
				return e, true, nil
			}
			return kv.KeyValue{}, false, nil
		}
		// Entire block was before the target; continue to the next block.
	}
	return kv.KeyValue{}, false, nil
}

// ScanRange appends every entry within r with ts <= maxTS to dst.
func (s *StoreFile) ScanRange(dst []kv.KeyValue, r kv.KeyRange, maxTS kv.Timestamp, cache *BlockCache) ([]kv.KeyValue, error) {
	if len(s.index) == 0 {
		return dst, nil
	}
	start := kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp}
	bi := s.findBlock(start)
	if bi < 0 {
		bi = 0
	}
	for ; bi < len(s.index); bi++ {
		if r.End != "" && s.index[bi].first.Row >= r.End {
			break
		}
		entries, err := s.block(bi, cache)
		if err != nil {
			return dst, err
		}
		for _, e := range entries {
			if r.End != "" && e.Row >= r.End {
				return dst, nil
			}
			if !r.Contains(e.Row) {
				continue
			}
			if e.TS <= maxTS {
				dst = append(dst, e)
			}
		}
	}
	return dst, nil
}

// Blocks returns the number of data blocks, for tests and stats.
func (s *StoreFile) Blocks() int { return len(s.index) }

// Iter returns a streaming iterator over the entries of r with ts <= maxTS,
// in store order. Blocks are fetched (through the cache) one at a time as
// the iterator advances, so a limited scan touches only the blocks it
// actually consumes.
func (s *StoreFile) Iter(r kv.KeyRange, maxTS kv.Timestamp, cache *BlockCache) (*FileIter, error) {
	it := &FileIter{sf: s, cache: cache, rng: r, maxTS: maxTS}
	if len(s.index) == 0 {
		return it, nil
	}
	it.bi = s.findBlock(kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp})
	if it.bi < 0 {
		it.bi = 0
	}
	if err := it.loadAndSkip(); err != nil {
		return nil, err
	}
	return it, nil
}

// FileIter streams one store file's visible entries. See StoreFile.Iter.
type FileIter struct {
	sf    *StoreFile
	cache *BlockCache
	rng   kv.KeyRange
	maxTS kv.Timestamp

	bi      int // next block index to load
	entries []kv.KeyValue
	pos     int
	done    bool
}

// loadAndSkip loads blocks starting at bi until it finds a visible entry or
// runs off the range/file. On return the iterator is positioned or done.
func (it *FileIter) loadAndSkip() error {
	for {
		for it.pos < len(it.entries) {
			e := it.entries[it.pos]
			if it.rng.End != "" && e.Row >= it.rng.End {
				it.done = true
				return nil
			}
			if e.TS <= it.maxTS && it.rng.Contains(e.Row) {
				return nil
			}
			it.pos++
		}
		if it.bi >= len(it.sf.index) {
			it.done = true
			return nil
		}
		// A block's first cell is its minimum, so a block starting at or
		// past the range end cannot contribute — stop without fetching it.
		if it.rng.End != "" && it.sf.index[it.bi].first.Row >= it.rng.End {
			it.done = true
			return nil
		}
		entries, err := it.sf.block(it.bi, it.cache)
		if err != nil {
			return err
		}
		it.bi++
		it.entries = entries
		it.pos = 0
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *FileIter) Valid() bool { return !it.done && it.pos < len(it.entries) }

// Head returns the current entry. Only call when Valid.
func (it *FileIter) Head() kv.KeyValue { return it.entries[it.pos] }

// Next advances to the next visible entry, loading further blocks as
// needed.
func (it *FileIter) Next() error {
	it.pos++
	return it.loadAndSkip()
}
