package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"txkv/internal/bloom"
	"txkv/internal/compress"
	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// Store files are the immutable, sorted on-DFS files produced by memstore
// flushes (HBase's HFiles). Format v2 layout:
//
//	[framed block]* [index] [bloom] [footer]
//
// Each data block holds consecutive encoded KeyValues up to ~blockSize bytes
// before framing. A v2 frame is [codecID byte][payload]: the writer encodes
// the block with the file's codec but falls back to storing it raw (codec ID
// 0) when compression does not shrink it, so every block is self-describing.
// The bloom section is a serialized row-key filter probed by point reads to
// skip files that cannot contain a row. The fixed-size footer records the
// index and bloom extents, the file codec, a version byte, and a magic
// number. Point reads binary-search the in-memory index and fetch exactly
// one block through the server's block cache, which holds *decompressed*
// bytes so a cache hit never pays decompression.
//
// Format v1 ([data block]* [index] [footer], no framing, no bloom, 20-byte
// footer with its own magic) remains fully readable: the opener dispatches
// on the trailing magic, so a DataDir written before v2 reopens unchanged
// and is rewritten to v2 as compactions rewrite its files.

const (
	defaultBlockSize = 4096

	storeFileMagic   = 0x7874734653544f52 // "xtsFSTOR", format v1
	storeFileMagicV2 = 0x7874734653543256 // "xtsFST2V", format v2

	// footerSize is the v1 footer: indexOff(8) indexLen(4) magic(8).
	footerSize = 8 + 4 + 8
	// footerSizeV2 adds the bloom extent, codec, and version:
	// indexOff(8) indexLen(4) bloomOff(8) bloomLen(4) codec(1) version(1)
	// magic(8).
	footerSizeV2 = 8 + 4 + 8 + 4 + 1 + 1 + 8

	// Store-file format versions, as written in the v2 footer.
	StoreFileV1 = 1
	StoreFileV2 = 2

	// defaultBloomBitsPerKey sizes the row-key bloom filter: 10 bits/key
	// gives ~1% false positives at ~1.25 bytes/row of overhead.
	defaultBloomBitsPerKey = 10
)

// ErrBadStoreFile reports a malformed store file.
var ErrBadStoreFile = errors.New("kvstore: malformed store file")

type indexEntry struct {
	first  kv.Cell
	offset int64
	length int
}

func appendIndexEntry(b []byte, e indexEntry) []byte {
	b = binary.AppendUvarint(b, uint64(len(e.first.Row)))
	b = append(b, e.first.Row...)
	b = binary.AppendUvarint(b, uint64(len(e.first.Column)))
	b = append(b, e.first.Column...)
	b = binary.AppendUvarint(b, uint64(e.first.TS))
	b = binary.AppendUvarint(b, uint64(e.offset))
	b = binary.AppendUvarint(b, uint64(e.length))
	return b
}

func decodeIndex(b []byte) ([]indexEntry, error) {
	n, rest := binary.Uvarint(b)
	if rest <= 0 {
		return nil, ErrBadStoreFile
	}
	b = b[rest:]
	out := make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e indexEntry
		l, c := binary.Uvarint(b)
		if c <= 0 || uint64(len(b)) < uint64(c)+l {
			return nil, ErrBadStoreFile
		}
		e.first.Row = kv.Key(b[c : uint64(c)+l])
		b = b[uint64(c)+l:]
		l, c = binary.Uvarint(b)
		if c <= 0 || uint64(len(b)) < uint64(c)+l {
			return nil, ErrBadStoreFile
		}
		e.first.Column = string(b[c : uint64(c)+l])
		b = b[uint64(c)+l:]
		ts, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.first.TS = kv.Timestamp(ts)
		b = b[c:]
		off, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.offset = int64(off)
		b = b[c:]
		ln, c := binary.Uvarint(b)
		if c <= 0 {
			return nil, ErrBadStoreFile
		}
		e.length = int(ln)
		b = b[c:]
		out = append(out, e)
	}
	return out, nil
}

// tmpSuffix marks an in-flight store-file write. A store file becomes
// visible at its final name only via an atomic rename after its full
// contents are synced, so a crash mid-write can never surface a
// half-written file — at worst it leaves a *.tmp orphan, which OpenRegion
// sweeps.
const tmpSuffix = ".tmp"

// StoreFileOptions control how WriteStoreFileWith lays a file down.
// The zero value writes format v2 with the default (snappy) codec and the
// default bloom sizing.
type StoreFileOptions struct {
	// BlockSize is the target uncompressed block size; 0 means the default.
	BlockSize int
	// Version selects the on-disk format: 0 or StoreFileV2 writes v2,
	// StoreFileV1 writes the legacy format (for version-migration tests and
	// the coldread baseline).
	Version int
	// Codec compresses v2 blocks; nil means the default (snappy). Ignored
	// for v1.
	Codec compress.Codec
	// BloomBitsPerKey sizes the v2 row-key bloom filter; 0 means the
	// default (10), negative disables the filter. Ignored for v1.
	BloomBitsPerKey int
	// Stats, when non-nil, accumulates compressed/uncompressed block byte
	// counts as the file is written.
	Stats *FileStats
}

func (o StoreFileOptions) withDefaults() StoreFileOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = defaultBlockSize
	}
	if o.Version == 0 {
		o.Version = StoreFileV2
	}
	if o.Codec == nil {
		o.Codec = compress.Snappy{}
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = defaultBloomBitsPerKey
	}
	return o
}

// WriteStoreFile writes the sorted entries as a format-v2 store file at path
// with default options and returns an opened reader for it. Entries must
// already be in store order.
func WriteStoreFile(fs dfs.FileSystem, path string, entries []kv.KeyValue, blockSize int) (*StoreFile, error) {
	return WriteStoreFileWith(fs, path, entries, StoreFileOptions{BlockSize: blockSize})
}

// WriteStoreFileWith writes the sorted entries as a store file at path and
// returns an opened reader for it. The bytes are written to a temporary
// sibling, synced, and only then renamed to path (a journaled name-node
// metadata operation), so the file is either fully present under its final
// name or not present at all.
func WriteStoreFileWith(fs dfs.FileSystem, path string, entries []kv.KeyValue, opts StoreFileOptions) (*StoreFile, error) {
	opts = opts.withDefaults()
	tmp := path + tmpSuffix
	w, err := fs.CreateFile(tmp)
	if err != nil {
		return nil, fmt.Errorf("kvstore: create store file: %w", err)
	}
	committed := false
	defer func() {
		if !committed {
			_ = w.Close()
			_ = fs.Delete(tmp)
		}
	}()

	v2 := opts.Version != StoreFileV1
	var filter *bloom.Filter
	if v2 && opts.BloomBitsPerKey > 0 && len(entries) > 0 {
		// Entries are sorted, so distinct rows are a single pass.
		rows := 1
		for i := 1; i < len(entries); i++ {
			if entries[i].Row != entries[i-1].Row {
				rows++
			}
		}
		filter = bloom.New(rows, opts.BloomBitsPerKey)
	}

	var (
		index    []indexEntry
		blockBuf []byte
		frameBuf []byte
		fileOff  int64
	)
	flushBlock := func(first kv.Cell) error {
		if len(blockBuf) == 0 {
			return nil
		}
		out := blockBuf
		if v2 {
			// Frame: [codecID][payload], falling back to a raw frame when
			// the codec does not shrink the block.
			frameBuf = append(frameBuf[:0], opts.Codec.ID())
			frameBuf = opts.Codec.Encode(frameBuf, blockBuf)
			if opts.Codec.ID() == compress.IDNone || len(frameBuf)-1 >= len(blockBuf) {
				frameBuf = append(frameBuf[:0], compress.IDNone)
				frameBuf = append(frameBuf, blockBuf...)
			}
			out = frameBuf
			if opts.Stats != nil {
				opts.Stats.BlockUncompressedBytes.Add(int64(len(blockBuf)))
				opts.Stats.BlockCompressedBytes.Add(int64(len(out) - 1))
			}
		}
		index = append(index, indexEntry{first: first, offset: fileOff, length: len(out)})
		if err := w.Append(out); err != nil {
			return err
		}
		fileOff += int64(len(out))
		blockBuf = blockBuf[:0]
		return nil
	}
	var blockFirst kv.Cell
	var prevRow kv.Key
	for i, e := range entries {
		if len(blockBuf) == 0 {
			blockFirst = e.Cell
		}
		if filter != nil && (i == 0 || e.Row != prevRow) {
			filter.Add(string(e.Row))
		}
		prevRow = e.Row
		blockBuf = kv.AppendKeyValue(blockBuf, e)
		if len(blockBuf) >= opts.BlockSize {
			if err := flushBlock(blockFirst); err != nil {
				return nil, err
			}
		}
	}
	if err := flushBlock(blockFirst); err != nil {
		return nil, err
	}

	idx := binary.AppendUvarint(nil, uint64(len(index)))
	for _, e := range index {
		idx = appendIndexEntry(idx, e)
	}
	if err := w.Append(idx); err != nil {
		return nil, err
	}
	size := fileOff + int64(len(idx))

	if !v2 {
		var footer [footerSize]byte
		binary.BigEndian.PutUint64(footer[0:8], uint64(fileOff))
		binary.BigEndian.PutUint32(footer[8:12], uint32(len(idx)))
		binary.BigEndian.PutUint64(footer[12:20], storeFileMagic)
		if err := w.Append(footer[:]); err != nil {
			return nil, err
		}
		size += footerSize
	} else {
		bloomOff := fileOff + int64(len(idx))
		var bloomBytes []byte
		if filter != nil {
			bloomBytes = filter.Marshal(nil)
			if err := w.Append(bloomBytes); err != nil {
				return nil, err
			}
		}
		var footer [footerSizeV2]byte
		binary.BigEndian.PutUint64(footer[0:8], uint64(fileOff))
		binary.BigEndian.PutUint32(footer[8:12], uint32(len(idx)))
		binary.BigEndian.PutUint64(footer[12:20], uint64(bloomOff))
		binary.BigEndian.PutUint32(footer[20:24], uint32(len(bloomBytes)))
		footer[24] = opts.Codec.ID()
		footer[25] = StoreFileV2
		binary.BigEndian.PutUint64(footer[26:34], storeFileMagicV2)
		if err := w.Append(footer[:]); err != nil {
			return nil, err
		}
		size += int64(len(bloomBytes)) + footerSizeV2
	}
	if err := w.Sync(); err != nil {
		return nil, fmt.Errorf("kvstore: sync store file: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return nil, fmt.Errorf("kvstore: publish store file: %w", err)
	}
	committed = true
	version := StoreFileV2
	codecID := opts.Codec.ID()
	if !v2 {
		version = StoreFileV1
		codecID = compress.IDNone
		filter = nil
	}
	return &StoreFile{
		fs:      fs,
		path:    path,
		index:   index,
		entries: len(entries),
		version: version,
		codecID: codecID,
		bloom:   filter,
		size:    size,
	}, nil
}

// StoreFile reads an immutable sorted file. The index (and, for v2, the
// bloom filter) is held in memory (HBase keeps HFile indexes resident); data
// blocks are fetched through a BlockCache.
type StoreFile struct {
	fs      dfs.FileSystem
	path    string
	index   []indexEntry
	entries int
	version int           // StoreFileV1 or StoreFileV2
	codecID byte          // file default codec (v2); frames may override to raw
	bloom   *bloom.Filter // nil for v1 files or bloom-disabled writes
	size    int64         // on-disk byte size, for tier selection
	// refMarker is the path of the reference file this store file was
	// opened through (region splits share parent files via references);
	// empty for files owned by the region itself. Compactions delete the
	// marker, never the shared target.
	refMarker string

	// Lifecycle state, guarded by lifeMu. refs counts the read views
	// holding this file; retired marks it as a compaction input whose
	// replacement is live; unlinked latches physical deletion so the
	// retire/last-unref race can't delete twice. This is deliberately a
	// mutex, not atomics: it is touched only at view construction, view
	// drain, and retirement — never on the per-read hot path, which counts
	// references on the view instead.
	lifeMu   sync.Mutex
	refs     int
	retired  bool
	unlinked bool
}

// ref records that one more read view holds this file.
func (s *StoreFile) ref() {
	s.lifeMu.Lock()
	s.refs++
	s.lifeMu.Unlock()
}

// unref drops one view's hold and reports whether the caller must now
// physically unlink the file (it was retired and this was the last hold).
func (s *StoreFile) unref() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.refs--
	if s.refs == 0 && s.retired && !s.unlinked {
		s.unlinked = true
		return true
	}
	return false
}

// retire marks the file for deferred deletion and reports whether the
// caller must unlink it immediately (no view holds it anymore).
func (s *StoreFile) retire() bool {
	s.lifeMu.Lock()
	defer s.lifeMu.Unlock()
	s.retired = true
	if s.refs == 0 && !s.unlinked {
		s.unlinked = true
		return true
	}
	return false
}

// OpenStoreFile opens the store file at path, dispatching on the trailing
// magic so both format versions read back.
func OpenStoreFile(fs dfs.FileSystem, path string) (*StoreFile, error) {
	size, err := fs.Size(path)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open store file: %w", err)
	}
	if size < footerSize {
		return nil, fmt.Errorf("%w: %s too small", ErrBadStoreFile, path)
	}
	tail, err := fs.ReadRange(path, size-8, 8)
	if err != nil {
		return nil, err
	}
	if len(tail) != 8 {
		return nil, fmt.Errorf("%w: %s bad footer", ErrBadStoreFile, path)
	}
	switch binary.BigEndian.Uint64(tail) {
	case storeFileMagic:
		return openStoreFileV1(fs, path, size)
	case storeFileMagicV2:
		return openStoreFileV2(fs, path, size)
	}
	return nil, fmt.Errorf("%w: %s bad footer", ErrBadStoreFile, path)
}

func openStoreFileV1(fs dfs.FileSystem, path string, size int64) (*StoreFile, error) {
	footer, err := fs.ReadRange(path, size-footerSize, footerSize)
	if err != nil {
		return nil, err
	}
	if len(footer) != footerSize {
		return nil, fmt.Errorf("%w: %s bad footer", ErrBadStoreFile, path)
	}
	idxOff := int64(binary.BigEndian.Uint64(footer[0:8]))
	idxLen := int(binary.BigEndian.Uint32(footer[8:12]))
	index, err := readIndexSection(fs, path, size, idxOff, idxLen)
	if err != nil {
		return nil, err
	}
	return &StoreFile{fs: fs, path: path, index: index, version: StoreFileV1, size: size}, nil
}

func openStoreFileV2(fs dfs.FileSystem, path string, size int64) (*StoreFile, error) {
	if size < footerSizeV2 {
		return nil, fmt.Errorf("%w: %s too small for v2 footer", ErrBadStoreFile, path)
	}
	footer, err := fs.ReadRange(path, size-footerSizeV2, footerSizeV2)
	if err != nil {
		return nil, err
	}
	if len(footer) != footerSizeV2 || footer[25] != StoreFileV2 {
		return nil, fmt.Errorf("%w: %s bad v2 footer", ErrBadStoreFile, path)
	}
	codecID := footer[24]
	if _, err := compress.ForID(codecID); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrBadStoreFile, path, err)
	}
	idxOff := int64(binary.BigEndian.Uint64(footer[0:8]))
	idxLen := int(binary.BigEndian.Uint32(footer[8:12]))
	index, err := readIndexSection(fs, path, size, idxOff, idxLen)
	if err != nil {
		return nil, err
	}
	bloomOff := int64(binary.BigEndian.Uint64(footer[12:20]))
	bloomLen := int(binary.BigEndian.Uint32(footer[20:24]))
	var filter *bloom.Filter
	if bloomLen > 0 {
		if bloomOff < 0 || bloomOff+int64(bloomLen) > size {
			return nil, fmt.Errorf("%w: %s bloom extent out of bounds", ErrBadStoreFile, path)
		}
		bb, err := fs.ReadRange(path, bloomOff, bloomLen)
		if err != nil {
			return nil, err
		}
		filter, err = bloom.Unmarshal(bb)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrBadStoreFile, path, err)
		}
	}
	return &StoreFile{
		fs:      fs,
		path:    path,
		index:   index,
		version: StoreFileV2,
		codecID: codecID,
		bloom:   filter,
		size:    size,
	}, nil
}

// readIndexSection validates the index extent and decodes it.
func readIndexSection(fs dfs.FileSystem, path string, size, idxOff int64, idxLen int) ([]indexEntry, error) {
	if idxOff < 0 || idxLen < 0 || idxOff+int64(idxLen) > size {
		return nil, fmt.Errorf("%w: %s index extent out of bounds", ErrBadStoreFile, path)
	}
	idxBytes, err := fs.ReadRange(path, idxOff, idxLen)
	if err != nil {
		return nil, err
	}
	index, err := decodeIndex(idxBytes)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return index, nil
}

// Path returns the DFS path of the file.
func (s *StoreFile) Path() string { return s.path }

// Version returns the on-disk format version (StoreFileV1 or StoreFileV2).
func (s *StoreFile) Version() int { return s.version }

// DiskSize returns the file's on-disk byte size, used by size-tiered
// compaction selection.
func (s *StoreFile) DiskSize() int64 { return s.size }

// MayContainRow probes the file's bloom filter. False is definitive: the
// file holds no cell of row. Files without a filter (v1, bloom disabled)
// report true. Allocation-free.
func (s *StoreFile) MayContainRow(row kv.Key) bool {
	return s.bloom.MayContain(string(row))
}

// hasBloom reports whether the file carries a bloom filter, i.e. whether a
// MayContainRow answer is informative.
func (s *StoreFile) hasBloom() bool { return s.bloom != nil }

// OpenStoreFileRef opens a store file through a reference marker: the
// marker file's contents are the referenced store-file path.
func OpenStoreFileRef(fs dfs.FileSystem, refPath string) (*StoreFile, error) {
	target, err := fs.ReadAll(refPath)
	if err != nil {
		return nil, fmt.Errorf("kvstore: read reference %s: %w", refPath, err)
	}
	sf, err := OpenStoreFile(fs, string(target))
	if err != nil {
		return nil, fmt.Errorf("kvstore: reference %s: %w", refPath, err)
	}
	sf.refMarker = refPath
	return sf, nil
}

// blockCacheKey names one store-file block in the server's block cache.
func blockCacheKey(path string, i int) string {
	return fmt.Sprintf("%s#%d", path, i)
}

// block returns the decoded entries of block i, consulting the cache. The
// cache holds decompressed bytes: a hit never pays decompression, and the
// cache charge is the decompressed length.
func (s *StoreFile) block(i int, cache *BlockCache) ([]kv.KeyValue, error) {
	key := blockCacheKey(s.path, i)
	var raw []byte
	if cache != nil {
		if b, ok := cache.Get(key); ok {
			raw = b
		}
	}
	if raw == nil {
		b, err := s.fs.ReadRange(s.path, s.index[i].offset, s.index[i].length)
		if err != nil {
			return nil, err
		}
		if s.version >= StoreFileV2 {
			if len(b) == 0 {
				return nil, fmt.Errorf("%w: %s block %d empty frame", ErrBadStoreFile, s.path, i)
			}
			codec, err := compress.ForID(b[0])
			if err != nil {
				return nil, fmt.Errorf("%w: %s block %d: %v", ErrBadStoreFile, s.path, i, err)
			}
			raw, err = codec.Decode(nil, b[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: %s block %d: %v", ErrBadStoreFile, s.path, i, err)
			}
		} else {
			raw = b
		}
		if cache != nil {
			cache.Put(key, raw)
		}
	}
	var out []kv.KeyValue
	rest := raw
	for len(rest) > 0 {
		var e kv.KeyValue
		var err error
		e, rest, err = kv.DecodeKeyValue(rest)
		if err != nil {
			return nil, fmt.Errorf("%s block %d: %w", s.path, i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// findBlock returns the index of the last block whose first cell is <= c,
// or -1 if c precedes the whole file.
func (s *StoreFile) findBlock(c kv.Cell) int {
	// sort.Search finds the first block with first-cell > c; the target is
	// the one before it.
	i := sort.Search(len(s.index), func(i int) bool {
		return kv.CompareCells(s.index[i].first, c) > 0
	})
	return i - 1
}

// Get returns the newest version of (row, column) with ts <= maxTS in this
// file.
func (s *StoreFile) Get(row kv.Key, column string, maxTS kv.Timestamp, cache *BlockCache) (kv.KeyValue, bool, error) {
	if len(s.index) == 0 {
		return kv.KeyValue{}, false, nil
	}
	target := kv.Cell{Row: row, Column: column, TS: maxTS}
	bi := s.findBlock(target)
	if bi < 0 {
		bi = 0
	}
	for ; bi < len(s.index); bi++ {
		entries, err := s.block(bi, cache)
		if err != nil {
			return kv.KeyValue{}, false, err
		}
		for _, e := range entries {
			if kv.CompareCells(e.Cell, target) < 0 {
				continue
			}
			if e.Row == row && e.Column == column {
				return e, true, nil
			}
			return kv.KeyValue{}, false, nil
		}
		// Entire block was before the target; continue to the next block.
	}
	return kv.KeyValue{}, false, nil
}

// ScanRange appends every entry within r with ts <= maxTS to dst.
func (s *StoreFile) ScanRange(dst []kv.KeyValue, r kv.KeyRange, maxTS kv.Timestamp, cache *BlockCache) ([]kv.KeyValue, error) {
	if len(s.index) == 0 {
		return dst, nil
	}
	start := kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp}
	bi := s.findBlock(start)
	if bi < 0 {
		bi = 0
	}
	for ; bi < len(s.index); bi++ {
		if r.End != "" && s.index[bi].first.Row >= r.End {
			break
		}
		entries, err := s.block(bi, cache)
		if err != nil {
			return dst, err
		}
		for _, e := range entries {
			if r.End != "" && e.Row >= r.End {
				return dst, nil
			}
			if !r.Contains(e.Row) {
				continue
			}
			if e.TS <= maxTS {
				dst = append(dst, e)
			}
		}
	}
	return dst, nil
}

// Blocks returns the number of data blocks, for tests and stats.
func (s *StoreFile) Blocks() int { return len(s.index) }

// Iter returns a streaming iterator over the entries of r with ts <= maxTS,
// in store order. Blocks are fetched (through the cache) one at a time as
// the iterator advances, so a limited scan touches only the blocks it
// actually consumes.
func (s *StoreFile) Iter(r kv.KeyRange, maxTS kv.Timestamp, cache *BlockCache) (*FileIter, error) {
	it := &FileIter{sf: s, cache: cache, rng: r, maxTS: maxTS}
	if len(s.index) == 0 {
		return it, nil
	}
	it.bi = s.findBlock(kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp})
	if it.bi < 0 {
		it.bi = 0
	}
	if err := it.loadAndSkip(); err != nil {
		return nil, err
	}
	return it, nil
}

// FileIter streams one store file's visible entries. See StoreFile.Iter.
type FileIter struct {
	sf    *StoreFile
	cache *BlockCache
	rng   kv.KeyRange
	maxTS kv.Timestamp

	bi      int // next block index to load
	entries []kv.KeyValue
	pos     int
	done    bool
}

// loadAndSkip loads blocks starting at bi until it finds a visible entry or
// runs off the range/file. On return the iterator is positioned or done.
func (it *FileIter) loadAndSkip() error {
	for {
		for it.pos < len(it.entries) {
			e := it.entries[it.pos]
			if it.rng.End != "" && e.Row >= it.rng.End {
				it.done = true
				return nil
			}
			if e.TS <= it.maxTS && it.rng.Contains(e.Row) {
				return nil
			}
			it.pos++
		}
		if it.bi >= len(it.sf.index) {
			it.done = true
			return nil
		}
		// A block's first cell is its minimum, so a block starting at or
		// past the range end cannot contribute — stop without fetching it.
		if it.rng.End != "" && it.sf.index[it.bi].first.Row >= it.rng.End {
			it.done = true
			return nil
		}
		entries, err := it.sf.block(it.bi, it.cache)
		if err != nil {
			return err
		}
		it.bi++
		it.entries = entries
		it.pos = 0
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *FileIter) Valid() bool { return !it.done && it.pos < len(it.entries) }

// Head returns the current entry. Only call when Valid.
func (it *FileIter) Head() kv.KeyValue { return it.entries[it.pos] }

// Next advances to the next visible entry, loading further blocks as
// needed.
func (it *FileIter) Next() error {
	it.pos++
	return it.loadAndSkip()
}
