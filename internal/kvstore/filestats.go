package kvstore

import "sync/atomic"

// FileStats accumulates cluster-wide store-file effectiveness counters:
// bloom-filter outcomes on the read path and block byte counts on the write
// path. One FileStats is shared by every server in a cluster (like the
// reclaim metrics), so the exported counters stay monotonic across server
// crashes, restarts, and region moves. A nil *FileStats is valid and counts
// nothing.
type FileStats struct {
	// BloomProbes counts point-read probes against files carrying a bloom
	// filter. BloomNegatives counts probes the filter rejected (the file
	// read was skipped entirely). BloomFalsePositives counts probes the
	// filter passed where the subsequent file read found no cell for the
	// row — the residual cost the filter's sizing controls.
	BloomProbes         atomic.Int64
	BloomNegatives      atomic.Int64
	BloomFalsePositives atomic.Int64

	// BlockUncompressedBytes and BlockCompressedBytes count data-block
	// payload bytes before and after per-block encoding at write time
	// (raw-fallback frames count their raw length), so their ratio is the
	// achieved on-disk compression ratio.
	BlockUncompressedBytes atomic.Int64
	BlockCompressedBytes   atomic.Int64
}

func (s *FileStats) bloomProbe() {
	if s != nil {
		s.BloomProbes.Add(1)
	}
}

func (s *FileStats) bloomNegative() {
	if s != nil {
		s.BloomNegatives.Add(1)
	}
}

func (s *FileStats) bloomFalsePositive() {
	if s != nil {
		s.BloomFalsePositives.Add(1)
	}
}

// FileStatsSnapshot is a point-in-time copy of FileStats, JSON-ready for
// debug endpoints.
type FileStatsSnapshot struct {
	BloomProbes            int64 `json:"bloom_probes"`
	BloomNegatives         int64 `json:"bloom_negatives"`
	BloomFalsePositives    int64 `json:"bloom_false_positives"`
	BlockUncompressedBytes int64 `json:"block_uncompressed_bytes"`
	BlockCompressedBytes   int64 `json:"block_compressed_bytes"`
}

// Snapshot returns a consistent-enough copy of the counters (each load is
// atomic; the set is not).
func (s *FileStats) Snapshot() FileStatsSnapshot {
	if s == nil {
		return FileStatsSnapshot{}
	}
	return FileStatsSnapshot{
		BloomProbes:            s.BloomProbes.Load(),
		BloomNegatives:         s.BloomNegatives.Load(),
		BloomFalsePositives:    s.BloomFalsePositives.Load(),
		BlockUncompressedBytes: s.BlockUncompressedBytes.Load(),
		BlockCompressedBytes:   s.BlockCompressedBytes.Load(),
	}
}
