package kvstore

import (
	"context"
	"fmt"
	"time"

	"txkv/internal/kv"
	"txkv/internal/obs"
)

// defaultScanBatch is the per-request batch size when ScanOptions.Batch is
// zero: large enough to amortize the RPC, small enough that server and
// client memory stay far below big-range result sizes.
const defaultScanBatch = 256

// ScanOptions tunes a streaming scan.
type ScanOptions struct {
	// Limit caps the total number of entries delivered (0 = unlimited).
	// It is pushed down into the per-batch requests, so servers never
	// produce entries past it.
	Limit int
	// Batch bounds one request's response (0 = defaultScanBatch, negative
	// = unbounded single-batch-per-region, the legacy behaviour).
	Batch int
	// Columns projects the scan onto the given columns (nil = all). The
	// filter runs inside the server's merge, before batching.
	Columns []string
	// KeysOnly elides values server-side: the scan delivers coordinates
	// (row, column, version) with nil Value bytes. The value bytes never
	// leave the region server's merge, so a coordinate sweep over a
	// large-value table ships only keys — the DeleteRange push-down.
	KeysOnly bool
}

// batchSize resolves the effective per-request batch bound (0 = unbounded).
func (o ScanOptions) batchSize() int {
	switch {
	case o.Batch < 0:
		return 0
	case o.Batch == 0:
		return defaultScanBatch
	default:
		return o.Batch
	}
}

// Scanner streams a range scan as a sequence of bounded batch RPCs, pulling
// the next batch only when the previous one is consumed. All continuation
// state lives here (resume coordinate + snapshot timestamp); region servers
// keep nothing between batches, so the scan transparently survives region
// splits, moves, and server fail-over by re-resolving its position against
// the master's layout — exactly the retry discipline of point reads.
//
//	sc := client.NewScanner(ctx, "t", rng, snapTS, ScanOptions{})
//	for sc.Next() {
//		use(sc.KV())
//	}
//	err := sc.Err()
type Scanner struct {
	c     *Client
	ctx   context.Context
	table string
	end   kv.Key // overall range end ("" = unbounded)
	maxTS kv.Timestamp
	opts  ScanOptions

	buf []kv.KeyValue // fetched, not yet delivered
	pos int           // next index in buf
	cur kv.KeyValue

	emitted   int
	nextStart kv.Key     // inclusive row where the next fetch begins
	resume    kv.CellKey // last delivered coordinate
	hasResume bool
	exhausted bool // no further fetches: range complete (or limit hit)
	err       error
}

// NewScanner starts a streaming scan of rng at snapshot maxTS. The scan
// performs no I/O until the first Next call. ctx cancels in-flight batch
// requests and stops the scan at the next pull.
func (c *Client) NewScanner(ctx context.Context, table string, rng kv.KeyRange, maxTS kv.Timestamp, opts ScanOptions) *Scanner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Scanner{
		c:         c,
		ctx:       ctx,
		table:     table,
		end:       rng.End,
		maxTS:     maxTS,
		opts:      opts,
		nextStart: rng.Start,
	}
}

// Next advances to the next entry, fetching the next batch when the buffer
// is drained. It returns false when the scan is exhausted, failed, or
// cancelled; Err distinguishes.
func (s *Scanner) Next() bool {
	for {
		if s.err != nil {
			return false
		}
		if s.pos < len(s.buf) {
			s.cur = s.buf[s.pos]
			s.pos++
			s.emitted++
			s.resume = kv.CellKey{Row: s.cur.Row, Column: s.cur.Column}
			s.hasResume = true
			if s.opts.Limit > 0 && s.emitted >= s.opts.Limit {
				s.exhausted = true
			}
			return true
		}
		if s.exhausted {
			return false
		}
		s.fill()
	}
}

// KV returns the current entry. Only valid after a true Next.
func (s *Scanner) KV() kv.KeyValue { return s.cur }

// Err returns the scan's terminal error, if any. A cancelled context
// surfaces as its ctx error.
func (s *Scanner) Err() error { return s.err }

// Close stops the scan: no further batches are fetched. Close is idempotent
// and safe at any point; a fully consumed scan need not be closed (the
// scanner holds no server-side resources between pulls).
func (s *Scanner) Close() { s.exhausted = true }

// fill fetches one batch at the scanner's current position, retrying with
// re-location when the hosting region moved — the same retryable-error
// discipline as point reads.
func (s *Scanner) fill() {
	if err := s.ctx.Err(); err != nil {
		s.err = fmt.Errorf("kvstore: scan %s cancelled before batch: %w", s.table, err)
		return
	}
	// Continue from the last delivered row when it is past the region
	// bound we advanced to (mid-region continuation).
	start := s.nextStart
	if s.hasResume && s.resume.Row > start {
		start = s.resume.Row
	}
	if s.end != "" && start >= s.end {
		s.exhausted = true
		return
	}
	batch := s.opts.batchSize()
	if s.opts.Limit > 0 {
		if rem := s.opts.Limit - s.emitted; batch == 0 || rem < batch {
			batch = rem
		}
	}
	req := ScanRequest{
		Table:     s.table,
		Range:     kv.KeyRange{Start: start, End: s.end},
		MaxTS:     s.maxTS,
		Resume:    s.resume,
		HasResume: s.hasResume,
		Columns:   s.opts.Columns,
		KeysOnly:  s.opts.KeysOnly,
		Batch:     batch,
	}

	if o := s.c.cfg.Obs; o != nil {
		o.ScanBatches.Add(1)
		if s.hasResume {
			o.ScanContinuations.Add(1)
		}
	}
	sp := obs.FromContext(s.ctx)
	var fillStart time.Time
	if sp != nil {
		fillStart = time.Now()
	}
	var lastErr error
	for attempt := 0; attempt < s.c.cfg.ReadRetries; attempt++ {
		loc, err := s.c.locate(s.ctx, s.table, start)
		if err == nil {
			var resp ScanResponse
			resp, err = s.scanOnce(loc, req)
			if err == nil {
				sp.Stage("scan.fill", fillStart)
				s.buf, s.pos = resp.KVs, 0
				if !resp.More {
					// Region (clipped to the range) is exhausted: advance to
					// the next region, or finish at the end of the key space
					// or of the requested range.
					if resp.RegionEnd == "" || (s.end != "" && resp.RegionEnd >= s.end) {
						s.exhausted = true
					} else {
						s.nextStart = resp.RegionEnd
					}
				}
				return
			}
			s.c.invalidate(s.table, loc.info.ID)
		}
		if !retryable(err) {
			s.err = fmt.Errorf("kvstore: scan %s batch at %q: %w", s.table, start, err)
			return
		}
		lastErr = err
		select {
		case <-s.ctx.Done():
			s.err = fmt.Errorf("kvstore: scan %s cancelled between retries: %w", s.table, s.ctx.Err())
			return
		case <-time.After(backoff(s.c.cfg.RetryBackoff, attempt)):
		}
	}
	s.err = fmt.Errorf("kvstore: scan %s at %q retries exhausted: %w", s.table, start, lastErr)
}

// scanOnce issues one batch request at the located region: through a
// follower replica first when the client opted into follower reads and the
// layout lists one, falling back to the primary within the same call on ANY
// follower error — a behind or unreachable follower costs one extra hop,
// never a failed scan. Follower attempts carry AllowFollower so the serving
// side enforces the staleness bound (frontier >= the scan's snapshot).
func (s *Scanner) scanOnce(loc location, req ScanRequest) (ScanResponse, error) {
	if s.c.cfg.FollowerReads {
		freq := req
		freq.AllowFollower = true
		for _, fep := range loc.followers {
			resp, err := fep.ScanBatch(s.ctx, freq)
			if err == nil {
				s.c.followerBatches.Add(1)
				return resp, nil
			}
			s.c.followerFallbacks.Add(1)
		}
	}
	return loc.ep.ScanBatch(s.ctx, req)
}
