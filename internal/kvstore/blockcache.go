package kvstore

import (
	"container/list"
	"sync"
)

// BlockCache is a byte-capacity-bounded LRU cache of store-file blocks,
// modelled on the HBase region-server block cache. Each region server owns
// one. A cold cache after region fail-over is what produces the slow return
// to pre-failure performance in Figure 3.
type BlockCache struct {
	mu       sync.Mutex
	capacity int
	used     int
	order    *list.List // front = most recently used
	items    map[string]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	key  string
	data []byte
	// charge is the byte cost recorded against used when this entry was
	// admitted (the decompressed length for v2 blocks). Eviction, overwrite,
	// and invalidation reclaim exactly this amount — never a re-derived
	// len(data), which could drift from the admitted charge if a caller
	// reslices the shared backing array — so used is always the exact sum of
	// live charges and a retired file's invalidation returns precisely what
	// its blocks cost.
	charge int
}

// NewBlockCache returns a cache holding at most capacity bytes. A zero or
// negative capacity disables caching (every lookup misses).
func NewBlockCache(capacity int) *BlockCache {
	return &BlockCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached block and whether it was present.
func (c *BlockCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).data, true
}

// Put inserts a block, evicting least-recently-used blocks to stay within
// capacity. Blocks larger than the whole capacity are not cached.
func (c *BlockCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(data) > c.capacity {
		return
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.used += len(data) - ent.charge
		ent.data = data
		ent.charge = len(data)
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheEntry{key: key, data: data, charge: len(data)})
		c.used += len(data)
	}
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.items, ent.key)
		c.used -= ent.charge
	}
}

// Len returns the number of cached blocks.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Used returns the number of cached bytes.
func (c *BlockCache) Used() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns cumulative hit/miss counters.
func (c *BlockCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// InvalidateFile eagerly drops every cached block of a store file, given
// its path and block count — called when a retired file is physically
// unlinked. Store-file paths are never reused, so without this the dead
// entries would merely linger until LRU eviction (wasted capacity, not a
// correctness issue); with it the bytes are available to live blocks
// immediately. Nil-safe.
func (c *BlockCache) InvalidateFile(path string, blocks int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < blocks; i++ {
		key := blockCacheKey(path, i)
		if el, ok := c.items[key]; ok {
			c.order.Remove(el)
			delete(c.items, key)
			c.used -= el.Value.(*cacheEntry).charge
		}
	}
}

// Clear empties the cache (used when a server drops a region).
func (c *BlockCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[string]*list.Element)
	c.used = 0
}
