package kvstore

import (
	"fmt"
	"sync"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/wal"
)

// ServerHooks lets the recovery middleware (internal/core) observe the
// server's write path without the store depending on it. The paper keeps
// modifications to the key-value server minimal; this interface is that
// minimal surface.
type ServerHooks interface {
	// OnWriteSetApplied is called after a write-set portion has been
	// applied to the in-memory store and appended to the (in-memory) WAL
	// buffer, before the server acknowledges the client. When the write
	// comes from the recovery client replaying a failed server s, piggy
	// carries T_P(s) and hasPiggy is true (paper Alg. 3, lines 18-22).
	OnWriteSetApplied(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool)
}

// ServerConfig configures a region server.
type ServerConfig struct {
	// ID is the server's node name, unique per incarnation.
	ID string
	// SyncWrites forces a WAL sync to the DFS before acknowledging each
	// write — the "synchronous persistence" baseline of Figure 2(a). The
	// paper's system runs with SyncWrites=false: the WAL buffer is synced
	// asynchronously.
	SyncWrites bool
	// WALSyncInterval is the cadence of the asynchronous WAL syncer. Zero
	// disables the loop; the recovery agent's heartbeat then performs the
	// only syncs, exactly as in the paper's Algorithm 3.
	WALSyncInterval time.Duration
	// MemstoreFlushBytes triggers a memstore flush when a region's active
	// memstore exceeds this size.
	MemstoreFlushBytes int
	// FlushCheckInterval is how often the flusher scans regions.
	FlushCheckInterval time.Duration
	// BlockCacheBytes sizes the server's LRU block cache.
	BlockCacheBytes int
	// BlockSize is the store-file block size.
	BlockSize int
	// HeartbeatInterval is the liveness heartbeat cadence to the master.
	HeartbeatInterval time.Duration
	// CompactionThreshold triggers a background compaction when a region
	// accumulates more than this many store files. Zero disables
	// automatic compaction.
	CompactionThreshold int
	// CompactionHorizon is the version-GC horizon passed to compactions
	// triggered by the threshold (0 keeps every version).
	CompactionHorizon kv.Timestamp
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.WALSyncInterval == 0 {
		c.WALSyncInterval = 50 * time.Millisecond
	}
	if c.MemstoreFlushBytes <= 0 {
		c.MemstoreFlushBytes = 4 << 20
	}
	if c.FlushCheckInterval == 0 {
		c.FlushCheckInterval = 100 * time.Millisecond
	}
	if c.BlockCacheBytes <= 0 {
		c.BlockCacheBytes = 32 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = defaultBlockSize
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	return c
}

// RegionServer hosts regions and serves reads and writes. Its write path
// reproduces the paper's Algorithm 3: append the update batch to the WAL
// buffer, apply it to the memstore, notify the tracker hook, and return —
// persistence to the DFS happens asynchronously.
type RegionServer struct {
	cfg    ServerConfig
	fs     *dfs.FS
	master *Master
	hooks  ServerHooks
	cache  *BlockCache

	mu      sync.RWMutex
	regions map[string]*regionEntry
	wal     *wal.Writer
	crashed bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	inflight sync.WaitGroup // in-progress ApplyWriteSet calls
}

// NewRegionServer creates a (not yet started) region server.
func NewRegionServer(cfg ServerConfig, fs *dfs.FS) *RegionServer {
	cfg = cfg.withDefaults()
	return &RegionServer{
		cfg:     cfg,
		fs:      fs,
		cache:   NewBlockCache(cfg.BlockCacheBytes),
		regions: make(map[string]*regionEntry),
		stop:    make(chan struct{}),
	}
}

// ID returns the server's node name.
func (s *RegionServer) ID() string { return s.cfg.ID }

// Cache returns the server's block cache (stats for benchmarks).
func (s *RegionServer) Cache() *BlockCache { return s.cache }

// SetHooks attaches the recovery middleware hooks. Must be called before
// Start.
func (s *RegionServer) SetHooks(h ServerHooks) { s.hooks = h }

// WALPath returns the DFS path of this server's write-ahead log.
func (s *RegionServer) WALPath() string { return fmt.Sprintf("/wal/%s.log", s.cfg.ID) }

// Start creates the WAL and starts the background loops. The master must
// be attached via Master.AddServer (which calls back into start).
func (s *RegionServer) Start(m *Master) error {
	w, err := wal.Create(s.fs, s.WALPath())
	if err != nil {
		return fmt.Errorf("server %s: %w", s.cfg.ID, err)
	}
	s.mu.Lock()
	s.wal = w
	s.master = m
	s.mu.Unlock()

	s.wg.Add(2)
	go s.heartbeatLoop()
	go s.flushLoop()
	if s.cfg.WALSyncInterval > 0 && !s.cfg.SyncWrites {
		s.wg.Add(1)
		go s.walSyncLoop()
	}
	return nil
}

func (s *RegionServer) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.RLock()
			m, crashed := s.master, s.crashed
			s.mu.RUnlock()
			if m != nil && !crashed {
				m.Heartbeat(s.cfg.ID)
			}
		}
	}
}

func (s *RegionServer) walSyncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.WALSyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.SyncWAL() // errors here surface on the next client op
		}
	}
}

func (s *RegionServer) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.FlushCheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, r := range s.hostedRegions() {
				if r.MemSize() >= s.cfg.MemstoreFlushBytes {
					_ = r.Flush(s.cfg.BlockSize)
				}
				if th := s.cfg.CompactionThreshold; th > 0 && r.Files() > th {
					_ = r.Compact(s.cfg.BlockSize, s.cfg.CompactionHorizon)
				}
			}
		}
	}
}

// regionEntry tracks a hosted region and whether it is online. A region in
// transactional recovery is hosted but NOT online: only the recovery
// client's replays (hasPiggy) may touch it (HBase's "recovering region"
// state).
type regionEntry struct {
	r      *Region
	online bool
}

func (s *RegionServer) hostedRegions() []*Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Region, 0, len(s.regions))
	for _, e := range s.regions {
		if e.online {
			out = append(out, e.r)
		}
	}
	return out
}

// HostedRegionInfos returns the RegionInfo of every online region.
func (s *RegionServer) HostedRegionInfos() []RegionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionInfo, 0, len(s.regions))
	for _, e := range s.regions {
		if e.online {
			out = append(out, e.r.Info)
		}
	}
	return out
}

// SyncWAL persists the WAL buffer to the DFS. Called by the async syncer
// loop and by the recovery agent's heartbeat (Algorithm 3: "persist").
func (s *RegionServer) SyncWAL() error {
	s.mu.RLock()
	w, crashed := s.wal, s.crashed
	s.mu.RUnlock()
	if crashed || w == nil {
		return ErrServerStopped
	}
	return w.Sync()
}

// findRegion returns the region containing (table, row). When
// includeRecovering is false only online regions match.
func (s *RegionServer) findRegion(table string, row kv.Key, includeRecovering bool) (*Region, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.regions {
		if !e.online && !includeRecovering {
			continue
		}
		if e.r.Info.Table == table && e.r.Info.Range.Contains(row) {
			return e.r, true
		}
	}
	return nil, false
}

// ApplyWriteSet applies one transaction's write-set portion: every update
// must fall in a region hosted by this server, otherwise nothing is applied
// and ErrRegionNotServing is returned so the client re-locates and retries
// (replay is idempotent, so duplicate application after a retry is safe).
//
// hasPiggy marks a replayed write from the recovery client carrying the
// failed server's T_P (paper Alg. 3 "On receive from recovery client").
func (s *RegionServer) ApplyWriteSet(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	s.mu.RLock()
	if s.crashed || s.wal == nil {
		s.mu.RUnlock()
		return ErrServerStopped
	}
	w := s.wal
	s.mu.RUnlock()
	s.inflight.Add(1)
	defer s.inflight.Done()

	// Group updates by hosted region; reject if any update is misrouted.
	// Replays from the recovery client (hasPiggy) may target regions that
	// are still in the recovering state — that is the whole point of the
	// pre-online recovery gate.
	byRegion := make(map[*Region][]kv.KeyValue)
	for _, u := range ws.Updates {
		r, ok := s.findRegion(u.Table, u.Row, hasPiggy)
		if !ok {
			return fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, u.Table, u.Row, s.cfg.ID)
		}
		byRegion[r] = append(byRegion[r], u.ToKeyValue(ws.CommitTS))
	}

	// 1. Append to the WAL buffer (in the server's memory, not durable).
	for r, kvs := range byRegion {
		if err := w.Append(EncodeWALEntry(WALEntry{RegionID: r.Info.ID, KVs: kvs})); err != nil {
			return err
		}
	}
	// 2. Apply to the memstores.
	for r, kvs := range byRegion {
		r.Apply(kvs)
	}
	// 3. Notify the recovery tracker, then acknowledge.
	if s.hooks != nil {
		s.hooks.OnWriteSetApplied(ws, piggy, hasPiggy)
	}
	// Synchronous-persistence baseline: pay the DFS sync before the ack.
	if s.cfg.SyncWrites {
		if err := w.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// ReplayWriteSet applies a recovered write-set portion straight to the
// hosted regions' memstores: no WAL append and no tracker notification.
// This is the cluster-reopen replay path — the write-set is already durable
// in the transaction manager's recovery log, and the reopen sequence
// flushes every memstore before the cluster goes live, so journaling it
// again would only double the bytes. Application is idempotent (versioned
// puts overwrite in place).
func (s *RegionServer) ReplayWriteSet(ws kv.WriteSet) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	byRegion := make(map[*Region][]kv.KeyValue)
	for _, u := range ws.Updates {
		r, ok := s.findRegion(u.Table, u.Row, true)
		if !ok {
			return fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, u.Table, u.Row, s.cfg.ID)
		}
		byRegion[r] = append(byRegion[r], u.ToKeyValue(ws.CommitTS))
	}
	for r, kvs := range byRegion {
		r.Apply(kvs)
	}
	return nil
}

// Get serves a point read at the given snapshot timestamp.
func (s *RegionServer) Get(table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return kv.KeyValue{}, false, ErrServerStopped
	}
	r, ok := s.findRegion(table, row, false)
	if !ok {
		return kv.KeyValue{}, false, fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, table, row, s.cfg.ID)
	}
	return r.Get(row, column, maxTS)
}

// Scan serves a range read over the hosted portion of the range.
func (s *RegionServer) Scan(table string, rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return nil, ErrServerStopped
	}
	var out []kv.KeyValue
	for _, r := range s.hostedRegions() {
		if r.Info.Table != table || !r.Info.Range.Overlaps(rng) {
			continue
		}
		part, err := r.ScanRange(rng, maxTS, limit)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// OpenRegion opens a region on this server: store files are recovered from
// the DFS, recovered WAL edits (from the master's log split) are replayed,
// and then — before the region is declared online — preOnline is awaited.
// preOnline is the paper's recovery-manager gate; it is nil for fresh
// assignments.
func (s *RegionServer) OpenRegion(info RegionInfo, recoveredEdits []WALEntry, preOnline func() error) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	r, err := OpenRegion(s.fs, s.cache, info)
	if err != nil {
		return err
	}
	// HBase-internal recovery: replay the split WAL edits into the fresh
	// memstore.
	for _, e := range recoveredEdits {
		r.Apply(e.KVs)
	}
	// Recovery-manager gate: transactional recovery must complete before
	// the region goes online (paper §3.2), otherwise clients could read
	// partially recovered write-sets. The region is published in the
	// recovering state first so the recovery client can replay into it.
	entry := &regionEntry{r: r, online: preOnline == nil}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	s.regions[info.ID] = entry
	s.mu.Unlock()
	if preOnline == nil {
		return nil
	}
	if err := preOnline(); err != nil {
		s.mu.Lock()
		delete(s.regions, info.ID)
		s.mu.Unlock()
		return fmt.Errorf("region %s recovery gate: %w", info.ID, err)
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	entry.online = true
	s.mu.Unlock()
	return nil
}

// CloseRegion removes a region from this server (rebalancing).
func (s *RegionServer) CloseRegion(regionID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.regions, regionID)
}

// CloseAndFlushRegion takes a region offline on this server and flushes its
// memstore so that the store files carry the region's full state — the
// source half of a region move. It waits for in-flight writes to drain
// before flushing, so no acknowledged update is left behind in memory.
func (s *RegionServer) CloseAndFlushRegion(regionID string) error {
	s.mu.Lock()
	entry, ok := s.regions[regionID]
	delete(s.regions, regionID)
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return ErrServerStopped
	}
	if !ok {
		return fmt.Errorf("%w: %s not hosted", ErrRegionNotServing, regionID)
	}
	s.inflight.Wait() // writes that found the region before removal finish
	return entry.r.Flush(s.cfg.BlockSize)
}

// FlushAll flushes every hosted region's memstore (test/benchmark helper).
func (s *RegionServer) FlushAll() error {
	for _, r := range s.hostedRegions() {
		if err := r.Flush(s.cfg.BlockSize); err != nil {
			return err
		}
	}
	return nil
}

// Crash simulates a crash failure: background loops stop, the WAL buffer
// (unsynced tail) is lost, and all in-memory region state is dropped.
func (s *RegionServer) Crash() {
	s.mu.Lock()
	s.crashed = true
	w := s.wal
	s.wal = nil
	s.regions = make(map[string]*regionEntry)
	s.mu.Unlock()
	if w != nil {
		w.Close() // drops the unsynced buffer
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Stop shuts the server down cleanly: the WAL is synced first, so no data
// is lost and no recovery is needed.
func (s *RegionServer) Stop() {
	_ = s.SyncWAL()
	s.mu.Lock()
	s.crashed = true
	w := s.wal
	s.wal = nil
	s.mu.Unlock()
	if w != nil {
		w.Close()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Crashed reports whether the server has crashed or stopped.
func (s *RegionServer) Crashed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashed
}
