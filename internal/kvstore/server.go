package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"txkv/internal/compress"
	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/wal"
)

// ServerHooks lets the recovery middleware (internal/core) observe the
// server's write path without the store depending on it. The paper keeps
// modifications to the key-value server minimal; this interface is that
// minimal surface.
type ServerHooks interface {
	// OnWriteSetApplied is called after a write-set portion has been
	// applied to the in-memory store and appended to the (in-memory) WAL
	// buffer, before the server acknowledges the client. When the write
	// comes from the recovery client replaying a failed server s, piggy
	// carries T_P(s) and hasPiggy is true (paper Alg. 3, lines 18-22).
	OnWriteSetApplied(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool)
}

// ServerConfig configures a region server.
type ServerConfig struct {
	// ID is the server's node name, unique per incarnation.
	ID string
	// SyncWrites forces a WAL sync to the DFS before acknowledging each
	// write — the "synchronous persistence" baseline of Figure 2(a). The
	// paper's system runs with SyncWrites=false: the WAL buffer is synced
	// asynchronously.
	SyncWrites bool
	// WALSyncInterval is the cadence of the asynchronous WAL syncer. Zero
	// disables the loop; the recovery agent's heartbeat then performs the
	// only syncs, exactly as in the paper's Algorithm 3.
	WALSyncInterval time.Duration
	// MemstoreFlushBytes triggers a memstore flush when a region's active
	// memstore exceeds this size.
	MemstoreFlushBytes int
	// FlushCheckInterval is how often the flusher scans regions.
	FlushCheckInterval time.Duration
	// BlockCacheBytes sizes the server's LRU block cache.
	BlockCacheBytes int
	// BlockSize is the store-file block size.
	BlockSize int
	// HeartbeatInterval is the liveness heartbeat cadence to the master.
	HeartbeatInterval time.Duration
	// CompactionThreshold triggers a background compaction when a region
	// accumulates more than this many store files. Zero disables
	// automatic compaction.
	CompactionThreshold int
	// CompactionHorizon is the version-GC horizon passed to compactions
	// triggered by the threshold (0 keeps every version). When
	// HorizonSource is set it takes precedence.
	CompactionHorizon kv.Timestamp
	// HorizonSource, when set, supplies the version-GC horizon at each
	// compaction — the cluster wires the transaction manager's safe
	// snapshot here so background compactions never GC a version an
	// in-flight transaction could still read.
	HorizonSource func() kv.Timestamp
	// RollFlushMinBytes is the per-region dirty-bytes threshold of a WAL
	// roll: a region whose entire in-memory state is smaller skips the
	// flush (no tiny store file); its edits are re-journaled into the
	// fresh WAL generation and synced, so the old generations remain
	// deletable. Zero flushes every region on each roll.
	RollFlushMinBytes int
	// StoreFileVersion selects the store-file format flushes and
	// compactions write: 0 or StoreFileV2 for v2 (bloom + compression),
	// StoreFileV1 for the legacy format (version-migration tests, bench
	// baselines). Readers always accept both.
	StoreFileVersion int
	// Compression names the v2 block codec ("snappy", "none"; "" = snappy).
	Compression string
	// Reclaim, when set, receives store-file retirement counters and is
	// propagated to every region this server opens. Nil records nothing.
	Reclaim *metrics.ReclaimMetrics
	// FileStats, when set, receives bloom and block-compression counters
	// and is propagated to every region this server opens (shared
	// cluster-wide, like Reclaim). Nil records nothing.
	FileStats *FileStats
	// Obs, when set, receives the server-side observability instruments
	// (shared across all region servers of a cluster). Nil records
	// nothing.
	Obs *ServerObs
}

// ServerObs bundles the cluster-level instruments the region servers feed:
// write-set application counters and latency, and cursor-scan page
// counters and latency. All fields must be non-nil when the struct is; the
// cluster builds it from its registry.
type ServerObs struct {
	AppliedWriteSets *metrics.Counter
	AppliedCells     *metrics.Counter
	ApplyLatency     *metrics.Histogram
	ScanPages        *metrics.Counter
	ScanPageLatency  *metrics.Histogram
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.WALSyncInterval == 0 {
		c.WALSyncInterval = 50 * time.Millisecond
	}
	if c.MemstoreFlushBytes <= 0 {
		c.MemstoreFlushBytes = 4 << 20
	}
	if c.FlushCheckInterval == 0 {
		c.FlushCheckInterval = 100 * time.Millisecond
	}
	if c.BlockCacheBytes <= 0 {
		c.BlockCacheBytes = 32 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = defaultBlockSize
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	return c
}

// RegionServer hosts regions and serves reads and writes. Its write path
// reproduces the paper's Algorithm 3: append the update batch to the WAL
// buffer, apply it to the memstore, notify the tracker hook, and return —
// persistence to the DFS happens asynchronously.
type RegionServer struct {
	cfg   ServerConfig
	fs    dfs.FileSystem
	hb    HeartbeatSink
	hooks ServerHooks
	cache *BlockCache

	// repl is the replication shipping engine (nil = replication off).
	// Set before Start; replicated primaries block their write acks on
	// repl.Replicate's quorum.
	repl         Replicator
	replCounters replServerCounters

	mu      sync.RWMutex
	regions map[string]*regionEntry
	wal     *wal.Writer
	walGen  int // current WAL generation (RollWAL advances it)
	crashed bool

	rollMu sync.Mutex // serializes RollWAL passes
	// walMu is the roll barrier: writers hold it shared across WAL append
	// + memstore apply (and syncs hold it across the sync), so once
	// RollWAL's exclusive acquisition returns, every edit that reached the
	// old generation is already applied to a memstore — the flush that
	// follows covers it before the old files are deleted. Acquired before
	// s.mu when both are held.
	walMu sync.RWMutex

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	inflight sync.WaitGroup // in-progress ApplyWriteSet calls
}

// NewRegionServer creates a (not yet started) region server.
func NewRegionServer(cfg ServerConfig, fs dfs.FileSystem) *RegionServer {
	cfg = cfg.withDefaults()
	return &RegionServer{
		cfg:     cfg,
		fs:      fs,
		cache:   NewBlockCache(cfg.BlockCacheBytes),
		regions: make(map[string]*regionEntry),
		stop:    make(chan struct{}),
	}
}

// ID returns the server's node name.
func (s *RegionServer) ID() string { return s.cfg.ID }

// Cache returns the server's block cache (stats for benchmarks).
func (s *RegionServer) Cache() *BlockCache { return s.cache }

// SetHooks attaches the recovery middleware hooks. Must be called before
// Start.
func (s *RegionServer) SetHooks(h ServerHooks) { s.hooks = h }

// walPath names one WAL generation; walPrefix matches every generation of
// a server (the trailing dot keeps "server-1" from matching "server-10").
func walPath(id string, gen int) string { return fmt.Sprintf("/wal/%s.%08d.log", id, gen) }
func walPrefix(id string) string        { return fmt.Sprintf("/wal/%s.", id) }

// WALPath returns the DFS path of this server's current write-ahead log
// generation. RollWAL replaces it.
func (s *RegionServer) WALPath() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return walPath(s.cfg.ID, s.walGen)
}

// Start creates the WAL and starts the background loops, heartbeating into
// hb. For in-process servers hb is the master itself (Master.AddServer
// calls back into Start); for region-server processes it is internal/rpc's
// master client, whose heartbeats cross the wire.
func (s *RegionServer) Start(hb HeartbeatSink) error {
	w, err := wal.Create(s.fs, walPath(s.cfg.ID, 0))
	if err != nil {
		return fmt.Errorf("server %s: %w", s.cfg.ID, err)
	}
	s.mu.Lock()
	s.wal = w
	s.hb = hb
	s.mu.Unlock()

	s.wg.Add(2)
	go s.heartbeatLoop()
	go s.flushLoop()
	if s.cfg.WALSyncInterval > 0 && !s.cfg.SyncWrites {
		s.wg.Add(1)
		go s.walSyncLoop()
	}
	return nil
}

func (s *RegionServer) heartbeatLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.RLock()
			hb, crashed := s.hb, s.crashed
			s.mu.RUnlock()
			if hb != nil && !crashed {
				hb.Heartbeat(s.cfg.ID)
			}
		}
	}
}

func (s *RegionServer) walSyncLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.WALSyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			_ = s.SyncWAL() // errors here surface on the next client op
		}
	}
}

func (s *RegionServer) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.FlushCheckInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			for _, r := range s.hostedRegions() {
				if r.MemSize() >= s.cfg.MemstoreFlushBytes {
					_ = s.flushRegion(r)
				}
				if th := s.cfg.CompactionThreshold; th > 0 && r.Files() > th {
					_, _ = r.CompactTiered(s.cfg.BlockSize, s.compactionHorizon())
				}
			}
		}
	}
}

// regionEntry tracks a hosted region copy and whether it is online. A
// region in transactional recovery is hosted but NOT online: only the
// recovery client's replays (hasPiggy) may touch it (HBase's "recovering
// region" state). Follower copies are hosted, never online, and carry their
// stream position in rep; they are reachable only through the replication
// entry points and the bounded-staleness follower-read path.
type regionEntry struct {
	r      *Region
	online bool
	rep    replState
}

func (s *RegionServer) hostedRegions() []*Region {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Region, 0, len(s.regions))
	for _, e := range s.regions {
		if e.online {
			out = append(out, e.r)
		}
	}
	return out
}

// HostedRegionInfos returns the RegionInfo of every online region.
func (s *RegionServer) HostedRegionInfos() []RegionInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]RegionInfo, 0, len(s.regions))
	for _, e := range s.regions {
		if e.online {
			out = append(out, e.r.Info)
		}
	}
	return out
}

// SyncWAL persists the WAL buffer to the DFS. Called by the async syncer
// loop and by the recovery agent's heartbeat (Algorithm 3: "persist").
func (s *RegionServer) SyncWAL() error {
	// The shared barrier keeps the writer from being closed by a
	// concurrent roll while the sync is in flight.
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	s.mu.RLock()
	w, crashed := s.wal, s.crashed
	s.mu.RUnlock()
	if crashed || w == nil {
		return ErrServerStopped
	}
	return w.Sync()
}

// findRegion returns the region containing (table, row). When
// includeRecovering is false only online regions match.
func (s *RegionServer) findRegion(table string, row kv.Key, includeRecovering bool) (*Region, bool) {
	e, ok := s.findRegionEntry(table, row, includeRecovering)
	if !ok {
		return nil, false
	}
	// A deposed primary must not keep serving snapshot reads off its stale
	// copy: once its lease lapses (the master renews only the current
	// primary's), reads bounce as not-serving and the client re-locates to
	// the promoted primary. Recovery replays (includeRecovering) are not
	// client reads and stay exempt.
	if !includeRecovering && e.rep.getRole() == RolePrimary && !e.rep.leaseValid(time.Now()) {
		s.replCounters.leaseRejects.Add(1)
		return nil, false
	}
	return e.r, true
}

func (s *RegionServer) findRegionEntry(table string, row kv.Key, includeRecovering bool) (*regionEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.regions {
		if !e.online && !includeRecovering {
			continue
		}
		// Follower copies never match: they are not writable, and even
		// recovery replays must land on the assigned (primary) copy.
		if e.rep.getRole() == RoleFollower {
			continue
		}
		if e.r.Info.Table == table && e.r.Info.Range.Contains(row) {
			return e, true
		}
	}
	return nil, false
}

// ApplyWriteSet applies one transaction's write-set portion: every update
// must fall in a region hosted by this server, otherwise nothing is applied
// and ErrRegionNotServing is returned so the client re-locates and retries
// (replay is idempotent, so duplicate application after a retry is safe).
//
// hasPiggy marks a replayed write from the recovery client carrying the
// failed server's T_P (paper Alg. 3 "On receive from recovery client").
func (s *RegionServer) ApplyWriteSet(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	var applyStart time.Time
	if s.cfg.Obs != nil {
		applyStart = time.Now()
	}
	// Shared roll barrier: held across the WAL append AND the memstore
	// apply, so a WAL roll (exclusive acquisition) never observes an edit
	// in the old generation that is not yet in a memstore.
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	s.mu.RLock()
	if s.crashed || s.wal == nil {
		s.mu.RUnlock()
		return ErrServerStopped
	}
	w := s.wal
	s.mu.RUnlock()
	s.inflight.Add(1)
	defer s.inflight.Done()

	// Group updates by hosted region; reject if any update is misrouted.
	// Replays from the recovery client (hasPiggy) may target regions that
	// are still in the recovering state — that is the whole point of the
	// pre-online recovery gate.
	byRegion := make(map[*regionEntry][]kv.KeyValue)
	for _, u := range ws.Updates {
		e, ok := s.findRegionEntry(u.Table, u.Row, hasPiggy)
		if !ok {
			return fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, u.Table, u.Row, s.cfg.ID)
		}
		byRegion[e] = append(byRegion[e], u.ToKeyValue(ws.CommitTS))
	}
	// A replicated primary whose master-granted lease lapsed must stop
	// acknowledging before the master can promote a follower; recovery
	// replays (hasPiggy) are exempt — the gate itself runs during the
	// window when the fresh lease may not have arrived yet.
	if !hasPiggy {
		now := time.Now()
		for e := range byRegion {
			if e.rep.getRole() == RolePrimary && !e.rep.leaseValid(now) {
				s.replCounters.leaseRejects.Add(1)
				return fmt.Errorf("%w: %s on %s", ErrLeaseExpired, e.r.Info.ID, s.cfg.ID)
			}
		}
	}

	// 1. Append to the WAL buffer (in the server's memory, not durable).
	for e, kvs := range byRegion {
		if err := w.Append(EncodeWALEntry(WALEntry{RegionID: e.r.Info.ID, KVs: kvs})); err != nil {
			return err
		}
	}
	// 2. Apply to the memstores.
	for e, kvs := range byRegion {
		e.r.Apply(kvs)
	}
	// 3. Notify the recovery tracker.
	if s.hooks != nil {
		s.hooks.OnWriteSetApplied(ws, piggy, hasPiggy)
	}
	// 4. Replicated primaries journal the batch to their followers and
	// block here until a majority of the replica set holds it. A fenced
	// region (a newer primary was elected) surfaces ErrStaleEpoch: the
	// write is NOT acknowledged, the client re-locates, and the idempotent
	// re-apply lands on the new primary.
	if s.repl != nil {
		for e, kvs := range byRegion {
			if e.rep.getRole() != RolePrimary {
				continue
			}
			if err := s.repl.Replicate(e.r.Info.ID, kvs); err != nil {
				return err
			}
		}
	}
	// Synchronous-persistence baseline: pay the DFS sync before the ack.
	if s.cfg.SyncWrites {
		if err := w.Sync(); err != nil {
			return err
		}
	}
	if o := s.cfg.Obs; o != nil {
		o.AppliedWriteSets.Add(1)
		o.AppliedCells.Add(int64(len(ws.Updates)))
		o.ApplyLatency.Record(time.Since(applyStart))
	}
	return nil
}

// ReplayWriteSet applies a recovered write-set portion straight to the
// hosted regions' memstores: no WAL append and no tracker notification.
// This is the cluster-reopen replay path — the write-set is already durable
// in the transaction manager's recovery log, and the reopen sequence
// flushes every memstore before the cluster goes live, so journaling it
// again would only double the bytes. Application is idempotent (versioned
// puts overwrite in place).
func (s *RegionServer) ReplayWriteSet(ws kv.WriteSet) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	byRegion := make(map[*Region][]kv.KeyValue)
	for _, u := range ws.Updates {
		r, ok := s.findRegion(u.Table, u.Row, true)
		if !ok {
			return fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, u.Table, u.Row, s.cfg.ID)
		}
		byRegion[r] = append(byRegion[r], u.ToKeyValue(ws.CommitTS))
	}
	for r, kvs := range byRegion {
		r.Apply(kvs)
	}
	return nil
}

// Get serves a point read at the given snapshot timestamp.
func (s *RegionServer) Get(table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return kv.KeyValue{}, false, ErrServerStopped
	}
	r, ok := s.findRegion(table, row, false)
	if !ok {
		return kv.KeyValue{}, false, fmt.Errorf("%w: %s/%s on %s", ErrRegionNotServing, table, row, s.cfg.ID)
	}
	return r.Get(row, column, maxTS)
}

// Scan serves a range read over the hosted portion of the range.
func (s *RegionServer) Scan(table string, rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return nil, ErrServerStopped
	}
	var out []kv.KeyValue
	for _, r := range s.hostedRegions() {
		if r.Info.Table != table || !r.Info.Range.Overlaps(rng) {
			continue
		}
		part, err := r.ScanRange(rng, maxTS, limit)
		if err != nil {
			return nil, err
		}
		out = append(out, part...)
	}
	return out, nil
}

// OpenRegion opens a region on this server: store files are recovered from
// the DFS, recovered WAL edits (from the master's log split) are replayed,
// and then — before the region is declared online — preOnline is awaited.
// preOnline is the paper's recovery-manager gate; it is nil for fresh
// assignments.
func (s *RegionServer) OpenRegion(info RegionInfo, recoveredEdits []WALEntry, preOnline func() error) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	r, err := OpenRegion(s.fs, s.cache, info)
	if err != nil {
		return err
	}
	return s.installRegion(r, info, recoveredEdits, preOnline)
}

// OpenRegionFiles is OpenRegion with the store-file set given explicitly
// instead of discovered by listing — the region-move path, where the
// source's data directory can still hold retired files awaiting a reader
// drain that must not become part of the new incarnation.
func (s *RegionServer) OpenRegionFiles(info RegionInfo, files []string, recoveredEdits []WALEntry, preOnline func() error) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	r, err := OpenRegionFiles(s.fs, s.cache, info, files)
	if err != nil {
		return err
	}
	return s.installRegion(r, info, recoveredEdits, preOnline)
}

func (s *RegionServer) installRegion(r *Region, info RegionInfo, recoveredEdits []WALEntry, preOnline func() error) error {
	r.reclaim = s.cfg.Reclaim
	r.stats = s.cfg.FileStats
	r.sfOpts = s.storeFileOpts()
	// HBase-internal recovery: replay the split WAL edits into the fresh
	// memstore.
	for _, e := range recoveredEdits {
		r.Apply(e.KVs)
	}
	// Recovery-manager gate: transactional recovery must complete before
	// the region goes online (paper §3.2), otherwise clients could read
	// partially recovered write-sets. The region is published in the
	// recovering state first so the recovery client can replay into it.
	entry := &regionEntry{r: r, online: preOnline == nil}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	s.regions[info.ID] = entry
	s.mu.Unlock()
	if preOnline == nil {
		return nil
	}
	if err := preOnline(); err != nil {
		s.mu.Lock()
		delete(s.regions, info.ID)
		s.mu.Unlock()
		return fmt.Errorf("region %s recovery gate: %w", info.ID, err)
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return ErrServerStopped
	}
	entry.online = true
	s.mu.Unlock()
	return nil
}

// OpenRegionRecovering is the first half of a staged region open: the
// region is installed in the recovering (not online) state and stays there
// until MarkRegionOnline. It exists for the wire protocol, where the
// master-side recovery gate cannot run inside this process: internal/rpc's
// host proxy opens the region recovering, the recovery manager replays
// committed write-sets into it via ApplyWriteSet, and a final MarkRegionOnline
// (or CloseRegion, on gate failure) resolves the stage. files, when hasFiles,
// pins the store-file set explicitly (the region-move path); otherwise the
// set is discovered by listing the region's data directory.
func (s *RegionServer) OpenRegionRecovering(info RegionInfo, files []string, hasFiles bool, recoveredEdits []WALEntry) error {
	s.mu.RLock()
	crashed := s.crashed
	s.mu.RUnlock()
	if crashed {
		return ErrServerStopped
	}
	var (
		r   *Region
		err error
	)
	if hasFiles {
		r, err = OpenRegionFiles(s.fs, s.cache, info, files)
	} else {
		r, err = OpenRegion(s.fs, s.cache, info)
	}
	if err != nil {
		return err
	}
	r.reclaim = s.cfg.Reclaim
	r.stats = s.cfg.FileStats
	r.sfOpts = s.storeFileOpts()
	for _, e := range recoveredEdits {
		r.Apply(e.KVs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrServerStopped
	}
	s.regions[info.ID] = &regionEntry{r: r, online: false}
	return nil
}

// MarkRegionOnline completes a staged open: the recovering region starts
// serving.
func (s *RegionServer) MarkRegionOnline(regionID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashed {
		return ErrServerStopped
	}
	entry, ok := s.regions[regionID]
	if !ok {
		return fmt.Errorf("%w: %s not hosted", ErrRegionNotServing, regionID)
	}
	entry.online = true
	return nil
}

// CloseRegion removes a region copy from this server (rebalancing, or a
// follower copy being dropped).
func (s *RegionServer) CloseRegion(regionID string) {
	s.mu.Lock()
	e, ok := s.regions[regionID]
	delete(s.regions, regionID)
	s.mu.Unlock()
	if !ok {
		return
	}
	if e.rep.getRole() == RoleFollower {
		// Follower copies never own the store files they serve.
		e.r.abandoned.Store(true)
	}
	if s.repl != nil && e.rep.getRole() == RolePrimary {
		s.repl.DropRegion(regionID)
	}
}

// CloseAndFlushRegion takes a region offline on this server and flushes its
// memstore so that the store files carry the region's full state — the
// source half of a region move. It waits for in-flight writes to drain
// before flushing, so no acknowledged update is left behind in memory.
// It returns the region's final live store-file paths (region-owned files
// only, not split reference markers): the directory listing is NOT a safe
// substitute, because it can still contain compaction inputs that are
// retired but waiting for a slow reader's view to drain before deletion.
func (s *RegionServer) CloseAndFlushRegion(regionID string) ([]string, error) {
	s.mu.Lock()
	entry, ok := s.regions[regionID]
	delete(s.regions, regionID)
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return nil, ErrServerStopped
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s not hosted", ErrRegionNotServing, regionID)
	}
	s.inflight.Wait() // writes that found the region before removal finish
	if err := entry.r.Flush(s.cfg.BlockSize); err != nil {
		return nil, err
	}
	if s.repl != nil && entry.rep.getRole() == RolePrimary {
		s.repl.DropRegion(regionID)
	}
	return entry.r.storeFilePaths(), nil
}

// FlushAll flushes every hosted region's memstore (test/benchmark helper).
func (s *RegionServer) FlushAll() error {
	for _, r := range s.hostedRegions() {
		if err := s.flushRegion(r); err != nil {
			return err
		}
	}
	return nil
}

// flushRegion flushes one hosted region and — when the region is a
// replicated primary — brackets the flush with a replication checkpoint.
// The sequence is captured under an exclusive roll-barrier acquisition, so
// every replicated append at or below it has fully reached a memstore and
// is therefore covered by the store file the flush writes; the retained log
// can be pruned through it and followers re-anchored on the files. The
// capture itself is lock-only (no I/O, no network), so writers stall for
// nanoseconds, and the follower notifications ride the shipper's sender
// loops asynchronously.
func (s *RegionServer) flushRegion(r *Region) error {
	e, ok := s.entryFor(r.Info.ID)
	replicated := ok && s.repl != nil && e.rep.getRole() == RolePrimary
	var seq uint64
	if replicated {
		s.walMu.Lock()
		seq = s.repl.LastSeq(r.Info.ID)
		s.walMu.Unlock()
	}
	if err := r.Flush(s.cfg.BlockSize); err != nil {
		return err
	}
	if replicated {
		s.repl.Checkpoint(r.Info.ID, seq)
	}
	return nil
}

// RollWAL bounds the write-ahead log: it starts a fresh WAL generation,
// flushes every hosted region (so the old generations' edits are fully
// covered by store files), and only then deletes the old generation files.
// Without rolling, the live WAL grows with all-time writes and pins its
// blocks in the DFS journals forever — the one growth vector log compaction
// alone cannot reclaim.
//
// Crash safety: the old generations are deleted only after a successful
// flush with the server still live, so at every instant either the WAL
// entries or the store files cover each acknowledged edit; a crash
// mid-roll at worst leaves an extra (already-covered) generation for the
// master's log split to read.
func (s *RegionServer) RollWAL() error {
	s.rollMu.Lock()
	defer s.rollMu.Unlock()

	s.walMu.Lock()
	s.mu.Lock()
	if s.crashed || s.wal == nil {
		s.mu.Unlock()
		s.walMu.Unlock()
		return ErrServerStopped
	}
	old := s.wal
	oldPath := walPath(s.cfg.ID, s.walGen)
	if old.Buffered() == 0 {
		if n, err := s.fs.Size(oldPath); err == nil && n == 0 {
			s.mu.Unlock()
			s.walMu.Unlock()
			return nil // nothing logged since the last roll
		}
	}
	nw, err := wal.Create(s.fs, walPath(s.cfg.ID, s.walGen+1))
	if err != nil {
		s.mu.Unlock()
		s.walMu.Unlock()
		return fmt.Errorf("server %s: roll wal: %w", s.cfg.ID, err)
	}
	s.wal = nw
	s.walGen++
	cur := walPath(s.cfg.ID, s.walGen)
	s.mu.Unlock()
	s.walMu.Unlock()

	// Persist the old generation's buffered tail before freezing it:
	// Close alone would drop the buffer, and the recovery agent's next
	// heartbeat (which syncs the fresh, empty generation) would advance
	// T_P past edits that were never made durable anywhere. If the sync
	// fails the FlushAll below still covers the edits — they are all in
	// memstores thanks to the roll barrier — and a flush failure keeps
	// the old generations on the DFS.
	_ = old.Sync()
	_ = old.Close()

	// Flush regions with enough dirt to be worth a store file; carry the
	// mostly-idle ones' few edits into the fresh generation instead (a
	// skewed workload would otherwise pay a tiny store file per idle
	// region per roll, compacted away immediately — pure churn).
	carried := false
	for _, r := range s.hostedRegions() {
		dirty, small := r.dirtyForRoll(s.cfg.RollFlushMinBytes)
		if !small {
			if err := s.flushRegion(r); err != nil {
				return err // old generations stay; the next roll retries
			}
			continue
		}
		if len(dirty) == 0 {
			continue
		}
		if err := s.appendWALEntry(WALEntry{RegionID: r.Info.ID, KVs: dirty}); err != nil {
			return err
		}
		carried = true
		s.cfg.Reclaim.AddFlushesSkipped(1)
	}
	// Carried edits must be durable in the new generation before the old
	// ones — until now their only durable copy — can go.
	if carried {
		if err := s.SyncWAL(); err != nil {
			return err
		}
	}
	// A crash can clear the region map mid-FlushAll, turning it into a
	// no-op — the old WAL would then be the only copy of the memstore
	// edits below the persisted threshold, so keep it for the log split.
	if s.Crashed() {
		return ErrServerStopped
	}
	for _, p := range s.fs.List(walPrefix(s.cfg.ID)) {
		if p != cur {
			_ = s.fs.Delete(p)
		}
	}
	return nil
}

// appendWALEntry appends one entry to the current WAL generation under the
// shared roll barrier (the carry-forward path of RollWAL; concurrent with
// writers, never with a roll's generation swap).
func (s *RegionServer) appendWALEntry(e WALEntry) error {
	s.walMu.RLock()
	defer s.walMu.RUnlock()
	s.mu.RLock()
	w, crashed := s.wal, s.crashed
	s.mu.RUnlock()
	if crashed || w == nil {
		return ErrServerStopped
	}
	return w.Append(EncodeWALEntry(e))
}

// storeFileOpts resolves the configured store-file write options. An
// unknown codec name falls back to the default rather than failing region
// opens: the format knob is an operator tuning, not a correctness input.
func (s *RegionServer) storeFileOpts() StoreFileOptions {
	opts := StoreFileOptions{Version: s.cfg.StoreFileVersion}
	if c, err := compress.ForName(s.cfg.Compression); err == nil {
		opts.Codec = c
	}
	return opts
}

// compactionHorizon resolves the version-GC horizon for a compaction.
func (s *RegionServer) compactionHorizon() kv.Timestamp {
	if s.cfg.HorizonSource != nil {
		return s.cfg.HorizonSource()
	}
	return s.cfg.CompactionHorizon
}

// CompactAll runs one size-tiered compaction round over every hosted
// region, hottest first, using the configured version-GC horizon. It is the
// storage janitor's entry point: together with dfs.CompactLogs it bounds
// steady-state disk usage (retired store files free their DFS blocks, and
// the next log compaction reclaims the block-journal bytes). Heat ordering
// means the regions whose reads benefit most from a smaller file fan-out
// (and from v1 files gaining bloom filters) are rewritten before cold ones.
func (s *RegionServer) CompactAll() error {
	regions := s.hostedRegions()
	sort.SliceStable(regions, func(i, j int) bool {
		return regionHotness(regions[i]) > regionHotness(regions[j])
	})
	for _, r := range regions {
		if _, err := r.CompactTiered(s.cfg.BlockSize, s.compactionHorizon()); err != nil {
			return err
		}
	}
	return nil
}

// regionHotness scores a region for compaction priority: reads served from
// files and outright misses are exactly the operations a compaction (fewer
// files, bloom filters) speeds up; scans weigh in for fan-out reduction.
func regionHotness(r *Region) int64 {
	h := r.Heat()
	return h.FileHits + h.Misses + h.Scans
}

// Crash simulates a crash failure: background loops stop, the WAL buffer
// (unsynced tail) is lost, and all in-memory region state is dropped.
func (s *RegionServer) Crash() {
	s.mu.Lock()
	s.crashed = true
	w := s.wal
	s.wal = nil
	// Late view drains from this incarnation must not unlink store files:
	// the regions reassign to live servers that rediscover the files by
	// listing, retired-but-undrained ones included.
	for _, e := range s.regions {
		e.r.abandoned.Store(true)
	}
	s.regions = make(map[string]*regionEntry)
	s.mu.Unlock()
	if w != nil {
		w.Close() // drops the unsynced buffer
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Stop shuts the server down cleanly: the WAL is synced first, so no data
// is lost and no recovery is needed.
func (s *RegionServer) Stop() {
	_ = s.SyncWAL()
	s.mu.Lock()
	s.crashed = true
	w := s.wal
	s.wal = nil
	s.mu.Unlock()
	if w != nil {
		w.Close()
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.wg.Wait()
}

// Crashed reports whether the server has crashed or stopped.
func (s *RegionServer) Crashed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.crashed
}
