package kvstore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/wal"
)

// ServerFailureListener is notified when the master declares a region
// server dead, before any region recovery starts. The recovery manager uses
// this hook to snapshot the failed server's T_P (paper §3.2: "We added a
// hook in the master server that notifies our recovery manager whenever a
// server fails").
type ServerFailureListener interface {
	OnServerFailure(serverID string, regions []RegionInfo)
}

// ServerRecoveryCompleteListener is notified when every region of a failed
// server is back online. Failure listeners may optionally implement it; the
// recovery manager uses it to retire the dead server's frozen threshold
// (which until then holds back the global T_P and log truncation).
type ServerRecoveryCompleteListener interface {
	OnServerRecoveryComplete(serverID string)
}

// LayoutSink observes every change to a table's region layout (creation and
// splits). The cluster registers a sink that journals layouts to stable
// storage, so a reopened cluster can restore each table's exact region set
// (including regions created by runtime splits, whose store files would
// otherwise be orphaned). A sink error fails the layout change's caller:
// acknowledging a layout that is not durable would lose data at reopen.
type LayoutSink interface {
	RecordLayout(table string, regions []RegionInfo) error
}

// RecoveryGate blocks a recovered region from going online until the
// transactional recovery (replay of committed-but-unpersisted write-sets
// from the transaction manager's log) has completed — the paper's second
// hook, in the region initialization path.
type RecoveryGate interface {
	// RecoverRegion replays into the recovering region (hosted, not yet
	// online, on host) every write-set committed after the failed
	// server's T_P whose updates fall within r, then returns; the region
	// goes online afterwards.
	RecoverRegion(r RegionInfo, failedServer string, host RegionHost) error
}

// MasterConfig configures failure detection and replication policy.
type MasterConfig struct {
	// HeartbeatTimeout declares a server dead after this much silence.
	HeartbeatTimeout time.Duration
	// CheckInterval is the liveness scan cadence.
	CheckInterval time.Duration
	// ReplicationFactor is the total number of copies per region (primary
	// included). 1 (the default) disables replication entirely.
	ReplicationFactor int
	// LeaseTTL is the leader-lease duration granted to primaries; leases
	// are renewed from the liveness loop. Default: HeartbeatTimeout, so a
	// partitioned primary's lease self-expires before the master, having
	// waited out the same timeout, promotes a successor.
	LeaseTTL time.Duration
}

func (c MasterConfig) withDefaults() MasterConfig {
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 500 * time.Millisecond
	}
	if c.CheckInterval == 0 {
		c.CheckInterval = c.HeartbeatTimeout / 4
	}
	if c.ReplicationFactor == 0 {
		c.ReplicationFactor = 1
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = leaseTTLDefault(c.HeartbeatTimeout)
	}
	return c
}

type serverRec struct {
	host          RegionHost
	addr          string // client-dialable address ("" = in-process only)
	lastHB        time.Time
	alive         bool
	leaseInFlight bool // a RenewLeases batch is outstanding
}

// Master coordinates region assignment, detects server failures via
// heartbeats, splits dead servers' write-ahead logs by region, and
// re-assigns and re-opens affected regions on live servers — the HBase
// master, with the two recovery-manager hooks the paper adds.
type Master struct {
	cfg MasterConfig
	fs  dfs.FileSystem

	mu         sync.Mutex
	servers    map[string]*serverRec
	order      []string // assignment round-robin order
	rrCursor   int
	tables     map[string][]RegionInfo // sorted by start key
	assign     map[string]string       // region ID -> server ID
	replicas   map[string]*replicaSet  // region ID -> replication group
	recovering map[string]bool         // region ID currently offline
	deadDone   map[string]bool         // failed servers whose regions are all back
	splitSeq   int                     // monotonically increasing split counter
	gate       RecoveryGate
	listeners  []ServerFailureListener
	layoutSink LayoutSink
	layoutMu   sync.Mutex // orders layout snapshots into the sink

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Failover accounting (atomic: read by metrics pulls mid-failover).
	failovers          atomic.Int64
	regionsPromoted    atomic.Int64
	regionsSplit       atomic.Int64
	lastFailoverNanos  atomic.Int64
	totalFailoverNanos atomic.Int64
}

// FailoverStats counts master-driven failover outcomes.
type FailoverStats struct {
	Failovers       int64 // server failures fully processed
	RegionsPromoted int64 // regions recovered by in-place follower promotion
	RegionsSplit    int64 // regions recovered via the WAL-split fallback
	LastFailover    time.Duration
	TotalFailover   time.Duration
}

// FailoverStats snapshots the master's failover counters.
func (m *Master) FailoverStats() FailoverStats {
	return FailoverStats{
		Failovers:       m.failovers.Load(),
		RegionsPromoted: m.regionsPromoted.Load(),
		RegionsSplit:    m.regionsSplit.Load(),
		LastFailover:    time.Duration(m.lastFailoverNanos.Load()),
		TotalFailover:   time.Duration(m.totalFailoverNanos.Load()),
	}
}

// NewMaster creates a master over the given DFS.
func NewMaster(cfg MasterConfig, fs dfs.FileSystem) *Master {
	return &Master{
		cfg:        cfg.withDefaults(),
		fs:         fs,
		servers:    make(map[string]*serverRec),
		tables:     make(map[string][]RegionInfo),
		assign:     make(map[string]string),
		replicas:   make(map[string]*replicaSet),
		recovering: make(map[string]bool),
		deadDone:   make(map[string]bool),
		stop:       make(chan struct{}),
	}
}

// SetRecoveryGate attaches the recovery manager's region gate. Must be set
// before any failure is processed to guarantee gated recovery.
func (m *Master) SetRecoveryGate(g RecoveryGate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gate = g
}

// AddFailureListener registers a server-failure hook.
func (m *Master) AddFailureListener(l ServerFailureListener) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.listeners = append(m.listeners, l)
}

// SetLayoutSink attaches the layout journal hook.
func (m *Master) SetLayoutSink(s LayoutSink) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.layoutSink = s
}

// recordLayout publishes a table's current region set to the sink. Must be
// called without m.mu held. layoutMu spans the snapshot and the journal
// append, so concurrent layout changes cannot journal an older snapshot
// after a newer one (replay is last-record-wins).
func (m *Master) recordLayout(table string) error {
	m.layoutMu.Lock()
	defer m.layoutMu.Unlock()
	m.mu.Lock()
	sink := m.layoutSink
	regions := append([]RegionInfo(nil), m.tables[table]...)
	m.mu.Unlock()
	if sink == nil || regions == nil {
		return nil
	}
	if err := sink.RecordLayout(table, regions); err != nil {
		return fmt.Errorf("kvstore: journal layout of %s: %w", table, err)
	}
	return nil
}

// Start launches the liveness checker.
func (m *Master) Start() {
	m.wg.Add(1)
	go m.checkLoop()
}

// Stop halts the master's background work.
func (m *Master) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// AddServer registers and starts an in-process region server.
func (m *Master) AddServer(s *RegionServer) error {
	if err := s.Start(m); err != nil {
		return err
	}
	return m.AddServerHost(s, "")
}

// AddServerHost registers an already-running region server by its host
// handle — the registration path for region-server processes, whose host is
// internal/rpc's proxy and whose addr is the address clients dial for
// reads. The server is expected to already be started and heartbeating.
func (m *Master) AddServerHost(host RegionHost, addr string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.servers[host.ID()]; ok {
		return fmt.Errorf("kvstore: server %s already registered", host.ID())
	}
	m.servers[host.ID()] = &serverRec{host: host, addr: addr, lastHB: time.Now(), alive: true}
	m.order = append(m.order, host.ID())
	return nil
}

// Heartbeat records a liveness heartbeat from a server.
func (m *Master) Heartbeat(serverID string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.servers[serverID]; ok && rec.alive {
		rec.lastHB = time.Now()
	}
}

// LiveServers returns the IDs of servers currently considered alive.
func (m *Master) LiveServers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for id, rec := range m.servers {
		if rec.alive {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// pickServerLocked returns the next live server round-robin.
func (m *Master) pickServerLocked() (*serverRec, error) {
	n := len(m.order)
	for i := 0; i < n; i++ {
		id := m.order[(m.rrCursor+i)%n]
		if rec := m.servers[id]; rec != nil && rec.alive {
			m.rrCursor = (m.rrCursor + i + 1) % n
			return rec, nil
		}
	}
	return nil, ErrNoLiveServers
}

// CreateTable creates a table pre-split at the given keys: splits k1<k2<...
// produce regions [..k1), [k1,k2), ..., [kn,..). Regions are assigned
// round-robin across live servers and opened immediately.
func (m *Master) CreateTable(name string, splits []kv.Key) error {
	m.mu.Lock()
	if _, ok := m.tables[name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	sorted := append([]kv.Key(nil), splits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	bounds := append([]kv.Key{""}, sorted...)
	regions := make([]RegionInfo, 0, len(bounds))
	for i, start := range bounds {
		var end kv.Key
		if i+1 < len(bounds) {
			end = bounds[i+1]
		}
		regions = append(regions, RegionInfo{
			ID:    fmt.Sprintf("%s-r%03d", name, i),
			Table: name,
			Range: kv.KeyRange{Start: start, End: end},
		})
	}
	m.tables[name] = regions
	type placement struct {
		rec  *serverRec
		info RegionInfo
	}
	placements := make([]placement, 0, len(regions))
	for _, info := range regions {
		rec, err := m.pickServerLocked()
		if err != nil {
			delete(m.tables, name)
			m.mu.Unlock()
			return err
		}
		m.assign[info.ID] = rec.host.ID()
		placements = append(placements, placement{rec: rec, info: info})
	}
	m.mu.Unlock()

	for _, p := range placements {
		if err := p.rec.host.OpenRegion(p.info, nil, nil); err != nil {
			return fmt.Errorf("open region %s: %w", p.info.ID, err)
		}
	}
	for _, p := range placements {
		m.ensureReplicated(p.info, p.rec.host.ID(), true)
	}
	return m.recordLayout(name)
}

// RestoreTable re-registers a table with an explicit region set — the
// cluster-reopen path. The regions' store files are discovered from the DFS
// as each region opens; edits carries per-region recovered WAL entries
// harvested from the previous incarnation's server logs.
func (m *Master) RestoreTable(name string, regions []RegionInfo, edits map[string][]WALEntry) error {
	m.mu.Lock()
	if _, ok := m.tables[name]; ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	m.tables[name] = append([]RegionInfo(nil), regions...)
	type placement struct {
		rec  *serverRec
		info RegionInfo
	}
	placements := make([]placement, 0, len(regions))
	for _, info := range regions {
		rec, err := m.pickServerLocked()
		if err != nil {
			delete(m.tables, name)
			m.mu.Unlock()
			return err
		}
		m.assign[info.ID] = rec.host.ID()
		placements = append(placements, placement{rec: rec, info: info})
	}
	m.mu.Unlock()

	for _, p := range placements {
		if err := p.rec.host.OpenRegion(p.info, edits[p.info.ID], nil); err != nil {
			return fmt.Errorf("restore region %s: %w", p.info.ID, err)
		}
	}
	for _, p := range placements {
		m.ensureReplicated(p.info, p.rec.host.ID(), true)
	}
	return m.recordLayout(name)
}

// TableRegions returns the region metadata of a table, sorted by start key.
func (m *Master) TableRegions(table string) ([]RegionInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	regions, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	return append([]RegionInfo(nil), regions...), nil
}

// RegionLocation pairs a region's metadata with the server currently
// hosting it — one entry of a table's layout snapshot. Host is the
// in-process handle (a *RegionServer for local servers, an RPC proxy for
// remote ones); Addr, when non-empty, is the address remote clients dial to
// reach the hosting server directly.
type RegionLocation struct {
	Info RegionInfo
	Host RegionHost
	Addr string
	// Followers lists the region's live follower copies; clients with
	// follower reads enabled may serve bounded-staleness scans from them.
	Followers []FollowerLocation
}

// LocateAll resolves a table's full region layout in one call: every region
// currently assigned to a live server, sorted by start key. Regions that are
// offline (recovering, unassigned, or on a dead server) are simply omitted —
// a client caching the layout will miss on their ranges and refresh. One
// LocateAll costs the master the same lock acquisition as one Locate, so a
// layout-caching client turns O(regions) master lookups per table into one.
func (m *Master) LocateAll(table string) ([]RegionLocation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	regions, ok := m.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	out := make([]RegionLocation, 0, len(regions))
	for _, info := range regions {
		if m.recovering[info.ID] {
			continue
		}
		sid, ok := m.assign[info.ID]
		if !ok {
			continue
		}
		rec := m.servers[sid]
		if rec == nil || !rec.alive {
			continue
		}
		loc := RegionLocation{Info: info, Host: rec.host, Addr: rec.addr}
		if rs := m.replicas[info.ID]; rs != nil {
			for _, fid := range rs.followers {
				frec := m.servers[fid]
				if frec == nil || !frec.alive {
					continue
				}
				loc.Followers = append(loc.Followers, FollowerLocation{
					ServerID: fid, Host: frec.host, Addr: frec.addr,
				})
			}
		}
		out = append(out, loc)
	}
	return out, nil
}

// Locate resolves (table, row) to its region and the server currently
// hosting it. While a region is offline for recovery it returns
// ErrRegionNotServing; clients back off and retry.
func (m *Master) Locate(table string, row kv.Key) (RegionInfo, RegionHost, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	regions, ok := m.tables[table]
	if !ok {
		return RegionInfo{}, nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	for _, info := range regions {
		if !info.Range.Contains(row) {
			continue
		}
		if m.recovering[info.ID] {
			return RegionInfo{}, nil, fmt.Errorf("%w: %s recovering", ErrRegionNotServing, info.ID)
		}
		sid, ok := m.assign[info.ID]
		if !ok {
			return RegionInfo{}, nil, fmt.Errorf("%w: %s unassigned", ErrRegionNotServing, info.ID)
		}
		rec := m.servers[sid]
		if rec == nil || !rec.alive {
			return RegionInfo{}, nil, fmt.Errorf("%w: %s host %s down", ErrRegionNotServing, info.ID, sid)
		}
		return info, rec.host, nil
	}
	return RegionInfo{}, nil, fmt.Errorf("%w: no region for %s/%s", ErrNoSuchTable, table, row)
}

func (m *Master) checkLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.CheckInterval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.checkOnce()
		}
	}
}

func (m *Master) checkOnce() {
	now := time.Now()
	m.mu.Lock()
	var failed []string
	for id, rec := range m.servers {
		if rec.alive && now.Sub(rec.lastHB) > m.cfg.HeartbeatTimeout {
			failed = append(failed, id)
		}
	}
	m.mu.Unlock()
	for _, id := range failed {
		m.handleServerFailure(id)
	}
	m.renewLeases()
}

// FailServer forcibly triggers failure handling for a server (fault
// injection entry point; identical to heartbeat-timeout detection but
// immediate).
func (m *Master) FailServer(serverID string) {
	m.handleServerFailure(serverID)
}

func (m *Master) handleServerFailure(serverID string) {
	start := time.Now()
	m.mu.Lock()
	rec, ok := m.servers[serverID]
	if !ok || !rec.alive {
		m.mu.Unlock()
		return
	}
	rec.alive = false
	// Collect affected regions and take them offline.
	var affected []RegionInfo
	for _, regions := range m.tables {
		for _, info := range regions {
			if m.assign[info.ID] == serverID {
				affected = append(affected, info)
				m.recovering[info.ID] = true
				delete(m.assign, info.ID)
			}
		}
	}
	listeners := append([]ServerFailureListener(nil), m.listeners...)
	gate := m.gate
	m.mu.Unlock()

	// Hook 1: notify the recovery manager before region recovery begins.
	for _, l := range listeners {
		l.OnServerFailure(serverID, affected)
	}

	// Promotion-first failover: a region with a live, caught-up follower
	// skips WAL splitting entirely — the follower already holds every
	// quorum-acknowledged write and is promoted in place at a fresh epoch.
	// Regions without a promotable follower fall back to the WAL-split
	// reassignment path below.
	var (
		fallbackMu sync.Mutex
		fallback   []RegionInfo
	)
	var wg sync.WaitGroup
	for _, info := range affected {
		wg.Add(1)
		go func(info RegionInfo) {
			defer wg.Done()
			if !m.promoteViaReplica(info, serverID, gate) {
				fallbackMu.Lock()
				fallback = append(fallback, info)
				fallbackMu.Unlock()
			}
		}(info)
	}
	wg.Wait()

	if len(fallback) > 0 {
		// Split the dead server's WAL by region (only durable, i.e. synced,
		// entries exist on the DFS — the unsynced tail died with the server).
		edits := m.splitWAL(serverID)

		// Reassign and reopen each affected region; regions recover in
		// parallel (paper §3.2: "different regions can be assigned to
		// different servers leading to parallel recovery").
		for _, info := range fallback {
			wg.Add(1)
			go func(info RegionInfo) {
				defer wg.Done()
				m.reassignRegion(info, serverID, edits[info.ID], gate)
			}(info)
		}
		wg.Wait()
	}

	// The dead server may also have carried follower copies of regions
	// whose primaries are alive: refill those groups.
	m.repairFollowerLoss(serverID)

	m.failovers.Add(1)
	m.regionsPromoted.Add(int64(len(affected) - len(fallback)))
	m.regionsSplit.Add(int64(len(fallback)))
	d := time.Since(start).Nanoseconds()
	m.lastFailoverNanos.Store(d)
	m.totalFailoverNanos.Add(d)

	// Every region is back online: the failed server's recovery is
	// complete. Record it and tell the (possibly restarted) recovery
	// manager so it can retire the frozen threshold.
	m.mu.Lock()
	m.deadDone[serverID] = true
	listeners = append([]ServerFailureListener(nil), m.listeners...)
	m.mu.Unlock()
	for _, l := range listeners {
		if done, ok := l.(ServerRecoveryCompleteListener); ok {
			done.OnServerRecoveryComplete(serverID)
		}
	}
}

// RecoveredDeadServers returns failed servers whose regions have all been
// reassigned and brought back online. A restarted recovery manager uses it
// to reconcile stale checkpoint state.
func (m *Master) RecoveredDeadServers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.deadDone))
	for id := range m.deadDone {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// splitWAL reads the durable WAL of a dead server and groups its entries by
// region — HBase's log-splitting step. The grouped edits are also persisted
// as per-region "recovered edits" files, as HBase does, so the split output
// itself survives master hiccups.
func (m *Master) splitWAL(serverID string) map[string][]WALEntry {
	out := make(map[string][]WALEntry)
	// Every surviving WAL generation of the dead server, oldest first
	// (zero-padded generation numbers keep List's sort chronological).
	// Replay across generations is idempotent: entries carry their commit
	// timestamps, so versioned puts land identically in any order.
	for _, path := range m.fs.List(walPrefix(serverID)) {
		records, err := wal.ReadAll(m.fs, path)
		if err != nil && records == nil {
			continue // no durable bytes in this generation
		}
		for _, rec := range records {
			e, err := DecodeWALEntry(rec)
			if err != nil {
				continue // torn or foreign record: skip, TM-log replay covers it
			}
			out[e.RegionID] = append(out[e.RegionID], e)
		}
	}
	for regionID, entries := range out {
		path := fmt.Sprintf("/recovered/%s/%s.edits", serverID, regionID)
		w, err := wal.Create(m.fs, path)
		if err != nil {
			continue
		}
		for _, e := range entries {
			_ = w.Append(EncodeWALEntry(e))
		}
		_ = w.Sync()
		_ = w.Close()
	}
	return out
}

// reassignRegion keeps trying live servers until the region is online.
func (m *Master) reassignRegion(info RegionInfo, failedServer string, edits []WALEntry, gate RecoveryGate) {
	for {
		select {
		case <-m.stop:
			return
		default:
		}
		m.mu.Lock()
		rec, err := m.pickServerLocked()
		m.mu.Unlock()
		if err != nil {
			time.Sleep(m.cfg.CheckInterval)
			continue
		}
		var preOnline func() error
		if gate != nil {
			host := rec.host
			preOnline = func() error { return gate.RecoverRegion(info, failedServer, host) }
		}
		if err := rec.host.OpenRegion(info, edits, preOnline); err != nil {
			// Chosen server may itself have died; try another.
			time.Sleep(m.cfg.CheckInterval)
			continue
		}
		m.mu.Lock()
		m.assign[info.ID] = rec.host.ID()
		delete(m.recovering, info.ID)
		m.mu.Unlock()
		// A reassigned primary gets a fresh epoch: stale follower copies
		// re-anchor on the new incarnation's checkpoint stream.
		m.ensureReplicated(info, rec.host.ID(), true)
		return
	}
}
