package kvstore

import (
	"fmt"
	"testing"
)

// sumCharges walks the LRU and returns the total recorded charge and total
// live data length — the two quantities exact accounting keeps equal to
// used.
func sumCharges(c *BlockCache) (charges, data int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		charges += ent.charge
		data += len(ent.data)
	}
	return charges, data
}

// TestBlockCacheChargeExact drives admissions, overwrites (including
// size-changing ones, the decompressed-size case), evictions, and file
// invalidations, asserting after every step that used is neither over- nor
// under-charged relative to the entries actually resident.
func TestBlockCacheChargeExact(t *testing.T) {
	c := NewBlockCache(10000)

	check := func(step string) {
		t.Helper()
		charges, data := sumCharges(c)
		if c.Used() != charges {
			t.Fatalf("%s: used=%d but live charges sum to %d (%+d drift)", step, c.Used(), charges, c.Used()-charges)
		}
		if c.Used() != data {
			t.Fatalf("%s: used=%d but live data sums to %d", step, c.Used(), data)
		}
		if c.Used() < 0 {
			t.Fatalf("%s: used went negative: %d", step, c.Used())
		}
	}

	// Admit blocks for three files.
	for fi := 0; fi < 3; fi++ {
		for b := 0; b < 8; b++ {
			c.Put(blockCacheKey(fmt.Sprintf("/f%d", fi), b), make([]byte, 100+10*b))
			check("admit")
		}
	}

	// Overwrite with different sizes: grow and shrink.
	c.Put(blockCacheKey("/f0", 0), make([]byte, 500))
	check("grow overwrite")
	c.Put(blockCacheKey("/f0", 0), make([]byte, 7))
	check("shrink overwrite")

	// Force evictions.
	for b := 0; b < 30; b++ {
		c.Put(blockCacheKey("/big", b), make([]byte, 400))
		check("evicting admit")
	}

	// Invalidate a file whose blocks are partly evicted, partly live, and
	// partly never cached (count past the admitted range).
	before := c.Used()
	c.InvalidateFile("/f1", 16)
	check("invalidate")
	if c.Used() > before {
		t.Fatalf("invalidate increased used: %d -> %d", before, c.Used())
	}

	// Invalidating the same file again must reclaim nothing.
	before = c.Used()
	c.InvalidateFile("/f1", 16)
	check("re-invalidate")
	if c.Used() != before {
		t.Fatalf("double invalidate changed used: %d -> %d", before, c.Used())
	}

	// Invalidate everything that could remain; the cache must return to
	// exactly zero — any residue is an under-reclaim.
	c.InvalidateFile("/f0", 16)
	c.InvalidateFile("/f2", 16)
	c.InvalidateFile("/big", 64)
	check("drain")
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("drained cache holds used=%d len=%d", c.Used(), c.Len())
	}
}
