package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"txkv/internal/kv"
)

func TestServerRejectsMisroutedWriteSet(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	// Find a server and a row it does NOT host.
	hostA := hostFor(t, ts, "t", "a")
	hostZ := hostFor(t, ts, "t", "z")
	if hostA == hostZ {
		t.Skip("both regions on one server; routing can't misfire")
	}
	ws := writeSet("c", 1, "t", "z")
	if err := hostA.ApplyWriteSet(ws, 0, false); !errors.Is(err, ErrRegionNotServing) {
		t.Fatalf("misrouted write: %v", err)
	}
	// Nothing applied on either server.
	if _, found, _ := hostZ.Get("t", "z", "f", kv.MaxTimestamp); found {
		t.Fatal("misrouted write leaked")
	}
}

func TestServerOperationsAfterCrash(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	srv := hostFor(t, ts, "t", "a")
	srv.Crash()
	if err := srv.ApplyWriteSet(writeSet("c", 1, "t", "a"), 0, false); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("apply after crash: %v", err)
	}
	if _, _, err := srv.Get("t", "a", "f", kv.MaxTimestamp); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("get after crash: %v", err)
	}
	if _, err := srv.Scan("t", kv.KeyRange{}, kv.MaxTimestamp, 0); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("scan after crash: %v", err)
	}
	if err := srv.SyncWAL(); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("sync after crash: %v", err)
	}
	if err := srv.OpenRegion(RegionInfo{ID: "x", Table: "t"}, nil, nil); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("open after crash: %v", err)
	}
	if _, err := srv.CloseAndFlushRegion("anything"); !errors.Is(err, ErrServerStopped) {
		t.Fatalf("close-and-flush after crash: %v", err)
	}
	if !srv.Crashed() {
		t.Fatal("Crashed() = false")
	}
	// Idempotent crash.
	srv.Crash()
}

func TestCloseAndFlushUnknownRegion(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if _, err := ts.srvs[0].CloseAndFlushRegion("nope"); !errors.Is(err, ErrRegionNotServing) {
		t.Fatalf("unknown region: %v", err)
	}
}

func TestAutomaticMemstoreFlush(t *testing.T) {
	fs := newTestStore(t, 1, false).fs
	srv := NewRegionServer(ServerConfig{
		ID:                 "auto-flush",
		MemstoreFlushBytes: 2048,
		FlushCheckInterval: 10 * time.Millisecond,
		WALSyncInterval:    10 * time.Millisecond,
	}, fs)
	master := NewMaster(MasterConfig{HeartbeatTimeout: time.Hour}, fs)
	master.Start()
	defer master.Stop()
	if err := master.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := master.CreateTable("af", nil); err != nil {
		t.Fatal(err)
	}
	// Write enough to exceed the flush threshold.
	for i := 0; i < 50; i++ {
		ws := kv.WriteSet{TxnID: uint64(i), ClientID: "c", CommitTS: kv.Timestamp(i + 1)}
		ws.Updates = append(ws.Updates, kv.Update{
			Table: "af", Row: kv.Key(fmt.Sprintf("row%03d", i)), Column: "f",
			Value: make([]byte, 100),
		})
		if err := srv.ApplyWriteSet(ws, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		if len(fs.List("/data/af/")) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("memstore never auto-flushed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestAutomaticCompaction(t *testing.T) {
	fs := newTestStore(t, 1, false).fs
	srv := NewRegionServer(ServerConfig{
		ID:                  "auto-compact",
		MemstoreFlushBytes:  512,
		FlushCheckInterval:  5 * time.Millisecond,
		WALSyncInterval:     10 * time.Millisecond,
		CompactionThreshold: 3,
	}, fs)
	master := NewMaster(MasterConfig{HeartbeatTimeout: time.Hour}, fs)
	master.Start()
	defer master.Stop()
	if err := master.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	if err := master.CreateTable("ac", nil); err != nil {
		t.Fatal(err)
	}
	// Many small writes => many flushes => compaction keeps file count low.
	for i := 0; i < 200; i++ {
		ws := kv.WriteSet{TxnID: uint64(i), ClientID: "c", CommitTS: kv.Timestamp(i + 1)}
		ws.Updates = append(ws.Updates, kv.Update{
			Table: "ac", Row: kv.Key(fmt.Sprintf("row%03d", i%20)), Column: "f",
			Value: make([]byte, 64),
		})
		if err := srv.ApplyWriteSet(ws, 0, false); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		regions := srv.hostedRegions()
		if len(regions) == 1 && regions[0].Files() <= 4 && regions[0].Files() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never bounded files: %d", regions[0].Files())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// All newest versions still readable.
	for i := 0; i < 20; i++ {
		row := kv.Key(fmt.Sprintf("row%03d", i))
		if _, found, err := srv.Get("ac", row, "f", kv.MaxTimestamp); err != nil || !found {
			t.Fatalf("row %s lost after auto-compaction: %v %v", row, found, err)
		}
	}
}

func TestScanLimitAtServer(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	rows := make([]string, 20)
	for i := range rows {
		rows[i] = fmt.Sprintf("row%02d", i)
	}
	if err := c.Flush(ctx, writeSet("c1", 1, "t", rows...), 0, false); err != nil {
		t.Fatal(err)
	}
	got, err := c.Scan(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, 7)
	if err != nil || len(got) != 7 {
		t.Fatalf("limited scan: %d %v", len(got), err)
	}
}

func TestServerStopIsClean(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 5, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	host := hostFor(t, ts, "t", "a")
	host.Stop() // clean: WAL synced first
	ts.net.SetDown(host.ID(), true)
	// After reassignment, the write is durable via the WAL even though
	// Stop (not Crash) was used and no recovery middleware exists here.
	waitLocated(t, ts, "t", "a", host.ID())
	got, found, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v5-a" {
		t.Fatalf("after clean stop: %q %v %v", got.Value, found, err)
	}
}
