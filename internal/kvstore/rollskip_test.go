package kvstore

import (
	"context"
	"strings"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/netsim"
)

// newRollStore builds a one-server store whose roll threshold is set
// before the server starts (mutating ServerConfig after Start would race
// the background loops).
func newRollStore(t *testing.T, rollMin int, rec *metrics.ReclaimMetrics) (*testStore, *RegionServer) {
	t.Helper()
	fs := dfs.New(dfs.Config{Replication: 2, DataNodes: 2})
	net := netsim.New(netsim.Config{})
	master := NewMaster(MasterConfig{
		HeartbeatTimeout: 200 * time.Millisecond,
		CheckInterval:    20 * time.Millisecond,
	}, fs)
	master.Start()
	srv := NewRegionServer(ServerConfig{
		ID:                "server-0",
		WALSyncInterval:   20 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		RollFlushMinBytes: rollMin,
		Reclaim:           rec,
	}, fs)
	if err := master.AddServer(srv); err != nil {
		t.Fatal(err)
	}
	ts := &testStore{fs: fs, net: net, master: master, srvs: []*RegionServer{srv}}
	t.Cleanup(func() {
		master.Stop()
		if !srv.Crashed() {
			srv.Stop()
		}
	})
	return ts, srv
}

// TestRollWALSkipsIdleRegionFlush: with a dirty-bytes threshold, a WAL roll
// leaves a mostly-idle region's memstore alone (no tiny store file); the
// edits are carried into the fresh generation, the old generations are
// still deleted, and the carried edits stay durable — the master's log
// split recovers them.
func TestRollWALSkipsIdleRegionFlush(t *testing.T) {
	rec := &metrics.ReclaimMetrics{}
	ts, srv := newRollStore(t, 1<<20, rec) // everything below 1 MiB skips
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 5, "t", "a", "b"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	if err := srv.RollWAL(); err != nil {
		t.Fatal(err)
	}
	r := hostRegion(t, srv, "t", "a")
	if n := r.Files(); n != 0 {
		t.Fatalf("skipped region flushed %d store files", n)
	}
	if got := rec.Snapshot().FlushesSkipped; got != 1 {
		t.Fatalf("FlushesSkipped = %d, want 1", got)
	}
	// Old generations gone, exactly the current one remains.
	gens := ts.fs.List(walPrefix(srv.ID()))
	if len(gens) != 1 || !strings.Contains(gens[0], "00000001") {
		t.Fatalf("WAL generations after roll: %v", gens)
	}
	// The carried edits are durable in the new generation: a crash + log
	// split must recover them even though no store file was written.
	srv.Crash()
	edits := ts.master.splitWAL(srv.ID())
	found := map[string]bool{}
	for _, es := range edits {
		for _, e := range es {
			for _, kv := range e.KVs {
				found[string(kv.Row)] = true
			}
		}
	}
	if !found["a"] || !found["b"] {
		t.Fatalf("carried edits not recoverable from new WAL generation: %v", found)
	}
}

// TestRollWALFlushesPastThreshold: a region at or above the threshold still
// flushes on roll, exactly as before.
func TestRollWALFlushesPastThreshold(t *testing.T) {
	ts, srv := newRollStore(t, 1, nil) // everything is "big enough"
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	if err := c.Flush(context.Background(), writeSet("c1", 5, "t", "a", "b"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := srv.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	if err := srv.RollWAL(); err != nil {
		t.Fatal(err)
	}
	if n := hostRegion(t, srv, "t", "a").Files(); n != 1 {
		t.Fatalf("store files after roll = %d, want 1", n)
	}
}

func hostRegion(t *testing.T, srv *RegionServer, table string, row kv.Key) *Region {
	t.Helper()
	r, ok := srv.findRegion(table, row, true)
	if !ok {
		t.Fatalf("server %s does not host %s/%s", srv.ID(), table, row)
	}
	return r
}

// TestUnlinkInvalidatesBlockCache: compaction inputs drop out of the block
// cache the moment they are unlinked, instead of lingering until LRU
// eviction.
func TestUnlinkInvalidatesBlockCache(t *testing.T) {
	r, _ := buildRegionWithFiles(t, 3, 50)
	cache := r.cache
	// Warm the cache over every file.
	if _, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0); err != nil {
		t.Fatal(err)
	}
	if cache.Len() == 0 {
		t.Fatal("scan did not warm the block cache")
	}
	// No readers in flight: Compact retires and unlinks its inputs inline;
	// it reads the inputs through the cache, so without invalidation the
	// cache would end full of dead blocks.
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	if n := cache.Len(); n != 0 {
		t.Fatalf("block cache holds %d blocks of unlinked store files", n)
	}
	// Reads repopulate it from the merged file only.
	if _, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0); err != nil {
		t.Fatal(err)
	}
	if n, files := cache.Len(), r.Files(); files != 1 || n == 0 {
		t.Fatalf("cache after re-read: %d blocks, %d files", n, files)
	}
}
