package kvstore

import (
	"encoding/binary"
	"fmt"

	"txkv/internal/kv"
)

// WALEntry is one record in a region server's write-ahead log: a batch of
// versioned cells destined for a single region. Tagging entries with the
// region ID is what lets the master split a dead server's log by region
// during recovery (HBase's log-splitting step, paper §2.1).
type WALEntry struct {
	RegionID string
	KVs      []kv.KeyValue
}

// EncodeWALEntry returns the binary encoding of e.
func EncodeWALEntry(e WALEntry) []byte {
	b := make([]byte, 0, 32+64*len(e.KVs))
	b = binary.AppendUvarint(b, uint64(len(e.RegionID)))
	b = append(b, e.RegionID...)
	b = binary.AppendUvarint(b, uint64(len(e.KVs)))
	for _, x := range e.KVs {
		b = kv.AppendKeyValue(b, x)
	}
	return b
}

// DecodeWALEntry decodes an entry produced by EncodeWALEntry.
func DecodeWALEntry(b []byte) (WALEntry, error) {
	var e WALEntry
	n, c := binary.Uvarint(b)
	if c <= 0 || uint64(len(b)) < uint64(c)+n {
		return e, fmt.Errorf("kvstore: wal entry: %w", kv.ErrCodecTruncated)
	}
	e.RegionID = string(b[c : uint64(c)+n])
	b = b[uint64(c)+n:]
	count, c := binary.Uvarint(b)
	if c <= 0 {
		return e, fmt.Errorf("kvstore: wal entry: %w", kv.ErrCodecTruncated)
	}
	b = b[c:]
	e.KVs = make([]kv.KeyValue, 0, count)
	for i := uint64(0); i < count; i++ {
		var x kv.KeyValue
		var err error
		x, b, err = kv.DecodeKeyValue(b)
		if err != nil {
			return e, fmt.Errorf("kvstore: wal entry kv %d: %w", i, err)
		}
		e.KVs = append(e.KVs, x)
	}
	return e, nil
}
