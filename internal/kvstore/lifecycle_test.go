package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/storage"
)

// TestCompactRetiresInputsAfterDrain: with no readers in flight, compaction
// inputs are unlinked before Compact returns (the old view drains inline);
// the retirement counters record it.
func TestCompactRetiresInputsAfterDrain(t *testing.T) {
	r, fs := buildRegionWithFiles(t, 4, 20)
	rec := &metrics.ReclaimMetrics{}
	r.reclaim = rec
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	var sf, tmp int
	for _, p := range fs.List("/data/t/t-r000/") {
		switch {
		case strings.HasSuffix(p, tmpSuffix):
			tmp++
		case strings.HasSuffix(p, ".sf"):
			sf++
		}
	}
	if sf != 1 || tmp != 0 {
		t.Fatalf("after compaction: %d store files, %d tmp files; want 1, 0", sf, tmp)
	}
	snap := rec.Snapshot()
	if snap.FilesRetired != 4 || snap.BytesRetired == 0 || snap.Compactions != 1 {
		t.Fatalf("reclaim counters: %+v", snap)
	}
}

// TestCompactDefersDeletionUntilReaderDrains: a reader holding the
// pre-compaction view keeps the input files on the filesystem until it
// releases; only then are they unlinked.
func TestCompactDefersDeletionUntilReaderDrains(t *testing.T) {
	r, fs := buildRegionWithFiles(t, 3, 10)
	dir := "/data/t/t-r000/"
	before := len(fs.List(dir))

	v := r.acquireView() // a slow reader pinning the current view
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	// New view is live (one merged file) but the inputs must still exist:
	// the pinned view may still be streaming them.
	if r.Files() != 1 {
		t.Fatalf("view files = %d, want 1", r.Files())
	}
	if got := len(fs.List(dir)); got != before+1 {
		t.Fatalf("inputs deleted while a reader held the old view: %d files, want %d", got, before+1)
	}
	// The pinned view still reads consistently.
	for _, f := range v.files {
		if _, _, err := f.Get(kv.Key("row000"), "f", kv.MaxTimestamp, nil); err != nil {
			t.Fatalf("pinned view read: %v", err)
		}
	}
	r.releaseView(v)
	if got := len(fs.List(dir)); got != 1 {
		t.Fatalf("inputs not unlinked after drain: %d files, want 1", got)
	}
}

// TestWriteStoreFileTornOutputInvisible: a store-file write that crashes
// before its publishing rename leaves only a *.tmp orphan — the region
// reopens cleanly, sweeps the orphan, and a later flush reuses the
// sequence without colliding.
func TestWriteStoreFileTornOutputInvisible(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "torn-r000", Table: "t", Range: kv.KeyRange{}}
	r, err := OpenRegion(fs, nil, info)
	if err != nil {
		t.Fatal(err)
	}
	r.Apply([]kv.KeyValue{mkKV("rowA", "f", 1, "v1")})
	if err := r.Flush(0); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash window: a half-written store file at the
	// temporary name (footerless garbage — it would fail to open).
	dir := dataDir(info.Table, info.ID)
	torn := dir + "00000007.sf" + tmpSuffix
	w, err := fs.Create(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(bytes.Repeat([]byte("garbage"), 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()

	r2, err := OpenRegion(fs, nil, info)
	if err != nil {
		t.Fatalf("reopen with torn tmp file: %v", err)
	}
	if fs.Exists(torn) {
		t.Fatal("torn tmp file not swept at region open")
	}
	got, found, err := r2.Get(kv.Key("rowA"), "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v1" {
		t.Fatalf("data after torn-output recovery: %v %v %q", found, err, got.Value)
	}
	r2.Apply([]kv.KeyValue{mkKV("rowB", "f", 2, "v2")})
	if err := r2.Flush(0); err != nil {
		t.Fatalf("flush after sweep: %v", err)
	}
}

// TestLifecyclePropertyNoReaderErrors is the PR's headline property test:
// interleaved ScanRange/Get readers must never observe an error while both
// reclamation paths — store-file compaction and DFS log compaction — run
// continuously. Run under -race this also proves the refcount protocol is
// data-race free.
func TestLifecyclePropertyNoReaderErrors(t *testing.T) {
	backends := map[string]*storage.MemBackend{}
	var bmu sync.Mutex
	fs, err := dfs.Open(dfs.Config{
		DataNodes:   2,
		Replication: 2,
		OpenLog: func(name string) (*storage.Log, error) {
			bmu.Lock()
			be, ok := backends[name]
			if !ok {
				be = storage.NewMemBackend()
				backends[name] = be
			}
			bmu.Unlock()
			return storage.Open(storage.Config{Backend: be, SegmentBytes: 4096})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()

	r, err := OpenRegion(fs, NewBlockCache(1<<20), RegionInfo{ID: "prop-r000", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		t.Fatal(err)
	}
	r.reclaim = &metrics.ReclaimMetrics{}

	const rows = 80
	// Seed every row so readers always have something to find.
	for i := 0; i < rows; i++ {
		r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("r%03d", i), "f", 1, "seed")})
	}
	if err := r.Flush(512); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var ts atomic.Int64
	ts.Store(1)

	// Writer: continuous overwrites, so compaction always has work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := ts.Add(1)
			r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("r%03d", i%rows), "f", kv.Timestamp(n), "v")})
			i++
		}
	}()

	// Compactor: flush + store-file compaction + DFS log compaction, back
	// to back, for the whole test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Flush(512); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			if err := r.Compact(512, 0); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			if _, err := fs.CompactLogs(); err != nil {
				t.Errorf("compact logs: %v", err)
				return
			}
		}
	}()

	// Readers: the property under test — zero errors, and every seeded row
	// always readable.
	const readers = 3
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				row := kv.Key(fmt.Sprintf("r%03d", i%rows))
				if _, found, err := r.Get(row, "f", kv.MaxTimestamp); err != nil {
					t.Errorf("reader %d: Get(%s): %v", g, row, err)
					return
				} else if !found {
					t.Errorf("reader %d: Get(%s): row vanished", g, row)
					return
				}
				if i%16 == 0 {
					got, err := r.ScanRange(kv.KeyRange{Start: "r010", End: "r050"}, kv.MaxTimestamp, 0)
					if err != nil {
						t.Errorf("reader %d: scan: %v", g, err)
						return
					}
					if len(got) != 40 {
						t.Errorf("reader %d: scan saw %d rows, want 40", g, len(got))
						return
					}
				}
				i++
			}
		}(g)
	}

	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()

	// The view must have converged to one file per quiesced compaction and
	// retirement must actually have happened.
	if err := r.Compact(512, 0); err != nil {
		t.Fatal(err)
	}
	if snap := r.reclaim.Snapshot(); snap.FilesRetired == 0 {
		t.Fatalf("no store files retired during the run: %+v", snap)
	}
}
