package kvstore

import (
	"fmt"

	"txkv/internal/kv"
)

// Compaction merges a region's store files into one, like HBase's (minor)
// compaction: reads fan out over fewer files afterwards. All versions are
// retained up to VersionHorizon — snapshot reads above the horizon remain
// exact; the horizon lets steady-state storage stay bounded (the analogue of
// HBase's TTL/max-versions GC). A horizon of 0 retains everything.

// Compact merges every store file of the region into a single new file.
// Versions shadowed by a newer version of the same coordinate at or below
// horizon are dropped (0 keeps all versions). Concurrent reads stay
// consistent throughout AND afterwards: the inputs are not deleted at the
// view swap but *retired* — physically unlinked only when the last read
// view referencing them drains (see viewRef), so a lock-free reader that
// loaded the previous view keeps streaming intact files.
func (r *Region) Compact(blockSize int, horizon kv.Timestamp) error {
	r.flushMu.Lock() // flushes and compactions are mutually exclusive
	defer r.flushMu.Unlock()

	v := r.acquireView()
	files := v.files
	if len(files) <= 1 {
		r.releaseView(v)
		return nil
	}
	r.mu.Lock()
	seq := r.nextSeq
	r.nextSeq++
	r.mu.Unlock()

	// Each store file is individually sorted in store order, so the k
	// files merge in one pass through the shared k-way heap: O(n log k)
	// instead of the collect-everything-and-sort O(n log n).
	runs := make([][]kv.KeyValue, 0, len(files))
	for _, f := range files {
		run, err := f.ScanRange(nil, kv.KeyRange{}, kv.MaxTimestamp, r.cache)
		if err != nil {
			r.releaseView(v)
			return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	all, err := mergeRuns(runs, horizon)
	if err != nil {
		r.releaseView(v)
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	merged, err := WriteStoreFile(r.fs, path, all, blockSize)
	if err != nil {
		r.releaseView(v)
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	compacted := make(map[*StoreFile]bool, len(files))
	for _, f := range files {
		compacted[f] = true
	}
	r.mu.Lock()
	_, old := r.swapView(func(old regionView) regionView {
		// Replace exactly the compacted inputs; files flushed meanwhile stay.
		nf := make([]*StoreFile, 0, len(old.files))
		nf = append(nf, merged)
		for _, f := range old.files {
			if !compacted[f] {
				nf = append(nf, f)
			}
		}
		old.files = nf
		return old
	})
	r.mu.Unlock()

	// Retire the inputs: deletion is deferred to the drain of the last
	// view holding them. With no concurrent readers the old view drains on
	// the releases below and the files are unlinked before Compact
	// returns; with readers in flight, the slowest reader unlinks.
	for _, f := range files {
		if f.retire() {
			r.unlinkStoreFile(f)
		}
	}
	r.releaseView(old)
	r.releaseView(v)
	r.reclaim.AddCompactions(1)
	return nil
}

// mergeRuns merges k individually sorted runs into one sorted slice in
// store order, removing exact duplicates (the same cell can appear in
// multiple files after recovery replays) and dropping versions shadowed at
// or below the horizon. Built on the same streaming merger as the region
// scan path; ties on exact cells keep the earliest run, matching the
// previous collect+sort behavior.
func mergeRuns(runs [][]kv.KeyValue, horizon kv.Timestamp) ([]kv.KeyValue, error) {
	total := 0
	iters := make([]kvIter, 0, len(runs))
	for _, r := range runs {
		total += len(r)
		iters = append(iters, &sliceIter{s: r})
	}
	out := make([]kv.KeyValue, 0, total)
	mg := newMerger(iters)
	for {
		e, ok, err := mg.next()
		if err != nil {
			// Never reached with slice-backed runs, but the merger is
			// shared with I/O-backed iterators: a partial merge must not
			// masquerade as a complete one (Compact deletes its inputs).
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if len(out) > 0 {
			prev := out[len(out)-1]
			if e.Cell == prev.Cell {
				continue // duplicate cell: keep the first (identical payload)
			}
			// Store order is ts-descending per coordinate: a previously
			// kept entry with the same (row, column) and TS <= horizon
			// shadows this one entirely for every readable snapshot.
			if horizon > 0 && prev.Row == e.Row && prev.Column == e.Column && prev.TS <= horizon {
				continue
			}
		}
		out = append(out, e)
	}
}
