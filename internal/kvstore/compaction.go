package kvstore

import (
	"container/heap"
	"fmt"

	"txkv/internal/kv"
)

// Compaction merges a region's store files into one, like HBase's (minor)
// compaction: reads fan out over fewer files afterwards. All versions are
// retained up to VersionHorizon — snapshot reads above the horizon remain
// exact; the horizon lets steady-state storage stay bounded (the analogue of
// HBase's TTL/max-versions GC). A horizon of 0 retains everything.

// Compact merges every store file of the region into a single new file.
// Versions shadowed by a newer version of the same coordinate at or below
// horizon are dropped (0 keeps all versions). Concurrent reads stay
// consistent: the old files remain readable until the swap.
func (r *Region) Compact(blockSize int, horizon kv.Timestamp) error {
	r.flushMu.Lock() // flushes and compactions are mutually exclusive
	defer r.flushMu.Unlock()

	r.mu.RLock()
	files := append([]*StoreFile(nil), r.files...)
	seq := r.nextSeq
	r.mu.RUnlock()
	if len(files) <= 1 {
		return nil
	}

	// Each store file is individually sorted in store order, so the k
	// files merge in one pass through a k-way heap: O(n log k) instead of
	// the collect-everything-and-sort O(n log n).
	runs := make([][]kv.KeyValue, 0, len(files))
	for _, f := range files {
		run, err := f.ScanRange(nil, kv.KeyRange{}, kv.MaxTimestamp, r.cache)
		if err != nil {
			return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	all := mergeRuns(runs, horizon)

	r.mu.Lock()
	r.nextSeq = seq + 1
	r.mu.Unlock()
	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	merged, err := WriteStoreFile(r.fs, path, all, blockSize)
	if err != nil {
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	r.mu.Lock()
	// Replace exactly the compacted inputs; files flushed meanwhile stay.
	keep := r.files[:0:0]
	compacted := make(map[*StoreFile]bool, len(files))
	for _, f := range files {
		compacted[f] = true
	}
	for _, f := range r.files {
		if !compacted[f] {
			keep = append(keep, f)
		}
	}
	r.files = append([]*StoreFile{merged}, keep...)
	r.mu.Unlock()

	for _, f := range files {
		if f.refMarker != "" {
			// Referenced parent file: another daughter may still read it.
			// Drop only our reference marker; the shared file itself is
			// retired when no references remain (left to an external
			// janitor, as in HBase).
			_ = r.fs.Delete(f.refMarker)
			continue
		}
		_ = r.fs.Delete(f.Path())
	}
	return nil
}

// runHeap is a min-heap over the heads of k sorted runs, ordered by cell
// (ties broken by run index so the earliest run pops first — "keep the
// first" for exact duplicates matches the previous collect+sort behavior).
type runHeap struct {
	runs  [][]kv.KeyValue
	heads []int // heap of run indices; runs[i][cursor[i]] is i's head
	cur   []int
}

func (h *runHeap) Len() int { return len(h.heads) }

func (h *runHeap) Less(a, b int) bool {
	i, j := h.heads[a], h.heads[b]
	c := kv.CompareCells(h.runs[i][h.cur[i]].Cell, h.runs[j][h.cur[j]].Cell)
	if c != 0 {
		return c < 0
	}
	return i < j
}

func (h *runHeap) Swap(a, b int) { h.heads[a], h.heads[b] = h.heads[b], h.heads[a] }

func (h *runHeap) Push(x any) { h.heads = append(h.heads, x.(int)) }

func (h *runHeap) Pop() any {
	x := h.heads[len(h.heads)-1]
	h.heads = h.heads[:len(h.heads)-1]
	return x
}

// mergeRuns merges k individually sorted runs into one sorted slice in
// store order, removing exact duplicates (the same cell can appear in
// multiple files after recovery replays) and dropping versions shadowed at
// or below the horizon.
func mergeRuns(runs [][]kv.KeyValue, horizon kv.Timestamp) []kv.KeyValue {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]kv.KeyValue, 0, total)
	h := &runHeap{runs: runs, cur: make([]int, len(runs))}
	for i, r := range runs {
		if len(r) > 0 {
			h.heads = append(h.heads, i)
		}
	}
	heap.Init(h)
	for h.Len() > 0 {
		i := h.heads[0]
		e := runs[i][h.cur[i]]
		h.cur[i]++
		if h.cur[i] < len(runs[i]) {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}

		if len(out) > 0 {
			prev := out[len(out)-1]
			if e.Cell == prev.Cell {
				continue // duplicate cell: keep the first (identical payload)
			}
			// Store order is ts-descending per coordinate: a previously
			// kept entry with the same (row, column) and TS <= horizon
			// shadows this one entirely for every readable snapshot.
			if horizon > 0 && prev.Row == e.Row && prev.Column == e.Column && prev.TS <= horizon {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}
