package kvstore

import (
	"fmt"
	"sort"

	"txkv/internal/kv"
)

// Compaction merges store files into one, like HBase's (minor) compaction:
// reads fan out over fewer files afterwards. All versions are retained up to
// VersionHorizon — snapshot reads above the horizon remain exact; the
// horizon lets steady-state storage stay bounded (the analogue of HBase's
// TTL/max-versions GC). A horizon of 0 retains everything.
//
// Two entry points share one core. Compact is the major compaction: every
// file merges into one (explicit calls, tests, split localization). The
// background path uses CompactTiered, which picks a subset worth rewriting:
// size-tiered selection avoids re-copying a region's large old files every
// time a few small flushes accumulate on top of them — write amplification
// stays proportional to the small files actually merged.

const (
	// tierRatio bounds a size tier: files within this factor of the tier's
	// smallest member compact together.
	tierRatio = 4

	// tierMinFiles is the minimum tier size worth a rewrite on its own.
	tierMinFiles = 2
)

// selectCompactionInputs picks which of the region's files to compact: the
// must-rewrite set (files below the region's configured write format
// awaiting the upgrade and split-reference files awaiting localization)
// plus the largest tier of size-similar owned current-format files. Returns
// nil when no rewrite is warranted. targetVersion is the format the region
// writes (a v1-configured region does not treat its own v1 files as stale —
// otherwise every round would be a major compaction that converges nowhere).
func selectCompactionInputs(files []*StoreFile, targetVersion int) []*StoreFile {
	var must, rest []*StoreFile
	for _, f := range files {
		if f.version < targetVersion || f.refMarker != "" {
			must = append(must, f)
		} else {
			rest = append(rest, f)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].size < rest[j].size })
	// Largest window of size-similar files: every member within tierRatio
	// of the window's smallest. Ties prefer the smaller files (cheaper
	// rewrite for the same fan-in reduction).
	bestI, bestN := 0, 0
	for i, j := 0, 0; i < len(rest); i++ {
		if j < i {
			j = i
		}
		floor := rest[i].size
		if floor < 1 {
			floor = 1
		}
		for j < len(rest) && rest[j].size <= floor*tierRatio {
			j++
		}
		if j-i > bestN {
			bestI, bestN = i, j-i
		}
	}
	if bestN < tierMinFiles {
		bestN = 0
	}
	if len(must) == 0 && bestN == 0 {
		return nil
	}
	out := append([]*StoreFile(nil), must...)
	out = append(out, rest[bestI:bestI+bestN]...)
	if len(out) < tierMinFiles && len(must) == 0 {
		return nil
	}
	return out
}

// Compact merges every store file of the region into a single new file
// (major compaction). Versions shadowed by a newer version of the same
// coordinate at or below horizon are dropped (0 keeps all versions).
func (r *Region) Compact(blockSize int, horizon kv.Timestamp) error {
	r.flushMu.Lock() // flushes and compactions are mutually exclusive
	defer r.flushMu.Unlock()

	v := r.acquireView()
	if len(v.files) <= 1 {
		r.releaseView(v)
		return nil
	}
	return r.compactFiles(v, v.files, blockSize, horizon)
}

// CompactTiered runs one round of size-tiered compaction: legacy-format and
// split-reference files plus the largest tier of size-similar files merge
// into one new v2 file; everything else is left alone. Reports whether a
// rewrite happened.
func (r *Region) CompactTiered(blockSize int, horizon kv.Timestamp) (bool, error) {
	r.flushMu.Lock()
	defer r.flushMu.Unlock()

	v := r.acquireView()
	inputs := selectCompactionInputs(v.files, r.targetStoreFileVersion())
	if len(inputs) == 0 {
		r.releaseView(v)
		return false, nil
	}
	if err := r.compactFiles(v, inputs, blockSize, horizon); err != nil {
		return false, err
	}
	return true, nil
}

// compactFiles merges the given input files (a subset of v's files) into one
// new store file and swaps it into the view in their place. Concurrent reads
// stay consistent throughout AND afterwards: the inputs are not deleted at
// the view swap but *retired* — physically unlinked only when the last read
// view referencing them drains (see viewRef), so a lock-free reader that
// loaded the previous view keeps streaming intact files. Takes ownership of
// the caller's reference on v; caller holds flushMu.
func (r *Region) compactFiles(v *viewRef, files []*StoreFile, blockSize int, horizon kv.Timestamp) error {
	r.mu.Lock()
	seq := r.nextSeq
	r.nextSeq++
	r.mu.Unlock()

	// Each store file is individually sorted in store order, so the k
	// files merge in one pass through the shared k-way heap: O(n log k)
	// instead of the collect-everything-and-sort O(n log n). Reads are
	// clipped to the region's own range: a split daughter serving a shared
	// parent file through a reference copies only its half, localizing the
	// data so the reference (and eventually the parent) can be dropped.
	runs := make([][]kv.KeyValue, 0, len(files))
	for _, f := range files {
		run, err := f.ScanRange(nil, r.Info.Range, kv.MaxTimestamp, r.cache)
		if err != nil {
			r.releaseView(v)
			return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
		}
		if len(run) > 0 {
			runs = append(runs, run)
		}
	}
	all, err := mergeRuns(runs, horizon)
	if err != nil {
		r.releaseView(v)
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	merged, err := WriteStoreFileWith(r.fs, path, all, r.writeOpts(blockSize))
	if err != nil {
		r.releaseView(v)
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	compacted := make(map[*StoreFile]bool, len(files))
	for _, f := range files {
		compacted[f] = true
	}
	r.mu.Lock()
	_, old := r.swapView(func(old regionView) regionView {
		// Replace exactly the compacted inputs; files flushed meanwhile stay.
		nf := make([]*StoreFile, 0, len(old.files))
		nf = append(nf, merged)
		for _, f := range old.files {
			if !compacted[f] {
				nf = append(nf, f)
			}
		}
		old.files = nf
		return old
	})
	r.mu.Unlock()

	// Retire the inputs: deletion is deferred to the drain of the last
	// view holding them. With no concurrent readers the old view drains on
	// the releases below and the files are unlinked before compactFiles
	// returns; with readers in flight, the slowest reader unlinks.
	for _, f := range files {
		if f.retire() {
			r.unlinkStoreFile(f)
		}
	}
	r.releaseView(old)
	r.releaseView(v)
	r.reclaim.AddCompactions(1)
	return nil
}

// mergeRuns merges k individually sorted runs into one sorted slice in
// store order, removing exact duplicates (the same cell can appear in
// multiple files after recovery replays) and dropping versions shadowed at
// or below the horizon. Built on the same streaming merger as the region
// scan path; ties on exact cells keep the earliest run, matching the
// previous collect+sort behavior.
func mergeRuns(runs [][]kv.KeyValue, horizon kv.Timestamp) ([]kv.KeyValue, error) {
	total := 0
	iters := make([]kvIter, 0, len(runs))
	for _, r := range runs {
		total += len(r)
		iters = append(iters, &sliceIter{s: r})
	}
	out := make([]kv.KeyValue, 0, total)
	mg := newMerger(iters)
	for {
		e, ok, err := mg.next()
		if err != nil {
			// Never reached with slice-backed runs, but the merger is
			// shared with I/O-backed iterators: a partial merge must not
			// masquerade as a complete one (Compact deletes its inputs).
			return nil, err
		}
		if !ok {
			return out, nil
		}
		if len(out) > 0 {
			prev := out[len(out)-1]
			if e.Cell == prev.Cell {
				continue // duplicate cell: keep the first (identical payload)
			}
			// Store order is ts-descending per coordinate: a previously
			// kept entry with the same (row, column) and TS <= horizon
			// shadows this one entirely for every readable snapshot.
			if horizon > 0 && prev.Row == e.Row && prev.Column == e.Column && prev.TS <= horizon {
				continue
			}
		}
		out = append(out, e)
	}
}
