package kvstore

import (
	"fmt"
	"sort"

	"txkv/internal/kv"
)

// Compaction merges a region's store files into one, like HBase's (minor)
// compaction: reads fan out over fewer files afterwards. All versions are
// retained up to VersionHorizon — snapshot reads above the horizon remain
// exact; the horizon lets steady-state storage stay bounded (the analogue of
// HBase's TTL/max-versions GC). A horizon of 0 retains everything.

// Compact merges every store file of the region into a single new file.
// Versions shadowed by a newer version of the same coordinate at or below
// horizon are dropped (0 keeps all versions). Concurrent reads stay
// consistent: the old files remain readable until the swap.
func (r *Region) Compact(blockSize int, horizon kv.Timestamp) error {
	r.flushMu.Lock() // flushes and compactions are mutually exclusive
	defer r.flushMu.Unlock()

	r.mu.RLock()
	files := append([]*StoreFile(nil), r.files...)
	seq := r.nextSeq
	r.mu.RUnlock()
	if len(files) <= 1 {
		return nil
	}

	// Gather every entry from every file. Files are individually sorted;
	// a simple merge via collect+sort keeps the code obvious at simulator
	// scale.
	var all []kv.KeyValue
	for _, f := range files {
		var err error
		all, err = f.ScanRange(all, kv.KeyRange{}, kv.MaxTimestamp, r.cache)
		if err != nil {
			return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
		}
	}
	all = sortAndGC(all, horizon)

	r.mu.Lock()
	r.nextSeq = seq + 1
	r.mu.Unlock()
	path := fmt.Sprintf("%s%08d.sf", dataDir(r.Info.Table, r.Info.ID), seq)
	merged, err := WriteStoreFile(r.fs, path, all, blockSize)
	if err != nil {
		return fmt.Errorf("compact region %s: %w", r.Info.ID, err)
	}

	r.mu.Lock()
	// Replace exactly the compacted inputs; files flushed meanwhile stay.
	keep := r.files[:0:0]
	compacted := make(map[*StoreFile]bool, len(files))
	for _, f := range files {
		compacted[f] = true
	}
	for _, f := range r.files {
		if !compacted[f] {
			keep = append(keep, f)
		}
	}
	r.files = append([]*StoreFile{merged}, keep...)
	r.mu.Unlock()

	for _, f := range files {
		if f.refMarker != "" {
			// Referenced parent file: another daughter may still read it.
			// Drop only our reference marker; the shared file itself is
			// retired when no references remain (left to an external
			// janitor, as in HBase).
			_ = r.fs.Delete(f.refMarker)
			continue
		}
		_ = r.fs.Delete(f.Path())
	}
	return nil
}

// sortAndGC sorts entries into store order, removes exact duplicates (the
// same cell can appear in multiple files after recovery replays), and drops
// versions shadowed at or below the horizon.
func sortAndGC(entries []kv.KeyValue, horizon kv.Timestamp) []kv.KeyValue {
	sortEntries(entries)
	out := entries[:0]
	for i, e := range entries {
		if i > 0 && e.Cell == entries[i-1].Cell {
			continue // duplicate cell: keep the first (identical payload)
		}
		// Store order is ts-descending per coordinate: a previous kept
		// entry with the same (row, column) and TS <= horizon shadows
		// this one entirely for every readable snapshot.
		if horizon > 0 && len(out) > 0 {
			prev := out[len(out)-1]
			if prev.Row == e.Row && prev.Column == e.Column && prev.TS <= horizon {
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

func sortEntries(entries []kv.KeyValue) {
	sort.Slice(entries, func(i, j int) bool {
		return kv.CompareCells(entries[i].Cell, entries[j].Cell) < 0
	})
}
