package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

// pageAll drives scanPage like a client would: repeated bounded batches with
// the continuation coordinate, concatenated.
func pageAll(t *testing.T, r *Region, rng kv.KeyRange, maxTS kv.Timestamp, cols []string, batch int) []kv.KeyValue {
	t.Helper()
	var (
		out    []kv.KeyValue
		resume kv.CellKey
		has    bool
	)
	for i := 0; ; i++ {
		if i > 10_000 {
			t.Fatal("paging does not terminate")
		}
		page, more, err := r.scanPage(nil, rng, maxTS, resume, has, cols, false, batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) > batch {
			t.Fatalf("page of %d entries exceeds batch %d", len(page), batch)
		}
		out = append(out, page...)
		if len(page) > 0 {
			last := page[len(page)-1]
			resume, has = kv.CellKey{Row: last.Row, Column: last.Column}, true
		}
		if !more {
			return out
		}
	}
}

func sameKVs(t *testing.T, got, want []kv.KeyValue) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Cell != want[i].Cell || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("entry %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestScanPagePagingMatchesReference: a paged cursor scan over files +
// frozen-free memstore state, tombstones included, equals the one-shot
// reference for every batch size.
func TestScanPagePagingMatchesReference(t *testing.T) {
	r, _ := buildRegionWithFiles(t, 3, 40)
	// Memstore overlay: a newer version, a fresh row, and a tombstone.
	r.Apply([]kv.KeyValue{
		mkKV("row005", "f", 1000, "mem"),
		mkKV("row999", "f", 1001, "new"),
		{Cell: kv.Cell{Row: "row010", Column: "f", TS: 1002}, Tombstone: true},
	})
	for _, rng := range []kv.KeyRange{{}, {Start: "row010", End: "row030"}} {
		want, err := r.ScanRange(rng, kv.MaxTimestamp, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 3, 7, 64} {
			sameKVs(t, pageAll(t, r, rng, kv.MaxTimestamp, nil, batch), want)
		}
	}
}

// TestScanPageProjection: the column filter runs inside the merge, before
// entries count toward the batch.
func TestScanPageProjection(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	r, err := OpenRegion(fs, NewBlockCache(1<<20), RegionInfo{ID: "t-r000", Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row := fmt.Sprintf("r%02d", i)
		r.Apply([]kv.KeyValue{
			mkKV(row, "a", kv.Timestamp(i+1), "va"),
			mkKV(row, "b", kv.Timestamp(i+1), "vb"),
			mkKV(row, "c", kv.Timestamp(i+1), "vc"),
		})
	}
	got := pageAll(t, r, kv.KeyRange{}, kv.MaxTimestamp, []string{"b"}, 4)
	if len(got) != 20 {
		t.Fatalf("projected scan returned %d entries, want 20", len(got))
	}
	for _, e := range got {
		if e.Column != "b" {
			t.Fatalf("projection leaked column %q", e.Column)
		}
	}
}

// TestScanPageCancelReleasesView: a context cancelled mid-merge aborts the
// page with the ctx error and drops the pinned read view, so a subsequent
// compaction can retire and physically unlink every input file.
func TestScanPageCancelReleasesView(t *testing.T) {
	r, fs := buildRegionWithFiles(t, 4, 200) // > cancelCheckStride entries
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := r.scanPage(ctx, kv.KeyRange{}, kv.MaxTimestamp, kv.CellKey{}, false, nil, false, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scan page: %v", err)
	}
	if refs := r.view.Load().refs.Load(); refs != 1 {
		t.Fatalf("view refs after cancelled scan = %d, want 1 (current-view only)", refs)
	}
	// The dropped pin must not block retirement: compact and verify the
	// inputs are gone from the DFS (drain happened inline).
	before := r.Files()
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	var sf int
	for range fs.List("/data/t/t-r000/") {
		sf++
	}
	if before <= 1 || sf != 1 {
		t.Fatalf("store files on DFS after compaction = %d (had %d views-pinned?), want 1", sf, before)
	}
}

// TestScanPageAllocsOBatch: the acceptance bound of the streaming read API —
// one bounded batch over a huge range allocates like one over a small
// range; server-side memory is O(batch), not O(result).
func TestScanPageAllocsOBatch(t *testing.T) {
	small, _ := buildRegionWithFiles(t, 1, 200)
	big, _ := buildRegionWithFiles(t, 4, 5000)
	const batch = 64
	page := func(r *Region) func() {
		return func() {
			kvs, _, err := r.scanPage(nil, kv.KeyRange{}, kv.MaxTimestamp, kv.CellKey{}, false, nil, false, batch)
			if err != nil || len(kvs) != batch {
				t.Fatalf("page: %d entries, %v", len(kvs), err)
			}
		}
	}
	// Bypass the block cache variance: both regions use a cache large
	// enough that steady-state pages decode from cached blocks.
	allocSmall := testing.AllocsPerRun(50, page(small))
	allocBig := testing.AllocsPerRun(50, page(big))
	// 20000 rows vs 200: if batching leaked O(result) work the big region
	// would allocate ~100x more. Allow generous slack for heap setup.
	if allocBig > 4*allocSmall+32 {
		t.Fatalf("scan page allocations scale with range: big=%v small=%v", allocBig, allocSmall)
	}
}

// TestServerScanBatchContinuation: ScanBatch clips to the hosted region,
// reports the region end for the client to continue at, and rejects start
// keys it does not serve.
func TestServerScanBatchContinuation(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	rows := make([]string, 26)
	for i := range rows {
		rows[i] = fmt.Sprintf("%c0", 'a'+i)
	}
	if err := c.Flush(ctx, writeSet("c1", 3, "t", rows...), 0, false); err != nil {
		t.Fatal(err)
	}

	low := hostFor(t, ts, "t", "a")
	resp, err := low.ScanBatch(ctx, ScanRequest{Table: "t", Range: kv.KeyRange{}, MaxTS: kv.MaxTimestamp, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.KVs) != 5 || !resp.More || resp.RegionEnd != "m" {
		t.Fatalf("first batch: %d kvs, more=%v, end=%q", len(resp.KVs), resp.More, resp.RegionEnd)
	}
	// Misrouted continuation: the low server does not host row "z0".
	_, err = low.ScanBatch(ctx, ScanRequest{Table: "t", Range: kv.KeyRange{Start: "z"}, MaxTS: kv.MaxTimestamp, Batch: 5})
	high := hostFor(t, ts, "t", "z")
	if low != high {
		if !errors.Is(err, ErrRegionNotServing) {
			t.Fatalf("misrouted scan batch: %v", err)
		}
	}
}

// TestClientScannerCrossRegions: the routing scanner walks region
// boundaries with bounded batches and reproduces the materializing scan.
func TestClientScannerCrossRegions(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"h", "q"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	rows := make([]string, 26)
	for i := range rows {
		rows[i] = fmt.Sprintf("%c0", 'a'+i)
	}
	if err := c.Flush(ctx, writeSet("c1", 3, "t", rows...), 0, false); err != nil {
		t.Fatal(err)
	}
	want, err := c.Scan(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(want) != 26 {
		t.Fatalf("reference scan: %d %v", len(want), err)
	}
	sc := c.NewScanner(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, ScanOptions{Batch: 4})
	var got []kv.KeyValue
	for sc.Next() {
		got = append(got, sc.KV())
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	sameKVs(t, got, want)

	// Limit pushdown across regions.
	sc = c.NewScanner(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, ScanOptions{Batch: 4, Limit: 10})
	n := 0
	for sc.Next() {
		n++
	}
	if sc.Err() != nil || n != 10 {
		t.Fatalf("limited scanner: %d %v", n, sc.Err())
	}
}

// TestClientGetBatch: one batched read resolves cells across regions and
// servers, preserving input order and found-ness.
func TestClientGetBatch(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 3, "t", "a0", "n0", "z0"), 0, false); err != nil {
		t.Fatal(err)
	}
	keys := []kv.CellKey{
		{Row: "z0", Column: "f"},
		{Row: "missing", Column: "f"},
		{Row: "a0", Column: "f"},
		{Row: "n0", Column: "nope"},
	}
	kvs, found, err := c.GetBatch(ctx, "t", keys, kv.MaxTimestamp)
	if err != nil {
		t.Fatal(err)
	}
	wantFound := []bool{true, false, true, false}
	for i, w := range wantFound {
		if found[i] != w {
			t.Fatalf("key %d found=%v, want %v", i, found[i], w)
		}
	}
	if string(kvs[0].Value) != "v3-z0" || string(kvs[2].Value) != "v3-a0" {
		t.Fatalf("batch values: %q %q", kvs[0].Value, kvs[2].Value)
	}
}

// TestClientScannerSurvivesRegionMove: a scan paused mid-region continues
// correctly after the region moves to another server (the continuation is
// re-resolved against the layout; the old location turns retryable).
func TestClientScannerSurvivesRegionMove(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	rows := make([]string, 30)
	for i := range rows {
		rows[i] = fmt.Sprintf("r%02d", i)
	}
	if err := c.Flush(ctx, writeSet("c1", 3, "t", rows...), 0, false); err != nil {
		t.Fatal(err)
	}
	sc := c.NewScanner(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, ScanOptions{Batch: 8})
	var got []kv.KeyValue
	for i := 0; i < 8 && sc.Next(); i++ {
		got = append(got, sc.KV())
	}
	// Move the (single) region to the other server mid-scan.
	src := hostFor(t, ts, "t", "r00")
	var dst *RegionServer
	for _, s := range ts.srvs {
		if s != src {
			dst = s
		}
	}
	infos := src.HostedRegionInfos()
	if len(infos) != 1 {
		t.Fatalf("expected 1 hosted region, got %d", len(infos))
	}
	if err := ts.master.MoveRegion(infos[0].ID, dst.ID()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sc.Next() {
		got = append(got, sc.KV())
		if time.Now().After(deadline) {
			t.Fatal("scan did not finish after move")
		}
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 30 {
		t.Fatalf("scan across move returned %d rows, want 30", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("r%02d", i); string(e.Row) != want {
			t.Fatalf("row %d = %s, want %s", i, e.Row, want)
		}
	}
}
