// Package kvstore implements the HBase-like distributed key-value store:
// sorted in-memory stores (memstores), immutable store files with an LRU
// block cache, regions (contiguous key ranges), region servers with a
// per-server write-ahead log on the DFS, a master that detects server
// failures and reassigns regions (splitting the dead server's WAL), and a
// routing client. The store deliberately reproduces the durability
// behaviour the paper builds on: updates are applied to memory and the WAL
// buffer and acknowledged immediately; WAL syncs and memstore flushes happen
// asynchronously, so a server crash loses recent updates unless a higher
// layer (the transaction manager's log plus the recovery middleware in
// internal/core) replays them.
package kvstore

import (
	"math/rand"
	"sync"

	"txkv/internal/kv"
)

const (
	skipMaxLevel = 24
	skipPFactor  = 4 // 1/4 promotion probability
)

type skipNode struct {
	entry kv.KeyValue
	next  []*skipNode
}

// MemStore is a concurrency-safe sorted store of versioned cells, ordered
// by (row asc, column asc, timestamp desc) — the memstore of a region. It is
// implemented as a skip list protected by an RWMutex; the zero value is not
// usable, construct with NewMemStore.
type MemStore struct {
	mu   sync.RWMutex
	head *skipNode
	rng  *rand.Rand
	n    int
	size int // approximate heap bytes
}

// NewMemStore returns an empty memstore.
func NewMemStore() *MemStore {
	return &MemStore{
		head: &skipNode{next: make([]*skipNode, skipMaxLevel)},
		rng:  rand.New(rand.NewSource(0x5eed)),
	}
}

func (m *MemStore) randLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && m.rng.Intn(skipPFactor) == 0 {
		lvl++
	}
	return lvl
}

// Put inserts a versioned cell. Re-inserting the exact same cell coordinate
// (row, column, ts) overwrites the previous value, which makes write-set
// replay idempotent.
func (m *MemStore) Put(e kv.KeyValue) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var update [skipMaxLevel]*skipNode
	x := m.head
	for i := skipMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && kv.CompareCells(x.next[i].entry.Cell, e.Cell) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if nxt := x.next[0]; nxt != nil && nxt.entry.Cell == e.Cell {
		m.size += e.HeapSize() - nxt.entry.HeapSize()
		nxt.entry = e
		return
	}
	lvl := m.randLevel()
	node := &skipNode{entry: e, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		node.next[i] = update[i].next[i]
		update[i].next[i] = node
	}
	m.n++
	m.size += e.HeapSize()
}

// seek returns the first node whose cell is >= the given cell in store
// order. Caller holds at least a read lock.
func (m *MemStore) seek(c kv.Cell) *skipNode {
	x := m.head
	for i := skipMaxLevel - 1; i >= 0; i-- {
		for x.next[i] != nil && kv.CompareCells(x.next[i].entry.Cell, c) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// Get returns the newest version of (row, column) with timestamp <= maxTS.
// The boolean reports whether such a version exists (a tombstone is
// returned as found=true with Tombstone set; callers decide deletion
// semantics when merging across stores).
func (m *MemStore) Get(row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	// Store order is ts-descending, so seeking to (row, column, maxTS)
	// lands on the newest version with ts <= maxTS.
	n := m.seek(kv.Cell{Row: row, Column: column, TS: maxTS})
	if n == nil || n.entry.Row != row || n.entry.Column != column {
		return kv.KeyValue{}, false
	}
	return n.entry, true
}

// ScanRange appends to dst every entry in [r.Start, r.End) with timestamp
// <= maxTS, in store order, returning the extended slice. All versions <=
// maxTS are included; callers merge/deduplicate per coordinate.
func (m *MemStore) ScanRange(dst []kv.KeyValue, r kv.KeyRange, maxTS kv.Timestamp) []kv.KeyValue {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := m.seek(kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp})
	for ; n != nil; n = n.next[0] {
		if r.End != "" && n.entry.Row >= r.End {
			break
		}
		if n.entry.TS <= maxTS {
			dst = append(dst, n.entry)
		}
	}
	return dst
}

// All returns every entry in store order. Used for memstore flushes.
func (m *MemStore) All() []kv.KeyValue {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]kv.KeyValue, 0, m.n)
	for n := m.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, n.entry)
	}
	return out
}

// Len returns the number of entries.
func (m *MemStore) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// ApproxSize returns the approximate heap footprint in bytes, used to
// trigger flushes.
func (m *MemStore) ApproxSize() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.size
}
