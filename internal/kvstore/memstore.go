// Package kvstore implements the HBase-like distributed key-value store:
// sorted in-memory stores (memstores), immutable store files with an LRU
// block cache, regions (contiguous key ranges), region servers with a
// per-server write-ahead log on the DFS, a master that detects server
// failures and reassigns regions (splitting the dead server's WAL), and a
// routing client. The store deliberately reproduces the durability
// behaviour the paper builds on: updates are applied to memory and the WAL
// buffer and acknowledged immediately; WAL syncs and memstore flushes happen
// asynchronously, so a server crash loses recent updates unless a higher
// layer (the transaction manager's log plus the recovery middleware in
// internal/core) replays them.
package kvstore

import (
	"sync/atomic"

	"txkv/internal/kv"
)

const (
	skipMaxLevel = 24
	skipPFactor  = 4 // 1/4 promotion probability
)

// cellVersion is a memstore entry's mutable part. Re-puts of the same cell
// coordinate swap the whole struct atomically, so readers always observe a
// consistent (value, tombstone) pair.
type cellVersion struct {
	value     []byte
	tombstone bool
	heap      int // kv.KeyValue.HeapSize() of the entry carrying this version
}

type skipNode struct {
	cell kv.Cell
	val  atomic.Pointer[cellVersion]
	next []atomic.Pointer[skipNode]
}

// entry materializes the node's KeyValue from its immutable cell and the
// current version.
func (n *skipNode) entry() kv.KeyValue {
	v := n.val.Load()
	return kv.KeyValue{Cell: n.cell, Value: v.value, Tombstone: v.tombstone}
}

// MemStore is a concurrency-safe sorted store of versioned cells, ordered
// by (row asc, column asc, timestamp desc) — the memstore of a region. It is
// a lock-free concurrent skip list: inserts link nodes with per-level CAS
// (nodes are never removed, which removes the need for deletion marks), and
// overwrites swap the node's version pointer. Readers never block writers
// and vice versa. The zero value is not usable, construct with NewMemStore.
type MemStore struct {
	head *skipNode
	n    atomic.Int64
	size atomic.Int64  // approximate heap bytes
	rnd  atomic.Uint64 // splitmix64 state for level generation
}

// NewMemStore returns an empty memstore.
func NewMemStore() *MemStore {
	m := &MemStore{head: &skipNode{next: make([]atomic.Pointer[skipNode], skipMaxLevel)}}
	m.rnd.Store(0x5eed)
	return m
}

// randLevel draws a skip-list level from a shared splitmix64 sequence. The
// atomic add replaces the seed's old mutex-guarded rand.Rand: level draws
// are wait-free and never serialize concurrent writers.
func (m *MemStore) randLevel() int {
	x := m.rnd.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	lvl := 1
	for lvl < skipMaxLevel && x&(skipPFactor-1) == 0 {
		lvl++
		x >>= 2
	}
	return lvl
}

// findPreds fills preds/succs with, per level, the rightmost node whose
// cell is < c and its successor. Returns the level-0 successor if its cell
// equals c (the overwrite case).
func (m *MemStore) findPreds(c kv.Cell, preds, succs *[skipMaxLevel]*skipNode) *skipNode {
	x := m.head
	for i := skipMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || kv.CompareCells(nxt.cell, c) >= 0 {
				break
			}
			x = nxt
		}
		preds[i] = x
		succs[i] = x.next[i].Load()
	}
	if s := succs[0]; s != nil && s.cell == c {
		return s
	}
	return nil
}

// Put inserts a versioned cell. Re-inserting the exact same cell coordinate
// (row, column, ts) overwrites the previous value, which makes write-set
// replay idempotent. Safe for any number of concurrent writers.
func (m *MemStore) Put(e kv.KeyValue) {
	ver := &cellVersion{value: e.Value, tombstone: e.Tombstone, heap: e.HeapSize()}
	var preds, succs [skipMaxLevel]*skipNode
	var node *skipNode
	lvl := 0
	for {
		if hit := m.findPreds(e.Cell, &preds, &succs); hit != nil {
			old := hit.val.Swap(ver)
			m.size.Add(int64(ver.heap - old.heap))
			return
		}
		if node == nil {
			lvl = m.randLevel()
			node = &skipNode{cell: e.Cell, next: make([]atomic.Pointer[skipNode], lvl)}
			node.val.Store(ver)
		}
		node.next[0].Store(succs[0])
		if preds[0].next[0].CompareAndSwap(succs[0], node) {
			break
		}
		// Lost the race at level 0: another writer linked a node here.
		// Re-search — the cell may now exist (overwrite path above).
	}
	m.n.Add(1)
	m.size.Add(int64(ver.heap))

	// Link the upper levels. Failures only mean a concurrent insert moved
	// the predecessor; re-search that level and retry. The node is already
	// reachable via level 0, so readers are correct throughout.
	for i := 1; i < lvl; i++ {
		for {
			node.next[i].Store(succs[i])
			if preds[i].next[i].CompareAndSwap(succs[i], node) {
				break
			}
			m.findPredsAt(i, e.Cell, &preds, &succs)
		}
	}
}

// findPredsAt recomputes preds/succs for one level (upper-level relink
// retries).
func (m *MemStore) findPredsAt(level int, c kv.Cell, preds, succs *[skipMaxLevel]*skipNode) {
	x := preds[level]
	if x == nil {
		x = m.head
	}
	for {
		nxt := x.next[level].Load()
		if nxt == nil || kv.CompareCells(nxt.cell, c) >= 0 {
			break
		}
		x = nxt
	}
	preds[level] = x
	succs[level] = x.next[level].Load()
}

// seek returns the first node whose cell is >= the given cell in store
// order.
func (m *MemStore) seek(c kv.Cell) *skipNode {
	x := m.head
	for i := skipMaxLevel - 1; i >= 0; i-- {
		for {
			nxt := x.next[i].Load()
			if nxt == nil || kv.CompareCells(nxt.cell, c) >= 0 {
				break
			}
			x = nxt
		}
	}
	return x.next[0].Load()
}

// Get returns the newest version of (row, column) with timestamp <= maxTS.
// The boolean reports whether such a version exists (a tombstone is
// returned as found=true with Tombstone set; callers decide deletion
// semantics when merging across stores). Lock-free and allocation-free.
func (m *MemStore) Get(row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool) {
	// Store order is ts-descending, so seeking to (row, column, maxTS)
	// lands on the newest version with ts <= maxTS.
	n := m.seek(kv.Cell{Row: row, Column: column, TS: maxTS})
	if n == nil || n.cell.Row != row || n.cell.Column != column {
		return kv.KeyValue{}, false
	}
	return n.entry(), true
}

// ScanRange appends to dst every entry in [r.Start, r.End) with timestamp
// <= maxTS, in store order, returning the extended slice. All versions <=
// maxTS are included; callers merge/deduplicate per coordinate.
func (m *MemStore) ScanRange(dst []kv.KeyValue, r kv.KeyRange, maxTS kv.Timestamp) []kv.KeyValue {
	for n := m.seek(kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp}); n != nil; n = n.next[0].Load() {
		if r.End != "" && n.cell.Row >= r.End {
			break
		}
		if n.cell.TS <= maxTS {
			dst = append(dst, n.entry())
		}
	}
	return dst
}

// Iter returns a streaming iterator positioned at the first entry of
// [r.Start, r.End) with timestamp <= maxTS. Entries inserted concurrently
// behind the cursor are not revisited (same guarantee a snapshot scan
// needs: the region read view pins maxTS below any in-flight write).
func (m *MemStore) Iter(r kv.KeyRange, maxTS kv.Timestamp) *MemIter {
	it := &MemIter{node: m.seek(kv.Cell{Row: r.Start, Column: "", TS: kv.MaxTimestamp}), end: r.End, maxTS: maxTS}
	it.skipInvisible()
	return it
}

// MemIter streams a memstore range in store order. See MemStore.Iter.
type MemIter struct {
	node  *skipNode
	end   kv.Key
	maxTS kv.Timestamp
}

// skipInvisible advances past entries newer than maxTS and clamps at end.
func (it *MemIter) skipInvisible() {
	for it.node != nil {
		if it.end != "" && it.node.cell.Row >= it.end {
			it.node = nil
			return
		}
		if it.node.cell.TS <= it.maxTS {
			return
		}
		it.node = it.node.next[0].Load()
	}
}

// Valid reports whether the iterator is positioned on an entry.
func (it *MemIter) Valid() bool { return it.node != nil }

// Head returns the current entry. Only call when Valid.
func (it *MemIter) Head() kv.KeyValue { return it.node.entry() }

// Next advances to the next visible entry.
func (it *MemIter) Next() error {
	it.node = it.node.next[0].Load()
	it.skipInvisible()
	return nil
}

// All returns every entry in store order. Used for memstore flushes.
func (m *MemStore) All() []kv.KeyValue {
	out := make([]kv.KeyValue, 0, m.n.Load())
	for n := m.head.next[0].Load(); n != nil; n = n.next[0].Load() {
		out = append(out, n.entry())
	}
	return out
}

// Len returns the number of entries.
func (m *MemStore) Len() int {
	return int(m.n.Load())
}

// ApproxSize returns the approximate heap footprint in bytes, used to
// trigger flushes.
func (m *MemStore) ApproxSize() int {
	return int(m.size.Load())
}
