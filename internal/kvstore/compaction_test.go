package kvstore

import (
	"fmt"
	"sort"
	"testing"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

func buildRegionWithFiles(t testing.TB, nFiles, rowsPerFile int) (*Region, *dfs.FS) {
	t.Helper()
	fs := dfs.New(dfs.Config{})
	r, err := OpenRegion(fs, NewBlockCache(1<<20), RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		t.Fatal(err)
	}
	ts := kv.Timestamp(1)
	for f := 0; f < nFiles; f++ {
		for i := 0; i < rowsPerFile; i++ {
			r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("row%03d", i), "f", ts, fmt.Sprintf("v%d", ts))})
			ts++
		}
		if err := r.Flush(256); err != nil {
			t.Fatal(err)
		}
	}
	return r, fs
}

func TestCompactMergesFiles(t *testing.T) {
	r, fs := buildRegionWithFiles(t, 4, 30)
	if r.Files() != 4 {
		t.Fatalf("files = %d", r.Files())
	}
	before := len(fs.List("/data/t/t-r000/"))
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	if r.Files() != 1 {
		t.Fatalf("files after compaction = %d", r.Files())
	}
	after := len(fs.List("/data/t/t-r000/"))
	if after >= before {
		t.Fatalf("old files not deleted: %d -> %d", before, after)
	}
	// All versions retained (horizon 0): both newest and older snapshots
	// read correctly.
	got, found, err := r.Get("row000", "f", kv.MaxTimestamp)
	if err != nil || !found {
		t.Fatalf("get after compaction: %v %v", found, err)
	}
	// row000 was written at ts 1, 31, 61, 91; latest is 91.
	if string(got.Value) != "v91" {
		t.Fatalf("latest = %q, want v91", got.Value)
	}
	got, found, _ = r.Get("row000", "f", 31)
	if !found || string(got.Value) != "v31" {
		t.Fatalf("snapshot = %q, want v31", got.Value)
	}
}

func TestCompactWithHorizonDropsShadowedVersions(t *testing.T) {
	r, _ := buildRegionWithFiles(t, 3, 10)
	// Horizon above every write: only the newest version per coordinate
	// survives.
	if err := r.Compact(256, kv.MaxTimestamp); err != nil {
		t.Fatal(err)
	}
	scan, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(scan) != 10 {
		t.Fatalf("scan: %d %v", len(scan), err)
	}
	// Newest values retained.
	got, found, _ := r.Get("row005", "f", kv.MaxTimestamp)
	if !found || string(got.Value) != "v26" { // row005 at ts 6, 16, 26
		t.Fatalf("latest = %q, want v26", got.Value)
	}
	// Old snapshot is gone (GC'd below the horizon).
	if _, found, _ := r.Get("row005", "f", 6); found {
		t.Fatal("GC'd version still readable")
	}
}

func TestCompactSingleFileNoOp(t *testing.T) {
	r, _ := buildRegionWithFiles(t, 1, 5)
	if err := r.Compact(256, 0); err != nil {
		t.Fatal(err)
	}
	if r.Files() != 1 {
		t.Fatalf("files = %d", r.Files())
	}
}

func TestCompactPreservesDuplicatesFromReplay(t *testing.T) {
	// Recovery can write the same cell into two different files; compaction
	// must collapse them without error.
	fs := dfs.New(dfs.Config{})
	r, _ := OpenRegion(fs, nil, RegionInfo{ID: "x", Table: "t", Range: kv.KeyRange{}})
	r.Apply([]kv.KeyValue{mkKV("dup", "f", 7, "v")})
	_ = r.Flush(0)
	r.Apply([]kv.KeyValue{mkKV("dup", "f", 7, "v")}) // replayed duplicate
	_ = r.Flush(0)
	if err := r.Compact(0, 0); err != nil {
		t.Fatal(err)
	}
	scan, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(scan) != 1 {
		t.Fatalf("scan: %v %v", scan, err)
	}
}

func TestMergeRunsKWay(t *testing.T) {
	// Three individually sorted runs (store order: row asc, column asc,
	// ts desc) with cross-run duplicates and shadowed versions.
	runs := [][]kv.KeyValue{
		{mkKV("a", "f", 9, "a9"), mkKV("c", "f", 2, "c2")},
		{mkKV("a", "f", 9, "a9"), mkKV("a", "f", 3, "a3"), mkKV("b", "f", 4, "b4")},
		{mkKV("b", "f", 8, "b8"), mkKV("d", "f", 1, "d1")},
	}
	out, err := mergeRuns(runs, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []struct {
		row string
		ts  kv.Timestamp
	}{
		{"a", 9}, {"a", 3}, {"b", 8}, {"b", 4}, {"c", 2}, {"d", 1},
	}
	if len(out) != len(wantOrder) {
		t.Fatalf("merged %d entries, want %d: %v", len(out), len(wantOrder), out)
	}
	for i, w := range wantOrder {
		if string(out[i].Row) != w.row || out[i].TS != w.ts {
			t.Fatalf("entry %d = %s@%d, want %s@%d", i, out[i].Row, out[i].TS, w.row, w.ts)
		}
	}
	// With the horizon above every timestamp, only the newest version per
	// coordinate survives.
	out, err = mergeRuns(runs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 { // a@9, b@8, c@2, d@1
		t.Fatalf("horizon merge kept %d entries, want 4: %v", len(out), out)
	}
	if out[0].TS != 9 || out[1].TS != 8 {
		t.Fatalf("horizon merge order wrong: %v", out)
	}
	// Degenerate cases.
	if got, _ := mergeRuns(nil, 0); len(got) != 0 {
		t.Fatalf("empty merge: %v", got)
	}
	if got, _ := mergeRuns([][]kv.KeyValue{{}, {mkKV("x", "f", 1, "x1")}}, 0); len(got) != 1 {
		t.Fatalf("single-entry merge: %v", got)
	}
}

// sortAndGC is the single-run case of mergeRuns over unsorted input — the
// pre-heap-merge compaction behavior, kept here as the semantic reference
// the k-way merge must match.
func sortAndGC(entries []kv.KeyValue, horizon kv.Timestamp) []kv.KeyValue {
	sort.Slice(entries, func(i, j int) bool {
		return kv.CompareCells(entries[i].Cell, entries[j].Cell) < 0
	})
	out, _ := mergeRuns([][]kv.KeyValue{entries}, horizon)
	return out
}

func TestSortAndGC(t *testing.T) {
	in := []kv.KeyValue{
		mkKV("b", "f", 5, "b5"),
		mkKV("a", "f", 9, "a9"),
		mkKV("a", "f", 3, "a3"),
		mkKV("a", "f", 9, "a9"), // duplicate
	}
	out := sortAndGC(in, 0)
	if len(out) != 3 {
		t.Fatalf("dedup failed: %v", out)
	}
	if out[0].TS != 9 || out[1].TS != 3 || out[2].Row != "b" {
		t.Fatalf("order wrong: %v", out)
	}
	// With a horizon covering ts 9, a3 is shadowed.
	out = sortAndGC([]kv.KeyValue{
		mkKV("a", "f", 9, "a9"),
		mkKV("a", "f", 3, "a3"),
	}, 10)
	if len(out) != 1 || out[0].TS != 9 {
		t.Fatalf("horizon GC wrong: %v", out)
	}
	// Horizon below the newer version: both survive (a9 not <= horizon).
	out = sortAndGC([]kv.KeyValue{
		mkKV("a", "f", 9, "a9"),
		mkKV("a", "f", 3, "a3"),
	}, 5)
	if len(out) != 2 {
		t.Fatalf("over-aggressive GC: %v", out)
	}
}
