package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"txkv/internal/kv"
)

func regionCountsByServer(t *testing.T, ts *testStore) map[string]int {
	t.Helper()
	counts := make(map[string]int)
	for _, srv := range ts.srvs {
		if !srv.Crashed() {
			counts[srv.ID()] = len(srv.HostedRegionInfos())
		}
	}
	return counts
}

func TestMoveRegionPreservesData(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := c.Flush(ctx, writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%02d", i)), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	info, src, err := ts.master.Locate("t", "row00")
	if err != nil {
		t.Fatal(err)
	}
	var target *RegionServer
	for _, s := range ts.srvs {
		if s.ID() != src.ID() {
			target = s
		}
	}
	if err := ts.master.MoveRegion(info.ID, target.ID()); err != nil {
		t.Fatal(err)
	}
	// Now served by the target, with all data intact.
	_, host, err := ts.master.Locate("t", "row00")
	if err != nil {
		t.Fatal(err)
	}
	if host.ID() != target.ID() {
		t.Fatalf("region on %s, want %s", host.ID(), target.ID())
	}
	for i := 0; i < 20; i++ {
		row := fmt.Sprintf("row%02d", i)
		got, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("row %s lost in move: %v %v", row, found, err)
		}
		want := fmt.Sprintf("v%d-%s", i+1, row)
		if string(got.Value) != want {
			t.Fatalf("row %s = %q, want %q", row, got.Value, want)
		}
	}
	// Writes continue to work post-move.
	if err := c.Flush(ctx, writeSet("c1", 100, "t", "row00"), 0, false); err != nil {
		t.Fatal(err)
	}
}

func TestMoveRegionErrors(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	info, host, err := ts.master.Locate("t", "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.master.MoveRegion(info.ID, "server-xyz"); !errors.Is(err, ErrNoLiveServers) {
		t.Fatalf("unknown target: %v", err)
	}
	if err := ts.master.MoveRegion("no-such-region", ts.srvs[0].ID()); !errors.Is(err, ErrRegionNotServing) {
		t.Fatalf("unknown region: %v", err)
	}
	// Self-move is a no-op.
	if err := ts.master.MoveRegion(info.ID, host.ID()); err != nil {
		t.Fatalf("self move: %v", err)
	}
}

func TestRebalanceSpreadsRegions(t *testing.T) {
	ts := newTestStore(t, 1, false)
	// 6 regions all on the single server.
	if err := ts.master.CreateTable("t", []kv.Key{"b", "c", "d", "e", "f"}); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for _, row := range []string{"a1", "b1", "c1", "d1", "e1", "f1"} {
		if err := c.Flush(ctx, writeSet("c1", kv.Timestamp(len(row)), "t", row), 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// Two fresh servers join.
	for i := 1; i <= 2; i++ {
		srv := NewRegionServer(ServerConfig{
			ID:                fmt.Sprintf("server-%d", i),
			WALSyncInterval:   20 * time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
		}, ts.fs)
		if err := ts.master.AddServer(srv); err != nil {
			t.Fatal(err)
		}
		ts.srvs = append(ts.srvs, srv)
	}
	moves, err := ts.master.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if moves == 0 {
		t.Fatal("rebalance moved nothing")
	}
	counts := regionCountsByServer(t, ts)
	for id, n := range counts {
		if n != 2 {
			t.Fatalf("server %s hosts %d regions, want 2 (counts %v)", id, n, counts)
		}
	}
	// All data still readable after the moves.
	for _, row := range []string{"a1", "b1", "c1", "d1", "e1", "f1"} {
		if _, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp); err != nil || !found {
			t.Fatalf("row %s lost in rebalance: %v %v", row, found, err)
		}
	}
	// Idempotent: another pass moves nothing.
	moves, err = ts.master.Rebalance()
	if err != nil || moves != 0 {
		t.Fatalf("second rebalance: %d moves, %v", moves, err)
	}
}

func TestRebalanceSingleServerNoOp(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", []kv.Key{"m"}); err != nil {
		t.Fatal(err)
	}
	moves, err := ts.master.Rebalance()
	if err != nil || moves != 0 {
		t.Fatalf("single-server rebalance: %d %v", moves, err)
	}
}

func TestMoveRegionUnderConcurrentWrites(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	done := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			ws := writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%03d", i))
			if err := c.Flush(ctx, ws, 0, false); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Move the region back and forth while writes stream in.
	info, _, err := ts.master.Locate("t", "row")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		target := ts.srvs[i%2].ID()
		if err := ts.master.MoveRegion(info.ID, target); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	<-done
	select {
	case err := <-errs:
		t.Fatalf("writer failed: %v", err)
	default:
	}
	// Every acknowledged write survived the moves.
	for i := 0; i < 100; i++ {
		row := fmt.Sprintf("row%03d", i)
		_, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("row %s lost across moves: %v %v", row, found, err)
		}
	}
}
