package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/netsim"
	"txkv/internal/obs"
)

// ClientConfig configures the routing client.
type ClientConfig struct {
	// ID is the client's node name on the simulated network.
	ID string
	// ReadRetries bounds retries of reads hitting offline regions.
	ReadRetries int
	// RetryBackoff is the initial backoff between retries; it doubles up
	// to 32x.
	RetryBackoff time.Duration
	// Obs, when set, receives cluster-level routing instruments shared by
	// every client of one cluster (per-client Stats stay separate). Nil
	// records nothing.
	Obs *ClientObs
	// FollowerReads routes scan batches to follower replicas when the
	// layout lists one for the region, trading bounded staleness (the
	// follower serves only snapshots at or below its replicated frontier)
	// for read capacity off the primary. A follower that is behind the
	// scan's snapshot — or unreachable — falls back to the primary within
	// the same fill, so correctness never depends on replication progress.
	FollowerReads bool
}

// ClientObs bundles the cluster-level instruments the routing clients feed.
// Individual clients come and go (crash injection retires them mid-
// campaign), so cluster totals live here rather than being summed over live
// instances — that keeps every exported counter monotonic. All fields must
// be non-nil when the struct is; the cluster builds it from its registry.
type ClientObs struct {
	MasterLookups *metrics.Counter
	LayoutHits    *metrics.Counter
	LayoutMisses  *metrics.Counter
	Gets          *metrics.Counter
	GetRetries    *metrics.Counter
	FlushRetries  *metrics.Counter
	ScanBatches   *metrics.Counter
	// ScanContinuations counts scan batches that resumed with a
	// continuation token (i.e. every batch after a scan's first).
	ScanContinuations *metrics.Counter
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.ReadRetries == 0 {
		c.ReadRetries = 100
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	return c
}

// MasterNode is the master's node name on the simulated network.
const MasterNode = "master"

type location struct {
	info      RegionInfo
	ep        RegionEndpoint
	followers []RegionEndpoint
}

// tableLayout is a client-side snapshot of one table's region map: the
// located regions sorted by start key. Lookups binary-search the ranges, so
// a scan crossing region boundaries resolves every transition locally; only
// a genuine gap (region moved, recovering, or never fetched) falls through
// to the master.
type tableLayout struct {
	locs []location // sorted by info.Range.Start
}

// find returns the cached location containing row.
func (l *tableLayout) find(row kv.Key) (location, bool) {
	i := sort.Search(len(l.locs), func(i int) bool {
		end := l.locs[i].info.Range.End
		return end == "" || row < end
	})
	if i < len(l.locs) && l.locs[i].info.Range.Contains(row) {
		return l.locs[i], true
	}
	return location{}, false
}

// drop removes one region from the layout, keeping the rest of the map —
// the range-aware half of invalidation: a single moved region does not cost
// the whole table's cached layout.
func (l *tableLayout) drop(regionID string) {
	for i, loc := range l.locs {
		if loc.info.ID == regionID {
			l.locs = append(l.locs[:i], l.locs[i+1:]...)
			return
		}
	}
}

// ClientStats counts a routing client's location work: how often a region
// lookup was answered from the cached layout versus by asking the master.
// Scan-heavy workloads over a cached layout keep MasterLookups near one per
// table regardless of how many region transitions the scans cross.
type ClientStats struct {
	// MasterLookups is the number of layout fetches sent to the master.
	MasterLookups int64
	// LayoutHits is the number of locate calls answered from the cache.
	LayoutHits int64
	// LayoutMisses is the number of locate calls that had to refresh.
	LayoutMisses int64
	// FollowerBatches is the number of scan batches served by a follower
	// replica (FollowerReads routing, successful follower response).
	FollowerBatches int64
	// FollowerFallbacks is the number of scan batches that tried a
	// follower and fell back to the primary (follower behind the scan's
	// snapshot, or unreachable).
	FollowerFallbacks int64
}

// Client is the HBase-like routing client: it caches each table's region
// layout (a range map refreshed whole on a miss, invalidated per region on
// ErrRegionNotServing-style failures), routes gets/scans/write-set flushes
// to region servers through its Transport, and retries after re-locating
// when regions move. The transactional layer (txkv) drives it; the paper's
// client-side tracking (Algorithm 1) observes it from internal/core via the
// transactional client's post-flush notifications. Whether the calls cross
// a simulated network (loopback transport) or real sockets (internal/rpc's
// TCP transport) is invisible here — the retry and invalidation discipline
// is identical.
type Client struct {
	cfg ClientConfig
	tr  Transport

	mu    sync.Mutex
	cache map[string]*tableLayout // table -> cached region map

	masterLookups     metrics.Counter
	layoutHits        metrics.Counter
	layoutMisses      metrics.Counter
	followerBatches   metrics.Counter
	followerFallbacks metrics.Counter
}

// NewClient creates a routing client over the in-process loopback
// transport — the embedded-cluster path every test and single-process
// deployment uses.
func NewClient(cfg ClientConfig, net *netsim.Network, master *Master) *Client {
	return NewClientTransport(cfg, NewLoopbackTransport(net, master, cfg.ID))
}

// NewClientTransport creates a routing client over an explicit transport.
func NewClientTransport(cfg ClientConfig, tr Transport) *Client {
	return &Client{
		cfg:   cfg.withDefaults(),
		tr:    tr,
		cache: make(map[string]*tableLayout),
	}
}

// Transport returns the client's transport (admin ops, lifecycle).
func (c *Client) Transport() Transport { return c.tr }

// ID returns the client's node name.
func (c *Client) ID() string { return c.cfg.ID }

// Stats returns the client's location counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		MasterLookups:     c.masterLookups.Load(),
		LayoutHits:        c.layoutHits.Load(),
		LayoutMisses:      c.layoutMisses.Load(),
		FollowerBatches:   c.followerBatches.Load(),
		FollowerFallbacks: c.followerFallbacks.Load(),
	}
}

// locate resolves (table, row) against the cached layout; a miss refreshes
// the whole table's region map from the master in one call.
func (c *Client) locate(ctx context.Context, table string, row kv.Key) (location, error) {
	c.mu.Lock()
	if lay := c.cache[table]; lay != nil {
		if loc, ok := lay.find(row); ok {
			c.mu.Unlock()
			c.layoutHits.Add(1)
			if o := c.cfg.Obs; o != nil {
				o.LayoutHits.Add(1)
			}
			return loc, nil
		}
	}
	c.mu.Unlock()
	c.layoutMisses.Add(1)
	if o := c.cfg.Obs; o != nil {
		o.LayoutMisses.Add(1)
	}

	// One master round trip fetches the table's whole serving layout — a
	// scan's next thousand region transitions are then local.
	located, err := c.tr.LocateAll(ctx, table)
	c.masterLookups.Add(1)
	if o := c.cfg.Obs; o != nil {
		o.MasterLookups.Add(1)
	}
	if err != nil {
		return location{}, err
	}
	lay := &tableLayout{locs: make([]location, 0, len(located))}
	for _, rl := range located {
		lay.locs = append(lay.locs, location{info: rl.Info, ep: rl.Ep, followers: rl.Followers})
	}
	// Resolve the row BEFORE publishing: once lay is in the cache a
	// concurrent invalidate may mutate its slice.
	loc, found := lay.find(row)
	c.mu.Lock()
	c.cache[table] = lay
	c.mu.Unlock()
	if found {
		return loc, nil
	}
	// The row's region is currently offline (recovering, unassigned, or on
	// a dead server): not-serving, so the caller backs off and retries.
	return location{}, fmt.Errorf("%w: %s/%s offline in layout", ErrRegionNotServing, table, row)
}

// invalidate drops the cached location of one region; the rest of the
// table's layout stays.
func (c *Client) invalidate(table, regionID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if lay := c.cache[table]; lay != nil {
		lay.drop(regionID)
	}
}

// invalidateTable drops a table's whole cached layout.
func (c *Client) invalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.cache, table)
}

// retryable reports whether an error warrants re-locating and retrying.
// ErrTransport is in the set deliberately: a connection-level failure means
// the cached endpoint may be dead, and the re-locate that precedes the
// retry asks the master for the region's current (possibly reassigned)
// address instead of hammering the dead one.
func retryable(err error) bool {
	return errors.Is(err, ErrRegionNotServing) ||
		errors.Is(err, ErrServerStopped) ||
		errors.Is(err, ErrTransport) ||
		errors.Is(err, ErrStaleEpoch) ||
		errors.Is(err, ErrLeaseExpired) ||
		errors.Is(err, netsim.ErrNodeDown) ||
		errors.Is(err, netsim.ErrUnreachable)
}

func backoff(base time.Duration, attempt int) time.Duration {
	shift := attempt
	if shift > 5 {
		shift = 5
	}
	return base << shift
}

// Get reads the newest version of (table, row, column) at or below maxTS.
func (c *Client) Get(ctx context.Context, table string, row kv.Key, column string, maxTS kv.Timestamp) (kv.KeyValue, bool, error) {
	if o := c.cfg.Obs; o != nil {
		o.Gets.Add(1)
	}
	sp := obs.FromContext(ctx)
	var lastErr error
	for attempt := 0; attempt < c.cfg.ReadRetries; attempt++ {
		var stageStart time.Time
		if sp != nil {
			stageStart = time.Now()
		}
		loc, err := c.locate(ctx, table, row)
		if err == nil {
			if sp != nil {
				now := time.Now()
				sp.StageEnd("get.layout", stageStart, now)
				stageStart = now
			}
			var got kv.KeyValue
			var found bool
			got, found, err = loc.ep.Get(ctx, table, row, column, maxTS)
			if err == nil {
				sp.Stage("get.server", stageStart)
				return got, found, nil
			}
			c.invalidate(table, loc.info.ID)
		}
		if !retryable(err) {
			return kv.KeyValue{}, false, err
		}
		lastErr = err
		if o := c.cfg.Obs; o != nil {
			o.GetRetries.Add(1)
		}
		select {
		case <-ctx.Done():
			return kv.KeyValue{}, false, ctx.Err()
		case <-time.After(backoff(c.cfg.RetryBackoff, attempt)):
		}
	}
	return kv.KeyValue{}, false, fmt.Errorf("kvstore: get %s/%s retries exhausted: %w", table, row, lastErr)
}

// Scan reads the newest visible version per coordinate in rng at or below
// maxTS across all regions of the table, materializing the whole result.
// It is a convenience wrapper over NewScanner (which callers with large
// ranges should use directly).
func (c *Client) Scan(ctx context.Context, table string, rng kv.KeyRange, maxTS kv.Timestamp, limit int) ([]kv.KeyValue, error) {
	sc := c.NewScanner(ctx, table, rng, maxTS, ScanOptions{Limit: limit})
	var out []kv.KeyValue
	for sc.Next() {
		out = append(out, sc.KV())
	}
	return out, sc.Err()
}

// GetBatch reads the newest visible version of every requested cell at or
// below maxTS. Keys are grouped by hosting server and the portions fetched
// in parallel — one round trip per involved server when locations are
// cached. Results parallel keys: found[i] reports whether kvs[i] holds a
// value. Portions hitting moved or recovering regions are re-located and
// retried like point reads.
func (c *Client) GetBatch(ctx context.Context, table string, keys []kv.CellKey, maxTS kv.Timestamp) ([]kv.KeyValue, []bool, error) {
	kvs := make([]kv.KeyValue, len(keys))
	found := make([]bool, len(keys))
	remaining := make([]int, len(keys))
	for i := range keys {
		remaining[i] = i
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.ReadRetries && len(remaining) > 0; attempt++ {
		// Group the outstanding keys by hosting server.
		type portion struct {
			ep   RegionEndpoint
			idx  []int
			keys []kv.CellKey
		}
		bySrv := make(map[string]*portion)
		var failed []int
		for _, i := range remaining {
			loc, err := c.locate(ctx, table, keys[i].Row)
			if err != nil {
				if !retryable(err) {
					return nil, nil, err
				}
				lastErr = err
				failed = append(failed, i)
				continue
			}
			p := bySrv[loc.ep.Addr()]
			if p == nil {
				p = &portion{ep: loc.ep}
				bySrv[loc.ep.Addr()] = p
			}
			p.idx = append(p.idx, i)
			p.keys = append(p.keys, keys[i])
		}

		var (
			mu       sync.Mutex
			fatalErr error
			wg       sync.WaitGroup
		)
		for _, p := range bySrv {
			wg.Add(1)
			go func(p *portion) {
				defer wg.Done()
				pkvs, pfound, err := p.ep.GetBatch(ctx, table, p.keys, maxTS)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if !retryable(err) && fatalErr == nil {
						fatalErr = err
					}
					lastErr = err
					c.invalidateTable(table)
					failed = append(failed, p.idx...)
					return
				}
				for j, i := range p.idx {
					kvs[i], found[i] = pkvs[j], pfound[j]
				}
			}(p)
		}
		wg.Wait()
		if fatalErr != nil {
			return nil, nil, fatalErr
		}
		remaining = failed
		if len(remaining) == 0 {
			return kvs, found, nil
		}
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-time.After(backoff(c.cfg.RetryBackoff, attempt)):
		}
	}
	if len(remaining) > 0 {
		return nil, nil, fmt.Errorf("kvstore: getbatch %s retries exhausted: %w", table, lastErr)
	}
	return kvs, found, nil
}

// RangeCoords sweeps the live cell coordinates in rng at or below maxTS:
// the server half of a transactional range delete. Each region server
// produces its portion with a keys-only unbounded-batch scan — value bytes
// never leave the server's merge and the sweep costs one round trip per
// region — and the coordinates come back in (row asc, column asc) order.
func (c *Client) RangeCoords(ctx context.Context, table string, rng kv.KeyRange, maxTS kv.Timestamp) ([]kv.CellKey, error) {
	sc := c.NewScanner(ctx, table, rng, maxTS, ScanOptions{Batch: -1, KeysOnly: true})
	defer sc.Close()
	var out []kv.CellKey
	for sc.Next() {
		e := sc.KV()
		out = append(out, kv.CellKey{Row: e.Row, Column: e.Column})
	}
	return out, sc.Err()
}

// Flush delivers a committed write-set to every participant server. It
// groups updates by hosting server and sends the portions in parallel.
// Failed portions are retried (after re-locating) WITHOUT LIMIT, as §3.2
// requires: a bounded retry could permanently block T_F(c) and hence the
// global thresholds; the flush only aborts when ctx is cancelled (the
// client itself dying — which recovery then covers).
//
// piggy/hasPiggy carry the failed server's T_P when the caller is the
// recovery client (paper Alg. 4 replay).
func (c *Client) Flush(ctx context.Context, ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) error {
	remaining := ws.Updates
	for attempt := 0; ; attempt++ {
		// Group remaining updates by hosting server.
		type portion struct {
			ep      RegionEndpoint
			updates []kv.Update
		}
		bySrv := make(map[string]*portion)
		var unlocated []kv.Update
		for _, u := range remaining {
			loc, err := c.locate(ctx, u.Table, u.Row)
			if err != nil {
				if !retryable(err) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					return err
				}
				unlocated = append(unlocated, u)
				continue
			}
			p := bySrv[loc.ep.Addr()]
			if p == nil {
				p = &portion{ep: loc.ep}
				bySrv[loc.ep.Addr()] = p
			}
			p.updates = append(p.updates, u)
		}

		var (
			mu     sync.Mutex
			failed []kv.Update
			wg     sync.WaitGroup
		)
		failed = append(failed, unlocated...)
		for _, p := range bySrv {
			wg.Add(1)
			go func(p *portion) {
				defer wg.Done()
				sub := kv.WriteSet{
					TxnID:    ws.TxnID,
					ClientID: ws.ClientID,
					CommitTS: ws.CommitTS,
					Updates:  p.updates,
				}
				err := p.ep.Apply(ctx, sub, piggy, hasPiggy)
				if err != nil {
					for _, u := range p.updates {
						c.invalidateTable(u.Table)
					}
					mu.Lock()
					failed = append(failed, p.updates...)
					mu.Unlock()
				}
			}(p)
		}
		wg.Wait()
		if len(failed) == 0 {
			return nil
		}
		remaining = failed
		if o := c.cfg.Obs; o != nil {
			o.FlushRetries.Add(1)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff(c.cfg.RetryBackoff, attempt)):
		}
	}
}
