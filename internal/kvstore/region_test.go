package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"txkv/internal/dfs"
	"txkv/internal/kv"
)

func TestWALEntryRoundTrip(t *testing.T) {
	e := WALEntry{
		RegionID: "t-r001",
		KVs: []kv.KeyValue{
			mkKV("r1", "c1", 5, "v1"),
			{Cell: kv.Cell{Row: "r2", Column: "c2", TS: 9}, Tombstone: true},
		},
	}
	got, err := DecodeWALEntry(EncodeWALEntry(e))
	if err != nil {
		t.Fatal(err)
	}
	if got.RegionID != e.RegionID || len(got.KVs) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.KVs[0].Cell != e.KVs[0].Cell || !bytes.Equal(got.KVs[0].Value, e.KVs[0].Value) {
		t.Fatalf("kv[0] = %+v", got.KVs[0])
	}
	if !got.KVs[1].Tombstone {
		t.Fatal("tombstone lost")
	}
}

func TestWALEntryDecodeErrors(t *testing.T) {
	if _, err := DecodeWALEntry(nil); err == nil {
		t.Error("nil input must fail")
	}
	good := EncodeWALEntry(WALEntry{RegionID: "r", KVs: []kv.KeyValue{mkKV("a", "b", 1, "v")}})
	for cut := 1; cut < len(good); cut++ {
		if _, err := DecodeWALEntry(good[:cut]); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

func TestRegionApplyGetScan(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}}
	r, err := OpenRegion(fs, NewBlockCache(1<<20), info)
	if err != nil {
		t.Fatal(err)
	}
	r.Apply([]kv.KeyValue{
		mkKV("a", "f", 1, "v1"),
		mkKV("b", "f", 2, "v2"),
		mkKV("a", "f", 3, "v3"),
	})
	got, found, err := r.Get("a", "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v3" {
		t.Fatalf("get: %v %v %v", got, found, err)
	}
	got, found, _ = r.Get("a", "f", 2)
	if !found || string(got.Value) != "v1" {
		t.Fatalf("snapshot get: %v %v", got, found)
	}
	scan, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(scan) != 2 {
		t.Fatalf("scan: %v %v", scan, err)
	}
}

func TestRegionFlushMovesDataToFiles(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}}
	r, err := OpenRegion(fs, NewBlockCache(1<<20), info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("row%03d", i), "f", kv.Timestamp(i+1), "v")})
	}
	if r.Files() != 0 {
		t.Fatal("files before flush")
	}
	memBefore := r.MemSize()
	if memBefore == 0 {
		t.Fatal("empty memstore before flush")
	}
	if err := r.Flush(256); err != nil {
		t.Fatal(err)
	}
	if r.Files() != 1 {
		t.Fatalf("files = %d", r.Files())
	}
	if r.MemSize() != 0 {
		t.Fatalf("memstore not emptied: %d", r.MemSize())
	}
	// Data readable from the file.
	got, found, err := r.Get("row042", "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v" {
		t.Fatalf("post-flush get: %v %v %v", got, found, err)
	}
	// Second flush with no data is a no-op.
	if err := r.Flush(256); err != nil {
		t.Fatal(err)
	}
	if r.Files() != 1 {
		t.Fatalf("empty flush created a file: %d", r.Files())
	}
}

func TestRegionReopenFindsFiles(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}}
	r1, err := OpenRegion(fs, nil, info)
	if err != nil {
		t.Fatal(err)
	}
	r1.Apply([]kv.KeyValue{mkKV("a", "f", 1, "v1")})
	if err := r1.Flush(0); err != nil {
		t.Fatal(err)
	}
	r1.Apply([]kv.KeyValue{mkKV("b", "f", 2, "v2")})
	if err := r1.Flush(0); err != nil {
		t.Fatal(err)
	}

	// A new server opens the region: files are discovered, memstore empty.
	r2, err := OpenRegion(fs, NewBlockCache(1<<20), info)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Files() != 2 {
		t.Fatalf("reopened files = %d", r2.Files())
	}
	for _, row := range []string{"a", "b"} {
		if _, found, err := r2.Get(kv.Key(row), "f", kv.MaxTimestamp); err != nil || !found {
			t.Fatalf("reopened get %s: %v %v", row, found, err)
		}
	}
	// New flushes continue the sequence without clobbering old files.
	r2.Apply([]kv.KeyValue{mkKV("c", "f", 3, "v3")})
	if err := r2.Flush(0); err != nil {
		t.Fatal(err)
	}
	if r2.Files() != 3 {
		t.Fatalf("files after new flush = %d", r2.Files())
	}
}

func TestRegionVersionsAcrossMemAndFiles(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	info := RegionInfo{ID: "t-r000", Table: "t", Range: kv.KeyRange{}}
	r, _ := OpenRegion(fs, NewBlockCache(1<<20), info)
	r.Apply([]kv.KeyValue{mkKV("k", "f", 10, "old")})
	_ = r.Flush(0)
	// Newer version only in the memstore; older only in the file.
	r.Apply([]kv.KeyValue{mkKV("k", "f", 20, "new")})
	got, _, _ := r.Get("k", "f", kv.MaxTimestamp)
	if string(got.Value) != "new" {
		t.Fatalf("latest = %q", got.Value)
	}
	got, _, _ = r.Get("k", "f", 15)
	if string(got.Value) != "old" {
		t.Fatalf("snapshot = %q", got.Value)
	}
	// Replay of an OLDER version into the memstore (recovery does this)
	// must not shadow the newer one.
	r.Apply([]kv.KeyValue{mkKV("k", "f", 10, "old")})
	got, _, _ = r.Get("k", "f", kv.MaxTimestamp)
	if string(got.Value) != "new" {
		t.Fatalf("after replay, latest = %q", got.Value)
	}
	// Scan dedupes to one visible version.
	scan, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(scan) != 1 || string(scan[0].Value) != "new" {
		t.Fatalf("scan: %v %v", scan, err)
	}
}

func TestRegionScanLimit(t *testing.T) {
	fs := dfs.New(dfs.Config{})
	r, _ := OpenRegion(fs, nil, RegionInfo{ID: "x", Table: "t", Range: kv.KeyRange{}})
	for i := 0; i < 20; i++ {
		r.Apply([]kv.KeyValue{mkKV(fmt.Sprintf("r%02d", i), "f", 1, "v")})
	}
	got, err := r.ScanRange(kv.KeyRange{}, kv.MaxTimestamp, 5)
	if err != nil || len(got) != 5 {
		t.Fatalf("limited scan: %d %v", len(got), err)
	}
	if got[0].Row != "r00" || got[4].Row != "r04" {
		t.Fatalf("limit must keep the smallest keys: %v", got)
	}
}

func TestRegionFlushFailureKeepsDataReadable(t *testing.T) {
	// One data node, replication 1: crashing the node makes the store-file
	// write fail; the snapshot must merge back into the memstore and stay
	// readable, and a later retry must succeed.
	fs := dfs.New(dfs.Config{Replication: 1, DataNodes: 1})
	r, err := OpenRegion(fs, nil, RegionInfo{ID: "ff", Table: "t", Range: kv.KeyRange{}})
	if err != nil {
		t.Fatal(err)
	}
	r.Apply([]kv.KeyValue{mkKV("a", "f", 1, "v1")})
	if err := fs.CrashDataNode("dn-0"); err != nil {
		t.Fatal(err)
	}
	if err := r.Flush(0); err == nil {
		t.Fatal("flush must fail with the DFS down")
	}
	// Data still readable from memory.
	got, found, err := r.Get("a", "f", kv.MaxTimestamp)
	if err != nil || !found || string(got.Value) != "v1" {
		t.Fatalf("data lost after failed flush: %v %v %v", got, found, err)
	}
	if r.Files() != 0 {
		t.Fatalf("failed flush left %d files", r.Files())
	}
	// Recovery of the DFS lets a retry succeed.
	_ = fs.RestartDataNode("dn-0")
	if err := r.Flush(0); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	if r.Files() != 1 || r.MemSize() != 0 {
		t.Fatalf("retry state: files=%d mem=%d", r.Files(), r.MemSize())
	}
	got, found, _ = r.Get("a", "f", kv.MaxTimestamp)
	if !found || string(got.Value) != "v1" {
		t.Fatalf("data lost after retried flush: %v", got)
	}
}
