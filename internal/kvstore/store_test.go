package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"txkv/internal/dfs"
	"txkv/internal/kv"
	"txkv/internal/netsim"
)

// testStore bundles a small running store cluster for tests.
type testStore struct {
	fs     *dfs.FS
	net    *netsim.Network
	master *Master
	srvs   []*RegionServer
}

func newTestStore(t *testing.T, nServers int, syncWrites bool) *testStore {
	t.Helper()
	fs := dfs.New(dfs.Config{Replication: 2, DataNodes: nServers + 1})
	net := netsim.New(netsim.Config{})
	master := NewMaster(MasterConfig{
		HeartbeatTimeout: 200 * time.Millisecond,
		CheckInterval:    20 * time.Millisecond,
	}, fs)
	master.Start()
	ts := &testStore{fs: fs, net: net, master: master}
	for i := 0; i < nServers; i++ {
		srv := NewRegionServer(ServerConfig{
			ID:                fmt.Sprintf("server-%d", i),
			SyncWrites:        syncWrites,
			WALSyncInterval:   20 * time.Millisecond,
			HeartbeatInterval: 20 * time.Millisecond,
		}, fs)
		if err := master.AddServer(srv); err != nil {
			t.Fatal(err)
		}
		ts.srvs = append(ts.srvs, srv)
	}
	t.Cleanup(func() {
		master.Stop()
		for _, s := range ts.srvs {
			if !s.Crashed() {
				s.Stop()
			}
		}
	})
	return ts
}

func (ts *testStore) client(id string) *Client {
	return NewClient(ClientConfig{ID: id}, ts.net, ts.master)
}

func writeSet(client string, ts kv.Timestamp, table string, rows ...string) kv.WriteSet {
	ws := kv.WriteSet{TxnID: uint64(ts), ClientID: client, CommitTS: ts}
	for _, r := range rows {
		ws.Updates = append(ws.Updates, kv.Update{
			Table: table, Row: kv.Key(r), Column: "f", Value: []byte(fmt.Sprintf("v%d-%s", ts, r)),
		})
	}
	return ws
}

func TestStoreEndToEnd(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()

	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a", "b"), 0, false); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found {
		t.Fatalf("get: %v found=%v", err, found)
	}
	if string(got.Value) != "v10-a" {
		t.Fatalf("value = %q", got.Value)
	}
	// Snapshot read below the write's ts misses.
	if _, found, _ = c.Get(ctx, "t", "a", "f", 9); found {
		t.Fatal("read below version should miss")
	}
	// Overwrite at higher ts; old snapshot still reads old value.
	if err := c.Flush(ctx, writeSet("c1", 20, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	got, _, _ = c.Get(ctx, "t", "a", "f", 10)
	if string(got.Value) != "v10-a" {
		t.Fatalf("snapshot read = %q, want v10-a", got.Value)
	}
	got, _, _ = c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if string(got.Value) != "v20-a" {
		t.Fatalf("latest read = %q, want v20-a", got.Value)
	}
}

func TestStoreMultiRegionMultiServer(t *testing.T) {
	ts := newTestStore(t, 3, false)
	if err := ts.master.CreateTable("t", []kv.Key{"h", "p"}); err != nil {
		t.Fatal(err)
	}
	regions, err := ts.master.TableRegions("t")
	if err != nil || len(regions) != 3 {
		t.Fatalf("regions: %v %v", regions, err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	// One write-set spanning all three regions.
	ws := writeSet("c1", 5, "t", "apple", "kiwi", "zebra")
	if err := c.Flush(ctx, ws, 0, false); err != nil {
		t.Fatal(err)
	}
	for _, row := range []string{"apple", "kiwi", "zebra"} {
		_, found, err := c.Get(ctx, "t", kv.Key(row), "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("get %s: %v found=%v", row, err, found)
		}
	}
	// Scan across regions.
	all, err := c.Scan(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("scan = %d entries, want 3", len(all))
	}
	if all[0].Row != "apple" || all[2].Row != "zebra" {
		t.Fatalf("scan order: %v", all)
	}
}

func TestStoreTombstone(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	del := kv.WriteSet{TxnID: 2, ClientID: "c1", CommitTS: 15, Updates: []kv.Update{
		{Table: "t", Row: "a", Column: "f", Tombstone: true},
	}}
	if err := c.Flush(ctx, del, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp); found {
		t.Fatal("deleted row still visible")
	}
	if _, found, _ := c.Get(ctx, "t", "a", "f", 12); !found {
		t.Fatal("pre-delete snapshot should see the row")
	}
	// Scans elide tombstones.
	got, err := c.Scan(ctx, "t", kv.KeyRange{}, kv.MaxTimestamp, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("scan after delete: %v %v", got, err)
	}
}

func TestStoreMemstoreFlushAndReadBack(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		ws := writeSet("c1", kv.Timestamp(i+1), "t", fmt.Sprintf("row%03d", i))
		if err := c.Flush(ctx, ws, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.srvs[0].FlushAll(); err != nil {
		t.Fatal(err)
	}
	// All rows must now come from store files.
	for i := 0; i < 50; i++ {
		row := kv.Key(fmt.Sprintf("row%03d", i))
		_, found, err := c.Get(ctx, "t", row, "f", kv.MaxTimestamp)
		if err != nil || !found {
			t.Fatalf("get %s after flush: %v found=%v", row, err, found)
		}
	}
	// And writes after the flush still land.
	if err := c.Flush(ctx, writeSet("c1", 100, "t", "row000"), 0, false); err != nil {
		t.Fatal(err)
	}
	got, _, _ := c.Get(ctx, "t", "row000", "f", kv.MaxTimestamp)
	if string(got.Value) != "v100-row000" {
		t.Fatalf("post-flush write = %q", got.Value)
	}
}

// TestStoreServerCrashDurableDataSurvives verifies the HBase-internal
// recovery path: synced WAL entries are replayed into the region on its new
// server; the unsynced tail is lost (that loss is exactly what the paper's
// transactional recovery covers — tested in internal/core).
func TestStoreServerCrashDurableDataSurvives(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()

	// Find the server hosting the single region.
	host := hostFor(t, ts, "t", "a")

	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := host.SyncWAL(); err != nil { // durable
		t.Fatal(err)
	}
	// Second write stays only in the WAL buffer: crash before any sync.
	host2 := hostFor(t, ts, "t", "b")
	if host2 != host {
		t.Fatal("single region must have a single host")
	}
	// Write directly to the server to avoid the async WAL syncer racing us.
	ws := writeSet("c1", 20, "t", "b")
	if err := host.ApplyWriteSet(ws, 0, false); err != nil {
		t.Fatal(err)
	}
	crashed := host.ID()
	host.Crash()
	ts.net.SetDown(crashed, true)

	// Master detects the failure and reassigns; wait for the region to be
	// served again.
	waitLocated(t, ts, "t", "a", crashed)

	got, found, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found {
		t.Fatalf("durable row lost after crash: %v found=%v", err, found)
	}
	if string(got.Value) != "v10-a" {
		t.Fatalf("value = %q", got.Value)
	}
	// The unsynced write is gone (to be recovered by the TM-log layer).
	if _, found, _ := c.Get(ctx, "t", "b", "f", kv.MaxTimestamp); found {
		t.Fatal("unsynced write survived a crash; WAL semantics broken")
	}
}

func hostFor(t *testing.T, ts *testStore, table string, row string) *RegionServer {
	t.Helper()
	_, host, err := ts.master.Locate(table, kv.Key(row))
	if err != nil {
		t.Fatal(err)
	}
	return host.(*RegionServer)
}

// waitLocated waits until (table, "a") is served by a server other than
// exclude.
func waitLocated(t *testing.T, ts *testStore, table, row, exclude string) *RegionServer {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, srv, err := ts.master.Locate(table, kv.Key(row))
		if err == nil && srv.ID() != exclude {
			return srv.(*RegionServer)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("region was not reassigned in time")
	return nil
}

// TestStoreRecoveryGateBlocksRegion verifies hook 2: a region does not come
// online before the recovery gate returns.
func TestStoreRecoveryGateBlocksRegion(t *testing.T) {
	ts := newTestStore(t, 2, false)
	gateRelease := make(chan struct{})
	var gateCalls atomic.Int32
	ts.master.SetRecoveryGate(gateFunc(func(r RegionInfo, failed string, host RegionHost) error {
		gateCalls.Add(1)
		<-gateRelease
		return nil
	}))
	var failNotices atomic.Int32
	ts.master.AddFailureListener(listenerFunc(func(serverID string, regions []RegionInfo) {
		failNotices.Add(1)
	}))
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	host := hostFor(t, ts, "t", "a")
	_ = host.SyncWAL()
	host.Crash()
	ts.net.SetDown(host.ID(), true)

	// Wait for the gate to be entered.
	deadline := time.Now().Add(5 * time.Second)
	for gateCalls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if gateCalls.Load() == 0 {
		t.Fatal("recovery gate never invoked")
	}
	if failNotices.Load() == 0 {
		t.Fatal("failure listener never invoked")
	}
	// While gated, the region must NOT be served.
	if _, _, err := ts.master.Locate("t", "a"); err == nil {
		t.Fatal("region served while recovery gate held")
	}
	close(gateRelease)
	waitLocated(t, ts, "t", "a", host.ID())
	// After the gate, the durable row is readable.
	_, found, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found {
		t.Fatalf("read after gated recovery: %v found=%v", err, found)
	}
}

type gateFunc func(RegionInfo, string, RegionHost) error

func (f gateFunc) RecoverRegion(r RegionInfo, failed string, host RegionHost) error {
	return f(r, failed, host)
}

type listenerFunc func(string, []RegionInfo)

func (f listenerFunc) OnServerFailure(id string, rs []RegionInfo) { f(id, rs) }

// TestStoreFlushRetriesThroughFailure verifies the paper's §3.2 workaround:
// a client flush interrupted by a server failure keeps retrying (no retry
// limit) and completes once the region is re-opened elsewhere.
func TestStoreFlushRetriesThroughFailure(t *testing.T) {
	ts := newTestStore(t, 2, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 1, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	host := hostFor(t, ts, "t", "a")
	_ = host.SyncWAL()
	host.Crash()
	ts.net.SetDown(host.ID(), true)

	// Start the flush immediately: it must block and retry until the
	// region comes back, then succeed.
	done := make(chan error, 1)
	go func() { done <- c.Flush(ctx, writeSet("c1", 30, "t", "a"), 0, false) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("flush during failover: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("flush did not complete after failover")
	}
	got, _, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || string(got.Value) != "v30-a" {
		t.Fatalf("post-failover read: %q %v", got.Value, err)
	}
}

func TestStoreServerHooksObserveWrites(t *testing.T) {
	ts := newTestStore(t, 1, false)
	var mu sync.Mutex
	var seen []kv.Timestamp
	var piggies []kv.Timestamp
	ts.srvs[0].SetHooks(hooksFunc(func(ws kv.WriteSet, piggy kv.Timestamp, hasPiggy bool) {
		mu.Lock()
		defer mu.Unlock()
		seen = append(seen, ws.CommitTS)
		if hasPiggy {
			piggies = append(piggies, piggy)
		}
	}))
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 7, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(ctx, writeSet("cR", 3, "t", "b"), 2, true); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 3 {
		t.Fatalf("hook saw %v", seen)
	}
	if len(piggies) != 1 || piggies[0] != 2 {
		t.Fatalf("piggyback saw %v", piggies)
	}
}

type hooksFunc func(kv.WriteSet, kv.Timestamp, bool)

func (f hooksFunc) OnWriteSetApplied(ws kv.WriteSet, p kv.Timestamp, h bool) { f(ws, p, h) }

func TestStoreSyncWritesMode(t *testing.T) {
	ts := newTestStore(t, 2, true)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := ts.client("c1")
	ctx := context.Background()
	if err := c.Flush(ctx, writeSet("c1", 10, "t", "a"), 0, false); err != nil {
		t.Fatal(err)
	}
	// In sync mode the write is durable immediately: crash and recover.
	host := hostFor(t, ts, "t", "a")
	host.Crash()
	ts.net.SetDown(host.ID(), true)
	waitLocated(t, ts, "t", "a", host.ID())
	_, found, err := c.Get(ctx, "t", "a", "f", kv.MaxTimestamp)
	if err != nil || !found {
		t.Fatalf("sync-mode write lost: %v found=%v", err, found)
	}
}

func TestMasterErrors(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if err := ts.master.CreateTable("t", nil); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate table: %v", err)
	}
	if _, _, err := ts.master.Locate("missing", "a"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table: %v", err)
	}
	if _, err := ts.master.TableRegions("missing"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("missing table regions: %v", err)
	}
	if got := ts.master.LiveServers(); len(got) != 1 || got[0] != "server-0" {
		t.Fatalf("LiveServers = %v", got)
	}
}

func TestClientReadRetriesExhausted(t *testing.T) {
	ts := newTestStore(t, 1, false)
	if err := ts.master.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	c := NewClient(ClientConfig{ID: "c1", ReadRetries: 3, RetryBackoff: time.Millisecond}, ts.net, ts.master)
	// Crash the only server; no reassignment target exists.
	ts.srvs[0].Crash()
	ts.net.SetDown(ts.srvs[0].ID(), true)
	_, _, err := c.Get(context.Background(), "t", "a", "f", kv.MaxTimestamp)
	if err == nil {
		t.Fatal("expected error with all servers down")
	}
}
