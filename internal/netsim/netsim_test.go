package netsim

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestCallDelivers(t *testing.T) {
	n := New(Config{})
	called := false
	if err := n.Call(context.Background(), "a", "b", func() error {
		called = true
		return nil
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !called {
		t.Fatal("fn not invoked")
	}
}

func TestCallPropagatesFnError(t *testing.T) {
	n := New(Config{})
	want := errors.New("boom")
	err := n.Call(context.Background(), "a", "b", func() error { return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestDownNode(t *testing.T) {
	n := New(Config{})
	n.SetDown("b", true)
	err := n.Call(context.Background(), "a", "b", func() error { return nil })
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if !n.IsDown("b") {
		t.Fatal("IsDown(b) = false")
	}
	// Caller down too.
	err = n.Call(context.Background(), "b", "a", func() error { return nil })
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	n.SetDown("b", false)
	if err := n.Call(context.Background(), "a", "b", func() error { return nil }); err != nil {
		t.Fatalf("after revive: %v", err)
	}
}

func TestPartition(t *testing.T) {
	n := New(Config{})
	n.SetPartition("a", 1)
	err := n.Call(context.Background(), "a", "b", func() error { return nil })
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	// Same group communicates.
	n.SetPartition("b", 1)
	if err := n.Call(context.Background(), "a", "b", func() error { return nil }); err != nil {
		t.Fatalf("same-group call: %v", err)
	}
	n.HealPartitions()
	if err := n.Call(context.Background(), "a", "c", func() error { return nil }); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	n := New(Config{RPCLatency: 5 * time.Millisecond})
	start := time.Now()
	if err := n.Call(context.Background(), "a", "b", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 10*time.Millisecond {
		t.Fatalf("round trip %v, want >= 10ms (two hops)", got)
	}
}

func TestContextCancellation(t *testing.T) {
	n := New(Config{RPCLatency: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := n.Call(ctx, "a", "b", func() error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSend(t *testing.T) {
	n := New(Config{})
	got := false
	if err := n.Send(context.Background(), "a", "b", func() { got = true }); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("send fn not invoked")
	}
	n.SetDown("b", true)
	if err := n.Send(context.Background(), "a", "b", func() {}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(Config{RPCLatency: time.Millisecond, Jitter: time.Millisecond, Seed: 7})
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := n.Call(context.Background(), "a", "b", func() error { return nil }); err != nil {
			t.Fatal(err)
		}
		if el := time.Since(start); el < 2*time.Millisecond {
			t.Fatalf("round trip %v below base latency", el)
		}
	}
}

func TestCrashMidCallLosesResponse(t *testing.T) {
	// The destination dies while the response is in flight: the caller
	// must see an error even though fn executed (at-most-once is NOT
	// guaranteed — exactly why idempotent replay matters).
	n := New(Config{RPCLatency: 20 * time.Millisecond})
	executed := false
	done := make(chan error, 1)
	go func() {
		done <- n.Call(context.Background(), "a", "b", func() error {
			executed = true
			return nil
		})
	}()
	time.Sleep(30 * time.Millisecond) // request delivered, response in flight
	n.SetDown("b", true)
	err := <-done
	if !executed {
		t.Fatal("fn never executed")
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("caller saw %v, want ErrNodeDown (lost response)", err)
	}
}
