// Package netsim simulates the network between the components of the
// cluster. All components run as goroutines inside one process and call each
// other through typed stubs; every such call is gated through a Network,
// which injects configurable latency, refuses delivery across partitions,
// and fails calls to or from crashed nodes. Treating a partitioned node the
// same as a crashed one matches the paper's failure model (§3.1: "we treat a
// network partition as a crash failure").
package netsim

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Delivery errors. Callers distinguish unreachable (retryable elsewhere)
// from cancelled contexts.
var (
	ErrUnreachable = errors.New("netsim: destination unreachable")
	ErrNodeDown    = errors.New("netsim: node is down")
)

// Config controls latency injection.
type Config struct {
	// RPCLatency is the one-way message latency. Each RPC pays it twice
	// (request + response). Zero disables latency injection entirely,
	// which unit tests use.
	RPCLatency time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter) to
	// each one-way hop.
	Jitter time.Duration
	// Seed seeds the jitter source; 0 picks a fixed default so runs are
	// reproducible.
	Seed int64
}

// Network tracks node liveness and partitions and delays calls.
type Network struct {
	cfg Config

	mu        sync.Mutex
	rng       *rand.Rand
	down      map[string]bool
	partition map[string]int // node -> partition group; unset means group 0
}

// New returns a Network with the given config.
func New(cfg Config) *Network {
	seed := cfg.Seed
	if seed == 0 {
		seed = 424243
	}
	return &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		down:      make(map[string]bool),
		partition: make(map[string]int),
	}
}

// SetDown marks a node crashed (true) or alive (false). Calls involving a
// down node fail with ErrNodeDown.
func (n *Network) SetDown(node string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[node] = true
	} else {
		delete(n.down, node)
	}
}

// IsDown reports whether the node is currently marked crashed.
func (n *Network) IsDown(node string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.down[node]
}

// SetPartition assigns a node to a partition group. Nodes in different
// groups cannot communicate. Group 0 is the default (fully connected) group.
func (n *Network) SetPartition(node string, group int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if group == 0 {
		delete(n.partition, node)
	} else {
		n.partition[node] = group
	}
}

// HealPartitions returns every node to group 0.
func (n *Network) HealPartitions() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[string]int)
}

// reachable reports whether from can currently talk to to.
func (n *Network) reachable(from, to string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down[from] || n.down[to] {
		return fmt.Errorf("%w: %s -> %s", ErrNodeDown, from, to)
	}
	if n.partition[from] != n.partition[to] {
		return fmt.Errorf("%w: %s -> %s partitioned", ErrUnreachable, from, to)
	}
	return nil
}

// hop sleeps one one-way latency, honouring ctx cancellation.
func (n *Network) hop(ctx context.Context) error {
	d := n.cfg.RPCLatency
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Call executes fn as an RPC from one node to another: it checks
// reachability, pays one network hop, invokes fn, pays the return hop, and
// re-checks reachability (a node that died while the call was in flight
// loses the response, as in a real network).
func (n *Network) Call(ctx context.Context, from, to string, fn func() error) error {
	if err := n.reachable(from, to); err != nil {
		return err
	}
	if err := n.hop(ctx); err != nil {
		return err
	}
	if err := n.reachable(from, to); err != nil {
		return err
	}
	callErr := fn()
	if err := n.hop(ctx); err != nil {
		return err
	}
	if err := n.reachable(from, to); err != nil {
		return err
	}
	return callErr
}

// Send is a one-way message: reachability check plus a single hop.
func (n *Network) Send(ctx context.Context, from, to string, fn func()) error {
	if err := n.reachable(from, to); err != nil {
		return err
	}
	if err := n.hop(ctx); err != nil {
		return err
	}
	if err := n.reachable(from, to); err != nil {
		return err
	}
	fn()
	return nil
}
