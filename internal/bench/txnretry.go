package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/cluster"
	"txkv/internal/metrics"
	"txkv/internal/txmgr"
	"txkv/internal/ycsb"
)

// TxnRetry benchmarks transaction conflict handling under contention: a
// read-modify-write workload over a deliberately tiny hot keyspace, run in
// two modes against identical clusters —
//
//   - caller: the pre-v2 pattern, a hand-rolled loop around an
//     unmanaged transaction (MaxRetries: NoRetry) that re-begins on
//     ErrConflict with no backoff, as every example used to do;
//   - managed: Client.Update, the middleware-owned retry with capped
//     exponential backoff.
//
// The interesting outputs are the conflict volume each mode generates for
// the same committed work and the success latency tail: backoff desynchronizes
// colliding workers, so the managed mode commits the same workload with
// fewer wasted validation rounds. BENCH_PR5.json in the repo root records a
// reference run in the TxnRetryResult format.

// txnRetryHotKeys is the contended keyspace size: small enough that
// Threads workers collide constantly.
const txnRetryHotKeys = 16

// TxnRetryMode is one mode's measurements.
type TxnRetryMode struct {
	CommitsPerSec float64 `json:"commits_per_sec"`
	Conflicts     int64   `json:"conflicts"`
	// ConflictsPerCommit is the wasted-work ratio: validation rounds that
	// aborted per committed transaction.
	ConflictsPerCommit float64 `json:"conflicts_per_commit"`
	P50Micros          float64 `json:"p50_us"`
	P99Micros          float64 `json:"p99_us"`
	Failures           int64   `json:"failures"`
}

// TxnRetryResult is the machine-readable output of one TxnRetry run.
type TxnRetryResult struct {
	Records     int     `json:"records"`
	HotKeys     int     `json:"hot_keys"`
	Threads     int     `json:"threads"`
	DurationSec float64 `json:"duration_sec"`

	Caller  TxnRetryMode `json:"caller_retry"`
	Managed TxnRetryMode `json:"managed_update"`
}

// TxnRetryJSONPath, when non-empty, makes TxnRetry additionally write its
// TxnRetryResult as JSON to the given file (set by cmd/txkvbench -json).
var TxnRetryJSONPath string

// TxnRetry runs the contention experiment and prints one row per mode.
func TxnRetry(o Options) error {
	o = o.withDefaults()
	res := TxnRetryResult{
		Records:     o.Records,
		HotKeys:     txnRetryHotKeys,
		Threads:     o.Threads,
		DurationSec: o.Duration.Seconds(),
	}

	var err error
	if res.Caller, err = txnRetryMode(o, false); err != nil {
		return err
	}
	if res.Managed, err = txnRetryMode(o, true); err != nil {
		return err
	}

	fprintf(o.Out, "# txn_retry: conflict retry under contention (%d hot keys, %d threads)\n",
		txnRetryHotKeys, o.Threads)
	fprintf(o.Out, "%-8s %14s %12s %12s %12s %10s\n", "mode", "commits/s", "conflicts", "cflt/commit", "p99-us", "failures")
	for _, row := range []struct {
		name string
		m    TxnRetryMode
	}{{"caller", res.Caller}, {"managed", res.Managed}} {
		fprintf(o.Out, "%-8s %14.0f %12d %12.2f %12.1f %10d\n",
			row.name, row.m.CommitsPerSec, row.m.Conflicts, row.m.ConflictsPerCommit, row.m.P99Micros, row.m.Failures)
	}

	if TxnRetryJSONPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(TxnRetryJSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("txn_retry: write json: %w", err)
		}
		fprintf(o.Out, "\nwrote %s\n", TxnRetryJSONPath)
	}
	return nil
}

// txnRetryMode measures one retry discipline on a fresh cluster.
func txnRetryMode(o Options, managed bool) (TxnRetryMode, error) {
	var m TxnRetryMode
	// Software-path configuration (like readwrite): zero simulated
	// latencies so the measurement is validation + retry machinery, with
	// just the group-commit fsync kept to make wasted rounds cost something.
	cfg := paperRatioConfig(2, false, time.Second)
	cfg.RPCLatency = 0
	cfg.DFSSyncLatency = 0
	cfg.DFSReadLatency = 0
	cfg.LogSyncLatency = 200 * time.Microsecond
	c, w, err := setup(o, cfg)
	if err != nil {
		return m, err
	}
	defer c.Stop()

	hist := &metrics.Histogram{}
	var (
		commits   atomic.Int64
		conflicts atomic.Int64
		failures  atomic.Int64
		wg        sync.WaitGroup
	)
	ctx := context.Background()
	stopAt := time.Now().Add(o.Duration)
	for th := 0; th < o.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			cl, err := c.NewClient(fmt.Sprintf("retry-%v-%d", managed, th))
			if err != nil {
				failures.Add(1)
				return
			}
			defer cl.Stop()
			rng := rand.New(rand.NewSource(o.Seed*97 + int64(th)))
			for time.Now().Before(stopAt) {
				a := ycsb.RowKey(uint64(rng.Intn(txnRetryHotKeys)))
				b := ycsb.RowKey(uint64(rng.Intn(txnRetryHotKeys)))
				body := func(txn *cluster.Txn) error {
					av, _, err := txn.Get(ctx, w.Table, a, "field0")
					if err != nil {
						return err
					}
					if err := txn.Put(ctx, w.Table, a, "field0", append(av[:len(av):len(av)], 'x')); err != nil {
						return err
					}
					if a == b {
						return nil
					}
					bv, _, err := txn.Get(ctx, w.Table, b, "field0")
					if err != nil {
						return err
					}
					return txn.Put(ctx, w.Table, b, "field0", append(bv[:len(bv):len(bv)], 'y'))
				}
				t0 := time.Now()
				var err error
				if managed {
					_, err = cl.UpdateWith(ctx, cluster.TxnOptions{MaxRetries: 64}, body)
				} else {
					// The pre-v2 caller pattern: immediate re-begin on
					// conflict, no backoff.
					for {
						_, err = cl.UpdateWith(ctx, cluster.TxnOptions{MaxRetries: cluster.NoRetry}, body)
						if !errors.Is(err, txmgr.ErrConflict) {
							break
						}
						conflicts.Add(1)
					}
				}
				if err != nil {
					failures.Add(1)
					continue
				}
				commits.Add(1)
				hist.Record(time.Since(t0))
			}
			if managed {
				_, r := cl.UpdateStats()
				conflicts.Add(r)
			}
		}(th)
	}
	wg.Wait()

	n := commits.Load()
	m.CommitsPerSec = float64(n) / o.Duration.Seconds()
	m.Conflicts = conflicts.Load()
	if n > 0 {
		m.ConflictsPerCommit = float64(m.Conflicts) / float64(n)
	}
	m.P50Micros = float64(hist.Quantile(0.50)) / 1e3
	m.P99Micros = float64(hist.Quantile(0.99)) / 1e3
	m.Failures = failures.Load()
	return m, nil
}
