package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"txkv/internal/cluster"
	"txkv/internal/kv"
	"txkv/internal/kvstore"
	"txkv/internal/metrics"
	"txkv/internal/rpc"
)

// RPC quantifies the wire protocol's per-operation cost: the same
// operations (point gets, 3-put commits, 100-row scans) run closed-loop
// against two physically different deployments of the same cluster — the
// in-process loopback transport, and a multi-process shape where region
// servers join over TCP and the client connects through txkv.Connect. All
// simulated latencies are zero, so the tcp-minus-loopback delta is the
// protocol's real software cost: framing, codecs, syscalls, scheduling.
// BENCH_PR8.json records a reference run; EXPERIMENTS.md discusses it.

// RPCResult is the machine-readable output of one RPC run.
type RPCResult struct {
	Records     int     `json:"records"`
	DurationSec float64 `json:"duration_sec"`
	Threads     int     `json:"threads"`

	Phases []RPCPhaseResult `json:"phases"`
}

// RPCPhaseResult is one (transport, operation) phase.
type RPCPhaseResult struct {
	// Transport is "loopback" (in-process) or "tcp" (multi-process over
	// real sockets via the wire protocol).
	Transport string  `json:"transport"`
	Op        string  `json:"op"` // "get" | "commit3" | "scan100"
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// RPCJSONPath, when non-empty, makes RPC write its RPCResult as JSON to
// the given file (set by cmd/txkvbench -json).
var RPCJSONPath string

const rpcBenchTable = "rpcbench"

func rpcRowKey(i int) kv.Key { return kv.Key(fmt.Sprintf("user%08d", i)) }

// RPC runs the wire-protocol overhead experiment and prints one row per
// (transport, op) phase.
func RPC(o Options) error {
	o = o.withDefaults()
	res := RPCResult{Records: o.Records, DurationSec: o.Duration.Seconds(), Threads: o.Threads}

	// Reads and scans are measured before commits: the commit phase leaves
	// behind as many row versions as it manages to write, and the two
	// transports commit at different rates — scanning afterwards would
	// compare differently-sized version histories, not transports.
	ops := []string{"get", "scan100", "commit3"}

	// Loopback: the ordinary in-process cluster.
	{
		c, err := cluster.New(cluster.Config{Servers: 2})
		if err != nil {
			return err
		}
		cl, err := rpcBenchLoad(c, o.Records)
		if err != nil {
			c.Stop()
			return err
		}
		for _, op := range ops {
			pr, err := rpcPhase(cl, o, "loopback", op)
			if err != nil {
				c.Stop()
				return err
			}
			res.Phases = append(res.Phases, pr)
		}
		cl.Stop()
		c.Stop()
	}

	// TCP: master-only cluster serving the wire protocol, two region-server
	// nodes joined over TCP, client connected remotely. Reads and scans
	// cross client->region sockets; commits cross client->gateway->log and
	// flush back over master->region sockets.
	{
		c, err := cluster.New(cluster.Config{Servers: -1})
		if err != nil {
			return err
		}
		defer c.Stop()
		addr, err := c.ServeRPC("127.0.0.1:0")
		if err != nil {
			return err
		}
		var nodes []*rpc.RegionNode
		defer func() {
			for _, n := range nodes {
				n.Stop()
			}
		}()
		for i := 0; i < 2; i++ {
			node, err := rpc.StartRegionNode(rpc.RegionNodeConfig{
				ID:         fmt.Sprintf("bench-rs%d", i+1),
				MasterAddr: addr,
				Server:     kvstore.ServerConfig{HeartbeatInterval: 500 * time.Millisecond},
			})
			if err != nil {
				return err
			}
			nodes = append(nodes, node)
		}
		remote, err := cluster.ConnectRemote(addr)
		if err != nil {
			return err
		}
		defer remote.Close()
		cl, err := rpcBenchLoadRemote(c, remote, o.Records)
		if err != nil {
			return err
		}
		for _, op := range ops {
			pr, err := rpcPhase(cl, o, "tcp", op)
			if err != nil {
				cl.Stop()
				return err
			}
			res.Phases = append(res.Phases, pr)
		}
		cl.Stop()
	}

	fprintf(o.Out, "# rpc: wire-protocol overhead, loopback vs multi-process tcp (zero simulated latency)\n")
	fprintf(o.Out, "%-10s %-9s %12s %10s %10s\n", "transport", "op", "ops/s", "p50-us", "p99-us")
	for _, p := range res.Phases {
		fprintf(o.Out, "%-10s %-9s %12.1f %10.1f %10.1f\n",
			p.Transport, p.Op, p.OpsPerSec, p.P50Micros, p.P99Micros)
	}
	if RPCJSONPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(RPCJSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("rpc: write json: %w", err)
		}
		fprintf(o.Out, "\nwrote %s\n", RPCJSONPath)
	}
	return nil
}

// rpcBenchLoad creates and loads the bench table through a local client.
func rpcBenchLoad(c *cluster.Cluster, records int) (*cluster.Client, error) {
	if err := c.CreateTable(rpcBenchTable, []kv.Key{rpcRowKey(records / 2)}); err != nil {
		return nil, err
	}
	cl, err := c.NewClient("rpcbench-loader")
	if err != nil {
		return nil, err
	}
	if err := rpcBenchFill(cl, records); err != nil {
		cl.Stop()
		return nil, err
	}
	return cl, nil
}

// rpcBenchLoadRemote creates the table via the cluster (admin side) and
// loads it through a remote client, so even the load crosses the wire.
func rpcBenchLoadRemote(c *cluster.Cluster, remote *cluster.Remote, records int) (*cluster.Client, error) {
	if err := c.CreateTable(rpcBenchTable, []kv.Key{rpcRowKey(records / 2)}); err != nil {
		return nil, err
	}
	cl, err := remote.NewClient("rpcbench-remote")
	if err != nil {
		return nil, err
	}
	if err := rpcBenchFill(cl, records); err != nil {
		cl.Stop()
		return nil, err
	}
	return cl, nil
}

// rpcBenchFill writes records rows in 500-row transactions.
func rpcBenchFill(cl *cluster.Client, records int) error {
	ctx := context.Background()
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for lo := 0; lo < records; lo += 500 {
		hi := lo + 500
		if hi > records {
			hi = records
		}
		if _, err := cl.Update(ctx, func(txn *cluster.Txn) error {
			for i := lo; i < hi; i++ {
				if err := txn.Put(ctx, rpcBenchTable, rpcRowKey(i), "f", val); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("load rows [%d,%d): %w", lo, hi, err)
		}
	}
	return nil
}

// rpcPhase runs one closed-loop (transport, op) measurement.
func rpcPhase(cl *cluster.Client, o Options, transport, op string) (RPCPhaseResult, error) {
	pr := RPCPhaseResult{Transport: transport, Op: op}
	hist := &metrics.Histogram{}
	var nops atomic.Int64
	var firstErr atomic.Value
	stopAt := time.Now().Add(o.Duration)
	ctx := context.Background()
	val := []byte("rpcbench-update-value-100-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")

	done := make(chan struct{}, o.Threads)
	for th := 0; th < o.Threads; th++ {
		go func(th int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(o.Seed*977 + int64(th)))
			var ro *cluster.Txn
			if op != "commit3" {
				t, err := cl.BeginTxn(cluster.TxnOptions{ReadOnly: true})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ro = t
				defer func() { ro.Abort() }()
			}
			n := 0
			for time.Now().Before(stopAt) {
				// Re-pin the read snapshot periodically so the version-GC
				// horizon is never held back for a whole phase.
				if ro != nil {
					if n++; n%256 == 0 {
						ro.Abort()
						t, err := cl.BeginTxn(cluster.TxnOptions{ReadOnly: true})
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							return
						}
						ro = t
					}
				}
				t0 := time.Now()
				var err error
				switch op {
				case "get":
					_, _, err = ro.Get(ctx, rpcBenchTable, rpcRowKey(rng.Intn(o.Records)), "f")
				case "commit3":
					_, err = cl.Update(ctx, func(txn *cluster.Txn) error {
						for j := 0; j < 3; j++ {
							if err := txn.Put(ctx, rpcBenchTable, rpcRowKey(rng.Intn(o.Records)), "f", val); err != nil {
								return err
							}
						}
						return nil
					})
				case "scan100":
					start := rng.Intn(maxInt(o.Records-100, 1))
					sc := ro.Scan(ctx, rpcBenchTable, kv.KeyRange{
						Start: rpcRowKey(start),
						End:   rpcRowKey(start + 100),
					}, cluster.ScanOptions{Batch: 64})
					for sc.Next() {
					}
					err = sc.Err()
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				hist.Record(time.Since(t0))
				nops.Add(1)
			}
		}(th)
	}
	for th := 0; th < o.Threads; th++ {
		<-done
	}
	if e := firstErr.Load(); e != nil {
		return pr, e.(error)
	}
	n := nops.Load()
	if n == 0 {
		return pr, fmt.Errorf("rpc phase %s/%s completed no operations", transport, op)
	}
	pr.OpsPerSec = float64(n) / o.Duration.Seconds()
	pr.P50Micros = float64(hist.Quantile(0.50)) / 1e3
	pr.P99Micros = float64(hist.Quantile(0.99)) / 1e3
	return pr, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
