package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/cluster"
	"txkv/internal/kv"
	"txkv/internal/metrics"
)

// Replication quantifies the region-replication subsystem along the three
// axes its design trades on: the commit-latency price of quorum ack (every
// write-set crosses to a majority of region copies before the client's ack),
// the scan-throughput payoff of follower reads (snapshot scans spread over
// all copies instead of hammering the primary), and the availability blip
// when a primary dies (failure detection + follower promotion, measured from
// the client side as the largest gap between successful commits). Phases,
// each on a fresh cluster with zero simulated latency so the numbers are
// pure software cost:
//
//	commit_rf1     paced writers, ReplicationFactor=1 — the no-replication
//	               commit p50/p99 yardstick
//	commit_rf3     the same writers at ReplicationFactor=3: quorum=2 ack on
//	               the commit path
//	scan_primary   RF=3 but follower reads off — every scan hits primaries
//	scan_follower  RF=3 with follower reads on — bounded-staleness scans
//	               admitted by follower copies
//	failover       writers at RF=3 while the primary-heaviest server is
//	               crashed mid-run; reports the client-visible blip and the
//	               master's promotion window
//
// BENCH_PR10.json records a reference run; EXPERIMENTS.md discusses it.

// ReplicationResult is the machine-readable output of one Replication run.
type ReplicationResult struct {
	DurationSec float64 `json:"duration_sec"`
	Threads     int     `json:"threads"`

	Phases []ReplicationPhaseResult `json:"phases"`
}

// ReplicationPhaseResult is one phase's measurements; fields a phase does
// not exercise are zero.
type ReplicationPhaseResult struct {
	Phase           string  `json:"phase"`
	CommitsPerSec   float64 `json:"commits_per_sec,omitempty"`
	CommitP50Micros float64 `json:"commit_p50_us,omitempty"`
	CommitP99Micros float64 `json:"commit_p99_us,omitempty"`
	RowsPerSec      float64 `json:"rows_per_sec,omitempty"`
	ScansPerSec     float64 `json:"scans_per_sec,omitempty"`
	// FollowerReads counts scans served by follower copies during the scan
	// phases (zero when follower reads are off — the control).
	FollowerReads int64 `json:"follower_reads,omitempty"`
	// BlipMS is the largest gap between consecutive successful commits
	// across the whole failover phase — the client-visible unavailability
	// window around the crash.
	BlipMS float64 `json:"blip_ms,omitempty"`
	// FailoverWindowMS is the master's own promotion window (detection
	// excluded): last failover duration from the replica metric family.
	FailoverWindowMS float64 `json:"failover_window_ms,omitempty"`
	// CommitErrors counts failed commits during the failover phase (they
	// concentrate inside the blip).
	CommitErrors int64 `json:"commit_errors,omitempty"`
}

// ReplicationJSONPath, when non-empty, makes Replication write its result as
// JSON to the given file (set by cmd/txkvbench -json).
var ReplicationJSONPath string

const replBenchTable = "replbench"

// replWriterInterval paces each writer to one commit per interval so the
// percentiles measure the quorum round, not closed-loop queueing.
const replWriterInterval = 5 * time.Millisecond

// Replication runs the region-replication experiment and prints one row per
// phase.
func Replication(o Options) error {
	o = o.withDefaults()
	res := ReplicationResult{DurationSec: o.Duration.Seconds(), Threads: o.Threads}

	for _, rf := range []int{1, 3} {
		pr, err := replCommitPhase(o, rf)
		if err != nil {
			return err
		}
		res.Phases = append(res.Phases, pr)
		runtime.GC()
	}
	for _, follower := range []bool{false, true} {
		pr, err := replScanPhase(o, follower)
		if err != nil {
			return err
		}
		res.Phases = append(res.Phases, pr)
		runtime.GC()
	}
	pr, err := replFailoverPhase(o)
	if err != nil {
		return err
	}
	res.Phases = append(res.Phases, pr)

	fprintf(o.Out, "# replication: quorum-ack commit price, follower-read scans, failover blip\n")
	fprintf(o.Out, "%-14s %11s %11s %11s %11s %11s %9s %9s %9s %7s\n",
		"phase", "commits/s", "cmt-p50-us", "cmt-p99-us", "rows/s", "scans/s", "flw-reads", "blip-ms", "fo-ms", "errors")
	for _, p := range res.Phases {
		fprintf(o.Out, "%-14s %11.1f %11.1f %11.1f %11.1f %11.1f %9d %9.1f %9.1f %7d\n",
			p.Phase, p.CommitsPerSec, p.CommitP50Micros, p.CommitP99Micros,
			p.RowsPerSec, p.ScansPerSec, p.FollowerReads, p.BlipMS, p.FailoverWindowMS, p.CommitErrors)
	}
	if ReplicationJSONPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(ReplicationJSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("replication: write json: %w", err)
		}
		fprintf(o.Out, "\nwrote %s\n", ReplicationJSONPath)
	}
	return nil
}

// replCommitPhase measures the paced commit distribution at the given
// replication factor on three servers.
func replCommitPhase(o Options, rf int) (ReplicationPhaseResult, error) {
	pr := ReplicationPhaseResult{Phase: fmt.Sprintf("commit_rf%d", rf)}
	c, err := cluster.New(cluster.Config{Servers: 3, ReplicationFactor: rf})
	if err != nil {
		return pr, err
	}
	defer c.Stop()
	if err := c.CreateTable(replBenchTable, nil); err != nil {
		return pr, err
	}
	hist := &metrics.Histogram{}
	commits, _, err := replRunWriters(c, o, o.Duration, hist, nil)
	if err != nil {
		return pr, err
	}
	if commits == 0 {
		return pr, fmt.Errorf("replication %s completed no commits", pr.Phase)
	}
	pr.CommitsPerSec = float64(commits) / o.Duration.Seconds()
	pr.CommitP50Micros = float64(hist.Quantile(0.50)) / 1e3
	pr.CommitP99Micros = float64(hist.Quantile(0.99)) / 1e3
	return pr, nil
}

// replRunWriters drives o.Threads paced writers against disjoint key spaces
// for d, recording per-commit latency into hist. With blip non-nil it keeps
// running through commit errors, tracking the largest gap between successful
// commits and the error count (the failover phase); otherwise the first
// error aborts the phase.
func replRunWriters(c *cluster.Cluster, o Options, d time.Duration, hist *metrics.Histogram, blip *replBlipTracker) (int64, int64, error) {
	ctx := context.Background()
	var commits, errs atomic.Int64
	var firstErr atomic.Value
	stopAt := time.Now().Add(d)
	var wg sync.WaitGroup
	for th := 0; th < o.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			cl, err := c.NewClient(fmt.Sprintf("repl-writer-%d", th))
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cl.Stop()
			// CommitWait: the ack point is the write-set applied at the
			// region copies — with RF>1 that includes the quorum round,
			// which is exactly the price under measurement.
			commitOnce := func(i int) error {
				txn, err := cl.BeginTxn(cluster.TxnOptions{})
				if err != nil {
					return err
				}
				row := kv.Key(fmt.Sprintf("w%02d-%05d", th, i%2000))
				if err := txn.Put(ctx, replBenchTable, row, "f", []byte(fmt.Sprintf("v%d.%d", th, i))); err != nil {
					txn.Abort()
					return err
				}
				_, err = txn.CommitWait(ctx)
				return err
			}
			for i := 0; time.Now().Before(stopAt); i++ {
				t0 := time.Now()
				if err := commitOnce(i); err != nil {
					if blip == nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					errs.Add(1)
					continue
				}
				hist.Record(time.Since(t0))
				commits.Add(1)
				if blip != nil {
					blip.success(time.Now())
				}
				if rest := replWriterInterval - time.Since(t0); rest > 0 {
					time.Sleep(rest)
				}
			}
		}(th)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return commits.Load(), errs.Load(), e.(error)
	}
	return commits.Load(), errs.Load(), nil
}

// replBlipTracker tracks the largest gap between successful commits across
// all writers — the client-visible unavailability window.
type replBlipTracker struct {
	mu   sync.Mutex
	last time.Time
	max  time.Duration
}

func (b *replBlipTracker) success(now time.Time) {
	b.mu.Lock()
	if !b.last.IsZero() {
		if gap := now.Sub(b.last); gap > b.max {
			b.max = gap
		}
	}
	if now.After(b.last) {
		b.last = now
	}
	b.mu.Unlock()
}

// replScanPhase loads rows at RF=3, then measures snapshot-scan throughput
// with follower reads on or off (the primary-only control).
func replScanPhase(o Options, follower bool) (ReplicationPhaseResult, error) {
	pr := ReplicationPhaseResult{Phase: "scan_primary"}
	if follower {
		pr.Phase = "scan_follower"
	}
	c, err := cluster.New(cluster.Config{Servers: 3, ReplicationFactor: 3, FollowerReads: follower})
	if err != nil {
		return pr, err
	}
	defer c.Stop()
	if err := c.CreateTable(replBenchTable, nil); err != nil {
		return pr, err
	}
	ctx := context.Background()

	loader, err := c.NewClient("repl-scan-loader")
	if err != nil {
		return pr, err
	}
	rows := o.Records / 4
	if rows > 5000 {
		rows = 5000
	}
	if rows < 500 {
		rows = 500
	}
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	var cts kv.Timestamp
	for lo := 0; lo < rows; lo += 250 {
		hi := lo + 250
		if hi > rows {
			hi = rows
		}
		if cts, err = loader.Update(ctx, func(txn *cluster.Txn) error {
			for i := lo; i < hi; i++ {
				if err := txn.Put(ctx, replBenchTable, kv.Key(fmt.Sprintf("r%08d", i)), "f", val); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return pr, err
		}
	}
	loader.Stop()
	// Follower admission needs the replicated frontier past the snapshot:
	// wait out the flush so the scan loop measures steady state, not
	// catch-up.
	if err := c.WaitFlushed(cts, 10*time.Second); err != nil {
		return pr, err
	}

	var scanned, scans atomic.Int64
	var firstErr atomic.Value
	stopAt := time.Now().Add(o.Duration)
	var wg sync.WaitGroup
	for th := 0; th < o.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			cl, err := c.NewClient(fmt.Sprintf("repl-scanner-%d", th))
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			defer cl.Stop()
			for time.Now().Before(stopAt) {
				err := cl.View(ctx, func(txn *cluster.Txn) error {
					sc := txn.Scan(ctx, replBenchTable, kv.KeyRange{}, cluster.ScanOptions{Batch: 256})
					n := 0
					for sc.Next() {
						n++
					}
					sc.Close()
					if err := sc.Err(); err != nil {
						return err
					}
					scanned.Add(int64(n))
					scans.Add(1)
					return nil
				})
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(th)
	}
	wg.Wait()
	if e := firstErr.Load(); e != nil {
		return pr, e.(error)
	}
	pr.RowsPerSec = float64(scanned.Load()) / o.Duration.Seconds()
	pr.ScansPerSec = float64(scans.Load()) / o.Duration.Seconds()
	pr.FollowerReads = c.Obs().Snapshot().Counters["replica.follower_reads"]
	return pr, nil
}

// replFailoverPhase crashes the primary-heaviest server mid-run while paced
// writers keep committing at RF=3; the phase reports throughput, the p99
// including the blip, the largest client-visible commit gap, and the
// master's promotion window.
func replFailoverPhase(o Options) (ReplicationPhaseResult, error) {
	pr := ReplicationPhaseResult{Phase: "failover"}
	c, err := cluster.New(cluster.Config{
		Servers:                4, // one spare: quorum survives the crash with headroom
		ReplicationFactor:      3,
		HeartbeatInterval:      100 * time.Millisecond,
		MasterHeartbeatTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return pr, err
	}
	defer c.Stop()
	if err := c.CreateTable(replBenchTable, nil); err != nil {
		return pr, err
	}

	// Crash the server leading the most regions at half time: detection
	// runs on the heartbeat timeout, so the blip includes it.
	crashDone := make(chan error, 1)
	go func() {
		time.Sleep(o.Duration / 2)
		counts := map[string]int{}
		for _, row := range c.ReplicaDebugRows() {
			if row.Role == "primary" && row.Online {
				counts[row.Server]++
			}
		}
		victim, best := "", 0
		for id, n := range counts {
			if n > best {
				victim, best = id, n
			}
		}
		if victim == "" {
			crashDone <- fmt.Errorf("no primary to crash")
			return
		}
		crashDone <- c.CrashServer(victim)
	}()

	hist := &metrics.Histogram{}
	blip := &replBlipTracker{}
	commits, errs, err := replRunWriters(c, o, o.Duration, hist, blip)
	if err != nil {
		return pr, err
	}
	if cerr := <-crashDone; cerr != nil {
		return pr, fmt.Errorf("replication failover: crash: %w", cerr)
	}
	if commits == 0 {
		return pr, fmt.Errorf("replication failover completed no commits")
	}
	snap := c.Obs().Snapshot()
	if snap.Counters["replica.failovers"] == 0 {
		return pr, fmt.Errorf("replication failover: master recorded no failover")
	}
	pr.CommitsPerSec = float64(commits) / o.Duration.Seconds()
	pr.CommitP50Micros = float64(hist.Quantile(0.50)) / 1e3
	pr.CommitP99Micros = float64(hist.Quantile(0.99)) / 1e3
	pr.BlipMS = float64(blip.max.Microseconds()) / 1e3
	pr.FailoverWindowMS = float64(snap.Gauges["replica.failover_last_ms"])
	pr.CommitErrors = errs
	return pr, nil
}
