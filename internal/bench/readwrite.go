package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"txkv/internal/cluster"
	"txkv/internal/kv"
	"txkv/internal/metrics"
	"txkv/internal/ycsb"
)

// ReadWrite benchmarks the store's hot path in isolation from the failure
// machinery: multi-client point-read latency, limited range scans, and
// committed-transaction throughput under concurrent writers. It is the
// regression harness for the lock-free read path and striped commit
// validation work — BENCH_PR2.json in the repo root records a before/after
// pair in the ReadWriteResult format (see EXPERIMENTS.md).
//
// Three phases run against one loaded cluster:
//
//  1. get: Threads closed-loop readers issue single-row snapshot Gets.
//  2. scan: Threads closed-loop readers scan a random 64-row window
//     with Limit 16 (limit pushdown is the point).
//  3. commit: at least 8 client processes run write-only transactions;
//     committed transactions per second exercises validation striping.

// scanWindow and scanLimit shape the scan phase: a window wide enough to
// span several blocks, a limit small enough that streaming early-exit
// matters.
const (
	scanWindow = 64
	scanLimit  = 16
)

// ReadWriteResult is the machine-readable output of one ReadWrite run,
// written to ReadWriteJSONPath when set (the txkvbench -json flag).
type ReadWriteResult struct {
	Records       int     `json:"records"`
	Threads       int     `json:"threads"`
	CommitClients int     `json:"commit_clients"`
	DurationSec   float64 `json:"duration_sec"`

	GetOpsPerSec float64 `json:"get_ops_per_sec"`
	GetP50Micros float64 `json:"get_p50_us"`
	GetP99Micros float64 `json:"get_p99_us"`

	ScanOpsPerSec float64 `json:"scan_ops_per_sec"`
	ScanP50Micros float64 `json:"scan_p50_us"`
	ScanP99Micros float64 `json:"scan_p99_us"`

	CommitsPerSec float64 `json:"commits_per_sec"`
	CommitAborts  int64   `json:"commit_aborts"`

	// Obs is the registry snapshot and derived tracing figures (the -obs
	// flag); nil when observability embedding is off.
	Obs *ObsReport `json:"obs,omitempty"`
}

// ReadWriteJSONPath, when non-empty, makes ReadWrite additionally write its
// ReadWriteResult as JSON to the given file (set by cmd/txkvbench -json).
var ReadWriteJSONPath string

// ReadWrite runs the hot-path experiment and prints one row per phase.
func ReadWrite(o Options) error {
	o = o.withDefaults()
	res, err := readWriteRun(o)
	if err != nil {
		return err
	}

	fprintf(o.Out, "# readwrite: hot-path Get / limited Scan / parallel commit\n")
	fprintf(o.Out, "%-8s %14s %12s %12s\n", "phase", "ops/s", "p50-us", "p99-us")
	fprintf(o.Out, "%-8s %14.0f %12.1f %12.1f\n", "get", res.GetOpsPerSec, res.GetP50Micros, res.GetP99Micros)
	fprintf(o.Out, "%-8s %14.0f %12.1f %12.1f\n", "scan", res.ScanOpsPerSec, res.ScanP50Micros, res.ScanP99Micros)
	fprintf(o.Out, "%-8s %14.0f   (%d clients, %d aborts)\n", "commit", res.CommitsPerSec, res.CommitClients, res.CommitAborts)
	if res.Obs != nil {
		fprintf(o.Out, "obs: commit p50 %.1f us (stage-sum %.1f us), tracing overhead %.1f%%, cache hit rate %.3f\n",
			res.Obs.CommitTotalP50Us, res.Obs.CommitStageSumP50Us,
			res.Obs.TracingOverheadPct, res.Obs.CacheHitRate)
	}

	if ReadWriteJSONPath != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(ReadWriteJSONPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("readwrite: write json: %w", err)
		}
		fprintf(o.Out, "\nwrote %s\n", ReadWriteJSONPath)
	}
	return nil
}

func readWriteRun(o Options) (ReadWriteResult, error) {
	res := ReadWriteResult{
		Records:     o.Records,
		Threads:     o.Threads,
		DurationSec: o.Duration.Seconds(),
	}
	// Unlike the figure experiments, this one zeroes the simulated network
	// and storage latencies: the point is the software hot path (locks,
	// allocations, validation), which the paper-ratio sleeps would bury.
	cfg := paperRatioConfig(2, false, time.Second)
	cfg.RPCLatency = 0
	cfg.LogSyncLatency = 0
	cfg.DFSSyncLatency = 0
	cfg.DFSReadLatency = 0
	c, w, err := setup(o, cfg)
	if err != nil {
		return res, err
	}
	defer c.Stop()
	if err := warmup(c, w, o); err != nil {
		return res, err
	}
	if o.Cold {
		// Cold mode measures the store-file miss path: force the loaded
		// rows out of the memstores into store files first, or the gets
		// would be served from memory and the cache drops would be no-ops.
		if _, err := c.ReclaimStorage(); err != nil {
			return res, err
		}
	}

	// Phase 1+2: closed-loop read-only clients. One transaction per
	// operation would measure Begin/Abort machinery; instead each thread
	// holds a snapshot transaction and re-takes it every 256 operations so
	// the snapshot stays fresh without dominating the measurement.
	getHist, getOps, err := readPhase(c, w, o, func(txn *cluster.Txn, rng *rand.Rand) error {
		row := ycsb.RowKey(uint64(rng.Intn(w.RecordCount)))
		_, _, err := txn.Get(context.Background(), w.Table, row, "field0")
		return err
	})
	if err != nil {
		return res, err
	}
	res.GetOpsPerSec = float64(getOps) / o.Duration.Seconds()
	res.GetP50Micros = float64(getHist.Quantile(0.50)) / 1e3
	res.GetP99Micros = float64(getHist.Quantile(0.99)) / 1e3

	// With -obs, re-run the get phase with tracing enabled: the off/on
	// throughput pair quantifies the tracing overhead, and the remaining
	// phases run traced so the commit pipeline histograms fill.
	if o.Obs {
		res.Obs = &ObsReport{GetOpsPerSecTracingOff: res.GetOpsPerSec}
		c.Tracer().SetEnabled(true)
		_, tracedOps, err := readPhase(c, w, o, func(txn *cluster.Txn, rng *rand.Rand) error {
			row := ycsb.RowKey(uint64(rng.Intn(w.RecordCount)))
			_, _, err := txn.Get(context.Background(), w.Table, row, "field0")
			return err
		})
		if err != nil {
			return res, err
		}
		res.Obs.GetOpsPerSecTracingOn = float64(tracedOps) / o.Duration.Seconds()
		if res.Obs.GetOpsPerSecTracingOff > 0 {
			res.Obs.TracingOverheadPct = 100 *
				(res.Obs.GetOpsPerSecTracingOff - res.Obs.GetOpsPerSecTracingOn) /
				res.Obs.GetOpsPerSecTracingOff
		}
	}

	scanHist, scanOps, err := readPhase(c, w, o, func(txn *cluster.Txn, rng *rand.Rand) error {
		start := rng.Intn(w.RecordCount)
		rng2 := kv.KeyRange{
			Start: ycsb.RowKey(uint64(start)),
			End:   ycsb.RowKey(uint64(start + scanWindow)),
		}
		sc := txn.Scan(context.Background(), w.Table, rng2, cluster.ScanOptions{Limit: scanLimit})
		for sc.Next() {
		}
		return sc.Err()
	})
	if err != nil {
		return res, err
	}
	res.ScanOpsPerSec = float64(scanOps) / o.Duration.Seconds()
	res.ScanP50Micros = float64(scanHist.Quantile(0.50)) / 1e3
	res.ScanP99Micros = float64(scanHist.Quantile(0.99)) / 1e3

	// Phase 3: write-only transactions across >= 8 client processes — the
	// validation-striping measurement. Uniform keys keep true conflicts
	// rare, so committed/s is bounded by validation + group commit, not by
	// aborts.
	commitClients := 8
	if o.Threads > commitClients {
		commitClients = o.Threads
	}
	res.CommitClients = commitClients
	wr := w
	wr.ReadRatio = 0.01 // effectively write-only; keep >0 so defaulting doesn't kick in
	runRes, err := ycsb.Run(c, wr, ycsb.RunnerConfig{
		Threads:  commitClients,
		Clients:  commitClients,
		Duration: o.Duration,
		Seed:     o.Seed + 7,
	})
	if err != nil {
		return res, err
	}
	res.CommitsPerSec = runRes.Throughput()
	res.CommitAborts = runRes.Aborted
	if o.Obs {
		rep := buildObsReport(c)
		rep.GetOpsPerSecTracingOff = res.Obs.GetOpsPerSecTracingOff
		rep.GetOpsPerSecTracingOn = res.Obs.GetOpsPerSecTracingOn
		rep.TracingOverheadPct = res.Obs.TracingOverheadPct
		res.Obs = rep
	}
	return res, nil
}

// readPhase runs o.Threads closed-loop readers for o.Duration and returns
// the per-op latency histogram and total op count.
func readPhase(c *cluster.Cluster, w ycsb.Workload, o Options, op func(*cluster.Txn, *rand.Rand) error) (*metrics.Histogram, int64, error) {
	hist := &metrics.Histogram{}
	var ops atomic.Int64
	var (
		errOnce  sync.Once
		firstErr error
	)
	// Cold mode: periodically empty the block caches (globally, across the
	// threads) so the phase measures fetch-and-decode, not LRU hits.
	const coldDropEvery = 256
	var coldOps atomic.Int64

	cl, err := c.NewClient("")
	if err != nil {
		return nil, 0, err
	}
	defer cl.Stop()

	stopAt := time.Now().Add(o.Duration)
	var wg sync.WaitGroup
	for th := 0; th < o.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(o.Seed*31 + int64(th)))
			txn, err := cl.BeginTxn(cluster.TxnOptions{ReadOnly: true})
			if err != nil {
				errOnce.Do(func() { firstErr = err })
				return
			}
			defer txn.Abort()
			n := 0
			for time.Now().Before(stopAt) {
				if n++; n%256 == 0 {
					txn.Abort()
					if txn, err = cl.BeginTxn(cluster.TxnOptions{ReadOnly: true}); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
				if o.Cold && coldOps.Add(1)%coldDropEvery == 0 {
					c.DropBlockCaches()
				}
				start := time.Now()
				if err := op(txn, rng); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				hist.Record(time.Since(start))
				ops.Add(1)
			}
		}(th)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return hist, ops.Load(), nil
}
