package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"txkv/internal/cluster"
	"txkv/internal/ycsb"
)

// Durability benchmarks the new storage engine (internal/storage): the same
// paper-ratio workload runs once against the in-memory backend (the
// original simulation) and once against real disk journaling, then the
// disk-backed cluster is stopped and reopened and the restart is timed and
// audited. This quantifies what the paper's "high performance stable
// storage" assumption costs when the stable storage is an actual
// filesystem, and demonstrates the crash-restart capability the simulation
// alone cannot express.
func Durability(o Options) error {
	o = o.withDefaults()

	fprintf(o.Out, "# durability: group-commit storage engine, mem vs disk backend\n")
	fprintf(o.Out, "%-10s %12s %14s %12s\n", "backend", "commits/s", "mean-ms", "aborts")

	runOne := func(name string, cfg cluster.Config) (*cluster.Cluster, ycsb.Workload, error) {
		c, w, err := setup(o, cfg)
		if err != nil {
			return nil, w, err
		}
		if err := warmup(c, w, o); err != nil {
			c.Stop()
			return nil, w, err
		}
		res, err := ycsb.Run(c, w, ycsb.RunnerConfig{
			Threads:  o.Threads,
			Duration: o.Duration,
			Seed:     o.Seed,
		})
		if err != nil {
			c.Stop()
			return nil, w, err
		}
		fprintf(o.Out, "%-10s %12.0f %14.3f %12d\n",
			name, res.Throughput(), float64(res.Latency.Mean())/1e6, res.Aborted)
		return c, w, nil
	}

	memCluster, _, err := runOne("mem", paperRatioConfig(2, false, time.Second))
	if err != nil {
		return err
	}
	memCluster.Stop()

	dir, err := os.MkdirTemp("", "txkv-durability-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	diskCfg := paperRatioConfig(2, false, time.Second)
	// Real fsyncs replace the simulated stable-storage latency.
	diskCfg.LogSyncLatency = 0
	diskCfg.Persistence = cluster.PersistDisk
	diskCfg.DataDir = dir

	diskCluster, w, err := runOne("disk", diskCfg)
	if err != nil {
		return err
	}

	// The restart: stop everything, reopen from the data directory, and
	// verify the table came back whole.
	commits, _ := diskCluster.TM().Stats()
	diskCluster.Stop()
	start := time.Now()
	reopened, err := cluster.Reopen(diskCfg)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer reopened.Stop()
	reopenIn := time.Since(start)

	cl, err := reopened.NewClient("durability-audit")
	if err != nil {
		return err
	}
	defer cl.Stop()
	missing := 0
	for i := 0; i < w.RecordCount; i += 97 { // sampled audit
		txn, err := cl.BeginTxn(cluster.TxnOptions{ReadOnly: true, Mode: cluster.SnapshotFresh})
		if err != nil {
			return err
		}
		_, ok, err := txn.Get(context.Background(), w.Table, ycsb.RowKey(uint64(i)), "field0")
		txn.Abort()
		if err != nil || !ok {
			missing++
		}
	}
	logStats := reopened.Log().Stats()
	fprintf(o.Out, "\nrestart: reopened %d-commit cluster in %v (replayed %d log records, %d sampled rows missing)\n",
		commits, reopenIn.Round(time.Millisecond), logStats.ReplayedRecords, missing)
	if missing > 0 {
		return fmt.Errorf("durability: %d sampled rows missing after reopen", missing)
	}
	return nil
}
